(* The benchmark harness: regenerates every table and figure in the
   paper's evaluation (§4.2) from the simulation, prints the same
   rows/series the paper reports, and runs a Bechamel microbenchmark
   suite over the hot primitives.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe fig3        # one figure
     dune exec bench/main.exe -- --quick  # reduced trial counts

   Figures: fig3 fig4 fig5 fig6 fig7; tables/ablations: guards,
   ablation-policy, ablation-opt; microbenchmarks: bechamel, guardpath;
   gated suites: guardopt (the certified optimizer, writes
   BENCH_guardopt.json), smpscale, selfheal, tracegate, certify.
   Flags: --quick, --json (guardpath writes BENCH_guardpath.json),
   --engine interp|compiled (execution engine for the fig targets). *)

open Carat_kop

let line = String.make 72 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let quick = ref false
let fault_trials = ref None
let json = ref false
let engine = ref Vm.Engine.Interp
let fault_sanitize = ref false

let trials () = if !quick then 9 else 41
let packets () = if !quick then 150 else 600

(* ------------------------------------------------------------------ *)

let print_throughput_figure ~title ~expect (r : Experiments.throughput_result)
    =
  section title;
  let cdfs =
    List.map
      (fun s -> (s.Experiments.label, Stats.Cdf.of_samples s.Experiments.pps))
      r.Experiments.series
  in
  print_string
    (Stats.Cdf.render
       ~title:
         (Printf.sprintf "CDF of packet launch throughput (%s, %dB packets)"
          r.Experiments.machine_name r.Experiments.packet_size)
       ~unit_label:"pps" cdfs);
  print_newline ();
  (* paper-style medians and relative change *)
  let medians =
    List.map
      (fun (label, cdf) -> (label, Stats.Cdf.quantile cdf 0.5))
      cdfs
  in
  List.iter
    (fun (label, med) -> Printf.printf "  median %-10s %10.0f pps\n" label med)
    medians;
  (match
     (List.assoc_opt "carat" medians, List.assoc_opt "baseline" medians)
   with
  | Some c, Some b ->
    Printf.printf "  relative change of median: %+.2f%%\n"
      ((b -. c) /. b *. 100.0)
  | _ -> ());
  Printf.printf "  paper: %s\n" expect

let run_fig3 () =
  print_throughput_figure
    ~title:"Figure 3: throughput CDF on the slow R415, two regions"
    ~expect:"median changes by about 1,000 pps, a relative change of <0.8%"
    (Experiments.fig3 ~trials:(trials ()) ~packets:(packets ())
       ~engine:!engine ())

let run_fig4 () =
  print_throughput_figure
    ~title:"Figure 4: throughput CDF on the faster R350, two regions"
    ~expect:"effect even smaller, almost unmeasurable (<0.1%)"
    (Experiments.fig4 ~trials:(trials ()) ~packets:(packets ())
       ~engine:!engine ())

let run_fig5 () =
  let r =
    Experiments.fig5 ~trials:(trials ()) ~packets:(packets ())
      ~engine:!engine ()
  in
  print_throughput_figure
    ~title:"Figure 5: effect of the number of policy regions (R350)"
    ~expect:"n has a small but significant effect; worst case still <1%"
    r;
  (* extra: per-n medians vs baseline *)
  let med s = Stats.Summary.median s.Experiments.pps in
  (match
     List.find_opt (fun s -> s.Experiments.label = "baseline") r.Experiments.series
   with
  | Some base ->
    let b = med base in
    List.iter
      (fun s ->
        if s.Experiments.label <> "baseline" then
          Printf.printf "  %-10s median %8.0f pps  (%+.2f%% vs baseline)\n"
            s.Experiments.label (med s)
            ((b -. med s) /. b *. 100.0))
      r.Experiments.series
  | None -> ())

let run_fig6 () =
  section "Figure 6: throughput slowdown vs packet size (R350, two regions)";
  let pts =
    Experiments.fig6
      ~trials:(if !quick then 5 else 15)
      ~packets:(if !quick then 120 else 500)
      ~engine:!engine ()
  in
  Printf.printf "  %8s %14s %14s %10s\n" "size" "baseline pps" "carat pps"
    "slowdown";
  List.iter
    (fun p ->
      Printf.printf "  %8d %14.0f %14.0f %10.4f\n" p.Experiments.size
        p.Experiments.baseline_pps p.Experiments.carat_pps
        p.Experiments.slowdown)
    pts;
  (* simple shape visual *)
  print_newline ();
  List.iter
    (fun p ->
      let over = int_of_float ((p.Experiments.slowdown -. 1.0) *. 4000.0) in
      let over = max 0 (min 40 over) in
      Printf.printf "  %5dB |%s\n" p.Experiments.size (String.make over '#'))
    pts;
  print_endline
    "  paper: impact largely independent of size; to the extent it varies\n\
    \  (max ~2.5%) it concentrates on small packets"

let run_fig7 () =
  section "Figure 7: sendmsg latency histogram (R350, two regions, 128B)";
  let r =
    Experiments.fig7 ~packets:(if !quick then 2500 else 8000) ~engine:!engine ()
  in
  let all =
    Array.append r.Experiments.base_latencies r.Experiments.carat_latencies
  in
  let lo = 400.0 in
  let hi = 1300.0 in
  ignore all;
  let h_of xs =
    Stats.Hist.of_samples ~lo ~hi ~bins:18 (Array.map float_of_int xs)
  in
  print_string
    (Stats.Hist.render ~title:"latency (cycles); outliers hidden, as in the paper"
       ~unit_label:"cyc"
       [
         ("Base", h_of r.Experiments.base_latencies);
         ("Carat", h_of r.Experiments.carat_latencies);
       ]);
  Printf.printf
    "\n  medians including outliers: carat=%.0f cycles, baseline=%.0f cycles\n"
    r.Experiments.carat_median r.Experiments.base_median;
  print_endline
    "  paper: 694 (CARAT KOP) vs 686 (baseline) cycles, within measurement noise"

let run_guards () =
  section "Transform accounting (paper §4: e1000e ~19k LoC, pass ~200 LoC)";
  let t = Experiments.transform_accounting () in
  Printf.printf "  driver functions:            %6d\n" t.Experiments.functions;
  Printf.printf "  KIR instructions:            %6d\n" t.Experiments.kir_instructions;
  Printf.printf "  KIR text lines (the '.kir'): %6d\n" t.Experiments.kir_text_lines;
  Printf.printf "  loads+stores:                %6d\n" t.Experiments.memory_ops;
  Printf.printf "  guards inserted:             %6d  (exactly one per load/store)\n"
    t.Experiments.guards_inserted;
  Printf.printf "  module signature:            %s\n" t.Experiments.signature;
  print_endline
    "  source-code changes required in the driver: 0 (as in the paper)"

let run_ablation_policy () =
  section
    "Ablation: policy structures (paper §3.1/§4.2 speculation, measured)";
  let pts =
    Experiments.policy_structure_bench ~checks:(if !quick then 1500 else 6000)
      ~site_cache_rows:true ()
  in
  Printf.printf "  %-14s %8s %10s %18s %22s\n" "structure" "regions"
    "rule at" "cycles/check" "entries scanned/check";
  List.iter
    (fun p ->
      Printf.printf "  %-14s %8d %10s %18.1f %22.2f\n" p.Experiments.structure
        p.Experiments.regions
        (Experiments.placement_to_string p.Experiments.placement)
        p.Experiments.cycles_per_check
        p.Experiments.entries_scanned_per_check)
    pts;
  print_endline
    "\n  expected shape: linear is cheapest at small n and degrades linearly;\n\
    \  sorted/splay pay branch misses; the caches win once they are warm"

let run_ablation_opt () =
  section "Ablation: unoptimized guards (paper) vs CARAT-CAKE-style optimization";
  let rows =
    Experiments.guard_optimization_ablation
      ~trials:(if !quick then 5 else 11)
      ~packets:(if !quick then 150 else 500)
      ()
  in
  Printf.printf "  %-36s %8s %10s %12s %12s %10s\n" "technique" "static"
    "checks/pkt" "checks/diag" "mean pps" "sendmsg";
  List.iter
    (fun r ->
      Printf.printf "  %-36s %8d %10.1f %12.1f %12.0f %10.0f\n"
        r.Experiments.technique r.Experiments.static_guards
        r.Experiments.checks_per_packet r.Experiments.checks_per_eeprom_read
        r.Experiments.pps_mean r.Experiments.sendmsg_median)
    rows;
  print_endline
    "\n  the paper's bet, quantified: on a driver hot path the optimizer\n\
    \  finds little to remove, so unoptimized guarding is already cheap"

let run_mechanism () =
  section
    "Ablation: which machine mechanism makes guards cheap? (§4.2's claim)";
  let pts =
    Experiments.mechanism_sensitivity
      ~trials:(if !quick then 5 else 9)
      ~packets:(if !quick then 150 else 300)
      ()
  in
  Printf.printf "  %-26s %14s %14s %12s\n" "machine variant" "baseline pps"
    "carat pps" "overhead";
  List.iter
    (fun p ->
      Printf.printf "  %-26s %14.0f %14.0f %11.2f%%\n" p.Experiments.variant
        p.Experiments.baseline_pps p.Experiments.carat_pps
        p.Experiments.overhead_pct)
    pts;
  print_endline
    "\n  the paper credits caching + branch prediction + speculation. The\n\
    \  knockouts show speculation and core width dominate; the guard's\n\
    \  branches are monotone, so even a tiny predictor learns them -- the\n\
    \  predictor only matters for log-time policy structures (see the\n\
    \  policy-structure ablation), which is why the paper's linear table\n\
    \  is the right default";
  ignore pts

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the hot simulator
   primitives, one Test.make per reproduced table/figure plus core
   primitives. *)

let bechamel_tests () =
  let open Bechamel in
  (* policy check: the guard's inner loop, per structure *)
  let guard_test kind n =
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
    let engine = Policy.Engine.create ~kind ~capacity:64 kernel in
    Policy.Engine.set_policy engine
      (Policy.Region.padding (n - 1)
      @ [
          Policy.Region.v ~tag:"kernel" ~base:Kernel.Layout.kernel_base
            ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw ();
        ]);
    let addr = Kernel.Layout.direct_map_base + 0x400 in
    Test.make
      ~name:
        (Printf.sprintf "guard/%s/n=%d" (Policy.Engine.kind_to_string kind) n)
      (Staged.stage (fun () ->
           ignore (Policy.Engine.check engine ~addr ~size:8 ~flags:1)))
  in
  (* fig3/4: one full guarded sendmsg through the whole stack *)
  let sendmsg_test name machine technique =
    let config =
      { Testbed.default_config with machine; technique; module_scale = 1 }
    in
    let tb = Testbed.create ~config () in
    let k = tb.Testbed.kernel in
    let ub = Kernel.map_user k ~size:2048 in
    Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:128 ());
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Net.Netstack.sendmsg tb.Testbed.stack ~user_buf:ub ~len:128)))
  in
  (* guard injection pass over the full driver (tab-guards) *)
  let inject_test =
    Test.make ~name:"pass/guard-injection(e1000e)"
      (Staged.stage (fun () ->
           let m = Nic.Driver_gen.generate () in
           ignore
             (Passes.Guard_injection.run Passes.Guard_injection.default_config
                m)))
  in
  let parse_test =
    let text = Kir.Printer.to_string (Nic.Driver_gen.generate ()) in
    Test.make ~name:"kir/parse(e1000e)"
      (Staged.stage (fun () -> ignore (Kir.Parser.parse_string text)))
  in
  let sign_test =
    let m = Nic.Driver_gen.generate () in
    Test.make ~name:"pass/sign(e1000e)"
      (Staged.stage (fun () ->
           ignore (Passes.Signing.keyed_tag ~key:"k" (Passes.Signing.signable_text m))))
  in
  Test.make_grouped ~name:"carat-kop"
    [
      sendmsg_test "fig3/sendmsg-carat-r415" Machine.Presets.r415 Testbed.Carat;
      sendmsg_test "fig4/sendmsg-carat-r350" Machine.Presets.r350 Testbed.Carat;
      sendmsg_test "fig4/sendmsg-base-r350" Machine.Presets.r350 Testbed.Baseline;
      guard_test Policy.Engine.Linear 2;
      guard_test Policy.Engine.Linear 64;
      guard_test Policy.Engine.Sorted 64;
      guard_test Policy.Engine.Splay 64;
      guard_test Policy.Engine.Cached 64;
      guard_test Policy.Engine.Bloom 64;
      guard_test Policy.Engine.Shadow 64;
      inject_test;
      parse_test;
      sign_test;
    ]

let run_bechamel () =
  section "Bechamel microbenchmarks (wall-clock of simulator primitives)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if !quick then 0.2 else 0.5))
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "  %-44s %14s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, result) ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "  %-44s %14.1f\n" name est
      | _ -> Printf.printf "  %-44s %14s\n" name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* guardpath: wall-clock microbenchmark of the two-tier guard fast path.

   Two measurements:
   - end-to-end: the fig3 hot loop (R415, 128B pktgen) under each
     (engine, policy tier) combination, reporting host ns per packet and
     the simulated cycles per packet (which must be identical across
     engines for the same policy tier). The gate rows run the paper's
     production table scale — 64 regions (§3.1's evaluated structure),
     with the conforming rules last, where insmod-time registration puts
     a freshly loaded driver — so the seed's linear walk pays its real
     scan length. A two-region pair (fig3's minimal policy) is reported
     for context;
   - check-only: the bare guard check across policy structures, shadow
     vs the PR-1 structures, plus the site inline cache, with a
     steady-state Gc.minor_words assertion proving the fast path does
     not allocate. *)

type guardpath_row = {
  gp_label : string;
  gp_ns_per_packet : float;
  gp_cycles_per_packet : float;
  gp_total_cycles : int;
  gp_guard_checks : int;
}

let guardpath_e2e ?(trace = false) ~label ~(engine : Vm.Engine.kind)
    ~(structure : Policy.Engine.kind) ~site_cache ~regions ~packets () :
    guardpath_row =
  let config =
    {
      Testbed.default_config with
      machine = Machine.Presets.r415;
      technique = Testbed.Carat;
      stall_prob = 0.0002;
      engine;
      structure;
      site_cache;
      trace;
      policy =
        (if regions <= 2 then Policy.Region.kernel_only
         else Policy.Region.kernel_only_padded regions);
    }
  in
  let tb = Testbed.create ~config () in
  let machine = Testbed.machine tb in
  (* warmup: compile cache, simulated caches, predictor, inline caches *)
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
  Policy.Engine.reset_stats (Policy.Policy_module.engine tb.Testbed.policy_module);
  let c0 = Machine.Model.cycles machine in
  let t0 = Unix.gettimeofday () in
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with count = packets; size = 128; seed = 7 }
  in
  let t1 = Unix.gettimeofday () in
  let c1 = Machine.Model.cycles machine in
  let st =
    Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
  in
  assert (r.Net.Pktgen.sent = packets);
  {
    gp_label = label;
    gp_ns_per_packet = (t1 -. t0) *. 1e9 /. float_of_int packets;
    gp_cycles_per_packet = float_of_int (c1 - c0) /. float_of_int packets;
    gp_total_cycles = c1 - c0;
    gp_guard_checks = st.Policy.Engine.checks;
  }

(* ------------------------------------------------------------------ *)
(* tracegate: the zero-cost-off contract of the trace layer.

   With tracing disabled (the default), the observability layer must be
   invisible to the simulation: fig3/fig7-shaped runs must produce
   simulated cycle counts and guard-check counts bit-identical to the
   values recorded before the trace layer existed. The goldens below are
   those pre-PR values (fixed seeds, fixed packet counts, engine
   Interp/Compiled both asserted). *)

(* fig7-shaped cell: R350, 0.0004 stall, 128B, 600 packets, seed 5 —
   exactly Experiments.fig7's loop at a fixed small packet count. *)
let fig7_cell ~technique ~(engine : Vm.Engine.kind) () =
  let config =
    {
      Testbed.default_config with
      machine = Machine.Presets.r350;
      technique;
      stall_prob = 0.0004;
      engine;
    }
  in
  let tb = Testbed.create ~config () in
  let machine = Testbed.machine tb in
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
  Policy.Engine.reset_stats (Policy.Policy_module.engine tb.Testbed.policy_module);
  let c0 = Machine.Model.cycles machine in
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with count = 600; size = 128; seed = 5 }
  in
  let c1 = Machine.Model.cycles machine in
  let st =
    Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
  in
  let median =
    Stats.Summary.median (Array.map float_of_int r.Net.Pktgen.latencies)
  in
  (c1 - c0, st.Policy.Engine.checks, median)

let run_tracegate () =
  section "tracegate: tracing off must be simulation-invisible (bit-identical)";
  (* (label, golden total sim cycles, golden guard checks) *)
  let fig3_golden_cycles = 10629208 and fig3_golden_checks = 17400 in
  let fig7_golden_cycles = 12538822 and fig7_golden_checks = 17400 in
  let fig7_golden_median = 731.0 in
  let f3i =
    guardpath_e2e ~label:"fig3/interp" ~engine:Vm.Engine.Interp
      ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2 ~packets:600 ()
  in
  let f3c =
    guardpath_e2e ~label:"fig3/compiled" ~engine:Vm.Engine.Compiled
      ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2 ~packets:600 ()
  in
  let c7i, k7i, m7i = fig7_cell ~technique:Testbed.Carat ~engine:Vm.Engine.Interp () in
  let c7c, k7c, m7c = fig7_cell ~technique:Testbed.Carat ~engine:Vm.Engine.Compiled () in
  Printf.printf "  fig3-shaped (R415, 2 regions, 600 pkts): %d cycles, %d checks\n"
    f3i.gp_total_cycles f3i.gp_guard_checks;
  Printf.printf "  fig7-shaped (R350, 2 regions, 600 pkts): %d cycles, %d checks, median %.1f\n"
    c7i k7i m7i;
  let fail msg =
    Printf.eprintf "tracegate: FAIL: %s\n" msg;
    exit 1
  in
  if (f3i.gp_total_cycles, f3i.gp_guard_checks) <> (f3c.gp_total_cycles, f3c.gp_guard_checks)
  then fail "fig3 engines disagree";
  if (c7i, k7i, m7i) <> (c7c, k7c, m7c) then fail "fig7 engines disagree";
  if fig3_golden_cycles = 0 then
    Printf.printf "  (goldens unset: probe mode, printing measured values only)\n"
  else begin
    if (f3i.gp_total_cycles, f3i.gp_guard_checks)
       <> (fig3_golden_cycles, fig3_golden_checks)
    then fail "fig3 simulated cycles/checks differ from pre-trace goldens";
    if (c7i, k7i, m7i) <> (fig7_golden_cycles, fig7_golden_checks, fig7_golden_median)
    then fail "fig7 simulated cycles/checks/median differ from pre-trace goldens";
    print_endline "  tracing off is bit-identical to the pre-trace goldens: yes"
  end

(* Steady-state allocation on the inline-cache hit path must be zero:
   returns minor words allocated across [n] hot checks (measurement
   boxes excluded by sampling outside the loop). *)
let guardpath_alloc_words ~n =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r415 in
  let engine = Policy.Engine.create ~kind:Policy.Engine.Shadow ~capacity:64 kernel in
  Policy.Engine.set_policy engine Policy.Region.kernel_only;
  Policy.Engine.enable_site_cache engine;
  let addr = Kernel.Layout.direct_map_base + 0x400 in
  for i = 0 to 999 do
    ignore
      (Policy.Engine.check_fast engine ~site:(i land 7) ~addr ~size:8
         ~flags:Policy.Region.prot_read)
  done;
  let w0 = Gc.minor_words () in
  for i = 0 to n - 1 do
    ignore
      (Policy.Engine.check_fast engine ~site:(i land 7) ~addr ~size:8
         ~flags:Policy.Region.prot_read)
  done;
  Gc.minor_words () -. w0

let guardpath_check_only ~checks =
  let bench kind ic =
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r415 in
    let engine = Policy.Engine.create ~kind ~capacity:64 kernel in
    Policy.Engine.set_policy engine
      (Policy.Region.padding 62
      @ [
          Policy.Region.v ~tag:"kernel" ~base:Kernel.Layout.kernel_base
            ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw ();
        ]);
    if ic then Policy.Engine.enable_site_cache engine;
    let addr = Kernel.Layout.direct_map_base + 0x400 in
    let probe i =
      if ic then
        ignore
          (Policy.Engine.check_fast engine ~site:(i land 7)
             ~addr:(addr + (i * 8 mod 256)) ~size:8
             ~flags:Policy.Region.prot_read)
      else
        ignore
          (Policy.Engine.check engine
             ~addr:(addr + (i * 8 mod 256)) ~size:8
             ~flags:Policy.Region.prot_read)
    in
    for i = 0 to 999 do
      probe i
    done;
    let t0 = Unix.gettimeofday () in
    for i = 0 to checks - 1 do
      probe i
    done;
    let t1 = Unix.gettimeofday () in
    ( Policy.Engine.kind_to_string kind ^ (if ic then "+ic" else ""),
      (t1 -. t0) *. 1e9 /. float_of_int checks )
  in
  [
    bench Policy.Engine.Linear false;
    bench Policy.Engine.Sorted false;
    bench Policy.Engine.Splay false;
    bench Policy.Engine.Bloom false;
    bench Policy.Engine.Shadow false;
    bench Policy.Engine.Shadow true;
  ]

let run_guardpath () =
  section "guardpath: wall-clock of the guard fast path (host ns, 64 regions)";
  let packets = if !quick then 1500 else 4000 in
  let rows =
    [
      guardpath_e2e ~label:"interp+linear (seed)" ~engine:Vm.Engine.Interp
        ~structure:Policy.Engine.Linear ~site_cache:false ~regions:64 ~packets ();
      guardpath_e2e ~label:"compiled+linear" ~engine:Vm.Engine.Compiled
        ~structure:Policy.Engine.Linear ~site_cache:false ~regions:64 ~packets ();
      guardpath_e2e ~label:"interp+shadow+ic" ~engine:Vm.Engine.Interp
        ~structure:Policy.Engine.Shadow ~site_cache:true ~regions:64 ~packets ();
      guardpath_e2e ~label:"compiled+shadow+ic" ~engine:Vm.Engine.Compiled
        ~structure:Policy.Engine.Shadow ~site_cache:true ~regions:64 ~packets ();
      (* the observability tax: same configuration with the carat_trace
         ring recording every guard event *)
      guardpath_e2e ~trace:true ~label:"compiled+shadow+ic+trace"
        ~engine:Vm.Engine.Compiled ~structure:Policy.Engine.Shadow
        ~site_cache:true ~regions:64 ~packets ();
    ]
  in
  let base = List.hd rows in
  Printf.printf "  %-24s %14s %10s %16s %14s\n" "configuration" "ns/packet"
    "speedup" "sim cycles/pkt" "guard checks";
  List.iter
    (fun r ->
      Printf.printf "  %-24s %14.0f %9.2fx %16.0f %14d\n" r.gp_label
        r.gp_ns_per_packet
        (base.gp_ns_per_packet /. r.gp_ns_per_packet)
        r.gp_cycles_per_packet r.gp_guard_checks)
    rows;
  (* fig3's minimal two-region policy, for context: the table is so
     small that the linear walk is nearly free, which is why the paper's
     production table scale above is the design point worth measuring *)
  let ctx =
    [
      guardpath_e2e ~label:"interp+linear (2 regions)" ~engine:Vm.Engine.Interp
        ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2 ~packets ();
      guardpath_e2e ~label:"compiled+shadow+ic (2 regions)"
        ~engine:Vm.Engine.Compiled ~structure:Policy.Engine.Shadow
        ~site_cache:true ~regions:2 ~packets ();
    ]
  in
  List.iter
    (fun r ->
      Printf.printf "  %-30s %6.0f ns/packet  %12.0f sim cycles/pkt\n"
        r.gp_label r.gp_ns_per_packet r.gp_cycles_per_packet)
    ctx;
  (* engine equivalence sanity on the spot: same policy tier => same
     simulated cycles and guard counts regardless of engine *)
  let by label = List.find (fun r -> r.gp_label = label) rows in
  let eq a b =
    a.gp_cycles_per_packet = b.gp_cycles_per_packet
    && a.gp_guard_checks = b.gp_guard_checks
  in
  if not (eq (by "interp+linear (seed)") (by "compiled+linear"))
     || not (eq (by "interp+shadow+ic") (by "compiled+shadow+ic"))
  then begin
    Printf.eprintf
      "guardpath: FAIL: engines disagree on simulated cycles or guard counts\n";
    exit 1
  end;
  print_endline "  engines agree on simulated cycles and guard counts: yes";
  (* recording must tax cycles only, never decisions: the traced run sees
     exactly the guard traffic of its untraced twin *)
  let traced = by "compiled+shadow+ic+trace" in
  let untraced = by "compiled+shadow+ic" in
  if traced.gp_guard_checks <> untraced.gp_guard_checks then begin
    Printf.eprintf
      "guardpath: FAIL: tracing changed the guard-check count (%d vs %d)\n"
      traced.gp_guard_checks untraced.gp_guard_checks;
    exit 1
  end;
  let trace_overhead =
    traced.gp_cycles_per_packet -. untraced.gp_cycles_per_packet
  in
  Printf.printf
    "  trace recording overhead: %.1f sim cycles/packet (decisions unchanged)\n"
    trace_overhead;
  let words = guardpath_alloc_words ~n:100_000 in
  Printf.printf "  minor words allocated across 100k hot checks: %.0f\n" words;
  if words > 64.0 then begin
    Printf.eprintf "guardpath: FAIL: guard fast path allocates\n";
    exit 1
  end;
  let checks = if !quick then 20_000 else 100_000 in
  let co = guardpath_check_only ~checks in
  Printf.printf "\n  bare check, 64 regions, conforming probes (host ns/check):\n";
  List.iter (fun (l, ns) -> Printf.printf "  %-22s %10.1f\n" l ns) co;
  let speedup =
    base.gp_ns_per_packet /. (by "compiled+shadow+ic").gp_ns_per_packet
  in
  Printf.printf "\n  compiled+shadow+ic vs seed interp+linear: %.2fx\n" speedup;
  if !json then begin
    let oc = open_out "BENCH_guardpath.json" in
    let row_json r =
      Printf.sprintf
        "    {\"label\": %S, \"ns_per_packet\": %.1f, \"speedup\": %.3f, \
         \"sim_cycles_per_packet\": %.1f, \"guard_checks\": %d}"
        r.gp_label r.gp_ns_per_packet
        (base.gp_ns_per_packet /. r.gp_ns_per_packet)
        r.gp_cycles_per_packet r.gp_guard_checks
    in
    Printf.fprintf oc
      "{\n\
      \  \"packets\": %d,\n\
      \  \"e2e\": [\n%s\n  ],\n\
      \  \"context_two_regions\": [\n%s\n  ],\n\
      \  \"check_only_ns\": {%s},\n\
      \  \"minor_words_per_100k_checks\": %.0f,\n\
      \  \"speedup_compiled_shadow_vs_seed\": %.3f,\n\
      \  \"trace_overhead_sim_cycles_per_packet\": %.1f,\n\
      \  \"trace_decisions_unchanged\": true\n\
       }\n"
      packets
      (String.concat ",\n" (List.map row_json rows))
      (String.concat ",\n" (List.map row_json ctx))
      (String.concat ", "
         (List.map (fun (l, ns) -> Printf.sprintf "%S: %.1f" l ns) co))
      words speedup trace_overhead;
    close_out oc;
    print_endline "  wrote BENCH_guardpath.json"
  end;
  if speedup < 3.0 then begin
    Printf.eprintf
      "guardpath: FAIL: compiled+shadow+ic is below 3x over the seed path\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* guardopt: what each guard-optimization tier buys at run time.

   For the fig3- and fig7-shaped presets (compiled engine, shadow table
   + site inline cache, the production 64-region policy) the same seeded
   packet workload runs under Baseline (unguarded) and Carat at --opt
   none/basic/aggressive. The baseline run on identical seeds isolates
   the guard-attributable cycles: attr = carat cycles/pkt - baseline
   cycles/pkt. Context rows: the seed linear table, and the 4-CPU
   multi-queue build. Gates: on at least one fig3/fig7 preset the
   aggressive tier must cut dynamic guard executions >= 25% and improve
   guard-attributable cycles/pkt >= 1.15x, with zero certifier
   rollbacks, zero denies, and an engine-independent decision stream.
   Writes BENCH_guardopt.json. *)

type go_row = {
  go_preset : string;
  go_level : string;  (* "baseline" or an opt level *)
  go_static_guards : int;
  go_sent : int;
  go_checks : int;
  go_allowed : int;
  go_denied : int;
  go_total_cycles : int;
  go_cycles_per_pkt : float;
  go_checks_per_pkt : float;
}

let guardopt_cell ~preset ~machine ~stall ~structure ~site_cache ~packets
    ~(engine : Vm.Engine.kind) level =
  let technique, guard_opt =
    match level with
    | None -> (Testbed.Baseline, Passes.Pipeline.O_none)
    | Some o -> (Testbed.Carat, o)
  in
  let config =
    {
      Testbed.default_config with
      machine;
      technique;
      stall_prob = stall;
      engine;
      structure;
      site_cache;
      guard_opt;
      policy = Policy.Region.kernel_only_padded 64;
    }
  in
  let tb = Testbed.create ~config () in
  let mach = Testbed.machine tb in
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
  Policy.Engine.reset_stats
    (Policy.Policy_module.engine tb.Testbed.policy_module);
  let c0 = Machine.Model.cycles mach in
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with count = packets; size = 128; seed = 7 }
  in
  let c1 = Machine.Model.cycles mach in
  let st =
    Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
  in
  {
    go_preset = preset;
    go_level =
      (match level with
      | None -> "baseline"
      | Some o -> Passes.Pipeline.opt_level_to_string o);
    go_static_guards =
      (match level with
      | None -> 0
      | Some _ -> Passes.Guard_injection.count_guards tb.Testbed.driver_kir);
    go_sent = r.Net.Pktgen.sent;
    go_checks = st.Policy.Engine.checks;
    go_allowed = st.Policy.Engine.allowed;
    go_denied = st.Policy.Engine.denied;
    go_total_cycles = c1 - c0;
    go_cycles_per_pkt = float_of_int (c1 - c0) /. float_of_int packets;
    go_checks_per_pkt =
      float_of_int st.Policy.Engine.checks /. float_of_int packets;
  }

let run_guardopt () =
  section "guardopt: certified guard optimizer vs the unoptimized pipeline";
  let packets = if !quick then 200 else 600 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* 0: the certifier gate itself — the aggressive compile must not have
     rolled the transforms back, and must re-validate like any module
     the loader is about to accept *)
  let m = Nic.Driver_gen.generate ~module_scale:12 ~with_rogue:false () in
  let remarks = Passes.Pipeline.compile ~opt:Passes.Pipeline.O_aggressive m in
  List.iter
    (fun (pass, (r : Passes.Pass.result)) ->
      if pass = "guard-optimize" then
        List.iter
          (fun (k, v) ->
            if k = "restored" then fail "optimizer rolled back: %s" v
            else Printf.printf "  optimizer: %s = %s\n" k v)
          r.Passes.Pass.remarks)
    remarks;
  (match Analysis.Certify.validate m with
  | Ok () -> print_endline "  aggressive driver re-validates: yes"
  | Error e ->
    fail "aggressive driver certificate: %s"
      (Analysis.Certify.validate_error_to_string e));
  (* 1: the gate presets, all tiers under identical seeds *)
  let levels =
    None :: List.map (fun o -> Some o) Passes.Pipeline.all_opt_levels
  in
  let presets =
    [
      ("fig3/compiled+shadow+ic", Machine.Presets.r415, 0.0002);
      ("fig7/compiled+shadow+ic", Machine.Presets.r350, 0.0004);
    ]
  in
  let rows =
    List.concat_map
      (fun (preset, machine, stall) ->
        List.map
          (guardopt_cell ~preset ~machine ~stall
             ~structure:Policy.Engine.Shadow ~site_cache:true ~packets
             ~engine:Vm.Engine.Compiled)
          levels)
      presets
  in
  (* context: the seed linear table, where every spared check skips a
     full region scan *)
  let linear_rows =
    List.map
      (guardopt_cell ~preset:"fig3/compiled+linear"
         ~machine:Machine.Presets.r415 ~stall:0.0002
         ~structure:Policy.Engine.Linear ~site_cache:false ~packets
         ~engine:Vm.Engine.Compiled)
      [ Some Passes.Pipeline.O_none; Some Passes.Pipeline.O_aggressive ]
  in
  (* engine parity: the optimized module's decision stream and simulated
     cycles must not depend on the execution engine *)
  let parity_interp =
    guardopt_cell ~preset:"fig3/interp+shadow+ic"
      ~machine:Machine.Presets.r415 ~stall:0.0002
      ~structure:Policy.Engine.Shadow ~site_cache:true ~packets
      ~engine:Vm.Engine.Interp (Some Passes.Pipeline.O_aggressive)
  in
  let all_rows = rows @ linear_rows in
  Printf.printf "\n  %-26s %-10s %7s %9s %9s %7s %11s\n" "preset" "level"
    "static" "checks" "chk/pkt" "denied" "cycles/pkt";
  List.iter
    (fun g ->
      Printf.printf "  %-26s %-10s %7d %9d %9.1f %7d %11.1f\n" g.go_preset
        g.go_level g.go_static_guards g.go_checks g.go_checks_per_pkt
        g.go_denied g.go_cycles_per_pkt)
    (all_rows @ [ parity_interp ]);
  let cell preset level =
    List.find (fun g -> g.go_preset = preset && g.go_level = level) all_rows
  in
  (* decision-stream gates: nothing denied, every packet sent, every
     check on a benign workload an allow *)
  List.iter
    (fun g ->
      if g.go_denied <> 0 then
        fail "%s/%s: %d denies on a benign workload" g.go_preset g.go_level
          g.go_denied;
      if g.go_sent <> packets then
        fail "%s/%s: sent %d of %d packets" g.go_preset g.go_level g.go_sent
          packets;
      if g.go_checks <> g.go_allowed then
        fail "%s/%s: checks <> allows" g.go_preset g.go_level)
    (all_rows @ [ parity_interp ]);
  (let c = cell "fig3/compiled+shadow+ic" "aggressive" in
   if
     (parity_interp.go_checks, parity_interp.go_total_cycles)
     <> (c.go_checks, c.go_total_cycles)
   then fail "engines disagree on the optimized module (checks or cycles)");
  (* the optimization gates on the fig3/fig7 presets *)
  let gate_results =
    List.map
      (fun (preset, _, _) ->
        let base = cell preset "baseline" in
        let n = cell preset "none" in
        let a = cell preset "aggressive" in
        let reduction =
          1.0 -. (float_of_int a.go_checks /. float_of_int n.go_checks)
        in
        let attr l = l.go_cycles_per_pkt -. base.go_cycles_per_pkt in
        let attr_improvement = attr n /. attr a in
        Printf.printf
          "\n  %s: checks %d -> %d (%.1f%% fewer), guard-attributable \
           cycles/pkt %.1f -> %.1f (%.2fx)\n"
          preset n.go_checks a.go_checks (100.0 *. reduction) (attr n)
          (attr a) attr_improvement;
        (preset, reduction, attr_improvement))
      presets
  in
  if
    not
      (List.exists
         (fun (_, red, imp) -> red >= 0.25 && imp >= 1.15)
         gate_results)
  then
    fail
      "no fig3/fig7 preset reached >=25%% check reduction and >=1.15x \
       guard-attributable cycles/pkt";
  (* 2: the 4-CPU multi-queue build, optimizer on vs off *)
  let smp_cell opt =
    let cfg =
      {
        Smp_testbed.default_config with
        machine = Machine.Presets.r350;
        cpus = 4;
        seed = 11;
        guard_opt = opt;
      }
    in
    let tb = Smp_testbed.create ~config:cfg () in
    let r = Smp_testbed.run_pktgen ~count:(if !quick then 200 else 600) tb in
    let st =
      Policy.Engine.merged_stats
        (Policy.Policy_module.engine (Smp_testbed.policy_module tb))
    in
    (r, st)
  in
  let smp_none, smp_none_st = smp_cell Passes.Pipeline.O_none in
  let smp_aggr, smp_aggr_st = smp_cell Passes.Pipeline.O_aggressive in
  Printf.printf
    "\n  smp 4-cpu (R350): checks %d -> %d, pps %.0f -> %.0f, denies %d/%d\n"
    smp_none_st.Policy.Engine.checks smp_aggr_st.Policy.Engine.checks
    smp_none.Smp_testbed.pps smp_aggr.Smp_testbed.pps
    smp_none_st.Policy.Engine.denied smp_aggr_st.Policy.Engine.denied;
  if smp_none_st.Policy.Engine.denied + smp_aggr_st.Policy.Engine.denied <> 0
  then fail "smp rows denied on a benign workload";
  if smp_aggr_st.Policy.Engine.checks >= smp_none_st.Policy.Engine.checks then
    fail "smp 4-cpu: aggressive did not reduce dynamic checks";
  if smp_none.Smp_testbed.total_sent <> smp_aggr.Smp_testbed.total_sent then
    fail "smp 4-cpu: sent counts differ between tiers";
  (* json artifact *)
  let oc = open_out "BENCH_guardopt.json" in
  let row_json g =
    Printf.sprintf
      "    {\"preset\": %S, \"level\": %S, \"static_guards\": %d, \"sent\": \
       %d, \"checks\": %d, \"allowed\": %d, \"denied\": %d, \
       \"total_cycles\": %d, \"cycles_per_packet\": %.1f, \
       \"checks_per_packet\": %.1f}"
      g.go_preset g.go_level g.go_static_guards g.go_sent g.go_checks
      g.go_allowed g.go_denied g.go_total_cycles g.go_cycles_per_pkt
      g.go_checks_per_pkt
  in
  let gate_json (preset, red, imp) =
    Printf.sprintf
      "    {\"preset\": %S, \"check_reduction\": %.3f, \
       \"attr_cycles_improvement\": %.3f}"
      preset red imp
  in
  Printf.fprintf oc
    "{\n\
    \  \"packets\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"engine_parity_row\": [\n%s\n  ],\n\
    \  \"gates\": [\n%s\n  ],\n\
    \  \"smp_4cpu\": {\"checks_none\": %d, \"checks_aggressive\": %d, \
     \"pps_none\": %.0f, \"pps_aggressive\": %.0f},\n\
    \  \"gates_passed\": %b\n\
     }\n"
    packets
    (String.concat ",\n" (List.map row_json all_rows))
    (row_json parity_interp)
    (String.concat ",\n" (List.map gate_json gate_results))
    smp_none_st.Policy.Engine.checks smp_aggr_st.Policy.Engine.checks
    smp_none.Smp_testbed.pps smp_aggr.Smp_testbed.pps (!failures = []);
  close_out oc;
  print_endline "\n  wrote BENCH_guardopt.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "guardopt: FAIL: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* smpscale: guarded-vs-unguarded send throughput at 1/2/4/8 CPUs on both
   machine presets, plus an update-storm row (concurrent policy churn via
   the RCU publish path under load). Writes BENCH_smpscale.json and
   enforces the scaling/coherence gates. *)

type smp_row = {
  sr_machine : string;
  sr_technique : string;
  sr_cpus : int;
  sr_storm : int;
  sr_result : Smp_testbed.result;
}

let run_smpscale () =
  section "smpscale: multi-queue send throughput scaling, 1-8 CPUs";
  let count = if !quick then 300 else 1200 in
  let presets =
    [ ("R415", Machine.Presets.r415); ("R350", Machine.Presets.r350) ]
  in
  let row ~storm ~mname ~params ~tech ~cpus =
    let cfg =
      {
        Smp_testbed.default_config with
        machine = params;
        technique = tech;
        cpus;
        seed = 11;
      }
    in
    let tb = Smp_testbed.create ~config:cfg () in
    let r = Smp_testbed.run_pktgen ~count ~storm tb in
    {
      sr_machine = mname;
      sr_technique = Testbed.technique_to_string tech;
      sr_cpus = cpus;
      sr_storm = storm;
      sr_result = r;
    }
  in
  let rows =
    List.concat_map
      (fun (mname, params) ->
        List.concat_map
          (fun tech ->
            List.map
              (fun cpus -> row ~storm:0 ~mname ~params ~tech ~cpus)
              [ 1; 2; 4; 8 ])
          [ Testbed.Carat; Testbed.Baseline ])
      presets
  in
  (* the update-storm rows: 4 CPUs sending while CPU 0 replaces the whole
     policy every 40th operation *)
  let storm_rows =
    List.map
      (fun (mname, params) ->
        row ~storm:40 ~mname ~params ~tech:Testbed.Carat ~cpus:4)
      presets
  in
  let all = rows @ storm_rows in
  Printf.printf "  %-6s %-9s %5s %6s %12s %9s %6s %6s %6s\n" "mach" "tech"
    "cpus" "storm" "pps" "speedup" "pubs" "ipis" "stale";
  let pps_of mname tech cpus =
    let r =
      List.find
        (fun s ->
          s.sr_machine = mname && s.sr_technique = tech && s.sr_cpus = cpus
          && s.sr_storm = 0)
        rows
    in
    r.sr_result.Smp_testbed.pps
  in
  List.iter
    (fun s ->
      let r = s.sr_result in
      Printf.printf "  %-6s %-9s %5d %6d %12.0f %8.2fx %6d %6d %6d\n"
        s.sr_machine s.sr_technique s.sr_cpus s.sr_storm r.Smp_testbed.pps
        (r.Smp_testbed.pps /. pps_of s.sr_machine s.sr_technique 1)
        r.Smp_testbed.publications r.Smp_testbed.ipis
        r.Smp_testbed.stale_allows)
    all;
  (* gates *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun s ->
      if s.sr_result.Smp_testbed.stale_allows <> 0 then
        fail "%s/%s/%d: %d stale allows (policy coherence broken)"
          s.sr_machine s.sr_technique s.sr_cpus
          s.sr_result.Smp_testbed.stale_allows;
      if s.sr_result.Smp_testbed.send_errors <> 0 then
        fail "%s/%s/%d: %d send errors" s.sr_machine s.sr_technique s.sr_cpus
          s.sr_result.Smp_testbed.send_errors)
    all;
  List.iter
    (fun (mname, _) ->
      List.iter
        (fun tech ->
          let p1 = pps_of mname tech 1
          and p2 = pps_of mname tech 2
          and p4 = pps_of mname tech 4 in
          if not (p1 < p2 && p2 < p4) then
            fail "%s/%s: throughput not monotone 1->2->4 (%.0f %.0f %.0f)"
              mname tech p1 p2 p4)
        [ "carat"; "baseline" ])
    presets;
  let efficiency = pps_of "R350" "carat" 4 /. (4.0 *. pps_of "R350" "carat" 1) in
  Printf.printf "\n  R350 carat scaling efficiency at 4 CPUs: %.2f\n"
    efficiency;
  if efficiency < 0.70 then
    fail "R350 carat 4-CPU scaling efficiency %.2f below 0.70" efficiency;
  List.iter
    (fun s ->
      let r = s.sr_result in
      if r.Smp_testbed.publications = 0 then
        fail "%s storm row made no publications" s.sr_machine;
      if r.Smp_testbed.retired <> r.Smp_testbed.publications then
        fail "%s storm row: %d of %d generations never retired" s.sr_machine
          (r.Smp_testbed.publications - r.Smp_testbed.retired)
          r.Smp_testbed.publications)
    storm_rows;
  let oc = open_out "BENCH_smpscale.json" in
  let row_json s =
    let r = s.sr_result in
    Printf.sprintf
      "    {\"machine\": %S, \"technique\": %S, \"cpus\": %d, \"storm\": %d, \
       \"sent\": %d, \"pps\": %.0f, \"per_cpu_pps\": [%s], \
       \"publications\": %d, \"retired\": %d, \"ipis\": %d, \
       \"ipi_cycles\": %d, \"grace_quiescents\": %d, \"stale_allows\": %d, \
       \"send_errors\": %d}"
      s.sr_machine s.sr_technique s.sr_cpus s.sr_storm r.Smp_testbed.total_sent
      r.Smp_testbed.pps
      (String.concat ", "
         (Array.to_list
            (Array.map
               (fun c -> Printf.sprintf "%.0f" c.Smp_testbed.cr_pps)
               r.Smp_testbed.per_cpu)))
      r.Smp_testbed.publications r.Smp_testbed.retired r.Smp_testbed.ipis
      r.Smp_testbed.ipi_cycles r.Smp_testbed.grace_quiescents
      r.Smp_testbed.stale_allows r.Smp_testbed.send_errors
  in
  Printf.fprintf oc
    "{\n\
    \  \"count_per_cpu\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"storm_rows\": [\n%s\n  ],\n\
    \  \"scaling_efficiency_r350_carat_4cpu\": %.3f,\n\
    \  \"gates_passed\": %b\n\
     }\n"
    count
    (String.concat ",\n" (List.map row_json rows))
    (String.concat ",\n" (List.map row_json storm_rows))
    efficiency (!failures = []);
  close_out oc;
  print_endline "  wrote BENCH_smpscale.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "smpscale: FAIL: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* selfheal: the integrity watchdog's corruption-to-detection latency,
   the cost of running degraded (which must reproduce the guard-tier
   ordering guardpath measures: ic hit <= shadow walk < linear walk),
   recovery back to the full fast path, bounded repair retries, and the
   tier-corruption campaign invariants. Writes BENCH_selfheal.json and
   exits nonzero on any gate failure. *)

type selfheal_row = {
  se_class : string;
  se_detect_cycles : int;  (** corruption to the detecting audit *)
  se_degraded_level : int;
  se_full_cpc : float;  (** sim cycles/check at the full tier *)
  se_degraded_cpc : float;  (** sim cycles/check while degraded *)
  se_healed_cpc : float;  (** sim cycles/check after re-promotion *)
  se_recover_audits : int;
  se_recovered : bool;
  se_stale : int;
}

let selfheal_period = 5_000

let selfheal_cpc engine machine =
  let addr = Kernel.Layout.direct_map_base + 0x400 in
  let n = 2_000 in
  let c0 = Machine.Model.cycles machine in
  for i = 0 to n - 1 do
    ignore
      (Policy.Engine.check_fast engine ~site:(i land 7) ~addr ~size:8
         ~flags:Policy.Region.prot_read)
  done;
  float_of_int (Machine.Model.cycles machine - c0) /. float_of_int n

let selfheal_episode ~cls ~corrupt () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r415 in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Quarantine kernel
  in
  (* production table scale, conforming rules last, as in guardpath *)
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 64);
  let wd = Policy.Policy_module.enable_watchdog ~period:selfheal_period pm in
  let ig =
    match Policy.Policy_module.integrity pm with
    | Some ig -> ig
    | None -> assert false
  in
  let engine = Policy.Policy_module.engine pm in
  let machine = Kernel.machine kernel in
  Policy.Engine.set_verify engine true;
  (* warm a user-page shadow slot (the corruption target) and the probe
     path, then take the full-tier cost *)
  ignore (Policy.Engine.check engine ~addr:0x4000 ~size:8 ~flags:2);
  ignore (selfheal_cpc engine machine);
  let full = selfheal_cpc engine machine in
  if not (corrupt engine) then begin
    Printf.eprintf "selfheal: FAIL: %s corruption injection refused\n" cls;
    exit 1
  end;
  let c0 = Machine.Model.cycles machine in
  let steps = ref 0 in
  while Policy.Integrity.detections ig = 0 && !steps < 100 do
    incr steps;
    ignore (Kernel.Watchdog.advance wd ~cycles:1_000)
  done;
  let detect = Machine.Model.cycles machine - c0 in
  let level = Policy.Integrity.tier_level ig in
  let degraded = selfheal_cpc engine machine in
  let a0 = Policy.Integrity.audits ig in
  let steps = ref 0 in
  while
    (not (Policy.Integrity.healthy ig && Policy.Integrity.tier_level ig = 2))
    && !steps < 100
  do
    incr steps;
    ignore (Kernel.Watchdog.advance wd ~cycles:selfheal_period)
  done;
  let healed = selfheal_cpc engine machine in
  {
    se_class = cls;
    se_detect_cycles = detect;
    se_degraded_level = level;
    se_full_cpc = full;
    se_degraded_cpc = degraded;
    se_healed_cpc = healed;
    se_recover_audits = Policy.Integrity.audits ig - a0;
    se_recovered =
      Policy.Integrity.healthy ig && Policy.Integrity.tier_level ig = 2;
    se_stale = Policy.Engine.stale_allows engine;
  }

let run_selfheal () =
  section "selfheal: watchdog detection latency, degraded overhead, recovery";
  let user_page = 0x4000 lsr Policy.Shadow_table.page_bits in
  let rows =
    [
      selfheal_episode ~cls:"icache-corrupt"
        ~corrupt:(fun e ->
          Policy.Engine.corrupt_site_cache e (Policy.Engine.default_view e)
            ~site:3 ~page:user_page ~prot:Policy.Region.prot_rw
            ~smash_canary:true)
        ();
      selfheal_episode ~cls:"shadow-corrupt"
        ~corrupt:(fun e ->
          Policy.Engine.corrupt_shadow e ~page:user_page
            ~prot:Policy.Region.prot_rw ~fix_checksum:false)
        ();
      selfheal_episode ~cls:"instance-corrupt"
        ~corrupt:(fun e ->
          Policy.Engine.corrupt_instance e ~base:Kernel.Layout.kernel_base
            ~prot:0)
        ();
    ]
  in
  Printf.printf "  %-18s %12s %6s %10s %12s %10s %8s %6s\n" "class"
    "detect cyc" "tier" "full c/c" "degraded c/c" "healed c/c" "audits"
    "stale";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %12d %6d %10.1f %12.1f %10.1f %8d %6d\n"
        r.se_class r.se_detect_cycles r.se_degraded_level r.se_full_cpc
        r.se_degraded_cpc r.se_healed_cpc r.se_recover_audits r.se_stale)
    rows;
  (* bounded retries: a repair route pinned to a no-op must abandon the
     tier after max_retries, not flap forever *)
  let retry_cfg = { Policy.Integrity.cooldown_audits = 1; max_retries = 2 } in
  let abandoned =
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r415 in
    let pm =
      Policy.Policy_module.install ~kind:Policy.Engine.Shadow kernel
    in
    Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
    let eng = Policy.Policy_module.engine pm in
    let ig = Policy.Integrity.create ~config:retry_cfg eng in
    Policy.Integrity.set_route ig (fun _ _ -> ());
    ignore
      (Policy.Engine.corrupt_instance eng ~base:Kernel.Layout.kernel_base
         ~prot:0);
    for _ = 1 to 10 do
      ignore (Policy.Integrity.audit ig)
    done;
    Policy.Integrity.abandoned ig
  in
  Printf.printf
    "  pinned-failure repair: %d tier(s) abandoned after %d retries\n"
    abandoned retry_cfg.Policy.Integrity.max_retries;
  (* campaign slice: the three tier-corruption classes across modes *)
  let faults = if !quick then 24 else 60 in
  let report = Fault.Campaign.run { Fault.Campaign.faults; seed = 42 } in
  let campaign_fails = Fault.Campaign.check report in
  let tier_classes =
    List.filter Fault.Inject.is_tier_corruption Fault.Inject.all_classes
  in
  let carat_modes =
    [
      Fault.Harness.Carat Policy.Policy_module.Panic;
      Fault.Harness.Carat Policy.Policy_module.Quarantine;
      Fault.Harness.Carat Policy.Policy_module.Audit;
    ]
  in
  let sum f =
    List.fold_left
      (fun acc cls ->
        List.fold_left
          (fun acc mode -> acc + f (Fault.Campaign.cell report ~cls ~mode))
          acc carat_modes)
      0 tier_classes
  in
  let detected = sum (fun c -> c.Fault.Campaign.sh_detected) in
  let detect_total = sum (fun c -> c.Fault.Campaign.sh_detect_total) in
  let rebuilt = sum (fun c -> c.Fault.Campaign.sh_rebuilt) in
  let rebuild_total = sum (fun c -> c.Fault.Campaign.sh_rebuild_total) in
  let stale = sum (fun c -> c.Fault.Campaign.sh_stale) in
  Printf.printf
    "  campaign (%d faults): detected %d/%d, rebuilt %d/%d, stale %d\n"
    faults detected detect_total rebuilt rebuild_total stale;
  (* gates *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun r ->
      if r.se_detect_cycles > 3 * selfheal_period then
        fail "%s: detection took %d cycles (period %d)" r.se_class
          r.se_detect_cycles selfheal_period;
      if not r.se_recovered then fail "%s: never recovered" r.se_class;
      if r.se_stale <> 0 then
        fail "%s: %d stale allows" r.se_class r.se_stale)
    rows;
  let by cls = List.find (fun r -> r.se_class = cls) rows in
  let ic = by "icache-corrupt" and sh = by "shadow-corrupt" in
  (* degraded-mode cost must reproduce guardpath's tier ordering *)
  if sh.se_degraded_cpc <= sh.se_full_cpc then
    fail "linear fallback not costlier than the full tier (%.1f vs %.1f)"
      sh.se_degraded_cpc sh.se_full_cpc;
  if ic.se_degraded_cpc < ic.se_full_cpc then
    fail "ic-off tier cheaper than ic hits (%.1f vs %.1f)" ic.se_degraded_cpc
      ic.se_full_cpc;
  if sh.se_degraded_cpc <= ic.se_degraded_cpc then
    fail "linear fallback not costlier than the shadow walk (%.1f vs %.1f)"
      sh.se_degraded_cpc ic.se_degraded_cpc;
  if sh.se_healed_cpc >= sh.se_degraded_cpc then
    fail "healed cost did not return below the degraded cost";
  if sh.se_degraded_level <> 0 then
    fail "shadow quarantine did not fall back to linear (level %d)"
      sh.se_degraded_level;
  if ic.se_degraded_level <> 1 then
    fail "ic quarantine did not keep the shadow serving (level %d)"
      ic.se_degraded_level;
  if abandoned <> 1 then
    fail "pinned-failure repair abandoned %d tiers, wanted 1" abandoned;
  if detected <> detect_total then
    fail "campaign: %d of %d corruptions undetected" (detect_total - detected)
      detect_total;
  if rebuilt <> rebuild_total then
    fail "campaign: %d of %d rebuilds failed" (rebuild_total - rebuilt)
      rebuild_total;
  if stale <> 0 then fail "campaign: %d stale allows" stale;
  List.iter (fun m -> fail "campaign invariant: %s" m) campaign_fails;
  let oc = open_out "BENCH_selfheal.json" in
  let row_json r =
    Printf.sprintf
      "    {\"class\": %S, \"detect_cycles\": %d, \"watchdog_period\": %d, \
       \"degraded_tier_level\": %d, \"full_cycles_per_check\": %.1f, \
       \"degraded_cycles_per_check\": %.1f, \"healed_cycles_per_check\": \
       %.1f, \"recover_audits\": %d, \"recovered\": %b, \"stale_allows\": %d}"
      r.se_class r.se_detect_cycles selfheal_period r.se_degraded_level
      r.se_full_cpc r.se_degraded_cpc r.se_healed_cpc r.se_recover_audits
      r.se_recovered r.se_stale
  in
  Printf.fprintf oc
    "{\n\
    \  \"episodes\": [\n%s\n  ],\n\
    \  \"bounded_retries\": {\"max_retries\": %d, \"abandoned\": %d},\n\
    \  \"campaign\": {\"faults\": %d, \"detected\": %d, \"detect_total\": %d, \
     \"rebuilt\": %d, \"rebuild_total\": %d, \"stale_allows\": %d, \
     \"invariants_passed\": %b},\n\
    \  \"gates_passed\": %b\n\
     }\n"
    (String.concat ",\n" (List.map row_json rows))
    retry_cfg.Policy.Integrity.max_retries abandoned faults detected
    detect_total rebuilt rebuild_total stale (campaign_fails = [])
    (!failures = []);
  close_out oc;
  print_endline "  wrote BENCH_selfheal.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "selfheal: FAIL: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let run_faults () =
  section "Fault-injection campaign: containment across enforcement modes";
  let faults =
    match !fault_trials with
    | Some n -> n
    | None -> if !quick then 60 else Fault.Campaign.default_config.faults
  in
  let report =
    Fault.Campaign.run ~sanitize:!fault_sanitize
      { Fault.Campaign.default_config with faults }
  in
  print_string (Fault.Campaign.render report);
  if not (Fault.Campaign.passes report) then exit 1

(* ------------------------------------------------------------------ *)

let run_certify () =
  section "Certifier runtime: guard-completeness proof on e1000e-scale modules";
  let trials = if !quick then 3 else 7 in
  Printf.printf "  %-10s %8s %8s %8s %14s %14s\n" "pipeline" "scale" "instrs"
    "guards" "certify ms" "validate ms";
  List.iter
    (fun (label, scale, optimize) ->
      let m = Nic.Driver_gen.generate ~module_scale:scale ~with_rogue:false () in
      let pipeline =
        if optimize then Passes.Pipeline.kop_optimized ()
        else Passes.Pipeline.kop_default ()
      in
      ignore (Passes.Pass.run_pipeline_checked pipeline m);
      let time_ms f =
        let best = ref infinity in
        for _ = 1 to trials do
          let t0 = Unix.gettimeofday () in
          f ();
          let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          if dt < !best then best := dt
        done;
        !best
      in
      let cert_ms =
        time_ms (fun () ->
            match Analysis.Certify.certify m with
            | Ok _ -> ()
            | Error msg ->
              Printf.eprintf "certify: %s (scale %d) FAILED: %s\n" label scale
                msg;
              exit 1)
      in
      let val_ms =
        time_ms (fun () ->
            match Analysis.Certify.validate m with
            | Ok () -> ()
            | Error e ->
              Printf.eprintf "certify: %s (scale %d) validate FAILED: %s\n"
                label scale
                (Analysis.Certify.validate_error_to_string e);
              exit 1)
      in
      Printf.printf "  %-10s %8d %8d %8d %14.2f %14.2f\n" label scale
        (Kir.Types.module_instr_count m)
        (Passes.Guard_injection.count_guards m)
        cert_ms val_ms)
    (let scales = if !quick then [ 12 ] else [ 12; 24; 48 ] in
     List.concat_map
       (fun s -> [ ("default", s, false); ("optimized", s, true) ])
       scales);
  print_endline
    "\n  certify = dataflow proof from scratch; validate = digest check +\n\
    \  re-proof, the work insmod does when require_certificate is set"

(* ------------------------------------------------------------------ *)

(* polscale: multi-tenant policy domains at scale.

   Three claims, gated:
   1. lookup cost is sub-linear in the region count — a 10k-region
      domain (interval tier) answers a guard within 10x the cost of the
      64-region linear fast path, and cost stays near-flat as the
      number of live domains grows 1 -> 256 (sharded shadow + per-domain
      tables, no cross-tenant interference);
   2. a 1k-region batched install through ioctl_install's RCU route is
      atomic under SMP: readers observe the old or the new table, never
      a partial batch, with zero stale allows and full retirement;
   3. with domains unused, the guard dispatch is bit-identical to the
      fig3/fig7 tracegate goldens — multi-tenancy costs nothing when
      off.

   Writes BENCH_polscale.json. *)

type pol_row = {
  pr_domains : int;
  pr_regions : int;
  pr_structure : string;
  pr_checks : int;
  pr_cycles_per_check : float;
}

let run_polscale () =
  section "polscale: policy domains at scale (64 -> 10k regions, 1 -> 256 domains)";
  let probes = if !quick then 400 else 2000 in
  (* Per-domain disjoint two-page regions; the probe address straddles
     the page boundary inside the region, so every check takes the
     exact structure walk (single-page shadow slots cannot answer) and
     the measured cost is the table's, not the cache's. *)
  let region_of i =
    Policy.Region.v
      ~base:(0x100000 + (i * 0x4000))
      ~len:0x2000 ~prot:Policy.Region.prot_rw ()
  in
  let probe_of i = 0x100000 + (i * 0x4000) + 0xff8 in
  let cell ~domains ~regions =
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r415 in
    let dm = Policy.Domain.create kernel in
    Policy.Domain.set_verify dm true;
    let rs = List.init regions region_of in
    let ids =
      List.init domains (fun _ ->
          let d = Policy.Domain.create_domain dm in
          let id = Policy.Domain.dom_id d in
          let rc = Policy.Domain.install_regions dm ~domain:id rs in
          if rc <> 0 then failwith (Printf.sprintf "polscale: install rc=%d" rc);
          id)
    in
    let ids = Array.of_list ids in
    let machine = Kernel.machine kernel in
    let dom i = ids.(i mod Array.length ids) in
    let check i =
      let addr = probe_of (i * 7 mod regions) in
      if not (Policy.Domain.check dm ~domain:(dom i) ~addr ~size:16 ~flags:3)
      then failwith "polscale: in-policy probe denied"
    in
    for i = 0 to 99 do check i done (* warm *) ;
    let c0 = Machine.Model.cycles machine in
    for i = 0 to probes - 1 do check i done;
    let c1 = Machine.Model.cycles machine in
    if Policy.Domain.stale_allows dm <> 0 then
      failwith "polscale: stale allow in sweep";
    let d0 = match Policy.Domain.find dm ids.(0) with
      | Some d -> d
      | None -> assert false
    in
    {
      pr_domains = domains;
      pr_regions = regions;
      pr_structure = Policy.Domain.dom_structure d0;
      pr_checks = probes;
      pr_cycles_per_check = float_of_int (c1 - c0) /. float_of_int probes;
    }
  in
  (* region axis at 1 domain; domain axis at 64 regions per domain *)
  let region_axis =
    List.map (fun r -> cell ~domains:1 ~regions:r) [ 64; 1_000; 10_000 ]
  in
  let domain_axis =
    List.map (fun d -> cell ~domains:d ~regions:64) [ 1; 16; 256 ]
  in
  let rows = region_axis @ List.tl domain_axis in
  Printf.printf "  %-8s %-8s %-10s %14s\n" "domains" "regions" "structure"
    "cycles/check";
  List.iter
    (fun r ->
      Printf.printf "  %-8d %-8d %-10s %14.1f\n" r.pr_domains r.pr_regions
        r.pr_structure r.pr_cycles_per_check)
    rows;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let cost ~domains ~regions =
    (List.find (fun r -> r.pr_domains = domains && r.pr_regions = regions) rows)
      .pr_cycles_per_check
  in
  (* gate 1a: sub-linear region scaling — 156x the regions, <= 10x the cost *)
  let c64 = cost ~domains:1 ~regions:64
  and c10k = cost ~domains:1 ~regions:10_000 in
  let region_ratio = c10k /. c64 in
  Printf.printf "\n  10k/64-region cost ratio (1 domain): %.2fx (gate: <= 10x)\n"
    region_ratio;
  if region_ratio > 10.0 then
    fail "10k-region lookup is %.1fx the 64-region cost (> 10x: not sub-linear)"
      region_ratio;
  (match List.find_opt (fun r -> r.pr_regions = 10_000) rows with
  | Some r when r.pr_structure <> "interval" ->
    fail "10k-region domain was not promoted to the interval tier"
  | _ -> ());
  (* gate 1b: sub-linear domain scaling — 256x the tenants must cost
     well under 256x. The residual growth is honest cache physics, not
     algorithm: 256 per-domain table mirrors (~400 KB) exceed the
     modeled D-cache while one domain's 1.5 KB stays resident, so the
     straddling probes eat capacity misses. Domain *resolution* itself
     is O(1) (hash index), so the curve flattens once out of cache. *)
  let d1 = cost ~domains:1 ~regions:64
  and d256 = cost ~domains:256 ~regions:64 in
  let domain_ratio = d256 /. d1 in
  Printf.printf "  256/1-domain cost ratio (64 regions): %.2fx (gate: <= 8x)\n"
    domain_ratio;
  if domain_ratio > 8.0 then
    fail "256-domain lookup is %.1fx the 1-domain cost (super-cache cross-tenant interference)"
      domain_ratio;
  (* ---- gate 2: 1k-region batched install is atomic under SMP ---- *)
  let batch_n = 1_000 in
  let kernel = Kernel.create ~require_signature:false ~seed:11 Machine.Presets.r415 in
  let pm = Policy.Policy_module.install ~capacity:2048 kernel in
  Policy.Policy_module.set_policy pm
    [ region_of 20_000; region_of 20_001 ] (* the pre-batch table *);
  let smp = Smp.System.create ~seed:11 ~params:Machine.Presets.r415 ~cpus:4 kernel pm in
  let engine = Smp.System.engine smp in
  Policy.Engine.set_verify engine true;
  let batch = List.init batch_n region_of in
  let partial = ref 0 and observed = ref 0 and installed = ref false in
  let writer () =
    let rc = Policy.Policy_module.apply pm (Policy.Policy_module.M_install batch) in
    if rc <> 0 then fail "SMP batched install refused (rc=%d)" rc;
    installed := true;
    false
  in
  let reader _ =
    let ops = ref 0 in
    fun () ->
      incr ops;
      incr observed;
      let n = Policy.Engine.count engine in
      if n <> 2 && n <> batch_n + 2 then incr partial;
      ignore
        (Policy.Engine.check engine ~addr:(probe_of 20_000) ~size:8 ~flags:3);
      !ops < 40
  in
  let steps = Array.init 4 (fun i -> if i = 0 then writer else reader i) in
  ignore (Smp.System.run smp steps);
  let rstats = Smp.Rcu.stats (Smp.System.rcu smp) in
  Printf.printf
    "\n  SMP batched install: %d regions, %d reader observations, %d partial,      %d stale, %d/%d retired\n"
    batch_n !observed !partial
    (Policy.Engine.stale_allows engine)
    rstats.Smp.Rcu.retired rstats.Smp.Rcu.publications;
  if not !installed then fail "SMP batched install never ran";
  if !partial <> 0 then
    fail "%d reader(s) observed a partially-installed batch" !partial;
  if Policy.Engine.count engine <> batch_n + 2 then
    fail "batch not fully live after the run";
  if Policy.Engine.stale_allows engine <> 0 then
    fail "%d stale allows during the batched install"
      (Policy.Engine.stale_allows engine);
  if rstats.Smp.Rcu.publications <> 1 then
    fail "batch took %d publications (must be exactly 1 generation swap)"
      rstats.Smp.Rcu.publications;
  if rstats.Smp.Rcu.retired <> rstats.Smp.Rcu.publications then
    fail "batch generation never retired";
  (* ---- gate 3: domains off => bit-identical to the tracegate goldens ---- *)
  let fig3_golden = (10629208, 17400) in
  let fig7_golden = (12538822, 17400, 731.0) in
  let f3 =
    guardpath_e2e ~label:"polscale/fig3" ~engine:Vm.Engine.Interp
      ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2
      ~packets:600 ()
  in
  let f7 = fig7_cell ~technique:Testbed.Carat ~engine:Vm.Engine.Interp () in
  let f3_ok = (f3.gp_total_cycles, f3.gp_guard_checks) = fig3_golden in
  let f7_ok = f7 = fig7_golden in
  Printf.printf "  domains-off fig3 cell: %d cycles, %d checks (golden: %b)\n"
    f3.gp_total_cycles f3.gp_guard_checks f3_ok;
  let c7, k7, m7 = f7 in
  Printf.printf
    "  domains-off fig7 cell: %d cycles, %d checks, median %.1f (golden: %b)\n"
    c7 k7 m7 f7_ok;
  if not f3_ok then
    fail "1-domain (root) fig3 cell differs from the pre-domain golden";
  if not f7_ok then
    fail "1-domain (root) fig7 cell differs from the pre-domain golden";
  (* ---- artifact ---- *)
  let oc = open_out "BENCH_polscale.json" in
  let row_json r =
    Printf.sprintf
      "    {\"domains\": %d, \"regions\": %d, \"structure\": %S,        \"checks\": %d, \"cycles_per_check\": %.1f}"
      r.pr_domains r.pr_regions r.pr_structure r.pr_checks
      r.pr_cycles_per_check
  in
  Printf.fprintf oc
    "{\n\
    \  \"probes_per_cell\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"region_cost_ratio_10k_vs_64\": %.3f,\n\
    \  \"domain_cost_ratio_256_vs_1\": %.3f,\n\
    \  \"smp_batch\": {\"regions\": %d, \"partial_observations\": %d,      \"stale_allows\": %d, \"publications\": %d, \"retired\": %d},\n\
    \  \"fig3_bit_identical\": %b,\n\
    \  \"fig7_bit_identical\": %b,\n\
    \  \"gates_passed\": %b\n\
     }\n"
    probes
    (String.concat ",\n" (List.map row_json rows))
    region_ratio domain_ratio batch_n !partial
    (Policy.Engine.stale_allows engine)
    rstats.Smp.Rcu.publications rstats.Smp.Rcu.retired f3_ok f7_ok
    (!failures = []);
  close_out oc;
  print_endline "  wrote BENCH_polscale.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "polscale: FAIL: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* traffic: the full-duplex tail-latency benchmark. Every CPU runs
   offered load (heavy-tailed flow generator, RSS-steered onto its own
   RX ring), NAPI service, and pktgen TX concurrently; churn rows add
   CPU 0 republishing the whole policy through the RCU route mid-run.
   Gates: frame conservation, zero stale allows, RX throughput scaling,
   guarded-vs-baseline ceilings on throughput and tail latency, and the
   rx_queues=0 goldens staying bit-identical. Writes BENCH_traffic.json
   and exits nonzero on any gate failure. *)

type traffic_row = {
  tf_technique : string;
  tf_cpus : int;
  tf_churn : int;
  tf_result : Smp_testbed.duplex_result;
  tf_p50 : float;
  tf_p99 : float;
  tf_p999 : float;
}

let run_traffic () =
  section "traffic: full-duplex RX under heavy-tailed load, 1-8 CPUs";
  let count = if !quick then 250 else 800 in
  let flows = 4096 in
  let churn_every = 37 in
  let row ~tech ~cpus ~churn =
    let cfg =
      {
        Smp_testbed.default_config with
        technique = tech;
        cpus;
        rx_queues = cpus;
        seed = 23;
      }
    in
    let tb = Smp_testbed.create ~config:cfg () in
    let r = Smp_testbed.run_traffic ~count ~churn ~flows tb in
    let cdf = Stats.Cdf.of_samples r.Smp_testbed.d_latencies in
    {
      tf_technique = Testbed.technique_to_string tech;
      tf_cpus = cpus;
      tf_churn = churn;
      tf_result = r;
      tf_p50 = Stats.Cdf.quantile cdf 0.5;
      tf_p99 = Stats.Cdf.quantile cdf 0.99;
      tf_p999 = Stats.Cdf.quantile cdf 0.999;
    }
  in
  let rows =
    List.concat_map
      (fun tech ->
        List.map (fun cpus -> row ~tech ~cpus ~churn:0) [ 1; 2; 4; 8 ])
      [ Testbed.Carat; Testbed.Baseline ]
  in
  let churn_rows =
    List.map
      (fun cpus -> row ~tech:Testbed.Carat ~cpus ~churn:churn_every)
      [ 4; 8 ]
  in
  let all = rows @ churn_rows in
  Printf.printf "  %d flows, %d sends/CPU, heavy-tailed sizes (Pareto)\n\n"
    flows count;
  Printf.printf "  %-9s %4s %5s %11s %11s %7s %7s %7s %5s %5s\n" "tech"
    "cpus" "churn" "tx_pps" "rx_pps" "p50" "p99" "p999" "irqs" "drop";
  List.iter
    (fun s ->
      let r = s.tf_result in
      Printf.printf "  %-9s %4d %5d %11.0f %11.0f %7.0f %7.0f %7.0f %5d %5d\n"
        s.tf_technique s.tf_cpus s.tf_churn r.Smp_testbed.d_tx_pps
        r.Smp_testbed.d_rx_pps s.tf_p50 s.tf_p99 s.tf_p999
        r.Smp_testbed.d_rx_irqs r.Smp_testbed.d_rx_dropped)
    all;
  print_newline ();
  (* guarded-vs-baseline latency CDFs at 8 CPUs, cycles per frame *)
  let lat_of tech cpus =
    let s =
      List.find
        (fun s -> s.tf_technique = tech && s.tf_cpus = cpus && s.tf_churn = 0)
        rows
    in
    s.tf_result.Smp_testbed.d_latencies
  in
  print_string
    (Stats.Cdf.render
       ~title:"CDF of RX arrival-to-delivery latency (8 CPUs)"
       ~unit_label:"cycles"
       [
         ("carat", Stats.Cdf.of_samples (lat_of "carat" 8));
         ("baseline", Stats.Cdf.of_samples (lat_of "baseline" 8));
       ]);
  print_newline ();
  (* gates *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun s ->
      let r = s.tf_result in
      let tag =
        Printf.sprintf "%s/%dcpu/churn=%d" s.tf_technique s.tf_cpus s.tf_churn
      in
      if r.Smp_testbed.d_stale_allows <> 0 then
        fail "%s: %d stale allows (policy coherence broken under RX)" tag
          r.Smp_testbed.d_stale_allows;
      if r.Smp_testbed.d_send_errors <> 0 then
        fail "%s: %d send errors" tag r.Smp_testbed.d_send_errors;
      if
        r.Smp_testbed.d_rx_frames + r.Smp_testbed.d_rx_dropped
        <> r.Smp_testbed.d_injected
      then
        fail "%s: frame conservation broken (%d delivered + %d dropped <> %d offered)"
          tag r.Smp_testbed.d_rx_frames r.Smp_testbed.d_rx_dropped
          r.Smp_testbed.d_injected;
      if Array.length r.Smp_testbed.d_latencies <> r.Smp_testbed.d_rx_frames
      then
        fail "%s: %d latency samples for %d delivered frames" tag
          (Array.length r.Smp_testbed.d_latencies)
          r.Smp_testbed.d_rx_frames)
    all;
  let find tech cpus =
    List.find
      (fun s -> s.tf_technique = tech && s.tf_cpus = cpus && s.tf_churn = 0)
      rows
  in
  (* gate: aggregate RX throughput must scale with the queue count *)
  List.iter
    (fun tech ->
      let p1 = (find tech 1).tf_result.Smp_testbed.d_rx_pps
      and p2 = (find tech 2).tf_result.Smp_testbed.d_rx_pps
      and p4 = (find tech 4).tf_result.Smp_testbed.d_rx_pps in
      if not (p1 < p2 && p2 < p4) then
        fail "%s: RX throughput not monotone 1->2->4 (%.0f %.0f %.0f)" tech p1
          p2 p4)
    [ "carat"; "baseline" ];
  (* gate: guard overhead ceilings — guarded RX keeps most of baseline's
     throughput and stays within a bounded tail blowup *)
  List.iter
    (fun cpus ->
      let c = find "carat" cpus and b = find "baseline" cpus in
      let ratio =
        c.tf_result.Smp_testbed.d_rx_pps /. b.tf_result.Smp_testbed.d_rx_pps
      in
      Printf.printf "  %d-CPU carat/baseline rx_pps ratio: %.2f\n" cpus ratio;
      if ratio < 0.55 then
        fail "%d CPUs: guarded RX keeps only %.0f%% of baseline pps (floor 55%%)"
          cpus (100.0 *. ratio);
      if c.tf_p99 > 4.0 *. b.tf_p99 then
        fail "%d CPUs: guarded p99 %.0f vs baseline %.0f (ceiling 4x)" cpus
          c.tf_p99 b.tf_p99)
    [ 1; 2; 4; 8 ];
  (* gate: the extreme tail stays a tail, not a cliff — p99 already
     absorbs the structural waits (coalescing, descheduled queue owners),
     so p999 blowing far past it means something pathological (a clock
     domain mixed up, a stranded ring) *)
  List.iter
    (fun s ->
      if s.tf_p999 > 5.0 *. s.tf_p99 then
        fail "%s/%dcpu/churn=%d: p999 %.0f is %.1fx p99 %.0f (ceiling 5x)"
          s.tf_technique s.tf_cpus s.tf_churn s.tf_p999
          (s.tf_p999 /. s.tf_p99) s.tf_p99)
    all;
  (* gate: churn rows actually churned, every generation retired, and
     frames still flowed *)
  List.iter
    (fun s ->
      let r = s.tf_result in
      if r.Smp_testbed.d_publications = 0 then
        fail "%d-CPU churn row made no publications" s.tf_cpus;
      if r.Smp_testbed.d_retired <> r.Smp_testbed.d_publications then
        fail "%d-CPU churn row: %d of %d generations never retired" s.tf_cpus
          (r.Smp_testbed.d_publications - r.Smp_testbed.d_retired)
          r.Smp_testbed.d_publications;
      if r.Smp_testbed.d_rx_frames = 0 then
        fail "%d-CPU churn row delivered no frames" s.tf_cpus)
    churn_rows;
  (* gate: rx_queues=0 (the default everywhere else) stays bit-identical
     to the tracegate goldens — the RX subsystem must be invisible when
     off *)
  let fig3_golden = (10629208, 17400) in
  let fig7_golden = (12538822, 17400, 731.0) in
  let f3 =
    guardpath_e2e ~label:"traffic/fig3" ~engine:Vm.Engine.Interp
      ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2
      ~packets:600 ()
  in
  let f7 = fig7_cell ~technique:Testbed.Carat ~engine:Vm.Engine.Interp () in
  let f3_ok = (f3.gp_total_cycles, f3.gp_guard_checks) = fig3_golden in
  let f7_ok = f7 = fig7_golden in
  Printf.printf "  rx-off fig3 cell: %d cycles, %d checks (golden: %b)\n"
    f3.gp_total_cycles f3.gp_guard_checks f3_ok;
  let c7, k7, m7 = f7 in
  Printf.printf
    "  rx-off fig7 cell: %d cycles, %d checks, median %.1f (golden: %b)\n" c7
    k7 m7 f7_ok;
  if not f3_ok then
    fail "rx_queues=0 fig3 cell differs from the pre-RX golden";
  if not f7_ok then
    fail "rx_queues=0 fig7 cell differs from the pre-RX golden";
  (* ---- artifact ---- *)
  let oc = open_out "BENCH_traffic.json" in
  let row_json s =
    let r = s.tf_result in
    Printf.sprintf
      "    {\"technique\": %S, \"cpus\": %d, \"churn\": %d, \"sent\": %d, \
       \"injected\": %d, \"rx_frames\": %d, \"rx_dropped\": %d, \
       \"tx_pps\": %.0f, \"rx_pps\": %.0f, \"lat_p50\": %.1f, \
       \"lat_p99\": %.1f, \"lat_p999\": %.1f, \"rx_irqs\": %d, \
       \"rx_polls\": %d, \"budget_exhausted\": %d, \"timer_kicks\": %d, \
       \"publications\": %d, \"retired\": %d, \"ipis\": %d, \
       \"stale_allows\": %d, \"send_errors\": %d}"
      s.tf_technique s.tf_cpus s.tf_churn r.Smp_testbed.d_sent
      r.Smp_testbed.d_injected r.Smp_testbed.d_rx_frames
      r.Smp_testbed.d_rx_dropped r.Smp_testbed.d_tx_pps
      r.Smp_testbed.d_rx_pps s.tf_p50 s.tf_p99 s.tf_p999
      r.Smp_testbed.d_rx_irqs r.Smp_testbed.d_rx_polls
      r.Smp_testbed.d_budget_exhausted r.Smp_testbed.d_timer_kicks
      r.Smp_testbed.d_publications r.Smp_testbed.d_retired
      r.Smp_testbed.d_ipis r.Smp_testbed.d_stale_allows
      r.Smp_testbed.d_send_errors
  in
  Printf.fprintf oc
    "{\n\
    \  \"flows\": %d,\n\
    \  \"count_per_cpu\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"churn_rows\": [\n%s\n  ],\n\
    \  \"fig3_bit_identical\": %b,\n\
    \  \"fig7_bit_identical\": %b,\n\
    \  \"gates_passed\": %b\n\
     }\n"
    flows count
    (String.concat ",\n" (List.map row_json rows))
    (String.concat ",\n" (List.map row_json churn_rows))
    f3_ok f7_ok (!failures = []);
  close_out oc;
  print_endline "  wrote BENCH_traffic.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "traffic: FAIL: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* san: the memory sanitizer's pay-for-what-you-use contract and its
   detection gates.

   Gate 1 — off is free: fig3/fig7-shaped cells with the sanitizer off
   must stay bit-identical to the tracegate goldens (same cycles, same
   guard checks); with it on, the guard decisions are unchanged and the
   cycle overhead is bounded.
   Gate 2 — at-access attribution: the sanitize fault campaign must
   report every memory-corruption class at the faulting access with
   allocation attribution under carat/panic, and the race detector must
   flag every seeded cross-CPU race.
   Gate 3 — the happens-before fixture suite: the clean RCU / NAPI /
   rebuild workloads stay silent, the seeded fixtures are flagged.
   Gate 4 — Alloc_lint: the seeded double-free and use-after-free are
   caught and the driver-scale KIR lints with zero errors.
   Writes BENCH_san.json and exits nonzero on any gate failure. *)

(* fig7_cell with the sanitizer enabled on the cell's kernel: same
   seeds, same packet counts; returns the sanitize-on cycle count plus
   the decision counters that must not move *)
let san_fig7_cell () =
  let config =
    {
      Testbed.default_config with
      machine = Machine.Presets.r350;
      technique = Testbed.Carat;
      stall_prob = 0.0004;
      engine = Vm.Engine.Interp;
    }
  in
  let tb = Testbed.create ~config () in
  Kernel.enable_sanitizer tb.Testbed.kernel;
  let machine = Testbed.machine tb in
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
  Policy.Engine.reset_stats (Policy.Policy_module.engine tb.Testbed.policy_module);
  let c0 = Machine.Model.cycles machine in
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 600; size = 128; seed = 5 });
  let c1 = Machine.Model.cycles machine in
  let st =
    Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
  in
  (c1 - c0, st.Policy.Engine.checks, st.Policy.Engine.denied,
   Kernel.san_report_count tb.Testbed.kernel)

(* the seeded Alloc_lint fixtures: a must-double-free and a
   must-use-after-free (the UAF pointer is null-checked so the only
   findings are the seeded errors) *)
let build_alloc_bugs () =
  let b = Kir.Builder.create "allocbugs" in
  let open Kir.Types in
  ignore (Kir.Builder.start_func b "df" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.call_unit b "kfree" [ p ]
  | None -> ());
  Kir.Builder.ret b None;
  ignore (Kir.Builder.start_func b "uaf" ~params:[] ~ret:(Some I64));
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    ignore (Kir.Builder.icmp b Eq I64 p (Imm 0));
    Kir.Builder.call_unit b "kfree" [ p ];
    let v = Kir.Builder.load b I64 p in
    Kir.Builder.ret b (Some v)
  | None -> Kir.Builder.ret b None);
  Kir.Builder.modul b

let run_san () =
  section "san: sanitizer pay-for-what-you-use, at-access attribution, races";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* ---- gate 1: sanitizer off => bit-identical to the goldens ---- *)
  let fig3_golden = (10629208, 17400) in
  let fig7_golden = (12538822, 17400, 731.0) in
  let f3 =
    guardpath_e2e ~label:"fig3/san-off" ~engine:Vm.Engine.Interp
      ~structure:Policy.Engine.Linear ~site_cache:false ~regions:2
      ~packets:600 ()
  in
  let c7, k7, m7 = fig7_cell ~technique:Testbed.Carat ~engine:Vm.Engine.Interp () in
  let f3_ok = (f3.gp_total_cycles, f3.gp_guard_checks) = fig3_golden in
  let f7_ok = (c7, k7, m7) = fig7_golden in
  Printf.printf "  san-off fig3 cell: %d cycles, %d checks (golden: %b)\n"
    f3.gp_total_cycles f3.gp_guard_checks f3_ok;
  Printf.printf
    "  san-off fig7 cell: %d cycles, %d checks, median %.1f (golden: %b)\n" c7
    k7 m7 f7_ok;
  if not f3_ok then
    fail "sanitizer-off fig3 cell differs from the pre-sanitizer golden";
  if not f7_ok then
    fail "sanitizer-off fig7 cell differs from the pre-sanitizer golden";
  let sc7, sk7, sd7, s_reports = san_fig7_cell () in
  let overhead = float_of_int (sc7 - c7) /. float_of_int c7 in
  Printf.printf
    "  san-on  fig7 cell: %d cycles (+%.1f%%), %d checks, %d denied, %d \
     reports\n"
    sc7 (100.0 *. overhead) sk7 sd7 s_reports;
  if sk7 <> k7 then fail "sanitizer on changed the guard-check count";
  if sd7 <> 0 then fail "sanitizer on changed guard decisions (denies)";
  if s_reports <> 0 then fail "clean fig7 run produced sanitizer reports";
  if sc7 <= c7 then fail "sanitizer on charged no shadow-check cycles";
  if overhead > 0.5 then
    fail "sanitizer overhead %.1f%% above the 50%% bound" (100.0 *. overhead);
  (* ---- gate 2: the sanitize campaign's at-access attribution ---- *)
  (* faults are round-robined across the classes, so at least one full
     round keeps every at-access gate non-vacuous *)
  let nclasses = List.length Fault.Inject.all_classes in
  let faults =
    match !fault_trials with
    | Some n -> max n nclasses
    | None -> if !quick then nclasses else 2 * nclasses
  in
  let report =
    Fault.Campaign.run ~sanitize:true
      { Fault.Campaign.default_config with faults }
  in
  print_string (Fault.Campaign.render report);
  let camp_fails = Fault.Campaign.check report in
  List.iter (fun m -> fail "campaign: %s" m) camp_fails;
  let panic = Fault.Harness.Carat Policy.Policy_module.Panic in
  List.iter
    (fun cls ->
      if (Fault.Campaign.cell report ~cls ~mode:panic).Fault.Campaign.injected = 0
      then
        fail "campaign: %s got no injections (at-access gate vacuous)"
          (Fault.Inject.cls_to_string cls))
    Fault.Inject.all_classes;
  let panic_t = Fault.Campaign.totals report ~mode:panic in
  (* ---- gate 3: the race-detector fixture suite ---- *)
  let suites = Race_suites.all () in
  print_string (Race_suites.render suites);
  if not (Race_suites.pass suites) then fail "race fixture suite failed";
  (* ---- gate 4: Alloc_lint seeded bugs + clean driver-scale KIR ---- *)
  let bugs = Analysis.Alloc_lint.lint (build_alloc_bugs ()) in
  let has code =
    List.exists (fun f -> f.Analysis.Kir_lint.code = code) bugs
  in
  Printf.printf "  alloc-lint seeded fixture: %d finding(s)\n"
    (List.length bugs);
  List.iter
    (fun f -> Printf.printf "    %s\n" (Analysis.Kir_lint.finding_to_string f))
    bugs;
  if not (has "L-double-free") then
    fail "alloc lint missed the seeded double-free";
  if not (has "L-use-after-free") then
    fail "alloc lint missed the seeded use-after-free";
  let driver =
    Nic.Driver_gen.generate ~module_scale:12 ~rx_queues:2
      ~tx_queues:Nic.Regs.max_tx_queues ()
  in
  let driver_findings = Analysis.Alloc_lint.lint driver in
  let driver_errs = Analysis.Kir_lint.errors driver_findings in
  Printf.printf "  alloc-lint driver-scale KIR: %d error(s), %d warning(s)\n"
    (List.length driver_errs)
    (List.length (Analysis.Kir_lint.warnings driver_findings));
  if driver_errs <> [] then
    fail "alloc lint false positives on the clean driver KIR";
  (* ---- artifact ---- *)
  let suite_json v =
    Printf.sprintf
      "    {\"name\": \"%s\", \"expect_races\": %b, \"reports\": %d, \
       \"pass\": %b}"
      v.Race_suites.v_name v.Race_suites.v_expect_races
      v.Race_suites.v_reports v.Race_suites.v_pass
  in
  let oc = open_out "BENCH_san.json" in
  Printf.fprintf oc
    "{\n\
    \  \"fig3_bit_identical\": %b,\n\
    \  \"fig7_bit_identical\": %b,\n\
    \  \"san_on_overhead\": %.4f,\n\
    \  \"campaign_faults_per_cell\": %d,\n\
    \  \"campaign_san_hits\": %d,\n\
    \  \"campaign_san_total\": %d,\n\
    \  \"campaign_race_hits\": %d,\n\
    \  \"campaign_race_total\": %d,\n\
    \  \"race_suites\": [\n%s\n  ],\n\
    \  \"alloc_lint_seeded_findings\": %d,\n\
    \  \"alloc_lint_driver_errors\": %d,\n\
    \  \"gates_passed\": %b\n\
     }\n"
    f3_ok f7_ok overhead faults panic_t.Fault.Campaign.san_hits
    panic_t.Fault.Campaign.san_total panic_t.Fault.Campaign.race_hits
    panic_t.Fault.Campaign.race_total
    (String.concat ",\n" (List.map suite_json suites))
    (List.length bugs) (List.length driver_errs) (!failures = []);
  close_out oc;
  print_endline "  wrote BENCH_san.json";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "san: FAIL: %s\n") (List.rev !failures);
    exit 1
  end

(* ------------------------------------------------------------------ *)

let all_figs =
  [
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("guards", run_guards);
    ("ablation-policy", run_ablation_policy);
    ("ablation-opt", run_ablation_opt);
    ("ablation-mechanism", run_mechanism);
    ("guardpath", run_guardpath);
    ("guardopt", run_guardopt);
    ("tracegate", run_tracegate);
    ("smpscale", run_smpscale);
    ("polscale", run_polscale);
    ("traffic", run_traffic);
    ("selfheal", run_selfheal);
    ("faults", run_faults);
    ("san", run_san);
    ("certify", run_certify);
    ("bechamel", run_bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--engine" :: e :: rest ->
      (match Vm.Engine.kind_of_string e with
      | Some k -> engine := k
      | None ->
        Printf.eprintf "--engine expects interp or compiled, got %s\n" e;
        exit 1);
      parse rest
    | "--sanitize" :: rest ->
      fault_sanitize := true;
      parse rest
    | "--trials" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> fault_trials := Some n
      | _ ->
        Printf.eprintf "--trials expects a positive integer, got %s\n" n;
        exit 1);
      parse rest
    | a :: rest -> a :: parse rest
    | [] -> []
  in
  let args = parse args in
  print_endline banner;
  print_endline
    "regenerating the paper's evaluation from the simulation (seeded,\n\
     deterministic); absolute numbers are model estimates — shapes and\n\
     relative effects are the reproduction target";
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) all_figs
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all_figs with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown target %s; known: %s\n" name
            (String.concat " " (List.map fst all_figs));
          exit 1)
      names
