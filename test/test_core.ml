(* Core facade: testbed assembly and the experiment runners (small
   parameterizations for speed). *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small_cfg technique =
  { Testbed.default_config with technique; module_scale = 2 }

(* ---------- testbed ---------- *)

let test_carat_testbed () =
  let tb = Testbed.create ~config:(small_cfg Testbed.Carat) () in
  let m = tb.Testbed.driver_kir in
  checkb "driver transformed" true
    (Kir.Types.meta_find m Passes.Guard_injection.meta_guarded = Some "true");
  checkb "signed" true
    (Kir.Types.meta_find m Passes.Signing.meta_sig <> None);
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 50 } in
  checki "packets" 50 r.Net.Pktgen.sent;
  let st = Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module) in
  checkb "guards executed" true (st.Policy.Engine.checks > 0);
  checki "no denials" 0 st.Policy.Engine.denied

let test_baseline_testbed () =
  let tb = Testbed.create ~config:(small_cfg Testbed.Baseline) () in
  checkb "no guards in driver" true
    (Passes.Guard_injection.count_guards tb.Testbed.driver_kir = 0);
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 50 } in
  checki "packets" 50 r.Net.Pktgen.sent;
  let st = Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module) in
  checki "no guard calls" 0 st.Policy.Engine.checks

let test_ab_same_traffic () =
  let run technique =
    let tb = Testbed.create ~config:(small_cfg technique) () in
    ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 30 });
    Machine.Model.add_cycles (Testbed.machine tb) 50_000_000;
    Nic.Device.sync (Testbed.device tb);
    ( Nic.Device.tx_frames (Testbed.device tb),
      List.map (fun f -> f.Nic.Device.data) (Nic.Device.recent_frames (Testbed.device tb)) )
  in
  let nb, fb = run Testbed.Baseline in
  let nc, fc = run Testbed.Carat in
  checki "same frame count" nb nc;
  checkb "identical bytes" true (fb = fc)

let test_carat_slower_but_close () =
  let run technique =
    let tb = Testbed.create ~config:(small_cfg technique) () in
    ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 100; seed = 3 });
    let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 400; seed = 3 } in
    r.Net.Pktgen.pps
  in
  let base = run Testbed.Baseline in
  let carat = run Testbed.Carat in
  checkb "carat not faster" true (carat <= base);
  let slowdown = base /. carat in
  checkb "overhead under 3%" true (slowdown < 1.03)

let test_region_count_config () =
  let config =
    { (small_cfg Testbed.Carat) with policy = Policy.Region.kernel_only_padded 64 }
  in
  let tb = Testbed.create ~config () in
  checki "64 regions installed" 64
    (Policy.Engine.count (Policy.Policy_module.engine tb.Testbed.policy_module));
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 30 } in
  checki "still works" 30 r.Net.Pktgen.sent

let test_machine_selection () =
  let config = { (small_cfg Testbed.Carat) with machine = Machine.Presets.r415 } in
  let tb = Testbed.create ~config () in
  Alcotest.(check string) "r415 used" "r415"
    (Testbed.machine tb).Machine.Model.p.Machine.Model.name

(* ---------- experiments (smoke-scale) ---------- *)

let test_fig_throughput_small () =
  let r = Experiments.fig4 ~trials:4 ~packets:80 () in
  Alcotest.(check string) "machine" "r350" r.Experiments.machine_name;
  checki "two series" 2 (List.length r.Experiments.series);
  List.iter
    (fun s ->
      checki "trials" 4 (Array.length s.Experiments.pps);
      Array.iter (fun p -> checkb "pps sane" true (p > 10_000.0)) s.Experiments.pps)
    r.Experiments.series

let test_fig5_series_labels () =
  let r = Experiments.fig5 ~trials:2 ~packets:60 () in
  Alcotest.(check (list string)) "labels"
    [ "carat"; "carat16"; "carat64"; "baseline" ]
    (List.map (fun s -> s.Experiments.label) r.Experiments.series)

let test_fig6_shape () =
  let pts = Experiments.fig6 ~trials:2 ~packets:60 ~sizes:[ 64; 512 ] () in
  checki "two sizes" 2 (List.length pts);
  List.iter
    (fun p ->
      checkb "slowdown sane" true
        (p.Experiments.slowdown > 0.9 && p.Experiments.slowdown < 1.2))
    pts

let test_fig7_medians () =
  let r = Experiments.fig7 ~packets:250 () in
  checkb "medians in band" true
    (r.Experiments.base_median > 300.0 && r.Experiments.base_median < 2000.0);
  checkb "carat adds little" true
    (r.Experiments.carat_median -. r.Experiments.base_median < 500.0)

let test_transform_accounting () =
  let t = Experiments.transform_accounting ~module_scale:4 () in
  checkb "functions" true (t.Experiments.functions > 10);
  checkb "guards between 0 and memops" true
    (t.Experiments.guards_inserted > 0
    && t.Experiments.guards_inserted <= t.Experiments.memory_ops);
  checkb "signed" true (t.Experiments.signature <> "<unsigned>")

let test_policy_bench_runs () =
  let pts =
    Experiments.policy_structure_bench ~checks:300 ~region_counts:[ 2; 8 ]
      ~kinds:[ Policy.Engine.Linear; Policy.Engine.Cached ]
      ~placements:[ Experiments.Rule_last ] ()
  in
  checki "four points" 4 (List.length pts);
  (* placement matters for the linear scan: first beats last at n=8 *)
  let both =
    Experiments.policy_structure_bench ~checks:300 ~region_counts:[ 8 ]
      ~kinds:[ Policy.Engine.Linear ] ()
  in
  (match both with
  | [ last; first ] ->
    checkb "first-placed rule scans less" true
      (first.Experiments.entries_scanned_per_check
      < last.Experiments.entries_scanned_per_check)
  | _ -> Alcotest.fail "expected two placements");
  List.iter
    (fun p ->
      checkb "cost positive" true (p.Experiments.cycles_per_check > 0.0))
    pts

let test_mechanism_sensitivity_runs () =
  let pts = Experiments.mechanism_sensitivity ~trials:2 ~packets:50 () in
  checki "four variants" 4 (List.length pts);
  List.iter
    (fun p ->
      checkb "pps sane" true (p.Experiments.baseline_pps > 10_000.0);
      checkb "overhead bounded" true
        (p.Experiments.overhead_pct > -5.0 && p.Experiments.overhead_pct < 20.0))
    pts;
  (* the speculation knockout must cost more than stock *)
  (match pts with
  | stock :: no_spec :: _ ->
    checkb "speculation is load-bearing" true
      (no_spec.Experiments.overhead_pct > stock.Experiments.overhead_pct)
  | _ -> Alcotest.fail "unexpected shape")

let test_opt_ablation_runs () =
  let rows = Experiments.guard_optimization_ablation ~trials:2 ~packets:50 () in
  checki "four rows" 4 (List.length rows);
  (match rows with
  | [ base; unopt; opt; aggr ] ->
    checki "baseline has no guards" 0 base.Experiments.static_guards;
    (* on the driver's straight-line hot path there is little to remove
       (the paper's very argument for skipping optimization); what the
       optimizing pipeline must never do is add checks *)
    checkb "optimized static sites not more" true
      (opt.Experiments.static_guards <= unopt.Experiments.static_guards);
    checkb "optimized dynamic checks not more" true
      (opt.Experiments.checks_per_packet
      <= unopt.Experiments.checks_per_packet +. 0.01);
    (* the certified optimizer must strictly beat the local tier on the
       driver: coalescing and hoist-widening fire where elim/hoist alone
       cannot *)
    checkb "aggressive static sites fewer" true
      (aggr.Experiments.static_guards < opt.Experiments.static_guards);
    checkb "aggressive dynamic checks not more" true
      (aggr.Experiments.checks_per_packet
      <= opt.Experiments.checks_per_packet +. 0.01)
  | _ -> Alcotest.fail "unexpected shape")

let () =
  Alcotest.run "core"
    [
      ( "testbed",
        [
          Alcotest.test_case "carat" `Quick test_carat_testbed;
          Alcotest.test_case "baseline" `Quick test_baseline_testbed;
          Alcotest.test_case "A/B same traffic" `Quick test_ab_same_traffic;
          Alcotest.test_case "carat slower but close" `Quick test_carat_slower_but_close;
          Alcotest.test_case "region count" `Quick test_region_count_config;
          Alcotest.test_case "machine selection" `Quick test_machine_selection;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "throughput smoke" `Slow test_fig_throughput_small;
          Alcotest.test_case "fig5 labels" `Slow test_fig5_series_labels;
          Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
          Alcotest.test_case "fig7 medians" `Slow test_fig7_medians;
          Alcotest.test_case "transform accounting" `Quick test_transform_accounting;
          Alcotest.test_case "policy bench" `Quick test_policy_bench_runs;
          Alcotest.test_case "opt ablation" `Slow test_opt_ablation_runs;
          Alcotest.test_case "mechanism sensitivity" `Slow test_mechanism_sensitivity_runs;
        ] );
    ]
