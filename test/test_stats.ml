(* Stats: summaries, CDFs, histograms. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_summary_known () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checki "n" 5 s.Stats.Summary.n;
  checkf "mean" 3.0 s.Stats.Summary.mean;
  checkf "median" 3.0 s.Stats.Summary.median;
  checkf "min" 1.0 s.Stats.Summary.min;
  checkf "max" 5.0 s.Stats.Summary.max;
  checkf "stddev" (sqrt 2.5) s.Stats.Summary.stddev

let test_summary_even_median () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "interpolated" 2.5 s.Stats.Summary.median

let test_summary_unsorted_input () =
  let s = Stats.Summary.of_array [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median of shuffled" 3.0 s.Stats.Summary.median

let test_summary_empty_and_single () =
  let e = Stats.Summary.of_array [||] in
  checki "empty n" 0 e.Stats.Summary.n;
  checkb "empty median nan" true (Float.is_nan e.Stats.Summary.median);
  let s = Stats.Summary.of_array [| 7.0 |] in
  checkf "single" 7.0 s.Stats.Summary.median;
  checkf "single p99" 7.0 s.Stats.Summary.p99

let test_percentiles () =
  let xs = Array.init 101 float_of_int in
  checkf "p5" 5.0 (Stats.Summary.percentile xs 0.05);
  checkf "p50" 50.0 (Stats.Summary.percentile xs 0.5);
  checkf "p95" 95.0 (Stats.Summary.percentile xs 0.95)

let test_of_ints () =
  let s = Stats.Summary.of_ints [| 10; 20; 30 |] in
  checkf "ints mean" 20.0 s.Stats.Summary.mean

let prop_median_bounded =
  QCheck.Test.make ~name:"median within min..max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.Summary.of_array xs in
      s.Stats.Summary.median >= s.Stats.Summary.min
      && s.Stats.Summary.median <= s.Stats.Summary.max)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 50) (float_range 0.0 1e6))
    (fun xs ->
      let p q = Stats.Summary.percentile xs q in
      p 0.1 <= p 0.5 && p 0.5 <= p 0.9)

let test_summary_nan_tolerant () =
  (* NaNs carry no information: the summary is computed over the
     remaining samples, and an all-NaN array degrades to empty *)
  let s = Stats.Summary.of_array [| nan; 1.0; 2.0; nan; 3.0 |] in
  checki "nans dropped from n" 3 s.Stats.Summary.n;
  checkf "mean over the rest" 2.0 s.Stats.Summary.mean;
  checkf "median over the rest" 2.0 s.Stats.Summary.median;
  checkf "max unpoisoned" 3.0 s.Stats.Summary.max;
  let all_nan = Stats.Summary.of_array [| nan; nan |] in
  checki "all-nan is empty" 0 all_nan.Stats.Summary.n;
  checkb "all-nan median is nan" true
    (Float.is_nan all_nan.Stats.Summary.median)

(* The old O(n) quantile implementation, kept as the reference the
   binary search must replicate point-for-point. *)
let quantile_linear_scan (points : (float * float) array) q =
  let n = Array.length points in
  if n = 0 then nan
  else begin
    let rec go i =
      if i >= n then fst points.(n - 1)
      else if snd points.(i) >= q then fst points.(i)
      else go (i + 1)
    in
    go 0
  end

let prop_quantile_matches_linear_scan =
  QCheck.Test.make
    ~name:"binary-search quantile equals the linear scan on every tick"
    ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 80) (float_range (-1e5) 1e5))
        (float_range (-0.2) 1.2))
    (fun (xs, q) ->
      let c = Stats.Cdf.of_samples xs in
      let points =
        Array.mapi
          (fun i x -> (x, float_of_int (i + 1) /. float_of_int (Array.length xs)))
          (let s = Array.copy xs in
           Array.sort Float.compare s;
           s)
      in
      let fast = Stats.Cdf.quantile c q in
      let slow = quantile_linear_scan points q in
      fast = slow
      (* and the standard grid, including the exact fractions *)
      && List.for_all
           (fun q -> Stats.Cdf.quantile c q = quantile_linear_scan points q)
           [ 0.0; 0.05; 0.25; 0.5; 0.75; 0.95; 1.0 ])

let test_cdf_basic () =
  let c = Stats.Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "at 2" 0.5 (Stats.Cdf.at c 2.0);
  checkf "below" 0.0 (Stats.Cdf.at c 0.5);
  checkf "above" 1.0 (Stats.Cdf.at c 10.0);
  checkf "quantile 0.5" 2.0 (Stats.Cdf.quantile c 0.5);
  checkf "quantile 1.0" 4.0 (Stats.Cdf.quantile c 1.0)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range 0.0 1000.0))
    (fun xs ->
      let c = Stats.Cdf.of_samples xs in
      let vs = [ 10.0; 100.0; 500.0; 900.0 ] in
      let rec mono = function
        | a :: (b :: _ as rest) -> Stats.Cdf.at c a <= Stats.Cdf.at c b && mono rest
        | _ -> true
      in
      mono vs)

let test_cdf_render () =
  let c1 = Stats.Cdf.of_samples (Array.init 50 (fun i -> float_of_int i)) in
  let c2 = Stats.Cdf.of_samples (Array.init 50 (fun i -> float_of_int (i + 5))) in
  let out =
    Stats.Cdf.render ~title:"test cdf" ~unit_label:"pps"
      [ ("a", c1); ("b", c2) ]
  in
  checkb "has title" true (String.length out > 0);
  checkb "has median line" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> String.length l > 3 && String.sub l 0 3 = " 50"))

let test_hist_binning () =
  let h = Stats.Hist.create ~lo:0.0 ~hi:100.0 ~bins:10 in
  Stats.Hist.add h 5.0;
  Stats.Hist.add h 15.0;
  Stats.Hist.add h 15.5;
  Stats.Hist.add h 99.9;
  Stats.Hist.add h (-1.0);
  Stats.Hist.add h 100.0;
  let counts = Stats.Hist.counts h in
  checki "bin0" 1 counts.(0);
  checki "bin1" 2 counts.(1);
  checki "bin9" 1 counts.(9);
  checki "outliers" 2 (Stats.Hist.outliers h);
  checki "total includes outliers" 6 (Stats.Hist.total h)

let test_hist_bounds_validation () =
  (match Stats.Hist.create ~lo:10.0 ~hi:10.0 ~bins:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad bounds accepted");
  match Stats.Hist.create ~lo:0.0 ~hi:1.0 ~bins:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bins accepted"

let test_hist_bin_bounds () =
  let h = Stats.Hist.create ~lo:0.0 ~hi:100.0 ~bins:10 in
  let lo, hi = Stats.Hist.bin_bounds h 3 in
  checkf "lo" 30.0 lo;
  checkf "hi" 40.0 hi

let prop_hist_conserves =
  QCheck.Test.make ~name:"histogram conserves sample count" ~count:100
    QCheck.(array_of_size Gen.(int_range 0 200) (float_range (-50.0) 150.0))
    (fun xs ->
      let h = Stats.Hist.of_samples ~lo:0.0 ~hi:100.0 ~bins:7 xs in
      Stats.Hist.total h = Array.length xs)

let test_hist_render () =
  let h1 = Stats.Hist.of_samples ~lo:0.0 ~hi:10.0 ~bins:5 [| 1.0; 2.0; 7.0 |] in
  let h2 = Stats.Hist.of_samples ~lo:0.0 ~hi:10.0 ~bins:5 [| 3.0; 8.0 |] in
  let out =
    Stats.Hist.render ~title:"hist" ~unit_label:"cyc" [ ("x", h1); ("y", h2) ]
  in
  checkb "renders" true (String.length out > 50)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "known values" `Quick test_summary_known;
          Alcotest.test_case "even median" `Quick test_summary_even_median;
          Alcotest.test_case "unsorted input" `Quick test_summary_unsorted_input;
          Alcotest.test_case "empty/single" `Quick test_summary_empty_and_single;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "of_ints" `Quick test_of_ints;
          Alcotest.test_case "nan tolerant" `Quick test_summary_nan_tolerant;
          QCheck_alcotest.to_alcotest prop_median_bounded;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "basics" `Quick test_cdf_basic;
          QCheck_alcotest.to_alcotest prop_cdf_monotone;
          QCheck_alcotest.to_alcotest prop_quantile_matches_linear_scan;
          Alcotest.test_case "render" `Quick test_cdf_render;
        ] );
      ( "hist",
        [
          Alcotest.test_case "binning" `Quick test_hist_binning;
          Alcotest.test_case "bounds validation" `Quick test_hist_bounds_validation;
          Alcotest.test_case "bin bounds" `Quick test_hist_bin_bounds;
          QCheck_alcotest.to_alcotest prop_hist_conserves;
          Alcotest.test_case "render" `Quick test_hist_render;
        ] );
    ]
