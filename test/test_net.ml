(* Net: frame construction, the sendmsg path, pktgen measurement. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let setup ?(ring = 64) ?(stall_prob = 0.0) () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let dev = Nic.Device.create ~stall_prob k in
  (match Kernel.insmod k (Nic.Driver_gen.generate ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  let stack = Net.Netstack.create k dev in
  Net.Netstack.bring_up stack ~ring_entries:ring;
  (k, dev, stack)

(* ---------- frames ---------- *)

let test_frame_layout () =
  let f = Net.Frame.build ~seq:5 ~size:128 () in
  checki "size" 128 (String.length f);
  Alcotest.(check (option int)) "seq" (Some 5) (Net.Frame.seq_of f);
  Alcotest.(check (option int)) "ethertype" (Some Net.Frame.ethertype_experimental)
    (Net.Frame.ethertype_of f);
  (* destination mac in the first six bytes *)
  checki "dst first byte" 0x02 (Char.code f.[0])

let test_frame_min_size () =
  match Net.Frame.build ~seq:0 ~size:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized frame accepted"

let test_frame_custom_fields () =
  let f =
    Net.Frame.build ~dst:Net.Frame.broadcast ~ethertype:0x0800 ~seq:1 ~size:64 ()
  in
  checki "broadcast" 0xff (Char.code f.[0]);
  Alcotest.(check (option int)) "ethertype" (Some 0x0800) (Net.Frame.ethertype_of f)

let prop_frame_seq_roundtrip =
  QCheck.Test.make ~name:"frame sequence round-trips" ~count:200
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 64 1500))
    (fun (seq, size) ->
      Net.Frame.seq_of (Net.Frame.build ~seq ~size ()) = Some seq)

let test_mac_to_string () =
  Alcotest.(check string) "format" "ff:ff:ff:ff:ff:ff"
    (Net.Frame.mac_to_string Net.Frame.broadcast)

(* ---------- netstack ---------- *)

let test_sendmsg_delivers_payload () =
  let k, dev, stack = setup () in
  let frame = Net.Frame.build ~seq:42 ~size:200 () in
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub frame;
  checki "bytes sent" 200 (Net.Netstack.sendmsg stack ~user_buf:ub ~len:200);
  Machine.Model.add_cycles (Kernel.machine k) 1_000_000;
  Nic.Device.sync dev;
  (match Nic.Device.recent_frames dev with
  | f :: _ ->
    Alcotest.(check string) "payload survived the stack" frame f.Nic.Device.data
  | [] -> Alcotest.fail "nothing on the wire");
  checki "sent counter" 1 (Net.Netstack.sent stack)

let test_sendmsg_blocks_on_tiny_ring () =
  let k, _, stack = setup ~ring:4 () in
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:1500 ());
  (* flood: more packets than ring slots without giving time *)
  for _ = 1 to 12 do
    ignore (Net.Netstack.sendmsg stack ~user_buf:ub ~len:1500)
  done;
  checkb "blocked at least once" true (Net.Netstack.busy_retries stack > 0);
  checki "all eventually sent" 12 (Net.Netstack.sent stack)

let test_sendmsg_charges_cycles () =
  let k, _, stack = setup () in
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:128 ());
  let m = Kernel.machine k in
  let c0 = Machine.Model.cycles m in
  ignore (Net.Netstack.sendmsg stack ~user_buf:ub ~len:128);
  let dt = Machine.Model.cycles m - c0 in
  checkb "at least the syscall cost" true
    (dt >= Machine.Presets.r350.Machine.Model.syscall_overhead);
  checkb "not absurd" true (dt < 100_000)

(* ---------- graceful degradation ---------- *)

let setup_with_lm ?(ring = 64) () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let dev = Nic.Device.create k in
  let lm =
    match Kernel.insmod k (Nic.Driver_gen.generate ()) with
    | Ok lm -> lm
    | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e)
  in
  let stack = Net.Netstack.create k dev in
  Net.Netstack.bring_up stack ~ring_entries:ring;
  (k, stack, lm)

let test_sendmsg_ring_full_typed_error () =
  let k, stack, _ = setup_with_lm ~ring:4 () in
  (* no retry budget: the first busy ring surfaces as a typed error
     instead of spinning *)
  Net.Netstack.set_max_retries stack 0;
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:1500 ());
  let rec flood n =
    if n = 0 then Alcotest.fail "ring never filled"
    else
      match Net.Netstack.try_sendmsg stack ~user_buf:ub ~len:1500 with
      | Ok _ -> flood (n - 1)
      | Error (Net.Netstack.Ring_full_timeout tries) ->
        checki "gave up after max_retries" 0 tries
      | Error e ->
        Alcotest.failf "wrong error: %s" (Net.Netstack.send_error_to_string e)
  in
  flood 32;
  checkb "error counted" true (Net.Netstack.send_errors stack > 0);
  checkb "kernel alive" true (Kernel.panic_state k = None)

let test_sendmsg_bounded_retry_succeeds () =
  (* with a retry budget, the backoff gives the device time to drain and
     the same flood goes through *)
  let k, stack, _ = setup_with_lm ~ring:4 () in
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:1500 ());
  for _ = 1 to 12 do
    match Net.Netstack.try_sendmsg stack ~user_buf:ub ~len:1500 with
    | Ok n -> checki "full frame" 1500 n
    | Error e ->
      Alcotest.failf "send failed: %s" (Net.Netstack.send_error_to_string e)
  done;
  checki "no errors" 0 (Net.Netstack.send_errors stack)

let test_sendmsg_quarantined_driver () =
  let k, stack, lm = setup_with_lm () in
  let ub = Kernel.map_user k ~size:2048 in
  Kernel.write_string k ~addr:ub (Net.Frame.build ~seq:0 ~size:128 ());
  checki "first send ok" 128 (Net.Netstack.sendmsg stack ~user_buf:ub ~len:128);
  Kernel.quarantine_module k lm ~reason:"test";
  (match Net.Netstack.try_sendmsg stack ~user_buf:ub ~len:128 with
  | Error Net.Netstack.Driver_quarantined -> ()
  | Ok _ -> Alcotest.fail "send succeeded through a quarantined driver"
  | Error e ->
    Alcotest.failf "wrong error: %s" (Net.Netstack.send_error_to_string e));
  (* the raising variant reports the same thing *)
  (match Net.Netstack.sendmsg stack ~user_buf:ub ~len:128 with
  | exception Net.Netstack.Send_failed Net.Netstack.Driver_quarantined -> ()
  | _ -> Alcotest.fail "expected Send_failed");
  checkb "kernel alive" true (Kernel.panic_state k = None)

let test_pktgen_degrades_on_quarantine () =
  let k, stack, lm = setup_with_lm () in
  Kernel.quarantine_module k lm ~reason:"test";
  let r =
    Net.Pktgen.run stack { Net.Pktgen.default_config with count = 50 }
  in
  checki "nothing sent" 0 r.Net.Pktgen.sent;
  checkb "error reported" true
    (r.Net.Pktgen.error = Some Net.Netstack.Driver_quarantined);
  checki "latency array matches" 0 (Array.length r.Net.Pktgen.latencies);
  checkb "kernel alive" true (Kernel.panic_state k = None)

(* ---------- NAPI receive ---------- *)

let setup_napi ?(queues = 2) ?(ring = 16) ?(budget = 32) ?(coalesce = 1)
    ?(timer_passes = 4) () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let dev = Nic.Device.create k in
  (match Kernel.insmod k (Nic.Driver_gen.generate ~rx_queues:queues ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  let stack = Net.Netstack.create k dev in
  Net.Netstack.bring_up stack ~ring_entries:64;
  let rx = Net.Rx.create ~budget ~coalesce ~timer_passes k dev ~queues in
  Net.Rx.bring_up rx ~ring_entries:ring ~bufsz:2048;
  (k, dev, rx)

let test_napi_budget_exhaustion_and_rearm () =
  let _, dev, rx = setup_napi ~budget:4 ~coalesce:1 () in
  for i = 0 to 9 do
    ignore (Nic.Device.rx_inject ~hash:0 dev (Net.Frame.build ~seq:i ~size:64 ()))
  done;
  (* pass 1: take the irq (masking the queue), consume a budget's worth *)
  checki "first pass consumes the budget" 4 (Net.Rx.service rx ~q:0);
  checki "one interrupt" 1 (Net.Rx.irqs rx ~q:0);
  (* passes 2-3: still scheduled, no new interrupt while masked *)
  checki "second pass" 4 (Net.Rx.service rx ~q:0);
  checki "third pass drains the rest" 2 (Net.Rx.service rx ~q:0);
  checki "still one interrupt" 1 (Net.Rx.irqs rx ~q:0);
  checki "two exhausted passes" 2 (Net.Rx.budget_exhausted rx ~q:0);
  checki "one re-arm" 1 (Net.Rx.rearms rx ~q:0);
  checki "all frames through" 10 (Net.Rx.frames rx ~q:0);
  (* re-armed: the next frame raises a fresh interrupt *)
  ignore (Nic.Device.rx_inject ~hash:0 dev (Net.Frame.build ~seq:10 ~size:64 ()));
  checki "consumed after re-arm" 1 (Net.Rx.service rx ~q:0);
  checki "second interrupt" 2 (Net.Rx.irqs rx ~q:0)

let test_napi_coalescing_timer_kick () =
  let _, dev, rx = setup_napi ~coalesce:4 ~timer_passes:2 () in
  (* two frames stay below the 4-frame coalescing threshold: no cause *)
  for i = 0 to 1 do
    ignore (Nic.Device.rx_inject ~hash:0 dev (Net.Frame.build ~seq:i ~size:64 ()))
  done;
  checki "no irq below threshold" 0 (Net.Rx.service rx ~q:0);
  (* the second idle pass fires the delay timer; the third delivers *)
  checki "timer pass" 0 (Net.Rx.service rx ~q:0);
  checki "tail batch delivered" 2 (Net.Rx.service rx ~q:0);
  checki "one timer kick" 1 (Net.Rx.timer_kicks rx ~q:0);
  checki "one interrupt" 1 (Net.Rx.irqs rx ~q:0)

let prop_rx_dma_byte_identity =
  let k, dev, rx = setup_napi ~queues:2 ~ring:16 () in
  let adapter_rxq = Option.get (Kernel.symbol_address k "adapter_rxq") in
  QCheck.Test.make ~name:"RX payloads survive DMA byte-identically" ~count:60
    QCheck.(triple (int_bound 0xFFFFFF) (int_range 64 1500) (int_bound 1000))
    (fun (seq, size, hash) ->
      let frame = Net.Frame.build ~seq ~size () in
      let q = Nic.Device.rx_queue_for dev ~hash in
      let qb = adapter_rxq + (q * 64) in
      let ring = Kernel.read k ~addr:qb ~size:8 in
      let next = Kernel.read k ~addr:(qb + 16) ~size:8 in
      let ok = Nic.Device.rx_inject ~hash dev frame in
      (* the frame lands in the buffer of the driver's next descriptor *)
      let buf =
        Kernel.read k ~addr:(ring + (next * Nic.Regs.desc_size)) ~size:8
      in
      let got = Kernel.read_string k ~addr:buf ~len:size in
      ignore (Net.Rx.flush rx ~q : int);
      ok && got = frame)

let test_deny_policy_blocks_rx () =
  (* the other half of the DMA property: with write permission on the
     kernel half revoked, the guarded driver cannot walk its own RX ring
     — the module quarantines and zero frames are delivered *)
  let config =
    {
      Smp_testbed.default_config with
      cpus = 1;
      rx_queues = 1;
      rx_coalesce = 1;
      on_deny = Policy.Policy_module.Quarantine;
      seed = 5;
    }
  in
  let tb = Smp_testbed.create ~config () in
  let dev = Smp_testbed.device tb in
  let rx = Option.get (Smp_testbed.rx tb) in
  ignore (Nic.Device.rx_inject dev (Net.Frame.build ~seq:0 ~size:64 ()));
  checki "delivered while allowed" 1 (Net.Rx.service rx ~q:0);
  let ro =
    [
      Policy.Region.v ~tag:"kernel-ro" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_read ();
      Policy.Region.v ~tag:"user-low-half" ~base:0x0
        ~len:Kernel.Layout.kernel_base ~prot:0 ();
    ]
  in
  Policy.Policy_module.set_policy (Smp_testbed.policy_module tb) ro;
  for i = 1 to 5 do
    ignore (Nic.Device.rx_inject dev (Net.Frame.build ~seq:i ~size:64 ()))
  done;
  ignore (Net.Rx.service rx ~q:0 : int);
  ignore (Net.Rx.service rx ~q:0 : int);
  checki "zero frames after revocation" 1 (Net.Rx.frames rx ~q:0);
  checkb "driver quarantined" true
    (Kernel.quarantine_records (Smp_testbed.kernel tb) <> []);
  checkb "kernel alive" true (Kernel.panic_state (Smp_testbed.kernel tb) = None)

(* ---------- pktgen ---------- *)

let test_pktgen_counts () =
  let _, dev, stack = setup () in
  let r =
    Net.Pktgen.run stack
      { Net.Pktgen.default_config with count = 50; size = 128 }
  in
  checki "sent" 50 r.Net.Pktgen.sent;
  checki "latencies recorded" 50 (Array.length r.Net.Pktgen.latencies);
  checkb "cycles positive" true (r.Net.Pktgen.cycles > 0);
  checkb "pps positive" true (r.Net.Pktgen.pps > 0.0);
  Machine.Model.add_cycles (Kernel.machine stack.Net.Netstack.kernel) 10_000_000;
  Nic.Device.sync dev;
  checki "frames on the wire" 50 (Nic.Device.tx_frames dev)

let test_pktgen_latency_reasonable () =
  let _, _, stack = setup () in
  ignore
    (Net.Pktgen.run stack
       { Net.Pktgen.default_config with count = 100; size = 128 });
  let r =
    Net.Pktgen.run stack
      { Net.Pktgen.default_config with count = 200; size = 128 }
  in
  let med =
    Stats.Summary.median (Array.map float_of_int r.Net.Pktgen.latencies)
  in
  (* the paper reports ~686 cycles; the model should be in that band *)
  checkb "median in the hundreds" true (med > 300.0 && med < 2000.0)

let test_pktgen_throughput_band () =
  let _, _, stack = setup () in
  ignore
    (Net.Pktgen.run stack
       { Net.Pktgen.default_config with count = 100; size = 128 });
  let r =
    Net.Pktgen.run stack
      { Net.Pktgen.default_config with count = 400; size = 128 }
  in
  (* the paper's figures are in the 90k-140k pps band *)
  checkb "pps plausible" true
    (r.Net.Pktgen.pps > 60_000.0 && r.Net.Pktgen.pps < 250_000.0)

let test_pktgen_deterministic_with_seed () =
  let run () =
    let _, _, stack = setup () in
    let r =
      Net.Pktgen.run stack
        { Net.Pktgen.default_config with count = 100; size = 128; seed = 9 }
    in
    (r.Net.Pktgen.cycles, r.Net.Pktgen.pps)
  in
  let a = run () and b = run () in
  checkb "bit-identical reruns" true (a = b)

let test_pktgen_size_affects_cycles () =
  let _, _, stack = setup () in
  ignore
    (Net.Pktgen.run stack
       { Net.Pktgen.default_config with count = 100; size = 64 });
  let small =
    Net.Pktgen.run stack
      { Net.Pktgen.default_config with count = 300; size = 64 }
  in
  let big =
    Net.Pktgen.run stack
      { Net.Pktgen.default_config with count = 300; size = 1500 }
  in
  checkb "bigger packets cost more cycles" true
    (big.Net.Pktgen.cycles > small.Net.Pktgen.cycles)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "layout" `Quick test_frame_layout;
          Alcotest.test_case "min size" `Quick test_frame_min_size;
          Alcotest.test_case "custom fields" `Quick test_frame_custom_fields;
          Alcotest.test_case "mac to string" `Quick test_mac_to_string;
          QCheck_alcotest.to_alcotest prop_frame_seq_roundtrip;
        ] );
      ( "netstack",
        [
          Alcotest.test_case "payload delivery" `Quick test_sendmsg_delivers_payload;
          Alcotest.test_case "blocks on tiny ring" `Quick test_sendmsg_blocks_on_tiny_ring;
          Alcotest.test_case "charges cycles" `Quick test_sendmsg_charges_cycles;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "ring-full typed error" `Quick
            test_sendmsg_ring_full_typed_error;
          Alcotest.test_case "bounded retry succeeds" `Quick
            test_sendmsg_bounded_retry_succeeds;
          Alcotest.test_case "quarantined driver" `Quick
            test_sendmsg_quarantined_driver;
          Alcotest.test_case "pktgen degrades" `Quick
            test_pktgen_degrades_on_quarantine;
        ] );
      ( "napi",
        [
          Alcotest.test_case "budget exhaustion and re-arm" `Quick
            test_napi_budget_exhaustion_and_rearm;
          Alcotest.test_case "coalescing timer kick" `Quick
            test_napi_coalescing_timer_kick;
          QCheck_alcotest.to_alcotest prop_rx_dma_byte_identity;
          Alcotest.test_case "deny policy blocks rx" `Quick
            test_deny_policy_blocks_rx;
        ] );
      ( "pktgen",
        [
          Alcotest.test_case "counts" `Quick test_pktgen_counts;
          Alcotest.test_case "latency band" `Quick test_pktgen_latency_reasonable;
          Alcotest.test_case "throughput band" `Quick test_pktgen_throughput_band;
          Alcotest.test_case "deterministic" `Quick test_pktgen_deterministic_with_seed;
          Alcotest.test_case "size scaling" `Quick test_pktgen_size_affects_cycles;
        ] );
    ]
