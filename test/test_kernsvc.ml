(* Kernel services (kernfs + msgq) and their protection by region
   policies — the paper's §5 file/IPC extension, end to end. *)

open Carat_kop
open Kir.Types


let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let fresh () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  k

(* ---------- kernfs mechanics ---------- *)

let test_create_and_contents () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"/etc/motd"
      ~mode:(Kernsvc.Kernfs.mode_read lor Kernsvc.Kernfs.mode_write)
      ~capacity:128
  in
  Kernsvc.Kernfs.write_contents fs ~ino "welcome to the node\n";
  checks "contents" "welcome to the node\n" (Kernsvc.Kernfs.read_contents fs ~ino);
  checki "lookup" ino (Kernsvc.Kernfs.lookup fs "/etc/motd")

let test_vfs_natives () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"f"
      ~mode:(Kernsvc.Kernfs.mode_read lor Kernsvc.Kernfs.mode_write)
      ~capacity:64
  in
  let buf = Kernel.kmalloc k ~size:64 in
  Kernel.write_string k ~addr:buf "hello";
  checki "vfs_write" 5 (Kernel.call_symbol k "vfs_write" [| ino; 0; buf; 5 |]);
  checki "size attr" 5 (Kernel.call_symbol k "vfs_getattr" [| ino; 1 |]);
  let out = Kernel.kmalloc k ~size:64 in
  checki "vfs_read" 5 (Kernel.call_symbol k "vfs_read" [| ino; 0; out; 64 |]);
  checks "round trip" "hello" (Kernel.read_string k ~addr:out ~len:5)

let test_vfs_permissions () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  let ro =
    Kernsvc.Kernfs.create_file fs ~name:"ro" ~mode:Kernsvc.Kernfs.mode_read
      ~capacity:32
  in
  let buf = Kernel.kmalloc k ~size:32 in
  checki "write denied by mode" (-1)
    (Kernel.call_symbol k "vfs_write" [| ro; 0; buf; 4 |]);
  checki "capacity enforced" (-1)
    (Kernel.call_symbol k "vfs_write" [| ro; 0; buf; 4096 |])

let test_vfs_chmod_refuses_setuid () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"bin" ~mode:Kernsvc.Kernfs.mode_read
      ~capacity:16
  in
  ignore
    (Kernel.call_symbol k "vfs_chmod"
       [| ino; Kernsvc.Kernfs.mode_setuid lor 0o755 |]);
  checki "setuid stripped by the API" 0o755 (Kernsvc.Kernfs.mode_of fs ~ino)

let test_vfs_read_clamping () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"f"
      ~mode:(Kernsvc.Kernfs.mode_read lor Kernsvc.Kernfs.mode_write)
      ~capacity:64
  in
  Kernsvc.Kernfs.write_contents fs ~ino "hello";
  let out = Kernel.kmalloc k ~size:64 in
  (* reads past the end return 0 bytes, never a negative count *)
  checki "off = size reads 0" 0
    (Kernel.call_symbol k "vfs_read" [| ino; 5; out; 16 |]);
  checki "off > size reads 0" 0
    (Kernel.call_symbol k "vfs_read" [| ino; 9; out; 16 |]);
  checki "len 0 reads 0" 0
    (Kernel.call_symbol k "vfs_read" [| ino; 0; out; 0 |]);
  (* a request larger than the remaining bytes is clamped to size - off *)
  checki "short read clamps to size - off" 3
    (Kernel.call_symbol k "vfs_read" [| ino; 2; out; 64 |]);
  checks "clamped tail" "llo" (Kernel.read_string k ~addr:out ~len:3)

(* ---------- /proc/carat over kernfs ---------- *)

let procfs_cell () =
  let k = fresh () in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Audit k
  in
  Trace.start (Policy.Policy_module.enable_trace ~capacity:64 pm);
  Policy.Policy_module.set_policy pm
    [
      Policy.Region.v ~tag:"win" ~base:0xA000 ~len:4096
        ~prot:Policy.Region.prot_rw ();
    ];
  let fs = Kernsvc.Kernfs.create k in
  let proc = Kernsvc.Procfs.install fs pm in
  (k, pm, fs, proc)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let checkb = Alcotest.check Alcotest.bool

let test_procfs_stats_and_trace () =
  let _k, pm, _fs, proc = procfs_cell () in
  ignore (Policy.Policy_module.guard pm ~site:4 ~addr:0xA010 ~size:8 ~flags:1);
  ignore (Policy.Policy_module.guard pm ~site:5 ~addr:0x40 ~size:8 ~flags:2);
  let stats = Kernsvc.Procfs.read_stats proc in
  checkb "stats header" true (contains stats "carat_trace: guard statistics");
  checkb "counts one allow and one deny" true
    (contains stats "checks 2 allows 1 denies 1");
  checkb "per-region tag resolved" true (contains stats "win");
  let trace = Kernsvc.Procfs.read_trace proc in
  checkb "trace has the deny" true (contains trace "DENY");
  checkb "trace has the policy push" true (contains trace "policy-add");
  (* refresh picks up new traffic *)
  ignore (Policy.Policy_module.guard pm ~site:4 ~addr:0xA018 ~size:8 ~flags:1);
  let stats2 = Kernsvc.Procfs.read_stats proc in
  checkb "refresh sees new checks" true (contains stats2 "checks 3")

let test_procfs_files_are_vfs_readable () =
  (* the rendered files go through the same clamped vfs_read as any
     other kernfs file *)
  let k, _pm, fs, proc = procfs_cell () in
  let _ = Kernsvc.Procfs.read_stats proc in
  let ino = Kernsvc.Kernfs.lookup fs "carat/stats" in
  let size = Kernel.call_symbol k "vfs_getattr" [| ino; 1 |] in
  checkb "stats file non-empty" true (size > 0);
  let out = Kernel.kmalloc k ~size:256 in
  checki "read past end returns 0" 0
    (Kernel.call_symbol k "vfs_read" [| ino; size + 10; out; 64 |]);
  let got = Kernel.call_symbol k "vfs_read" [| ino; 0; out; 12 |] in
  checki "partial read honours len" 12 got;
  checks "prefix" "carat_trace:" (Kernel.read_string k ~addr:out ~len:12)

let test_fs_errors () =
  let k = fresh () in
  let fs = Kernsvc.Kernfs.create k in
  (match Kernsvc.Kernfs.lookup fs "/nope" with
  | exception Kernsvc.Kernfs.No_such_file _ -> ()
  | _ -> Alcotest.fail "phantom file");
  ignore (Kernsvc.Kernfs.create_file fs ~name:"x" ~mode:7 ~capacity:8);
  match Kernsvc.Kernfs.create_file fs ~name:"x" ~mode:7 ~capacity:8 with
  | exception Kernsvc.Kernfs.Fs_error _ -> ()
  | _ -> Alcotest.fail "duplicate name"

(* ---------- msgq mechanics ---------- *)

let test_mq_fifo () =
  let k = fresh () in
  let mq = Kernsvc.Msgq.create k in
  let q = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:32 in
  checki "send a" 1 (Kernsvc.Msgq.send mq q "a");
  checki "send bb" 2 (Kernsvc.Msgq.send mq q "bb");
  checki "depth" 2 (Kernsvc.Msgq.depth mq q);
  Alcotest.(check (option string)) "recv a" (Some "a")
    (Kernsvc.Msgq.recv mq q ~maxlen:32);
  Alcotest.(check (option string)) "recv bb" (Some "bb")
    (Kernsvc.Msgq.recv mq q ~maxlen:32);
  Alcotest.(check (option string)) "empty" None
    (Kernsvc.Msgq.recv mq q ~maxlen:32)

let test_mq_full_and_oversize () =
  let k = fresh () in
  let mq = Kernsvc.Msgq.create k in
  let q = Kernsvc.Msgq.create_queue mq ~capacity:2 ~slot_size:8 in
  checki "fits" 3 (Kernsvc.Msgq.send mq q "abc");
  checki "fits" 3 (Kernsvc.Msgq.send mq q "def");
  checki "full" (-1) (Kernsvc.Msgq.send mq q "ghi");
  checki "oversize" (-1) (Kernsvc.Msgq.send mq q "123456789")

let test_mq_wraps () =
  let k = fresh () in
  let mq = Kernsvc.Msgq.create k in
  let q = Kernsvc.Msgq.create_queue mq ~capacity:2 ~slot_size:16 in
  for i = 0 to 9 do
    let msg = Printf.sprintf "m%d" i in
    checki "send" (String.length msg) (Kernsvc.Msgq.send mq q msg);
    Alcotest.(check (option string)) "recv" (Some msg)
      (Kernsvc.Msgq.recv mq q ~maxlen:16)
  done

let test_mq_two_queues_isolated () =
  let k = fresh () in
  let mq = Kernsvc.Msgq.create k in
  let q1 = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:16 in
  let q2 = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:16 in
  ignore (Kernsvc.Msgq.send mq q1 "one");
  ignore (Kernsvc.Msgq.send mq q2 "two");
  Alcotest.(check (option string)) "q1" (Some "one")
    (Kernsvc.Msgq.recv mq q1 ~maxlen:16);
  Alcotest.(check (option string)) "q2" (Some "two")
    (Kernsvc.Msgq.recv mq q2 ~maxlen:16)

(* ---------- kernel timers ---------- *)

(* a module exposing a counting callback *)
let timer_module () =
  let b = Kir.Builder.create "tick_mod" in
  Kir.Builder.declare_extern b "timer_arm" ~arity:3;
  Kir.Builder.declare_extern b "timer_cancel" ~arity:1;
  ignore (Kir.Builder.declare_global b "ticks" ~size:8);
  ignore (Kir.Builder.start_func b "on_tick" ~params:[ ("%id", I64) ] ~ret:(Some I64));
  let n = Kir.Builder.load b I64 (Sym "ticks") in
  let n1 = Kir.Builder.add b I64 n (Imm 1) in
  Kir.Builder.store b I64 n1 (Sym "ticks");
  Kir.Builder.ret b (Some (Imm 0));
  ignore (Kir.Builder.start_func b "go" ~params:[ ("%delay", I64); ("%period", I64) ] ~ret:(Some I64));
  let id = Option.get (Kir.Builder.call b "timer_arm" [ Sym "on_tick"; Reg "%delay"; Reg "%period" ]) in
  Kir.Builder.ret b (Some id);
  ignore (Kir.Builder.start_func b "stop" ~params:[ ("%id", I64) ] ~ret:(Some I64));
  let r = Option.get (Kir.Builder.call b "timer_cancel" [ Reg "%id" ]) in
  Kir.Builder.ret b (Some r);
  Kir.Builder.modul b

let setup_timers () =
  let k = fresh () in
  let timers = Kernsvc.Ktimer.create k in
  (match Kernel.insmod k (timer_module ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  (k, timers)

let ticks k =
  let addr = Option.get (Kernel.symbol_address k "ticks") in
  Kernel.read k ~addr ~size:8

let test_timer_oneshot () =
  let k, timers = setup_timers () in
  let id = Kernel.call_symbol k "go" [| 1000; 0 |] in
  Alcotest.(check bool) "armed" true (id > 0);
  checki "not yet" 0 (Kernsvc.Ktimer.run_pending timers);
  checki "fires once" 1 (Kernsvc.Ktimer.advance timers ~cycles:2000);
  checki "module saw it" 1 (ticks k);
  checki "does not refire" 0 (Kernsvc.Ktimer.advance timers ~cycles:10_000);
  checki "no active timers left" 0 (List.length (Kernsvc.Ktimer.active timers))

let test_timer_periodic_and_cancel () =
  let k, timers = setup_timers () in
  (* period far above the callback's own cost so the count is exact *)
  let id = Kernel.call_symbol k "go" [| 100_000; 100_000 |] in
  ignore (Kernsvc.Ktimer.advance timers ~cycles:350_000);
  checki "three periods" 3 (ticks k);
  checki "cancel ok" 0 (Kernel.call_symbol k "stop" [| id |]);
  checki "cancel twice fails" (-1) (Kernel.call_symbol k "stop" [| id |]);
  ignore (Kernsvc.Ktimer.advance timers ~cycles:500_000);
  checki "no more ticks" 3 (ticks k)

let test_timer_ordering () =
  let k, timers = setup_timers () in
  ignore (Kernel.call_symbol k "go" [| 5000; 0 |]);
  ignore (Kernel.call_symbol k "go" [| 1000; 0 |]);
  checki "only the early one" 1 (Kernsvc.Ktimer.advance timers ~cycles:2000);
  checki "then the late one" 1 (Kernsvc.Ktimer.advance timers ~cycles:4000);
  checki "both delivered" 2 (ticks k)

let test_timer_bad_target () =
  let k, _ = setup_timers () in
  checki "non-function address rejected" (-1)
    (Kernel.call_symbol k "timer_arm" [| 0xDEAD; 10; 0 |])

let test_timer_budget () =
  let k, timers = setup_timers () in
  (* a zero-period... use period 1: fires every cycle; budget caps it *)
  ignore (Kernel.call_symbol k "go" [| 0; 1 |]);
  Machine.Model.add_cycles (Kernel.machine k) 1_000_000;
  let fired = Kernsvc.Ktimer.run_pending ~max_fires:16 timers in
  checki "budget respected" 16 fired

let test_timer_callback_guarded () =
  (* a protected module's timer callback violating policy panics from
     interrupt context *)
  let k = Kernel.create ~require_signature:true Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let pm = Policy.Policy_module.install k in
  (* policy covers nothing the callback touches *)
  Policy.Policy_module.set_policy pm
    [ Policy.Region.v ~tag:"nothing" ~base:0x10 ~len:0x10 ~prot:0 () ];
  let timers = Kernsvc.Ktimer.create k in
  let m = timer_module () in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insmod k m with Ok _ -> () | Error _ -> assert false);
  ignore (Kernel.call_symbol k "go" [| 100; 0 |]);
  match Kernsvc.Ktimer.advance timers ~cycles:1000 with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "guarded callback ran unchecked"

(* ---------- protection: the §5 scenarios ---------- *)

(* a protected module with raw read/write entry points and API-using
   entry points *)
let make_module () =
  let b = Kir.Builder.create "fs_mod" in
  List.iter
    (fun (name, arity) -> Kir.Builder.declare_extern b name ~arity)
    [ ("vfs_read", 4); ("vfs_write", 4); ("mq_recv", 3); ("kmalloc", 1) ];
  (* raw_poke(addr, v): the bypass a buggy/malicious module would use *)
  ignore
    (Kir.Builder.start_func b "raw_poke"
       ~params:[ ("%a", I64); ("%v", I64) ]
       ~ret:(Some I64));
  Kir.Builder.store b I64 (Reg "%v") (Reg "%a");
  Kir.Builder.ret b (Some (Imm 0));
  ignore
    (Kir.Builder.start_func b "raw_peek" ~params:[ ("%a", I64) ]
       ~ret:(Some I64));
  let v = Kir.Builder.load b I64 (Reg "%a") in
  Kir.Builder.ret b (Some v);
  (* api_read(ino): reads a file through the VFS, returns first byte *)
  ignore
    (Kir.Builder.start_func b "api_read" ~params:[ ("%ino", I64) ]
       ~ret:(Some I64));
  let buf =
    match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
    | Some v -> v
    | None -> assert false
  in
  ignore (Kir.Builder.call b "vfs_read" [ Reg "%ino"; Imm 0; buf; Imm 64 ]);
  let first = Kir.Builder.load b I8 buf in
  Kir.Builder.ret b (Some first);
  let m = Kir.Builder.modul b in
  ignore (Passes.Pipeline.compile m);
  m

let setup_protected () =
  let k = Kernel.create ~require_signature:true Machine.Presets.r350 in
  let vm = Vm.Interp.install k in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Panic k
  in
  let fs = Kernsvc.Kernfs.create k in
  let mq = Kernsvc.Msgq.create k in
  (match Kernel.insmod k (make_module ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  (k, vm, pm, fs, mq)

(* policy: module area + its stack + kernel heap EXCEPT the protected
   objects, whose regions come first (first match wins) *)
let protection_policy (vm : Vm.Interp.state) guarded =
  guarded
  @ [
      Policy.Region.v ~tag:"module-stack" ~base:vm.Vm.Interp.stack_base
        ~len:vm.Vm.Interp.stack_size ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"kernel" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw ();
    ]

let test_inode_tamper_blocked () =
  let k, vm, pm, fs, _ = setup_protected () in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"/bin/agent"
      ~mode:Kernsvc.Kernfs.mode_read ~capacity:32
  in
  Policy.Policy_module.set_policy pm
    (protection_policy vm [ Kernsvc.Kernfs.metadata_region fs ]);
  (* API access still works (core kernel is not guarded) *)
  Kernsvc.Kernfs.write_contents fs ~ino "ELF!";
  checki "api read ok" (Char.code 'E') (Kernel.call_symbol k "api_read" [| ino |]);
  (* direct inode write — setting the setuid bit — trips the guard *)
  let inode = Kernsvc.Kernfs.inode_vaddr fs ino in
  (match
     Kernel.call_symbol k "raw_poke"
       [| inode; Kernsvc.Kernfs.mode_setuid lor 0o777 |]
   with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "inode tampered");
  checki "mode intact" Kernsvc.Kernfs.mode_read (Kernsvc.Kernfs.mode_of fs ~ino)

let test_inode_snoop_blocked () =
  let k, vm, pm, fs, _ = setup_protected () in
  let ino =
    Kernsvc.Kernfs.create_file fs ~name:"/etc/shadow"
      ~mode:Kernsvc.Kernfs.mode_read ~capacity:64
  in
  Kernsvc.Kernfs.write_contents fs ~ino "root:secret";
  Policy.Policy_module.set_policy pm
    (protection_policy vm
       [
         Kernsvc.Kernfs.metadata_region fs;
         (* data extent unreadable for this module too *)
         Kernsvc.Kernfs.data_region fs ~ino ~prot:0;
       ]);
  let inode = Kernsvc.Kernfs.inode_vaddr fs ino in
  match Kernel.call_symbol k "raw_peek" [| inode + 32 |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "inode metadata read allowed"

let test_msgq_snoop_blocked () =
  let k, vm, pm, _, mq = setup_protected () in
  let q = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:32 in
  ignore (Kernsvc.Msgq.send mq q "scheduler-credential");
  Policy.Policy_module.set_policy pm
    (protection_policy vm [ Kernsvc.Msgq.queue_region q ~prot:0 ]);
  (* reading the slot memory directly trips the guard *)
  (match Kernel.call_symbol k "raw_peek" [| q.Kernsvc.Msgq.base + 40 |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "queue snooped");
  ()

let test_msgq_granted_queue_works () =
  (* a module may be granted one queue and not another *)
  let k, vm, pm, _, mq = setup_protected () in
  let mine = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:32 in
  let theirs = Kernsvc.Msgq.create_queue mq ~capacity:4 ~slot_size:32 in
  ignore (Kernsvc.Msgq.send mq mine "for-you");
  ignore (Kernsvc.Msgq.send mq theirs "not-yours");
  Policy.Policy_module.set_policy pm
    (protection_policy vm
       [
         Kernsvc.Msgq.queue_region mine ~prot:Policy.Region.prot_rw;
         Kernsvc.Msgq.queue_region theirs ~prot:0;
       ]);
  (* direct read of my own queue's slot: allowed *)
  let slot = Kernsvc.Msgq.slot_vaddr mine 0 in
  checki "my slot readable" (String.length "for-you")
    (Kernel.call_symbol k "raw_peek" [| slot |]);
  (* the other queue is not *)
  match
    Kernel.call_symbol k "raw_peek" [| Kernsvc.Msgq.slot_vaddr theirs 0 |]
  with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "foreign queue read"

let () =
  Alcotest.run "kernsvc"
    [
      ( "kernfs",
        [
          Alcotest.test_case "create/contents" `Quick test_create_and_contents;
          Alcotest.test_case "vfs natives" `Quick test_vfs_natives;
          Alcotest.test_case "vfs permissions" `Quick test_vfs_permissions;
          Alcotest.test_case "chmod strips setuid" `Quick test_vfs_chmod_refuses_setuid;
          Alcotest.test_case "vfs_read clamping" `Quick test_vfs_read_clamping;
          Alcotest.test_case "errors" `Quick test_fs_errors;
        ] );
      ( "/proc/carat",
        [
          Alcotest.test_case "stats and trace files" `Quick
            test_procfs_stats_and_trace;
          Alcotest.test_case "vfs-readable with clamping" `Quick
            test_procfs_files_are_vfs_readable;
        ] );
      ( "msgq",
        [
          Alcotest.test_case "fifo" `Quick test_mq_fifo;
          Alcotest.test_case "full/oversize" `Quick test_mq_full_and_oversize;
          Alcotest.test_case "wraps" `Quick test_mq_wraps;
          Alcotest.test_case "isolation" `Quick test_mq_two_queues_isolated;
        ] );
      ( "timers",
        [
          Alcotest.test_case "one-shot" `Quick test_timer_oneshot;
          Alcotest.test_case "periodic + cancel" `Quick test_timer_periodic_and_cancel;
          Alcotest.test_case "ordering" `Quick test_timer_ordering;
          Alcotest.test_case "bad target" `Quick test_timer_bad_target;
          Alcotest.test_case "fire budget" `Quick test_timer_budget;
          Alcotest.test_case "guarded callback" `Quick test_timer_callback_guarded;
        ] );
      ( "protection",
        [
          Alcotest.test_case "inode tamper" `Quick test_inode_tamper_blocked;
          Alcotest.test_case "inode snoop" `Quick test_inode_snoop_blocked;
          Alcotest.test_case "msgq snoop" `Quick test_msgq_snoop_blocked;
          Alcotest.test_case "granted queue" `Quick test_msgq_granted_queue_works;
        ] );
    ]
