(* Engine equivalence: the fast policy tiers (shadow table, per-site
   inline cache) must be decision-identical to the plain linear table,
   epoch bumps must kill stale cache entries, and the compiled KIR
   engine must be cycle- and outcome-identical to the interpreter. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- differential property: shadow / shadow+IC vs linear ---------- *)

(* One kernel hosting the three engines under test; policies are swapped
   per trial with set_policy (kernel creation dwarfs everything else the
   property does). *)
let diff_cell =
  lazy
    (let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
     let lin = Policy.Engine.create ~kind:Policy.Engine.Linear ~capacity:64 k in
     let sh = Policy.Engine.create ~kind:Policy.Engine.Shadow ~capacity:64 k in
     let shic = Policy.Engine.create ~kind:Policy.Engine.Shadow ~capacity:64 k in
     Policy.Engine.enable_site_cache shic;
     (lin, sh, shic))

let page_size = Policy.Shadow_table.page_size

(* Random policy: up to 62 non-overlapping regions walking up the user
   half, with deliberate edge shapes — zero gaps (adjacent regions),
   one-byte regions, exact pages, and multi-page spans that straddle
   page boundaries. *)
let gen_policy rng =
  let n = 1 + Machine.Rng.int rng 62 in
  let cursor = ref 0x2000_0000 in
  List.init n (fun i ->
      let gap =
        if Machine.Rng.flip rng 0.3 then 0
        else 1 + Machine.Rng.int rng (2 * page_size)
      in
      let len =
        match Machine.Rng.int rng 4 with
        | 0 -> 1
        | 1 -> page_size
        | 2 -> 1 + Machine.Rng.int rng (3 * page_size)
        | _ -> 2 * page_size
      in
      let prot = Machine.Rng.int rng 4 in
      let base = !cursor + gap in
      cursor := base + len;
      Policy.Region.v ~tag:(Printf.sprintf "r%d" i) ~base ~len ~prot ())

(* Accesses biased to region boundaries: the byte before/at base, the
   last byte, the byte past the end, plus interior and far-field
   probes. Sizes include page-straddling spans. *)
let gen_accesses rng policy =
  let sizes = [| 1; 2; 4; 8; 16; page_size |] in
  let probes =
    List.concat_map
      (fun (r : Policy.Region.t) ->
        let base = r.Policy.Region.base and len = r.Policy.Region.len in
        [ base - 1; base; base + len - 1; base + len; base + Machine.Rng.int rng len ])
      policy
  in
  let far = List.init 8 (fun _ -> 0x1F00_0000 + Machine.Rng.int rng 0x600_0000) in
  List.map
    (fun addr ->
      ( Machine.Rng.int rng 2048,
        addr,
        sizes.(Machine.Rng.int rng (Array.length sizes)),
        1 + Machine.Rng.int rng 3 ))
    (probes @ far)

let decision e ~addr ~size ~flags =
  match Policy.Engine.check e ~addr ~size ~flags with
  | Policy.Engine.Allowed _ -> true
  | Policy.Engine.Denied _ -> false

let prop_differential =
  QCheck.Test.make
    ~name:"shadow and shadow+site-cache decide byte-for-byte like linear"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lin, sh, shic = Lazy.force diff_cell in
      let rng = Machine.Rng.create seed in
      let policy = gen_policy rng in
      Policy.Engine.set_policy lin policy;
      Policy.Engine.set_policy sh policy;
      Policy.Engine.set_policy shic policy;
      let accesses = gen_accesses rng policy in
      List.for_all
        (fun (site, addr, size, flags) ->
          let want = decision lin ~addr ~size ~flags in
          let d_sh = decision sh ~addr ~size ~flags in
          (* twice through the inline cache: the first call may fill the
             site's slot, the second must hit it — both must agree with
             the linear reference *)
          let d1 = Policy.Engine.check_fast shic ~site ~addr ~size ~flags in
          let d2 = Policy.Engine.check_fast shic ~site ~addr ~size ~flags in
          want = d_sh && want = d1 && want = d2)
        accesses)

(* Decision stats must be tier-invariant: the same access stream drives
   the same (checks, allowed, denied, entries_scanned) through the plain
   linear walk, the shadow table, and the shadow+inline-cache fast path —
   fast tiers may only differ in the separate hit/miss tier counters. *)
let prop_decision_stats_tier_invariant =
  QCheck.Test.make
    ~name:"decision stats (checks/allowed/denied/entries_scanned) are tier-invariant"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let lin, sh, shic = Lazy.force diff_cell in
      let rng = Machine.Rng.create seed in
      let policy = gen_policy rng in
      Policy.Engine.set_policy lin policy;
      Policy.Engine.set_policy sh policy;
      Policy.Engine.set_policy shic policy;
      Policy.Engine.reset_stats lin;
      Policy.Engine.reset_stats sh;
      Policy.Engine.reset_stats shic;
      let accesses = gen_accesses rng policy in
      (* two rounds so the second pass runs hot through the inline cache *)
      for _round = 1 to 2 do
        List.iter
          (fun (site, addr, size, flags) ->
            ignore (Policy.Engine.check lin ~addr ~size ~flags);
            ignore (Policy.Engine.check sh ~addr ~size ~flags);
            ignore (Policy.Engine.check_fast shic ~site ~addr ~size ~flags))
          accesses
      done;
      let st e =
        let s = Policy.Engine.stats e in
        ( s.Policy.Engine.checks,
          s.Policy.Engine.allowed,
          s.Policy.Engine.denied,
          s.Policy.Engine.entries_scanned )
      in
      st lin = st sh && st lin = st shic)

(* Regression: an inline-cache allow hit used to leave [last_deny] from a
   previous denial in place, so the next denial's diagnostic (or a panic
   report) could blame a stale region. *)
let test_last_deny_cleared_on_ic_hit () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let e = Policy.Engine.create ~kind:Policy.Engine.Shadow ~capacity:64 k in
  Policy.Engine.enable_site_cache e;
  Policy.Engine.set_policy e
    [
      Policy.Region.v ~tag:"ro" ~base:0xA000 ~len:page_size
        ~prot:Policy.Region.prot_read ();
      Policy.Region.v ~tag:"rw" ~base:0xC000 ~len:page_size ~prot:Policy.Region.prot_rw ();
    ];
  (* a denied write to the read-only region records it as last_deny *)
  checkb "write to ro denied" false
    (Policy.Engine.check_fast e ~site:1 ~addr:0xA010 ~size:8
       ~flags:Policy.Region.prot_write);
  checkb "last_deny set" true (Policy.Engine.last_deny e <> None);
  (* fill site 2's slot, then hit it: the hot allow must clear last_deny *)
  checkb "fill allow" true
    (Policy.Engine.check_fast e ~site:2 ~addr:0xC010 ~size:8 ~flags:Policy.Region.prot_rw);
  checkb "last_deny cleared by slow-path allow" true
    (Policy.Engine.last_deny e = None);
  checkb "deny again" false
    (Policy.Engine.check_fast e ~site:1 ~addr:0xA010 ~size:8
       ~flags:Policy.Region.prot_write);
  let hits_before = (Policy.Engine.tier_stats e).Policy.Engine.ic_hits in
  checkb "ic-hit allow" true
    (Policy.Engine.check_fast e ~site:2 ~addr:0xC010 ~size:8 ~flags:Policy.Region.prot_rw);
  checki "the allow really was an ic hit" (hits_before + 1)
    (Policy.Engine.tier_stats e).Policy.Engine.ic_hits;
  checkb "last_deny cleared by the ic-hit allow" true
    (Policy.Engine.last_deny e = None)

let test_zero_length_region_rejected () =
  Alcotest.check_raises "len 0"
    (Invalid_argument "Region.v: length must be positive") (fun () ->
      ignore (Policy.Region.v ~base:0x1000 ~len:0 ~prot:3 ()));
  checkb "negative length rejected" true
    (match Policy.Region.v ~base:0x1000 ~len:(-8) ~prot:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- epoch invalidation under live reconfiguration ---------- *)

let setup_pm () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Audit k
  in
  (k, pm)

let rw = Policy.Region.prot_rw

let test_epoch_live_policy_push () =
  let k, pm = setup_pm () in
  let e = Policy.Policy_module.engine pm in
  Policy.Policy_module.set_policy pm
    [ Policy.Region.v ~tag:"win" ~base:0xA000 ~len:page_size ~prot:rw () ];
  (* prime the site cache: second check is the cached fast path *)
  checkb "allowed before push" true
    (Policy.Engine.check_fast e ~site:7 ~addr:0xA010 ~size:8 ~flags:3);
  checkb "allowed from cache" true
    (Policy.Engine.check_fast e ~site:7 ~addr:0xA010 ~size:8 ~flags:3);
  (* live policy push through the device node: remove the region *)
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xA000;
  checki "remove ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_remove ~arg);
  checkb "no stale allow" false
    (Policy.Engine.check_fast e ~site:7 ~addr:0xA010 ~size:8 ~flags:3);
  (* push it back: the cached deny must not survive either *)
  Kernel.write k ~addr:arg ~size:8 0xA000;
  Kernel.write k ~addr:(arg + 8) ~size:8 page_size;
  Kernel.write k ~addr:(arg + 16) ~size:8 rw;
  checki "add ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg);
  checkb "no stale deny" true
    (Policy.Engine.check_fast e ~site:7 ~addr:0xA010 ~size:8 ~flags:3);
  (* the same sequence through the real guard symbol (4-arg form carries
     the static site id); with on_deny = Audit the verdicts surface as
     violation records *)
  let violations () = List.length (Policy.Policy_module.violations pm) in
  ignore (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 3; 9 |]);
  checki "guard allows (cache primed)" 0 (violations ());
  Kernel.write k ~addr:arg ~size:8 0xA000;
  checki "remove again ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_remove ~arg);
  ignore (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 3; 9 |]);
  checki "guard denies after push" 1 (violations ())

let test_epoch_set_mode_ioctl () =
  let k, pm = setup_pm () in
  let e = Policy.Policy_module.engine pm in
  Policy.Policy_module.set_policy pm
    [ Policy.Region.v ~tag:"win" ~base:0xA000 ~len:page_size ~prot:rw () ];
  ignore (Policy.Engine.check_fast e ~site:3 ~addr:0xA000 ~size:8 ~flags:3);
  let before = Policy.Engine.epoch e in
  checki "set-mode ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_set_mode
       ~arg:(Policy.Policy_module.on_deny_to_int Policy.Policy_module.Quarantine));
  checkb "mode ioctl bumps the epoch" true (Policy.Engine.epoch e > before);
  checkb "decision survives the flip" true
    (Policy.Engine.check_fast e ~site:3 ~addr:0xA000 ~size:8 ~flags:3)

(* ---------- golden-run A/B: interpreter vs compiled engine ---------- *)

let golden_run kind =
  let config =
    {
      Testbed.default_config with
      Testbed.technique = Testbed.Carat;
      structure = Policy.Engine.Shadow;
      site_cache = true;
      engine = kind;
      stall_prob = 0.02;
      module_scale = 4;
      seed = 5;
    }
  in
  let tb = Testbed.create ~config () in
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with Net.Pktgen.count = 120; size = 256; seed = 9 }
  in
  let st = Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module) in
  ( r.Net.Pktgen.sent,
    r.Net.Pktgen.cycles,
    r.Net.Pktgen.latencies,
    r.Net.Pktgen.busy_retries,
    st.Policy.Engine.checks,
    st.Policy.Engine.denied,
    Kernel.panic_state tb.Testbed.kernel = None )

let test_golden_equivalence () =
  let s_i, c_i, l_i, b_i, g_i, d_i, a_i = golden_run Vm.Engine.Interp in
  let s_c, c_c, l_c, b_c, g_c, d_c, a_c = golden_run Vm.Engine.Compiled in
  checki "packets sent" s_i s_c;
  checki "simulated cycles" c_i c_c;
  checki "busy retries" b_i b_c;
  checki "guard checks" g_i g_c;
  checki "guard denials" d_i d_c;
  checkb "alive parity" a_i a_c;
  checkb "per-packet latencies identical" true (l_i = l_c)

(* The trace layer sits below both engines, so a traced run must produce
   the identical event stream — same kinds, sites, addresses, and cycle
   stamps — whichever engine executes the module. *)
let traced_golden_run kind =
  let config =
    {
      Testbed.default_config with
      Testbed.technique = Testbed.Carat;
      structure = Policy.Engine.Shadow;
      site_cache = true;
      engine = kind;
      stall_prob = 0.02;
      module_scale = 4;
      seed = 5;
      trace = true;
      trace_capacity = 4096;
    }
  in
  let tb = Testbed.create ~config () in
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with Net.Pktgen.count = 40; size = 256; seed = 9 });
  match Policy.Policy_module.trace tb.Testbed.policy_module with
  | None -> Alcotest.fail "trace not attached"
  | Some tr -> List.map Trace.format_event (Trace.events tr)

let test_event_stream_engine_parity () =
  let interp = traced_golden_run Vm.Engine.Interp in
  let compiled = traced_golden_run Vm.Engine.Compiled in
  checkb "stream non-empty" true (interp <> []);
  checki "same event count" (List.length interp) (List.length compiled);
  Alcotest.(check (list string))
    "event streams identical (kind, site, addr, cycle stamps)" interp compiled

let test_fault_matrix_engine_parity () =
  (* the containment matrix — panic/quarantine/audit outcomes over every
     fault class — must not depend on the KIR engine *)
  let cfg = { Fault.Campaign.faults = 12; seed = 7 } in
  let interp = Fault.Campaign.run ~engine:Vm.Engine.Interp cfg in
  let compiled = Fault.Campaign.run ~engine:Vm.Engine.Compiled cfg in
  Alcotest.(check string)
    "rendered matrix byte-for-byte identical"
    (Fault.Campaign.render interp)
    (Fault.Campaign.render compiled);
  checkb "compiled campaign passes the invariants" true
    (Fault.Campaign.check compiled = [])

let () =
  Alcotest.run "engine"
    [
      ( "policy tiers",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_decision_stats_tier_invariant;
          Alcotest.test_case "ic hit clears last_deny" `Quick
            test_last_deny_cleared_on_ic_hit;
          Alcotest.test_case "zero-length region rejected" `Quick
            test_zero_length_region_rejected;
        ] );
      ( "epoch invalidation",
        [
          Alcotest.test_case "live policy push" `Quick
            test_epoch_live_policy_push;
          Alcotest.test_case "set-mode ioctl" `Quick test_epoch_set_mode_ioctl;
        ] );
      ( "engine A/B",
        [
          Alcotest.test_case "golden pktgen run" `Quick test_golden_equivalence;
          Alcotest.test_case "traced event streams identical" `Quick
            test_event_stream_engine_parity;
          Alcotest.test_case "fault matrix parity" `Quick
            test_fault_matrix_engine_parity;
        ] );
    ]
