(* KIR: types, builder, printer/parser round-trip, verifier, CFG. *)

open Carat_kop
open Kir.Types

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- helpers ---------- *)

(* a small well-formed module used by many cases *)
let sample_module () =
  let b = Kir.Builder.create "sample" in
  Kir.Builder.declare_extern b "printk" ~arity:2;
  ignore (Kir.Builder.declare_global b "counter" ~size:8);
  ignore
    (Kir.Builder.declare_global b "msg" ~writable:false ~init:"hi\n" ~size:4);
  ignore
    (Kir.Builder.start_func b "bump"
       ~params:[ ("%delta", I64) ]
       ~ret:(Some I64));
  let v = Kir.Builder.load b I64 (Sym "counter") in
  let v' = Kir.Builder.add b I64 v (Reg "%delta") in
  Kir.Builder.store b I64 v' (Sym "counter");
  Kir.Builder.ret b (Some v');
  ignore (Kir.Builder.start_func b "init_module" ~params:[] ~ret:(Some I64));
  Kir.Builder.call_unit b "printk" [ Sym "msg"; Imm 3 ];
  Kir.Builder.ret b (Some (Imm 0));
  Kir.Builder.modul b

(* random KIR generator for round-trip properties *)
let gen_module =
  let open QCheck.Gen in
  let gen_ty = oneofl [ I8; I16; I32; I64; Ptr ] in
  let gen_binop =
    oneofl [ Add; Sub; Mul; Sdiv; Srem; And; Or; Xor; Shl; Lshr; Ashr ]
  in
  let gen_cond =
    oneofl [ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ]
  in
  let gen_reg = map (Printf.sprintf "%%r%d") (int_bound 9) in
  let gen_value =
    frequency
      [
        (4, map (fun r -> Reg r) gen_reg);
        (3, map (fun n -> Imm (n - 500)) (int_bound 1000));
        (1, return (Sym "g0"));
      ]
  in
  let gen_instr =
    frequency
      [
        ( 3,
          map
            (fun (dst, op, ty, a, b) -> Binop { dst; op; ty; a; b })
            (tup5 gen_reg gen_binop gen_ty gen_value gen_value) );
        ( 2,
          map
            (fun (dst, cond, ty, a, b) -> Icmp { dst; cond; ty; a; b })
            (tup5 gen_reg gen_cond gen_ty gen_value gen_value) );
        ( 2,
          map
            (fun (dst, ty, addr) -> Load { dst; ty; addr })
            (tup3 gen_reg gen_ty gen_value) );
        ( 2,
          map
            (fun (ty, v, addr) -> Store { ty; v; addr })
            (tup3 gen_ty gen_value gen_value) );
        ( 1,
          map
            (fun (dst, size) -> Alloca { dst; size = size + 1 })
            (tup2 gen_reg (int_bound 63)) );
        ( 1,
          map
            (fun (dst, base, idx, scale) -> Gep { dst; base; idx; scale })
            (tup4 gen_reg gen_value gen_value (int_range 1 16)) );
        ( 1,
          map
            (fun (dst, ty, src) -> Mov { dst; ty; src })
            (tup3 gen_reg gen_ty gen_value) );
        ( 1,
          map
            (fun (dst, cond, a, b) ->
              Select { dst; cond; if_true = a; if_false = b })
            (tup4 gen_reg gen_value gen_value gen_value) );
        (1, map (fun args -> Call { dst = None; callee = "ext"; args })
             (list_size (int_bound 3) gen_value));
        (1, map (fun s -> Inline_asm s) (string_size ~gen:printable (int_bound 8)));
      ]
  in
  let gen_blocks =
    let* n_blocks = int_range 1 4 in
    let labels = List.init n_blocks (Printf.sprintf "b%d") in
    let gen_term =
      frequency
        [
          (2, map (fun v -> Ret (Some v)) gen_value);
          (1, return (Ret None));
          (2, map (fun l -> Br l) (oneofl labels));
          ( 2,
            map
              (fun (c, a, b) -> Cond_br { cond = c; if_true = a; if_false = b })
              (tup3 gen_value (oneofl labels) (oneofl labels)) );
          ( 1,
            map
              (fun (v, k, l, d) ->
                Switch { v; cases = [ (k, l) ]; default = d })
              (tup4 gen_value (int_bound 10) (oneofl labels) (oneofl labels))
          );
          (1, return Unreachable);
        ]
    in
    flatten_l
      (List.map
         (fun lbl ->
           let* body = list_size (int_bound 6) gen_instr in
           let* term = gen_term in
           return { b_label = lbl; body; term })
         labels)
  in
  let* blocks = gen_blocks in
  let* extra_meta = oneofl [ []; [ ("k", "v with spaces") ]; [ ("a", "1"); ("b", "\"quoted\"") ] ] in
  return
    {
      m_name = "fuzz";
      globals =
        [
          { g_name = "g0"; g_size = 16; g_init = Some "ab\000c"; g_writable = true };
        ];
      funcs =
        [
          {
            f_name = "f";
            params = [ ("%r0", I64); ("%r1", Ptr) ];
            ret_ty = Some I64;
            blocks;
          };
        ];
      externs = [ ("ext", 3) ];
      meta = extra_meta;
    }

(* ---------- cases ---------- *)

let test_ty_sizes () =
  checki "i8" 1 (size_of_ty I8);
  checki "i16" 2 (size_of_ty I16);
  checki "i32" 4 (size_of_ty I32);
  checki "i64" 8 (size_of_ty I64);
  checki "ptr" 8 (size_of_ty Ptr)

let test_def_use () =
  let i = Binop { dst = "%x"; op = Add; ty = I64; a = Reg "%a"; b = Imm 1 } in
  check (Alcotest.option Alcotest.string) "def" (Some "%x") (def_of_instr i);
  checki "uses" 2 (List.length (uses_of_instr i));
  let s = Store { ty = I8; v = Reg "%v"; addr = Reg "%p" } in
  check (Alcotest.option Alcotest.string) "store def" None (def_of_instr s);
  checki "store uses" 2 (List.length (uses_of_instr s))

let test_successors () =
  checki "ret" 0 (List.length (successors (Ret None)));
  check
    (Alcotest.list Alcotest.string)
    "br" [ "a" ]
    (successors (Br "a"));
  check
    (Alcotest.list Alcotest.string)
    "condbr" [ "t"; "f" ]
    (successors (Cond_br { cond = Imm 1; if_true = "t"; if_false = "f" }));
  check
    (Alcotest.list Alcotest.string)
    "switch" [ "x"; "y"; "d" ]
    (successors (Switch { v = Imm 0; cases = [ (1, "x"); (2, "y") ]; default = "d" }))

let test_meta () =
  let m = sample_module () in
  meta_set m "k" "v1";
  check (Alcotest.option Alcotest.string) "set" (Some "v1") (meta_find m "k");
  meta_set m "k" "v2";
  check (Alcotest.option Alcotest.string) "update" (Some "v2") (meta_find m "k");
  checki "no dup" 1
    (List.length (List.filter (fun (k, _) -> k = "k") m.meta))

let test_counts () =
  let m = sample_module () in
  checkb "has instrs" true (module_instr_count m > 4);
  checki "memory ops" 2 (module_memory_op_count m)

let test_builder_entry () =
  let m = sample_module () in
  let f = Option.get (find_func m "bump") in
  check Alcotest.string "entry label" "entry" (entry_block f).b_label;
  checkb "find missing" true (find_func m "nope" = None)

let test_builder_loop_structure () =
  let b = Kir.Builder.create "loops" in
  ignore (Kir.Builder.start_func b "f" ~params:[] ~ret:(Some I64));
  Kir.Builder.mov_to b "%acc" I64 (Imm 0);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 10) ~step:(Imm 1)
    (fun i ->
      let s = Kir.Builder.add b I64 (Reg "%acc") i in
      Kir.Builder.mov_to b "%acc" I64 s);
  Kir.Builder.ret b (Some (Reg "%acc"));
  let m = Kir.Builder.modul b in
  Kir.Verify.check_exn m;
  let f = Option.get (find_func m "f") in
  checkb "loop has >= 4 blocks" true (List.length f.blocks >= 4)

let test_printer_stable () =
  let m1 = sample_module () in
  let m2 = sample_module () in
  check Alcotest.string "deterministic print" (Kir.Printer.to_string m1)
    (Kir.Printer.to_string m2)

let test_printer_meta_excluded () =
  let m = sample_module () in
  meta_set m "secret" "x";
  let with_meta = Kir.Printer.to_string m in
  let without = Kir.Printer.to_string ~with_meta:false m in
  checkb "meta printed" true
    (String.length with_meta > String.length without);
  checkb "body has no meta" false
    (let re = "secret" in
     let len = String.length re in
     let rec go i =
       i + len <= String.length without
       && (String.sub without i len = re || go (i + 1))
     in
     go 0)

let test_escape_roundtrip () =
  let cases = [ "plain"; "with \"quotes\""; "back\\slash"; "\x00\x01\xff"; "" ] in
  List.iter
    (fun s ->
      check Alcotest.string "escape/unescape" s
        (Kir.Printer.unescape (Kir.Printer.escape s)))
    cases

let test_unescape_truncated () =
  (* a backslash whose escape is cut off by end-of-string must be kept
     literally, not crash on an out-of-bounds read (regression: mutated
     module text ending in "\a" raised Invalid_argument) *)
  List.iter
    (fun s -> check Alcotest.string "kept literal" s (Kir.Printer.unescape s))
    [ "\\"; "x\\"; "x\\a"; "\\g0"; "tail\\f" ];
  check Alcotest.string "escape at the edge still decodes" "x\xab"
    (Kir.Printer.unescape "x\\ab")

let test_parse_simple () =
  let text =
    {|module "t"
meta "a" = "b"
extern @guard/3
global @g rw 8
func @f(%x: i64) : i64 {
entry:
  %y = add i64 %x, 1
  %z = load i64, @g
  store i64 %y, @g
  brc %y, yes, no
yes:
  ret %z
no:
  ret 0
}
|}
  in
  let m = Kir.Parser.parse_string text in
  check Alcotest.string "name" "t" m.m_name;
  checki "externs" 1 (List.length m.externs);
  checki "globals" 1 (List.length m.globals);
  checki "funcs" 1 (List.length m.funcs);
  let f = Option.get (find_func m "f") in
  checki "blocks" 3 (List.length f.blocks);
  checki "body" 3 (List.length (entry_block f).body);
  Kir.Verify.check_exn m

let test_parse_errors () =
  let bad = [ "func @f() : i64 {"; "module"; "global @g xx 8"; "zzz" ] in
  List.iter
    (fun text ->
      match Kir.Parser.parse_string text with
      | exception Kir.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    bad

let test_roundtrip_sample () =
  let m = sample_module () in
  meta_set m "k space" "v\"x";
  let text = Kir.Printer.to_string m in
  let m' = Kir.Parser.parse_string text in
  check Alcotest.string "reprint equal" text (Kir.Printer.to_string m')

let prop_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trip" ~count:200
    (QCheck.make gen_module) (fun m ->
      let text = Kir.Printer.to_string m in
      let m' = Kir.Parser.parse_string text in
      String.equal text (Kir.Printer.to_string m'))

(* robustness: mutated module text either parses or raises Parse_error —
   never crashes with anything else *)
let prop_parser_robust =
  QCheck.Test.make ~name:"parser never crashes on mutated input" ~count:300
    QCheck.(triple (make gen_module) (int_bound 2000) (int_bound 255))
    (fun (m, pos, byte) ->
      let text = Kir.Printer.to_string m in
      let n = String.length text in
      let mutated =
        if n = 0 then text
        else begin
          let b = Bytes.of_string text in
          Bytes.set b (pos mod n) (Char.chr byte);
          Bytes.to_string b
        end
      in
      match Kir.Parser.parse_string mutated with
      | _ -> true
      | exception Kir.Parser.Parse_error _ -> true)

let prop_parser_truncation =
  QCheck.Test.make ~name:"parser never crashes on truncated input" ~count:200
    QCheck.(pair (make gen_module) (int_bound 5000))
    (fun (m, cut) ->
      let text = Kir.Printer.to_string m in
      let cut = cut mod max 1 (String.length text) in
      match Kir.Parser.parse_string (String.sub text 0 cut) with
      | _ -> true
      | exception Kir.Parser.Parse_error _ -> true)

let test_verify_ok () =
  checkb "sample valid" true (Kir.Verify.is_valid (sample_module ()))

let test_verify_catches () =
  let mk blocks funcs globals externs =
    { m_name = "v"; globals; funcs; externs; meta = [] } |> fun m ->
    ignore blocks;
    m
  in
  (* unknown label *)
  let f_badlabel =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks = [ { b_label = "entry"; body = []; term = Br "nowhere" } ];
    }
  in
  checkb "bad label" false (Kir.Verify.is_valid (mk () [ f_badlabel ] [] []));
  (* undefined register *)
  let f_undef =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [ { b_label = "entry"; body = []; term = Ret (Some (Reg "%x")) } ];
    }
  in
  checkb "undef reg" false (Kir.Verify.is_valid (mk () [ f_undef ] [] []));
  (* unknown callee *)
  let f_badcall =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [
          {
            b_label = "entry";
            body = [ Call { dst = None; callee = "ghost"; args = [] } ];
            term = Ret None;
          };
        ];
    }
  in
  checkb "bad call" false (Kir.Verify.is_valid (mk () [ f_badcall ] [] []));
  (* arity mismatch *)
  let f_arity =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [
          {
            b_label = "entry";
            body = [ Call { dst = None; callee = "ext"; args = [ Imm 1 ] } ];
            term = Ret None;
          };
        ];
    }
  in
  checkb "arity" false
    (Kir.Verify.is_valid (mk () [ f_arity ] [] [ ("ext", 2) ]));
  (* duplicate label *)
  let f_dup =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [
          { b_label = "a"; body = []; term = Ret None };
          { b_label = "a"; body = []; term = Ret None };
        ];
    }
  in
  checkb "dup label" false (Kir.Verify.is_valid (mk () [ f_dup ] [] []));
  (* empty function *)
  let f_empty = { f_name = "f"; params = []; ret_ty = None; blocks = [] } in
  checkb "no blocks" false (Kir.Verify.is_valid (mk () [ f_empty ] [] []));
  (* bad global initializer *)
  checkb "init too large" false
    (Kir.Verify.is_valid
       (mk () []
          [ { g_name = "g"; g_size = 2; g_init = Some "abcd"; g_writable = true } ]
          []));
  (* unresolved symbol operand *)
  let f_sym =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [ { b_label = "entry"; body = []; term = Ret (Some (Sym "gone")) } ];
    }
  in
  checkb "bad sym" false (Kir.Verify.is_valid (mk () [ f_sym ] [] []))

let test_verify_params_count_as_defs () =
  let f =
    {
      f_name = "f";
      params = [ ("%p", I64) ];
      ret_ty = Some I64;
      blocks =
        [ { b_label = "entry"; body = []; term = Ret (Some (Reg "%p")) } ];
    }
  in
  checkb "param use ok" true
    (Kir.Verify.is_valid
       { m_name = ""; globals = []; funcs = [ f ]; externs = []; meta = [] })

let test_verify_many_symbols () =
  (* regression for the O(n²) symbol resolver: a module with many
     globals, functions and cross-calls must verify quickly and still
     resolve every name through the hashed symbol tables *)
  let n = 400 in
  let b = Kir.Builder.create "many" in
  for i = 0 to n - 1 do
    ignore (Kir.Builder.declare_global b (Printf.sprintf "g%d" i) ~size:8)
  done;
  for i = 0 to n - 1 do
    ignore
      (Kir.Builder.start_func b (Printf.sprintf "f%d" i) ~params:[] ~ret:None);
    ignore (Kir.Builder.load b I64 (Sym (Printf.sprintf "g%d" i)));
    if i > 0 then
      Kir.Builder.emit b
        (Call
           { dst = None; callee = Printf.sprintf "f%d" (i - 1); args = [] });
    Kir.Builder.ret b None
  done;
  let m = Kir.Builder.modul b in
  let t0 = Unix.gettimeofday () in
  checkb "many symbols valid" true (Kir.Verify.is_valid m);
  let dt = Unix.gettimeofday () -. t0 in
  checkb "resolves in linearithmic time" true (dt < 2.0);
  (* and a dangling reference among the crowd is still caught *)
  (match m.funcs with
  | f :: _ ->
    f.blocks <-
      [ { b_label = "entry";
          body = [ Load { dst = "%v"; ty = I64; addr = Sym "nope" } ];
          term = Ret None } ]
  | [] -> ());
  checkb "dangler caught" false (Kir.Verify.is_valid m)

let test_cfg_basic () =
  let m = sample_module () in
  let f = Option.get (find_func m "bump") in
  let g = Kir.Cfg.of_func f in
  checki "blocks" 1 (Kir.Cfg.n_blocks g);
  checki "no succs" 0 (List.length g.Kir.Cfg.succ.(0))

let test_cfg_diamond () =
  let b = Kir.Builder.create "d" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%c", I64) ] ~ret:(Some I64));
  Kir.Builder.if_then_else b (Reg "%c")
    ~then_:(fun () -> ())
    ~else_:(fun () -> ());
  Kir.Builder.ret b (Some (Imm 0));
  let f = Option.get (find_func (Kir.Builder.modul b) "f") in
  let g = Kir.Cfg.of_func f in
  checki "4 blocks" 4 (Kir.Cfg.n_blocks g);
  checki "entry has 2 succs" 2 (List.length g.Kir.Cfg.succ.(0));
  let rpo = Kir.Cfg.reverse_postorder g in
  checki "rpo covers all" 4 (List.length rpo);
  checki "rpo starts at entry" 0 (List.hd rpo);
  checki "no unreachable" 0 (List.length (Kir.Cfg.unreachable_blocks g))

let test_cfg_unreachable () =
  let f =
    {
      f_name = "f";
      params = [];
      ret_ty = None;
      blocks =
        [
          { b_label = "entry"; body = []; term = Ret None };
          { b_label = "island"; body = []; term = Ret None };
        ];
    }
  in
  let g = Kir.Cfg.of_func f in
  checki "island found" 1 (List.length (Kir.Cfg.unreachable_blocks g));
  check Alcotest.string "island label" "island"
    (List.hd (Kir.Cfg.unreachable_blocks g)).b_label

let test_cfg_switch_dedup () =
  let f =
    {
      f_name = "f";
      params = [ ("%v", I64) ];
      ret_ty = None;
      blocks =
        [
          {
            b_label = "entry";
            body = [];
            term =
              Switch
                { v = Reg "%v"; cases = [ (1, "a"); (2, "a") ]; default = "a" };
          };
          { b_label = "a"; body = []; term = Ret None };
        ];
    }
  in
  let g = Kir.Cfg.of_func f in
  checki "dedup succ" 1 (List.length g.Kir.Cfg.succ.(0));
  checki "single pred" 1 (List.length g.Kir.Cfg.pred.(1))

let () =
  Alcotest.run "kir"
    [
      ( "types",
        [
          Alcotest.test_case "type sizes" `Quick test_ty_sizes;
          Alcotest.test_case "def/use" `Quick test_def_use;
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "meta" `Quick test_meta;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
      ( "builder",
        [
          Alcotest.test_case "entry block" `Quick test_builder_entry;
          Alcotest.test_case "loop structure" `Quick test_builder_loop_structure;
        ] );
      ( "printer",
        [
          Alcotest.test_case "deterministic" `Quick test_printer_stable;
          Alcotest.test_case "meta excluded" `Quick test_printer_meta_excluded;
          Alcotest.test_case "escape round-trip" `Quick test_escape_roundtrip;
          Alcotest.test_case "truncated escape kept literal" `Quick
            test_unescape_truncated;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple module" `Quick test_parse_simple;
          Alcotest.test_case "rejects garbage" `Quick test_parse_errors;
          Alcotest.test_case "sample round-trip" `Quick test_roundtrip_sample;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_robust;
          QCheck_alcotest.to_alcotest prop_parser_truncation;
        ] );
      ( "verify",
        [
          Alcotest.test_case "valid module" `Quick test_verify_ok;
          Alcotest.test_case "catches defects" `Quick test_verify_catches;
          Alcotest.test_case "params are defs" `Quick test_verify_params_count_as_defs;
          Alcotest.test_case "many symbols" `Quick test_verify_many_symbols;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "single block" `Quick test_cfg_basic;
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "unreachable" `Quick test_cfg_unreachable;
          Alcotest.test_case "switch dedup" `Quick test_cfg_switch_dedup;
        ] );
    ]
