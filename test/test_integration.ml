(* Integration: end-to-end scenarios across the whole stack — the threat
   model, live policy manipulation during traffic, unload semantics, and
   cross-technique invariants. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- protection scenarios ---------- *)

let test_violation_during_nic_run_panics () =
  (* a policy that forgets the MMIO window: the very first doorbell
     write trips a guard and the kernel halts *)
  let config =
    {
      Testbed.default_config with
      technique = Testbed.Carat;
      module_scale = 1;
      policy =
        [
          (* direct map + module area + kernel image, but NO mmio *)
          Policy.Region.v ~tag:"dm" ~base:Kernel.Layout.direct_map_base
            ~len:0x1_0000_0000 ~prot:Policy.Region.prot_rw ();
          Policy.Region.v ~tag:"img" ~base:Kernel.Layout.kernel_base
            ~len:0x1000_0000 ~prot:Policy.Region.prot_rw ();
          Policy.Region.v ~tag:"mod" ~base:Kernel.Layout.module_base
            ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
        ];
    }
  in
  match Testbed.create ~config () with
  | exception Kernel.Panic _ -> () (* probe's first MMIO write *)
  | tb -> (
    match Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 5 } with
    | exception Kernel.Panic _ -> ()
    | _ -> Alcotest.fail "MMIO went unguarded")

let test_rogue_driver_entry_caught () =
  let config =
    { Testbed.default_config with technique = Testbed.Carat; with_rogue = true;
      module_scale = 1 }
  in
  let tb = Testbed.create ~config () in
  let k = tb.Testbed.kernel in
  (* normal operation works *)
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 } in
  checki "traffic ok" 10 r.Net.Pktgen.sent;
  (* the backdoor reads user memory: guard panic *)
  let user = Kernel.map_user k ~size:64 in
  match Kernel.call_symbol k "e1000e_debug_peek" [| user |] with
  | exception Kernel.Panic _ ->
    checkb "violation logged" true
      (Kernel.Klog.contains (Kernel.log k) "CARAT KOP: forbidden")
  | _ -> Alcotest.fail "backdoor read user memory"

let test_baseline_rogue_unprotected () =
  (* the same backdoor on a baseline build reads anything: the control *)
  let config =
    { Testbed.default_config with technique = Testbed.Baseline;
      with_rogue = true; module_scale = 1 }
  in
  let tb = Testbed.create ~config () in
  let k = tb.Testbed.kernel in
  let user = Kernel.map_user k ~size:64 in
  Kernel.write k ~addr:user ~size:8 0x5EC2E7;
  checki "secret exfiltrated" 0x5EC2E7
    (Kernel.call_symbol k "e1000e_debug_peek" [| user |])

let test_policy_window_first_match () =
  (* cleaner variant of the above: window rule inserted before the deny
     rule makes the access legal *)
  let k = Kernel.create Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let pm = Policy.Policy_module.install k in
  let b = Kir.Builder.create "reader" in
  ignore (Kir.Builder.start_func b "peek" ~params:[ ("%a", I64) ] ~ret:(Some I64));
  let v = Kir.Builder.load b I64 (Reg "%a") in
  Kir.Builder.ret b (Some v);
  let m = Kir.Builder.modul b in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insmod k m with Ok _ -> () | Error e ->
    Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  let u = Kernel.map_user k ~size:4096 in
  Kernel.write k ~addr:u ~size:8 99;
  Policy.Policy_module.set_policy pm
    (Policy.Region.v ~tag:"window" ~base:u ~len:4096
       ~prot:Policy.Region.prot_read ()
    :: Policy.Region.kernel_only);
  checki "window read ok" 99 (Kernel.call_symbol k "peek" [| u |]);
  (* narrowing it again restores the panic *)
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  match Kernel.call_symbol k "peek" [| u |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "narrowed policy did not bite"

let test_unload_driver_cleanly () =
  let tb = Testbed.create ~config:{ Testbed.default_config with module_scale = 1 } () in
  ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 });
  (match Kernel.rmmod tb.Testbed.kernel (Testbed.driver tb) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clean unload refused");
  checkb "cleanup logged" true
    (Kernel.Klog.contains (Kernel.log tb.Testbed.kernel) "driver unloaded")

let test_log_only_mode_counts_violations () =
  let k = Kernel.create Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit k
  in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let b = Kir.Builder.create "spray" in
  ignore (Kir.Builder.start_func b "spray" ~params:[ ("%a", I64) ] ~ret:None);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 8) ~step:(Imm 1) (fun i ->
      let a = Kir.Builder.gep b (Reg "%a") i ~scale:8 in
      Kir.Builder.store b I64 (Imm 0) a);
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insmod k m with Ok _ -> () | Error _ -> assert false);
  let u = Kernel.map_user k ~size:4096 in
  ignore (Kernel.call_symbol k "spray" [| u |]);
  checki "all eight writes recorded" 8
    (List.length (Policy.Policy_module.violations pm))

let test_quarantine_mid_send_and_recover () =
  (* the full degradation story on the real stack: an operator narrows
     the policy while traffic is flowing, the driver's next doorbell
     write is a violation, quarantine isolates the driver instead of
     panicking, sendmsg degrades to a typed error, and a reload brings
     the interface back *)
  let config =
    {
      Testbed.default_config with
      technique = Testbed.Carat;
      module_scale = 1;
      on_deny = Policy.Policy_module.Quarantine;
    }
  in
  let tb = Testbed.create ~config () in
  let k = tb.Testbed.kernel in
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 } in
  checki "traffic ok before" 10 r.Net.Pktgen.sent;
  (* narrow the policy: same windows as before minus MMIO *)
  let no_mmio =
    [
      Policy.Region.v ~tag:"dm" ~base:Kernel.Layout.direct_map_base
        ~len:0x1_0000_0000 ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"img" ~base:Kernel.Layout.kernel_base
        ~len:0x1000_0000 ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"mod" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
    ]
  in
  Policy.Policy_module.set_policy tb.Testbed.policy_module no_mmio;
  let r2 = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 } in
  checkb "degraded, not crashed" true
    (r2.Net.Pktgen.error = Some Net.Netstack.Driver_quarantined);
  checkb "kernel alive" true (Kernel.panic_state k = None);
  checkb "driver quarantined" true (Kernel.quarantine_records k <> []);
  (* recovery: unload the quarantined driver, restore the policy, reload
     and bring the interface back up *)
  (match Kernel.rmmod k (Testbed.driver tb) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rmmod of quarantined driver refused");
  Policy.Policy_module.set_policy tb.Testbed.policy_module
    Testbed.default_config.Testbed.policy;
  (match Kernel.insmod k tb.Testbed.driver_kir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reload: %s" (Kernel.load_error_to_string e));
  Net.Netstack.bring_up tb.Testbed.stack ~ring_entries:64;
  let r3 = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 } in
  checki "traffic ok after recovery" 10 r3.Net.Pktgen.sent;
  checkb "still alive" true (Kernel.panic_state k = None)

(* ---------- cross-technique invariants ---------- *)

let test_guard_count_matches_runtime_checks () =
  (* per packet, the number of runtime checks is identical across
     packets in steady state (same path) *)
  let tb = Testbed.create ~config:{ Testbed.default_config with module_scale = 1 } () in
  let st = Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module) in
  (* first batch includes one-time probe guards; compare later batches *)
  ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 });
  let c1 = st.Policy.Engine.checks in
  ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 });
  let c2 = st.Policy.Engine.checks in
  ignore (Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 10 });
  let c3 = st.Policy.Engine.checks in
  checkb "steady per-packet guard count" true (c2 - c1 > 0);
  checki "exactly repeatable" (c2 - c1) (c3 - c2)

let test_optimized_driver_still_protected () =
  let config =
    { Testbed.default_config with technique = Testbed.Carat;
      guard_opt = Passes.Pipeline.O_basic; with_rogue = true; module_scale = 1 }
  in
  let tb = Testbed.create ~config () in
  let k = tb.Testbed.kernel in
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 20 } in
  checki "traffic flows" 20 r.Net.Pktgen.sent;
  let user = Kernel.map_user k ~size:64 in
  match Kernel.call_symbol k "e1000e_debug_peek" [| user |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "optimization dropped a required guard"

let test_aggressive_driver_still_protected () =
  (* the certified optimizer deletes, widens, and merges guards; the
     rogue backdoor's wild store must still hit a surviving guard *)
  let config =
    { Testbed.default_config with technique = Testbed.Carat;
      guard_opt = Passes.Pipeline.O_aggressive; with_rogue = true;
      module_scale = 1 }
  in
  let tb = Testbed.create ~config () in
  let k = tb.Testbed.kernel in
  let r = Testbed.run_pktgen tb { Net.Pktgen.default_config with count = 20 } in
  checki "traffic flows" 20 r.Net.Pktgen.sent;
  let user = Kernel.map_user k ~size:64 in
  match Kernel.call_symbol k "e1000e_debug_peek" [| user |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "the certified optimizer dropped a required guard"

let test_kir_file_round_trip_through_compile () =
  (* print -> parse -> compile -> load -> run: the .kir file workflow the
     CLI tools use *)
  let m0 = Nic.Driver_gen.generate ~module_scale:1 () in
  let text = Kir.Printer.to_string m0 in
  let m = Kir.Parser.parse_string text in
  ignore (Passes.Pipeline.compile m);
  let k = Kernel.create Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  let pm = Policy.Policy_module.install k in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let dev = Nic.Device.create k in
  (match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  checki "probe through parsed module" 0
    (Kernel.call_symbol k "e1000e_probe" [| Nic.Device.mmio_base dev; 64 |]);
  let buf = Kernel.kmalloc k ~size:2048 in
  Kernel.write_string k ~addr:buf (Net.Frame.build ~seq:1 ~size:64 ());
  checki "xmit through parsed module" 0
    (Kernel.call_symbol k "e1000e_xmit_frame" [| buf; 64 |])

let () =
  Alcotest.run "integration"
    [
      ( "protection",
        [
          Alcotest.test_case "mmio hole panics" `Quick test_violation_during_nic_run_panics;
          Alcotest.test_case "rogue entry caught" `Quick test_rogue_driver_entry_caught;
          Alcotest.test_case "baseline control" `Quick test_baseline_rogue_unprotected;
          Alcotest.test_case "policy window first-match" `Quick test_policy_window_first_match;
          Alcotest.test_case "log-only counting" `Quick test_log_only_mode_counts_violations;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "clean unload" `Quick test_unload_driver_cleanly;
          Alcotest.test_case "quarantine mid-send + recover" `Quick
            test_quarantine_mid_send_and_recover;
          Alcotest.test_case "steady guard rate" `Quick test_guard_count_matches_runtime_checks;
          Alcotest.test_case "optimized still protected" `Quick test_optimized_driver_still_protected;
          Alcotest.test_case "aggressive still protected" `Quick test_aggressive_driver_still_protected;
          Alcotest.test_case "kir file round trip" `Quick test_kir_file_round_trip_through_compile;
        ] );
    ]
