(* Analysis: the dataflow solver, the guard-coverage domain, the
   guard-completeness certifier, certificate validation at module scale,
   and the KIR lints. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let guard_sym = "carat_guard"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- fixtures ---------- *)

let straightline_module () =
  let b = Kir.Builder.create "straight" in
  ignore (Kir.Builder.declare_global b "g" ~size:32);
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  let v1 = Kir.Builder.load b I64 (Reg "%p") in
  let v2 = Kir.Builder.load b I64 (Reg "%p") in
  let s = Kir.Builder.add b I64 v1 v2 in
  Kir.Builder.store b I64 s (Sym "g");
  Kir.Builder.ret b (Some s);
  Kir.Builder.modul b

let diamond_module () =
  let b = Kir.Builder.create "diamond" in
  ignore (Kir.Builder.declare_global b "g" ~size:32);
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  Kir.Builder.if_then_else b (Reg "%p")
    ~then_:(fun () -> ignore (Kir.Builder.load b I64 (Reg "%p")))
    ~else_:(fun () -> Kir.Builder.store b I64 (Imm 7) (Sym "g"));
  let v = Kir.Builder.load b I64 (Sym "g") in
  Kir.Builder.ret b (Some v);
  Kir.Builder.modul b

let loop_module () =
  let b = Kir.Builder.create "loopy" in
  ignore (Kir.Builder.declare_global b "table" ~size:64);
  ignore
    (Kir.Builder.start_func b "walk" ~params:[ ("%n", I64) ] ~ret:(Some I64));
  Kir.Builder.mov_to b "%acc" I64 (Imm 0);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%n") ~step:(Imm 1)
    (fun _i ->
      let v = Kir.Builder.load b I64 (Sym "table") in
      let s = Kir.Builder.add b I64 (Reg "%acc") v in
      Kir.Builder.mov_to b "%acc" I64 s);
  Kir.Builder.ret b (Some (Reg "%acc"));
  Kir.Builder.modul b

(* a hand-guarded module: guard(args) immediately before each access,
   without running the injection pass *)
let manual_module ~guard_flags ~access () =
  let b = Kir.Builder.create "manual" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = guard_sym;
         args = [ Reg "%p"; Imm 8; Imm guard_flags ] });
  (match access with
  | `Load -> ignore (Kir.Builder.load b I32 (Reg "%p"))
  | `Store -> Kir.Builder.store b I32 (Imm 1) (Reg "%p"));
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (guard_sym, 3) ];
  m

let inject m =
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  m

let optimize m =
  ignore (Passes.Guard_elim.run ~guard_symbol:guard_sym m);
  ignore (Passes.Guard_hoist.run ~guard_symbol:guard_sym m);
  ignore (Passes.Dce.run m);
  m

(* ---------- dataflow solver ---------- *)

let test_dataflow_block_counting () =
  (* saturating path-length domain: checks RPO iteration, joins, and
     convergence around the loop's back edge *)
  let m = loop_module () in
  let f = List.hd m.funcs in
  let cfg = Kir.Cfg.of_func f in
  let d =
    {
      Analysis.Dataflow.entry = 0;
      equal = Int.equal;
      join = (fun ~block:_ xs -> List.fold_left max 0 xs);
      transfer = (fun ~block:_ x -> min (x + 1) 8);
    }
  in
  let s = Analysis.Dataflow.solve d cfg in
  checkb "converged" true (s.Analysis.Dataflow.sweeps > 0);
  Array.iteri
    (fun i out ->
      match out with
      | Some v -> checkb (Printf.sprintf "block %d visited" i) true (v > 0)
      | None -> Alcotest.fail "reachable block not solved")
    s.Analysis.Dataflow.block_out

let test_dataflow_unreachable_stays_bottom () =
  let m = straightline_module () in
  let f = List.hd m.funcs in
  f.blocks <-
    f.blocks @ [ { b_label = "island"; body = []; term = Ret None } ];
  let cfg = Kir.Cfg.of_func f in
  let d =
    {
      Analysis.Dataflow.entry = ();
      equal = (fun () () -> true);
      join = (fun ~block:_ _ -> ());
      transfer = (fun ~block:_ () -> ());
    }
  in
  let s = Analysis.Dataflow.solve d cfg in
  let island = Kir.Cfg.index_of cfg "island" in
  checkb "island unsolved" true (s.Analysis.Dataflow.block_in.(island) = None)

(* ---------- certifier: positive and negative ---------- *)

let test_certify_rejects_raw () =
  match Analysis.Certify.certify (straightline_module ()) with
  | Error msg -> checkb "mentions unguarded" true (contains msg "unguarded")
  | Ok _ -> Alcotest.fail "unguarded module certified"

let test_certify_after_injection () =
  List.iter
    (fun mk ->
      let m = inject (mk ()) in
      match Analysis.Certify.certify m with
      | Ok (_, s) ->
        let covered =
          List.fold_left
            (fun n fs -> n + fs.Analysis.Certify.fs_covered)
            0 s.Analysis.Certify.s_funcs
        in
        checkb "covers accesses" true (covered > 0)
      | Error msg -> Alcotest.fail ("injected module failed: " ^ msg))
    [ straightline_module; diamond_module; loop_module ]

let test_certify_after_optimization () =
  List.iter
    (fun mk ->
      let m = optimize (inject (mk ())) in
      match Analysis.Certify.certify m with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("optimized module failed: " ^ msg))
    [ straightline_module; diamond_module; loop_module ]

let test_certify_hoisted_loop () =
  (* hoisting must actually fire on the loop fixture, and the hoisted
     guard must still dominate the in-loop access for the certifier *)
  let m = inject (loop_module ()) in
  let before = Passes.Guard_injection.count_guards m in
  ignore (Passes.Guard_elim.run ~guard_symbol:guard_sym m);
  let r = Passes.Guard_hoist.run ~guard_symbol:guard_sym m in
  checkb "hoist fired" true r.Passes.Pass.changed;
  checkb "guard moved, not dropped" true
    (Passes.Guard_injection.count_guards m <= before);
  checkb "still certifies" true (Result.is_ok (Analysis.Certify.certify m))

let test_certify_coverage_subsumption () =
  (* an 8-byte rw guard covers a narrower access at the same base *)
  checkb "load under rw guard" true
    (Result.is_ok
       (Analysis.Certify.certify (manual_module ~guard_flags:3 ~access:`Load ())));
  checkb "store under rw guard" true
    (Result.is_ok
       (Analysis.Certify.certify
          (manual_module ~guard_flags:3 ~access:`Store ())));
  (* a read-only guard does not license a store *)
  checkb "store under ro guard rejected" true
    (Result.is_error
       (Analysis.Certify.certify
          (manual_module ~guard_flags:1 ~access:`Store ())))

let test_certify_kill_at_opaque_call () =
  (* an un-analyzed callee invalidates coverage: it may unmap the page *)
  let m = manual_module ~guard_flags:3 ~access:`Load () in
  let f = List.hd m.funcs in
  m.externs <- m.externs @ [ ("ext", 0) ];
  (match f.blocks with
  | blk :: _ ->
    blk.body <-
      (match blk.body with
      | guard :: rest ->
        (guard :: [ Call { dst = None; callee = "ext"; args = [] } ]) @ rest
      | [] -> assert false)
  | [] -> assert false);
  checkb "opaque call kills coverage" true
    (Result.is_error (Analysis.Certify.certify m))

(* ---------- differential property ---------- *)

let gen_module =
  QCheck.Gen.(
    let gen_ty = oneofl [ I8; I16; I32; I64 ] in
    let* n = int_range 1 10 in
    let* ops = list_repeat n (tup2 gen_ty (int_bound 3)) in
    let* with_loop = bool in
    let b = Kir.Builder.create "gen" in
    ignore (Kir.Builder.declare_global b "g" ~size:256);
    ignore
      (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
    List.iter
      (fun (ty, kind) ->
        match kind with
        | 0 -> ignore (Kir.Builder.load b ty (Reg "%p"))
        | 1 -> Kir.Builder.store b ty (Imm 5) (Sym "g")
        | 2 ->
          let a = Kir.Builder.gep b (Reg "%p") (Imm 4) ~scale:1 in
          ignore (Kir.Builder.load b ty a)
        | _ -> ignore (Kir.Builder.load b ty (Reg "%p")))
      ops;
    if with_loop then
      Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 8) ~step:(Imm 1)
        (fun i ->
          (* one invariant (hoistable) and one variant access *)
          ignore (Kir.Builder.load b I64 (Sym "g"));
          let a = Kir.Builder.gep b (Reg "%p") i ~scale:8 in
          Kir.Builder.store b I64 (Imm 1) a);
    Kir.Builder.ret b (Some (Imm 0));
    return (Kir.Builder.modul b))

let prop_certify_differential =
  QCheck.Test.make
    ~name:"random module certifies after injection and after optimization"
    ~count:80 (QCheck.make gen_module) (fun m ->
      let m = inject m in
      let ok_injected = Result.is_ok (Analysis.Certify.certify m) in
      let m = optimize m in
      ok_injected
      && Result.is_ok (Analysis.Certify.certify m)
      && Kir.Verify.is_valid m)

(* ---------- e1000e driver: certification + mutation sweep ---------- *)

let compiled_driver ~optimize () =
  let m = Nic.Driver_gen.generate ~module_scale:6 ~with_rogue:false () in
  let pipeline =
    if optimize then Passes.Pipeline.kop_optimized ()
    else Passes.Pipeline.kop_default ()
  in
  ignore (Passes.Pass.run_pipeline_checked pipeline m);
  m

let test_driver_certifies () =
  checkb "default pipeline" true
    (Analysis.Certify.validate (compiled_driver ~optimize:false ()) = Ok ());
  checkb "optimized pipeline" true
    (Analysis.Certify.validate (compiled_driver ~optimize:true ()) = Ok ())

let delete_nth_guard m n =
  (* remove the n-th carat_guard call (module order); true if deleted *)
  let k = ref 0 in
  let deleted = ref false in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.body <-
            List.filter
              (function
                | Call { callee; _ } when callee = guard_sym ->
                  let mine = !k = n in
                  incr k;
                  if mine then deleted := true;
                  not mine
                | _ -> true)
              blk.body)
        f.blocks)
    m.funcs;
  !deleted

let test_driver_mutation_sweep () =
  (* acceptance: deleting ANY single guard from the compiled e1000e
     driver must flip the certifier to reject *)
  let total =
    Passes.Guard_injection.count_guards (compiled_driver ~optimize:true ())
  in
  checkb "driver has guards" true (total > 0);
  let survivors = ref [] in
  for n = 0 to total - 1 do
    let m = compiled_driver ~optimize:true () in
    checkb "mutant deleted a guard" true (delete_nth_guard m n);
    if Result.is_ok (Analysis.Certify.certify m) then
      survivors := n :: !survivors
  done;
  Alcotest.(check (list int)) "every mutant caught" [] !survivors

(* ---------- certificate validation ---------- *)

let test_validate_errors () =
  let m = compiled_driver ~optimize:false () in
  checkb "fresh cert ok" true (Analysis.Certify.validate m = Ok ());
  (* missing *)
  let m1 = compiled_driver ~optimize:false () in
  m1.meta <-
    List.filter (fun (k, _) -> k <> Passes.Attest.meta_cert) m1.meta;
  checkb "missing" true
    (Analysis.Certify.validate m1 = Error Analysis.Certify.Cert_missing);
  (* stale: body changed after certification *)
  let m2 = compiled_driver ~optimize:false () in
  (match m2.funcs with
  | f :: _ ->
    f.blocks <-
      f.blocks @ [ { b_label = "tamper"; body = []; term = Ret None } ]
  | [] -> ());
  (match Analysis.Certify.validate m2 with
  | Error (Analysis.Certify.Cert_stale _) -> ()
  | _ -> Alcotest.fail "tampered body not flagged stale");
  (* invalid: garbage certificate *)
  let m3 = compiled_driver ~optimize:false () in
  meta_set m3 Passes.Attest.meta_cert "not a certificate";
  (match Analysis.Certify.validate m3 with
  | Error (Analysis.Certify.Cert_invalid _) -> ()
  | _ -> Alcotest.fail "garbage cert not flagged invalid");
  (* mismatch: digest field intact, but the census was doctored *)
  let m4 = compiled_driver ~optimize:false () in
  let cert = Option.get (meta_find m4 Passes.Attest.meta_cert) in
  meta_set m4 Passes.Attest.meta_cert (cert ^ ";forged=1");
  match Analysis.Certify.validate m4 with
  | Error Analysis.Certify.Cert_mismatch -> ()
  | _ -> Alcotest.fail "forged census not flagged"

(* ---------- kir lints ---------- *)

let codes fs = List.map (fun f -> f.Analysis.Kir_lint.code) fs

let test_lint_unguarded_and_unreachable () =
  let m = straightline_module () in
  let f = List.hd m.funcs in
  f.blocks <-
    f.blocks @ [ { b_label = "island"; body = []; term = Ret None } ];
  let fs = Analysis.Kir_lint.lint m in
  checkb "unguarded errors" true
    (List.mem "L-unguarded" (codes (Analysis.Kir_lint.errors fs)));
  checkb "unreachable warned" true
    (List.mem "L-unreachable" (codes (Analysis.Kir_lint.warnings fs)))

let test_lint_clean_module () =
  let m = inject (straightline_module ()) in
  checki "no errors on injected module" 0
    (List.length (Analysis.Kir_lint.errors (Analysis.Kir_lint.lint m)))

let test_lint_duplicate_guard () =
  (* duplicate back-to-back guard on the same address: second one is
     shadowed and unused *)
  let m = manual_module ~guard_flags:3 ~access:`Load () in
  let f = List.hd m.funcs in
  (match f.blocks with
  | blk :: _ ->
    blk.body <-
      (match blk.body with
      | (Call _ as g) :: rest -> g :: g :: rest
      | _ -> assert false)
  | [] -> assert false);
  let fs = Analysis.Kir_lint.lint m in
  checkb "shadowed guard flagged" true (List.mem "L-shadowed-guard" (codes fs))

let test_lint_unused_guard () =
  let b = Kir.Builder.create "unused" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = guard_sym;
         args = [ Reg "%p"; Imm 8; Imm 3 ] });
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (guard_sym, 3) ];
  let fs = Analysis.Kir_lint.lint m in
  checkb "unused guard flagged" true (List.mem "L-unused-guard" (codes fs))

let test_lint_callind_nocfi () =
  let b = Kir.Builder.create "ind" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%fp", I64) ] ~ret:None);
  Kir.Builder.emit b (Callind { dst = None; fn = Reg "%fp"; args = [] });
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  let fs = Analysis.Kir_lint.lint m in
  checkb "nocfi flagged" true (List.mem "L-callind-nocfi" (codes fs))

(* ---------- suite ---------- *)

let () =
  Alcotest.run "analysis"
    [
      ( "dataflow",
        [
          Alcotest.test_case "loop converges" `Quick test_dataflow_block_counting;
          Alcotest.test_case "unreachable bottom" `Quick
            test_dataflow_unreachable_stays_bottom;
        ] );
      ( "certify",
        [
          Alcotest.test_case "rejects raw" `Quick test_certify_rejects_raw;
          Alcotest.test_case "accepts injected" `Quick
            test_certify_after_injection;
          Alcotest.test_case "accepts optimized" `Quick
            test_certify_after_optimization;
          Alcotest.test_case "hoisted loop" `Quick test_certify_hoisted_loop;
          Alcotest.test_case "coverage subsumption" `Quick
            test_certify_coverage_subsumption;
          Alcotest.test_case "opaque call kills" `Quick
            test_certify_kill_at_opaque_call;
          QCheck_alcotest.to_alcotest prop_certify_differential;
        ] );
      ( "driver",
        [
          Alcotest.test_case "e1000e certifies" `Quick test_driver_certifies;
          Alcotest.test_case "mutation sweep" `Slow test_driver_mutation_sweep;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
        ] );
      ( "lint",
        [
          Alcotest.test_case "unguarded+unreachable" `Quick
            test_lint_unguarded_and_unreachable;
          Alcotest.test_case "clean after injection" `Quick
            test_lint_clean_module;
          Alcotest.test_case "duplicate guard" `Quick test_lint_duplicate_guard;
          Alcotest.test_case "unused guard" `Quick test_lint_unused_guard;
          Alcotest.test_case "callind nocfi" `Quick test_lint_callind_nocfi;
        ] );
    ]
