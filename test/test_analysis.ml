(* Analysis: the dataflow solver, the guard-coverage domain, the
   guard-completeness certifier, certificate validation at module scale,
   and the KIR lints. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let guard_sym = "carat_guard"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- fixtures ---------- *)

let straightline_module () =
  let b = Kir.Builder.create "straight" in
  ignore (Kir.Builder.declare_global b "g" ~size:32);
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  let v1 = Kir.Builder.load b I64 (Reg "%p") in
  let v2 = Kir.Builder.load b I64 (Reg "%p") in
  let s = Kir.Builder.add b I64 v1 v2 in
  Kir.Builder.store b I64 s (Sym "g");
  Kir.Builder.ret b (Some s);
  Kir.Builder.modul b

let diamond_module () =
  let b = Kir.Builder.create "diamond" in
  ignore (Kir.Builder.declare_global b "g" ~size:32);
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  Kir.Builder.if_then_else b (Reg "%p")
    ~then_:(fun () -> ignore (Kir.Builder.load b I64 (Reg "%p")))
    ~else_:(fun () -> Kir.Builder.store b I64 (Imm 7) (Sym "g"));
  let v = Kir.Builder.load b I64 (Sym "g") in
  Kir.Builder.ret b (Some v);
  Kir.Builder.modul b

let loop_module () =
  let b = Kir.Builder.create "loopy" in
  ignore (Kir.Builder.declare_global b "table" ~size:64);
  ignore
    (Kir.Builder.start_func b "walk" ~params:[ ("%n", I64) ] ~ret:(Some I64));
  Kir.Builder.mov_to b "%acc" I64 (Imm 0);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%n") ~step:(Imm 1)
    (fun _i ->
      let v = Kir.Builder.load b I64 (Sym "table") in
      let s = Kir.Builder.add b I64 (Reg "%acc") v in
      Kir.Builder.mov_to b "%acc" I64 s);
  Kir.Builder.ret b (Some (Reg "%acc"));
  Kir.Builder.modul b

(* a hand-guarded module: guard(args) immediately before each access,
   without running the injection pass *)
let manual_module ~guard_flags ~access () =
  let b = Kir.Builder.create "manual" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = guard_sym;
         args = [ Reg "%p"; Imm 8; Imm guard_flags ] });
  (match access with
  | `Load -> ignore (Kir.Builder.load b I32 (Reg "%p"))
  | `Store -> Kir.Builder.store b I32 (Imm 1) (Reg "%p"));
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (guard_sym, 3) ];
  m

let inject m =
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  m

let optimize m =
  ignore (Passes.Guard_elim.run ~guard_symbol:guard_sym m);
  ignore (Passes.Guard_hoist.run ~guard_symbol:guard_sym m);
  ignore (Passes.Dce.run m);
  m

(* ---------- dataflow solver ---------- *)

let test_dataflow_block_counting () =
  (* saturating path-length domain: checks RPO iteration, joins, and
     convergence around the loop's back edge *)
  let m = loop_module () in
  let f = List.hd m.funcs in
  let cfg = Kir.Cfg.of_func f in
  let d =
    {
      Analysis.Dataflow.entry = 0;
      equal = Int.equal;
      join = (fun ~block:_ xs -> List.fold_left max 0 xs);
      transfer = (fun ~block:_ x -> min (x + 1) 8);
    }
  in
  let s = Analysis.Dataflow.solve d cfg in
  checkb "converged" true (s.Analysis.Dataflow.sweeps > 0);
  Array.iteri
    (fun i out ->
      match out with
      | Some v -> checkb (Printf.sprintf "block %d visited" i) true (v > 0)
      | None -> Alcotest.fail "reachable block not solved")
    s.Analysis.Dataflow.block_out

let test_dataflow_unreachable_stays_bottom () =
  let m = straightline_module () in
  let f = List.hd m.funcs in
  f.blocks <-
    f.blocks @ [ { b_label = "island"; body = []; term = Ret None } ];
  let cfg = Kir.Cfg.of_func f in
  let d =
    {
      Analysis.Dataflow.entry = ();
      equal = (fun () () -> true);
      join = (fun ~block:_ _ -> ());
      transfer = (fun ~block:_ () -> ());
    }
  in
  let s = Analysis.Dataflow.solve d cfg in
  let island = Kir.Cfg.index_of cfg "island" in
  checkb "island unsolved" true (s.Analysis.Dataflow.block_in.(island) = None)

(* ---------- certifier: positive and negative ---------- *)

let test_certify_rejects_raw () =
  match Analysis.Certify.certify (straightline_module ()) with
  | Error msg -> checkb "mentions unguarded" true (contains msg "unguarded")
  | Ok _ -> Alcotest.fail "unguarded module certified"

let test_certify_after_injection () =
  List.iter
    (fun mk ->
      let m = inject (mk ()) in
      match Analysis.Certify.certify m with
      | Ok (_, s) ->
        let covered =
          List.fold_left
            (fun n fs -> n + fs.Analysis.Certify.fs_covered)
            0 s.Analysis.Certify.s_funcs
        in
        checkb "covers accesses" true (covered > 0)
      | Error msg -> Alcotest.fail ("injected module failed: " ^ msg))
    [ straightline_module; diamond_module; loop_module ]

let test_certify_after_optimization () =
  List.iter
    (fun mk ->
      let m = optimize (inject (mk ())) in
      match Analysis.Certify.certify m with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("optimized module failed: " ^ msg))
    [ straightline_module; diamond_module; loop_module ]

let test_certify_hoisted_loop () =
  (* hoisting must actually fire on the loop fixture, and the hoisted
     guard must still dominate the in-loop access for the certifier *)
  let m = inject (loop_module ()) in
  let before = Passes.Guard_injection.count_guards m in
  ignore (Passes.Guard_elim.run ~guard_symbol:guard_sym m);
  let r = Passes.Guard_hoist.run ~guard_symbol:guard_sym m in
  checkb "hoist fired" true r.Passes.Pass.changed;
  checkb "guard moved, not dropped" true
    (Passes.Guard_injection.count_guards m <= before);
  checkb "still certifies" true (Result.is_ok (Analysis.Certify.certify m))

let test_certify_coverage_subsumption () =
  (* an 8-byte rw guard covers a narrower access at the same base *)
  checkb "load under rw guard" true
    (Result.is_ok
       (Analysis.Certify.certify (manual_module ~guard_flags:3 ~access:`Load ())));
  checkb "store under rw guard" true
    (Result.is_ok
       (Analysis.Certify.certify
          (manual_module ~guard_flags:3 ~access:`Store ())));
  (* a read-only guard does not license a store *)
  checkb "store under ro guard rejected" true
    (Result.is_error
       (Analysis.Certify.certify
          (manual_module ~guard_flags:1 ~access:`Store ())))

let test_certify_kill_at_opaque_call () =
  (* an un-analyzed callee invalidates coverage: it may unmap the page *)
  let m = manual_module ~guard_flags:3 ~access:`Load () in
  let f = List.hd m.funcs in
  m.externs <- m.externs @ [ ("ext", 0) ];
  (match f.blocks with
  | blk :: _ ->
    blk.body <-
      (match blk.body with
      | guard :: rest ->
        (guard :: [ Call { dst = None; callee = "ext"; args = [] } ]) @ rest
      | [] -> assert false)
  | [] -> assert false);
  checkb "opaque call kills coverage" true
    (Result.is_error (Analysis.Certify.certify m))

(* ---------- differential property ---------- *)

let gen_module =
  QCheck.Gen.(
    let gen_ty = oneofl [ I8; I16; I32; I64 ] in
    let* n = int_range 1 10 in
    let* ops = list_repeat n (tup2 gen_ty (int_bound 3)) in
    let* with_loop = bool in
    let b = Kir.Builder.create "gen" in
    ignore (Kir.Builder.declare_global b "g" ~size:256);
    ignore
      (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
    List.iter
      (fun (ty, kind) ->
        match kind with
        | 0 -> ignore (Kir.Builder.load b ty (Reg "%p"))
        | 1 -> Kir.Builder.store b ty (Imm 5) (Sym "g")
        | 2 ->
          let a = Kir.Builder.gep b (Reg "%p") (Imm 4) ~scale:1 in
          ignore (Kir.Builder.load b ty a)
        | _ -> ignore (Kir.Builder.load b ty (Reg "%p")))
      ops;
    if with_loop then
      Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 8) ~step:(Imm 1)
        (fun i ->
          (* one invariant (hoistable) and one variant access *)
          ignore (Kir.Builder.load b I64 (Sym "g"));
          let a = Kir.Builder.gep b (Reg "%p") i ~scale:8 in
          Kir.Builder.store b I64 (Imm 1) a);
    Kir.Builder.ret b (Some (Imm 0));
    return (Kir.Builder.modul b))

let prop_certify_differential =
  QCheck.Test.make
    ~name:"random module certifies after injection and after optimization"
    ~count:80 (QCheck.make gen_module) (fun m ->
      let m = inject m in
      let ok_injected = Result.is_ok (Analysis.Certify.certify m) in
      let m = optimize m in
      ok_injected
      && Result.is_ok (Analysis.Certify.certify m)
      && Kir.Verify.is_valid m)

(* ---------- optimizer differential property ---------- *)

(* Random modules, random (object-granular) policies: the aggressive
   optimizer must preserve the observable behavior of the unoptimized
   compile — same return value, same final memory, same allow/deny
   verdict — while never executing more checks; and neither compile may
   behave differently across the two execution engines. *)

(* pure case data, so the same description builds two identical modules *)
let gen_opt_case =
  QCheck.Gen.(
    let* n_ops = int_range 1 6 in
    let* ops = list_repeat n_ops (tup2 (int_bound 3) (int_bound 3)) in
    let* loop_n = int_range 2 9 in
    let* widenable = bool in
    let* cover_buf = bool in
    let* buf_prot = int_range 1 3 in
    let* cover_infra = frequency [ (3, return true); (1, return false) ] in
    return (ops, loop_n, widenable, cover_buf, buf_prot, cover_infra))

let build_opt_module (ops, loop_n, widenable) =
  let b = Kir.Builder.create "diff" in
  ignore (Kir.Builder.declare_global b "g" ~size:256);
  (* a callee whose guard guarantees its parameter: interprocedural
     elimination can spare the caller's own check *)
  ignore (Kir.Builder.start_func b "h" ~params:[ ("%q", I64) ] ~ret:None);
  Kir.Builder.store b I64 (Imm 0x11) (Reg "%q");
  Kir.Builder.ret b None;
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  Kir.Builder.mov_to b "%acc" I64 (Imm 0);
  ignore (Kir.Builder.call b "h" [ Reg "%p" ]);
  List.iter
    (fun (t, kind) ->
      let ty = List.nth [ I8; I16; I32; I64 ] t in
      let accum v =
        let s = Kir.Builder.add b I64 (Reg "%acc") v in
        Kir.Builder.mov_to b "%acc" I64 s
      in
      match kind with
      | 0 -> accum (Kir.Builder.load b ty (Reg "%p"))
      | 1 -> Kir.Builder.store b ty (Imm 0x2A) (Sym "g")
      | 2 ->
        (* adjacent-offset access: coalescing fodder *)
        let a = Kir.Builder.gep b (Reg "%p") (Imm 8) ~scale:1 in
        Kir.Builder.store b ty (Imm 0x33) a
      | _ -> accum (Kir.Builder.load b ty (Sym "g")))
    ops;
  (* counted loop over buf: hoist-widening fodder when the stride is
     within the access width *)
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm loop_n) ~step:(Imm 1)
    (fun i ->
      let scale = if widenable then 8 else 1 in
      let a = Kir.Builder.gep b (Reg "%p") i ~scale in
      Kir.Builder.store b I64 (Imm 0x44) a);
  Kir.Builder.ret b (Some (Reg "%acc"));
  Kir.Builder.modul b

(* run [m] to completion under an object-granular policy (each
   allocation entirely in or entirely out); audit mode, so denies are
   recorded but execution continues and final memory is meaningful *)
let exec_opt_case m ~engine ~cover_buf ~buf_prot ~cover_infra =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Engine.install ~kind:engine k);
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Audit k
  in
  let buf = Kernel.kmalloc k ~size:256 in
  Policy.Policy_module.set_policy pm
    ((if cover_buf then
        [ Policy.Region.v ~tag:"buf" ~base:buf ~len:256 ~prot:buf_prot () ]
      else [])
    @
    if cover_infra then
      [
        Policy.Region.v ~tag:"module-area" ~base:Kernel.Layout.module_base
          ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
      ]
    else []);
  (match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  let ret = Kernel.call_symbol k "f" [| buf |] in
  let mem = List.init 32 (fun i -> Kernel.read k ~addr:(buf + (8 * i)) ~size:8) in
  let st = Policy.Engine.stats (Policy.Policy_module.engine pm) in
  ( ret,
    mem,
    st.Policy.Engine.checks,
    st.Policy.Engine.allowed,
    st.Policy.Engine.denied )

let prop_optimizer_differential =
  QCheck.Test.make
    ~name:
      "aggressive opt preserves return, memory, and verdict; fewer checks; \
       engine parity"
    ~count:20 (QCheck.make gen_opt_case)
    (fun (ops, loop_n, widenable, cover_buf, buf_prot, cover_infra) ->
      let run opt engine =
        let m = build_opt_module (ops, loop_n, widenable) in
        ignore (Passes.Pipeline.compile ~opt m);
        exec_opt_case m ~engine ~cover_buf ~buf_prot ~cover_infra
      in
      let ((r_n, m_n, c_n, a_n, d_n) as none_i) =
        run Passes.Pipeline.O_none Vm.Engine.Interp
      in
      let ((r_a, m_a, c_a, a_a, d_a) as aggr_i) =
        run Passes.Pipeline.O_aggressive Vm.Engine.Interp
      in
      run Passes.Pipeline.O_none Vm.Engine.Compiled = none_i
      && run Passes.Pipeline.O_aggressive Vm.Engine.Compiled = aggr_i
      && r_n = r_a && m_n = m_a
      && (d_n > 0) = (d_a > 0)
      && c_a <= c_n
      && a_n + d_n = c_n
      && a_a + d_a = c_a)

(* ---------- e1000e driver: certification + mutation sweep ---------- *)

let compiled_driver_at ~opt () =
  let m = Nic.Driver_gen.generate ~module_scale:6 ~with_rogue:false () in
  ignore (Passes.Pipeline.compile ~opt m);
  m

let compiled_driver ~optimize () =
  compiled_driver_at
    ~opt:(if optimize then Passes.Pipeline.O_basic else Passes.Pipeline.O_none)
    ()

let test_driver_certifies () =
  checkb "default pipeline" true
    (Analysis.Certify.validate (compiled_driver ~optimize:false ()) = Ok ());
  checkb "optimized pipeline" true
    (Analysis.Certify.validate (compiled_driver ~optimize:true ()) = Ok ())

let test_driver_aggressive_certifies () =
  (* the certified optimizer must actually fire (not roll back), shrink
     the static guard census, and leave a module that re-validates *)
  let m = Nic.Driver_gen.generate ~module_scale:6 ~with_rogue:false () in
  let remarks = Passes.Pipeline.compile ~opt:Passes.Pipeline.O_aggressive m in
  let opt_remarks =
    match List.assoc_opt "guard-optimize" remarks with
    | Some (r : Passes.Pass.result) -> r.Passes.Pass.remarks
    | None -> Alcotest.fail "guard-optimize pass did not run"
  in
  checkb "optimizer was not rolled back" true
    (List.assoc_opt "restored" opt_remarks = None);
  checkb "optimizer changed something" true
    (List.exists (fun (_, v) -> v <> "0") opt_remarks);
  let basic = Passes.Guard_injection.count_guards (compiled_driver ~optimize:true ()) in
  checkb "fewer static guards than basic" true
    (Passes.Guard_injection.count_guards m < basic);
  checkb "re-validates" true (Analysis.Certify.validate m = Ok ());
  checkb "stamped aggressive" true
    (meta_find m Passes.Guard_injection.meta_opt_level = Some "aggressive")

let delete_nth_guard m n =
  (* remove the n-th carat_guard call (module order); true if deleted *)
  let k = ref 0 in
  let deleted = ref false in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.body <-
            List.filter
              (function
                | Call { callee; _ } when callee = guard_sym ->
                  let mine = !k = n in
                  incr k;
                  if mine then deleted := true;
                  not mine
                | _ -> true)
              blk.body)
        f.blocks)
    m.funcs;
  !deleted

let test_driver_mutation_sweep () =
  (* acceptance: deleting ANY single guard from the compiled e1000e
     driver must flip the certifier to reject *)
  let total =
    Passes.Guard_injection.count_guards (compiled_driver ~optimize:true ())
  in
  checkb "driver has guards" true (total > 0);
  let survivors = ref [] in
  for n = 0 to total - 1 do
    let m = compiled_driver ~optimize:true () in
    checkb "mutant deleted a guard" true (delete_nth_guard m n);
    if Result.is_ok (Analysis.Certify.certify m) then
      survivors := n :: !survivors
  done;
  Alcotest.(check (list int)) "every mutant caught" [] !survivors

let test_driver_mutation_sweep_aggressive () =
  (* the same sweep over the certified optimizer's output: after
     elimination, widening, and coalescing every surviving guard is
     load-bearing, so deleting any single one must still flip the
     certifier to reject *)
  let total =
    Passes.Guard_injection.count_guards
      (compiled_driver_at ~opt:Passes.Pipeline.O_aggressive ())
  in
  checkb "optimized driver has guards" true (total > 0);
  let survivors = ref [] in
  for n = 0 to total - 1 do
    let m = compiled_driver_at ~opt:Passes.Pipeline.O_aggressive () in
    checkb "mutant deleted a guard" true (delete_nth_guard m n);
    if Result.is_ok (Analysis.Certify.certify m) then
      survivors := n :: !survivors
  done;
  Alcotest.(check (list int)) "every optimized mutant caught" [] !survivors

(* ---------- certificate validation ---------- *)

let test_validate_errors () =
  let m = compiled_driver ~optimize:false () in
  checkb "fresh cert ok" true (Analysis.Certify.validate m = Ok ());
  (* missing *)
  let m1 = compiled_driver ~optimize:false () in
  m1.meta <-
    List.filter (fun (k, _) -> k <> Passes.Attest.meta_cert) m1.meta;
  checkb "missing" true
    (Analysis.Certify.validate m1 = Error Analysis.Certify.Cert_missing);
  (* stale: body changed after certification *)
  let m2 = compiled_driver ~optimize:false () in
  (match m2.funcs with
  | f :: _ ->
    f.blocks <-
      f.blocks @ [ { b_label = "tamper"; body = []; term = Ret None } ]
  | [] -> ());
  (match Analysis.Certify.validate m2 with
  | Error (Analysis.Certify.Cert_stale _) -> ()
  | _ -> Alcotest.fail "tampered body not flagged stale");
  (* invalid: garbage certificate *)
  let m3 = compiled_driver ~optimize:false () in
  meta_set m3 Passes.Attest.meta_cert "not a certificate";
  (match Analysis.Certify.validate m3 with
  | Error (Analysis.Certify.Cert_invalid _) -> ()
  | _ -> Alcotest.fail "garbage cert not flagged invalid");
  (* mismatch: digest field intact, but the census was doctored *)
  let m4 = compiled_driver ~optimize:false () in
  let cert = Option.get (meta_find m4 Passes.Attest.meta_cert) in
  meta_set m4 Passes.Attest.meta_cert (cert ^ ";forged=1");
  match Analysis.Certify.validate m4 with
  | Error Analysis.Certify.Cert_mismatch -> ()
  | _ -> Alcotest.fail "forged census not flagged"


(* ---------- per-domain certificates ---------- *)

(* A certificate can be bound to the policy domain the module will run
   under. Undomained certificates keep the old wire format and still
   validate; a verifier that pins --domain rejects both undomained and
   wrong-domain certificates. *)
let test_certify_domain_binding () =
  (* undomained: backward compatible, but fails a pinned verifier *)
  let m = compiled_driver ~optimize:false () in
  checkb "undomained still validates" true
    (Analysis.Certify.validate m = Ok ());
  (match Analysis.Certify.validate ~expect_domain:"e1000e" m with
  | Error (Analysis.Certify.Cert_wrong_domain { expected; found }) ->
    Alcotest.(check string) "expected" "e1000e" expected;
    checkb "found none" true (found = None)
  | _ -> Alcotest.fail "undomained cert passed a pinned verifier");
  (* domain-bound: stamp the module, re-issue, validate both ways *)
  let m2 = compiled_driver ~optimize:false () in
  Analysis.Certify.set_domain m2 "e1000e";
  (match Analysis.Certify.certificate m2 with
  | Error e -> Alcotest.failf "re-certify: %s" e
  | Ok cert ->
    meta_set m2 Passes.Attest.meta_cert cert;
    checkb "cert names the domain" true
      (Analysis.Certify.stored_domain cert = Some "e1000e"));
  checkb "domained validates" true (Analysis.Certify.validate m2 = Ok ());
  checkb "pinned verifier accepts the right domain" true
    (Analysis.Certify.validate ~expect_domain:"e1000e" m2 = Ok ());
  (match Analysis.Certify.validate ~expect_domain:"ixgbe" m2 with
  | Error (Analysis.Certify.Cert_wrong_domain { expected; found }) ->
    Alcotest.(check string) "expected" "ixgbe" expected;
    checkb "found the bound domain" true (found = Some "e1000e")
  | _ -> Alcotest.fail "wrong-domain cert accepted");
  ()

let test_certify_domain_forgery () =
  let m = compiled_driver ~optimize:false () in
  Analysis.Certify.set_domain m "e1000e";
  (match Analysis.Certify.certificate m with
  | Error e -> Alcotest.failf "certify: %s" e
  | Ok cert ->
    meta_set m Passes.Attest.meta_cert cert;
    (* splice the domain token by hand: domain=e1000e -> domain=ixgbe *)
    let buf = Buffer.create (String.length cert) in
    let src = "domain=e1000e" and dst = "domain=ixgbe" in
    let n = String.length cert and sn = String.length src in
    let i = ref 0 in
    while !i < n do
      if !i + sn <= n && String.sub cert !i sn = src then begin
        Buffer.add_string buf dst;
        i := !i + sn
      end
      else begin
        Buffer.add_char buf cert.[!i];
        incr i
      end
    done;
    meta_set m Passes.Attest.meta_cert (Buffer.contents buf));
  match Analysis.Certify.validate ~expect_domain:"e1000e" m with
  | Error (Analysis.Certify.Cert_wrong_domain { found; _ }) ->
    checkb "forged token surfaced" true (found = Some "ixgbe")
  | Error _ -> () (* any rejection is acceptable *)
  | Ok () -> Alcotest.fail "forged domain token accepted by pinned verifier"

(* ---------- kir lints ---------- *)

let codes fs = List.map (fun f -> f.Analysis.Kir_lint.code) fs

let test_lint_unguarded_and_unreachable () =
  let m = straightline_module () in
  let f = List.hd m.funcs in
  f.blocks <-
    f.blocks @ [ { b_label = "island"; body = []; term = Ret None } ];
  let fs = Analysis.Kir_lint.lint m in
  checkb "unguarded errors" true
    (List.mem "L-unguarded" (codes (Analysis.Kir_lint.errors fs)));
  checkb "unreachable warned" true
    (List.mem "L-unreachable" (codes (Analysis.Kir_lint.warnings fs)))

let test_lint_clean_module () =
  let m = inject (straightline_module ()) in
  checki "no errors on injected module" 0
    (List.length (Analysis.Kir_lint.errors (Analysis.Kir_lint.lint m)))

let test_lint_duplicate_guard () =
  (* duplicate back-to-back guard on the same address: second one is
     shadowed and unused *)
  let m = manual_module ~guard_flags:3 ~access:`Load () in
  let f = List.hd m.funcs in
  (match f.blocks with
  | blk :: _ ->
    blk.body <-
      (match blk.body with
      | (Call _ as g) :: rest -> g :: g :: rest
      | _ -> assert false)
  | [] -> assert false);
  let fs = Analysis.Kir_lint.lint m in
  checkb "shadowed guard flagged" true (List.mem "L-shadowed-guard" (codes fs))

let test_lint_unused_guard () =
  let b = Kir.Builder.create "unused" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = guard_sym;
         args = [ Reg "%p"; Imm 8; Imm 3 ] });
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (guard_sym, 3) ];
  let fs = Analysis.Kir_lint.lint m in
  checkb "unused guard flagged" true (List.mem "L-unused-guard" (codes fs))

(* two guards over adjacent byte ranges of the same base, each backing
   a real access; [offset] controls adjacency *)
let adjacent_guard_module ~offset () =
  let b = Kir.Builder.create "co" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = guard_sym; args = [ Reg "%p"; Imm 8; Imm 3 ] });
  let q = Kir.Builder.gep b (Reg "%p") (Imm offset) ~scale:1 in
  Kir.Builder.emit b
    (Call { dst = None; callee = guard_sym; args = [ q; Imm 8; Imm 3 ] });
  ignore (Kir.Builder.load b I64 (Reg "%p"));
  ignore (Kir.Builder.load b I64 q);
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (guard_sym, 3) ];
  m

let test_lint_coalescable_guard () =
  let m = adjacent_guard_module ~offset:8 () in
  let fs = Analysis.Kir_lint.lint m in
  checkb "adjacent guards flagged" true
    (List.mem "W-coalescable-guard" (codes fs));
  (* warning, not error: the module is still certifiable as-is *)
  checki "no errors" 0 (List.length (Analysis.Kir_lint.errors fs));
  (* running the coalescer discharges the warning without losing
     coverage *)
  let r = Passes.Guard_coalesce.run ~guard_symbol:guard_sym m in
  checkb "coalesce fired" true r.Passes.Pass.changed;
  let fs' = Analysis.Kir_lint.lint m in
  checkb "warning discharged" false
    (List.mem "W-coalescable-guard" (codes fs'));
  checkb "still certifies" true (Result.is_ok (Analysis.Certify.certify m))

let test_lint_coalescable_needs_adjacency () =
  (* a gap between the guarded ranges: merging would license bytes no
     guard ever checked, so the lint must stay quiet *)
  let m = adjacent_guard_module ~offset:32 () in
  checkb "gapped guards not flagged" false
    (List.mem "W-coalescable-guard" (codes (Analysis.Kir_lint.lint m)))

let test_lint_callind_nocfi () =
  let b = Kir.Builder.create "ind" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%fp", I64) ] ~ret:None);
  Kir.Builder.emit b (Callind { dst = None; fn = Reg "%fp"; args = [] });
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  let fs = Analysis.Kir_lint.lint m in
  checkb "nocfi flagged" true (List.mem "L-callind-nocfi" (codes fs))

(* ---------- suite ---------- *)

let () =
  Alcotest.run "analysis"
    [
      ( "dataflow",
        [
          Alcotest.test_case "loop converges" `Quick test_dataflow_block_counting;
          Alcotest.test_case "unreachable bottom" `Quick
            test_dataflow_unreachable_stays_bottom;
        ] );
      ( "domain-certs",
        [
          Alcotest.test_case "domain binding" `Quick
            test_certify_domain_binding;
          Alcotest.test_case "domain forgery rejected" `Quick
            test_certify_domain_forgery;
        ] );
      ( "certify",
        [
          Alcotest.test_case "rejects raw" `Quick test_certify_rejects_raw;
          Alcotest.test_case "accepts injected" `Quick
            test_certify_after_injection;
          Alcotest.test_case "accepts optimized" `Quick
            test_certify_after_optimization;
          Alcotest.test_case "hoisted loop" `Quick test_certify_hoisted_loop;
          Alcotest.test_case "coverage subsumption" `Quick
            test_certify_coverage_subsumption;
          Alcotest.test_case "opaque call kills" `Quick
            test_certify_kill_at_opaque_call;
          QCheck_alcotest.to_alcotest prop_certify_differential;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "aggressive certifies" `Quick
            test_driver_aggressive_certifies;
          QCheck_alcotest.to_alcotest prop_optimizer_differential;
        ] );
      ( "driver",
        [
          Alcotest.test_case "e1000e certifies" `Quick test_driver_certifies;
          Alcotest.test_case "mutation sweep" `Slow test_driver_mutation_sweep;
          Alcotest.test_case "mutation sweep (aggressive)" `Slow
            test_driver_mutation_sweep_aggressive;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
        ] );
      ( "lint",
        [
          Alcotest.test_case "unguarded+unreachable" `Quick
            test_lint_unguarded_and_unreachable;
          Alcotest.test_case "clean after injection" `Quick
            test_lint_clean_module;
          Alcotest.test_case "duplicate guard" `Quick test_lint_duplicate_guard;
          Alcotest.test_case "unused guard" `Quick test_lint_unused_guard;
          Alcotest.test_case "coalescable guard" `Quick
            test_lint_coalescable_guard;
          Alcotest.test_case "coalescable needs adjacency" `Quick
            test_lint_coalescable_needs_adjacency;
          Alcotest.test_case "callind nocfi" `Quick test_lint_callind_nocfi;
        ] );
    ]
