(* The carat_trace observability layer: ring semantics (overwrite-oldest
   with drop accounting, allocation-free record path), tier-invariant
   counters, the /dev/carat stats+trace ioctls, deny snapshots in
   panic/quarantine reports, and the zero-cost-off contract. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fresh () = Kernel.create ~require_signature:false Machine.Presets.r350

(* ---------- ring mechanics ---------- *)

let put tr i =
  Trace.on_lifecycle tr Trace.Mode_change ~info:i

let test_capacity_rounding () =
  let k = fresh () in
  checki "default" 512 (Trace.capacity (Trace.create k));
  checki "minimum 8" 8 (Trace.capacity (Trace.create ~capacity:2 k));
  checki "rounded to pow2" 128 (Trace.capacity (Trace.create ~capacity:100 k))

let test_ring_overwrites_oldest () =
  let k = fresh () in
  let tr = Trace.create ~capacity:8 k in
  Trace.start tr;
  for i = 0 to 19 do
    put tr i
  done;
  checki "all twenty recorded" 20 (Trace.recorded tr);
  checki "twelve dropped" 12 (Trace.dropped tr);
  let evs = Trace.events tr in
  checki "ring keeps capacity" 8 (List.length evs);
  (* oldest-first, and the survivors are exactly the newest eight *)
  checki "first surviving seq" 12 (List.hd evs).Trace.seq;
  checki "payload matches seq" 12 (List.hd evs).Trace.info;
  let last = List.nth evs 7 in
  checki "last seq" 19 last.Trace.seq;
  checki "last payload" 19 last.Trace.info

let test_reader_drains_and_accounts_drops () =
  let k = fresh () in
  let tr = Trace.create ~capacity:8 k in
  Trace.start tr;
  for i = 0 to 4 do
    put tr i
  done;
  (* drain the first two, then overflow the ring under the reader *)
  (match Trace.read_next tr with
  | Some e -> checki "first read is seq 0" 0 e.Trace.seq
  | None -> Alcotest.fail "empty");
  ignore (Trace.read_next tr);
  for i = 5 to 14 do
    put tr i
  done;
  (* cursor is at 2; the ring now holds 7..14, so 2..6 were lost *)
  (match Trace.read_next tr with
  | Some e -> checki "reader skips to the oldest survivor" 7 e.Trace.seq
  | None -> Alcotest.fail "empty after overflow");
  checki "skipped events charged as drops" 5 (Trace.dropped tr);
  let rec drain n =
    match Trace.read_next tr with Some _ -> drain (n + 1) | None -> n
  in
  checki "rest of the ring drains" 7 (drain 0);
  checkb "then the reader sees end-of-stream" true (Trace.read_next tr = None)

let test_recording_gate () =
  let k = fresh () in
  let tr = Trace.create ~capacity:8 k in
  (* not started: lifecycle events are dropped, not buffered *)
  put tr 1;
  checki "nothing recorded before start" 0 (Trace.recorded tr);
  Trace.start tr;
  put tr 2;
  Trace.stop tr;
  put tr 3;
  checki "only the started window recorded" 1 (Trace.recorded tr);
  (* guard counters tick regardless of the ring *)
  Trace.on_guard tr ~site:3 ~addr:0x1000 ~size:8 ~flags:1 ~allowed:true
    ~fast:false ~scanned:2 ~region_base:0x1000;
  let checks_, allows, denies, scanned, _, _ = Trace.totals tr in
  checki "counter checks" 1 checks_;
  checki "counter allows" 1 allows;
  checki "counter denies" 0 denies;
  checki "counter scanned" 2 scanned;
  checki "ring untouched by counters when stopped" 1 (Trace.recorded tr)

let test_record_path_does_not_allocate () =
  let k = fresh () in
  let tr = Trace.create ~capacity:64 k in
  Trace.start tr;
  (* warm the site slabs and the region table *)
  for i = 0 to 99 do
    Trace.on_guard tr ~site:(i land 7) ~addr:0x2000 ~size:8 ~flags:1
      ~allowed:(i land 1 = 0) ~fast:(i land 3 = 0) ~scanned:1
      ~region_base:0x2000
  done;
  let w0 = Gc.minor_words () in
  for i = 0 to 9_999 do
    Trace.on_guard tr ~site:(i land 7) ~addr:0x2000 ~size:8 ~flags:1
      ~allowed:(i land 1 = 0) ~fast:(i land 3 = 0) ~scanned:1
      ~region_base:0x2000
  done;
  let words = Gc.minor_words () -. w0 in
  checkb "hot record path allocation-free" true (words <= 64.0)

let test_zero_cost_when_detached () =
  (* attached but not recording: guard events must not charge a single
     simulated cycle (the tracegate bench asserts the same end to end) *)
  let k = fresh () in
  let tr = Trace.create ~capacity:64 k in
  let machine = Kernel.machine k in
  let c0 = Machine.Model.cycles machine in
  for i = 0 to 99 do
    Trace.on_guard tr ~site:i ~addr:0x2000 ~size:8 ~flags:1 ~allowed:true
      ~fast:false ~scanned:1 ~region_base:0x2000
  done;
  checki "no simulated cycles while not recording" c0
    (Machine.Model.cycles machine);
  Trace.start tr;
  put tr 1;
  checkb "recording charges the simulation" true
    (Machine.Model.cycles machine > c0)

let test_tier_event_kinds_roundtrip () =
  (* the self-healing lifecycle kinds survive the packed ring encoding
     and render under their own names (not folded into panic) *)
  List.iter
    (fun (kind, code, name) ->
      checki name code (Trace.kind_to_int kind);
      checkb (name ^ " decodes") true (Trace.kind_of_int code = kind);
      checks (name ^ " renders") name (Trace.kind_to_string kind))
    [
      (Trace.Tier_degraded, 13, "tier-degraded");
      (Trace.Tier_rebuilt, 14, "tier-rebuilt");
    ];
  let k = fresh () in
  let tr = Trace.create ~capacity:8 k in
  Trace.start tr;
  Trace.on_lifecycle tr Trace.Tier_degraded ~info:1;
  Trace.on_lifecycle tr Trace.Tier_rebuilt ~info:1;
  match Trace.events tr with
  | [ a; b ] ->
    checkb "degraded event" true (a.Trace.kind = Trace.Tier_degraded);
    checkb "rebuilt event" true (b.Trace.kind = Trace.Tier_rebuilt);
    checki "tier code rides in info" 1 a.Trace.info
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* ---------- the /dev/carat observability ioctls ---------- *)

let ioctl_cell () =
  let k = fresh () in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Audit k
  in
  Policy.Policy_module.set_policy pm
    [
      Policy.Region.v ~tag:"win" ~base:0xA000 ~len:4096
        ~prot:Policy.Region.prot_rw ();
    ];
  (k, pm)

let test_ioctl_stats_and_trace_read () =
  let k, pm = ioctl_cell () in
  checki "trace_start ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_trace_start
       ~arg:16);
  (match Policy.Policy_module.trace pm with
  | Some tr -> checki "capacity hint honoured" 16 (Trace.capacity tr)
  | None -> Alcotest.fail "trace not attached by ioctl");
  ignore (Policy.Policy_module.guard pm ~site:1 ~addr:0xA010 ~size:8 ~flags:1);
  ignore (Policy.Policy_module.guard pm ~site:1 ~addr:0xA010 ~size:8 ~flags:1);
  ignore (Policy.Policy_module.guard pm ~site:2 ~addr:0x40 ~size:8 ~flags:2);
  let arg = Kernel.map_user k ~size:64 in
  checki "get_stats ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_get_stats ~arg);
  let w i = Kernel.read k ~addr:(arg + (i * 8)) ~size:8 in
  checki "checks" 3 (w 0);
  checki "allowed" 2 (w 1);
  checki "denied" 1 (w 2);
  checki "ic hits + misses = checks" 3 (w 4 + w 5);
  checkb "events recorded" true (w 6 >= 3);
  checki "none dropped" 0 (w 7);
  checki "trace_stop ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_trace_stop
       ~arg:0);
  (* drain: every read returns one event, seq strictly increasing, and
     the guard events carry the probed addresses *)
  let seen_deny = ref false and last_seq = ref (-1) and n = ref 0 in
  let rec go () =
    let rc =
      Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_trace_read
        ~arg
    in
    if rc = 1 then begin
      incr n;
      checkb "seq increases" true (w 0 > !last_seq);
      last_seq := w 0;
      if Trace.kind_of_int (w 2) = Trace.Guard_deny then begin
        seen_deny := true;
        checki "deny addr" 0x40 (w 4);
        checki "deny site" 2 (w 3)
      end;
      go ()
    end
    else checki "end of stream is rc 0" 0 rc
  in
  go ();
  checkb "read at least the three guard events" true (!n >= 3);
  checkb "the deny came through the ioctl" true !seen_deny

(* ---------- deny snapshots in panic / quarantine reports ---------- *)

let test_panic_reason_carries_trace_tail () =
  let _k, pm = ioctl_cell () in
  Policy.Policy_module.set_on_deny pm Policy.Policy_module.Panic;
  Trace.start (Policy.Policy_module.enable_trace pm);
  ignore (Policy.Policy_module.guard pm ~site:1 ~addr:0xA010 ~size:8 ~flags:1);
  match Policy.Policy_module.guard pm ~site:9 ~addr:0x40 ~size:8 ~flags:2 with
  | _ -> Alcotest.fail "deny did not panic"
  | exception Kernel.Panic info ->
    checkb "reason keeps the CARAT KOP prefix" true
      (contains info.Kernel.reason "CARAT KOP");
    checkb "reason carries the trace tail" true
      (contains info.Kernel.reason "[trace:");
    checkb "tail names the denying site" true
      (contains info.Kernel.reason "site=9");
    checkb "diag attachment has the full events" true
      (info.Kernel.diag <> []
      && List.exists (fun l -> contains l "DENY") info.Kernel.diag)

let test_quarantine_outcome_carries_trace_tail () =
  (* through the fault harness: a wild store under quarantine must leave
     a forensic tail in the outcome and in the quarantine record *)
  let o =
    Fault.Harness.run_one ~cls:Fault.Inject.Wild_store
      ~mode:(Fault.Harness.Carat Policy.Policy_module.Quarantine) ~seed:11 ()
  in
  checkb "quarantined" true o.Fault.Harness.quarantined;
  checkb "outcome has the trace tail" true (o.Fault.Harness.trace_tail <> []);
  checkb "tail shows the deny" true
    (List.exists (fun l -> contains l "DENY") o.Fault.Harness.trace_tail)

(* ---------- rendering ---------- *)

let test_render_stats_shape () =
  let k, pm = ioctl_cell () in
  Trace.start (Policy.Policy_module.enable_trace pm);
  ignore (Policy.Policy_module.guard pm ~site:1 ~addr:0xA010 ~size:8 ~flags:1);
  ignore (Policy.Policy_module.guard pm ~site:2 ~addr:0x40 ~size:8 ~flags:2);
  ignore k;
  match Policy.Policy_module.trace pm with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
    let s =
      Trace.render_stats
        ~region_tag:(fun b -> Policy.Policy_module.region_tag pm b)
        tr
    in
    checkb "header" true (contains s "carat_trace: guard statistics");
    checkb "per-site section" true (contains s "per-site:");
    checkb "per-region section" true (contains s "per-region:");
    checkb "tag resolved" true (contains s "win");
    let ev = Trace.render_events tr in
    checkb "events render one line per event" true
      (contains ev "DENY" && contains ev "allow");
    checks "tail string of an empty ring" "<no events>"
      (Trace.tail_string (Trace.create k) 4)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
          Alcotest.test_case "overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "reader drains, drops accounted" `Quick
            test_reader_drains_and_accounts_drops;
          Alcotest.test_case "recording gate" `Quick test_recording_gate;
          Alcotest.test_case "record path allocation-free" `Quick
            test_record_path_does_not_allocate;
          Alcotest.test_case "zero simulated cost when off" `Quick
            test_zero_cost_when_detached;
          Alcotest.test_case "tier event kinds roundtrip" `Quick
            test_tier_event_kinds_roundtrip;
        ] );
      ( "ioctls",
        [
          Alcotest.test_case "get_stats + trace read" `Quick
            test_ioctl_stats_and_trace_read;
        ] );
      ( "deny snapshots",
        [
          Alcotest.test_case "panic reason + diag" `Quick
            test_panic_reason_carries_trace_tail;
          Alcotest.test_case "quarantine outcome tail" `Quick
            test_quarantine_outcome_carries_trace_tail;
        ] );
      ( "rendering",
        [ Alcotest.test_case "stats + events" `Quick test_render_stats_shape ] );
    ]
