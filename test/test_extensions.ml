(* §5 extensions: privileged-intrinsic guarding and CFI for indirect
   calls — KIR support, the passes, the policy module's extra tables,
   and end-to-end enforcement. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fresh ?(require_signature = false) () =
  let k = Kernel.create ~require_signature Machine.Presets.r350 in
  ignore (Vm.Interp.install k);
  k

(* a module using intrinsics and an indirect call *)
let spicy_module () =
  let b = Kir.Builder.create "spicy" in
  ignore (Kir.Builder.start_func b "stamp" ~params:[] ~ret:(Some I64));
  let t =
    match Kir.Builder.intrinsic b ~want_result:true "rdtsc" [] with
    | Some v -> v
    | None -> assert false
  in
  Kir.Builder.ret b (Some t);
  ignore
    (Kir.Builder.start_func b "poke_msr"
       ~params:[ ("%msr", I64); ("%v", I64) ]
       ~ret:(Some I64));
  ignore (Kir.Builder.intrinsic b "wrmsr" [ Reg "%msr"; Reg "%v" ]);
  Kir.Builder.ret b (Some (Imm 0));
  ignore
    (Kir.Builder.start_func b "trampoline" ~params:[ ("%fp", I64) ]
       ~ret:(Some I64));
  Kir.Builder.emit b
    (Callind { dst = Some "%r"; fn = Reg "%fp"; args = [] });
  Kir.Builder.ret b (Some (Reg "%r"));
  Kir.Builder.modul b

(* ---------- KIR-level support ---------- *)

let test_intrinsic_roundtrip () =
  let m = spicy_module () in
  let text = Kir.Printer.to_string m in
  let m' = Kir.Parser.parse_string text in
  Alcotest.(check string) "round-trip" text (Kir.Printer.to_string m');
  checkb "verifies" true (Kir.Verify.is_valid m')

let test_vm_executes_intrinsics () =
  let k = fresh () in
  let m = spicy_module () in
  (match Kernel.insmod k m with Ok _ -> () | Error _ -> assert false);
  let t1 = Kernel.call_symbol k "stamp" [||] in
  Machine.Model.add_cycles (Kernel.machine k) 100;
  let t2 = Kernel.call_symbol k "stamp" [||] in
  checkb "rdtsc monotone" true (t2 > t1);
  ignore (Kernel.call_symbol k "poke_msr" [| 0x1A0; 0xBEEF |]);
  checki "wrmsr visible" 0xBEEF (Kernel.read_msr k 0x1A0)

let test_vm_cli_hlt () =
  let k = fresh () in
  let b = Kir.Builder.create "parker" in
  ignore (Kir.Builder.start_func b "park" ~params:[] ~ret:(Some I64));
  ignore (Kir.Builder.intrinsic b "cli" []);
  ignore (Kir.Builder.intrinsic b "hlt" []);
  Kir.Builder.ret b (Some (Imm 0));
  (match Kernel.insmod k (Kir.Builder.modul b) with Ok _ -> () | Error _ -> assert false);
  match Kernel.call_symbol k "park" [||] with
  | exception Kernel.Panic info ->
    checkb "parked" true
      (String.length info.Kernel.reason > 0)
  | _ -> Alcotest.fail "hlt with irqs off did not park"

let test_registry_agreement () =
  (* the compiler's id table and the kernel's registry must agree *)
  List.iteri
    (fun i name ->
      Alcotest.(check (option int))
        (name ^ " id") (Some i)
        (Passes.Intrinsic_guard.id_of_intrinsic name);
      Alcotest.(check (option string))
        (name ^ " name") (Some name) (Kernel.intrinsic_name i))
    Kernel.known_intrinsics

let test_attest_counts_intrinsics () =
  let m = spicy_module () in
  ignore (Passes.Attest.run ~strict:false m);
  Alcotest.(check (option string)) "count" (Some "2")
    (meta_find m Passes.Attest.meta_intrinsics)

(* ---------- the passes ---------- *)

let test_intrinsic_guard_pass () =
  let m = spicy_module () in
  let r = Passes.Intrinsic_guard.run m in
  checkb "changed" true r.Passes.Pass.changed;
  checki "two guards" 2 (Passes.Intrinsic_guard.count_guards m);
  checkb "fully guarded" true (Passes.Intrinsic_guard.fully_guarded m);
  checkb "extern declared" true
    (List.mem_assoc Passes.Intrinsic_guard.guard_symbol m.externs);
  match Passes.Intrinsic_guard.run m with
  | exception Passes.Pass.Pass_failed _ -> ()
  | _ -> Alcotest.fail "double intrinsic-guard accepted"

let test_intrinsic_guard_rejects_unknown () =
  let b = Kir.Builder.create "weird" in
  ignore (Kir.Builder.start_func b "f" ~params:[] ~ret:None);
  ignore (Kir.Builder.intrinsic b "vmlaunch" []);
  Kir.Builder.ret b None;
  match Passes.Intrinsic_guard.run (Kir.Builder.modul b) with
  | exception Passes.Pass.Pass_failed ("intrinsic-guard", _) -> ()
  | _ -> Alcotest.fail "unknown intrinsic certified"

let test_cfi_guard_pass () =
  let m = spicy_module () in
  let r = Passes.Cfi_guard.run m in
  checkb "changed" true r.Passes.Pass.changed;
  checki "one guard" 1 (Passes.Cfi_guard.count_guards m);
  checkb "fully guarded" true (Passes.Cfi_guard.fully_guarded m);
  match Passes.Cfi_guard.run m with
  | exception Passes.Pass.Pass_failed _ -> ()
  | _ -> Alcotest.fail "double cfi-guard accepted"

let test_pipeline_extensions_signed () =
  let m = spicy_module () in
  ignore
    (Passes.Pipeline.compile ~guard_intrinsics:true ~guard_cfi:true m);
  checkb "verifies" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m = Ok ());
  (* tampering with the extension metadata breaks the signature *)
  meta_set m Passes.Intrinsic_guard.meta_count "0";
  match Passes.Signing.verify ~key:Passes.Pipeline.default_key m with
  | Error (Passes.Signing.Bad_signature _) -> ()
  | _ -> Alcotest.fail "extension meta not covered by signature"

(* ---------- runtime enforcement ---------- *)

let setup_guarded ?(on_deny = Policy.Policy_module.Audit) () =
  let k = fresh ~require_signature:true () in
  let pm = Policy.Policy_module.install ~on_deny k in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let m = spicy_module () in
  ignore (Passes.Pipeline.compile ~guard_intrinsics:true ~guard_cfi:true m);
  (match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  (k, pm)

let test_intrinsics_denied_by_default () =
  let k, pm = setup_guarded () in
  ignore (Kernel.call_symbol k "stamp" [||]);
  checki "violation recorded" 1
    (List.length (Policy.Policy_module.intrinsic_violations pm));
  checkb "logged" true
    (Kernel.Klog.contains (Kernel.log k) "forbidden privileged intrinsic rdtsc")

let test_intrinsics_allowed_when_granted () =
  let k, pm = setup_guarded () in
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  ignore (Kernel.call_symbol k "stamp" [||]);
  checki "no violation" 0
    (List.length (Policy.Policy_module.intrinsic_violations pm));
  (* wrmsr still denied (in log-only mode it is recorded but executes;
     panic mode is what actually stops it — tested separately) *)
  ignore (Kernel.call_symbol k "poke_msr" [| 0x1A0; 1 |]);
  checki "wrmsr denied" 1
    (List.length (Policy.Policy_module.intrinsic_violations pm))

let test_intrinsic_panic_mode () =
  let k, pm = setup_guarded ~on_deny:Policy.Policy_module.Panic () in
  ignore pm;
  match Kernel.call_symbol k "poke_msr" [| 0x1A0; 1 |] with
  | exception Kernel.Panic info ->
    checkb "mentions intrinsic" true
      (String.length info.Kernel.reason > 0)
  | _ -> Alcotest.fail "no panic on denied intrinsic"

let test_intrinsic_ioctl_bitmap () =
  let k, pm = setup_guarded () in
  (* allow rdtsc (bit 0) via the ioctl path *)
  checki "set" 0
    (Kernel.ioctl k ~dev:"carat"
       ~cmd:Policy.Policy_module.ioctl_set_intrinsics ~arg:0b1);
  checki "get" 0b1
    (Kernel.ioctl k ~dev:"carat"
       ~cmd:Policy.Policy_module.ioctl_get_intrinsics ~arg:0);
  ignore (Kernel.call_symbol k "stamp" [||]);
  checki "rdtsc allowed via ioctl" 0
    (List.length (Policy.Policy_module.intrinsic_violations pm))

let test_cfi_default_allows () =
  let k, pm = setup_guarded () in
  let target = Option.get (Kernel.symbol_address k "stamp") in
  (* intrinsics must be allowed for stamp to run *)
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  let r = Kernel.call_symbol k "trampoline" [| target |] in
  checkb "called through" true (r > 0);
  checki "no cfi violations" 0
    (List.length (Policy.Policy_module.cfi_violations pm))

let test_cfi_allowlist_blocks () =
  let k, pm = setup_guarded () in
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  (* only the module's own export is allowed; the kernel's get_cycles
     (a zero-arg symbol, so the log-only fall-through stays harmless)
     is not *)
  Policy.Policy_module.set_cfi_allowlist pm [ "stamp" ];
  let stamp = Option.get (Kernel.symbol_address k "stamp") in
  ignore (Kernel.call_symbol k "trampoline" [| stamp |]);
  checki "allowed target ok" 0
    (List.length (Policy.Policy_module.cfi_violations pm));
  let forbidden = Option.get (Kernel.symbol_address k "get_cycles") in
  ignore (Kernel.call_symbol k "trampoline" [| forbidden |]);
  checki "forbidden target recorded" 1
    (List.length (Policy.Policy_module.cfi_violations pm));
  checkb "logged" true
    (Kernel.Klog.contains (Kernel.log k) "forbidden indirect call")

let test_cfi_ioctl () =
  let k, pm = setup_guarded () in
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  (* default-deny via ioctl, then allow stamp's address via ioctl *)
  checki "set default deny" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_cfi_default
       ~arg:0);
  let stamp = Option.get (Kernel.symbol_address k "stamp") in
  ignore (Kernel.call_symbol k "trampoline" [| stamp |]);
  checki "denied before allow" 1
    (List.length (Policy.Policy_module.cfi_violations pm));
  checki "allow target" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_cfi_allow
       ~arg:stamp);
  ignore (Kernel.call_symbol k "trampoline" [| stamp |]);
  checki "allowed after ioctl" 1
    (List.length (Policy.Policy_module.cfi_violations pm))

let test_driver_diag_under_extension () =
  (* the driver's rdtsc diagnostic: blocked when intrinsics are guarded
     and not granted; works once granted *)
  let k = fresh ~require_signature:true () in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit k
  in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let dev = Nic.Device.create k in
  let m = Nic.Driver_gen.generate ~module_scale:1 () in
  ignore (Passes.Pipeline.compile ~guard_intrinsics:true m);
  (match Kernel.insmod k m with Ok _ -> () | Error e ->
    Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e));
  ignore (Kernel.call_symbol k "e1000e_probe" [| Nic.Device.mmio_base dev; 8 |]);
  ignore (Kernel.call_symbol k "e1000e_diag_latency" [||]);
  checki "denied without grant" 2
    (List.length (Policy.Policy_module.intrinsic_violations pm));
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  let dt = Kernel.call_symbol k "e1000e_diag_latency" [||] in
  checkb "diagnostic measures the write" true (dt > 0);
  checki "no new violations" 2
    (List.length (Policy.Policy_module.intrinsic_violations pm))

let test_unextended_pipeline_leaves_intrinsics_free () =
  (* faithful-to-paper default: intrinsics usable without checks *)
  let k = fresh ~require_signature:true () in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit k
  in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let m = spicy_module () in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insmod k m with Ok _ -> () | Error _ -> assert false);
  ignore (Kernel.call_symbol k "poke_msr" [| 0x1A0; 0x42 |]);
  checki "msr written, no questions asked" 0x42 (Kernel.read_msr k 0x1A0);
  checki "no violations possible" 0
    (List.length (Policy.Policy_module.intrinsic_violations pm))

let () =
  Alcotest.run "extensions"
    [
      ( "kir-intrinsics",
        [
          Alcotest.test_case "round-trip" `Quick test_intrinsic_roundtrip;
          Alcotest.test_case "vm executes" `Quick test_vm_executes_intrinsics;
          Alcotest.test_case "cli+hlt parks" `Quick test_vm_cli_hlt;
          Alcotest.test_case "registry agreement" `Quick test_registry_agreement;
          Alcotest.test_case "attest counts" `Quick test_attest_counts_intrinsics;
        ] );
      ( "passes",
        [
          Alcotest.test_case "intrinsic guard" `Quick test_intrinsic_guard_pass;
          Alcotest.test_case "unknown intrinsic" `Quick test_intrinsic_guard_rejects_unknown;
          Alcotest.test_case "cfi guard" `Quick test_cfi_guard_pass;
          Alcotest.test_case "extensions signed" `Quick test_pipeline_extensions_signed;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "denied by default" `Quick test_intrinsics_denied_by_default;
          Alcotest.test_case "granted selectively" `Quick test_intrinsics_allowed_when_granted;
          Alcotest.test_case "panic mode" `Quick test_intrinsic_panic_mode;
          Alcotest.test_case "ioctl bitmap" `Quick test_intrinsic_ioctl_bitmap;
          Alcotest.test_case "cfi default allow" `Quick test_cfi_default_allows;
          Alcotest.test_case "cfi allowlist" `Quick test_cfi_allowlist_blocks;
          Alcotest.test_case "cfi ioctl" `Quick test_cfi_ioctl;
          Alcotest.test_case "driver diagnostic" `Quick test_driver_diag_under_extension;
          Alcotest.test_case "paper default unguarded" `Quick test_unextended_pipeline_leaves_intrinsics_free;
        ] );
    ]
