(* Policy engine: regions, the linear table, alternative structures
   (equivalence-tested against the linear reference), the engine, and the
   policy module with its ioctl interface. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fresh () = Kernel.create ~require_signature:false Machine.Presets.r350

let region ?(tag = "") ?(prot = Policy.Region.prot_rw) base len =
  Policy.Region.v ~tag ~base ~len ~prot ()

(* ---------- regions ---------- *)

let test_region_contains () =
  let r = region 100 50 in
  checkb "inside" true (Policy.Region.contains r ~addr:100 ~size:50);
  checkb "strict inside" true (Policy.Region.contains r ~addr:120 ~size:8);
  checkb "below" false (Policy.Region.contains r ~addr:99 ~size:2);
  checkb "spills over" false (Policy.Region.contains r ~addr:145 ~size:8);
  checkb "just past" false (Policy.Region.contains r ~addr:150 ~size:1)

let test_region_permits () =
  let ro = region ~prot:Policy.Region.prot_read 0 10 in
  checkb "read ok" true (Policy.Region.permits ro ~flags:Policy.Region.prot_read);
  checkb "write denied" false (Policy.Region.permits ro ~flags:Policy.Region.prot_write);
  checkb "rw denied" false (Policy.Region.permits ro ~flags:Policy.Region.prot_rw);
  let none = region ~prot:0 0 10 in
  checkb "deny-all region" false (Policy.Region.permits none ~flags:Policy.Region.prot_read)

let test_region_overlaps () =
  checkb "overlap" true (Policy.Region.overlaps (region 0 10) (region 5 10));
  checkb "nested" true (Policy.Region.overlaps (region 0 100) (region 10 5));
  checkb "adjacent" false (Policy.Region.overlaps (region 0 10) (region 10 10));
  checkb "disjoint" false (Policy.Region.overlaps (region 0 10) (region 50 10))

let test_region_validation () =
  (match region 0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero length accepted");
  match region (-5) 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative base accepted"

let test_canonical_policies () =
  checki "two regions" 2 (List.length Policy.Region.kernel_only);
  checki "padded to 64" 64 (List.length (Policy.Region.kernel_only_padded 64));
  (* padded keeps semantics: kernel allowed, user denied *)
  let find addr rs = List.find_opt (fun r -> Policy.Region.contains r ~addr ~size:8) rs in
  let p = Policy.Region.kernel_only_padded 64 in
  (match find Kernel.Layout.direct_map_base p with
  | Some r -> checkb "kernel allowed" true (Policy.Region.permits r ~flags:3)
  | None -> Alcotest.fail "kernel unmatched");
  match find 0x100_0000_0000 p with
  | Some r -> checkb "user denied" false (Policy.Region.permits r ~flags:1)
  | None -> Alcotest.fail "user unmatched"

(* ---------- linear table ---------- *)

let test_linear_add_capacity () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:4 in
  for i = 0 to 3 do
    checkb "added" true (Policy.Linear_table.add t (region (i * 1000) 100) = Ok ())
  done;
  checkb "full" true (Result.is_error (Policy.Linear_table.add t (region 9000 1)));
  checki "count" 4 (Policy.Linear_table.count t)

let test_linear_first_match_wins () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:8 in
  ignore (Policy.Linear_table.add t (region ~tag:"first" 100 100));
  ignore (Policy.Linear_table.add t (region ~tag:"second" 100 100));
  match (Policy.Linear_table.lookup t ~addr:120 ~size:4).Policy.Structure.matched with
  | Some r -> Alcotest.(check string) "first wins" "first" r.Policy.Region.tag
  | None -> Alcotest.fail "no match"

let test_linear_remove_preserves_order () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:8 in
  ignore (Policy.Linear_table.add t (region ~tag:"a" 0 10));
  ignore (Policy.Linear_table.add t (region ~tag:"b" 100 10));
  ignore (Policy.Linear_table.add t (region ~tag:"c" 200 10));
  checkb "removed" true (Policy.Linear_table.remove t ~base:100);
  checkb "missing remove" false (Policy.Linear_table.remove t ~base:100);
  Alcotest.(check (list string)) "order kept" [ "a"; "c" ]
    (List.map (fun r -> r.Policy.Region.tag) (Policy.Linear_table.regions t))

let test_linear_scan_counts () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:64 in
  for i = 0 to 9 do
    ignore (Policy.Linear_table.add t (region (i * 1000) 100))
  done;
  checki "match at pos 7 scans 8" 8
    (Policy.Linear_table.lookup t ~addr:7000 ~size:4).Policy.Structure.scanned;
  checki "miss scans all" 10
    (Policy.Linear_table.lookup t ~addr:999_999 ~size:4).Policy.Structure.scanned

(* ---------- structure equivalence (qcheck) ---------- *)

(* random NON-overlapping region sets, which all structures accept *)
let gen_disjoint_regions =
  QCheck.Gen.(
    let* n = int_range 1 20 in
    let* lens = list_repeat n (int_range 1 50) in
    let* gaps = list_repeat n (int_range 1 50) in
    let* prots = list_repeat n (int_range 0 3) in
    let rec build base lens gaps prots acc =
      match (lens, gaps, prots) with
      | l :: ls, g :: gs, p :: ps ->
        build (base + l + g) ls gs ps (region ~prot:p base l :: acc)
      | _ -> List.rev acc
    in
    return (build 1000 lens gaps prots []))

let gen_probe = QCheck.Gen.(tup2 (int_range 0 3000) (int_range 1 8))

let mk_instance k kind regions =
  let inst = Policy.Engine.make_instance k kind ~capacity:64 in
  List.iter
    (fun r ->
      match Policy.Structure.add inst r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "add: %s" e)
    regions;
  inst

let equivalence_prop kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with linear" (Policy.Engine.kind_to_string kind))
    ~count:100
    (QCheck.make QCheck.Gen.(tup2 gen_disjoint_regions (list_size (int_range 1 20) gen_probe)))
    (fun (regions, probes) ->
      let k = fresh () in
      let reference = mk_instance k Policy.Engine.Linear regions in
      let candidate = mk_instance k kind regions in
      List.for_all
        (fun (addr, size) ->
          let a = Policy.Structure.lookup reference ~addr ~size in
          let b = Policy.Structure.lookup candidate ~addr ~size in
          match (a.Policy.Structure.matched, b.Policy.Structure.matched) with
          | None, None -> true
          | Some ra, Some rb ->
            (* bloom's fast path may report a synthetic covering region;
               what must agree is the allow/deny verdict for full rw *)
            Policy.Region.permits ra ~flags:Policy.Region.prot_rw
            = Policy.Region.permits rb ~flags:Policy.Region.prot_rw
            || rb.Policy.Region.tag = "bloom-fastpath"
          | _ -> false)
        probes)

let prop_sorted_equiv = equivalence_prop Policy.Engine.Sorted
let prop_splay_equiv = equivalence_prop Policy.Engine.Splay
let prop_rbtree_equiv = equivalence_prop Policy.Engine.Rbtree
let prop_cached_equiv = equivalence_prop Policy.Engine.Cached

(* rbtree structural invariants hold under random insertion *)
let prop_rbtree_invariants =
  QCheck.Test.make ~name:"rbtree invariants" ~count:100
    (QCheck.make gen_disjoint_regions) (fun regions ->
      let k = fresh () in
      let t = Policy.Rb_tree.create k ~capacity:64 in
      List.iter (fun r -> ignore (Policy.Rb_tree.add t r)) regions;
      Policy.Rb_tree.validate t = Ok ()
      && Policy.Rb_tree.count t = List.length regions
      &&
      (* in-order traversal is sorted by base *)
      let bases =
        List.map (fun r -> r.Policy.Region.base) (Policy.Rb_tree.regions t)
      in
      bases = List.sort compare bases)

let test_rbtree_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:8 in
  ignore (Policy.Rb_tree.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Rb_tree.add t (region 50 100)))

let test_rbtree_logarithmic_scan () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:64 in
  for i = 0 to 63 do
    ignore (Policy.Rb_tree.add t (region (i * 1000) 100))
  done;
  (match Policy.Rb_tree.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid tree: %s" e);
  let worst = ref 0 in
  for i = 0 to 63 do
    let out = Policy.Rb_tree.lookup t ~addr:((i * 1000) + 50) ~size:4 in
    checkb "found" true (out.Policy.Structure.matched <> None);
    if out.Policy.Structure.scanned > !worst then
      worst := out.Policy.Structure.scanned
  done;
  (* a valid red-black tree of 64 nodes is at most 2*log2(65) ~ 12 deep *)
  checkb "logarithmic depth" true (!worst <= 12)

let test_rbtree_remove () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:16 in
  for i = 0 to 7 do
    ignore (Policy.Rb_tree.add t (region (i * 1000) 100))
  done;
  checkb "removed" true (Policy.Rb_tree.remove t ~base:3000);
  checkb "gone" true
    ((Policy.Rb_tree.lookup t ~addr:3050 ~size:4).Policy.Structure.matched = None);
  checki "count" 7 (Policy.Rb_tree.count t);
  checkb "still valid" true (Policy.Rb_tree.validate t = Ok ())

let test_sorted_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Sorted_table.create k ~capacity:8 in
  ignore (Policy.Sorted_table.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Sorted_table.add t (region 50 100)))

let test_splay_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Splay_tree.create k ~capacity:8 in
  ignore (Policy.Splay_tree.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Splay_tree.add t (region 50 100)))

let test_splay_popularity () =
  let k = fresh () in
  let t = Policy.Splay_tree.create k ~capacity:32 in
  for i = 0 to 15 do
    ignore (Policy.Splay_tree.add t (region (i * 1000) 100))
  done;
  (* hit region 12 repeatedly: it splays to the root, later probes scan 1 *)
  ignore (Policy.Splay_tree.lookup t ~addr:12050 ~size:4);
  let second = Policy.Splay_tree.lookup t ~addr:12050 ~size:4 in
  checki "root hit" 1 second.Policy.Structure.scanned

let test_cached_hit_rate () =
  let k = fresh () in
  let t = Policy.Lookup_cache.create k ~capacity:16 in
  for i = 0 to 9 do
    ignore (Policy.Lookup_cache.add t (region (i * 1000) 100))
  done;
  for _ = 1 to 50 do
    ignore (Policy.Lookup_cache.lookup t ~addr:9050 ~size:4)
  done;
  checkb "mostly hits" true (Policy.Lookup_cache.hit_rate t > 0.9)

let test_cached_invalidation () =
  let k = fresh () in
  let t = Policy.Lookup_cache.create k ~capacity:16 in
  ignore (Policy.Lookup_cache.add t (region 1000 100));
  ignore (Policy.Lookup_cache.lookup t ~addr:1050 ~size:4) (* fill cache *);
  checkb "removed" true (Policy.Lookup_cache.remove t ~base:1000);
  checkb "stale entry gone" true
    ((Policy.Lookup_cache.lookup t ~addr:1050 ~size:4).Policy.Structure.matched = None)

let test_bloom_no_false_negative_for_allowed () =
  let k = fresh () in
  let t = Policy.Bloom_front.create k ~capacity:16 in
  ignore (Policy.Bloom_front.add t (region 0x10000 0x1000));
  (* first query goes the slow path and seeds the filter; all later
     queries to the same page must still be allowed *)
  for _ = 1 to 20 do
    checkb "allowed" true
      ((Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8).Policy.Structure.matched <> None)
  done;
  checkb "fp estimate sane" true (Policy.Bloom_front.fp_possible t < 0.01)

let test_bloom_clear_resets_filter () =
  let k = fresh () in
  let t = Policy.Bloom_front.create k ~capacity:16 in
  ignore (Policy.Bloom_front.add t (region 0x10000 0x1000));
  ignore (Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8);
  Policy.Bloom_front.clear t;
  checkb "cleared" true
    ((Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8).Policy.Structure.matched = None)

(* ---------- engine ---------- *)

let test_engine_default_deny () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  (match Policy.Engine.check e ~addr:0x1234 ~size:8 ~flags:1 with
  | Policy.Engine.Denied None -> ()
  | _ -> Alcotest.fail "default deny");
  let st = Policy.Engine.stats e in
  checki "denied counted" 1 st.Policy.Engine.denied

let test_engine_default_allow () =
  let k = fresh () in
  let e = Policy.Engine.create ~default_allow:true k in
  match Policy.Engine.check e ~addr:0x1234 ~size:8 ~flags:1 with
  | Policy.Engine.Allowed None -> ()
  | _ -> Alcotest.fail "default allow"

let test_engine_permission_mismatch () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  ignore (Policy.Engine.add_region e (region ~prot:Policy.Region.prot_read 100 100));
  (match Policy.Engine.check e ~addr:150 ~size:4 ~flags:Policy.Region.prot_read with
  | Policy.Engine.Allowed (Some _) -> ()
  | _ -> Alcotest.fail "read should pass");
  match Policy.Engine.check e ~addr:150 ~size:4 ~flags:Policy.Region.prot_write with
  | Policy.Engine.Denied (Some _) -> ()
  | _ -> Alcotest.fail "write should fail"

let test_engine_set_policy () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Engine.set_policy e Policy.Region.kernel_only;
  checki "two rules" 2 (Policy.Engine.count e);
  Policy.Engine.set_policy e (Policy.Region.kernel_only_padded 16);
  checki "replaced" 16 (Policy.Engine.count e)

let test_engine_cost_grows_with_scan_depth () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Engine.set_policy e (Policy.Region.kernel_only_padded 64);
  let machine = Kernel.machine k in
  let addr = Kernel.Layout.direct_map_base + 64 in
  (* warm *)
  for _ = 1 to 200 do
    ignore (Policy.Engine.check e ~addr ~size:8 ~flags:1)
  done;
  let c0 = Machine.Model.cycles machine in
  for _ = 1 to 500 do
    ignore (Policy.Engine.check e ~addr ~size:8 ~flags:1)
  done;
  let deep = Machine.Model.cycles machine - c0 in
  let e2 = Policy.Engine.create k in
  Policy.Engine.set_policy e2 Policy.Region.kernel_only;
  for _ = 1 to 200 do
    ignore (Policy.Engine.check e2 ~addr ~size:8 ~flags:1)
  done;
  let c1 = Machine.Model.cycles machine in
  for _ = 1 to 500 do
    ignore (Policy.Engine.check e2 ~addr ~size:8 ~flags:1)
  done;
  let shallow = Machine.Model.cycles machine - c1 in
  checkb "64-region scan costs more" true (deep > shallow)

(* ---------- policy module ---------- *)

let setup_pm ?(on_deny = Policy.Policy_module.Audit) () =
  let k = fresh () in
  let pm = Policy.Policy_module.install ~on_deny k in
  (k, pm)

let test_guard_allows () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  checki "guard returns" 0
    (Kernel.call_symbol k "carat_guard" [| Kernel.Layout.direct_map_base + 8; 8; 1 |]);
  checki "no violations" 0 (List.length (Policy.Policy_module.violations pm))

let test_guard_denies_and_logs () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  ignore (Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 2 |]);
  checki "violation recorded" 1 (List.length (Policy.Policy_module.violations pm));
  checkb "logged" true
    (Kernel.Klog.contains (Kernel.log k) "CARAT KOP: forbidden write")

let test_guard_panics_in_panic_mode () =
  let k, pm = setup_pm ~on_deny:Policy.Policy_module.Panic () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  match Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 1 |] with
  | exception Kernel.Panic info ->
    checkb "reason mentions guard" true
      (String.length info.Kernel.reason > 0)
  | _ -> Alcotest.fail "no panic"

let test_ioctl_roundtrip () =
  let k, pm = setup_pm () in
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xA000;
  Kernel.write k ~addr:(arg + 8) ~size:8 0x100;
  Kernel.write k ~addr:(arg + 16) ~size:8 3;
  checki "add ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg);
  checki "count" 1
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  (* the added region actually governs the guard *)
  checki "guard passes" 0 (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 1 |]);
  (* remove it again *)
  Kernel.write k ~addr:arg ~size:8 0xA000;
  checki "remove ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_remove ~arg);
  checki "count 0" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  ignore (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 1 |]);
  checki "denied after removal" 1 (List.length (Policy.Policy_module.violations pm))

let test_ioctl_bad_region () =
  let k, _ = setup_pm () in
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xA000;
  Kernel.write k ~addr:(arg + 8) ~size:8 0 (* zero length *);
  checki "rejected" (-1)
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg)

let test_ioctl_set_default () =
  let k, pm = setup_pm () in
  checki "set allow" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_set_default ~arg:1);
  checki "now allowed" 0 (Kernel.call_symbol k "carat_guard" [| 0x9999; 8; 1 |]);
  checki "no violations" 0 (List.length (Policy.Policy_module.violations pm))

let test_ioctl_stats () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  ignore (Kernel.call_symbol k "carat_guard" [| Kernel.Layout.direct_map_base; 8; 1 |]);
  ignore (Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 1 |]);
  checki "checks" 2
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_stats_checks ~arg:0);
  checki "denied" 1
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_stats_denied ~arg:0)

let test_ioctl_clear () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 8);
  checki "clear ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_clear ~arg:0);
  checki "empty" 0 (Policy.Engine.count (Policy.Policy_module.engine pm))

(* ---------- policy files ---------- *)

let test_policy_file_roundtrip () =
  let t =
    {
      Policy.Policy_file.default_allow = false;
      mode = Policy.Policy_module.Quarantine;
      regions =
        [
          region ~tag:"kernel window" ~prot:Policy.Region.prot_rw 0x1000 0x2000;
          region ~tag:"" ~prot:Policy.Region.prot_read 0x9000 0x100;
          region ~prot:0 0x0 0x800;
        ];
    }
  in
  let text = Policy.Policy_file.to_string t in
  let t' = Policy.Policy_file.parse text in
  checki "regions" 3 (List.length t'.Policy.Policy_file.regions);
  checkb "same text" true (Policy.Policy_file.to_string t' = text)

let test_policy_file_parse () =
  let t =
    Policy.Policy_file.parse
      "# demo
default allow
region 0x100 0x10 rw tagged region
region 256 16 -- 
"
  in
  checkb "default" true t.Policy.Policy_file.default_allow;
  (match t.Policy.Policy_file.regions with
  | [ a; b ] ->
    checki "hex base" 0x100 a.Policy.Region.base;
    Alcotest.(check string) "tag with spaces" "tagged region" a.Policy.Region.tag;
    checki "decimal base" 256 b.Policy.Region.base;
    checki "no perms" 0 b.Policy.Region.prot
  | _ -> Alcotest.fail "wrong region count")

let test_policy_file_errors () =
  List.iter
    (fun text ->
      match Policy.Policy_file.parse text with
      | exception Policy.Policy_file.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    [
      "region 0x1 0x0 rw";      (* zero length *)
      "region 0x1 xyz rw";      (* bad number *)
      "region 0x1 0x10 qq";     (* bad perms *)
      "frobnicate";             (* unknown directive *)
    ]

let test_policy_file_apply () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Policy_file.apply
    {
      Policy.Policy_file.default_allow = true;
      mode = Policy.Policy_module.Panic;
      regions = [ region ~prot:0 0x5000 0x1000 ];
    }
    e;
  (match Policy.Engine.check e ~addr:0x5100 ~size:8 ~flags:1 with
  | Policy.Engine.Denied (Some _) -> ()
  | _ -> Alcotest.fail "explicit deny rule ignored");
  match Policy.Engine.check e ~addr:0x9000 ~size:8 ~flags:1 with
  | Policy.Engine.Allowed None -> ()
  | _ -> Alcotest.fail "default allow ignored"

let () =
  Alcotest.run "policy"
    [
      ( "regions",
        [
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "permits" `Quick test_region_permits;
          Alcotest.test_case "overlaps" `Quick test_region_overlaps;
          Alcotest.test_case "validation" `Quick test_region_validation;
          Alcotest.test_case "canonical policies" `Quick test_canonical_policies;
        ] );
      ( "linear",
        [
          Alcotest.test_case "capacity" `Quick test_linear_add_capacity;
          Alcotest.test_case "first match wins" `Quick test_linear_first_match_wins;
          Alcotest.test_case "remove keeps order" `Quick test_linear_remove_preserves_order;
          Alcotest.test_case "scan counts" `Quick test_linear_scan_counts;
        ] );
      ( "alternative-structures",
        [
          QCheck_alcotest.to_alcotest prop_sorted_equiv;
          QCheck_alcotest.to_alcotest prop_splay_equiv;
          QCheck_alcotest.to_alcotest prop_rbtree_equiv;
          QCheck_alcotest.to_alcotest prop_cached_equiv;
          QCheck_alcotest.to_alcotest prop_rbtree_invariants;
          Alcotest.test_case "rbtree rejects overlap" `Quick test_rbtree_rejects_overlap;
          Alcotest.test_case "rbtree log depth" `Quick test_rbtree_logarithmic_scan;
          Alcotest.test_case "rbtree remove" `Quick test_rbtree_remove;
          Alcotest.test_case "sorted rejects overlap" `Quick test_sorted_rejects_overlap;
          Alcotest.test_case "splay rejects overlap" `Quick test_splay_rejects_overlap;
          Alcotest.test_case "splay popularity" `Quick test_splay_popularity;
          Alcotest.test_case "cached hit rate" `Quick test_cached_hit_rate;
          Alcotest.test_case "cached invalidation" `Quick test_cached_invalidation;
          Alcotest.test_case "bloom allowed stays allowed" `Quick test_bloom_no_false_negative_for_allowed;
          Alcotest.test_case "bloom clear" `Quick test_bloom_clear_resets_filter;
        ] );
      ( "engine",
        [
          Alcotest.test_case "default deny" `Quick test_engine_default_deny;
          Alcotest.test_case "default allow" `Quick test_engine_default_allow;
          Alcotest.test_case "permission mismatch" `Quick test_engine_permission_mismatch;
          Alcotest.test_case "set policy" `Quick test_engine_set_policy;
          Alcotest.test_case "scan depth cost" `Quick test_engine_cost_grows_with_scan_depth;
        ] );
      ( "policy-file",
        [
          Alcotest.test_case "round trip" `Quick test_policy_file_roundtrip;
          Alcotest.test_case "parse forms" `Quick test_policy_file_parse;
          Alcotest.test_case "parse errors" `Quick test_policy_file_errors;
          Alcotest.test_case "apply" `Quick test_policy_file_apply;
        ] );
      ( "policy-module",
        [
          Alcotest.test_case "guard allows" `Quick test_guard_allows;
          Alcotest.test_case "guard denies+logs" `Quick test_guard_denies_and_logs;
          Alcotest.test_case "guard panics" `Quick test_guard_panics_in_panic_mode;
          Alcotest.test_case "ioctl round trip" `Quick test_ioctl_roundtrip;
          Alcotest.test_case "ioctl bad region" `Quick test_ioctl_bad_region;
          Alcotest.test_case "ioctl set default" `Quick test_ioctl_set_default;
          Alcotest.test_case "ioctl stats" `Quick test_ioctl_stats;
          Alcotest.test_case "ioctl clear" `Quick test_ioctl_clear;
        ] );
    ]
