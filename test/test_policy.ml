(* Policy engine: regions, the linear table, alternative structures
   (equivalence-tested against the linear reference), the engine, and the
   policy module with its ioctl interface. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fresh () = Kernel.create ~require_signature:false Machine.Presets.r350

let region ?(tag = "") ?(prot = Policy.Region.prot_rw) base len =
  Policy.Region.v ~tag ~base ~len ~prot ()

(* ---------- regions ---------- *)

let test_region_contains () =
  let r = region 100 50 in
  checkb "inside" true (Policy.Region.contains r ~addr:100 ~size:50);
  checkb "strict inside" true (Policy.Region.contains r ~addr:120 ~size:8);
  checkb "below" false (Policy.Region.contains r ~addr:99 ~size:2);
  checkb "spills over" false (Policy.Region.contains r ~addr:145 ~size:8);
  checkb "just past" false (Policy.Region.contains r ~addr:150 ~size:1)

let test_region_permits () =
  let ro = region ~prot:Policy.Region.prot_read 0 10 in
  checkb "read ok" true (Policy.Region.permits ro ~flags:Policy.Region.prot_read);
  checkb "write denied" false (Policy.Region.permits ro ~flags:Policy.Region.prot_write);
  checkb "rw denied" false (Policy.Region.permits ro ~flags:Policy.Region.prot_rw);
  let none = region ~prot:0 0 10 in
  checkb "deny-all region" false (Policy.Region.permits none ~flags:Policy.Region.prot_read)

let test_region_overlaps () =
  checkb "overlap" true (Policy.Region.overlaps (region 0 10) (region 5 10));
  checkb "nested" true (Policy.Region.overlaps (region 0 100) (region 10 5));
  checkb "adjacent" false (Policy.Region.overlaps (region 0 10) (region 10 10));
  checkb "disjoint" false (Policy.Region.overlaps (region 0 10) (region 50 10))

let test_region_validation () =
  (match region 0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero length accepted");
  match region (-5) 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative base accepted"

let test_canonical_policies () =
  checki "two regions" 2 (List.length Policy.Region.kernel_only);
  checki "padded to 64" 64 (List.length (Policy.Region.kernel_only_padded 64));
  (* padded keeps semantics: kernel allowed, user denied *)
  let find addr rs = List.find_opt (fun r -> Policy.Region.contains r ~addr ~size:8) rs in
  let p = Policy.Region.kernel_only_padded 64 in
  (match find Kernel.Layout.direct_map_base p with
  | Some r -> checkb "kernel allowed" true (Policy.Region.permits r ~flags:3)
  | None -> Alcotest.fail "kernel unmatched");
  match find 0x100_0000_0000 p with
  | Some r -> checkb "user denied" false (Policy.Region.permits r ~flags:1)
  | None -> Alcotest.fail "user unmatched"

(* ---------- linear table ---------- *)

let test_linear_add_capacity () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:4 in
  for i = 0 to 3 do
    checkb "added" true (Policy.Linear_table.add t (region (i * 1000) 100) = Ok ())
  done;
  checkb "full" true (Result.is_error (Policy.Linear_table.add t (region 9000 1)));
  checki "count" 4 (Policy.Linear_table.count t)

let test_linear_first_match_wins () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:8 in
  ignore (Policy.Linear_table.add t (region ~tag:"first" 100 100));
  ignore (Policy.Linear_table.add t (region ~tag:"second" 100 100));
  match (Policy.Linear_table.lookup t ~addr:120 ~size:4).Policy.Structure.matched with
  | Some r -> Alcotest.(check string) "first wins" "first" r.Policy.Region.tag
  | None -> Alcotest.fail "no match"

let test_linear_remove_preserves_order () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:8 in
  ignore (Policy.Linear_table.add t (region ~tag:"a" 0 10));
  ignore (Policy.Linear_table.add t (region ~tag:"b" 100 10));
  ignore (Policy.Linear_table.add t (region ~tag:"c" 200 10));
  checkb "removed" true (Policy.Linear_table.remove t ~base:100);
  checkb "missing remove" false (Policy.Linear_table.remove t ~base:100);
  Alcotest.(check (list string)) "order kept" [ "a"; "c" ]
    (List.map (fun r -> r.Policy.Region.tag) (Policy.Linear_table.regions t))

let test_linear_scan_counts () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:64 in
  for i = 0 to 9 do
    ignore (Policy.Linear_table.add t (region (i * 1000) 100))
  done;
  checki "match at pos 7 scans 8" 8
    (Policy.Linear_table.lookup t ~addr:7000 ~size:4).Policy.Structure.scanned;
  checki "miss scans all" 10
    (Policy.Linear_table.lookup t ~addr:999_999 ~size:4).Policy.Structure.scanned

(* ---------- structure equivalence (qcheck) ---------- *)

(* random NON-overlapping region sets, which all structures accept *)
let gen_disjoint_regions =
  QCheck.Gen.(
    let* n = int_range 1 20 in
    let* lens = list_repeat n (int_range 1 50) in
    let* gaps = list_repeat n (int_range 1 50) in
    let* prots = list_repeat n (int_range 0 3) in
    let rec build base lens gaps prots acc =
      match (lens, gaps, prots) with
      | l :: ls, g :: gs, p :: ps ->
        build (base + l + g) ls gs ps (region ~prot:p base l :: acc)
      | _ -> List.rev acc
    in
    return (build 1000 lens gaps prots []))

let gen_probe = QCheck.Gen.(tup2 (int_range 0 3000) (int_range 1 8))

let mk_instance k kind regions =
  let inst = Policy.Engine.make_instance k kind ~capacity:64 in
  List.iter
    (fun r ->
      match Policy.Structure.add inst r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "add: %s" e)
    regions;
  inst

let equivalence_prop kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with linear" (Policy.Engine.kind_to_string kind))
    ~count:100
    (QCheck.make QCheck.Gen.(tup2 gen_disjoint_regions (list_size (int_range 1 20) gen_probe)))
    (fun (regions, probes) ->
      let k = fresh () in
      let reference = mk_instance k Policy.Engine.Linear regions in
      let candidate = mk_instance k kind regions in
      List.for_all
        (fun (addr, size) ->
          let a = Policy.Structure.lookup reference ~addr ~size in
          let b = Policy.Structure.lookup candidate ~addr ~size in
          match (a.Policy.Structure.matched, b.Policy.Structure.matched) with
          | None, None -> true
          | Some ra, Some rb ->
            (* bloom's fast path may report a synthetic covering region;
               what must agree is the allow/deny verdict for full rw *)
            Policy.Region.permits ra ~flags:Policy.Region.prot_rw
            = Policy.Region.permits rb ~flags:Policy.Region.prot_rw
            || rb.Policy.Region.tag = "bloom-fastpath"
          | _ -> false)
        probes)

let prop_sorted_equiv = equivalence_prop Policy.Engine.Sorted
let prop_splay_equiv = equivalence_prop Policy.Engine.Splay
let prop_rbtree_equiv = equivalence_prop Policy.Engine.Rbtree
let prop_cached_equiv = equivalence_prop Policy.Engine.Cached
let prop_itree_equiv = equivalence_prop Policy.Engine.Itree

(* rbtree structural invariants hold under random insertion *)
let prop_rbtree_invariants =
  QCheck.Test.make ~name:"rbtree invariants" ~count:100
    (QCheck.make gen_disjoint_regions) (fun regions ->
      let k = fresh () in
      let t = Policy.Rb_tree.create k ~capacity:64 in
      List.iter (fun r -> ignore (Policy.Rb_tree.add t r)) regions;
      Policy.Rb_tree.validate t = Ok ()
      && Policy.Rb_tree.count t = List.length regions
      &&
      (* in-order traversal is sorted by base *)
      let bases =
        List.map (fun r -> r.Policy.Region.base) (Policy.Rb_tree.regions t)
      in
      bases = List.sort compare bases)

let test_rbtree_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:8 in
  ignore (Policy.Rb_tree.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Rb_tree.add t (region 50 100)))

let test_rbtree_logarithmic_scan () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:64 in
  for i = 0 to 63 do
    ignore (Policy.Rb_tree.add t (region (i * 1000) 100))
  done;
  (match Policy.Rb_tree.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid tree: %s" e);
  let worst = ref 0 in
  for i = 0 to 63 do
    let out = Policy.Rb_tree.lookup t ~addr:((i * 1000) + 50) ~size:4 in
    checkb "found" true (out.Policy.Structure.matched <> None);
    if out.Policy.Structure.scanned > !worst then
      worst := out.Policy.Structure.scanned
  done;
  (* a valid red-black tree of 64 nodes is at most 2*log2(65) ~ 12 deep *)
  checkb "logarithmic depth" true (!worst <= 12)

let test_rbtree_remove () =
  let k = fresh () in
  let t = Policy.Rb_tree.create k ~capacity:16 in
  for i = 0 to 7 do
    ignore (Policy.Rb_tree.add t (region (i * 1000) 100))
  done;
  checkb "removed" true (Policy.Rb_tree.remove t ~base:3000);
  checkb "gone" true
    ((Policy.Rb_tree.lookup t ~addr:3050 ~size:4).Policy.Structure.matched = None);
  checki "count" 7 (Policy.Rb_tree.count t);
  checkb "still valid" true (Policy.Rb_tree.validate t = Ok ())

let test_sorted_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Sorted_table.create k ~capacity:8 in
  ignore (Policy.Sorted_table.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Sorted_table.add t (region 50 100)))

let test_splay_rejects_overlap () =
  let k = fresh () in
  let t = Policy.Splay_tree.create k ~capacity:8 in
  ignore (Policy.Splay_tree.add t (region 0 100));
  checkb "overlap rejected" true
    (Result.is_error (Policy.Splay_tree.add t (region 50 100)))

let test_splay_popularity () =
  let k = fresh () in
  let t = Policy.Splay_tree.create k ~capacity:32 in
  for i = 0 to 15 do
    ignore (Policy.Splay_tree.add t (region (i * 1000) 100))
  done;
  (* hit region 12 repeatedly: it splays to the root, later probes scan 1 *)
  ignore (Policy.Splay_tree.lookup t ~addr:12050 ~size:4);
  let second = Policy.Splay_tree.lookup t ~addr:12050 ~size:4 in
  checki "root hit" 1 second.Policy.Structure.scanned

let test_cached_hit_rate () =
  let k = fresh () in
  let t = Policy.Lookup_cache.create k ~capacity:16 in
  for i = 0 to 9 do
    ignore (Policy.Lookup_cache.add t (region (i * 1000) 100))
  done;
  for _ = 1 to 50 do
    ignore (Policy.Lookup_cache.lookup t ~addr:9050 ~size:4)
  done;
  checkb "mostly hits" true (Policy.Lookup_cache.hit_rate t > 0.9)

let test_cached_invalidation () =
  let k = fresh () in
  let t = Policy.Lookup_cache.create k ~capacity:16 in
  ignore (Policy.Lookup_cache.add t (region 1000 100));
  ignore (Policy.Lookup_cache.lookup t ~addr:1050 ~size:4) (* fill cache *);
  checkb "removed" true (Policy.Lookup_cache.remove t ~base:1000);
  checkb "stale entry gone" true
    ((Policy.Lookup_cache.lookup t ~addr:1050 ~size:4).Policy.Structure.matched = None)

let test_bloom_no_false_negative_for_allowed () =
  let k = fresh () in
  let t = Policy.Bloom_front.create k ~capacity:16 in
  ignore (Policy.Bloom_front.add t (region 0x10000 0x1000));
  (* first query goes the slow path and seeds the filter; all later
     queries to the same page must still be allowed *)
  for _ = 1 to 20 do
    checkb "allowed" true
      ((Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8).Policy.Structure.matched <> None)
  done;
  checkb "fp estimate sane" true (Policy.Bloom_front.fp_possible t < 0.01)

let test_bloom_clear_resets_filter () =
  let k = fresh () in
  let t = Policy.Bloom_front.create k ~capacity:16 in
  ignore (Policy.Bloom_front.add t (region 0x10000 0x1000));
  ignore (Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8);
  Policy.Bloom_front.clear t;
  checkb "cleared" true
    ((Policy.Bloom_front.lookup t ~addr:0x10100 ~size:8).Policy.Structure.matched = None)

(* ---------- engine ---------- *)

let test_engine_default_deny () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  (match Policy.Engine.check e ~addr:0x1234 ~size:8 ~flags:1 with
  | Policy.Engine.Denied None -> ()
  | _ -> Alcotest.fail "default deny");
  let st = Policy.Engine.stats e in
  checki "denied counted" 1 st.Policy.Engine.denied

let test_engine_default_allow () =
  let k = fresh () in
  let e = Policy.Engine.create ~default_allow:true k in
  match Policy.Engine.check e ~addr:0x1234 ~size:8 ~flags:1 with
  | Policy.Engine.Allowed None -> ()
  | _ -> Alcotest.fail "default allow"

let test_engine_permission_mismatch () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  ignore (Policy.Engine.add_region e (region ~prot:Policy.Region.prot_read 100 100));
  (match Policy.Engine.check e ~addr:150 ~size:4 ~flags:Policy.Region.prot_read with
  | Policy.Engine.Allowed (Some _) -> ()
  | _ -> Alcotest.fail "read should pass");
  match Policy.Engine.check e ~addr:150 ~size:4 ~flags:Policy.Region.prot_write with
  | Policy.Engine.Denied (Some _) -> ()
  | _ -> Alcotest.fail "write should fail"

let test_engine_set_policy () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Engine.set_policy e Policy.Region.kernel_only;
  checki "two rules" 2 (Policy.Engine.count e);
  Policy.Engine.set_policy e (Policy.Region.kernel_only_padded 16);
  checki "replaced" 16 (Policy.Engine.count e)

let test_engine_cost_grows_with_scan_depth () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Engine.set_policy e (Policy.Region.kernel_only_padded 64);
  let machine = Kernel.machine k in
  let addr = Kernel.Layout.direct_map_base + 64 in
  (* warm *)
  for _ = 1 to 200 do
    ignore (Policy.Engine.check e ~addr ~size:8 ~flags:1)
  done;
  let c0 = Machine.Model.cycles machine in
  for _ = 1 to 500 do
    ignore (Policy.Engine.check e ~addr ~size:8 ~flags:1)
  done;
  let deep = Machine.Model.cycles machine - c0 in
  let e2 = Policy.Engine.create k in
  Policy.Engine.set_policy e2 Policy.Region.kernel_only;
  for _ = 1 to 200 do
    ignore (Policy.Engine.check e2 ~addr ~size:8 ~flags:1)
  done;
  let c1 = Machine.Model.cycles machine in
  for _ = 1 to 500 do
    ignore (Policy.Engine.check e2 ~addr ~size:8 ~flags:1)
  done;
  let shallow = Machine.Model.cycles machine - c1 in
  checkb "64-region scan costs more" true (deep > shallow)

(* ---------- policy module ---------- *)

let setup_pm ?(on_deny = Policy.Policy_module.Audit) () =
  let k = fresh () in
  let pm = Policy.Policy_module.install ~on_deny k in
  (k, pm)

let test_guard_allows () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  checki "guard returns" 0
    (Kernel.call_symbol k "carat_guard" [| Kernel.Layout.direct_map_base + 8; 8; 1 |]);
  checki "no violations" 0 (List.length (Policy.Policy_module.violations pm))

let test_guard_denies_and_logs () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  ignore (Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 2 |]);
  checki "violation recorded" 1 (List.length (Policy.Policy_module.violations pm));
  checkb "logged" true
    (Kernel.Klog.contains (Kernel.log k) "CARAT KOP: forbidden write")

let test_guard_panics_in_panic_mode () =
  let k, pm = setup_pm ~on_deny:Policy.Policy_module.Panic () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  match Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 1 |] with
  | exception Kernel.Panic info ->
    checkb "reason mentions guard" true
      (String.length info.Kernel.reason > 0)
  | _ -> Alcotest.fail "no panic"

let test_ioctl_roundtrip () =
  let k, pm = setup_pm () in
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xA000;
  Kernel.write k ~addr:(arg + 8) ~size:8 0x100;
  Kernel.write k ~addr:(arg + 16) ~size:8 3;
  checki "add ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg);
  checki "count" 1
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  (* the added region actually governs the guard *)
  checki "guard passes" 0 (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 1 |]);
  (* remove it again *)
  Kernel.write k ~addr:arg ~size:8 0xA000;
  checki "remove ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_remove ~arg);
  checki "count 0" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  ignore (Kernel.call_symbol k "carat_guard" [| 0xA010; 8; 1 |]);
  checki "denied after removal" 1 (List.length (Policy.Policy_module.violations pm))

let test_ioctl_bad_region () =
  let k, _ = setup_pm () in
  let io cmd arg = Kernel.ioctl k ~dev:"carat" ~cmd ~arg in
  let arg = Kernel.map_user k ~size:32 in
  let set base len prot =
    Kernel.write k ~addr:arg ~size:8 base;
    Kernel.write k ~addr:(arg + 8) ~size:8 len;
    Kernel.write k ~addr:(arg + 16) ~size:8 prot
  in
  set 0xA000 0 Policy.Region.prot_rw (* zero length *);
  checki "zero-length add" Kernel.einval (io Policy.Policy_module.ioctl_add arg);
  (* a two's-complement negative length reads back from user memory as a
     huge positive one: the overflow check catches it as -ERANGE *)
  set 0xA000 (-8) Policy.Region.prot_rw;
  checki "negative length" Kernel.erange (io Policy.Policy_module.ioctl_add arg);
  set max_int 0x100 Policy.Region.prot_rw (* base + len overflows *);
  checki "base+len overflow" Kernel.erange
    (io Policy.Policy_module.ioctl_add arg);
  set 0xA000 0x100 0xF0 (* bits outside prot_rw *);
  checki "bad prot bits" Kernel.einval (io Policy.Policy_module.ioctl_add arg);
  checki "count unchanged" 0 (io Policy.Policy_module.ioctl_count 0)

(* Each validated ioctl answers a malformed argument with the matching
   typed error code, and an unknown command with -ENOTTY — regression
   locks for the /dev/carat argument-validation surface. *)
let test_ioctl_validation () =
  let k, pm = setup_pm () in
  let io cmd arg = Kernel.ioctl k ~dev:"carat" ~cmd ~arg in
  let open Policy.Policy_module in
  checki "add: bad pointer" Kernel.einval (io ioctl_add (-8));
  checki "remove: bad pointer" Kernel.einval (io ioctl_remove (-8));
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xDEAD000;
  checki "remove: no such region" (-1) (io ioctl_remove arg);
  checki "set-intrinsics: negative bitmap" Kernel.einval
    (io ioctl_set_intrinsics (-1));
  checki "cfi-allow: negative target" Kernel.einval (io ioctl_cfi_allow (-8));
  checki "set-mode: unknown encoding" Kernel.einval (io ioctl_set_mode 99);
  checki "get-stats: bad pointer" Kernel.einval (io ioctl_get_stats (-8));
  checki "trace-start: bad capacity" Kernel.einval (io ioctl_trace_start (-1));
  checki "trace-start: oversized ring" Kernel.erange
    (io ioctl_trace_start (trace_capacity_max + 1));
  checki "trace-read: bad pointer" Kernel.einval (io ioctl_trace_read (-8));
  checki "audit: self-healing not enabled" Kernel.einval (io ioctl_audit 0);
  checki "selfheal: self-healing not enabled" Kernel.einval (io ioctl_selfheal 0);
  checki "unknown command" Kernel.enotty (io 999 0);
  (* a well-formed call still goes through after the rejections *)
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  checki "valid count" 2 (io ioctl_count 0)

(* The audit/selfheal ioctls once integrity is armed: the audit returns
   the number of corrupt tiers it found, and the selfheal block reflects
   the detection and the recovery. *)
let test_ioctl_audit_selfheal () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let io cmd arg = Kernel.ioctl k ~dev:"carat" ~cmd ~arg in
  let open Policy.Policy_module in
  ignore (enable_integrity pm);
  checki "clean audit" 0 (io ioctl_audit 0);
  checki "selfheal: bad pointer" Kernel.einval (io ioctl_selfheal (-8));
  let eng = Policy.Policy_module.engine pm in
  (* flip the kernel window's rw permission to deny-all in the live
     table — a stale-deny corruption the digest must still catch *)
  ignore
    (Policy.Engine.corrupt_instance eng ~base:Kernel.Layout.kernel_base
       ~prot:0);
  checki "audit detects corrupt instance" 1 (io ioctl_audit 0);
  let arg = Kernel.map_user k ~size:64 in
  checki "selfheal block ok" 0 (io ioctl_selfheal arg);
  let r i = Kernel.read k ~addr:(arg + (8 * i)) ~size:8 in
  checkb "audits counted" true (r 0 >= 2);
  checki "one detection" 1 (r 1);
  checki "one degradation" 1 (r 2);
  (* the degrade republished from the authoritative copy on the spot *)
  checki "clean after heal" 0 (io ioctl_audit 0)

let test_ioctl_set_default () =
  let k, pm = setup_pm () in
  checki "set allow" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_set_default ~arg:1);
  checki "now allowed" 0 (Kernel.call_symbol k "carat_guard" [| 0x9999; 8; 1 |]);
  checki "no violations" 0 (List.length (Policy.Policy_module.violations pm))

let test_ioctl_stats () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  ignore (Kernel.call_symbol k "carat_guard" [| Kernel.Layout.direct_map_base; 8; 1 |]);
  ignore (Kernel.call_symbol k "carat_guard" [| 0x4000; 8; 1 |]);
  checki "checks" 2
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_stats_checks ~arg:0);
  checki "denied" 1
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_stats_denied ~arg:0)

let test_ioctl_clear () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 8);
  checki "clear ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_clear ~arg:0);
  checki "empty" 0 (Policy.Engine.count (Policy.Policy_module.engine pm))

(* ---------- self-healing integrity ---------- *)

let setup_shadow_pm ?(site_cache = false) () =
  let k = fresh () in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache
      ~on_deny:Policy.Policy_module.Audit k
  in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  (k, pm, Policy.Policy_module.engine pm)

(* A legitimate mutation goes through the epoch choke point, so the
   authoritative snapshot follows it and audits stay clean. *)
let test_integrity_commit_hook_tracks_mutations () =
  let _, pm, eng = setup_shadow_pm () in
  let ig = Policy.Policy_module.enable_integrity pm in
  checki "clean at rest" 0 (Policy.Integrity.audit ig);
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 8);
  checki "clean after set_policy" 0 (Policy.Integrity.audit ig);
  ignore
    (Policy.Policy_module.replace_policy pm ~default_allow:false
       Policy.Region.kernel_only);
  checki "clean after replace" 0 (Policy.Integrity.audit ig);
  checkb "all tiers healthy" true (Policy.Integrity.healthy ig);
  checki "no detections from legitimate traffic" 0
    (Policy.Integrity.detections ig);
  ignore eng

(* Without the watchdog, a corrupt shadow slot serves a stale allow: the
   attack the self-healing layer exists to stop, demonstrated first. *)
let test_stale_allow_without_integrity () =
  let _, _, eng = setup_shadow_pm () in
  Policy.Engine.set_verify eng true;
  (* warm the slot for a user page, then smash it into a writable fact
     with a forged checksum (the wild write) *)
  let addr = 0x4000 in
  let page = addr lsr Policy.Shadow_table.page_bits in
  (match Policy.Engine.check eng ~addr ~size:8 ~flags:2 with
  | Policy.Engine.Denied _ -> ()
  | Policy.Engine.Allowed _ -> Alcotest.fail "user store allowed pre-corruption");
  checkb "slot corrupted" true
    (Policy.Engine.corrupt_shadow eng ~page ~prot:Policy.Region.prot_rw
       ~fix_checksum:true);
  (match Policy.Engine.check eng ~addr ~size:8 ~flags:2 with
  | Policy.Engine.Allowed _ -> ()
  | Policy.Engine.Denied _ -> Alcotest.fail "corrupt slot did not answer");
  checkb "stale allow counted by paranoia" true
    (Policy.Engine.stale_allows eng > 0)

(* Checksum-detectable shadow corruption: quarantine drops the engine to
   the linear fallback (not one check served from the corrupt table),
   then the cooldown rebuild restores the shadow tier. *)
let test_shadow_degrade_and_repromote () =
  let _, pm, eng = setup_shadow_pm () in
  let ig = Policy.Policy_module.enable_integrity pm in
  let addr = 0x4000 in
  let page = addr lsr Policy.Shadow_table.page_bits in
  ignore (Policy.Engine.check eng ~addr ~size:8 ~flags:2);
  checkb "corrupted" true
    (Policy.Engine.corrupt_shadow eng ~page ~prot:Policy.Region.prot_rw
       ~fix_checksum:false);
  checki "full tier before" 2 (Policy.Integrity.tier_level ig);
  checki "audit detects" 1 (Policy.Integrity.audit ig);
  checki "dropped to linear fallback" 0 (Policy.Integrity.tier_level ig);
  checkb "degraded, not healthy" false (Policy.Integrity.healthy ig);
  (* enforcement continues from the fallback with no stale allow *)
  Policy.Engine.set_verify eng true;
  (match Policy.Engine.check eng ~addr ~size:8 ~flags:2 with
  | Policy.Engine.Denied _ -> ()
  | Policy.Engine.Allowed _ -> Alcotest.fail "degraded engine allowed the store");
  checki "no stale allows" 0 (Policy.Engine.stale_allows eng);
  (* cooldown (2 audits) then rebuild re-promotes the shadow tier *)
  ignore (Policy.Integrity.audit ig);
  ignore (Policy.Integrity.audit ig);
  checki "restored" 2 (Policy.Integrity.tier_level ig);
  checkb "healthy again" true (Policy.Integrity.healthy ig);
  checkb "rebuild counted" true (Policy.Integrity.rebuilds ig > 0)

(* Semantic cross-check: a corrupt slot whose checksum was forged to
   match is still caught against the authoritative classification. *)
let test_shadow_semantic_crosscheck () =
  let _, pm, eng = setup_shadow_pm () in
  let ig = Policy.Policy_module.enable_integrity pm in
  let page = 0x4000 lsr Policy.Shadow_table.page_bits in
  ignore (Policy.Engine.check eng ~addr:0x4000 ~size:8 ~flags:2);
  checkb "corrupted with forged checksum" true
    (Policy.Engine.corrupt_shadow eng ~page ~prot:Policy.Region.prot_rw
       ~fix_checksum:true);
  checki "semantic audit still detects" 1 (Policy.Integrity.audit ig)

(* Inline-cache corruption: only the top tier is quarantined (shadow
   keeps serving), and the flush-based rebuild re-promotes it. *)
let test_ic_degrade_and_repromote () =
  let _, pm, eng = setup_shadow_pm ~site_cache:true () in
  let ig = Policy.Policy_module.enable_integrity pm in
  let page = 0x4000 lsr Policy.Shadow_table.page_bits in
  checkb "slot planted" true
    (Policy.Engine.corrupt_site_cache eng
       (Policy.Engine.default_view eng)
       ~site:7 ~page ~prot:Policy.Region.prot_rw ~smash_canary:true);
  checki "audit detects" 1 (Policy.Integrity.audit ig);
  checki "caches off, shadow still serving" 1 (Policy.Integrity.tier_level ig);
  checkb "ic master switch off" false (Policy.Engine.ic_enabled eng);
  ignore (Policy.Integrity.audit ig);
  ignore (Policy.Integrity.audit ig);
  checki "caches back" 2 (Policy.Integrity.tier_level ig);
  checkb "ic switch on" true (Policy.Engine.ic_enabled eng)

(* A tier that keeps failing its rebuild re-audit is abandoned after
   max_retries (left degraded), not re-promoted forever: the route is
   pinned to a no-op so every repair "fails". *)
let test_bounded_retries_then_abandon () =
  let _, _, eng = setup_shadow_pm () in
  let ig =
    Policy.Integrity.create
      ~config:{ Policy.Integrity.cooldown_audits = 1; max_retries = 2 }
      eng
  in
  Policy.Integrity.set_route ig (fun _ _ -> ());
  checkb "instance corrupted" true
    (Policy.Engine.corrupt_instance eng ~base:Kernel.Layout.kernel_base
       ~prot:0);
  for _ = 1 to 6 do
    ignore (Policy.Integrity.audit ig)
  done;
  checki "abandoned after bounded retries" 1 (Policy.Integrity.abandoned ig);
  checkb "never flaps back" false (Policy.Integrity.healthy ig);
  let audits_before = Policy.Integrity.audits ig in
  ignore (Policy.Integrity.audit ig);
  checki "audits continue" (audits_before + 1) (Policy.Integrity.audits ig)

(* The selfheal procfs file renders live integrity state. *)
let test_selfheal_procfs () =
  let k, pm, eng = setup_shadow_pm () in
  let fs = Kernsvc.Kernfs.create k in
  let proc = Kernsvc.Procfs.install fs pm in
  checkb "placeholder before enabling" true
    (let s = Kernsvc.Procfs.read_selfheal proc in
     String.length s > 0 && String.sub s 0 5 = "carat");
  ignore (Policy.Policy_module.enable_integrity pm);
  ignore
    (Policy.Engine.corrupt_instance eng ~base:Kernel.Layout.kernel_base ~prot:0);
  ignore
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_audit ~arg:0);
  let s = Kernsvc.Procfs.read_selfheal proc in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "renders audit counters" true (contains "carat_selfheal: audits");
  checkb "renders detection" true (contains "detections 1");
  checkb "renders per-tier rows" true (contains "instance")

(* ---------- policy files ---------- *)

let test_policy_file_roundtrip () =
  let t =
    {
      Policy.Policy_file.default_allow = false;
      mode = Policy.Policy_module.Quarantine;
      domain = "";
      regions =
        [
          region ~tag:"kernel window" ~prot:Policy.Region.prot_rw 0x1000 0x2000;
          region ~tag:"" ~prot:Policy.Region.prot_read 0x9000 0x100;
          region ~prot:0 0x0 0x800;
        ];
    }
  in
  let text = Policy.Policy_file.to_string t in
  let t' = Policy.Policy_file.parse text in
  checki "regions" 3 (List.length t'.Policy.Policy_file.regions);
  checkb "same text" true (Policy.Policy_file.to_string t' = text)

let test_policy_file_parse () =
  let t =
    Policy.Policy_file.parse
      "# demo
default allow
region 0x100 0x10 rw tagged region
region 256 16 -- 
"
  in
  checkb "default" true t.Policy.Policy_file.default_allow;
  (match t.Policy.Policy_file.regions with
  | [ a; b ] ->
    checki "hex base" 0x100 a.Policy.Region.base;
    Alcotest.(check string) "tag with spaces" "tagged region" a.Policy.Region.tag;
    checki "decimal base" 256 b.Policy.Region.base;
    checki "no perms" 0 b.Policy.Region.prot
  | _ -> Alcotest.fail "wrong region count")

let test_policy_file_errors () =
  List.iter
    (fun text ->
      match Policy.Policy_file.parse text with
      | exception Policy.Policy_file.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    [
      "region 0x1 0x0 rw";      (* zero length *)
      "region 0x1 xyz rw";      (* bad number *)
      "region 0x1 0x10 qq";     (* bad perms *)
      "frobnicate";             (* unknown directive *)
    ]

let test_policy_file_apply () =
  let k = fresh () in
  let e = Policy.Engine.create k in
  Policy.Policy_file.apply
    {
      Policy.Policy_file.default_allow = true;
      mode = Policy.Policy_module.Panic;
      domain = "";
      regions = [ region ~prot:0 0x5000 0x1000 ];
    }
    e;
  (match Policy.Engine.check e ~addr:0x5100 ~size:8 ~flags:1 with
  | Policy.Engine.Denied (Some _) -> ()
  | _ -> Alcotest.fail "explicit deny rule ignored");
  match Policy.Engine.check e ~addr:0x9000 ~size:8 ~flags:1 with
  | Policy.Engine.Allowed None -> ()
  | _ -> Alcotest.fail "default allow ignored"


(* ---------- interval tree ---------- *)

(* Unlike the overlap-rejecting trees, the interval tier accepts
   overlapping and duplicate-base regions — a multi-tenant domain policy
   is allowed to layer rules — and still answers first-match-wins by
   insertion order. *)
let test_itree_overlaps_and_duplicates () =
  let k = fresh () in
  let t = Policy.Interval_tree.create k ~capacity:16 in
  checkb "first" true (Policy.Interval_tree.add t (region ~tag:"first" ~prot:Policy.Region.prot_read 100 100) = Ok ());
  checkb "overlap accepted" true (Policy.Interval_tree.add t (region ~tag:"wide" 50 400) = Ok ());
  checkb "dup base accepted" true (Policy.Interval_tree.add t (region ~tag:"dup" 100 100) = Ok ());
  checkb "valid" true (Policy.Interval_tree.validate t = Ok ());
  (* first match (insertion order) wins on the overlap *)
  (match (Policy.Interval_tree.lookup t ~addr:120 ~size:4).Policy.Structure.matched with
  | Some r -> Alcotest.(check string) "first wins" "first" r.Policy.Region.tag
  | None -> Alcotest.fail "no match");
  (* insertion order is preserved by regions *)
  Alcotest.(check (list string)) "insertion order" [ "first"; "wide"; "dup" ]
    (List.map (fun r -> r.Policy.Region.tag) (Policy.Interval_tree.regions t))

let test_itree_remove_first_occurrence () =
  let k = fresh () in
  let t = Policy.Interval_tree.create k ~capacity:16 in
  ignore (Policy.Interval_tree.add t (region ~tag:"first" ~prot:Policy.Region.prot_read 100 100));
  ignore (Policy.Interval_tree.add t (region ~tag:"second" 100 100));
  checkb "removed" true (Policy.Interval_tree.remove t ~base:100);
  checki "one left" 1 (Policy.Interval_tree.count t);
  (match (Policy.Interval_tree.lookup t ~addr:120 ~size:4).Policy.Structure.matched with
  | Some r -> Alcotest.(check string) "second now wins" "second" r.Policy.Region.tag
  | None -> Alcotest.fail "no match");
  checkb "removed again" true (Policy.Interval_tree.remove t ~base:100);
  checkb "empty" true (Policy.Interval_tree.remove t ~base:100 = false);
  checkb "still valid" true (Policy.Interval_tree.validate t = Ok ())

let prop_itree_invariants =
  QCheck.Test.make ~name:"interval tree invariants" ~count:100
    (QCheck.make gen_disjoint_regions) (fun regions ->
      let k = fresh () in
      let t = Policy.Interval_tree.create k ~capacity:64 in
      List.iter (fun r -> ignore (Policy.Interval_tree.add t r)) regions;
      Policy.Interval_tree.validate t = Ok ()
      && Policy.Interval_tree.count t = List.length regions
      && Policy.Interval_tree.regions t = regions)

let test_itree_pruned_lookup () =
  let k = fresh () in
  let t = Policy.Interval_tree.create k ~capacity:64 in
  for i = 0 to 63 do
    ignore (Policy.Interval_tree.add t (region (i * 1000) 100))
  done;
  checkb "valid" true (Policy.Interval_tree.validate t = Ok ());
  let worst = ref 0 in
  for i = 0 to 63 do
    let out = Policy.Interval_tree.lookup t ~addr:((i * 1000) + 50) ~size:4 in
    checkb "found" true (out.Policy.Structure.matched <> None);
    if out.Policy.Structure.scanned > !worst then
      worst := out.Policy.Structure.scanned
  done;
  (* the maxlim augmentation prunes the stabbing descent well below a
     full scan of the 64 disjoint regions *)
  checkb "sub-linear descent" true (!worst < 32)

(* ---------- bugfix sweep: mirrors, duplicates, capacity ---------- *)

(* After a remove, the kernel-memory image of the flat tables must be
   byte-identical to the host-side mirror — including the vacated slot,
   which is scrubbed to the never-matching hole value. Before the fix
   the shift left a stale copy of the last entry readable via
   Kernel.read past the logical end of the table. *)
let check_flat_mirror k ~vaddr regions ~scrubbed_slot =
  let word i j = Kernel.read k ~addr:(vaddr + (i * 24) + (j * 8)) ~size:8 in
  List.iteri
    (fun i (r : Policy.Region.t) ->
      checki "mirror base" r.Policy.Region.base (word i 0);
      checki "mirror len" r.Policy.Region.len (word i 1);
      checki "mirror prot" r.Policy.Region.prot (word i 2))
    regions;
  checki "scrubbed base" 0 (word scrubbed_slot 0);
  checki "scrubbed len" 1 (word scrubbed_slot 1);
  checki "scrubbed prot" 0 (word scrubbed_slot 2)

let test_linear_mirror_consistency () =
  let k = fresh () in
  let t = Policy.Linear_table.create k ~capacity:8 in
  List.iter
    (fun r -> ignore (Policy.Linear_table.add t r))
    [ region ~tag:"a" 100 10; region ~tag:"b" 200 10; region ~tag:"c" 300 10 ];
  checkb "removed" true (Policy.Linear_table.remove t ~base:200);
  match Policy.Linear_table.table_region t with
  | None -> Alcotest.fail "linear table has no kernel extent"
  | Some (vaddr, _) ->
    check_flat_mirror k ~vaddr (Policy.Linear_table.regions t) ~scrubbed_slot:2

let test_sorted_mirror_consistency () =
  let k = fresh () in
  let t = Policy.Sorted_table.create k ~capacity:8 in
  List.iter
    (fun r -> ignore (Policy.Sorted_table.add t r))
    [ region ~tag:"c" 300 10; region ~tag:"a" 100 10; region ~tag:"b" 200 10 ];
  checkb "removed" true (Policy.Sorted_table.remove t ~base:200);
  match Policy.Sorted_table.table_region t with
  | None -> Alcotest.fail "sorted table has no kernel extent"
  | Some (vaddr, _) ->
    check_flat_mirror k ~vaddr (Policy.Sorted_table.regions t) ~scrubbed_slot:2

(* Differential property over random add/remove/lookup streams: every
   structure kind must agree with the linear reference on remove
   results, surviving count, and allow/deny verdicts — the canonical
   remove-first-occurrence semantics across the whole structure zoo. *)
let verdict_of inst ~addr ~size =
  match (Policy.Structure.lookup inst ~addr ~size).Policy.Structure.matched with
  | None -> `Deny
  | Some r when r.Policy.Region.tag = "bloom-fastpath" -> `Fastpath
  | Some r -> `Allow (Policy.Region.permits r ~flags:Policy.Region.prot_rw)

let prop_all_kinds_remove_differential =
  QCheck.Test.make ~name:"all kinds agree across add/remove streams"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         tup3 gen_disjoint_regions
           (list_size (int_range 0 10) (int_range 0 1000))
           (list_size (int_range 1 20) gen_probe)))
    (fun (regions, removes, probes) ->
      let bases =
        Array.of_list (List.map (fun r -> r.Policy.Region.base) regions)
      in
      let run kind =
        let k = fresh () in
        let inst = mk_instance k kind regions in
        let rms =
          List.map
            (fun i ->
              Policy.Structure.remove inst
                ~base:bases.(i mod Array.length bases))
            removes
        in
        let vs =
          List.map (fun (addr, size) -> verdict_of inst ~addr ~size) probes
        in
        (rms, Policy.Structure.count inst, vs)
      in
      let ref_rms, ref_n, ref_vs = run Policy.Engine.Linear in
      List.for_all
        (fun kind ->
          let rms, n, vs = run kind in
          rms = ref_rms && n = ref_n
          && List.for_all2 (fun a b -> a = b || b = `Fastpath) ref_vs vs)
        Policy.Engine.all_kinds)

(* Duplicate-base semantics, pinned: every structure that accepts two
   regions at the same base must remove the FIRST occurrence and let
   the second take over the lookup. *)
let test_duplicate_base_remove () =
  List.iter
    (fun kind ->
      let k = fresh () in
      let inst = Policy.Engine.make_instance k kind ~capacity:8 in
      let ok r =
        match Policy.Structure.add inst r with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "%s add: %s" (Policy.Engine.kind_to_string kind) e
      in
      ok (region ~tag:"first" ~prot:Policy.Region.prot_read 0x10000 0x1000);
      ok (region ~tag:"second" 0x10000 0x1000);
      checkb "removed" true (Policy.Structure.remove inst ~base:0x10000);
      checki "one left" 1 (Policy.Structure.count inst);
      match
        (Policy.Structure.lookup inst ~addr:0x10080 ~size:8)
          .Policy.Structure.matched
      with
      | Some r ->
        Alcotest.(check string)
          (Policy.Engine.kind_to_string kind ^ " second survives")
          "second" r.Policy.Region.tag
      | None ->
        Alcotest.failf "%s: no match after remove"
          (Policy.Engine.kind_to_string kind))
    [
      Policy.Engine.Linear; Policy.Engine.Itree; Policy.Engine.Bloom;
      Policy.Engine.Cached; Policy.Engine.Shadow;
    ]

(* Every structure kind at its exact capacity boundary: n = capacity
   fits, capacity + 1 is refused with the typed capacity error, and the
   table recovers after a remove. *)
let test_capacity_boundary_all_kinds () =
  List.iter
    (fun kind ->
      let name = Policy.Engine.kind_to_string kind in
      let k = fresh () in
      let inst = Policy.Engine.make_instance k kind ~capacity:8 in
      for i = 0 to 7 do
        match Policy.Structure.add inst (region (1000 + (i * 1000)) 100) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s add %d: %s" name i e
      done;
      checki (name ^ " at capacity") 8 (Policy.Structure.count inst);
      (match Policy.Structure.add inst (region 90_000 100) with
      | Ok () -> Alcotest.failf "%s accepted capacity+1" name
      | Error e ->
        checkb (name ^ " typed capacity error") true
          (Policy.Structure.is_capacity_error e));
      checkb (name ^ " remove") true (Policy.Structure.remove inst ~base:1000);
      match Policy.Structure.add inst (region 90_000 100) with
      | Ok () -> checki (name ^ " recovered") 8 (Policy.Structure.count inst)
      | Error e -> Alcotest.failf "%s did not recover: %s" name e)
    Policy.Engine.all_kinds

(* ---------- ENOSPC and the batched install ioctl ---------- *)

let write_install_batch k ~arg ~domain regions =
  Kernel.write k ~addr:arg ~size:8 domain;
  Kernel.write k ~addr:(arg + 8) ~size:8 (List.length regions);
  List.iteri
    (fun i (r : Policy.Region.t) ->
      let a = arg + 16 + (i * 24) in
      Kernel.write k ~addr:a ~size:8 r.Policy.Region.base;
      Kernel.write k ~addr:(a + 8) ~size:8 r.Policy.Region.len;
      Kernel.write k ~addr:(a + 16) ~size:8 r.Policy.Region.prot)
    regions

let test_ioctl_add_enospc () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 64);
  let arg = Kernel.map_user k ~size:32 in
  Kernel.write k ~addr:arg ~size:8 0xA000;
  Kernel.write k ~addr:(arg + 8) ~size:8 0x100;
  Kernel.write k ~addr:(arg + 16) ~size:8 3;
  (* a full table answers with the typed -ENOSPC, not a generic error *)
  checki "enospc" Kernel.enospc
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg);
  checki "count unchanged" 64
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0)

let test_ioctl_install_atomic () =
  let k, _pm = setup_pm () in
  let rs = [ region 0xA000 0x100; region 0xB000 0x100; region 0xC000 0x100 ] in
  let arg = Kernel.map_user k ~size:(16 + (3 * 24)) in
  write_install_batch k ~arg ~domain:0 rs;
  checki "install ok" 0
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_install ~arg);
  checki "count" 3
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  checki "guard governed by the batch" 0
    (Kernel.call_symbol k "carat_guard" [| 0xB010; 8; 1 |])

(* A batch the table cannot hold (or with a malformed record) installs
   NOTHING: old-or-new, never partial. *)
let test_ioctl_install_rollback () =
  let k, pm = setup_pm () in
  Policy.Policy_module.set_policy pm (Policy.Region.kernel_only_padded 60);
  let before = Policy.Engine.regions (Policy.Policy_module.engine pm) in
  let rs = List.init 10 (fun i -> region (0xA0000 + (i * 0x1000)) 0x100) in
  let arg = Kernel.map_user k ~size:(16 + (10 * 24)) in
  write_install_batch k ~arg ~domain:0 rs;
  checki "whole batch refused with -ENOSPC" Kernel.enospc
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_install ~arg);
  checki "count unchanged" 60
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0);
  checkb "regions unchanged" true
    (Policy.Engine.regions (Policy.Policy_module.engine pm) = before);
  (* a malformed record anywhere in the batch rejects the whole batch
     before any mutation *)
  let bad = [ region 0xA0000 0x100; region 0xB0000 0x100 ] in
  write_install_batch k ~arg ~domain:0 bad;
  Kernel.write k ~addr:(arg + 16 + 24 + 8) ~size:8 0 (* record 1: zero len *);
  checki "malformed record rejects batch" Kernel.einval
    (Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_install ~arg);
  checkb "still unchanged" true
    (Policy.Engine.regions (Policy.Policy_module.engine pm) = before)

let test_ioctl_install_validation () =
  let k, _pm = setup_pm () in
  let io cmd arg = Kernel.ioctl k ~dev:"carat" ~cmd ~arg in
  let open Policy.Policy_module in
  checki "bad pointer" Kernel.einval (io ioctl_install (-8));
  let arg = Kernel.map_user k ~size:64 in
  write_install_batch k ~arg ~domain:0 [];
  checki "empty batch" Kernel.einval (io ioctl_install arg);
  Kernel.write k ~addr:(arg + 8) ~size:8 (install_batch_max + 1);
  checki "oversized batch" Kernel.erange (io ioctl_install arg);
  write_install_batch k ~arg ~domain:(-3) [ region 0xA000 0x100 ];
  checki "negative domain" Kernel.einval (io ioctl_install arg);
  (* a domain id > 0 with policy domains never enabled *)
  write_install_batch k ~arg ~domain:7 [ region 0xA000 0x100 ];
  checki "unknown domain" Kernel.einval (io ioctl_install arg)

(* ---------- policy domains ---------- *)

let test_domain_create_destroy_churn () =
  let k = fresh () in
  let dm = Policy.Domain.create k in
  Policy.Domain.set_verify dm true;
  let r = region 0x10000 0x1000 in
  let last_id = ref 0 in
  for _ = 1 to 20 do
    let d = Policy.Domain.create_domain dm in
    let id = Policy.Domain.dom_id d in
    checkb "ids never reused" true (id > !last_id);
    last_id := id;
    checki "install" 0 (Policy.Domain.install_regions dm ~domain:id [ r ]);
    checkb "allowed while live" true
      (Policy.Domain.check dm ~domain:id ~addr:0x10010 ~size:8 ~flags:1);
    checkb "destroyed" true (Policy.Domain.destroy_domain dm id);
    (* a destroyed domain fails closed, even with warm shadow slots *)
    checkb "denied after destroy" false
      (Policy.Domain.check dm ~domain:id ~addr:0x10010 ~size:8 ~flags:1)
  done;
  checki "no domains left" 0 (Policy.Domain.count dm);
  checki "zero stale allows across the churn" 0
    (Policy.Domain.stale_allows dm)

let test_domain_promotion_to_interval () =
  let k = fresh () in
  let dm = Policy.Domain.create ~fast_capacity:4 k in
  let d = Policy.Domain.create_domain dm in
  let id = Policy.Domain.dom_id d in
  let rs = List.init 6 (fun i -> region (0x10000 + (i * 0x2000)) 0x1000) in
  checki "install past the fast path" 0
    (Policy.Domain.install_regions dm ~domain:id rs);
  Alcotest.(check string) "promoted" "interval" (Policy.Domain.dom_structure d);
  checkb "promotion counted" true (Policy.Domain.promotions dm > 0);
  checki "all regions live" 6 (List.length (Policy.Domain.dom_regions d));
  List.iter
    (fun (r : Policy.Region.t) ->
      checkb "region served" true
        (Policy.Domain.check dm ~domain:id ~addr:r.Policy.Region.base ~size:8
           ~flags:1))
    rs;
  checkb "gap denied" false
    (Policy.Domain.check dm ~domain:id ~addr:0x11800 ~size:8 ~flags:1)

let test_domain_isolation () =
  let k = fresh () in
  let dm = Policy.Domain.create k in
  let a = Policy.Domain.dom_id (Policy.Domain.create_domain dm ~name:"a") in
  let b = Policy.Domain.dom_id (Policy.Domain.create_domain dm ~name:"b") in
  checki "a install" 0
    (Policy.Domain.install_regions dm ~domain:a [ region 0x10000 0x1000 ]);
  checki "b install" 0
    (Policy.Domain.install_regions dm ~domain:b [ region 0x20000 0x1000 ]);
  checkb "a sees a" true (Policy.Domain.check dm ~domain:a ~addr:0x10010 ~size:8 ~flags:1);
  checkb "a cannot see b" false (Policy.Domain.check dm ~domain:a ~addr:0x20010 ~size:8 ~flags:1);
  checkb "b sees b" true (Policy.Domain.check dm ~domain:b ~addr:0x20010 ~size:8 ~flags:1);
  checkb "b cannot see a" false (Policy.Domain.check dm ~domain:b ~addr:0x10010 ~size:8 ~flags:1)

let test_domain_shadow_epoch_invalidation () =
  let k = fresh () in
  let dm = Policy.Domain.create k in
  Policy.Domain.set_verify dm true;
  let d = Policy.Domain.create_domain dm in
  let id = Policy.Domain.dom_id d in
  checki "install" 0
    (Policy.Domain.install_regions dm ~domain:id [ region 0x10000 0x2000 ]);
  checkb "cold check" true
    (Policy.Domain.check dm ~domain:id ~addr:0x10100 ~size:8 ~flags:1);
  checkb "warm check" true
    (Policy.Domain.check dm ~domain:id ~addr:0x10100 ~size:8 ~flags:1);
  checkb "shadow hit recorded" true (Policy.Domain.dom_shadow_hits d > 0);
  let hits = Policy.Domain.dom_shadow_hits d in
  (* a policy change bumps the epoch: the warm slot must NOT answer *)
  checki "second install" 0
    (Policy.Domain.install_regions dm ~domain:id [ region 0x30000 0x1000 ]);
  checkb "still allowed after epoch bump" true
    (Policy.Domain.check dm ~domain:id ~addr:0x10100 ~size:8 ~flags:1);
  checki "stale slot did not serve" hits (Policy.Domain.dom_shadow_hits d);
  checki "no stale allows" 0 (Policy.Domain.stale_allows dm)

(* Whole-batch rollback at the domain layer: a batch exceeding the
   interval tier's ceiling installs nothing. *)
let test_domain_install_rollback () =
  let k = fresh () in
  let dm = Policy.Domain.create ~fast_capacity:4 ~big_capacity:8 k in
  let d = Policy.Domain.create_domain dm in
  let id = Policy.Domain.dom_id d in
  let rs = List.init 5 (fun i -> region (0x10000 + (i * 0x2000)) 0x1000) in
  checki "first batch" 0 (Policy.Domain.install_regions dm ~domain:id rs);
  let epoch = Policy.Domain.dom_epoch d in
  let more = List.init 5 (fun i -> region (0x40000 + (i * 0x2000)) 0x1000) in
  checki "over-ceiling batch refused with -ENOSPC" Kernel.enospc
    (Policy.Domain.install_regions dm ~domain:id more);
  checki "regions unchanged" 5 (List.length (Policy.Domain.dom_regions d));
  checki "epoch unchanged by the failed batch" epoch
    (Policy.Domain.dom_epoch d);
  checkb "old policy still serves" true
    (Policy.Domain.check dm ~domain:id ~addr:0x10010 ~size:8 ~flags:1);
  checkb "refused batch not visible" false
    (Policy.Domain.check dm ~domain:id ~addr:0x40010 ~size:8 ~flags:1)

let test_domain_ioctl_roundtrip () =
  let k, pm = setup_pm () in
  let io cmd arg = Kernel.ioctl k ~dev:"carat" ~cmd ~arg in
  let open Policy.Policy_module in
  let a = io ioctl_domain_create 0 in
  let b = io ioctl_domain_create 1 (* default-allow *) in
  checki "first domain id" 1 a;
  checki "second domain id" 2 b;
  checki "two live" 2 (io ioctl_domain_count 0);
  let arg = Kernel.map_user k ~size:(16 + (2 * 24)) in
  write_install_batch k ~arg ~domain:a
    [ region 0x10000 0x1000; region 0x20000 0x1000 ];
  checki "batch into domain" 0 (io ioctl_install arg);
  let stat = Kernel.map_user k ~size:64 in
  Kernel.write k ~addr:stat ~size:8 a;
  checki "stats ok" 0 (io ioctl_domain_stats stat);
  let w i = Kernel.read k ~addr:(stat + (i * 8)) ~size:8 in
  checki "stats regions" 2 (w 0);
  checki "stats structure linear" 0 (w 5);
  (match domains pm with
  | None -> Alcotest.fail "domains not enabled by the ioctls"
  | Some dm ->
    checkb "deny domain denies" false
      (Policy.Domain.check dm ~domain:a ~addr:0x5000 ~size:8 ~flags:1);
    checkb "default-allow domain allows" true
      (Policy.Domain.check dm ~domain:b ~addr:0x5000 ~size:8 ~flags:1));
  checki "destroy" 0 (io ioctl_domain_destroy b);
  checki "destroy again" Kernel.einval (io ioctl_domain_destroy b);
  checki "destroy root refused" Kernel.einval (io ioctl_domain_destroy 0);
  checki "one left" 1 (io ioctl_domain_count 0);
  Kernel.write k ~addr:stat ~size:8 b;
  checki "stats of dead domain" Kernel.einval (io ioctl_domain_stats stat);
  write_install_batch k ~arg ~domain:b [ region 0x10000 0x1000 ];
  checki "install into dead domain" Kernel.einval (io ioctl_install arg)

let test_domains_procfs () =
  let k, pm = setup_pm () in
  let fs = Kernsvc.Kernfs.create k in
  let proc = Kernsvc.Procfs.install fs pm in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "placeholder before enabling" true
    (contains (Kernsvc.Procfs.read_domains proc) "not enabled");
  let id =
    Kernel.ioctl k ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_domain_create
      ~arg:0
  in
  checki "created" 1 id;
  let s = Kernsvc.Procfs.read_domains proc in
  checkb "renders the domain row" true (contains s "dom 1");
  checkb "renders shard geometry" true (contains s "shards")

(* ---------- policy files with domains ---------- *)

let test_policy_file_domain_directive () =
  let t =
    Policy.Policy_file.parse
      "domain e1000e\ndefault deny\nregion 0x1000 0x100 rw\n"
  in
  Alcotest.(check string) "parsed" "e1000e" t.Policy.Policy_file.domain;
  let text = Policy.Policy_file.to_string t in
  let t2 = Policy.Policy_file.parse text in
  Alcotest.(check string) "round trip" "e1000e" t2.Policy.Policy_file.domain;
  Alcotest.(check string) "root policy has no domain" ""
    Policy.Policy_file.kernel_only.Policy.Policy_file.domain

let test_policy_lint_domain_capacity () =
  let rs = List.init 65 (fun i -> region (i * 0x2000) 0x1000) in
  let base =
    {
      Policy.Policy_file.default_allow = false;
      mode = Policy.Policy_module.Panic;
      domain = "";
      regions = rs;
    }
  in
  let codes t =
    List.map (fun f -> f.Policy.Policy_lint.code) (Policy.Policy_lint.lint t)
  in
  (* root policy: 65 regions overflow the fixed linear table — an error *)
  checkb "root overflows" true (List.mem "E-capacity" (codes base));
  (* the same table in a named domain merely promotes to the interval
     tier — a warning, not an error *)
  let domained = { base with Policy.Policy_file.domain = "net0" } in
  let cs = codes domained in
  checkb "domained is a promotion warning" true (List.mem "W-fastpath" cs);
  checkb "domained is not an error" false (List.mem "E-capacity" cs)

let () =
  Alcotest.run "policy"
    [
      ( "regions",
        [
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "permits" `Quick test_region_permits;
          Alcotest.test_case "overlaps" `Quick test_region_overlaps;
          Alcotest.test_case "validation" `Quick test_region_validation;
          Alcotest.test_case "canonical policies" `Quick test_canonical_policies;
        ] );
      ( "linear",
        [
          Alcotest.test_case "capacity" `Quick test_linear_add_capacity;
          Alcotest.test_case "first match wins" `Quick test_linear_first_match_wins;
          Alcotest.test_case "remove keeps order" `Quick test_linear_remove_preserves_order;
          Alcotest.test_case "scan counts" `Quick test_linear_scan_counts;
        ] );
      ( "alternative-structures",
        [
          QCheck_alcotest.to_alcotest prop_sorted_equiv;
          QCheck_alcotest.to_alcotest prop_splay_equiv;
          QCheck_alcotest.to_alcotest prop_rbtree_equiv;
          QCheck_alcotest.to_alcotest prop_cached_equiv;
          QCheck_alcotest.to_alcotest prop_itree_equiv;
          QCheck_alcotest.to_alcotest prop_rbtree_invariants;
          Alcotest.test_case "rbtree rejects overlap" `Quick test_rbtree_rejects_overlap;
          Alcotest.test_case "rbtree log depth" `Quick test_rbtree_logarithmic_scan;
          Alcotest.test_case "rbtree remove" `Quick test_rbtree_remove;
          Alcotest.test_case "sorted rejects overlap" `Quick test_sorted_rejects_overlap;
          Alcotest.test_case "splay rejects overlap" `Quick test_splay_rejects_overlap;
          Alcotest.test_case "splay popularity" `Quick test_splay_popularity;
          Alcotest.test_case "cached hit rate" `Quick test_cached_hit_rate;
          Alcotest.test_case "cached invalidation" `Quick test_cached_invalidation;
          Alcotest.test_case "bloom allowed stays allowed" `Quick test_bloom_no_false_negative_for_allowed;
          Alcotest.test_case "bloom clear" `Quick test_bloom_clear_resets_filter;
        ] );
      ( "engine",
        [
          Alcotest.test_case "default deny" `Quick test_engine_default_deny;
          Alcotest.test_case "default allow" `Quick test_engine_default_allow;
          Alcotest.test_case "permission mismatch" `Quick test_engine_permission_mismatch;
          Alcotest.test_case "set policy" `Quick test_engine_set_policy;
          Alcotest.test_case "scan depth cost" `Quick test_engine_cost_grows_with_scan_depth;
        ] );
      ( "policy-file",
        [
          Alcotest.test_case "round trip" `Quick test_policy_file_roundtrip;
          Alcotest.test_case "parse forms" `Quick test_policy_file_parse;
          Alcotest.test_case "parse errors" `Quick test_policy_file_errors;
          Alcotest.test_case "apply" `Quick test_policy_file_apply;
        ] );
      ( "policy-module",
        [
          Alcotest.test_case "guard allows" `Quick test_guard_allows;
          Alcotest.test_case "guard denies+logs" `Quick test_guard_denies_and_logs;
          Alcotest.test_case "guard panics" `Quick test_guard_panics_in_panic_mode;
          Alcotest.test_case "ioctl round trip" `Quick test_ioctl_roundtrip;
          Alcotest.test_case "ioctl bad region" `Quick test_ioctl_bad_region;
          Alcotest.test_case "ioctl validation" `Quick test_ioctl_validation;
          Alcotest.test_case "ioctl audit+selfheal" `Quick
            test_ioctl_audit_selfheal;
          Alcotest.test_case "ioctl set default" `Quick test_ioctl_set_default;
          Alcotest.test_case "ioctl stats" `Quick test_ioctl_stats;
          Alcotest.test_case "ioctl clear" `Quick test_ioctl_clear;
        ] );
      ( "interval-tree",
        [
          Alcotest.test_case "overlaps and duplicates" `Quick
            test_itree_overlaps_and_duplicates;
          Alcotest.test_case "remove first occurrence" `Quick
            test_itree_remove_first_occurrence;
          QCheck_alcotest.to_alcotest prop_itree_invariants;
          Alcotest.test_case "pruned lookup" `Quick test_itree_pruned_lookup;
        ] );
      ( "bugfix-sweep",
        [
          Alcotest.test_case "linear mirror consistency" `Quick
            test_linear_mirror_consistency;
          Alcotest.test_case "sorted mirror consistency" `Quick
            test_sorted_mirror_consistency;
          QCheck_alcotest.to_alcotest prop_all_kinds_remove_differential;
          Alcotest.test_case "duplicate-base remove" `Quick
            test_duplicate_base_remove;
          Alcotest.test_case "capacity boundary, all kinds" `Quick
            test_capacity_boundary_all_kinds;
        ] );
      ( "batched-install",
        [
          Alcotest.test_case "ioctl add enospc" `Quick test_ioctl_add_enospc;
          Alcotest.test_case "install atomic" `Quick test_ioctl_install_atomic;
          Alcotest.test_case "install rollback" `Quick
            test_ioctl_install_rollback;
          Alcotest.test_case "install validation" `Quick
            test_ioctl_install_validation;
        ] );
      ( "domains",
        [
          Alcotest.test_case "create/destroy churn" `Quick
            test_domain_create_destroy_churn;
          Alcotest.test_case "promotion to interval" `Quick
            test_domain_promotion_to_interval;
          Alcotest.test_case "isolation" `Quick test_domain_isolation;
          Alcotest.test_case "shadow epoch invalidation" `Quick
            test_domain_shadow_epoch_invalidation;
          Alcotest.test_case "install rollback" `Quick
            test_domain_install_rollback;
          Alcotest.test_case "ioctl round trip" `Quick
            test_domain_ioctl_roundtrip;
          Alcotest.test_case "procfs" `Quick test_domains_procfs;
          Alcotest.test_case "policy-file domain directive" `Quick
            test_policy_file_domain_directive;
          Alcotest.test_case "lint domain capacity" `Quick
            test_policy_lint_domain_capacity;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "commit hook tracks mutations" `Quick
            test_integrity_commit_hook_tracks_mutations;
          Alcotest.test_case "stale allow without integrity" `Quick
            test_stale_allow_without_integrity;
          Alcotest.test_case "shadow degrade+repromote" `Quick
            test_shadow_degrade_and_repromote;
          Alcotest.test_case "shadow semantic cross-check" `Quick
            test_shadow_semantic_crosscheck;
          Alcotest.test_case "ic degrade+repromote" `Quick
            test_ic_degrade_and_repromote;
          Alcotest.test_case "bounded retries then abandon" `Quick
            test_bounded_retries_then_abandon;
          Alcotest.test_case "selfheal procfs" `Quick test_selfheal_procfs;
        ] );
    ]
