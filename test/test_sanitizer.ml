(* The memory sanitizer: shadow-state unit tests (redzone OOB,
   use-after-free through the quarantine, typed kfree errors with
   attribution), the pay-for-what-you-use cycle contract, the QCheck
   heap-consistency property over random kmalloc/kfree sequences, the
   retire-vs-rebuild race regression, and the Alloc_lint dataflow
   findings (seeded bugs caught, must-join uncertainty never reported). *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let mk_kernel ?(sanitize = true) () =
  let k = Kernel.create ~require_signature:false Machine.Presets.r350 in
  if sanitize then Kernel.enable_sanitizer k;
  k

let last_kind k =
  match List.rev (Kernel.san_reports k) with
  | r :: _ -> r.Kernel.sr_kind
  | [] -> "none"

(* ---------- shadow checks at the faulting access ---------- *)

let test_oob_redzones () =
  let k = mk_kernel () in
  let base = Kernel.kmalloc ~tag:"buf" k ~size:37 in
  ignore (Kernel.read k ~addr:base ~size:8);
  checki "in-bounds access is clean" 0 (Kernel.san_report_count k);
  (* partial-granule tail: byte 37 is inside the last 8-byte granule but
     past the object *)
  ignore (Kernel.read k ~addr:(base + 37) ~size:1);
  checki "tail OOB reported" 1 (Kernel.san_report_count k);
  checkb "kind oob" true (last_kind k = "oob");
  ignore (Kernel.write k ~addr:(base - 1) ~size:1 0xff);
  checki "left redzone reported" 2 (Kernel.san_report_count k);
  ignore (Kernel.read k ~addr:(base + 64) ~size:8);
  checki "right redzone reported" 3 (Kernel.san_report_count k);
  (* attribution names the allocation *)
  (match List.rev (Kernel.san_reports k) with
  | r :: _ ->
    checkb "attributed" true (r.Kernel.sr_attribution <> None);
    (match r.Kernel.sr_attribution with
    | Some a -> checkb "names the tag" true (contains a "buf")
    | None -> ())
  | [] -> Alcotest.fail "no report")

let test_use_after_free () =
  let k = mk_kernel () in
  let base = Kernel.kmalloc ~tag:"victim" k ~size:64 in
  (match Kernel.kfree k ~addr:base with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first free refused");
  ignore (Kernel.read k ~addr:base ~size:8);
  checki "UAF reported at the access" 1 (Kernel.san_report_count k);
  checkb "kind uaf" true (last_kind k = "uaf")

let test_quarantine_delays_reuse () =
  let k = mk_kernel () in
  let a = Kernel.kmalloc k ~size:128 in
  (match Kernel.kfree k ~addr:a with Ok () -> () | Error _ -> assert false);
  let b = Kernel.kmalloc k ~size:128 in
  checkb "freed block not immediately reused" true (a <> b)

(* ---------- satellite: typed kfree errors ---------- *)

let test_kfree_typed_errors () =
  let k = mk_kernel () in
  let base = Kernel.kmalloc ~tag:"once" k ~size:48 in
  checkb "first free ok" true (Kernel.kfree k ~addr:base = Ok ());
  (match Kernel.kfree k ~addr:base with
  | Error (Kernel.Free_double d) ->
    checkb "double free describes the block" true (contains d "once")
  | _ -> Alcotest.fail "double free not typed");
  checkb "double free reported" true (last_kind k = "double-free");
  (match Kernel.kfree k ~addr:(base + 8) with
  | Error Kernel.Free_invalid -> ()
  | _ -> Alcotest.fail "interior free not typed");
  (match Kernel.kfree k ~addr:0xdead0000 with
  | Error Kernel.Free_invalid -> ()
  | _ -> Alcotest.fail "wild free not typed");
  (* heap state is untouched by the failed frees: a fresh alloc works *)
  let b2 = Kernel.kmalloc k ~size:48 in
  checkb "heap survives bad frees" true (b2 <> 0)

let test_kfree_typed_without_sanitizer () =
  (* tracking (and the typed errors) are always on; only marking,
     quarantine and per-access checks are gated *)
  let k = mk_kernel ~sanitize:false () in
  let base = Kernel.kmalloc k ~size:32 in
  checkb "free ok" true (Kernel.kfree k ~addr:base = Ok ());
  checkb "double free still typed" true
    (match Kernel.kfree k ~addr:base with
    | Error (Kernel.Free_double _) -> true
    | _ -> false);
  checki "but no sanitizer reports" 0 (Kernel.san_report_count k)

(* ---------- pay-for-what-you-use ---------- *)

let test_access_cost_gated () =
  let measure sanitize =
    let k = mk_kernel ~sanitize () in
    let base = Kernel.kmalloc k ~size:64 in
    let m = Kernel.machine k in
    let c0 = Machine.Model.cycles m in
    ignore (Kernel.read k ~addr:base ~size:8);
    Machine.Model.cycles m - c0
  in
  let off = measure false and on = measure true in
  checki "shadow check costs exactly san_check_cycles"
    Kernel.san_check_cycles (on - off)

let test_alloc_sequence_identical_when_off () =
  let seq sanitize =
    let k = mk_kernel ~sanitize:false () in
    ignore sanitize;
    List.map (fun s -> Kernel.kmalloc k ~size:s) [ 8; 24; 100; 64 ]
  in
  checkb "two sanitizer-off kernels allocate identically" true
    (seq false = seq false)

(* ---------- QCheck: heap consistency under random sequences ---------- *)

let prop_no_live_overlap =
  QCheck.Test.make ~count:40
    ~name:"random kmalloc/kfree: live allocations never overlap"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let k = mk_kernel () in
      let rng = Machine.Rng.create seed in
      let live = ref [] in
      let ok = ref true in
      for _ = 1 to 120 do
        let roll = Machine.Rng.int rng 10 in
        if roll < 6 || !live = [] then begin
          let size = 1 + Machine.Rng.int rng 200 in
          let b = Kernel.kmalloc k ~size in
          live := (b, size) :: !live
        end
        else if roll < 9 then begin
          let i = Machine.Rng.int rng (List.length !live) in
          let b, _ = List.nth !live i in
          live := List.filteri (fun j _ -> j <> i) !live;
          if Kernel.kfree k ~addr:b <> Ok () then ok := false
        end
        else begin
          (* a bogus free must be a typed error, never corruption *)
          match Kernel.kfree k ~addr:(0x1234 + Machine.Rng.int rng 4096) with
          | Error _ -> ()
          | Ok () -> ok := false
        end;
        if not (Sanitizer.Shadow.no_live_overlap (Kernel.shadow k)) then
          ok := false
      done;
      (* drain: every live pointer frees exactly once, and the shadow
         agrees with the allocator that nothing is left live *)
      List.iter
        (fun (b, _) -> if Kernel.kfree k ~addr:b <> Ok () then ok := false)
        !live;
      !ok
      && Sanitizer.Shadow.live_bytes (Kernel.shadow k) = 0
      && Sanitizer.Shadow.no_live_overlap (Kernel.shadow k))

(* ---------- satellite: retire vs watchdog rebuild, same quantum ---------- *)

let test_retire_vs_rebuild_no_race () =
  let v = Race_suites.retire_vs_rebuild () in
  checkb ("retire-vs-rebuild: " ^ v.Race_suites.v_detail) true
    v.Race_suites.v_pass;
  checki "zero reports" 0 v.Race_suites.v_reports

let test_seeded_race_flagged () =
  let v = Race_suites.seeded_stale_window () in
  checkb ("seeded race: " ^ v.Race_suites.v_detail) true v.Race_suites.v_pass

(* ---------- Alloc_lint: the forward dataflow lints ---------- *)

let codes m =
  List.map (fun f -> f.Analysis.Kir_lint.code) (Analysis.Alloc_lint.lint m)

let test_lint_double_free () =
  let b = Kir.Builder.create "m" in
  let open Kir.Types in
  ignore (Kir.Builder.start_func b "df" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.call_unit b "kfree" [ p ]
  | None -> ());
  Kir.Builder.ret b None;
  checkb "double free caught" true
    (List.mem "L-double-free" (codes (Kir.Builder.modul b)))

let test_lint_use_after_free () =
  let b = Kir.Builder.create "m" in
  let open Kir.Types in
  ignore (Kir.Builder.start_func b "uaf" ~params:[] ~ret:(Some I64));
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    ignore (Kir.Builder.icmp b Eq I64 p (Imm 0));
    Kir.Builder.call_unit b "kfree" [ p ];
    let v = Kir.Builder.load b I64 p in
    Kir.Builder.ret b (Some v)
  | None -> Kir.Builder.ret b None);
  checkb "UAF caught" true
    (List.mem "L-use-after-free" (codes (Kir.Builder.modul b)))

let test_lint_leak_and_unchecked () =
  let b = Kir.Builder.create "m" in
  let open Kir.Types in
  ignore (Kir.Builder.start_func b "leak" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p -> ignore (Kir.Builder.icmp b Eq I64 p (Imm 0))
  | None -> ());
  Kir.Builder.ret b None;
  ignore (Kir.Builder.start_func b "unchecked" ~params:[] ~ret:(Some I64));
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    let v = Kir.Builder.load b I64 p in
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.ret b (Some v)
  | None -> Kir.Builder.ret b None);
  let cs = codes (Kir.Builder.modul b) in
  checkb "leak-on-exit warned" true (List.mem "L-leak-on-exit" cs);
  checkb "unchecked deref warned" true (List.mem "W-unchecked-alloc" cs)

(* must-info join: a pointer freed on only one path is Top at the merge,
   so neither the kfree nor the load after it may be reported *)
let test_lint_maybe_freed_not_reported () =
  let b = Kir.Builder.create "m" in
  let open Kir.Types in
  ignore (Kir.Builder.start_func b "maybe" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
  | Some p ->
    let c = Kir.Builder.icmp b Eq I64 p (Imm 0) in
    let bb_f = Kir.Builder.new_block b () in
    let bb_s = Kir.Builder.new_block b () in
    let bb_j = Kir.Builder.new_block b () in
    Kir.Builder.cond_br b c ~if_true:bb_f ~if_false:bb_s;
    Kir.Builder.position_at b bb_f;
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.br b bb_j;
    Kir.Builder.position_at b bb_s;
    Kir.Builder.br b bb_j;
    Kir.Builder.position_at b bb_j;
    ignore (Kir.Builder.load b I64 p);
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.ret b None
  | None -> Kir.Builder.ret b None);
  let cs = codes (Kir.Builder.modul b) in
  checkb "no false double-free" true (not (List.mem "L-double-free" cs));
  checkb "no false UAF" true (not (List.mem "L-use-after-free" cs))

let test_lint_driver_clean () =
  let driver =
    Nic.Driver_gen.generate ~module_scale:12 ~rx_queues:2
      ~tx_queues:Nic.Regs.max_tx_queues ()
  in
  checki "zero errors on the driver-scale KIR" 0
    (List.length (Analysis.Kir_lint.errors (Analysis.Alloc_lint.lint driver)))

(* ---------- /proc/carat/san ---------- *)

let test_procfs_san () =
  let k = mk_kernel () in
  let fs = Kernsvc.Kernfs.create k in
  let pm = Policy.Policy_module.install k in
  let proc = Kernsvc.Procfs.install fs pm in
  let base = Kernel.kmalloc ~tag:"proc-buf" k ~size:16 in
  ignore (Kernel.read k ~addr:(base + 17) ~size:1);
  let body = Kernsvc.Procfs.read_san proc in
  checkb "reports sanitizer on" true (contains body "sanitizer: on");
  checkb "shows the report" true (contains body "proc-buf")

let () =
  Alcotest.run "sanitizer"
    [
      ( "shadow",
        [
          Alcotest.test_case "redzone OOB at access" `Quick test_oob_redzones;
          Alcotest.test_case "use after free" `Quick test_use_after_free;
          Alcotest.test_case "quarantine delays reuse" `Quick
            test_quarantine_delays_reuse;
        ] );
      ( "kfree",
        [
          Alcotest.test_case "typed errors" `Quick test_kfree_typed_errors;
          Alcotest.test_case "typed with sanitizer off" `Quick
            test_kfree_typed_without_sanitizer;
        ] );
      ( "cost",
        [
          Alcotest.test_case "per-access cost gated" `Quick
            test_access_cost_gated;
          Alcotest.test_case "off allocator deterministic" `Quick
            test_alloc_sequence_identical_when_off;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_no_live_overlap ] );
      ( "race",
        [
          Alcotest.test_case "retire vs rebuild, same quantum" `Quick
            test_retire_vs_rebuild_no_race;
          Alcotest.test_case "seeded stale window flagged" `Quick
            test_seeded_race_flagged;
        ] );
      ( "alloc-lint",
        [
          Alcotest.test_case "double free" `Quick test_lint_double_free;
          Alcotest.test_case "use after free" `Quick test_lint_use_after_free;
          Alcotest.test_case "leak + unchecked" `Quick
            test_lint_leak_and_unchecked;
          Alcotest.test_case "maybe-freed stays quiet" `Quick
            test_lint_maybe_freed_not_reported;
          Alcotest.test_case "driver-scale clean" `Quick
            test_lint_driver_clean;
        ] );
      ( "procfs",
        [ Alcotest.test_case "/proc/carat/san" `Quick test_procfs_san ] );
    ]
