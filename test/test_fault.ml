(* Fault library: single-fault outcomes, campaign invariants, seeded
   determinism, and the QCheck containment property. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- single outcomes ---------- *)

let quarantine = Fault.Harness.Carat Policy.Policy_module.Quarantine
let panic = Fault.Harness.Carat Policy.Policy_module.Panic
let audit = Fault.Harness.Carat Policy.Policy_module.Audit

let test_wild_store_baseline () =
  let o =
    Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:Fault.Harness.Baseline
      ~seed:11 ()
  in
  checkb "loaded" true o.Fault.Harness.loaded;
  checkb "escaped" true (o.Fault.Harness.escaped_bytes > 0);
  checkb "not contained" false (Fault.Harness.contained o);
  checkb "kernel survives unaware" false o.Fault.Harness.panicked

let test_wild_store_panic () =
  let o = Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:panic ~seed:11 () in
  checkb "panicked" true o.Fault.Harness.panicked;
  checkb "first fault recorded" true o.Fault.Harness.first_fault_recorded;
  checki "nothing escaped" 0 o.Fault.Harness.escaped_bytes

let test_wild_store_quarantine () =
  let o =
    Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:quarantine ~seed:11 ()
  in
  checkb "kernel alive" false o.Fault.Harness.panicked;
  checkb "quarantined" true o.Fault.Harness.quarantined;
  checkb "entry returned eio" true (o.Fault.Harness.rc = Some Kernel.eio);
  checki "nothing escaped" 0 o.Fault.Harness.escaped_bytes;
  checkb "re-entry blocked" true
    (o.Fault.Harness.reenter_blocked = Some true);
  checkb "recovered" true (o.Fault.Harness.recovered = Some true)

let test_wild_store_audit () =
  let o = Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:audit ~seed:11 () in
  checkb "kernel alive" false o.Fault.Harness.panicked;
  checkb "denial recorded" true (o.Fault.Harness.denied > 0);
  checkb "store landed anyway" true (o.Fault.Harness.escaped_bytes > 0)

let test_tamper_rejected_at_load () =
  let o =
    Fault.Harness.run_one ~cls:Fault.Inject.Ir_tamper ~mode:quarantine ~seed:11 ()
  in
  checkb "rejected" false o.Fault.Harness.loaded;
  checkb "reports signature" true
    (match o.Fault.Harness.load_error with
    | Some e ->
      (* the loader's diagnosis, not a generic failure *)
      String.length e >= 9 && String.sub e 0 9 = "signature"
    | None -> false);
  checki "nothing escaped" 0 o.Fault.Harness.escaped_bytes;
  let b =
    Fault.Harness.run_one ~cls:Fault.Inject.Ir_tamper
      ~mode:Fault.Harness.Baseline ~seed:11 ()
  in
  checkb "baseline loads it" true b.Fault.Harness.loaded;
  checkb "baseline lets it land" true (b.Fault.Harness.escaped_bytes > 0)

(* ---------- tier-corruption outcomes (self-healing) ---------- *)

let corruption_classes =
  [
    Fault.Inject.Shadow_corrupt;
    Fault.Inject.Icache_corrupt;
    Fault.Inject.Rcu_instance_corrupt;
  ]

let test_corruption_quarantine_heals () =
  List.iter
    (fun cls ->
      let name = Fault.Inject.cls_to_string cls in
      let o = Fault.Harness.run_one ~cls ~mode:quarantine ~seed:11 () in
      checkb (name ^ " kernel alive") false o.Fault.Harness.panicked;
      checkb (name ^ " contained") true (Fault.Harness.contained o);
      checkb (name ^ " watchdog detected") true
        (o.Fault.Harness.sh_detected = Some true);
      checkb (name ^ " tier rebuilt") true
        (o.Fault.Harness.sh_rebuilt = Some true);
      checkb (name ^ " zero stale allows") true
        (o.Fault.Harness.sh_stale = Some 0);
      checkb (name ^ " re-entry blocked") true
        (o.Fault.Harness.reenter_blocked = Some true);
      checkb (name ^ " recovered") true
        (o.Fault.Harness.recovered = Some true))
    corruption_classes

let test_corruption_panic_contains () =
  List.iter
    (fun cls ->
      let name = Fault.Inject.cls_to_string cls in
      let o = Fault.Harness.run_one ~cls ~mode:panic ~seed:11 () in
      checkb (name ^ " contained") true (Fault.Harness.contained o);
      checkb (name ^ " detected") true
        (o.Fault.Harness.sh_detected = Some true);
      checkb (name ^ " no stale allow") true
        (o.Fault.Harness.sh_stale = Some 0))
    corruption_classes

let test_corruption_baseline_escapes () =
  (* without the integrity layer the same wild writes land: the payload
     store goes through the corrupt tier unchallenged *)
  List.iter
    (fun cls ->
      let name = Fault.Inject.cls_to_string cls in
      let o =
        Fault.Harness.run_one ~cls ~mode:Fault.Harness.Baseline ~seed:11 ()
      in
      checkb (name ^ " escaped") true (o.Fault.Harness.escaped_bytes > 0);
      checkb (name ^ " unnoticed") false o.Fault.Harness.panicked;
      checkb (name ^ " no self-heal data") true
        (o.Fault.Harness.sh_detected = None))
    corruption_classes

(* ---------- campaign ---------- *)

let small = lazy (Fault.Campaign.run { Fault.Campaign.faults = 24; seed = 7 })

let test_campaign_invariants () =
  match Fault.Campaign.check (Lazy.force small) with
  | [] -> ()
  | fails -> Alcotest.failf "campaign: %s" (String.concat "; " fails)

let test_campaign_matrix () =
  let r = Lazy.force small in
  let tot m = Fault.Campaign.totals r ~mode:m in
  let p = tot panic and q = tot quarantine in
  let a = tot audit and b = tot Fault.Harness.Baseline in
  checki "panic 100%" p.Fault.Campaign.injected p.Fault.Campaign.contained;
  checki "quarantine 100%" q.Fault.Campaign.injected q.Fault.Campaign.contained;
  checki "quarantine keeps kernel up" q.Fault.Campaign.injected
    q.Fault.Campaign.alive;
  checki "baseline contains nothing" 0 b.Fault.Campaign.contained;
  (* audit contains exactly the pipeline classes (load rejection): every
     runtime class's store goes through in audit mode *)
  let audit_pipeline =
    List.fold_left
      (fun acc cls ->
        if Fault.Inject.is_pipeline_fault cls then
          acc + (Fault.Campaign.cell r ~cls ~mode:audit).Fault.Campaign.injected
        else acc)
      0 Fault.Inject.all_classes
  in
  checki "audit contains pipeline classes" audit_pipeline
    a.Fault.Campaign.contained;
  checki "every re-entry rejected" q.Fault.Campaign.reenter_total
    q.Fault.Campaign.reenter_ok;
  checki "every recovery succeeded" q.Fault.Campaign.recover_total
    q.Fault.Campaign.recovered

let test_campaign_deterministic () =
  let cfg = { Fault.Campaign.faults = 12; seed = 99 } in
  let a = Fault.Campaign.render (Fault.Campaign.run cfg) in
  let b = Fault.Campaign.render (Fault.Campaign.run cfg) in
  Alcotest.(check string) "byte-for-byte reproducible" a b

let test_campaign_opt_parity () =
  (* the containment matrix must not depend on the victim pipeline's
     guard-optimization tier: optimized guards check supersets of the
     original bytes, so every fault is caught (or rejected at load)
     exactly as for the unoptimized compile. Denial *counts* may shrink
     (merged checks), so compare the verdict cells, not the render. *)
  let cfg = { Fault.Campaign.faults = 8; seed = 7 } in
  let a = Fault.Campaign.run cfg in
  let b = Fault.Campaign.run ~opt:Passes.Pipeline.O_aggressive cfg in
  let project r =
    List.concat_map
      (fun cls ->
        List.map
          (fun mode ->
            let c = Fault.Campaign.cell r ~cls ~mode in
            ( Fault.Inject.cls_to_string cls,
              Fault.Harness.mode_to_string mode,
              ( c.Fault.Campaign.injected,
                c.Fault.Campaign.contained,
                c.Fault.Campaign.alive,
                c.Fault.Campaign.rejected_at_load,
                c.Fault.Campaign.quarantines ) ))
          r.Fault.Campaign.modes)
      r.Fault.Campaign.classes
  in
  checkb "optimized campaign passes its own invariants" true
    (Fault.Campaign.passes b);
  List.iter2
    (fun (cls, mode, va) (_, _, vb) ->
      if va <> vb then
        Alcotest.failf "containment cell %s/%s differs across opt tiers" cls
          mode)
    (project a) (project b)

let test_campaign_seed_sensitivity () =
  (* different seeds give different victims (salted stores), yet the same
     verdict — the report text differs only if counts differ, so compare
     a raw outcome instead *)
  let o1 = Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:panic ~seed:1 () in
  let o2 = Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode:panic ~seed:2 () in
  checkb "both contained" true
    (Fault.Harness.contained o1 && Fault.Harness.contained o2)

(* ---------- containment property ---------- *)

let prop_containment =
  QCheck.Test.make ~name:"guarded module never escapes writable regions"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed -> Fault.Harness.run_random ~seed () = 0)

let () =
  Alcotest.run "fault"
    [
      ( "outcomes",
        [
          Alcotest.test_case "wild store / baseline" `Quick
            test_wild_store_baseline;
          Alcotest.test_case "wild store / panic" `Quick test_wild_store_panic;
          Alcotest.test_case "wild store / quarantine" `Quick
            test_wild_store_quarantine;
          Alcotest.test_case "wild store / audit" `Quick test_wild_store_audit;
          Alcotest.test_case "tamper rejected at load" `Quick
            test_tamper_rejected_at_load;
        ] );
      ( "selfheal",
        [
          Alcotest.test_case "corruption quarantine heals" `Quick
            test_corruption_quarantine_heals;
          Alcotest.test_case "corruption panic contains" `Quick
            test_corruption_panic_contains;
          Alcotest.test_case "corruption baseline escapes" `Quick
            test_corruption_baseline_escapes;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "invariants" `Quick test_campaign_invariants;
          Alcotest.test_case "matrix" `Quick test_campaign_matrix;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "opt-tier parity" `Slow test_campaign_opt_parity;
          Alcotest.test_case "seed sensitivity" `Quick
            test_campaign_seed_sensitivity;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_containment ] );
    ]
