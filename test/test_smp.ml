(* The SMP layer: deterministic scheduler interleaving, RCU policy
   publication (no partially-written table is ever observable), IPI
   shootdown of remote site inline caches, merged per-CPU trace
   accounting, the ioctl routing through the publish path, and the
   stale-allow QCheck property over the update-storm workload. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let r350 = Machine.Presets.r350

(* two disjoint probe regions; the probe address lives in [r2] *)
let r1 = Policy.Region.v ~tag:"r1" ~base:0x10000 ~len:0x1000 ~prot:Policy.Region.prot_rw ()
let r2 = Policy.Region.v ~tag:"r2" ~base:0x20000 ~len:0x1000 ~prot:Policy.Region.prot_rw ()
let probe_addr = 0x20010

let table_a = [ r1; r2 ]
let table_b = [ r2; r1 ]

let mk_system ?(cpus = 2) ?(seed = 7) () =
  let kernel = Kernel.create ~require_signature:false ~seed r350 in
  let pm = Policy.Policy_module.install ~site_cache:true kernel in
  Policy.Policy_module.set_policy pm table_a;
  let smp = Smp.System.create ~seed ~params:r350 ~cpus kernel pm in
  (kernel, pm, smp)

(* ---------- scheduler determinism ---------- *)

let sched_log ~seed ~cpus ~ops =
  let count = Array.make cpus 0 in
  let log, stats =
    Smp.Sched.run ~seed
      (Array.init cpus (fun i () ->
           count.(i) <- count.(i) + 1;
           count.(i) < ops))
  in
  (log, stats, count)

let test_sched_deterministic () =
  let log1, s1, c1 = sched_log ~seed:5 ~cpus:3 ~ops:10 in
  let log2, s2, c2 = sched_log ~seed:5 ~cpus:3 ~ops:10 in
  checkb "same seed, same interleave" true (log1 = log2);
  checki "same op count" s1.Smp.Sched.ops s2.Smp.Sched.ops;
  checki "same slice count" s1.Smp.Sched.slices s2.Smp.Sched.slices;
  checkb "same per-cpu counts" true (c1 = c2);
  checki "every op logged" 30 (List.length log1);
  (* every CPU ran to completion *)
  Array.iter (fun c -> checki "cpu drained" 10 c) c1

let test_sched_quantum_interleaves () =
  (* quanta are 1..3 ops, so with 2 CPUs the log must actually alternate
     (not run one CPU to completion first) *)
  let log, _, _ = sched_log ~seed:3 ~cpus:2 ~ops:20 in
  let switches =
    let rec go = function
      | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + go rest
      | _ -> 0
    in
    go log
  in
  checkb "interleaved, not serial" true (switches > 5)

(* full-system determinism: same seed + workload => identical
   interleaving, per-CPU cycle counts, and trace event streams *)
let smp_run ~seed =
  let cfg =
    {
      Smp_testbed.default_config with
      cpus = 4;
      seed;
      machine = r350;
    }
  in
  let tb = Smp_testbed.create ~config:cfg () in
  let traces = Smp.System.enable_tracing ~capacity:256 (Smp_testbed.smp tb) in
  let r = Smp_testbed.run_pktgen ~count:60 ~storm:15 tb in
  let stream =
    List.map
      (fun (cpu, e) -> Printf.sprintf "cpu%d %s" cpu (Trace.format_event e))
      (Trace.merged_events (Array.to_list traces))
  in
  (r, stream)

let test_system_deterministic () =
  let r1, s1 = smp_run ~seed:42 in
  let r2, s2 = smp_run ~seed:42 in
  checkb "identical interleaving" true
    (r1.Smp_testbed.interleave = r2.Smp_testbed.interleave);
  checkb "identical per-CPU cycle counts" true
    (Array.for_all2
       (fun (a : Smp_testbed.cpu_result) b ->
         a.Smp_testbed.cr_cycles = b.Smp_testbed.cr_cycles)
       r1.Smp_testbed.per_cpu r2.Smp_testbed.per_cpu);
  checkb "identical throughput" true (r1.Smp_testbed.pps = r2.Smp_testbed.pps);
  checki "identical publication count" r1.Smp_testbed.publications
    r2.Smp_testbed.publications;
  checkb "trace streams non-empty" true (s1 <> []);
  checkb "identical merged trace event streams" true (s1 = s2)

(* ---------- RCU publication ---------- *)

(* A CPU mid-guard never observes a half-written table: CPU 0 storms
   whole-policy replaces (both tables allow the probe) while CPU 1
   checks the probe address every operation. Under the RCU route every
   check must allow; stale-allow paranoia is on throughout. *)
let test_rcu_no_partial_table () =
  let _, pm, smp = mk_system () in
  let engine = Smp.System.engine smp in
  Policy.Engine.set_verify engine true;
  let denies = ref 0 and checks = ref 0 and writes = ref 0 in
  let steps =
    [|
      (fun () ->
        incr writes;
        let t = if !writes land 1 = 0 then table_a else table_b in
        checki "replace accepted" 0
          (Policy.Policy_module.replace_policy pm t);
        !writes < 24);
      (fun () ->
        incr checks;
        (match
           Policy.Engine.check engine ~addr:probe_addr ~size:8
             ~flags:Policy.Region.prot_write
         with
        | Policy.Engine.Allowed _ -> ()
        | Policy.Engine.Denied _ -> incr denies);
        !checks < 80);
    |]
  in
  ignore (Smp.System.run smp steps);
  checki "no deny ever observed mid-replace" 0 !denies;
  checki "no stale allows" 0 (Policy.Engine.stale_allows engine);
  checki "every replace published a generation" 24
    (Policy.Engine.generation engine);
  let rs = Smp.Rcu.stats (Smp.System.rcu smp) in
  checki "every generation retired after grace" rs.Smp.Rcu.publications
    rs.Smp.Rcu.retired

(* negative control: the same probe DOES see a partial state when the
   replace is done in place as separate structure edits — proving the
   regression test above is sensitive to what it claims to catch *)
let test_in_place_replace_is_observable () =
  let _, _, smp = mk_system () in
  let engine = Smp.System.engine smp in
  (* detach the RCU route: back to classic in-place mutations *)
  let pm_steps = ref 0 and denies = ref 0 and checks = ref 0 in
  let steps =
    [|
      (fun () ->
        incr pm_steps;
        (match !pm_steps with
        | 1 -> Policy.Engine.clear engine
        | 2 -> (
          match Policy.Engine.add_region engine r1 with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        | 3 -> (
          match Policy.Engine.add_region engine r2 with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        | _ -> ());
        !pm_steps < 4);
      (fun () ->
        incr checks;
        (match
           Policy.Engine.check engine ~addr:probe_addr ~size:8
             ~flags:Policy.Region.prot_write
         with
        | Policy.Engine.Allowed _ -> ()
        | Policy.Engine.Denied _ -> incr denies);
        !checks < 12);
    |]
  in
  ignore (Smp.System.run smp steps);
  checkb "probe observes the partially-built table" true (!denies > 0)

let test_publish_returns_old_generation () =
  let kernel = Kernel.create ~require_signature:false r350 in
  let pm = Policy.Policy_module.install kernel in
  let engine = Policy.Policy_module.engine pm in
  Policy.Policy_module.set_policy pm table_a;
  let inst = Policy.Engine.build_instance engine table_b in
  let old = Policy.Engine.publish engine inst ~default_allow:false in
  checki "generation bumped" 1 (Policy.Engine.generation engine);
  (* the retired instance still holds the old table *)
  checki "old generation intact" 2 (Policy.Structure.count old);
  checkb "old generation is table A" true
    ((List.hd (Policy.Structure.regions old)).Policy.Region.base
    = r1.Policy.Region.base);
  (* the live table switched atomically *)
  checkb "live generation is table B" true
    ((List.hd (Policy.Engine.regions engine)).Policy.Region.base
    = r2.Policy.Region.base)

(* ---------- IPI shootdown ---------- *)

let test_ipi_flushes_remote_cache () =
  let _, pm, smp = mk_system () in
  let traces = Smp.System.enable_tracing ~capacity:64 smp in
  let cpus = Smp.System.cpus smp in
  let w = ref 0 and r = ref 0 in
  let steps =
    [|
      (fun () ->
        incr w;
        if !w = 1 then
          checki "replace ok" 0 (Policy.Policy_module.replace_policy pm table_b);
        !w < 2);
      (fun () ->
        incr r;
        ignore
          (Policy.Engine.check (Smp.System.engine smp) ~addr:probe_addr
             ~size:8 ~flags:Policy.Region.prot_write);
        !r < 4);
    |]
  in
  ignore (Smp.System.run smp steps);
  let rs = Smp.Rcu.stats (Smp.System.rcu smp) in
  checki "one IPI sent" 1 rs.Smp.Rcu.ipis_sent;
  checki "one IPI taken" 1 rs.Smp.Rcu.ipis_taken;
  checkb "IPI cost charged to the remote CPU" true
    (cpus.(1).Smp.Cpu.ipi_cycles > 0);
  (* the flush landed in CPU 1's ring, not CPU 0's *)
  let has_flush tr =
    List.exists
      (fun (e : Trace.event) -> e.Trace.kind = Trace.Ipi_flush)
      (Trace.events tr)
  in
  checkb "cpu1 traced the ipi-flush" true (has_flush traces.(1));
  checkb "cpu0 did not" false (has_flush traces.(0))

(* ---------- ioctl routing (satellite: set-mode/region ioctls) ---------- *)

let test_ioctls_route_through_rcu () =
  let kernel, pm, smp = mk_system () in
  let engine = Smp.System.engine smp in
  checki "no publications yet" 0 (Policy.Engine.generation engine);
  (* region add via the ioctl ABI: base/len/prot block *)
  let arg = Kernel.kmalloc kernel ~size:24 in
  Kernel.write kernel ~addr:arg ~size:8 0x30000;
  Kernel.write kernel ~addr:(arg + 8) ~size:8 0x1000;
  Kernel.write kernel ~addr:(arg + 16) ~size:8 Policy.Region.prot_rw;
  checki "ioctl add ok" 0
    (Policy.Policy_module.handle_ioctl pm kernel
       ~cmd:Policy.Policy_module.ioctl_add ~arg);
  checki "add published a generation" 1 (Policy.Engine.generation engine);
  checki "region landed" 3 (Policy.Engine.count engine);
  (* remove routes too *)
  Kernel.write kernel ~addr:arg ~size:8 0x30000;
  checki "ioctl remove ok" 0
    (Policy.Policy_module.handle_ioctl pm kernel
       ~cmd:Policy.Policy_module.ioctl_remove ~arg);
  checki "remove published a generation" 2 (Policy.Engine.generation engine);
  (* set-mode: scalar applied in place (no table generation) but the
     shootdown still fires at the other CPU *)
  let cpus = Smp.System.cpus smp in
  cpus.(1).Smp.Cpu.ipi_pending <- false;
  checki "ioctl set-mode ok" 0
    (Policy.Policy_module.handle_ioctl pm kernel
       ~cmd:Policy.Policy_module.ioctl_set_mode
       ~arg:
         (Policy.Policy_module.on_deny_to_int Policy.Policy_module.Quarantine));
  checkb "set-mode shot down the remote cache" true
    cpus.(1).Smp.Cpu.ipi_pending;
  checki "mode did not fabricate a table generation" 2
    (Policy.Engine.generation engine)

let test_single_cpu_stays_in_place () =
  let _, pm, smp = mk_system ~cpus:1 () in
  let engine = Smp.System.engine smp in
  checki "one view only" 1 (List.length (Policy.Engine.views engine));
  checki "mutation applied" 0
    (Policy.Policy_module.apply pm
       (Policy.Policy_module.M_add
          (Policy.Region.v ~tag:"x" ~base:0x40000 ~len:0x100
             ~prot:Policy.Region.prot_rw ())));
  (* in-place path: the epoch moves, the RCU generation does not *)
  checki "no RCU generation on 1 CPU" 0 (Policy.Engine.generation engine)

(* ---------- merged per-CPU trace accounting (satellite) ---------- *)

let test_merged_drop_accounting () =
  let kernel = Kernel.create ~require_signature:false r350 in
  let mk () =
    let tr = Trace.create ~capacity:8 kernel in
    Trace.start tr;
    tr
  in
  let t0 = mk () and t1 = mk () and t2 = mk () in
  let put tr n =
    for i = 0 to n - 1 do
      Trace.on_lifecycle tr Trace.Mode_change ~info:i
    done
  in
  (* 20 -> 12 dropped; 9 -> 1 dropped; 5 -> 0 dropped *)
  put t0 20;
  put t1 9;
  put t2 5;
  checki "ring 0 drops" 12 (Trace.dropped t0);
  checki "ring 1 drops" 1 (Trace.dropped t1);
  checki "ring 2 drops" 0 (Trace.dropped t2);
  let ts = [ t0; t1; t2 ] in
  checki "merged drops are the exact sum" 13 (Trace.merged_dropped ts);
  checki "merged recorded are the exact sum" 34 (Trace.merged_recorded ts);
  let merged = Trace.merged_events ts in
  checki "merged stream holds the survivors" (8 + 8 + 5)
    (List.length merged);
  (* ordered by cycle stamp, stable across equal stamps *)
  let rec sorted = function
    | (_, (a : Trace.event)) :: ((_, b) :: _ as rest) ->
      a.Trace.cycles <= b.Trace.cycles && sorted rest
    | _ -> true
  in
  checkb "merged stream cycle-ordered" true (sorted merged);
  (* a reader draining one ring must not disturb the others' accounting *)
  ignore (Trace.read_next t0);
  put t1 10;
  checki "drops still sum, not race" (12 + 11) (Trace.merged_dropped ts)

(* The lifecycle events of a self-healing episode (tier-degraded /
   tier-rebuilt) survive deny floods that wrap the per-CPU rings, and the
   merged stream keeps them in episode order with exact drop sums. *)
let test_tier_events_survive_wraparound () =
  let kernel = Kernel.create ~require_signature:false r350 in
  let mk () =
    let tr = Trace.create ~capacity:8 kernel in
    Trace.start tr;
    tr
  in
  (* cpu0 and cpu2 take the deny flood; cpu1 is where the watchdog fires *)
  let t0 = mk () and t1 = mk () and t2 = mk () in
  let deny tr n =
    for i = 0 to n - 1 do
      Trace.on_lifecycle tr Trace.Guard_deny ~info:i
    done
  in
  deny t0 6;
  Trace.on_lifecycle t1 Trace.Tier_degraded ~info:1;
  deny t0 6;
  deny t2 10;
  Trace.on_lifecycle t1 Trace.Tier_rebuilt ~info:1;
  deny t0 2;
  checki "flood ring 0 wrapped" 6 (Trace.dropped t0);
  checki "flood ring 2 wrapped" 2 (Trace.dropped t2);
  checki "watchdog ring kept everything" 0 (Trace.dropped t1);
  let ts = [ t0; t1; t2 ] in
  checki "merged drops are the exact sum" 8 (Trace.merged_dropped ts);
  checki "merged recorded are the exact sum" 26 (Trace.merged_recorded ts);
  let merged = Trace.merged_events ts in
  checki "survivors" (8 + 2 + 8) (List.length merged);
  (* merged order is (cycles, cpu, seq) *)
  let rec ordered = function
    | (c1, (a : Trace.event)) :: ((c2, b) :: _ as rest) ->
      (a.Trace.cycles < b.Trace.cycles
      || (a.Trace.cycles = b.Trace.cycles
         && (c1 < c2 || (c1 = c2 && a.Trace.seq < b.Trace.seq))))
      && ordered rest
    | _ -> true
  in
  checkb "merged stream strictly (cycles,cpu,seq)-ordered" true
    (ordered merged);
  let idx_of kind =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing from merged stream" (Trace.kind_to_string kind)
      | (_, (e : Trace.event)) :: rest ->
        if e.Trace.kind = kind then i else go (i + 1) rest
    in
    go 0 merged
  in
  let d = idx_of Trace.Tier_degraded and r = idx_of Trace.Tier_rebuilt in
  checkb "degraded precedes rebuilt after the merge" true (d < r);
  (* every pre-degrade deny on cpu0 was overwritten by the flood, so in
     the merged stream the episode opener precedes every cpu0 survivor *)
  List.iteri
    (fun i (cpu, (e : Trace.event)) ->
      if cpu = 0 && e.Trace.kind = Trace.Guard_deny then
        checkb "cpu0 survivors are all post-degrade" true (i > d))
    merged;
  (* a reader draining the flooded ring leaves the merged totals exact *)
  ignore (Trace.read_next t0);
  checki "drain does not disturb the sum" 8 (Trace.merged_dropped ts)

(* Corruption racing RCU publication: CPU 0 storms whole-table replaces
   while CPU 1 corrupts the live instance out-of-band and then runs the
   watchdog audit in the same quantum. The audit must detect, the repair
   must ride the RCU publish path (generation moves past the storm's),
   and the engine must end healthy with zero stale allows. *)
let test_corruption_races_publication () =
  let _, pm, smp = mk_system () in
  let engine = Smp.System.engine smp in
  let ig = Policy.Policy_module.enable_integrity pm in
  Policy.Engine.set_verify engine true;
  let storms = 12 in
  let writes = ref 0 and checks = ref 0 and denies = ref 0 in
  let corrupted = ref false and audits = ref 0 in
  let steps =
    [|
      (fun () ->
        if !writes < storms then begin
          incr writes;
          let t = if !writes land 1 = 0 then table_a else table_b in
          checki "replace accepted" 0 (Policy.Policy_module.replace_policy pm t)
        end
        else begin
          (* keep servicing grace periods while the heal completes *)
          incr checks;
          match
            Policy.Engine.check engine ~addr:probe_addr ~size:8
              ~flags:Policy.Region.prot_write
          with
          | Policy.Engine.Allowed _ -> ()
          | Policy.Engine.Denied _ -> incr denies
        end;
        !checks < 40);
      (fun () ->
        if (not !corrupted) && !writes >= 4 then begin
          (* wild write to the live instance, then the watchdog fires
             before the next publication can paper over it *)
          corrupted :=
            Policy.Engine.corrupt_instance engine ~base:r1.Policy.Region.base
              ~prot:0;
          checkb "corruption landed between publications" true !corrupted;
          checkb "audit detects the race" true (Policy.Integrity.audit ig > 0)
        end
        else if !corrupted then incr audits;
        if !corrupted && !audits > 0 then ignore (Policy.Integrity.audit ig);
        !audits < 12);
    |]
  in
  ignore (Smp.System.run smp steps);
  checki "storm fully published" storms !writes;
  checkb "detection recorded" true (Policy.Integrity.detections ig > 0);
  checkb "instance tier rebuilt" true (Policy.Integrity.rebuilds ig > 0);
  checkb "healthy after the episode" true (Policy.Integrity.healthy ig);
  checki "full tier restored" 2 (Policy.Integrity.tier_level ig);
  (* the rebuild's publish rides the same RCU route as the storm *)
  checkb "repair published a generation beyond the storm" true
    (Policy.Engine.generation engine > storms);
  checki "no stale allow during or after the episode" 0
    (Policy.Engine.stale_allows engine);
  checki "probes after the storm never denied" 0 !denies

(* ---------- update-storm property ---------- *)

(* concurrent policy updates never yield a stale allow once the grace
   period completes: paranoid verification is on inside run_pktgen, and
   every published generation must retire *)
let prop_no_stale_allow_under_storm =
  QCheck.Test.make ~count:6
    ~name:"update storm yields zero stale allows and full retirement"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cfg =
        {
          Smp_testbed.default_config with
          cpus = 2 + (seed mod 3);
          seed;
          machine = (if seed land 1 = 0 then r350 else Machine.Presets.r415);
        }
      in
      let tb = Smp_testbed.create ~config:cfg () in
      let r = Smp_testbed.run_pktgen ~count:60 ~storm:12 tb in
      r.Smp_testbed.stale_allows = 0
      && r.Smp_testbed.publications > 0
      && r.Smp_testbed.retired = r.Smp_testbed.publications
      && r.Smp_testbed.send_errors = 0)

(* ---------- multi-queue scaling sanity ---------- *)

let test_smp_throughput_scales () =
  let run cpus =
    let cfg = { Smp_testbed.default_config with cpus; seed = 9 } in
    let tb = Smp_testbed.create ~config:cfg () in
    (Smp_testbed.run_pktgen ~count:150 tb).Smp_testbed.pps
  in
  let p1 = run 1 and p2 = run 2 and p4 = run 4 in
  checkb "2 CPUs beat 1" true (p2 > p1);
  checkb "4 CPUs beat 2" true (p4 > p2);
  checkb "4-CPU efficiency at least 70%" true (p4 /. (4.0 *. p1) >= 0.70)


(* ---------- batched install under SMP ---------- *)

(* ioctl_install's whole batch rides ONE RCU generation swap: a reader
   mid-storm observes the old table or old+batch, never a partial
   prefix. The visible region count is the observable. *)
let test_rcu_install_batch_atomic () =
  let _, pm, smp = mk_system () in
  let engine = Smp.System.engine smp in
  Policy.Engine.set_verify engine true;
  let batch =
    List.init 8 (fun i ->
        Policy.Region.v ~base:(0x40000 + (i * 0x1000)) ~len:0x100
          ~prot:Policy.Region.prot_rw ())
  in
  let installed = ref false and partial = ref 0 and checks = ref 0 in
  let steps =
    [|
      (fun () ->
        checki "batch accepted" 0
          (Policy.Policy_module.apply pm
             (Policy.Policy_module.M_install batch));
        installed := true;
        false);
      (fun () ->
        incr checks;
        let n = Policy.Engine.count engine in
        if n <> 2 && n <> 10 then incr partial;
        (* the probe stays allowed across the install *)
        (match
           Policy.Engine.check engine ~addr:probe_addr ~size:8
             ~flags:Policy.Region.prot_write
         with
        | Policy.Engine.Allowed _ -> ()
        | Policy.Engine.Denied _ -> Alcotest.fail "probe denied mid-install");
        !checks < 40);
    |]
  in
  ignore (Smp.System.run smp steps);
  checkb "install ran" true !installed;
  checki "no partially-visible batch" 0 !partial;
  checki "batch fully live" 10 (Policy.Engine.count engine);
  checki "no stale allows" 0 (Policy.Engine.stale_allows engine);
  let rs = Smp.Rcu.stats (Smp.System.rcu smp) in
  checki "whole batch was one publication" 1 rs.Smp.Rcu.publications

(* A batch that cannot fit publishes NOTHING through the RCU route. *)
let test_rcu_install_batch_rollback () =
  let _, pm, smp = mk_system () in
  let engine = Smp.System.engine smp in
  let big =
    List.init 63 (fun i ->
        Policy.Region.v ~base:(0x100000 + (i * 0x1000)) ~len:0x100
          ~prot:Policy.Region.prot_rw ())
  in
  ignore smp;
  checki "over-capacity batch refused with -ENOSPC" Kernel.enospc
    (Policy.Policy_module.apply pm (Policy.Policy_module.M_install big));
  checki "nothing installed" 2 (Policy.Engine.count engine);
  checki "no publication for the refused batch" 0
    (Smp.Rcu.stats (Smp.System.rcu smp)).Smp.Rcu.publications

(* ---------- multi-domain churn under SMP ---------- *)

(* One CPU churns per-domain policies (install / remove / teardown)
   while the other CPUs hammer Domain.check across several domains with
   paranoid verification on: zero stale allows, and destroyed domains
   fail closed from every CPU. *)
let test_multidomain_churn_no_stale () =
  let kernel = Kernel.create ~require_signature:false ~seed:11 r350 in
  let pm = Policy.Policy_module.install kernel in
  let smp = Smp.System.create ~seed:11 ~params:r350 ~cpus:4 kernel pm in
  let dm = Policy.Policy_module.enable_domains pm in
  Policy.Domain.set_verify dm true;
  let doms =
    Array.init 3 (fun i ->
        let d =
          Policy.Domain.create_domain dm ~name:(Printf.sprintf "tenant%d" i)
        in
        let id = Policy.Domain.dom_id d in
        checki "seed install" 0
          (Policy.Domain.install_regions dm ~domain:id
             [
               Policy.Region.v
                 ~base:(0x10000 * (i + 1))
                 ~len:0x1000 ~prot:Policy.Region.prot_rw ();
             ]);
        id)
  in
  let writer_ops = ref 0 in
  let writer () =
    incr writer_ops;
    let id = doms.(!writer_ops mod 3) in
    (match !writer_ops mod 3 with
    | 0 ->
      ignore
        (Policy.Domain.install_regions dm ~domain:id
           [
             Policy.Region.v
               ~base:(0x100000 + (!writer_ops * 0x1000))
               ~len:0x100 ~prot:Policy.Region.prot_rw ();
           ])
    | 1 ->
      ignore
        (Policy.Domain.remove_region dm ~domain:id
         ~base:(0x100000 + ((!writer_ops - 1) * 0x1000)))
    | _ ->
      (* teardown/recreate churn on a scratch domain *)
      let d = Policy.Domain.create_domain dm in
      ignore (Policy.Domain.destroy_domain dm (Policy.Domain.dom_id d)));
    !writer_ops < 30
  in
  let reader i =
    let ops = ref 0 in
    fun () ->
      incr ops;
      let id = doms.(!ops mod 3) in
      let want = !ops mod 3 = i mod 3 in
      ignore want;
      ignore
        (Policy.Domain.check dm ~domain:id
           ~addr:(0x10000 * ((!ops mod 3) + 1))
           ~size:8 ~flags:1);
      (* cross-domain probe must stay denied *)
      Alcotest.(check bool)
        "cross-domain denied" false
        (Policy.Domain.check dm ~domain:id ~addr:0x9000 ~size:8 ~flags:1);
      !ops < 60
  in
  let steps =
    Array.init 4 (fun i -> if i = 0 then writer else reader i)
  in
  ignore (Smp.System.run smp steps);
  checki "zero stale allows across domain churn" 0
    (Policy.Domain.stale_allows dm);
  checki "three tenants still live" 3 (Policy.Domain.count dm);
  (* every tenant's base region survived the churn *)
  Array.iteri
    (fun i id ->
      checkb "tenant region live" true
        (Policy.Domain.check dm ~domain:id
           ~addr:(0x10000 * (i + 1))
           ~size:8 ~flags:1))
    doms

let () =
  Alcotest.run "smp"
    [
      ( "sched",
        [
          Alcotest.test_case "same seed, same interleaving" `Quick
            test_sched_deterministic;
          Alcotest.test_case "quanta interleave CPUs" `Quick
            test_sched_quantum_interleaves;
          Alcotest.test_case "full system run is reproducible" `Slow
            test_system_deterministic;
        ] );
      ( "rcu",
        [
          Alcotest.test_case "no partial table mid-guard" `Quick
            test_rcu_no_partial_table;
          Alcotest.test_case "in-place replace IS observable (control)"
            `Quick test_in_place_replace_is_observable;
          Alcotest.test_case "publish swaps generations atomically" `Quick
            test_publish_returns_old_generation;
          Alcotest.test_case "IPI flushes the remote cache" `Quick
            test_ipi_flushes_remote_cache;
          Alcotest.test_case "ioctls route through the publish path" `Quick
            test_ioctls_route_through_rcu;
          Alcotest.test_case "single CPU keeps the in-place path" `Quick
            test_single_cpu_stays_in_place;
        ] );
      ( "trace",
        [
          Alcotest.test_case "per-CPU ring drops sum exactly" `Quick
            test_merged_drop_accounting;
          Alcotest.test_case "tier events survive wraparound" `Quick
            test_tier_events_survive_wraparound;
        ] );
      ( "selfheal",
        [
          Alcotest.test_case "corruption races publication" `Quick
            test_corruption_races_publication;
        ] );
      ( "batched-install",
        [
          Alcotest.test_case "batch is one RCU generation" `Quick
            test_rcu_install_batch_atomic;
          Alcotest.test_case "refused batch publishes nothing" `Quick
            test_rcu_install_batch_rollback;
        ] );
      ( "domains",
        [
          Alcotest.test_case "multi-domain churn, zero stale" `Quick
            test_multidomain_churn_no_stale;
        ] );
      ( "storm",
        [
          QCheck_alcotest.to_alcotest prop_no_stale_allow_under_storm;
          Alcotest.test_case "throughput scales with CPUs" `Slow
            test_smp_throughput_scales;
        ] );
    ]
