(* Kernel sim: memory, layout, translation, allocation, symbols, module
   loading, ioctl devices, panic, klog. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fresh ?(require_signature = false) ?(require_certificate = false) () =
  Kernel.create ~require_signature ~require_certificate Machine.Presets.r350

(* ---------- physical memory ---------- *)

let test_memory_rw () =
  let m = Kernel.Memory.create ~size:4096 in
  Kernel.Memory.write m 0 ~size:8 0x1122334455667788;
  checki "read back" 0x1122334455667788 (Kernel.Memory.read m 0 ~size:8);
  checki "little endian low byte" 0x88 (Kernel.Memory.read_u8 m 0);
  checki "partial read" 0x7788 (Kernel.Memory.read m 0 ~size:2)

let test_memory_bounds () =
  let m = Kernel.Memory.create ~size:64 in
  (match Kernel.Memory.read m 60 ~size:8 with
  | exception Kernel.Memory.Bad_phys_access _ -> ()
  | _ -> Alcotest.fail "oob read");
  match Kernel.Memory.write m (-1) ~size:1 0 with
  | exception Kernel.Memory.Bad_phys_access _ -> ()
  | _ -> Alcotest.fail "negative write"

let test_memory_blit () =
  let m = Kernel.Memory.create ~size:128 in
  Kernel.Memory.blit_string m ~dst:10 "hello";
  Alcotest.(check string) "read_string" "hello"
    (Kernel.Memory.read_string m ~src:10 ~len:5);
  Kernel.Memory.blit m ~src:10 ~dst:20 ~len:5;
  Alcotest.(check string) "copied" "hello"
    (Kernel.Memory.read_string m ~src:20 ~len:5);
  Kernel.Memory.fill m ~dst:10 ~len:5 'x';
  Alcotest.(check string) "filled" "xxxxx"
    (Kernel.Memory.read_string m ~src:10 ~len:5)

(* ---------- layout ---------- *)

let test_layout_predicates () =
  checkb "user" true (Kernel.Layout.is_user_addr 0x5000);
  checkb "not user" false (Kernel.Layout.is_user_addr Kernel.Layout.kernel_base);
  checkb "kernel" true (Kernel.Layout.is_kernel_addr Kernel.Layout.direct_map_base);
  checkb "module" true (Kernel.Layout.is_module_addr Kernel.Layout.module_base);
  checkb "mmio" true (Kernel.Layout.is_mmio_addr Kernel.Layout.mmio_base);
  checki "direct map round trip" 0x1234
    (Kernel.Layout.phys_of_direct_map (Kernel.Layout.direct_map_of_phys 0x1234))

(* ---------- virtual access ---------- *)

let test_direct_map_access () =
  let k = fresh () in
  let va = Kernel.kmalloc k ~size:64 in
  Kernel.write k ~addr:va ~size:8 0xABCD;
  checki "read back" 0xABCD (Kernel.read k ~addr:va ~size:8);
  (* the same bytes are visible through DMA (no cost, same phys) *)
  checki "dma view" 0xABCD (Kernel.dma_read k ~addr:va ~size:8)

let test_kernel_image_access () =
  let k = fresh () in
  let va = Kernel.Layout.kernel_data_base + 0x100 in
  Kernel.write k ~addr:va ~size:4 0x42;
  checki "image data" 0x42 (Kernel.read k ~addr:va ~size:4)

let test_fault_on_unmapped () =
  let k = fresh () in
  match Kernel.read k ~addr:0x0DEA_D000_0000_0000 ~size:8 with
  | exception Kernel.Fault _ -> ()
  | _ -> Alcotest.fail "unmapped read succeeded"

let test_user_mapping () =
  let k = fresh () in
  let ua = Kernel.map_user k ~size:4096 in
  checkb "in user half" true (Kernel.Layout.is_user_addr ua);
  Kernel.write k ~addr:ua ~size:8 77;
  checki "user rw" 77 (Kernel.read k ~addr:ua ~size:8)

let test_module_alloc_distinct () =
  let k = fresh () in
  let a = Kernel.module_alloc k ~size:128 in
  let b = Kernel.module_alloc k ~size:128 in
  checkb "distinct" true (a <> b);
  checkb "module area" true (Kernel.Layout.is_module_addr a);
  Kernel.write k ~addr:a ~size:8 1;
  Kernel.write k ~addr:b ~size:8 2;
  checki "no aliasing" 1 (Kernel.read k ~addr:a ~size:8)

let test_kmalloc_alignment () =
  let k = fresh () in
  let a = Kernel.kmalloc k ~size:10 in
  let b = Kernel.kmalloc k ~size:10 in
  checki "64B aligned" 0 (a land 63);
  checki "64B aligned 2" 0 (b land 63);
  checkb "no overlap" true (b >= a + 10)

let test_out_of_memory_panics () =
  let k = Kernel.create ~require_signature:false ~phys_size:(8 * 1024 * 1024)
      Machine.Presets.r350 in
  match Kernel.kmalloc k ~size:(32 * 1024 * 1024) with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "oom not detected"

(* ---------- mmio ---------- *)

let test_ioremap_dispatch () =
  let k = fresh () in
  let last_write = ref (0, 0, 0) in
  let r =
    Kernel.ioremap k ~name:"dev" ~size:4096
      ~read:(fun off size -> off * 100 + size)
      ~write:(fun off size v -> last_write := (off, size, v))
  in
  let base = r.Kernel.mmio_virt in
  checkb "in mmio window" true (Kernel.Layout.is_mmio_addr base);
  checki "read handler" (8 * 100 + 4) (Kernel.read k ~addr:(base + 8) ~size:4);
  Kernel.write k ~addr:(base + 16) ~size:4 0xBEEF;
  Alcotest.(check (triple int int int)) "write handler" (16, 4, 0xBEEF) !last_write

let test_mmio_costs_more_than_ram () =
  let k = fresh () in
  let r = Kernel.ioremap k ~name:"d" ~size:64 ~read:(fun _ _ -> 0)
      ~write:(fun _ _ _ -> ()) in
  let heap = Kernel.kmalloc k ~size:64 in
  ignore (Kernel.read k ~addr:heap ~size:8) (* warm *);
  let m = Kernel.machine k in
  let c0 = Machine.Model.cycles m in
  ignore (Kernel.read k ~addr:heap ~size:8);
  let ram = Machine.Model.cycles m - c0 in
  let c1 = Machine.Model.cycles m in
  ignore (Kernel.read k ~addr:r.Kernel.mmio_virt ~size:4);
  let mmio = Machine.Model.cycles m - c1 in
  checkb "mmio slower" true (mmio > ram + 50)

(* ---------- symbols ---------- *)

let test_native_symbols () =
  let k = fresh () in
  Kernel.register_native k "triple" (fun _ args -> args.(0) * 3);
  checki "native call" 21 (Kernel.call_symbol k "triple" [| 7 |])

let test_symbol_address_stability () =
  let k = fresh () in
  Kernel.register_native k "f" (fun _ _ -> 0);
  let a1 = Option.get (Kernel.symbol_address k "f") in
  let a2 = Option.get (Kernel.symbol_address k "f") in
  checki "stable" a1 a2;
  Alcotest.(check (option string)) "reverse map" (Some "f")
    (Kernel.symbol_of_address k a1);
  checkb "missing symbol" true (Kernel.symbol_address k "nope" = None)

let test_call_missing_symbol_panics () =
  let k = fresh () in
  match Kernel.call_symbol k "ghost" [||] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "missing symbol call"

(* ---------- module loading ---------- *)

let tiny_module ?(name = "tiny") () =
  let b = Kir.Builder.create name in
  ignore (Kir.Builder.declare_global b "state" ~size:16);
  ignore (Kir.Builder.start_func b "ping" ~params:[] ~ret:(Some Kir.Types.I64));
  Kir.Builder.ret b (Some (Kir.Types.Imm 1));
  Kir.Builder.modul b

let test_insmod_basic () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  (match Kernel.insmod k (tiny_module ()) with
  | Ok lm ->
    Alcotest.(check string) "name" "tiny" lm.Kernel.lm_name;
    checki "ping" 1 (Kernel.call_symbol k "ping" [||]);
    checkb "logged" true (Kernel.Klog.contains (Kernel.log k) "module tiny loaded")
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e))

let test_insmod_requires_signature () =
  let k = fresh ~require_signature:true () in
  match Kernel.insmod k (tiny_module ()) with
  | Error (Kernel.Signature_rejected Passes.Signing.Unsigned) -> ()
  | Ok _ -> Alcotest.fail "unsigned module accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e)

let test_insmod_signed_ok () =
  let k = fresh ~require_signature:true () in
  ignore (Vm.Interp.install k);
  Kernel.register_native k "carat_guard" (fun _ _ -> 0);
  let m = tiny_module () in
  ignore (Passes.Pipeline.compile m);
  match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "signed rejected: %s" (Kernel.load_error_to_string e)

let test_insmod_requires_certificate () =
  let k = fresh ~require_certificate:true () in
  ignore (Vm.Interp.install k);
  Kernel.register_native k "carat_guard" (fun _ _ -> 0);
  (* a compiled module carries a valid certificate: accepted *)
  let m = tiny_module () in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insert_module k m with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "certified rejected: %s" (Kernel.load_error_to_string e));
  (* signed but never certified (baseline pipeline): missing *)
  let m2 = tiny_module ~name:"uncert" () in
  ignore
    (Passes.Pass.run_pipeline_checked (Passes.Pipeline.baseline_sign ()) m2);
  (match Kernel.insert_module k m2 with
  | Error (Kernel.Certificate_rejected Analysis.Certify.Cert_missing) -> ()
  | Ok _ -> Alcotest.fail "uncertified module accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e));
  (* tampered after certification, then re-signed: the signature is
     fine but the certificate digest no longer matches the body *)
  let m3 = tiny_module ~name:"stale" () in
  ignore (Passes.Pipeline.compile m3);
  (match m3.Kir.Types.funcs with
  | f :: _ ->
    f.Kir.Types.blocks <-
      f.Kir.Types.blocks
      @ [ { Kir.Types.b_label = "patch"; body = []; term = Kir.Types.Ret None } ]
  | [] -> ());
  ignore
    (Passes.Signing.sign ~key:Passes.Pipeline.default_key ~signer:"evil" m3);
  (match Kernel.insert_module k m3 with
  | Error (Kernel.Certificate_rejected (Analysis.Certify.Cert_stale _)) -> ()
  | Ok _ -> Alcotest.fail "stale certificate accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e));
  (* same tamper, but with enforcement off: loads fine *)
  let k2 = fresh () in
  ignore (Vm.Interp.install k2);
  Kernel.register_native k2 "carat_guard" (fun _ _ -> 0);
  let m4 = tiny_module ~name:"lax" () in
  ignore (Passes.Pipeline.compile m4);
  m4.Kir.Types.meta <-
    List.filter
      (fun (key, _) -> key <> Passes.Attest.meta_cert)
      m4.Kir.Types.meta;
  match Kernel.insert_module k2 m4 with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "permissive kernel rejected: %s"
      (Kernel.load_error_to_string e)

let test_insmod_unresolved_import () =
  let k = fresh () in
  let b = Kir.Builder.create "needy" in
  Kir.Builder.declare_extern b "does_not_exist" ~arity:0;
  ignore (Kir.Builder.start_func b "f" ~params:[] ~ret:None);
  Kir.Builder.call_unit b "does_not_exist" [];
  Kir.Builder.ret b None;
  match Kernel.insmod k (Kir.Builder.modul b) with
  | Error (Kernel.Unresolved_import "does_not_exist") -> ()
  | Ok _ -> Alcotest.fail "unresolved import accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e)

let test_insmod_symbol_collision () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  (match Kernel.insmod k (tiny_module ()) with Ok _ -> () | Error _ -> assert false);
  match Kernel.insmod k (tiny_module ~name:"tiny2" ()) with
  | Error (Kernel.Symbol_collision _) -> ()
  | Ok _ -> Alcotest.fail "collision accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e)

let test_insmod_invalid_ir () =
  let k = fresh () in
  let m = tiny_module () in
  (* corrupt: jump to a missing label *)
  (match m.Kir.Types.funcs with
  | f :: _ -> f.Kir.Types.blocks <-
      [ { Kir.Types.b_label = "entry"; body = []; term = Kir.Types.Br "gone" } ]
  | [] -> ());
  match Kernel.insmod k m with
  | Error (Kernel.Verification_failed _) -> ()
  | Ok _ -> Alcotest.fail "invalid IR accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Kernel.load_error_to_string e)

let test_insmod_runs_init () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  let b = Kir.Builder.create "initful" in
  ignore (Kir.Builder.declare_global b "flag" ~size:8);
  ignore (Kir.Builder.start_func b "init_module" ~params:[] ~ret:(Some Kir.Types.I64));
  Kir.Builder.store b Kir.Types.I64 (Kir.Types.Imm 123) (Kir.Types.Sym "flag");
  Kir.Builder.ret b (Some (Kir.Types.Imm 0));
  (match Kernel.insmod k (Kir.Builder.modul b) with
  | Ok lm ->
    let addr = List.assoc "flag" lm.Kernel.lm_globals in
    checki "init ran" 123 (Kernel.read k ~addr ~size:8)
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e))

let test_global_init_and_writability () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  let b = Kir.Builder.create "gmod" in
  ignore (Kir.Builder.declare_global b "data" ~size:8 ~init:"AB");
  ignore (Kir.Builder.start_func b "f" ~params:[] ~ret:None);
  Kir.Builder.ret b None;
  (match Kernel.insmod k (Kir.Builder.modul b) with
  | Ok lm ->
    let addr = List.assoc "data" lm.Kernel.lm_globals in
    checki "init byte 0" (Char.code 'A') (Kernel.read k ~addr ~size:1);
    checki "init byte 1" (Char.code 'B') (Kernel.read k ~addr:(addr + 1) ~size:1);
    checki "zero filled" 0 (Kernel.read k ~addr:(addr + 2) ~size:1)
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e))

let test_rmmod () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  let lm = Result.get_ok (Kernel.insmod k (tiny_module ())) in
  checkb "unloads" true (Kernel.rmmod k lm = Ok ());
  (match Kernel.call_symbol k "ping" [||] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "symbol survived rmmod");
  checkb "double unload" true (Kernel.rmmod k lm = Error Kernel.Already_dead)

let test_rmmod_refused_with_locks () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  let b = Kir.Builder.create "locky" in
  Kir.Builder.declare_extern b "spin_lock" ~arity:1;
  ignore (Kir.Builder.start_func b "grab" ~params:[] ~ret:(Some Kir.Types.I64));
  Kir.Builder.call_unit b "spin_lock" [ Kir.Types.Imm 0 ];
  Kir.Builder.ret b (Some (Kir.Types.Imm 0));
  let lm = Result.get_ok (Kernel.insmod k (Kir.Builder.modul b)) in
  ignore (Kernel.call_symbol k "grab" [||]);
  (match Kernel.rmmod k lm with
  | Error (Kernel.Locks_held 1) -> ()
  | _ -> Alcotest.fail "unload with held lock allowed");
  checkb "warned" true
    (Kernel.Klog.contains (Kernel.log k) "forced unload would deadlock")

(* ---------- natives ---------- *)

let test_native_memcpy_memset () =
  let k = fresh () in
  let a = Kernel.kmalloc k ~size:64 and b = Kernel.kmalloc k ~size:64 in
  Kernel.write_string k ~addr:a "carat-kop";
  ignore (Kernel.call_symbol k "memcpy" [| b; a; 9 |]);
  Alcotest.(check string) "memcpy" "carat-kop" (Kernel.read_string k ~addr:b ~len:9);
  ignore (Kernel.call_symbol k "memset" [| b; Char.code '!'; 4 |]);
  Alcotest.(check string) "memset" "!!!!t-kop" (Kernel.read_string k ~addr:b ~len:9)

let test_native_get_cycles_monotone () =
  let k = fresh () in
  let c1 = Kernel.call_symbol k "get_cycles" [||] in
  Machine.Model.add_cycles (Kernel.machine k) 100;
  let c2 = Kernel.call_symbol k "get_cycles" [||] in
  checkb "monotone" true (c2 > c1)

let test_native_ndelay () =
  let k = fresh () in
  let m = Kernel.machine k in
  let c0 = Machine.Model.cycles m in
  ignore (Kernel.call_symbol k "ndelay" [| 1000 |]);
  let dt = Machine.Model.cycles m - c0 in
  (* 1000 ns at 2.8 GHz = 2800 cycles *)
  checkb "delay about right" true (dt > 2500 && dt < 3500)

(* ---------- devices & ioctl ---------- *)

let test_ioctl_dispatch () =
  let k = fresh () in
  Kernel.register_device k "widget" (fun _ ~cmd ~arg -> cmd * 10 + arg);
  checki "dispatched" 42 (Kernel.ioctl k ~dev:"widget" ~cmd:4 ~arg:2);
  checki "missing device" (-1) (Kernel.ioctl k ~dev:"nope" ~cmd:0 ~arg:0)

let test_ioctl_charges_syscall () =
  let k = fresh () in
  Kernel.register_device k "w" (fun _ ~cmd:_ ~arg:_ -> 0);
  let m = Kernel.machine k in
  let c0 = Machine.Model.cycles m in
  ignore (Kernel.ioctl k ~dev:"w" ~cmd:1 ~arg:0);
  checkb "syscall cost" true
    (Machine.Model.cycles m - c0
    >= Machine.Presets.r350.Machine.Model.syscall_overhead)

(* ---------- panic & log ---------- *)

let test_panic_carries_log_tail () =
  let k = fresh () in
  Kernel.Klog.printk (Kernel.log k) "something happened";
  (match Kernel.panic k "test reason" with
  | exception Kernel.Panic info ->
    checkb "reason" true (info.Kernel.reason = "test reason");
    checkb "tail present" true (List.length info.Kernel.log_tail > 0)
  | _ -> Alcotest.fail "no exception");
  (* kernel is dead now *)
  (match Kernel.call_symbol k "get_cycles" [||] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "dead kernel accepted a call");
  match Kernel.insmod k (tiny_module ()) with
  | Error Kernel.Kernel_is_panicked -> ()
  | _ -> Alcotest.fail "dead kernel accepted insmod"

let test_panic_idempotent () =
  let k = fresh () in
  (match Kernel.panic k "first fault" with
  | exception Kernel.Panic info ->
    checkb "first reason" true (info.Kernel.reason = "first fault")
  | _ -> Alcotest.fail "no exception");
  (* a second panic — e.g. raised from a crash handler — must preserve
     the original diagnosis, not overwrite it *)
  (match Kernel.panic k "secondary crash" with
  | exception Kernel.Panic info ->
    checkb "original preserved" true (info.Kernel.reason = "first fault")
  | _ -> Alcotest.fail "no exception");
  match Kernel.panic_state k with
  | Some info ->
    checkb "state keeps original" true (info.Kernel.reason = "first fault")
  | None -> Alcotest.fail "no panic state"

(* ---------- quarantine ---------- *)

let test_quarantine_basics () =
  let k = fresh () in
  ignore (Vm.Interp.install k);
  match Kernel.insmod k (tiny_module ()) with
  | Error _ -> Alcotest.fail "insmod"
  | Ok lm ->
    checki "live call" 1 (Kernel.call_symbol k "ping" [||]);
    Kernel.quarantine_module k lm ~reason:"test quarantine";
    checki "one record" 1 (List.length (Kernel.quarantine_records k));
    (* quarantining twice is a no-op *)
    Kernel.quarantine_module k lm ~reason:"again";
    checki "still one record" 1 (List.length (Kernel.quarantine_records k));
    (* symbols are unlinked: calls return -EIO instead of running *)
    checki "call returns eio" Kernel.eio (Kernel.call_symbol k "ping" [||]);
    checkb "tombstone present" true (Kernel.quarantined_symbol k "ping" <> None);
    checkb "unlinked" true (Kernel.lookup_symbol k "ping" = None);
    checkb "kernel alive" true (Kernel.panic_state k = None);
    (* rmmod reclaims the name; a repaired module can come back *)
    (match Kernel.rmmod k lm with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "rmmod of quarantined module");
    checkb "tombstone purged" true (Kernel.quarantined_symbol k "ping" = None);
    (match Kernel.insmod k (tiny_module ()) with
    | Ok _ -> checki "replacement runs" 1 (Kernel.call_symbol k "ping" [||])
    | Error _ -> Alcotest.fail "reinsert after rmmod")

(* ---------- snapshot / diff ---------- *)

let test_memory_diff () =
  let m = Kernel.Memory.create ~size:256 in
  let snap = Kernel.Memory.snapshot m in
  checkb "no diff when untouched" true (Kernel.Memory.diff_ranges m snap = []);
  Kernel.Memory.write m 10 ~size:2 0xFFFF;
  Kernel.Memory.write_u8 m 100 1;
  match Kernel.Memory.diff_ranges m snap with
  | [ (10, 2); (100, 1) ] -> ()
  | d ->
    Alcotest.failf "unexpected diff: %s"
      (String.concat ";"
         (List.map (fun (o, l) -> Printf.sprintf "(%d,%d)" o l) d))

(* ---------- watchdog ---------- *)

let test_watchdog_fires_on_deadline () =
  let k = fresh () in
  let machine = Kernel.machine k in
  let wd = Kernel.Watchdog.create ~period:1_000 machine in
  let runs = ref 0 in
  Kernel.Watchdog.add_check wd ~name:"probe" (fun () ->
      incr runs;
      0);
  checki "period readable" 1_000 (Kernel.Watchdog.period wd);
  (* before the deadline: nothing fires, no cost *)
  checki "early run_pending is a no-op" 0
    (Kernel.Watchdog.advance wd ~cycles:10);
  checki "no fire yet" 0 (Kernel.Watchdog.fires wd);
  checki "check not run" 0 !runs;
  (* past the deadline: one fire, the check runs, overhead is charged *)
  let before = Machine.Model.cycles machine in
  ignore (Kernel.Watchdog.advance wd ~cycles:1_000);
  checki "one fire" 1 (Kernel.Watchdog.fires wd);
  checki "check ran once" 1 !runs;
  checkb "interrupt overhead charged" true
    (Machine.Model.cycles machine >= before + 1_000 + 110)

let test_watchdog_coalesces_missed_periods () =
  let k = fresh () in
  let wd = Kernel.Watchdog.create ~period:1_000 (Kernel.machine k) in
  let runs = ref 0 in
  Kernel.Watchdog.add_check wd ~name:"probe" (fun () ->
      incr runs;
      0);
  (* ten periods of idle time, one catch-up opportunity: a real softirq
     coalesces back-to-back missed expiries into one *)
  ignore (Kernel.Watchdog.advance wd ~cycles:10_000);
  checki "one coalesced fire" 1 (Kernel.Watchdog.fires wd);
  checki "check ran once" 1 !runs;
  (* the deadline re-armed from now, so the next period fires again *)
  ignore (Kernel.Watchdog.advance wd ~cycles:1_200);
  checki "re-armed" 2 (Kernel.Watchdog.fires wd)

let test_watchdog_problems_and_disable () =
  let k = fresh () in
  let wd = Kernel.Watchdog.create ~period:1_000 (Kernel.machine k) in
  Kernel.Watchdog.add_check wd ~name:"broken" (fun () -> 3);
  Kernel.Watchdog.add_check wd ~name:"fine" (fun () -> 0);
  (* run_now skips the deadline test and sums across checks *)
  checki "run_now totals problems" 3 (Kernel.Watchdog.run_now wd);
  checki "accumulated" 3 (Kernel.Watchdog.problems wd);
  checki "no periodic fire from run_now" 0 (Kernel.Watchdog.fires wd);
  (match Kernel.Watchdog.checks wd with
  | [ a; b ] ->
    Alcotest.(check string) "registration order" "broken" a.Kernel.Watchdog.ck_name;
    checki "per-check problems" 3 a.Kernel.Watchdog.ck_problems;
    checki "clean check clean" 0 b.Kernel.Watchdog.ck_problems
  | _ -> Alcotest.fail "two checks expected");
  Kernel.Watchdog.disable wd;
  checki "disabled: no fire" 0 (Kernel.Watchdog.advance wd ~cycles:5_000);
  checki "still zero fires" 0 (Kernel.Watchdog.fires wd);
  Kernel.Watchdog.enable wd;
  ignore (Kernel.Watchdog.advance wd ~cycles:1);
  checki "enabled again fires" 1 (Kernel.Watchdog.fires wd)

let test_klog_ring () =
  let log = Kernel.Klog.create ~capacity:4 () in
  for i = 1 to 10 do
    Kernel.Klog.printk log "entry %d" i
  done;
  checki "bounded" 4 (List.length (Kernel.Klog.entries log));
  checkb "has newest" true (Kernel.Klog.contains log "entry 10");
  checkb "dropped oldest" false (Kernel.Klog.contains log "entry 2");
  let tail = Kernel.Klog.tail log 2 in
  Alcotest.(check (list string)) "tail order" [ "entry 9"; "entry 10" ] tail;
  Kernel.Klog.clear log;
  checki "cleared" 0 (List.length (Kernel.Klog.entries log))

let () =
  Alcotest.run "kernel"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "blit" `Quick test_memory_blit;
        ] );
      ( "layout",
        [ Alcotest.test_case "predicates" `Quick test_layout_predicates ] );
      ( "address-space",
        [
          Alcotest.test_case "direct map" `Quick test_direct_map_access;
          Alcotest.test_case "kernel image" `Quick test_kernel_image_access;
          Alcotest.test_case "fault unmapped" `Quick test_fault_on_unmapped;
          Alcotest.test_case "user mapping" `Quick test_user_mapping;
          Alcotest.test_case "module allocs" `Quick test_module_alloc_distinct;
          Alcotest.test_case "kmalloc alignment" `Quick test_kmalloc_alignment;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory_panics;
        ] );
      ( "mmio",
        [
          Alcotest.test_case "ioremap dispatch" `Quick test_ioremap_dispatch;
          Alcotest.test_case "mmio cost" `Quick test_mmio_costs_more_than_ram;
        ] );
      ( "symbols",
        [
          Alcotest.test_case "native" `Quick test_native_symbols;
          Alcotest.test_case "addresses" `Quick test_symbol_address_stability;
          Alcotest.test_case "missing panics" `Quick test_call_missing_symbol_panics;
        ] );
      ( "modules",
        [
          Alcotest.test_case "insmod basic" `Quick test_insmod_basic;
          Alcotest.test_case "unsigned rejected" `Quick test_insmod_requires_signature;
          Alcotest.test_case "signed accepted" `Quick test_insmod_signed_ok;
          Alcotest.test_case "certificate gate" `Quick
            test_insmod_requires_certificate;
          Alcotest.test_case "unresolved import" `Quick test_insmod_unresolved_import;
          Alcotest.test_case "symbol collision" `Quick test_insmod_symbol_collision;
          Alcotest.test_case "invalid IR" `Quick test_insmod_invalid_ir;
          Alcotest.test_case "init_module runs" `Quick test_insmod_runs_init;
          Alcotest.test_case "global init" `Quick test_global_init_and_writability;
          Alcotest.test_case "rmmod" `Quick test_rmmod;
          Alcotest.test_case "rmmod lock refusal" `Quick test_rmmod_refused_with_locks;
        ] );
      ( "natives",
        [
          Alcotest.test_case "memcpy/memset" `Quick test_native_memcpy_memset;
          Alcotest.test_case "get_cycles" `Quick test_native_get_cycles_monotone;
          Alcotest.test_case "ndelay" `Quick test_native_ndelay;
        ] );
      ( "devices",
        [
          Alcotest.test_case "ioctl dispatch" `Quick test_ioctl_dispatch;
          Alcotest.test_case "ioctl syscall cost" `Quick test_ioctl_charges_syscall;
        ] );
      ( "panic",
        [
          Alcotest.test_case "panic flow" `Quick test_panic_carries_log_tail;
          Alcotest.test_case "panic idempotent" `Quick test_panic_idempotent;
          Alcotest.test_case "klog ring" `Quick test_klog_ring;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "basics" `Quick test_quarantine_basics ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires on deadline" `Quick
            test_watchdog_fires_on_deadline;
          Alcotest.test_case "coalesces missed periods" `Quick
            test_watchdog_coalesces_missed_periods;
          Alcotest.test_case "problems + disable" `Quick
            test_watchdog_problems_and_disable;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "diff ranges" `Quick test_memory_diff ] );
    ]
