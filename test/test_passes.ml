(* Passes: dominators, loops, guard injection, attestation, signing,
   guard optimizations, DCE, pipelines. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- fixtures ---------- *)

(* entry -> head -> (body -> head | exit): a single natural loop *)
let loop_func () =
  let b = Kir.Builder.create "loopy" in
  ignore (Kir.Builder.declare_global b "table" ~size:64);
  ignore
    (Kir.Builder.start_func b "walk" ~params:[ ("%n", I64) ] ~ret:(Some I64));
  Kir.Builder.mov_to b "%acc" I64 (Imm 0);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%n") ~step:(Imm 1)
    (fun _i ->
      (* loop-invariant address: the global's first word *)
      let v = Kir.Builder.load b I64 (Sym "table") in
      let s = Kir.Builder.add b I64 (Reg "%acc") v in
      Kir.Builder.mov_to b "%acc" I64 s);
  Kir.Builder.ret b (Some (Reg "%acc"));
  Kir.Builder.modul b

let straightline_module () =
  let b = Kir.Builder.create "straight" in
  ignore (Kir.Builder.declare_global b "g" ~size:32);
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  let v1 = Kir.Builder.load b I64 (Reg "%p") in
  let v2 = Kir.Builder.load b I64 (Reg "%p") in
  (* same address again *)
  let s = Kir.Builder.add b I64 v1 v2 in
  Kir.Builder.store b I64 s (Sym "g");
  Kir.Builder.store b I64 s (Sym "g");
  (* duplicate store *)
  Kir.Builder.ret b (Some s);
  Kir.Builder.modul b

let count_loads_stores m = module_memory_op_count m

(* ---------- dominators & loops ---------- *)

let test_dominators_diamond () =
  let b = Kir.Builder.create "d" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%c", I64) ] ~ret:None);
  Kir.Builder.if_then_else b (Reg "%c") ~then_:(fun () -> ())
    ~else_:(fun () -> ());
  Kir.Builder.ret b None;
  let f = Option.get (find_func (Kir.Builder.modul b) "f") in
  let g = Kir.Cfg.of_func f in
  let dom = Passes.Dominators.compute g in
  (* entry dominates everything *)
  for i = 0 to Kir.Cfg.n_blocks g - 1 do
    checkb "entry dominates" true (Passes.Dominators.dominates dom 0 i)
  done;
  (* then-branch does not dominate join *)
  let join = Kir.Cfg.n_blocks g - 1 in
  checkb "branch !dom join" false (Passes.Dominators.dominates dom 1 join);
  (* idom of join is entry *)
  Alcotest.(check (option int)) "idom(join)=entry" (Some 0)
    (Passes.Dominators.idom dom join)

let test_dominators_self () =
  let m = straightline_module () in
  let f = Option.get (find_func m "f") in
  let dom = Passes.Dominators.compute (Kir.Cfg.of_func f) in
  checkb "self-domination" true (Passes.Dominators.dominates dom 0 0);
  Alcotest.(check (option int)) "entry idom" None (Passes.Dominators.idom dom 0)

let test_dom_tree () =
  let m = loop_func () in
  let f = Option.get (find_func m "walk") in
  let g = Kir.Cfg.of_func f in
  let dom = Passes.Dominators.compute g in
  let tree = Passes.Dominators.dom_tree dom in
  (* every non-entry reachable block appears exactly once as a child *)
  let count = Array.fold_left (fun acc l -> acc + List.length l) 0 tree in
  checki "tree covers blocks" (Kir.Cfg.n_blocks g - 1) count

let test_loop_detection () =
  let m = loop_func () in
  let f = Option.get (find_func m "walk") in
  let g = Kir.Cfg.of_func f in
  let li = Passes.Loops.compute g in
  checki "one loop" 1 (List.length li.Passes.Loops.loops);
  let l = List.hd li.Passes.Loops.loops in
  checkb "header in body" true (Passes.Loops.in_loop l l.Passes.Loops.header);
  checki "one back edge" 1 (List.length l.Passes.Loops.back_edges);
  checkb "body has 2 blocks" true (List.length l.Passes.Loops.body >= 2);
  (* entry is outside *)
  checkb "entry outside" false (Passes.Loops.in_loop l 0);
  checki "loop depth of header" 1
    (Passes.Loops.loop_depth li l.Passes.Loops.header)

let test_no_loops_straightline () =
  let m = straightline_module () in
  let f = Option.get (find_func m "f") in
  let li = Passes.Loops.compute (Kir.Cfg.of_func f) in
  checki "no loops" 0 (List.length li.Passes.Loops.loops)

(* ---------- guard injection ---------- *)

let test_injection_counts () =
  let m = straightline_module () in
  let before = count_loads_stores m in
  let r = Passes.Guard_injection.run Passes.Guard_injection.default_config m in
  checkb "changed" true r.Passes.Pass.changed;
  checki "one guard per memory op" before
    (Passes.Guard_injection.count_guards m);
  Alcotest.(check (option string))
    "meta count" (Some (string_of_int before))
    (meta_find m Passes.Guard_injection.meta_guard_count)

let test_injection_full_coverage () =
  let m = loop_func () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  checkb "fully guarded" true (Passes.Guard_injection.fully_guarded m)

let test_injection_declares_extern () =
  let m = straightline_module () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  checkb "extern declared" true
    (List.mem_assoc "carat_guard" m.externs);
  checkb "still valid" true (Kir.Verify.is_valid m)

let test_injection_flags_and_sizes () =
  let b = Kir.Builder.create "fs" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  ignore (Kir.Builder.load b I16 (Reg "%p"));
  Kir.Builder.store b I32 (Imm 7) (Reg "%p");
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  let f = Option.get (find_func m "f") in
  let guards =
    List.filter_map
      (function
        | Call
            { callee = "carat_guard"; args = [ _; Imm s; Imm fl; Imm site ]; _ }
          ->
          Some (s, fl, site)
        | _ -> None)
      (entry_block f).body
  in
  Alcotest.(check (list (triple int int int)))
    "size/flags/site"
    [ (2, Passes.Guard_injection.flag_read, 0);
      (4, Passes.Guard_injection.flag_write, 1) ]
    guards

let test_injection_idempotence_guard () =
  let m = straightline_module () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  (match Passes.Guard_injection.run Passes.Guard_injection.default_config m with
  | exception Passes.Pass.Pass_failed _ -> ()
  | _ -> Alcotest.fail "double transform accepted")

let test_injection_reads_only () =
  let m = straightline_module () in
  let config =
    { Passes.Guard_injection.default_config with guard_writes = false }
  in
  ignore (Passes.Guard_injection.run config m);
  checki "only read guards" 2 (Passes.Guard_injection.count_guards m)

let test_stack_exemption () =
  let b = Kir.Builder.create "stack" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
  let local = Kir.Builder.alloca b 32 in
  Kir.Builder.store b I64 (Imm 1) local;
  (* derived from alloca through gep: also exempt *)
  let slot = Kir.Builder.gep b local (Imm 8) ~scale:1 in
  Kir.Builder.store b I64 (Imm 2) slot;
  (* external pointer: must stay guarded *)
  let v = Kir.Builder.load b I64 (Reg "%p") in
  Kir.Builder.ret b (Some v);
  let m = Kir.Builder.modul b in
  let config =
    { Passes.Guard_injection.default_config with exempt_stack = true }
  in
  ignore (Passes.Guard_injection.run config m);
  checki "only the external load guarded" 1
    (Passes.Guard_injection.count_guards m)

let test_stack_exemption_taint () =
  (* a register that mixes alloca and parameter definitions is not
     exempt *)
  let b = Kir.Builder.create "taint" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  let local = Kir.Builder.alloca b 16 in
  Kir.Builder.mov_to b "%q" I64 local;
  Kir.Builder.mov_to b "%q" I64 (Reg "%p");
  Kir.Builder.store b I64 (Imm 3) (Reg "%q");
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  let config =
    { Passes.Guard_injection.default_config with exempt_stack = true }
  in
  ignore (Passes.Guard_injection.run config m);
  checki "tainted register stays guarded" 1
    (Passes.Guard_injection.count_guards m)

(* qcheck: after injection, every load/store in any generated module is
   immediately preceded by a guard on the same address *)
let gen_wellformed_module =
  QCheck.Gen.(
    let gen_ty = oneofl [ I8; I16; I32; I64 ] in
    let* n = int_range 1 12 in
    let* ops = list_repeat n (tup2 gen_ty (int_bound 2)) in
    let b = Kir.Builder.create "gen" in
    ignore (Kir.Builder.declare_global b "g" ~size:256);
    ignore
      (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:(Some I64));
    List.iter
      (fun (ty, kind) ->
        match kind with
        | 0 -> ignore (Kir.Builder.load b ty (Reg "%p"))
        | 1 -> Kir.Builder.store b ty (Imm 5) (Sym "g")
        | _ ->
          let a = Kir.Builder.gep b (Reg "%p") (Imm 4) ~scale:1 in
          ignore (Kir.Builder.load b ty a))
      ops;
    Kir.Builder.ret b (Some (Imm 0));
    return (Kir.Builder.modul b))

let prop_injection_covers =
  QCheck.Test.make ~name:"injection guards every access" ~count:100
    (QCheck.make gen_wellformed_module) (fun m ->
      let n = module_memory_op_count m in
      ignore
        (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
      Passes.Guard_injection.count_guards m = n
      && Passes.Guard_injection.fully_guarded m
      && Kir.Verify.is_valid m)

(* ---------- attestation ---------- *)

let asm_module () =
  let b = Kir.Builder.create "asm" in
  ignore (Kir.Builder.start_func b "f" ~params:[] ~ret:None);
  Kir.Builder.inline_asm b "cli; hlt";
  Kir.Builder.ret b None;
  Kir.Builder.modul b

let indirect_module () =
  let b = Kir.Builder.create "ind" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%fp", I64) ] ~ret:None);
  Kir.Builder.emit b (Callind { dst = None; fn = Reg "%fp"; args = [] });
  Kir.Builder.ret b None;
  Kir.Builder.modul b

let test_attest_rejects_asm () =
  match Passes.Attest.run ~strict:false (asm_module ()) with
  | exception Passes.Pass.Pass_failed ("attest", _) -> ()
  | _ -> Alcotest.fail "inline asm accepted"

let test_attest_clean_marks_meta () =
  let m = straightline_module () in
  ignore (Passes.Attest.run ~strict:false m);
  Alcotest.(check (option string)) "noasm" (Some "true")
    (meta_find m Passes.Attest.meta_noasm)

let test_attest_indirect_modes () =
  let m = indirect_module () in
  ignore (Passes.Attest.run ~strict:false m);
  Alcotest.(check (option string)) "count recorded" (Some "1")
    (meta_find m Passes.Attest.meta_indirect);
  (match Passes.Attest.run ~strict:true (indirect_module ()) with
  | exception Passes.Pass.Pass_failed ("attest", _) -> ()
  | _ -> Alcotest.fail "strict mode accepted indirect call")

let test_attest_strict_accepts_cfi_covered () =
  (* satellite: strict attestation accepts an indirect call exactly when a
     cfi_guard covers it — run the cfi pass first, then re-attest strict *)
  let m = indirect_module () in
  ignore (Passes.Cfi_guard.run m);
  ignore (Passes.Attest.run ~strict:true m);
  Alcotest.(check (option string)) "none uncovered" (Some "0")
    (meta_find m Passes.Attest.meta_indirect_uncovered);
  (* ...and the full strict pipeline agrees, both ways *)
  (match
     Passes.Pipeline.compile ~guard_cfi:true ~strict:true (indirect_module ())
   with
  | _ -> ());
  match Passes.Pipeline.compile ~strict:true (indirect_module ()) with
  | exception Passes.Pass.Pass_failed ("attest", _) -> ()
  | _ -> Alcotest.fail "strict pipeline accepted uncovered indirect call"

let test_attest_strict_mismatched_cfi_target () =
  (* a cfi_guard on the wrong operand does not count as coverage *)
  let b = Kir.Builder.create "ind2" in
  ignore
    (Kir.Builder.start_func b "f" ~params:[ ("%fp", I64); ("%q", I64) ]
       ~ret:None);
  Kir.Builder.emit b
    (Call
       { dst = None; callee = Passes.Cfi_guard.guard_symbol;
         args = [ Reg "%q" ] });
  Kir.Builder.emit b (Callind { dst = None; fn = Reg "%fp"; args = [] });
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  m.externs <- m.externs @ [ (Passes.Cfi_guard.guard_symbol, 1) ];
  let r = Passes.Attest.scan m in
  checki "still uncovered" 1 (List.length r.Passes.Attest.uncovered_indirect)

let test_attest_scan_report () =
  let r = Passes.Attest.scan (asm_module ()) in
  checki "asm found" 1 (List.length r.Passes.Attest.inline_asm);
  Alcotest.(check string) "location" "f"
    (List.hd r.Passes.Attest.inline_asm).Passes.Attest.in_func

(* ---------- signing ---------- *)

let signed_module () =
  let m = straightline_module () in
  ignore (Passes.Pipeline.compile m);
  m

let test_sign_verify_ok () =
  let m = signed_module () in
  checkb "verifies" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m = Ok ())

let test_sign_wrong_key () =
  let m = signed_module () in
  match Passes.Signing.verify ~key:"evil" m with
  | Error (Passes.Signing.Bad_signature _) -> ()
  | _ -> Alcotest.fail "wrong key accepted"

let test_sign_unsigned () =
  let m = straightline_module () in
  checkb "unsigned rejected" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m
    = Error Passes.Signing.Unsigned)

let test_sign_not_guarded () =
  let m = straightline_module () in
  ignore (Passes.Attest.run ~strict:false m);
  ignore (Passes.Signing.sign ~key:Passes.Pipeline.default_key ~signer:"t" m);
  checkb "unguarded rejected" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m
    = Error Passes.Signing.Not_guarded)

let test_sign_detects_code_tamper () =
  let m = signed_module () in
  let f = Option.get (find_func m "f") in
  (entry_block f).body <-
    List.filter
      (function Call { callee = "carat_guard"; _ } -> false | _ -> true)
      (entry_block f).body;
  (match Passes.Signing.verify ~key:Passes.Pipeline.default_key m with
  | Error (Passes.Signing.Bad_signature _) -> ()
  | _ -> Alcotest.fail "tamper not detected")

let test_sign_detects_meta_tamper () =
  let m = signed_module () in
  meta_set m Passes.Guard_injection.meta_guard_count "9999";
  match Passes.Signing.verify ~key:Passes.Pipeline.default_key m with
  | Error (Passes.Signing.Bad_signature _) -> ()
  | _ -> Alcotest.fail "meta tamper not detected"

let prop_sign_tamper =
  QCheck.Test.make ~name:"any instruction edit breaks the signature"
    ~count:60
    QCheck.(make Gen.(int_bound 1000))
    (fun salt ->
      let m = signed_module () in
      let f = Option.get (find_func m "f") in
      let blk = entry_block f in
      blk.body <-
        blk.body
        @ [ Binop { dst = "%evil"; op = Add; ty = I64; a = Imm salt; b = Imm 1 } ];
      match Passes.Signing.verify ~key:Passes.Pipeline.default_key m with
      | Error (Passes.Signing.Bad_signature _) -> true
      | _ -> false)

let test_keyed_tag_properties () =
  let t1 = Passes.Signing.keyed_tag ~key:"k" "msg" in
  let t2 = Passes.Signing.keyed_tag ~key:"k" "msg" in
  let t3 = Passes.Signing.keyed_tag ~key:"k2" "msg" in
  let t4 = Passes.Signing.keyed_tag ~key:"k" "msg2" in
  Alcotest.(check string) "deterministic" t1 t2;
  checkb "key sensitive" false (t1 = t3);
  checkb "msg sensitive" false (t1 = t4);
  checki "tag length" 32 (String.length t1)

(* ---------- guard optimizations ---------- *)

let test_guard_elim_dedups () =
  let m = straightline_module () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  let before = Passes.Guard_injection.count_guards m in
  let r = Passes.Guard_elim.run ~guard_symbol:"carat_guard" m in
  let after = Passes.Guard_injection.count_guards m in
  checkb "removed some" true r.Passes.Pass.changed;
  (* two loads at %p -> 1 guard; two stores at g -> 1 guard *)
  checki "before" 4 before;
  checki "after" 2 after;
  checkb "still valid" true (Kir.Verify.is_valid m)

let test_guard_elim_respects_redefinition () =
  let b = Kir.Builder.create "redef" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.mov_to b "%q" I64 (Reg "%p");
  ignore (Kir.Builder.load b I64 (Reg "%q"));
  Kir.Builder.mov_to b "%q" I64 (Imm 0x2000) (* %q now points elsewhere *);
  ignore (Kir.Builder.load b I64 (Reg "%q"));
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  ignore (Passes.Guard_elim.run ~guard_symbol:"carat_guard" m);
  checki "both guards survive" 2 (Passes.Guard_injection.count_guards m)

let test_guard_elim_flag_widening () =
  (* read guard then write guard on the same address: the write guard
     must survive (write not covered by read) *)
  let b = Kir.Builder.create "widen" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  ignore (Kir.Builder.load b I64 (Reg "%p"));
  Kir.Builder.store b I64 (Imm 1) (Reg "%p");
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  ignore (Passes.Guard_elim.run ~guard_symbol:"carat_guard" m);
  checki "read+write both guarded" 2 (Passes.Guard_injection.count_guards m)

let test_guard_hoist_invariant () =
  let m = loop_func () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  let before = Passes.Guard_injection.count_guards m in
  let r = Passes.Guard_hoist.run ~guard_symbol:"carat_guard" m in
  checkb "hoisted" true r.Passes.Pass.changed;
  let after = Passes.Guard_injection.count_guards m in
  checkb "fewer guard sites" true (after <= before);
  checkb "still valid" true (Kir.Verify.is_valid m)

let test_guard_hoist_run_twice () =
  (* regression: re-running elim+hoist over an already-hoisted module
     (as the loader's --opt re-optimization does) must not stack a
     duplicate copy of each hoisted guard into the pre-header *)
  let m = loop_func () in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  ignore (Passes.Guard_elim.run ~guard_symbol:"carat_guard" m);
  ignore (Passes.Guard_hoist.run ~guard_symbol:"carat_guard" m);
  let printed = Kir.Printer.to_string m in
  ignore (Passes.Guard_elim.run ~guard_symbol:"carat_guard" m);
  let r = Passes.Guard_hoist.run ~guard_symbol:"carat_guard" m in
  checkb "second hoist is a no-op" false r.Passes.Pass.changed;
  Alcotest.(check string)
    "module byte-identical after the second run" printed
    (Kir.Printer.to_string m)

let test_guard_hoist_not_variant () =
  (* address depends on the induction variable: must not hoist *)
  let b = Kir.Builder.create "variant" in
  ignore (Kir.Builder.start_func b "f" ~params:[ ("%p", I64) ] ~ret:None);
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 4) ~step:(Imm 1) (fun i ->
      let a = Kir.Builder.gep b (Reg "%p") i ~scale:8 in
      ignore (Kir.Builder.load b I64 a));
  Kir.Builder.ret b None;
  let m = Kir.Builder.modul b in
  ignore (Passes.Guard_injection.run Passes.Guard_injection.default_config m);
  let before = Passes.Guard_injection.count_guards m in
  ignore (Passes.Guard_hoist.run ~guard_symbol:"carat_guard" m);
  checki "nothing hoisted" before (Passes.Guard_injection.count_guards m)

let test_dce_removes_islands () =
  let m = straightline_module () in
  let f = Option.get (find_func m "f") in
  f.blocks <- f.blocks @ [ { b_label = "dead"; body = []; term = Ret None } ];
  let r = Passes.Dce.run m in
  checkb "changed" true r.Passes.Pass.changed;
  checki "one block left" 1 (List.length f.blocks)

(* ---------- pipelines ---------- *)

let test_pipeline_default () =
  let m = straightline_module () in
  let remarks = Passes.Pipeline.compile m in
  (* dce, attest, guard-injection, certify, signing — this binary links
     the analysis layer, so the registered certify pass runs too *)
  checki "five passes" 5 (List.length remarks);
  checkb "signed+verifies" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m = Ok ());
  checkb "guards present" true (Passes.Guard_injection.count_guards m > 0);
  checkb "certificate validates" true (Analysis.Certify.validate m = Ok ())

let test_pipeline_optimized_fewer_guards () =
  let m1 = straightline_module () in
  let m2 = straightline_module () in
  ignore (Passes.Pipeline.compile m1);
  ignore (Passes.Pipeline.compile ~optimize:true m2);
  checkb "optimization reduces static guards" true
    (Passes.Guard_injection.count_guards m2
    < Passes.Guard_injection.count_guards m1);
  checkb "optimized still verifies" true
    (Passes.Signing.verify ~key:Passes.Pipeline.default_key m2 = Ok ())

let test_pipeline_checked_catches_breakage () =
  let breaker =
    Passes.Pass.make "breaker" (fun m ->
        (match m.funcs with
        | f :: _ -> f.blocks <- []
        | [] -> ());
        { Passes.Pass.changed = true; remarks = [] })
  in
  let m = straightline_module () in
  match Passes.Pass.run_pipeline_checked [ breaker ] m with
  | exception Kir.Verify.Invalid _ -> ()
  | _ -> Alcotest.fail "verifier did not catch pass breakage"

let () =
  Alcotest.run "passes"
    [
      ( "analysis",
        [
          Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "self domination" `Quick test_dominators_self;
          Alcotest.test_case "dominator tree" `Quick test_dom_tree;
          Alcotest.test_case "loop detection" `Quick test_loop_detection;
          Alcotest.test_case "no loops straightline" `Quick test_no_loops_straightline;
        ] );
      ( "guard-injection",
        [
          Alcotest.test_case "counts" `Quick test_injection_counts;
          Alcotest.test_case "full coverage" `Quick test_injection_full_coverage;
          Alcotest.test_case "declares extern" `Quick test_injection_declares_extern;
          Alcotest.test_case "flags and sizes" `Quick test_injection_flags_and_sizes;
          Alcotest.test_case "double transform rejected" `Quick test_injection_idempotence_guard;
          Alcotest.test_case "reads only mode" `Quick test_injection_reads_only;
          Alcotest.test_case "stack exemption" `Quick test_stack_exemption;
          Alcotest.test_case "stack taint" `Quick test_stack_exemption_taint;
          QCheck_alcotest.to_alcotest prop_injection_covers;
        ] );
      ( "attest",
        [
          Alcotest.test_case "rejects asm" `Quick test_attest_rejects_asm;
          Alcotest.test_case "marks clean" `Quick test_attest_clean_marks_meta;
          Alcotest.test_case "indirect modes" `Quick test_attest_indirect_modes;
          Alcotest.test_case "strict accepts cfi-covered" `Quick
            test_attest_strict_accepts_cfi_covered;
          Alcotest.test_case "strict needs matching target" `Quick
            test_attest_strict_mismatched_cfi_target;
          Alcotest.test_case "scan report" `Quick test_attest_scan_report;
        ] );
      ( "signing",
        [
          Alcotest.test_case "verify ok" `Quick test_sign_verify_ok;
          Alcotest.test_case "wrong key" `Quick test_sign_wrong_key;
          Alcotest.test_case "unsigned" `Quick test_sign_unsigned;
          Alcotest.test_case "not guarded" `Quick test_sign_not_guarded;
          Alcotest.test_case "code tamper" `Quick test_sign_detects_code_tamper;
          Alcotest.test_case "meta tamper" `Quick test_sign_detects_meta_tamper;
          Alcotest.test_case "keyed tag" `Quick test_keyed_tag_properties;
          QCheck_alcotest.to_alcotest prop_sign_tamper;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "elim dedups" `Quick test_guard_elim_dedups;
          Alcotest.test_case "elim respects redefinition" `Quick test_guard_elim_respects_redefinition;
          Alcotest.test_case "elim flag widening" `Quick test_guard_elim_flag_widening;
          Alcotest.test_case "hoist invariant" `Quick test_guard_hoist_invariant;
          Alcotest.test_case "hoist run twice" `Quick test_guard_hoist_run_twice;
          Alcotest.test_case "hoist leaves variant" `Quick test_guard_hoist_not_variant;
          Alcotest.test_case "dce" `Quick test_dce_removes_islands;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "default" `Quick test_pipeline_default;
          Alcotest.test_case "optimized fewer guards" `Quick test_pipeline_optimized_fewer_guards;
          Alcotest.test_case "checked catches breakage" `Quick test_pipeline_checked_catches_breakage;
        ] );
    ]
