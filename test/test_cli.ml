(* CLI tools: kop_compile, policy_manager, kop_run — exercised as real
   subprocesses over temp files, covering the workflows the README
   documents. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* binaries are declared as test deps in dune; when run by `dune
   runtest` the cwd is the test build directory and ../bin works, while
   `dune exec` starts from the workspace root *)
let resolve name =
  let candidates =
    [
      Filename.concat "../bin" name;
      Filename.concat "_build/default/bin" name;
      Filename.concat "bin" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "cannot locate %s (cwd %s)" name (Sys.getcwd ())

let kop_compile = resolve "kop_compile.exe"
let policy_manager = resolve "policy_manager.exe"
let kop_run = resolve "kop_run.exe"
let kop_lint = resolve "kop_lint.exe"

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let sh fmt =
  Printf.ksprintf
    (fun cmd ->
      let code = Sys.command (cmd ^ " >/dev/null 2>&1") in
      code)
    fmt

let sh_out fmt =
  Printf.ksprintf
    (fun cmd ->
      let ic = Unix.open_process_in (cmd ^ " 2>&1") in
      let buf = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      let code =
        match Unix.close_process_in ic with
        | Unix.WEXITED n -> n
        | _ -> -1
      in
      (code, Buffer.contents buf))
    fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_compile_emit_driver () =
  let out = tmp "cli_driver.kir" in
  checki "emits" 0 (sh "%s --emit-driver --scale 1 -o %s" kop_compile out);
  checkb "file exists" true (Sys.file_exists out);
  (* output parses back and is transformed + signed *)
  let m = Carat_kop.Kir.Parser.parse_file out in
  checkb "guarded" true
    (Carat_kop.Kir.Types.meta_find m "carat.kop.guarded" = Some "true");
  checkb "verifies" true
    (Carat_kop.Passes.Signing.verify
       ~key:Carat_kop.Passes.Pipeline.default_key m
    = Ok ())

let test_compile_rejects_asm () =
  let src = tmp "cli_asm.kir" in
  let oc = open_out src in
  output_string oc
    "module \"bad\"\nfunc @f() : void {\nentry:\n  asm \"cli\"\n  ret\n}\n";
  close_out oc;
  checkb "refused" true (sh "%s %s -o /dev/null" kop_compile src <> 0)

let test_compile_no_transform () =
  let out = tmp "cli_base.kir" in
  checki "baseline build" 0
    (sh "%s --emit-driver --scale 1 --no-transform -o %s" kop_compile out);
  let m = Carat_kop.Kir.Parser.parse_file out in
  checki "no guards" 0 (Carat_kop.Passes.Guard_injection.count_guards m)

let test_policy_manager_lifecycle () =
  let pol = tmp "cli_policy.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  checki "add" 0
    (sh "%s add %s --base 0x2000 --len 0x1000 --prot r- --tag win --prepend"
       policy_manager pol);
  let code, out = sh_out "%s list %s" policy_manager pol in
  checki "list ok" 0 code;
  checkb "shows window" true (contains out "win");
  checkb "window first" true (contains out " 0. [0x2000");
  (* check: allowed inside, denied outside *)
  checki "inside allowed" 0
    (sh "%s check %s --addr 0x2100 --size 8" policy_manager pol);
  checki "write to r- denied" 3
    (sh "%s check %s --addr 0x2100 --size 8 --write" policy_manager pol);
  checki "remove" 0 (sh "%s remove %s --base 0x2000" policy_manager pol);
  checki "remove again fails" 1 (sh "%s remove %s --base 0x2000" policy_manager pol)

let test_policy_manager_push () =
  let pol = tmp "cli_policy2.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s push %s" policy_manager pol in
  checki "push ok" 0 code;
  checkb "two regions pushed" true (contains out "pushed 2 region")

let test_policy_manager_set_mode () =
  let pol = tmp "cli_policy3.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s set-mode %s quarantine" policy_manager pol in
  checki "set-mode ok" 0 code;
  checkb "confirms live switch" true (contains out "live ioctl ok");
  let code, out = sh_out "%s list %s" policy_manager pol in
  checki "list ok" 0 code;
  checkb "mode persisted" true (contains out "mode:    quarantine");
  checki "bad mode rejected" 1 (sh "%s set-mode %s frobnicate" policy_manager pol)

let test_kop_run_happy_and_panic () =
  let drv = tmp "cli_run.kir" in
  let pol = tmp "cli_run.kop" in
  checki "emit" 0
    (sh "%s --emit-driver --scale 1 --rogue -o %s" kop_compile drv);
  checki "policy" 0 (sh "%s init -o %s" policy_manager pol);
  (* a benign call *)
  let code, out =
    sh_out "%s %s --policy %s --call e1000e_eeprom_read --args 1" kop_run drv
      pol
  in
  checki "runs" 0 code;
  checkb "prints result" true (contains out "e1000e_eeprom_read(1) =");
  (* the rogue backdoor against user memory: exit code 4 = panic *)
  let code, out =
    sh_out "%s %s --policy %s --call e1000e_debug_peek --args 0x2000" kop_run
      drv pol
  in
  checki "panics" 4 code;
  checkb "says so" true (contains out "KERNEL PANIC")

let test_kop_run_smp () =
  let drv = tmp "cli_smp.kir" in
  let pol = tmp "cli_smp.kop" in
  checki "emit" 0 (sh "%s --emit-driver --scale 1 -o %s" kop_compile drv);
  checki "policy" 0 (sh "%s init -o %s" policy_manager pol);
  let run () =
    sh_out "%s %s --policy %s --call e1000e_eeprom_read --args 1 --cpus 4"
      kop_run drv pol
  in
  let code, out = run () in
  checki "runs on 4 cpus" 0 code;
  checkb "cpu0 result" true (contains out "cpu0: e1000e_eeprom_read(1) =");
  checkb "cpu3 result" true (contains out "cpu3: e1000e_eeprom_read(1) =");
  checkb "interleave shown" true (contains out "interleave: [");
  (* deterministic: a second identical invocation prints identical output *)
  let code2, out2 = run () in
  checki "rerun ok" 0 code2;
  checkb "deterministic output" true (out = out2);
  (* --cpus 1 keeps the classic single-CPU output shape *)
  let code, out =
    sh_out "%s %s --policy %s --call e1000e_eeprom_read --args 1 --cpus 1"
      kop_run drv pol
  in
  checki "single cpu ok" 0 code;
  checkb "classic format" true (contains out "e1000e_eeprom_read(1) =");
  checkb "no cpu prefix" true (not (contains out "cpu0:"));
  checki "cpus bounds" 2
    (sh "%s %s --policy %s --call e1000e_eeprom_read --args 1 --cpus 9" kop_run
       drv pol)

let test_policy_manager_storm () =
  let pol = tmp "cli_storm.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s storm %s --cpus 4 --updates 12" policy_manager pol in
  checki "storm ok" 0 code;
  checkb "publications reported" true (contains out "24 publications");
  checkb "no stale allow" true (contains out "stale allows after publish: 0");
  checkb "verdict" true (contains out "OK: updates atomic");
  (* a single CPU cannot race itself *)
  checki "rejects cpus 1" 2 (sh "%s storm %s --cpus 1" policy_manager pol)

let test_policy_manager_audit () =
  let pol = tmp "cli_audit.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s audit %s" policy_manager pol in
  checki "audit ok" 0 code;
  checkb "clean audit first" true (contains out "clean audit (ioctl 18): 0");
  checkb "every tier healed" true
    (contains out "corrupt inline cache"
    && contains out "corrupt shadow table"
    && contains out "corrupt policy instance");
  checkb "render shows the episode" true (contains out "detections 3");
  checkb "verdict" true (contains out "OK: all tiers detected");
  (* deterministic, like every simulated workload *)
  let code2, out2 = sh_out "%s audit %s" policy_manager pol in
  checki "rerun ok" 0 code2;
  checkb "deterministic output" true (out = out2)

let test_policy_manager_lint () =
  let pol = tmp "cli_lint.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  (* the canonical policy lints clean of errors *)
  let code, out = sh_out "%s lint %s" policy_manager pol in
  checki "clean policy passes" 0 code;
  checkb "reports zero errors" true (contains out "0 error(s)");
  (* prepend a wide rw region: the device window behind it is shadowed *)
  checki "add blanket" 0
    (sh "%s add %s --base 0x1100000000000000 --len 0x100000 --prot rw \
         --tag dev --prepend"
       policy_manager pol);
  checki "add shadowed" 0
    (sh "%s add %s --base 0x1100000000001000 --len 0x1000 --prot r- \
         --tag inner"
       policy_manager pol);
  let code, out = sh_out "%s lint %s" policy_manager pol in
  checki "shadowed rule is an error" 3 code;
  checkb "names the rule" true (contains out "E-shadowed")

let test_kop_lint_module () =
  let raw = tmp "cli_lint_raw.kir" in
  let ok = tmp "cli_lint_ok.kir" in
  checki "emit raw" 0
    (sh "%s --emit-driver --scale 1 --no-transform -o %s" kop_compile raw);
  checki "emit compiled" 0 (sh "%s --emit-driver --scale 1 -o %s" kop_compile ok);
  (* untransformed driver: every access is an unguarded-error *)
  let code, out = sh_out "%s module %s" kop_lint raw in
  checki "raw module fails" 3 code;
  checkb "unguarded reported" true (contains out "L-unguarded");
  (* compiled driver lints clean *)
  let code, out = sh_out "%s module %s" kop_lint ok in
  checki "compiled module clean" 0 code;
  checkb "zero errors" true (contains out "0 error(s)")

let test_kop_lint_cert () =
  let drv = tmp "cli_lint_cert.kir" in
  checki "emit compiled" 0
    (sh "%s --emit-driver --scale 1 --optimize -o %s" kop_compile drv);
  let code, out = sh_out "%s cert %s" kop_lint drv in
  checki "certificate validates" 0 code;
  checkb "says ok" true (contains out "certificate ok");
  (* tamper with the body: the digest no longer matches *)
  let m = Carat_kop.Kir.Parser.parse_file drv in
  (match m.Carat_kop.Kir.Types.funcs with
  | f :: _ ->
    f.Carat_kop.Kir.Types.blocks <-
      f.Carat_kop.Kir.Types.blocks
      @ [ { Carat_kop.Kir.Types.b_label = "patch"; body = [];
            term = Carat_kop.Kir.Types.Ret None } ]
  | [] -> ());
  let oc = open_out drv in
  output_string oc (Carat_kop.Kir.Printer.to_string m);
  close_out oc;
  let code, out = sh_out "%s cert %s" kop_lint drv in
  checki "tampered rejected" 3 code;
  checkb "stale reported" true (contains out "stale")

let test_kop_lint_policy () =
  let pol = tmp "cli_lint_pol.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  checki "clean" 0 (sh "%s policy %s" kop_lint pol);
  (* --strict turns the canonical policy's straddle warning into a failure *)
  let code, out = sh_out "%s policy %s --strict" kop_lint pol in
  checki "strict fails on warning" 3 code;
  checkb "straddle reported" true (contains out "W-straddle")


let test_policy_manager_push_batch () =
  let pol = tmp "cli_policy_batch.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s push-batch %s" policy_manager pol in
  checki "batch into root" 0 code;
  checkb "atomic install reported" true
    (contains out "installed 2 region(s) atomically");
  let code, out = sh_out "%s push-batch %s --domain e1000e" policy_manager pol in
  checki "batch into a domain" 0 code;
  checkb "domain install reported" true (contains out "into domain 1 (e1000e)")

let test_policy_manager_domains () =
  let pol = tmp "cli_policy_doms.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  let code, out = sh_out "%s domains %s --count 3" policy_manager pol in
  checki "domains ok" 0 code;
  checkb "three live" true (contains out "3 domain(s) live");
  checkb "per-domain stats rows" true (contains out "dom3");
  checkb "procfs rendered" true (contains out "shards");
  checki "count out of range" 2 (sh "%s domains %s --count 0" policy_manager pol)

let test_policy_manager_remove_first_occurrence () =
  let pol = tmp "cli_policy_dup.kop" in
  if Sys.file_exists pol then Sys.remove pol;
  checki "init" 0 (sh "%s init -o %s" policy_manager pol);
  (* two rules at the same base: remove must peel ONE per invocation *)
  checki "dup add" 0
    (sh "%s add %s --base 0x7000 --len 0x100 --prot r- --tag one"
       policy_manager pol);
  checki "dup add 2" 0
    (sh "%s add %s --base 0x7000 --len 0x100 --prot rw --tag two"
       policy_manager pol);
  checki "first remove" 0 (sh "%s remove %s --base 0x7000" policy_manager pol);
  let code, out = sh_out "%s list %s" policy_manager pol in
  checki "list" 0 code;
  checkb "second rule survives" true (contains out "two");
  checkb "first rule gone" false (contains out "one");
  checki "second remove" 0 (sh "%s remove %s --base 0x7000" policy_manager pol);
  checki "third remove fails" 1 (sh "%s remove %s --base 0x7000" policy_manager pol)

let test_kop_lint_cert_domain () =
  let drv = tmp "cli_lint_cert_dom.kir" in
  checki "emit compiled" 0
    (sh "%s --emit-driver --scale 1 --optimize -o %s" kop_compile drv);
  (* the compiler issues an undomained certificate: a pinned verifier
     must refuse it *)
  let code, out = sh_out "%s cert %s --domain e1000e" kop_lint drv in
  checki "undomained cert fails pinned check" 3 code;
  checkb "names the mismatch" true (contains out "domain");
  (* re-issue the certificate bound to the domain, then the pinned
     verifier accepts it and a differently-pinned one refuses it *)
  let m = Carat_kop.Kir.Parser.parse_file drv in
  Carat_kop.Analysis.Certify.set_domain m "e1000e";
  (match Carat_kop.Analysis.Certify.certificate m with
  | Ok cert ->
    Carat_kop.Kir.Types.meta_set m Carat_kop.Passes.Attest.meta_cert cert
  | Error e -> Alcotest.failf "re-certify: %s" e);
  let oc = open_out drv in
  output_string oc (Carat_kop.Kir.Printer.to_string m);
  close_out oc;
  checki "bound cert passes unpinned" 0 (sh "%s cert %s" kop_lint drv);
  checki "bound cert passes pinned" 0
    (sh "%s cert %s --domain e1000e" kop_lint drv);
  checki "wrong pin refused" 3 (sh "%s cert %s --domain ixgbe" kop_lint drv)

let test_kop_run_rejects_unsigned () =
  let drv = tmp "cli_unsigned.kir" in
  (* emit WITHOUT transform or signature *)
  checki "emit raw" 0
    (sh "%s --emit-driver --scale 1 --no-transform -o %s" kop_compile drv);
  (* strip even the baseline signature by regenerating meta-free *)
  let m = Carat_kop.Kir.Parser.parse_file drv in
  m.Carat_kop.Kir.Types.meta <- [];
  let oc = open_out drv in
  output_string oc (Carat_kop.Kir.Printer.to_string m);
  close_out oc;
  let code, out = sh_out "%s %s --call e1000e_eeprom_read --args 1" kop_run drv in
  checki "rejected" 1 code;
  checkb "reason shown" true (contains out "insmod rejected");
  (* --no-enforce lets it through, like today's kernels *)
  let code, _ =
    sh_out "%s %s --no-enforce --call e1000e_eeprom_read --args 1" kop_run drv
  in
  checki "permissive mode" 0 code

let write_kir path m =
  let oc = open_out path in
  output_string oc (Carat_kop.Kir.Printer.to_string m);
  close_out oc

(* satellite: the exit-code contract is uniform across subcommands —
   0 clean (warnings allowed), 3 errors (or --strict + warnings),
   1 bad input *)
let test_kop_lint_san_matrix () =
  let open Carat_kop in
  let b = Kir.Builder.create "sanfix" in
  ignore (Kir.Builder.start_func b "df" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Kir.Types.Imm 64 ] with
  | Some p ->
    Kir.Builder.call_unit b "kfree" [ p ];
    Kir.Builder.call_unit b "kfree" [ p ]
  | None -> ());
  Kir.Builder.ret b None;
  let buggy = tmp "cli_san_buggy.kir" in
  write_kir buggy (Kir.Builder.modul b);
  let code, out = sh_out "%s san %s" kop_lint buggy in
  checki "seeded double free exits 3" 3 code;
  checkb "finding named" true (contains out "L-double-free");
  (* warnings only: clean exit, promoted to errors by --strict *)
  let b = Kir.Builder.create "warnfix" in
  ignore (Kir.Builder.start_func b "leak" ~params:[] ~ret:None);
  (match Kir.Builder.call b "kmalloc" [ Kir.Types.Imm 32 ] with
  | Some p ->
    ignore (Kir.Builder.icmp b Kir.Types.Eq Kir.Types.I64 p (Kir.Types.Imm 0))
  | None -> ());
  Kir.Builder.ret b None;
  let warn = tmp "cli_san_warn.kir" in
  write_kir warn (Kir.Builder.modul b);
  let code, out = sh_out "%s san %s" kop_lint warn in
  checki "warnings alone pass" 0 code;
  checkb "leak warned" true (contains out "L-leak-on-exit");
  checki "--strict promotes warnings" 3 (sh "%s san %s --strict" kop_lint warn);
  (* the generated driver must lint error-free at scale *)
  let drv = tmp "cli_san_drv.kir" in
  checki "emit driver" 0 (sh "%s --emit-driver --scale 1 -o %s" kop_compile drv);
  checki "driver error-free" 0 (sh "%s san %s" kop_lint drv);
  (* unparseable input is 1, like every other subcommand *)
  let junk = tmp "cli_san_junk.kir" in
  let oc = open_out junk in
  output_string oc "this is not kir\n";
  close_out oc;
  checki "parse failure exits 1" 1 (sh "%s san %s" kop_lint junk)

let test_kop_lint_race () =
  let code, out = sh_out "%s race" kop_lint in
  checki "fixture suite passes" 0 code;
  checkb "clean suites listed" true (contains out "clean-rcu-storm");
  checkb "seeded fixture listed" true (contains out "seeded-stale-window");
  checkb "verdict line" true (contains out "5/5 passed");
  checki "--strict accepted" 0 (sh "%s race --strict" kop_lint)

let test_kop_run_sanitize () =
  let drv = tmp "cli_sanrun.kir" in
  checki "emit driver" 0 (sh "%s --emit-driver --scale 1 -o %s" kop_compile drv);
  checki "sanitized run stays clean" 0
    (sh "%s %s --sanitize --call e1000e_eeprom_read --args 1" kop_run drv)

let () =
  Alcotest.run "cli"
    [
      ( "kop_compile",
        [
          Alcotest.test_case "emit driver" `Quick test_compile_emit_driver;
          Alcotest.test_case "rejects asm" `Quick test_compile_rejects_asm;
          Alcotest.test_case "no-transform" `Quick test_compile_no_transform;
        ] );
      ( "policy_manager",
        [
          Alcotest.test_case "lifecycle" `Quick test_policy_manager_lifecycle;
          Alcotest.test_case "push via ioctl" `Quick test_policy_manager_push;
          Alcotest.test_case "set-mode" `Quick test_policy_manager_set_mode;
          Alcotest.test_case "smp update storm" `Quick test_policy_manager_storm;
          Alcotest.test_case "selfheal audit" `Quick test_policy_manager_audit;
          Alcotest.test_case "lint" `Quick test_policy_manager_lint;
          Alcotest.test_case "push-batch" `Quick test_policy_manager_push_batch;
          Alcotest.test_case "domains" `Quick test_policy_manager_domains;
          Alcotest.test_case "remove peels one" `Quick
            test_policy_manager_remove_first_occurrence;
        ] );
      ( "kop_run",
        [
          Alcotest.test_case "run and panic" `Quick test_kop_run_happy_and_panic;
          Alcotest.test_case "signature gate" `Quick test_kop_run_rejects_unsigned;
          Alcotest.test_case "smp --cpus" `Quick test_kop_run_smp;
          Alcotest.test_case "--sanitize" `Quick test_kop_run_sanitize;
        ] );
      ( "kop_lint",
        [
          Alcotest.test_case "module lints" `Quick test_kop_lint_module;
          Alcotest.test_case "cert validates" `Quick test_kop_lint_cert;
          Alcotest.test_case "policy lints" `Quick test_kop_lint_policy;
          Alcotest.test_case "cert --domain" `Quick test_kop_lint_cert_domain;
          Alcotest.test_case "san exit codes" `Quick test_kop_lint_san_matrix;
          Alcotest.test_case "race suite" `Quick test_kop_lint_race;
        ] );
    ]
