(** Closure compilation of KIR functions — the VM's dispatch-free engine.

    Each function is translated once into a chain of OCaml closures: one
    accessor per operand, one closure per instruction, one per basic
    block, with branch targets pre-resolved to block indices. Executing a
    compiled function therefore pays no per-instruction [match], no
    per-operand frame hashing (registers become int-array slots), and no
    per-instruction tracer check — the wall-clock costs the interpreter
    pays on every step.

    The *simulated* machine is consulted exactly as the interpreter does:
    the same {!Machine.Model} calls in the same order with the same
    branch-site identifiers, the same {!Kernel.read}/{!Kernel.write}
    probes, the same step counting against the same budget, and the same
    panic/error messages. Cycle accounting is bit-identical by
    construction — the golden-run equivalence test in the suite holds the
    two engines to that.

    Compilation happens at module load time (a {!Kernel.add_load_hook}
    registered by {!install}); the cache is keyed by (module, function)
    and revalidated by physical equality on the function value, so a
    reloaded module recompiles. When a tracer is installed the runner
    falls back to the interpreter — tracing is cost-free tooling, so
    equivalence is unaffected. *)

open Kir.Types

(* Mutable execution frame: registers are array slots assigned at compile
   time; [set] preserves the interpreter's read-of-unset-register error. *)
type frame = { regs : int array; set : bool array }

type cfunc = {
  cf_src : func;  (** source function, for cache revalidation *)
  cf_run : int array -> int;
}

type t = {
  st : Interp.state;  (** shared stack/steps/tracer state *)
  cache : (string, cfunc) Hashtbl.t;  (** "module.function" -> compiled *)
}

let compile_func (st : Interp.state) (lm : Kernel.loaded_module) (f : func) :
    int array -> int =
  let machine = Kernel.machine st.Interp.kernel in
  let kernel = st.Interp.kernel in
  let nparams = List.length f.params in
  (* register -> frame slot *)
  let slots : (reg, int) Hashtbl.t = Hashtbl.create 32 in
  let nslots = ref 0 in
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slots r i;
      i
  in
  let param_slots = List.map (fun (r, _ty) -> slot r) f.params in
  (* operand accessor; symbols resolve per execution, exactly like the
     interpreter (module-local globals first, then kernel symbols) *)
  let value : value -> frame -> int = function
    | Imm n -> fun _ -> n
    | Reg r ->
      let i = slot r in
      fun fr ->
        if fr.set.(i) then fr.regs.(i)
        else Interp.error "read of unset register %s" r
    | Sym s -> (
      fun _ ->
        match List.assoc_opt s lm.Kernel.lm_globals with
        | Some addr -> addr
        | None -> (
          match Kernel.symbol_address kernel s with
          | Some addr -> addr
          | None -> Interp.error "unresolved symbol @%s" s))
  in
  let setter r =
    let i = slot r in
    fun fr x ->
      fr.regs.(i) <- x;
      fr.set.(i) <- true
  in
  let opt_setter = function
    | Some d -> setter d
    | None -> fun _ _ -> ()
  in
  (* argument marshalling in source order (as the interpreter's
     [List.map] evaluates), into a fresh argv array *)
  let arg_array args =
    let gargs = Array.of_list (List.map value args) in
    let n = Array.length gargs in
    if n = 0 then fun _ -> [||]
    else
      fun fr ->
        let argv = Array.make n 0 in
        for k = 0 to n - 1 do
          argv.(k) <- gargs.(k) fr
        done;
        argv
  in
  let compile_instr (i : instr) : frame -> unit =
    match i with
    | Binop { dst; op; ty; a; b } ->
      let ga = value a and gb = value b and setd = setter dst in
      let bop = Arith.binop ty op in
      fun fr ->
        Machine.Model.retire machine 1;
        (* operand order mirrors the interpreter's right-to-left
           application evaluation: b before a *)
        let vb = gb fr in
        let va = ga fr in
        let r =
          try bop va vb
          with Arith.Division_by_zero ->
            Kernel.panic kernel (Printf.sprintf "divide error in @%s" f.f_name)
        in
        setd fr r
    | Icmp { dst; cond; ty; a; b } ->
      let ga = value a and gb = value b and setd = setter dst in
      fun fr ->
        Machine.Model.retire machine 1;
        let vb = gb fr in
        let va = ga fr in
        setd fr (if Arith.compare_values ty cond va vb then 1 else 0)
    | Load { dst; ty; addr } ->
      let ga = value addr and setd = setter dst in
      let size = size_of_ty ty in
      fun fr ->
        let a = ga fr in
        setd fr (Kernel.read kernel ~addr:a ~size)
    | Store { ty; v = sv; addr } ->
      let ga = value addr and gv = value sv in
      let size = size_of_ty ty in
      fun fr ->
        let a = ga fr in
        let x = gv fr in
        Kernel.write kernel ~addr:a ~size x
    | Alloca { dst; size } ->
      let setd = setter dst in
      let aligned = (size + 15) land lnot 15 in
      fun fr ->
        Machine.Model.retire machine 1;
        if st.Interp.sp + aligned > st.Interp.stack_base + st.Interp.stack_size
        then
          Kernel.panic kernel
            (Printf.sprintf "kernel stack overflow in @%s" f.f_name);
        setd fr st.Interp.sp;
        st.Interp.sp <- st.Interp.sp + aligned
    | Gep { dst; base; idx; scale } ->
      let gb = value base and gi = value idx and setd = setter dst in
      fun fr ->
        Machine.Model.retire machine 1;
        let vi = gi fr * scale in
        let vb = gb fr in
        setd fr (vb + vi)
    | Mov { dst; ty; src } ->
      let gs = value src and setd = setter dst in
      fun fr ->
        Machine.Model.retire machine 1;
        setd fr (Arith.truncate ty (gs fr))
    | Call { dst; callee; args } ->
      let gargs = Array.of_list (List.map value args) in
      let n = Array.length gargs in
      (* argv scratch, reused across calls from this site: the callee
         consumes argv on entry (the interpreter copies it into its
         register frame, natives read it synchronously), so even a
         recursive call through this same site never observes a stale
         buffer. Guard sites fire dozens of times per packet; a fresh
         array per call was measurable in both time and minor words. *)
      let scratch = Array.make (max n 1) 0 in
      let setd = opt_setter dst in
      (* per-site symbol cache, revalidated against the kernel's symbol
         generation — register/insmod/rmmod/quarantine all bump it, so a
         hit can never call through a stale binding. Non-cacheable names
         (missing, data, tombstones) fall back to the by-name call. *)
      let site_gen = ref (-1) in
      let site_res : Kernel.resolved option ref = ref None in
      fun fr ->
        (* fill argv in source order, as the interpreter's List.map does *)
        for k = 0 to n - 1 do
          scratch.(k) <- gargs.(k) fr
        done;
        let argv = if n = 0 then [||] else scratch in
        Machine.Model.retire machine n;
        let gen = Kernel.symbol_generation kernel in
        let r =
          if !site_gen <> gen then begin
            site_gen := gen;
            site_res := Kernel.resolve kernel callee;
            match !site_res with
            | Some res -> Kernel.call_resolved kernel res argv
            | None -> Kernel.call_symbol kernel callee argv
          end
          else
            match !site_res with
            | Some res -> Kernel.call_resolved kernel res argv
            | None -> Kernel.call_symbol kernel callee argv
        in
        setd fr r
    | Callind { dst; fn; args } ->
      let gfn = value fn in
      let margs = arg_array args in
      let n = List.length args in
      let setd = opt_setter dst in
      fun fr -> (
        let target = gfn fr in
        match Kernel.symbol_of_address kernel target with
        | None ->
          Kernel.panic kernel
            (Printf.sprintf "indirect call to non-text address 0x%x" target)
        | Some name ->
          let argv = margs fr in
          Machine.Model.retire machine (1 + n);
          let r = Kernel.call_symbol kernel name argv in
          setd fr r)
    | Select { dst; cond; if_true; if_false } ->
      let gc = value cond
      and gt = value if_true
      and gf = value if_false
      and setd = setter dst in
      fun fr ->
        Machine.Model.retire machine 1;
        setd fr (if gc fr <> 0 then gt fr else gf fr)
    | Intrinsic { dst; iname; args } ->
      let margs = arg_array args in
      let setd = opt_setter dst in
      fun fr ->
        let argv = margs fr in
        let r = Kernel.exec_intrinsic kernel ~iname ~args:argv in
        setd fr r
    | Inline_asm s ->
      fun _ ->
        Kernel.panic kernel
          (Printf.sprintf "inline assembly %S executed in module %s" s
             lm.Kernel.lm_name)
  in
  (* blocks: compile bodies to closure arrays, pre-resolve jump targets *)
  let blocks = Array.of_list f.blocks in
  let nblocks = Array.length blocks in
  let block_index : (label, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      (* first definition wins, matching [find_block]'s List.find_opt *)
      if not (Hashtbl.mem block_index b.b_label) then
        Hashtbl.add block_index b.b_label i)
    blocks;
  let compiled : (frame -> int) array = Array.make (max nblocks 1) (fun _ -> 0) in
  let jump_to l =
    match Hashtbl.find_opt block_index l with
    | Some i -> fun fr -> compiled.(i) fr
    | None ->
      fun _ -> Interp.error "jump to unknown label %s in @%s" l f.f_name
  in
  let compile_term (blk : block) : frame -> int =
    match blk.term with
    | Ret None -> fun _ -> 0
    | Ret (Some rv) ->
      let g = value rv in
      fun fr -> g fr
    | Br l -> jump_to l
    | Cond_br { cond; if_true; if_false } ->
      let gc = value cond in
      let pc = Interp.branch_site f blk 0 in
      let jt = jump_to if_true and jf = jump_to if_false in
      fun fr ->
        let taken = gc fr <> 0 in
        Machine.Model.branch machine ~pc ~taken;
        if taken then jt fr else jf fr
    | Switch { v = sv; cases; default } ->
      let gs = value sv in
      let pc = Interp.branch_site f blk 1 in
      let jcases = List.map (fun (c, l) -> (c, jump_to l)) cases in
      let jd = jump_to default in
      fun fr ->
        let x = gs fr in
        Machine.Model.branch machine ~pc ~taken:(List.mem_assoc x cases);
        (match List.assoc_opt x jcases with Some j -> j fr | None -> jd fr)
    | Unreachable ->
      fun _ ->
        Kernel.panic kernel
          (Printf.sprintf "unreachable executed in @%s" f.f_name)
  in
  let budget () =
    st.Interp.steps <- st.Interp.steps + 1;
    if st.Interp.steps > st.Interp.max_steps then
      Interp.error "instruction budget exceeded (%d)" st.Interp.max_steps
  in
  Array.iteri
    (fun bi blk ->
      let instrs = Array.of_list (List.map compile_instr blk.body) in
      let ninstrs = Array.length instrs in
      let term = compile_term blk in
      compiled.(bi) <-
        (fun fr ->
          (* block entry burns a budget step, then each instruction *)
          budget ();
          for k = 0 to ninstrs - 1 do
            budget ();
            instrs.(k) fr
          done;
          term fr))
    blocks;
  let total_slots = !nslots in
  fun args ->
    if Array.length args <> nparams then
      Interp.error "call to @%s with %d args, expected %d" f.f_name
        (Array.length args) nparams;
    let fr =
      { regs = Array.make (max total_slots 1) 0;
        set = Array.make (max total_slots 1) false }
    in
    List.iteri
      (fun i si ->
        fr.regs.(si) <- args.(i);
        fr.set.(si) <- true)
      param_slots;
    let saved_sp = st.Interp.sp in
    if nblocks = 0 then
      invalid_arg ("entry_block: function " ^ f.f_name ^ " has no blocks");
    let result = compiled.(0) fr in
    (* like the interpreter, [sp] is restored only on normal return *)
    st.Interp.sp <- saved_sp;
    result

let cache_key (lm : Kernel.loaded_module) fname = lm.Kernel.lm_name ^ "." ^ fname

let compile_module t (lm : Kernel.loaded_module) =
  List.iter
    (fun (f : func) ->
      Hashtbl.replace t.cache (cache_key lm f.f_name)
        { cf_src = f; cf_run = compile_func t.st lm f })
    lm.Kernel.lm_kir.Kir.Types.funcs

(** Install the compiled engine: creates the interpreter state (stack,
    budget — identical allocation order, so both engines see the same
    memory layout), closure-compiles every loaded module plus all future
    loads, and installs a runner that dispatches to compiled code — or to
    the interpreter when a tracer is active. *)
let install ?stack_size ?max_steps kernel : t =
  let st = Interp.install ?stack_size ?max_steps kernel in
  let t = { st; cache = Hashtbl.create 64 } in
  List.iter (compile_module t) (Kernel.loaded_modules kernel);
  Kernel.add_load_hook kernel (fun _k lm -> compile_module t lm);
  Kernel.set_runner kernel (fun _k lm f args ->
      if st.Interp.tracer <> None then Interp.exec_func st lm f args
      else begin
        let key = cache_key lm f.f_name in
        match Hashtbl.find_opt t.cache key with
        | Some cf when cf.cf_src == f -> cf.cf_run args
        | _ ->
          (* unseen or replaced function (module reload): recompile *)
          let cf = { cf_src = f; cf_run = compile_func st lm f } in
          Hashtbl.replace t.cache key cf;
          cf.cf_run args
      end);
  t

let state t = t.st
let compiled_functions t = Hashtbl.length t.cache
