(** The KIR interpreter ("the CPU" running module code).

    Executes one function call at a time over the kernel's simulated
    memory, charging the machine cost model per instruction: ALU ops
    retire at issue width, loads/stores go through the cache hierarchy,
    conditional branches go through the branch predictor (keyed by a
    stable per-site identifier), and calls pay the call overhead.

    The interpreter itself is untrusted-module context: every load/store
    *the module's code performs* happens here. Guards are ordinary calls
    injected in the instruction stream, so they pay exactly the costs the
    paper describes (call overhead + the policy walk inside the guard). *)

open Kir.Types

exception Vm_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Vm_error m)) fmt

type trace_event = {
  ev_func : string;
  ev_block : string;
  ev_instr : string;  (** printed instruction, or "-> label" / "ret" *)
  ev_step : int;
}

type state = {
  kernel : Kernel.t;
  stack_base : int;
  stack_size : int;
  mutable sp : int;  (** grows upward from [stack_base] *)
  mutable steps : int;
  max_steps : int;
  mutable tracer : (trace_event -> unit) option;
      (** when set, receives every interpreted instruction — the
          [kop_run --trace] debugging aid. Tracing has zero effect on the
          simulated cost model (it is tooling, not workload). *)
}

(** Stable identifier for a branch site, fed to the branch predictor. *)
let branch_site f blk which =
  Hashtbl.hash (f.f_name, blk.b_label, which)

let value_of st (lm : Kernel.loaded_module) frame = function
  | Imm n -> n
  | Reg r -> (
    match Hashtbl.find_opt frame r with
    | Some v -> v
    | None -> error "read of unset register %s" r)
  | Sym s -> (
    (* module-local globals first, then kernel symbols *)
    match List.assoc_opt s lm.Kernel.lm_globals with
    | Some addr -> addr
    | None -> (
      match Kernel.symbol_address st.kernel s with
      | Some addr -> addr
      | None -> error "unresolved symbol @%s" s))

let exec_func st (lm : Kernel.loaded_module) (f : func) (args : int array) :
    int =
  if Array.length args <> List.length f.params then
    error "call to @%s with %d args, expected %d" f.f_name (Array.length args)
      (List.length f.params);
  let frame : (reg, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri (fun i (r, _ty) -> Hashtbl.replace frame r args.(i)) f.params;
  let saved_sp = st.sp in
  let machine = Kernel.machine st.kernel in
  let v = value_of st lm frame in
  let set r x = Hashtbl.replace frame r x in
  let trace blk what =
    match st.tracer with
    | Some fn ->
      fn
        {
          ev_func = f.f_name;
          ev_block = blk.b_label;
          ev_instr = what;
          ev_step = st.steps;
        }
    | None -> ()
  in
  let rec run_block (blk : block) : int =
    (* count the block entry itself so that instruction-free loops still
       burn budget *)
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then
      error "instruction budget exceeded (%d)" st.max_steps;
    List.iter
      (fun i ->
        st.steps <- st.steps + 1;
        if st.steps > st.max_steps then
          error "instruction budget exceeded (%d)" st.max_steps;
        if st.tracer <> None then trace blk (Kir.Printer.string_of_instr i);
        match i with
        | Binop { dst; op; ty; a; b } ->
          Machine.Model.retire machine 1;
          let r =
            try Arith.binop ty op (v a) (v b)
            with Arith.Division_by_zero ->
              Kernel.panic st.kernel
                (Printf.sprintf "divide error in @%s" f.f_name)
          in
          set dst r
        | Icmp { dst; cond; ty; a; b } ->
          Machine.Model.retire machine 1;
          set dst (if Arith.compare_values ty cond (v a) (v b) then 1 else 0)
        | Load { dst; ty; addr } ->
          let a = v addr in
          set dst (Kernel.read st.kernel ~addr:a ~size:(size_of_ty ty))
        | Store { ty; v = sv; addr } ->
          let a = v addr in
          Kernel.write st.kernel ~addr:a ~size:(size_of_ty ty) (v sv)
        | Alloca { dst; size } ->
          Machine.Model.retire machine 1;
          let aligned = (size + 15) land lnot 15 in
          if st.sp + aligned > st.stack_base + st.stack_size then
            Kernel.panic st.kernel
              (Printf.sprintf "kernel stack overflow in @%s" f.f_name);
          set dst st.sp;
          st.sp <- st.sp + aligned
        | Gep { dst; base; idx; scale } ->
          Machine.Model.retire machine 1;
          set dst (v base + (v idx * scale))
        | Mov { dst; ty; src } ->
          Machine.Model.retire machine 1;
          set dst (Arith.truncate ty (v src))
        | Call { dst; callee; args } ->
          let argv = Array.of_list (List.map v args) in
          Machine.Model.retire machine (List.length args);
          let r = Kernel.call_symbol st.kernel callee argv in
          (match dst with Some d -> set d r | None -> ())
        | Callind { dst; fn; args } -> (
          let target = v fn in
          match Kernel.symbol_of_address st.kernel target with
          | None ->
            Kernel.panic st.kernel
              (Printf.sprintf "indirect call to non-text address 0x%x" target)
          | Some name ->
            let argv = Array.of_list (List.map v args) in
            Machine.Model.retire machine (1 + List.length args);
            let r = Kernel.call_symbol st.kernel name argv in
            (match dst with Some d -> set d r | None -> ()))
        | Select { dst; cond; if_true; if_false } ->
          Machine.Model.retire machine 1;
          set dst (if v cond <> 0 then v if_true else v if_false)
        | Intrinsic { dst; iname; args } ->
          let argv = Array.of_list (List.map v args) in
          let r = Kernel.exec_intrinsic st.kernel ~iname ~args:argv in
          (match dst with Some d -> set d r | None -> ())
        | Inline_asm s ->
          (* Executing un-attested assembly from module context is exactly
             what the certification forbids; a signed module can never
             reach here (the attest pass fails compilation). *)
          Kernel.panic st.kernel
            (Printf.sprintf "inline assembly %S executed in module %s" s
               lm.Kernel.lm_name))
      blk.body;
    if st.tracer <> None then
      trace blk (Kir.Printer.string_of_term blk.term);
    match blk.term with
    | Ret None -> 0
    | Ret (Some rv) -> v rv
    | Br l -> jump l
    | Cond_br { cond; if_true; if_false } ->
      let taken = v cond <> 0 in
      Machine.Model.branch machine ~pc:(branch_site f blk 0) ~taken;
      jump (if taken then if_true else if_false)
    | Switch { v = sv; cases; default } ->
      let x = v sv in
      Machine.Model.branch machine ~pc:(branch_site f blk 1)
        ~taken:(List.mem_assoc x cases);
      jump (match List.assoc_opt x cases with Some l -> l | None -> default)
    | Unreachable ->
      Kernel.panic st.kernel
        (Printf.sprintf "unreachable executed in @%s" f.f_name)
  and jump l =
    match find_block f l with
    | Some blk -> run_block blk
    | None -> error "jump to unknown label %s in @%s" l f.f_name
  in
  let result = run_block (entry_block f) in
  st.sp <- saved_sp;
  result

(** Create an interpreter bound to [kernel] and install it as the
    kernel's KIR runner. Returns the state for inspection. *)
let install ?(stack_size = 64 * 1024) ?(max_steps = 200_000_000) kernel =
  let stack_base = Kernel.kmalloc kernel ~size:stack_size in
  let st =
    {
      kernel;
      stack_base;
      stack_size;
      sp = stack_base;
      steps = 0;
      max_steps;
      tracer = None;
    }
  in
  Kernel.set_runner kernel (fun _k lm f args -> exec_func st lm f args);
  st

(** Total instructions interpreted so far (not cycles). *)
let steps st = st.steps

(** The interpreter stack as a [(vaddr, bytes)] region. Alloca'd locals
    live here and module stores to them are real guarded stores, so a
    policy for a guarded module must include this window. *)
let stack_region st = (st.stack_base, st.stack_size)

(** Install (or clear) an instruction tracer. *)
let set_tracer st fn = st.tracer <- fn

(** Trace into a bounded in-memory ring; returns the accessor. *)
let trace_to_buffer ?(capacity = 10_000) st =
  let buf = ref [] in
  let n = ref 0 in
  set_tracer st
    (Some
       (fun ev ->
         if !n < capacity then begin
           buf := ev :: !buf;
           incr n
         end));
  fun () -> List.rev !buf
