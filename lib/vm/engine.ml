(** VM engine selection: the classic interpreter or the closure-compiled
    engine ({!Compile}). Both execute KIR over the same simulated kernel
    with bit-identical cycle accounting — the compiled engine only
    removes *host* wall-clock overhead (dispatch, hashing, tracer
    checks), never simulated work.

    Observability inherits the same contract: guard/lifecycle events are
    emitted by the policy engine underneath both runners, so a traced
    run produces the identical [carat_trace] event stream — kinds,
    sites, addresses, and cycle stamps — whichever engine executes the
    module (asserted by test_engine's traced-stream parity test). *)

type kind = Interp | Compiled

let all_kinds = [ Interp; Compiled ]
let kind_to_string = function Interp -> "interp" | Compiled -> "compiled"

let kind_of_string = function
  | "interp" | "interpreter" -> Some Interp
  | "compiled" | "compile" -> Some Compiled
  | _ -> None

(** Install the chosen engine as [kernel]'s KIR runner. Both variants
    allocate the VM stack identically, so simulated memory layout does
    not depend on the engine. Returns the shared interpreter state (used
    for stack region, step counts, and tracing; installing a tracer makes
    the compiled engine fall back to interpretation, with no effect on
    simulated cost). *)
let install ?stack_size ?max_steps ~kind kernel : Interp.state =
  match kind with
  | Interp -> Interp.install ?stack_size ?max_steps kernel
  | Compiled -> Compile.state (Compile.install ?stack_size ?max_steps kernel)
