(** /proc/carat — the operator-facing observability files, served out of
    {!Kernfs} so the rendered text lives in simulated kernel memory like
    any other file data (and can itself be covered by a region policy).

    Three files:
    - [carat/stats]: tier-invariant decision counters, per-site and
      per-region rows, fast-tier hit/miss counters, ring status;
    - [carat/trace]: the recorded guard/lifecycle event log, one line per
      event, oldest first;
    - [carat/selfheal]: the integrity layer's audit / degradation /
      rebuild counters and per-tier health, when self-healing is
      enabled;
    - [carat/domains]: per-domain region/epoch/decision counters and the
      sharded shadow statistics, when policy domains are enabled;
    - [carat/net]: per-RX-queue delivery/drop counters and NAPI loop
      accounting, when the full-duplex RX path is enabled (the renderer
      is injected by the owner of the RX state via {!set_net_render},
      keeping this library free of a net dependency);
    - [carat/san]: the memory sanitizer's report log (out-of-bounds,
      use-after-free and policy-denied accesses with allocation
      attribution), when the sanitizer is enabled on the kernel.

    Like real procfs, contents are generated on open: callers go through
    {!read_stats}/{!read_trace} (or call {!refresh} then use the plain
    VFS natives), which re-render from the live {!Trace.t} each time.
    When no trace is attached the files read as a one-line notice. *)

type t = {
  fs : Kernfs.t;
  pm : Policy.Policy_module.t;
  stats_ino : int;
  trace_ino : int;
  selfheal_ino : int;
  domains_ino : int;
  net_ino : int;
  san_ino : int;
  mutable net_render : (unit -> string) option;
}

let stats_name = "carat/stats"
let trace_name = "carat/trace"
let selfheal_name = "carat/selfheal"
let domains_name = "carat/domains"
let net_name = "carat/net"
let san_name = "carat/san"

(* file data extents are fixed-capacity; renders are truncated to fit,
   with a marker so a clipped trace is distinguishable from a short one *)
let stats_capacity = 8192
let trace_capacity = 65536
let selfheal_capacity = 2048
let domains_capacity = 8192
let net_capacity = 8192
let san_capacity = 16384

let truncate_to cap s =
  if String.length s <= cap then s
  else
    let marker = "\n...[truncated]\n" in
    String.sub s 0 (cap - String.length marker) ^ marker

let install fs pm : t =
  let mk name cap = Kernfs.create_file fs ~name ~mode:0o4 ~capacity:cap in
  let t =
    {
      fs;
      pm;
      stats_ino = mk stats_name stats_capacity;
      trace_ino = mk trace_name trace_capacity;
      selfheal_ino = mk selfheal_name selfheal_capacity;
      domains_ino = mk domains_name domains_capacity;
      net_ino = mk net_name net_capacity;
      san_ino = mk san_name san_capacity;
      net_render = None;
    }
  in
  Kernfs.write_contents fs ~ino:t.stats_ino "carat: tracing not enabled\n";
  Kernfs.write_contents fs ~ino:t.trace_ino "carat: tracing not enabled\n";
  Kernfs.write_contents fs ~ino:t.selfheal_ino
    "carat: self-healing not enabled\n";
  Kernfs.write_contents fs ~ino:t.domains_ino
    "carat: policy domains not enabled\n";
  Kernfs.write_contents fs ~ino:t.net_ino "carat: RX path not enabled\n";
  Kernfs.write_contents fs ~ino:t.san_ino "carat: sanitizer not enabled\n";
  t

let stats_ino t = t.stats_ino
let trace_ino t = t.trace_ino
let selfheal_ino t = t.selfheal_ino
let domains_ino t = t.domains_ino
let net_ino t = t.net_ino
let san_ino t = t.san_ino

(** Attach the RX-stats renderer (e.g. [Net.Rx.render] partially
    applied); [carat/net] re-renders through it on every refresh. *)
let set_net_render t f = t.net_render <- Some f

(** Re-render the files from the policy module's current state. *)
let refresh t =
  (match Policy.Policy_module.trace t.pm with
  | None -> ()
  | Some tr ->
    let region_tag base = Policy.Policy_module.region_tag t.pm base in
    Kernfs.write_contents t.fs ~ino:t.stats_ino
      (truncate_to stats_capacity (Trace.render_stats ~region_tag tr));
    Kernfs.write_contents t.fs ~ino:t.trace_ino
      (truncate_to trace_capacity (Trace.render_events tr)));
  (match Policy.Policy_module.integrity t.pm with
  | None -> ()
  | Some ig ->
    Kernfs.write_contents t.fs ~ino:t.selfheal_ino
      (truncate_to selfheal_capacity (Policy.Integrity.render ig)));
  (match Policy.Policy_module.domains t.pm with
  | None -> ()
  | Some dm ->
    Kernfs.write_contents t.fs ~ino:t.domains_ino
      (truncate_to domains_capacity (Policy.Domain.render dm)));
  (match t.net_render with
  | None -> ()
  | Some render ->
    Kernfs.write_contents t.fs ~ino:t.net_ino
      (truncate_to net_capacity (render ())));
  let kernel = t.fs.Kernfs.kernel in
  if Kernel.sanitizer_enabled kernel then
    Kernfs.write_contents t.fs ~ino:t.san_ino
      (truncate_to san_capacity (Kernel.san_render kernel))

let read_stats t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.stats_ino

let read_trace t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.trace_ino

let read_selfheal t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.selfheal_ino

let read_domains t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.domains_ino

let read_net t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.net_ino

let read_san t =
  refresh t;
  Kernfs.read_contents t.fs ~ino:t.san_ino
