(** In-kernel message queues — the substrate for the paper's §5 IPC
    extension: "for inter-process communication, the system could enforce
    policies by guarding memory regions linked to IPC mechanisms, such as
    message queues or shared memory segments".

    A queue is a contiguous kernel-memory object: a 32-byte header (head,
    tail, capacity, slot size) followed by fixed-size slots, each holding
    a length word and the payload. Producers and consumers are supposed to
    use the [mq_send]/[mq_recv] natives (core kernel, unguarded); a module
    that reads another subsystem's queue memory directly — snooping
    messages it was never granted — trips a memory guard under a policy
    that excludes the queue region. *)

let header_size = 32
let off_head = 0
let off_tail = 8
let off_capacity = 16
let off_slot_size = 24

type queue = {
  qid : int;
  base : int;  (** header vaddr *)
  capacity : int;  (** number of slots *)
  slot_size : int;  (** payload bytes per slot (plus an 8-byte length) *)
  owner : string option;  (** owning module, if created on one's behalf *)
  mutable revoked : bool;
      (** set when the owner is quarantined; operations return -EIO *)
}

type t = { kernel : Kernel.t; mutable queues : queue list; mutable next : int }

exception Mq_error of string

let slot_vaddr q i = q.base + header_size + (i * (q.slot_size + 8))

let find t qid =
  match List.find_opt (fun q -> q.qid = qid) t.queues with
  | Some q -> q
  | None -> raise (Mq_error (Printf.sprintf "no queue %d" qid))

let create kernel : t =
  let t = { kernel; queues = []; next = 1 } in
  (* natives: the legitimate IPC entry points *)
  Kernel.register_native kernel "mq_send" (fun k args ->
      match args with
      | [| qid; src; len |] -> (
        match List.find_opt (fun q -> q.qid = qid) t.queues with
        | None -> -1
        | Some q when q.revoked -> Kernel.eio
        | Some q ->
          if len > q.slot_size || len < 0 then -1
          else begin
            let head = Kernel.read k ~addr:(q.base + off_head) ~size:8 in
            let tail = Kernel.read k ~addr:(q.base + off_tail) ~size:8 in
            if tail - head >= q.capacity then -1 (* full *)
            else begin
              let slot = slot_vaddr q (tail mod q.capacity) in
              Kernel.write k ~addr:slot ~size:8 len;
              if len > 0 then
                ignore (Kernel.call_symbol k "memcpy" [| slot + 8; src; len |]);
              Kernel.write k ~addr:(q.base + off_tail) ~size:8 (tail + 1);
              len
            end
          end)
      | _ -> Kernel.panic k "mq_send: bad arguments");
  Kernel.register_native kernel "mq_recv" (fun k args ->
      match args with
      | [| qid; dst; maxlen |] -> (
        match List.find_opt (fun q -> q.qid = qid) t.queues with
        | None -> -1
        | Some q when q.revoked -> Kernel.eio
        | Some q ->
          let head = Kernel.read k ~addr:(q.base + off_head) ~size:8 in
          let tail = Kernel.read k ~addr:(q.base + off_tail) ~size:8 in
          if head >= tail then -1 (* empty *)
          else begin
            let slot = slot_vaddr q (head mod q.capacity) in
            let len = Kernel.read k ~addr:slot ~size:8 in
            let n = min len maxlen in
            if n > 0 then
              ignore (Kernel.call_symbol k "memcpy" [| dst; slot + 8; n |]);
            Kernel.write k ~addr:(q.base + off_head) ~size:8 (head + 1);
            n
          end)
      | _ -> Kernel.panic k "mq_recv: bad arguments");
  Kernel.register_native kernel "mq_depth" (fun k args ->
      match args with
      | [| qid |] -> (
        match List.find_opt (fun q -> q.qid = qid) t.queues with
        | None -> -1
        | Some q when q.revoked -> Kernel.eio
        | Some q ->
          let head = Kernel.read k ~addr:(q.base + off_head) ~size:8 in
          let tail = Kernel.read k ~addr:(q.base + off_tail) ~size:8 in
          tail - head)
      | _ -> Kernel.panic k "mq_depth: bad arguments");
  (* containment: queues created on behalf of a module are revoked when
     that module is quarantined — consumers get -EIO, not stale data *)
  Kernel.add_quarantine_hook kernel (fun k lm ->
      List.iter
        (fun q ->
          if q.owner = Some lm.Kernel.lm_name && not q.revoked then begin
            q.revoked <- true;
            Kernel.Klog.log (Kernel.log k) Kernel.Klog.Warn
              "msgq %d revoked: owner %s quarantined" q.qid lm.Kernel.lm_name
          end)
        t.queues);
  t

(** Create a queue of [capacity] slots of [slot_size] payload bytes.
    [owner] names the module the queue belongs to; its quarantine revokes
    the queue. *)
let create_queue ?owner t ~capacity ~slot_size : queue =
  if capacity <= 0 || slot_size <= 0 then
    raise (Mq_error "bad queue geometry");
  let bytes = header_size + (capacity * (slot_size + 8)) in
  let base = Kernel.kmalloc t.kernel ~size:bytes in
  let q = { qid = t.next; base; capacity; slot_size; owner; revoked = false } in
  t.next <- t.next + 1;
  Kernel.write t.kernel ~addr:(base + off_head) ~size:8 0;
  Kernel.write t.kernel ~addr:(base + off_tail) ~size:8 0;
  Kernel.write t.kernel ~addr:(base + off_capacity) ~size:8 capacity;
  Kernel.write t.kernel ~addr:(base + off_slot_size) ~size:8 slot_size;
  t.queues <- q :: t.queues;
  q

(** Kernel-side send/recv for tests and seeding. *)
let send t q s =
  let tmp = Kernel.kmalloc t.kernel ~size:(String.length s + 8) in
  Kernel.write_string t.kernel ~addr:tmp s;
  Kernel.call_symbol t.kernel "mq_send" [| q.qid; tmp; String.length s |]

let recv t q ~maxlen =
  let tmp = Kernel.kmalloc t.kernel ~size:maxlen in
  let n = Kernel.call_symbol t.kernel "mq_recv" [| q.qid; tmp; maxlen |] in
  if n < 0 then None else Some (Kernel.read_string t.kernel ~addr:tmp ~len:n)

let depth t q = Kernel.call_symbol t.kernel "mq_depth" [| q.qid |]

(** The whole queue object (header + slots) as a policy region. *)
let queue_region q ~prot =
  Policy.Region.v ~tag:(Printf.sprintf "msgq-%d" q.qid) ~base:q.base
    ~len:(header_size + (q.capacity * (q.slot_size + 8)))
    ~prot ()
