(** Kernel timers with module callbacks — the substrate behind the HPC
    modules the paper's introduction motivates: "fast timer delivery for
    heartbeat scheduling" (the Rainey et al. heartbeat work the paper
    cites as its own deployment experience).

    A module arms a timer by passing the *address* of one of its
    functions ([timer_arm(fn, delay_cycles, period_cycles)] native); when
    simulated time passes the deadline, the kernel invokes the callback —
    kernel-to-module control transfer, exactly how real timer callbacks
    re-enter module code. Callbacks of protected modules therefore run
    fully guarded, and a callback that violates policy panics the kernel
    from interrupt context, which the tests pin down.

    Timers are driven by {!run_pending} (the timer-interrupt analogue),
    typically called by a workload loop after advancing the clock. *)

type timer = {
  id : int;
  target : string;  (** resolved callback symbol *)
  mutable deadline : int;  (** cycles *)
  period : int;  (** 0 = one-shot *)
  mutable cancelled : bool;
  mutable fires : int;
}

type t = {
  kernel : Kernel.t;
  mutable timers : timer list;
  mutable next_id : int;
  mutable total_fires : int;
}

let create kernel : t =
  let t = { kernel; timers = []; next_id = 1; total_fires = 0 } in
  Kernel.register_native kernel "timer_arm" (fun k args ->
      match args with
      | [| fn_addr; delay; period |] -> (
        match Kernel.symbol_of_address k fn_addr with
        | None -> -1 (* not a function the kernel knows *)
        | Some target ->
          let id = t.next_id in
          t.next_id <- id + 1;
          let now = Machine.Model.cycles (Kernel.machine k) in
          t.timers <-
            {
              id;
              target;
              deadline = now + max 0 delay;
              period = max 0 period;
              cancelled = false;
              fires = 0;
            }
            :: t.timers;
          id)
      | _ -> Kernel.panic k "timer_arm: bad arguments");
  Kernel.register_native kernel "timer_cancel" (fun k args ->
      match args with
      | [| id |] -> (
        match List.find_opt (fun tm -> tm.id = id && not tm.cancelled) t.timers with
        | Some tm ->
          tm.cancelled <- true;
          0
        | None -> -1)
      | _ -> Kernel.panic k "timer_cancel: bad arguments");
  (* containment: a quarantined module's armed callbacks must never fire
     again — cancel every timer whose target function belongs to it *)
  Kernel.add_quarantine_hook kernel (fun k lm ->
      List.iter
        (fun tm ->
          if
            (not tm.cancelled)
            && Kir.Types.find_func lm.Kernel.lm_kir tm.target <> None
          then begin
            tm.cancelled <- true;
            Kernel.Klog.log (Kernel.log k) Kernel.Klog.Warn
              "timer %d cancelled: callback @%s belongs to quarantined module %s"
              tm.id tm.target lm.Kernel.lm_name
          end)
        t.timers);
  t

let active t = List.filter (fun tm -> not tm.cancelled) t.timers

(** Fire every timer whose deadline has passed, in deadline order (the
    timer softirq). Each firing charges interrupt entry/exit and calls
    the armed function with the timer id. Periodic timers re-arm
    themselves; at most [max_fires] callbacks run per invocation (budget
    against runaway periodic timers). Returns the number fired. *)
let run_pending ?(max_fires = 64) t : int =
  let machine = Kernel.machine t.kernel in
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_fires do
    let now = Machine.Model.cycles machine in
    let due =
      List.filter (fun tm -> (not tm.cancelled) && tm.deadline <= now) t.timers
    in
    match List.sort (fun a b -> compare a.deadline b.deadline) due with
    | [] -> continue := false
    | tm :: _ ->
      incr fired;
      tm.fires <- tm.fires + 1;
      t.total_fires <- t.total_fires + 1;
      if tm.period > 0 then tm.deadline <- tm.deadline + tm.period
      else tm.cancelled <- true;
      (* interrupt entry/exit *)
      Machine.Model.add_cycles machine 110;
      ignore (Kernel.call_symbol t.kernel tm.target [| tm.id |])
  done;
  (* drop dead one-shots *)
  t.timers <- List.filter (fun tm -> not tm.cancelled) t.timers;
  !fired

let total_fires t = t.total_fires

(** Advance simulated time and deliver everything that becomes due —
    convenience for tests and examples. *)
let advance t ~cycles =
  Machine.Model.add_cycles (Kernel.machine t.kernel) cycles;
  run_pending t
