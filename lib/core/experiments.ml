(** Experiment runners reproducing every figure in the paper's evaluation
    (§4.2), plus the ablations DESIGN.md commits to. Each runner returns
    structured data; the bench harness renders it. Everything is seeded
    and deterministic. *)

type throughput_series = {
  label : string;
  pps : float array;  (** one sample per trial *)
}

type throughput_result = {
  machine_name : string;
  packet_size : int;
  series : throughput_series list;
}

(* ------------------------------------------------------------------ *)

(** Run [trials] pktgen trials on a fresh testbed per series. Each trial
    reuses the warm testbed but perturbs caches and reseeds noise, like
    back-to-back runs on a live machine. *)
let throughput_trials ~(config : Testbed.config) ~label ~trials ~packets
    ~size () : throughput_series =
  let tb = Testbed.create ~config () in
  let machine = Testbed.machine tb in
  (* warmup: predictor and caches reach steady state *)
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size; seed = 999 });
  let pps =
    Array.init trials (fun i ->
        let rng = Machine.Rng.create ((config.Testbed.seed * 7919) + i) in
        Machine.Model.perturb machine rng ~fraction:0.08;
        let r =
          Testbed.run_pktgen tb
            { Net.Pktgen.default_config with count = packets; size; seed = i }
        in
        r.Net.Pktgen.pps)
  in
  { label; pps }

let base_config machine =
  { Testbed.default_config with machine; stall_prob = 0.0002 }

(** Figures 3 and 4: throughput CDF, 128-byte packets, two regions,
    carat vs baseline, on the given machine. [engine] selects the KIR
    execution engine; simulated results are engine-independent (the
    golden-run test pins this), so it only changes host wall-clock. *)
let fig_throughput_cdf ?(trials = 41) ?(packets = 600)
    ?(engine = Testbed.default_config.engine)
    (machine : Machine.Model.params) : throughput_result =
  let size = 128 in
  let carat =
    throughput_trials
      ~config:{ (base_config machine) with technique = Carat; engine }
      ~label:"carat" ~trials ~packets ~size ()
  in
  let baseline =
    throughput_trials
      ~config:{ (base_config machine) with technique = Baseline; engine }
      ~label:"baseline" ~trials ~packets ~size ()
  in
  { machine_name = machine.Machine.Model.name; packet_size = size;
    series = [ carat; baseline ] }

let fig3 ?trials ?packets ?engine () =
  fig_throughput_cdf ?trials ?packets ?engine Machine.Presets.r415

let fig4 ?trials ?packets ?engine () =
  fig_throughput_cdf ?trials ?packets ?engine Machine.Presets.r350

(** Figure 5: vary the number of regions n ∈ {2, 16, 64} on the R350.
    Padding regions precede the real rules, so conforming accesses pay the
    full scan — the linear table's worst case. *)
let fig5 ?(trials = 41) ?(packets = 600)
    ?(engine = Testbed.default_config.engine) () : throughput_result =
  let machine = Machine.Presets.r350 in
  let size = 128 in
  let carat_n n label =
    throughput_trials
      ~config:
        {
          (base_config machine) with
          technique = Carat;
          policy = Policy.Region.kernel_only_padded n;
          engine;
        }
      ~label ~trials ~packets ~size ()
  in
  let series =
    [
      carat_n 2 "carat";
      carat_n 16 "carat16";
      carat_n 64 "carat64";
      throughput_trials
        ~config:{ (base_config machine) with technique = Baseline; engine }
        ~label:"baseline" ~trials ~packets ~size ();
    ]
  in
  { machine_name = machine.Machine.Model.name; packet_size = size; series }

(* ------------------------------------------------------------------ *)

type slowdown_point = {
  size : int;
  baseline_pps : float;
  carat_pps : float;
  slowdown : float;
}

(** Figure 6: slowdown vs packet size, R350, two regions. We report the
    slowdown of medians: at large sizes both builds are wire-limited and
    occasionally hit multi-millisecond descheduling episodes, which make
    means noisy without carrying information about the guards. *)
let fig6 ?(trials = 15) ?(packets = 500)
    ?(sizes = [ 64; 128; 256; 512; 1024; 1500 ])
    ?(engine = Testbed.default_config.engine) () : slowdown_point list =
  let machine = Machine.Presets.r350 in
  List.map
    (fun size ->
      let carat =
        throughput_trials
          ~config:{ (base_config machine) with technique = Carat; engine }
          ~label:"carat" ~trials ~packets ~size ()
      in
      let baseline =
        throughput_trials
          ~config:{ (base_config machine) with technique = Baseline; engine }
          ~label:"baseline" ~trials ~packets ~size ()
      in
      let b = Stats.Summary.median baseline.pps
      and c = Stats.Summary.median carat.pps in
      { size; baseline_pps = b; carat_pps = c; slowdown = b /. c })
    sizes

(* ------------------------------------------------------------------ *)

type latency_result = {
  base_latencies : int array;
  carat_latencies : int array;
  base_median : float;  (** including outliers, as the paper reports *)
  carat_median : float;
}

(** Figure 7: per-sendmsg latency in cycles, R350, two regions, 128-byte
    packets. Histogram rendering excludes outliers; medians include
    them. *)
let fig7 ?(packets = 8000) ?(engine = Testbed.default_config.engine) () :
    latency_result =
  let machine = Machine.Presets.r350 in
  let run technique =
    let tb =
      Testbed.create
        ~config:
          {
            (base_config machine) with
            technique;
            engine;
            (* a touch of device stall makes ring-full outliers appear,
               as in the paper's description of hidden outliers *)
            stall_prob = 0.0004;
          }
        ()
    in
    ignore
      (Testbed.run_pktgen tb
         { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
    let r =
      Testbed.run_pktgen tb
        { Net.Pktgen.default_config with count = packets; size = 128; seed = 5 }
    in
    r.Net.Pktgen.latencies
  in
  let base = run Testbed.Baseline in
  let carat = run Testbed.Carat in
  {
    base_latencies = base;
    carat_latencies = carat;
    base_median = Stats.Summary.median (Array.map float_of_int base);
    carat_median = Stats.Summary.median (Array.map float_of_int carat);
  }

(* ------------------------------------------------------------------ *)

type transform_stats = {
  functions : int;
  kir_instructions : int;
  memory_ops : int;
  guards_inserted : int;
  kir_text_lines : int;
  signature : string;
}

(** §4 in-text accounting: the scale of the transformed driver (the paper
    reports the e1000e at ~19k LoC and the pass at ~200 LoC). *)
let transform_accounting ?(module_scale = 12) () : transform_stats =
  let m = Nic.Driver_gen.generate ~module_scale () in
  let memory_ops = Kir.Types.module_memory_op_count m in
  ignore (Passes.Pipeline.compile m);
  let text = Kir.Printer.to_string m in
  {
    functions = List.length m.Kir.Types.funcs;
    kir_instructions = Kir.Types.module_instr_count m;
    memory_ops;
    guards_inserted = Passes.Guard_injection.count_guards m;
    kir_text_lines =
      List.length (String.split_on_char '\n' text);
    signature =
      (match Kir.Types.meta_find m Passes.Signing.meta_sig with
      | Some s -> s
      | None -> "<unsigned>");
  }

(* ------------------------------------------------------------------ *)

type placement = Rule_first | Rule_last

let placement_to_string = function
  | Rule_first -> "first"
  | Rule_last -> "last"

type policy_bench_point = {
  structure : string;
  regions : int;
  placement : placement;
      (** where the matching rule sits relative to the padding — the
          linear table's best case (first) and worst case (last) *)
  cycles_per_check : float;
  entries_scanned_per_check : float;
}

(** Ablation [abl-policy]: simulated cost of one [carat_guard] check
    across policy structures and region counts, measured on a hot loop of
    conforming kernel-address probes (the paper's common case).
    [site_cache_rows] appends "+ic" rows for the linear and shadow
    structures with the per-guard-site inline cache enabled, probing
    through {!Policy.Engine.check_fast} from a small rotating set of
    guard sites, as the injected driver does. *)
let policy_structure_bench ?(checks = 4000)
    ?(region_counts = [ 2; 8; 16; 32; 64 ])
    ?(kinds = Policy.Engine.all_kinds)
    ?(placements = [ Rule_last; Rule_first ])
    ?(site_cache_rows = false) () : policy_bench_point list =
  let bench ~kind ~ic ~placement n =
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
    let engine = Policy.Engine.create ~kind ~capacity:64 kernel in
    let rule =
      Policy.Region.v ~tag:"kernel" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw ()
    in
    let policy =
      (* non-overlapping variant so every structure can hold it *)
      match placement with
      | Rule_last -> Policy.Region.padding (n - 1) @ [ rule ]
      | Rule_first -> rule :: Policy.Region.padding (n - 1)
    in
    match
      List.fold_left
        (fun acc r ->
          match acc with
          | Error _ as e -> e
          | Ok () -> Policy.Engine.add_region engine r)
        (Ok ()) policy
    with
    | Error _ -> None
    | Ok () ->
      if ic then Policy.Engine.enable_site_cache engine;
      let machine = Kernel.machine kernel in
      let addr = Kernel.Layout.direct_map_base + 0x4000 in
      let probe i =
        if ic then
          ignore
            (Policy.Engine.check_fast engine ~site:(i land 7)
               ~addr:(addr + (i * 8 mod 256))
               ~size:8 ~flags:Policy.Region.prot_read)
        else
          ignore
            (Policy.Engine.check engine
               ~addr:(addr + (i * 8 mod 256))
               ~size:8 ~flags:Policy.Region.prot_read)
      in
      (* warmup *)
      for i = 0 to 400 do
        probe i
      done;
      Policy.Engine.reset_stats engine;
      let c0 = Machine.Model.cycles machine in
      for i = 0 to checks - 1 do
        probe i
      done;
      let c1 = Machine.Model.cycles machine in
      let st = Policy.Engine.stats engine in
      Some
        {
          structure =
            Policy.Engine.kind_to_string kind ^ (if ic then "+ic" else "");
          regions = n;
          placement;
          cycles_per_check = float_of_int (c1 - c0) /. float_of_int checks;
          entries_scanned_per_check =
            float_of_int st.Policy.Engine.entries_scanned
            /. float_of_int st.Policy.Engine.checks;
        }
  in
  let combos ks =
    List.concat_map (fun k -> List.map (fun p -> (k, p)) placements) ks
  in
  List.concat_map
    (fun (kind, placement) ->
      List.filter_map (fun n -> bench ~kind ~ic:false ~placement n)
        region_counts)
    (combos kinds)
  @
  if site_cache_rows then
    List.concat_map
      (fun (kind, placement) ->
        List.filter_map (fun n -> bench ~kind ~ic:true ~placement n)
          region_counts)
      (combos [ Policy.Engine.Linear; Policy.Engine.Shadow ])
  else []

(* ------------------------------------------------------------------ *)

type mechanism_point = {
  variant : string;
  baseline_pps : float;
  carat_pps : float;
  overhead_pct : float;
}

(** Mechanism-sensitivity ablation: §4.2 credits "improved caching,
    branch prediction, and speculation" for the R350's near-zero guard
    cost. Knock each mechanism out of the machine model individually and
    measure how the guard overhead responds — if the paper's explanation
    is right, every knockout must inflate it. *)
let mechanism_sensitivity ?(trials = 9) ?(packets = 300) () :
    mechanism_point list =
  let r350 = Machine.Presets.r350 in
  let variants =
    [
      ("r350 (stock)", r350);
      ( "no speculative overlap",
        { r350 with Machine.Model.speculative_overlap = 1.0 } );
      ( "weak branch predictor",
        { r350 with Machine.Model.predictor_entries_log2 = 4;
          predictor_history_bits = 2 } );
      ( "narrow core (1-wide)",
        { r350 with Machine.Model.issue_width = 1 } );
    ]
  in
  List.map
    (fun (variant, machine) ->
      let med technique =
        let series =
          throughput_trials
            ~config:{ (base_config machine) with technique }
            ~label:"x" ~trials ~packets ~size:128 ()
        in
        Stats.Summary.median series.pps
      in
      let b = med Testbed.Baseline in
      let c = med Testbed.Carat in
      { variant; baseline_pps = b; carat_pps = c;
        overhead_pct = (b -. c) /. b *. 100.0 })
    variants

type opt_ablation = {
  technique : string;
  static_guards : int;
  checks_per_packet : float;  (** dynamic carat_guard invocations *)
  checks_per_eeprom_read : float;
      (** dynamic checks in one loopy diagnostic call — where hoisting
          pays off, in contrast to the redundancy-free hot path *)
  pps_mean : float;
  sendmsg_median : float;
}

(** Ablation [abl-opt]: the paper's unoptimized guards vs the CARAT-CAKE
    style optimizing pipeline (redundant elimination + loop hoisting). *)
let guard_optimization_ablation ?(trials = 11) ?(packets = 500) () :
    opt_ablation list =
  let machine = Machine.Presets.r350 in
  let run label technique opt =
    let config = { (base_config machine) with technique; guard_opt = opt } in
    let tb = Testbed.create ~config () in
    ignore
      (Testbed.run_pktgen tb
         { Net.Pktgen.default_config with count = 200; size = 128; seed = 999 });
    let pps = ref [] and lats = ref [] in
    for i = 0 to trials - 1 do
      let r =
        Testbed.run_pktgen tb
          { Net.Pktgen.default_config with count = packets; size = 128; seed = i }
      in
      pps := r.Net.Pktgen.pps :: !pps;
      lats := Array.to_list r.Net.Pktgen.latencies @ !lats
    done;
    let pps = Array.of_list !pps in
    let st =
      Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
    in
    let checks_per_packet =
      float_of_int st.Policy.Engine.checks
      /. float_of_int (max 1 (Net.Netstack.sent tb.Testbed.stack))
    in
    (* the loopy diagnostic: hoisting lifts its loop-invariant guard *)
    Policy.Engine.reset_stats
      (Policy.Policy_module.engine tb.Testbed.policy_module);
    let calls = 50 in
    for w = 0 to calls - 1 do
      ignore
        (Kernel.call_symbol tb.Testbed.kernel "e1000e_eeprom_read"
           [| w land 15 |])
    done;
    let st =
      Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
    in
    {
      technique = label;
      static_guards = Passes.Guard_injection.count_guards tb.Testbed.driver_kir;
      checks_per_packet;
      checks_per_eeprom_read =
        float_of_int st.Policy.Engine.checks /. float_of_int calls;
      pps_mean =
        Array.fold_left ( +. ) 0.0 pps /. float_of_int (Array.length pps);
      sendmsg_median =
        Stats.Summary.median
          (Array.map float_of_int (Array.of_list !lats));
    }
  in
  [
    run "baseline" Testbed.Baseline Passes.Pipeline.O_none;
    run "carat (unoptimized, as in paper)" Testbed.Carat Passes.Pipeline.O_none;
    run "carat + guard optimizations" Testbed.Carat Passes.Pipeline.O_basic;
    run "carat + certified optimizer" Testbed.Carat Passes.Pipeline.O_aggressive;
  ]
