(** N-CPU assembly of the evaluation stack: one kernel image, one
    e1000e-class device, a multi-queue driver build, and per-CPU
    netstacks (CPU [i] owns TX queue [i]) interleaved by the
    deterministic {!Smp.Sched} round-robin. Policy mutations route
    through the {!Smp.Rcu} publish path when more than one CPU exists.

    Every CPU count uses the *same* multi-queue driver build and
    per-queue MSI-X completion path, so the smpscale efficiency numbers
    compare scaling, not classic-vs-multiqueue code-path deltas. *)

type config = {
  machine : Machine.Model.params;
  technique : Testbed.technique;
  policy : Policy.Region.t list;
  structure : Policy.Engine.kind;
  capacity : int;
  ring_entries : int;
  seed : int;
  on_deny : Policy.Policy_module.on_deny;
  site_cache : bool;
  guard_opt : Passes.Pipeline.opt_level;
  cpus : int;
  module_scale : int;
  rx_queues : int;
      (** 0 = TX-only (the classic build, byte-identical driver);
          > 0 = full duplex with this many RSS-steered RX rings *)
  rx_budget : int;  (** NAPI poll budget (frames per softirq pass) *)
  rx_coalesce : int;  (** device interrupt coalescing (frames/cause) *)
}

let default_config =
  {
    machine = Machine.Presets.r350;
    technique = Testbed.Carat;
    policy = Policy.Region.kernel_only;
    structure = Policy.Engine.Linear;
    capacity = Policy.Linear_table.default_capacity;
    ring_entries = 64;
    seed = 1;
    on_deny = Policy.Policy_module.Panic;
    site_cache = true;
    guard_opt = Passes.Pipeline.O_none;
    cpus = 1;
    module_scale = 12;
    rx_queues = 0;
    rx_budget = 32;
    rx_coalesce = 4;
  }

type t = {
  config : config;
  kernel : Kernel.t;
  policy_module : Policy.Policy_module.t;
  device : Nic.Device.t;
  stacks : Net.Netstack.t array;  (** stack [i] sends on TX queue [i] *)
  smp : Smp.System.t;
  driver_kir : Kir.Types.modul;
  rx : Net.Rx.t option;  (** NAPI state, present iff [rx_queues > 0] *)
}

let create ?(config = default_config) () : t =
  let n = config.cpus in
  if n < 1 || n > Nic.Regs.max_tx_queues then
    invalid_arg "Smp_testbed.create: cpus out of range";
  let require_signature = config.technique = Testbed.Carat in
  let kernel =
    Kernel.create ~require_signature ~seed:config.seed config.machine
  in
  ignore (Vm.Engine.install ~kind:Vm.Engine.Interp kernel);
  let policy_module =
    Policy.Policy_module.install ~kind:config.structure
      ~capacity:config.capacity ~on_deny:config.on_deny
      ~site_cache:config.site_cache kernel
  in
  (match config.technique with
  | Testbed.Carat -> Policy.Policy_module.set_policy policy_module config.policy
  | Testbed.Baseline -> ());
  let device = Nic.Device.create ~seed:(config.seed + 17) kernel in
  (* all TX queues in the silicon regardless of CPU count; we only set up
     the ones that have a CPU behind them *)
  if config.rx_queues > Nic.Regs.max_rx_queues then
    invalid_arg "Smp_testbed.create: rx_queues out of range";
  let driver_kir =
    Nic.Driver_gen.generate ~module_scale:config.module_scale
      ~tx_queues:Nic.Regs.max_tx_queues ~rx_queues:config.rx_queues ()
  in
  (match config.technique with
  | Testbed.Carat -> ignore (Passes.Pipeline.compile ~opt:config.guard_opt driver_kir)
  | Testbed.Baseline ->
    ignore
      (Passes.Pass.run_pipeline_checked (Passes.Pipeline.baseline_sign ())
         driver_kir));
  (match Kernel.insmod kernel driver_kir with
  | Ok _ -> ()
  | Error e -> failwith ("insmod e1000e: " ^ Kernel.load_error_to_string e));
  let stacks =
    Array.init n (fun i ->
        Net.Netstack.create ~queue:i
          ~noise_seed:(config.seed + 31 + (i * 101))
          kernel device)
  in
  (* probe once (adapter init + transmitter enable), then each CPU's
     queue gets its own ring *)
  Net.Netstack.bring_up stacks.(0) ~ring_entries:config.ring_entries;
  Array.iter
    (fun s -> Net.Netstack.bring_up_queue s ~ring_entries:config.ring_entries)
    stacks;
  let rx =
    if config.rx_queues > 0 then begin
      let rx =
        Net.Rx.create ~budget:config.rx_budget ~coalesce:config.rx_coalesce
          kernel device ~queues:config.rx_queues
      in
      Net.Rx.bring_up rx ~ring_entries:config.ring_entries ~bufsz:2048;
      Some rx
    end
    else None
  in
  let smp =
    Smp.System.create ~seed:config.seed ~params:config.machine ~cpus:n kernel
      policy_module
  in
  { config; kernel; policy_module; device; stacks; smp; driver_kir; rx }

let kernel t = t.kernel
let policy_module t = t.policy_module
let smp t = t.smp
let stacks t = t.stacks
let device t = t.device
let rx t = t.rx
let engine t = Smp.System.engine t.smp

(* ------------------------------------------------------------------ *)
(* the per-CPU pktgen workload *)

type cpu_result = {
  cr_cpu : int;
  cr_sent : int;
  cr_cycles : int;  (** cycles this CPU's clock advanced over the run *)
  cr_seconds : float;
  cr_pps : float;  (** this CPU's private launch rate *)
  cr_ipis : int;
  cr_ipi_cycles : int;
}

type result = {
  per_cpu : cpu_result array;
  total_sent : int;
  elapsed_seconds : float;  (** slowest CPU — the run's wall time *)
  pps : float;  (** aggregate: total packets over the run's wall time *)
  interleave : int list;  (** CPU id per scheduler operation, in order *)
  slices : int;
  publications : int;
  retired : int;
  ipis : int;
  ipi_cycles : int;
  grace_quiescents : int;
  stale_allows : int;
      (** paranoid cross-check failures: inline-cache allows that the
          published policy would deny (must be 0) *)
  send_errors : int;
}

(** One pktgen-style packet on [stack]: mirrors {!Net.Pktgen.run}'s
    per-packet body (tool-side frame build + fixed ns slice outside the
    timed window, then the sendmsg). Charged to whichever machine is
    current — the scheduler guarantees that is CPU [cpu]'s. *)
let send_one t stack rng user_buf ~seq ~size ~tool_ns ~tool_instructions =
  let k = t.kernel in
  let machine = Kernel.machine k in
  Net.Netstack.poll_interrupts stack;
  let frame = Net.Frame.build ~seq ~size () in
  Kernel.write_string k ~addr:user_buf frame;
  Machine.Model.memcpy machine ~dst:user_buf ~src:(user_buf + 4096) size;
  Machine.Model.retire machine tool_instructions;
  let jitter = 0.97 +. (0.06 *. Machine.Rng.float rng) in
  Machine.Model.add_cycles machine
    (int_of_float (tool_ns *. jitter *. machine.Machine.Model.p.freq_ghz));
  match Net.Netstack.try_sendmsg stack ~user_buf ~len:size with
  | Ok _ -> true
  | Error _ -> false

(** Rotate a policy: same set of regions, different table order. Both
    orders make identical decisions for disjoint regions, so alternating
    between them is pure update churn — any behavioural difference a CPU
    observes is a publication bug. *)
let rotate = function [] -> [] | r :: rest -> rest @ [ r ]

(** Run [count] packets of [size] bytes on every CPU, interleaved by the
    seeded scheduler. [storm] > 0 makes CPU 0 replace the whole policy
    (rotated) every [storm]-th operation — the concurrent-ioctl update
    storm — while the other CPUs keep sending. Paranoid verification is
    on for the whole run: every inline-cache allow is cross-checked
    against the published policy and mismatches are counted in
    [stale_allows]. *)
let run_pktgen ?(count = 1000) ?(size = 128) ?(storm = 0)
    ?(tool_ns = 6800.0) ?(tool_instructions = 2600) t : result =
  let n = Array.length t.stacks in
  let engine = Smp.System.engine t.smp in
  Policy.Engine.set_verify engine true;
  let rngs =
    Array.init n (fun i -> Machine.Rng.create (t.config.seed + (i * 7919)))
  in
  let user_bufs =
    Array.init n (fun _ -> Kernel.map_user t.kernel ~size:2048)
  in
  let sent = Array.make n 0 in
  let seqs = Array.make n 0 in
  let errors = ref 0 in
  let start_cycles =
    Array.map (fun (c : Smp.Cpu.t) -> Smp.Cpu.cycles c) (Smp.System.cpus t.smp)
  in
  let storm_policy = ref t.config.policy in
  let storm_count = ref 0 in
  let steps =
    Array.init n (fun cpu () ->
        let storming =
          storm > 0 && cpu = 0
          && t.config.technique = Testbed.Carat
          && seqs.(cpu) mod storm = storm - 1
        in
        if storming then begin
          (* whole-policy replace through the mutation router: one RCU
             generation swap under load *)
          storm_policy := rotate !storm_policy;
          let rc =
            Policy.Policy_module.replace_policy t.policy_module
              ~default_allow:(Policy.Engine.default_allow engine)
              !storm_policy
          in
          if rc <> 0 then incr errors;
          incr storm_count;
          seqs.(cpu) <- seqs.(cpu) + 1;
          sent.(cpu) < count
        end
        else begin
          let ok =
            send_one t t.stacks.(cpu) rngs.(cpu) user_bufs.(cpu)
              ~seq:seqs.(cpu) ~size ~tool_ns ~tool_instructions
          in
          seqs.(cpu) <- seqs.(cpu) + 1;
          if ok then sent.(cpu) <- sent.(cpu) + 1 else incr errors;
          sent.(cpu) < count && seqs.(cpu) < count * 4
        end)
  in
  let interleave, sstats = Smp.System.run t.smp steps in
  let cpus = Smp.System.cpus t.smp in
  let freq = t.config.machine.Machine.Model.freq_ghz in
  let per_cpu =
    Array.mapi
      (fun i (c : Smp.Cpu.t) ->
        let cyc = Smp.Cpu.cycles c - start_cycles.(i) in
        let secs = float_of_int (max 1 cyc) /. (freq *. 1e9) in
        {
          cr_cpu = i;
          cr_sent = sent.(i);
          cr_cycles = cyc;
          cr_seconds = secs;
          cr_pps = float_of_int sent.(i) /. secs;
          cr_ipis = c.Smp.Cpu.ipis_taken;
          cr_ipi_cycles = c.Smp.Cpu.ipi_cycles;
        })
      cpus
  in
  let total_sent = Array.fold_left ( + ) 0 sent in
  let elapsed =
    Array.fold_left (fun a r -> max a r.cr_seconds) 0.0 per_cpu
  in
  let rs = Smp.Rcu.stats (Smp.System.rcu t.smp) in
  Policy.Engine.set_verify engine false;
  {
    per_cpu;
    total_sent;
    elapsed_seconds = elapsed;
    pps = float_of_int total_sent /. elapsed;
    interleave;
    slices = sstats.Smp.Sched.slices;
    publications = rs.Smp.Rcu.publications;
    retired = rs.Smp.Rcu.retired;
    ipis = rs.Smp.Rcu.ipis_taken;
    ipi_cycles = rs.Smp.Rcu.ipi_cycles;
    grace_quiescents = rs.Smp.Rcu.grace_quiescents;
    stale_allows = Policy.Engine.stale_allows engine;
    send_errors = !errors;
  }

(* ------------------------------------------------------------------ *)
(* the full-duplex traffic workload *)

type duplex_cpu = {
  dc_cpu : int;
  dc_sent : int;
  dc_rx_frames : int;  (** frames this CPU's NAPI loop consumed *)
  dc_cycles : int;
  dc_seconds : float;
  dc_tx_pps : float;
  dc_rx_pps : float;
}

type duplex_result = {
  d_per_cpu : duplex_cpu array;
  d_sent : int;
  d_injected : int;  (** frames offered to the device by the generator *)
  d_rx_frames : int;  (** frames delivered through the NAPI path *)
  d_rx_dropped : int;  (** device-side drops (overrun / unconfigured) *)
  d_elapsed_seconds : float;
  d_tx_pps : float;
  d_rx_pps : float;
  d_latencies : float array;
      (** per-frame arrival-to-delivery latency, cycles *)
  d_rx_irqs : int;
  d_rx_polls : int;
  d_budget_exhausted : int;
  d_timer_kicks : int;
  d_publications : int;
  d_retired : int;
  d_ipis : int;
  d_stale_allows : int;
  d_send_errors : int;
}

(** Full-duplex run: every CPU alternates generator arrivals (frames
    injected into the device, RSS-steered onto RX rings by flow hash),
    NAPI service of its *own* RX queue, and pktgen-style TX sends —
    interleaved by the seeded scheduler. [churn] > 0 makes CPU 0 replace
    the whole policy (rotated) every [churn]-th operation, the RCU update
    storm running concurrently with guarded RX. [rx_per_step] arrivals
    are offered per scheduler step; injection's simulated-memory cost is
    charged to the injecting CPU (the model's stand-in for the wire).
    Requires [config.rx_queues >= cpus]. Paranoid verification is on for
    the whole run. *)
let run_traffic ?(count = 500) ?(size = 128) ?(churn = 0) ?(flows = 4096)
    ?(rx_per_step = 2) ?(tool_ns = 6800.0) ?(tool_instructions = 2600) t :
    duplex_result =
  let n = Array.length t.stacks in
  let rx =
    match t.rx with
    | Some rx -> rx
    | None -> invalid_arg "run_traffic: testbed built without rx_queues"
  in
  if Net.Rx.queues rx < n then
    invalid_arg "run_traffic: fewer RX queues than CPUs";
  let engine = Smp.System.engine t.smp in
  Policy.Engine.set_verify engine true;
  let fg = Net.Flowgen.create ~flows ~seed:(t.config.seed + 977) () in
  let rngs =
    Array.init n (fun i -> Machine.Rng.create (t.config.seed + (i * 7919)))
  in
  let user_bufs =
    Array.init n (fun _ -> Kernel.map_user t.kernel ~size:2048)
  in
  let sent = Array.make n 0 in
  let seqs = Array.make n 0 in
  let injected = ref 0 in
  let errors = ref 0 in
  let all_cpus = Smp.System.cpus t.smp in
  let start_cycles =
    Array.map (fun (c : Smp.Cpu.t) -> Smp.Cpu.cycles c) all_cpus
  in
  let rx_before = Array.init n (fun q -> Net.Rx.frames rx ~q) in
  let churn_policy = ref t.config.policy in
  let steps =
    Array.init n (fun cpu () ->
        let churning =
          churn > 0 && cpu = 0
          && t.config.technique = Testbed.Carat
          && seqs.(cpu) mod churn = churn - 1
        in
        if churning then begin
          churn_policy := rotate !churn_policy;
          let rc =
            Policy.Policy_module.replace_policy t.policy_module
              ~default_allow:(Policy.Engine.default_allow engine)
              !churn_policy
          in
          if rc <> 0 then incr errors;
          seqs.(cpu) <- seqs.(cpu) + 1;
          sent.(cpu) < count
        end
        else begin
          (* offered load: draw arrivals and put them on the wire; RSS
             hashes each flow onto its ring *)
          for _ = 1 to rx_per_step do
            let arr = Net.Flowgen.next fg in
            let payload = Net.Flowgen.payload arr ~seq:!injected in
            incr injected;
            (* every CPU's clock is a private domain; arrival-to-delivery
               latency is only meaningful on one clock, so stamp with the
               cycle counter of the CPU whose NAPI loop owns the target
               queue — the same clock that will claim the stamp *)
            let qi =
              Nic.Device.rx_queue_for t.device ~hash:arr.Net.Flowgen.hash
            in
            let stamp = Smp.Cpu.cycles all_cpus.(qi) in
            ignore
              (Nic.Device.rx_inject ~hash:arr.Net.Flowgen.hash ~stamp
                 t.device payload
                : bool)
          done;
          (* softirq half: service this CPU's own RX queue *)
          ignore (Net.Rx.service rx ~q:cpu : int);
          (* TX half: one pktgen-style send *)
          let ok =
            send_one t t.stacks.(cpu) rngs.(cpu) user_bufs.(cpu)
              ~seq:seqs.(cpu) ~size ~tool_ns ~tool_instructions
          in
          seqs.(cpu) <- seqs.(cpu) + 1;
          if ok then sent.(cpu) <- sent.(cpu) + 1 else incr errors;
          sent.(cpu) < count && seqs.(cpu) < count * 4
        end)
  in
  let _interleave, _sstats = Smp.System.run t.smp steps in
  (* drain the coalesced tails so every delivered frame is counted; each
     queue drains with its owner CPU current, keeping tail latencies in
     that CPU's clock domain *)
  Array.iteri
    (fun i c ->
      Smp.Cpu.make_current c t.kernel engine;
      ignore (Net.Rx.flush rx ~q:i : int))
    all_cpus;
  let cpus = Smp.System.cpus t.smp in
  let freq = t.config.machine.Machine.Model.freq_ghz in
  let per_cpu =
    Array.mapi
      (fun i (c : Smp.Cpu.t) ->
        let cyc = Smp.Cpu.cycles c - start_cycles.(i) in
        let secs = float_of_int (max 1 cyc) /. (freq *. 1e9) in
        let rxf = Net.Rx.frames rx ~q:i - rx_before.(i) in
        {
          dc_cpu = i;
          dc_sent = sent.(i);
          dc_rx_frames = rxf;
          dc_cycles = cyc;
          dc_seconds = secs;
          dc_tx_pps = float_of_int sent.(i) /. secs;
          dc_rx_pps = float_of_int rxf /. secs;
        })
      cpus
  in
  let total_sent = Array.fold_left ( + ) 0 sent in
  let total_rx =
    Array.fold_left (fun a r -> a + r.dc_rx_frames) 0 per_cpu
  in
  let elapsed =
    Array.fold_left (fun a r -> max a r.dc_seconds) 0.0 per_cpu
  in
  let rs = Smp.Rcu.stats (Smp.System.rcu t.smp) in
  Policy.Engine.set_verify engine false;
  let sum f = Array.fold_left (fun a r -> a + f r.dc_cpu) 0 per_cpu in
  {
    d_per_cpu = per_cpu;
    d_sent = total_sent;
    d_injected = !injected;
    d_rx_frames = total_rx;
    d_rx_dropped = Nic.Device.rx_dropped t.device;
    d_elapsed_seconds = elapsed;
    d_tx_pps = float_of_int total_sent /. elapsed;
    d_rx_pps = float_of_int total_rx /. elapsed;
    d_latencies = Net.Rx.all_latencies rx;
    d_rx_irqs = sum (fun q -> Net.Rx.irqs rx ~q);
    d_rx_polls = sum (fun q -> Net.Rx.polls rx ~q);
    d_budget_exhausted = sum (fun q -> Net.Rx.budget_exhausted rx ~q);
    d_timer_kicks = sum (fun q -> Net.Rx.timer_kicks rx ~q);
    d_publications = rs.Smp.Rcu.publications;
    d_retired = rs.Smp.Rcu.retired;
    d_ipis = rs.Smp.Rcu.ipis_taken;
    d_stale_allows = Policy.Engine.stale_allows engine;
    d_send_errors = !errors;
  }
