(** CARAT KOP — an OCaml reproduction of "CARAT KOP: Towards Protecting
    the Core HPC Kernel from Linux Kernel Modules" (ROSS '23).

    This is the library's public entry point. The pieces:

    - {!Kir}: the kernel IR modules are written in (types, builder,
      printer/parser, verifier, CFG)
    - {!Passes}: the CARAT KOP compiler — guard injection, attestation,
      signing, optional guard optimizations, pass manager
    - {!Analysis}: forward dataflow over the KIR CFG, the
      guard-completeness certifier, and the [kop_lint] KIR lints
    - {!Machine}: cycle cost models of the paper's two testbed machines
    - {!Kernel}: the simulated core kernel (address space, module loader,
      ioctl devices, panic)
    - {!Vm}: the KIR interpreter that runs module code
    - {!Policy}: the policy module — [carat_guard], the 64-entry region
      table, and the alternative structures
    - {!Nic}: the e1000e-class device model and the KIR driver
    - {!Net}: raw-frame workload generation and the sendmsg path
    - {!Fault}: seeded fault-injection campaigns and containment checking
    - {!Stats}: summaries, CDFs, histograms
    - {!Testbed}: one-call assembly of the full evaluation stack
    - {!Experiments}: runners reproducing every figure in the paper

    Quickstart (see [examples/quickstart.ml]):
    {[
      let tb =
        Carat_kop.Testbed.create
          ~config:{ Carat_kop.Testbed.default_config with
                    technique = Carat_kop.Testbed.Carat } ()
      in
      let r =
        Carat_kop.Testbed.run_pktgen tb
          { Carat_kop.Net.Pktgen.default_config with count = 1000 }
      in
      Printf.printf "throughput: %.0f pps\n" r.Carat_kop.Net.Pktgen.pps
    ]} *)

module Kir = Kir
module Passes = Passes
module Analysis = Analysis
module Machine = Machine
module Kernel = Kernel
module Kernsvc = Kernsvc
module Vm = Vm
module Policy = Policy
module Nic = Nic
module Net = Net
module Fault = Fault
module Smp = Smp
module Sanitizer = Sanitizer
module Stats = Stats
module Testbed = Testbed
module Smp_testbed = Smp_testbed
module Race_suites = Race_suites
module Experiments = Experiments

(** Version of this reproduction. *)
let version = "1.0.0"

(** One-line provenance string for banners. *)
let banner =
  "CARAT KOP reproduction " ^ version
  ^ " (compiler-guarded kernel-module protection, ROSS '23)"
