(** End-to-end assembly of the evaluation testbed (§4): a booted kernel on
    one of the two machine models, the CARAT KOP policy module, the
    simulated NIC, the e1000e driver (baseline or transformed), and the
    thin network stack the user tool sends through. *)

type technique = Baseline | Carat

let technique_to_string = function Baseline -> "baseline" | Carat -> "carat"

type config = {
  machine : Machine.Model.params;
  technique : technique;
  policy : Policy.Region.t list;  (** installed for [Carat] runs *)
  structure : Policy.Engine.kind;
  capacity : int;
  ring_entries : int;
  seed : int;
  stall_prob : float;  (** NIC flow-control pause probability per frame *)
  on_deny : Policy.Policy_module.on_deny;
  guard_opt : Passes.Pipeline.opt_level;
      (** guard-optimization tier: basic = CARAT-CAKE-style local
          elimination + hoisting, aggressive = the certified optimizer *)
  module_scale : int;
  with_rogue : bool;  (** include the driver's debug peek/poke backdoor *)
  engine : Vm.Engine.kind;  (** KIR execution engine (simulated cycles are
                                engine-independent) *)
  site_cache : bool;  (** enable the per-guard-site inline cache *)
  trace : bool;  (** attach the guard-event ring and start recording *)
  trace_capacity : int;  (** ring slots when [trace] (rounded to pow2) *)
}

let default_config =
  {
    machine = Machine.Presets.r350;
    technique = Carat;
    policy = Policy.Region.kernel_only;
    structure = Policy.Engine.Linear;
    capacity = Policy.Linear_table.default_capacity;
    ring_entries = 64;
    seed = 1;
    stall_prob = 0.0;
    on_deny = Policy.Policy_module.Panic;
    guard_opt = Passes.Pipeline.O_none;
    module_scale = 12;
    with_rogue = false;
    engine = Vm.Engine.Interp;
    site_cache = false;
    trace = false;
    trace_capacity = Trace.default_capacity;
  }

type t = {
  config : config;
  kernel : Kernel.t;
  vm : Vm.Interp.state;
  policy_module : Policy.Policy_module.t;
  device : Nic.Device.t;
  stack : Net.Netstack.t;
  driver : Kernel.loaded_module;
  driver_kir : Kir.Types.modul;
}

(** Compile the driver for the configured technique: the CARAT KOP
    pipeline for [Carat] (attest, inject guards, sign), signing only for
    [Baseline]. *)
let compile_driver config =
  let m =
    Nic.Driver_gen.generate ~module_scale:config.module_scale
      ~with_rogue:config.with_rogue ()
  in
  (match config.technique with
  | Carat -> ignore (Passes.Pipeline.compile ~opt:config.guard_opt m)
  | Baseline ->
    ignore
      (Passes.Pass.run_pipeline_checked (Passes.Pipeline.baseline_sign ()) m));
  m

let create ?(config = default_config) () : t =
  (* baseline runs model today's permissive kernel: no transform required
     at insertion. Carat runs enforce the full validation protocol. *)
  let require_signature = config.technique = Carat in
  let kernel =
    (* Carat kernels also demand the guard-completeness certificate:
       the full compile -> certify -> sign -> insert chain *)
    Kernel.create ~require_signature ~require_certificate:require_signature
      ~seed:config.seed config.machine
  in
  let vm = Vm.Engine.install ~kind:config.engine kernel in
  let policy_module =
    Policy.Policy_module.install ~kind:config.structure
      ~capacity:config.capacity ~on_deny:config.on_deny
      ~site_cache:config.site_cache kernel
  in
  if config.trace then
    (* attach before policy push / insmod so lifecycle events are captured *)
    Trace.start
      (Policy.Policy_module.enable_trace ~capacity:config.trace_capacity
         policy_module);
  (match config.technique with
  | Carat -> Policy.Policy_module.set_policy policy_module config.policy
  | Baseline -> ());
  let device =
    Nic.Device.create ~stall_prob:config.stall_prob ~seed:(config.seed + 17)
      kernel
  in
  let driver_kir = compile_driver config in
  let driver =
    match Kernel.insmod kernel driver_kir with
    | Ok lm -> lm
    | Error e -> failwith ("insmod e1000e: " ^ Kernel.load_error_to_string e)
  in
  let stack =
    Net.Netstack.create ~noise_seed:(config.seed + 31) kernel device
  in
  Net.Netstack.bring_up stack ~ring_entries:config.ring_entries;
  { config; kernel; vm; policy_module; device; stack; driver; driver_kir }

(** Convenience accessors *)
let kernel t = t.kernel
let stack t = t.stack
let device t = t.device
let policy_module t = t.policy_module
let machine t = Kernel.machine t.kernel
let driver t = t.driver

(** Run one pktgen trial on this testbed. *)
let run_pktgen t (cfg : Net.Pktgen.config) = Net.Pktgen.run t.stack cfg
