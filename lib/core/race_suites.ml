(** The happens-before detector's fixture suite: clean workloads that
    must stay silent (proving the RCU/domain/NAPI publication paths
    race-free under the detector's model) and seeded fixtures the
    detector must flag. [kop_lint race] and [bench san] both gate on
    {!all}/{!pass}; the clean fixtures double as regressions for the
    sync-edge wiring (a lost edge shows up as a spurious report, a lost
    check as a missed seeded race).

    The fixtures:

    - [clean-rcu-storm]: 2 CPUs of pktgen under a whole-policy rotate
      storm — publications, grace periods and retirements under load,
      zero reports expected;
    - [clean-napi-churn]: full-duplex RX/TX with policy churn — the NAPI
      path's guarded reads against the RCU update storm, zero reports;
    - [retire-vs-rebuild]: a watchdog-driven integrity rebuild and a
      policy batch install landing in the same scheduling quantum while
      module guard traffic flows — the retirement-ordering regression,
      zero reports expected;
    - [seeded-stale-window]: the {!Fault.Harness.run_race} cross-CPU
      race (a store into a window a concurrent shrink revoked) — the
      detector must report it;
    - [corruption-vs-publication]: a detached writer corrupts the
      published table behind the protocol's back; the guard path's next
      table scans must surface [Unsynced] reports. *)

type verdict = {
  v_name : string;
  v_expect_races : bool;
  v_reports : int;
  v_accesses : int;  (** accesses the detector checked *)
  v_pass : bool;
  v_detail : string;
}

(* ------------------------------------------------------------------ *)
(* clean suites: the publication machinery under load must stay silent *)

let clean_rcu_storm () =
  let config = { Smp_testbed.default_config with cpus = 2; seed = 11 } in
  let t = Smp_testbed.create ~config () in
  let det = Smp.System.enable_race_detector (Smp_testbed.smp t) in
  let r = Smp_testbed.run_pktgen ~count:60 ~storm:7 t in
  let reports = Sanitizer.Race.report_count det in
  {
    v_name = "clean-rcu-storm";
    v_expect_races = false;
    v_reports = reports;
    v_accesses = Sanitizer.Race.accesses det;
    v_pass =
      reports = 0
      && r.Smp_testbed.publications > 0
      && r.Smp_testbed.retired > 0
      && r.Smp_testbed.stale_allows = 0;
    v_detail =
      Printf.sprintf "%d publications, %d retired, %d sent"
        r.Smp_testbed.publications r.Smp_testbed.retired
        r.Smp_testbed.total_sent;
  }

let clean_napi_churn () =
  let config =
    { Smp_testbed.default_config with cpus = 2; rx_queues = 2; seed = 13 }
  in
  let t = Smp_testbed.create ~config () in
  let det = Smp.System.enable_race_detector (Smp_testbed.smp t) in
  let r = Smp_testbed.run_traffic ~count:60 ~churn:9 t in
  let reports = Sanitizer.Race.report_count det in
  {
    v_name = "clean-napi-churn";
    v_expect_races = false;
    v_reports = reports;
    v_accesses = Sanitizer.Race.accesses det;
    v_pass =
      reports = 0
      && r.Smp_testbed.d_publications > 0
      && r.Smp_testbed.d_rx_frames > 0
      && r.Smp_testbed.d_stale_allows = 0;
    v_detail =
      Printf.sprintf "%d publications, %d rx frames, %d sent"
        r.Smp_testbed.d_publications r.Smp_testbed.d_rx_frames
        r.Smp_testbed.d_sent;
  }

(** The retirement-ordering regression: a shadow-tier corruption is
    detected by the watchdog, whose integrity rebuild republishes
    through RCU, while the other CPU lands policy batch installs in the
    same quantum and module guard traffic keeps the table scans coming.
    Retirement acquires every CPU's grace token before the old table is
    reclaimed, so the retire-time interval write is ordered after every
    recorded scan — the detector must stay silent. *)
let retire_vs_rebuild () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Engine.install ~kind:Vm.Engine.Interp kernel);
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
      ~on_deny:Policy.Policy_module.Audit kernel
  in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  let smp =
    Smp.System.create ~seed:7 ~params:Machine.Presets.r350 ~cpus:2 kernel pm
  in
  let det = Smp.System.enable_race_detector smp in
  let engine = Policy.Policy_module.engine pm in
  Policy.Engine.set_verify engine true;
  let wd = Policy.Policy_module.enable_watchdog ~period:5_000 pm in
  let ig =
    match Policy.Policy_module.integrity pm with
    | Some ig -> ig
    | None -> assert false
  in
  (* module guard traffic for the whole episode *)
  let rng = Machine.Rng.create 7 in
  let work = Kernel.kmalloc kernel ~size:256 in
  let m = Fault.Inject.build_victim ~rng ~work () in
  ignore (Passes.Pipeline.compile ~opt:Passes.Pipeline.O_none m);
  (match Kernel.insmod kernel m with
  | Ok _ -> ()
  | Error e ->
    failwith ("retire_vs_rebuild insmod: " ^ Kernel.load_error_to_string e));
  (* warm the user-page shadow slot, then corrupt it behind the audit *)
  ignore (Policy.Engine.check engine ~addr:0x4000 ~size:8 ~flags:2);
  let corrupted =
    Policy.Engine.corrupt_shadow engine
      ~page:(0x4000 lsr Policy.Shadow_table.page_bits)
      ~prot:Policy.Region.prot_rw ~fix_checksum:false
  in
  let install_rc = ref 0 in
  let batch i =
    List.init 3 (fun j ->
        Policy.Region.v
          ~tag:(Printf.sprintf "batch%d-%d" i j)
          ~base:(0x3000_0000 + (i * 0x100000) + (j * 0x10000))
          ~len:0x1000 ~prot:Policy.Region.prot_rw ())
  in
  let a = ref 0 and b = ref 0 in
  ignore
    (Smp.System.run smp
       [|
         (fun () ->
           incr a;
           (* tick the watchdog past its deadline: detection fires the
              integrity rebuild through the RCU mutation route *)
           ignore (Kernel.Watchdog.advance wd ~cycles:6_000 : int);
           ignore (Kernel.call_symbol kernel Fault.Inject.entry [||] : int);
           !a < 8);
         (fun () ->
           incr b;
           if !b <= 3 then begin
             let rc =
               Policy.Policy_module.apply pm
                 (Policy.Policy_module.M_install (batch !b))
             in
             if rc <> 0 then install_rc := rc
           end;
           ignore (Kernel.call_symbol kernel Fault.Inject.entry [||] : int);
           !b < 8);
       |]);
  let rs = Smp.Rcu.stats (Smp.System.rcu smp) in
  let reports = Sanitizer.Race.report_count det in
  {
    v_name = "retire-vs-rebuild";
    v_expect_races = false;
    v_reports = reports;
    v_accesses = Sanitizer.Race.accesses det;
    v_pass =
      corrupted
      && Policy.Integrity.detections ig >= 1
      && rs.Smp.Rcu.retired >= 1
      && !install_rc = 0
      && reports = 0;
    v_detail =
      Printf.sprintf
        "%d detections, %d published, %d retired, install rc %d"
        (Policy.Integrity.detections ig)
        rs.Smp.Rcu.publications rs.Smp.Rcu.retired !install_rc;
  }

(* ------------------------------------------------------------------ *)
(* seeded suites: the detector must flag these *)

let seeded_stale_window () =
  let o =
    Fault.Harness.run_race ~sanitize:true
      ~mode:(Fault.Harness.Carat Policy.Policy_module.Audit) ~seed:42 ()
  in
  let reports =
    match o.Fault.Harness.race_reports with Some n -> n | None -> 0
  in
  {
    v_name = "seeded-stale-window";
    v_expect_races = true;
    v_reports = reports;
    v_accesses = 0;
    v_pass = o.Fault.Harness.loaded && reports > 0;
    v_detail =
      Printf.sprintf "%d denied, %d race reports" o.Fault.Harness.denied
        reports;
  }

let corruption_vs_publication () =
  let config = { Smp_testbed.default_config with cpus = 2; seed = 23 } in
  let t = Smp_testbed.create ~config () in
  let det = Smp.System.enable_race_detector (Smp_testbed.smp t) in
  ignore (Smp_testbed.run_pktgen ~count:30 t);
  let eng = Smp_testbed.engine t in
  (* flip the user-half deny rule's prot in the *published* table — an
     escalation that changes no kernel-address decision, so the workload
     runs on undisturbed while the table bytes race the guard's scans *)
  let corrupted =
    Policy.Engine.corrupt_instance eng ~base:0 ~prot:Policy.Region.prot_rw
  in
  (match Policy.Engine.table_region eng with
  | Some (base, len) ->
    Sanitizer.Race.async_write det ~lo:base ~hi:(base + len)
      ~site:"instance-corruption"
  | None -> ());
  ignore (Smp_testbed.run_pktgen ~count:30 t);
  let reports = Sanitizer.Race.report_count det in
  let unsynced =
    List.exists
      (fun (r : Sanitizer.Race.report) -> r.Sanitizer.Race.r_kind = Sanitizer.Race.Unsynced)
      (Sanitizer.Race.reports det)
  in
  {
    v_name = "corruption-vs-publication";
    v_expect_races = true;
    v_reports = reports;
    v_accesses = Sanitizer.Race.accesses det;
    v_pass = corrupted && reports > 0 && unsynced;
    v_detail =
      Printf.sprintf "corrupted=%b, %d reports (unsynced=%b)" corrupted
        reports unsynced;
  }

(* ------------------------------------------------------------------ *)

let all () =
  [
    clean_rcu_storm ();
    clean_napi_churn ();
    retire_vs_rebuild ();
    seeded_stale_window ();
    corruption_vs_publication ();
  ]

let pass vs = List.for_all (fun v -> v.v_pass) vs

let render vs =
  let b = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-6s  %4d report(s), %6d access(es)  %s\n"
           v.v_name
           (if v.v_pass then "ok" else "FAIL")
           v.v_reports v.v_accesses v.v_detail))
    vs;
  Buffer.add_string b
    (Printf.sprintf "race suites: %d/%d passed\n"
       (List.length (List.filter (fun v -> v.v_pass) vs))
       (List.length vs));
  Buffer.contents b
