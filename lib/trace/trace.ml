(** Guard/lifecycle observability: an ftrace-style ring buffer of events
    plus tier-invariant per-site and per-region counters.

    The ring is fixed-capacity, overwrite-oldest (a drop counter records
    how many events the reader lost), and allocation-free on the record
    path: events are stored as parallel int arrays, and the backing slot
    storage is accounted against a simulated kernel allocation so every
    recorded event charges one tag store to the machine model — tracing
    costs cycles *when it is on*, like the real thing.

    Zero-cost-off contract: a detached or stopped trace performs no
    machine charges and no simulated memory traffic; counters alone are
    host-side bookkeeping, exactly like {!Policy.Engine.stats}. The bench
    [tracegate] target pins this — with tracing off, fig3/fig7-shaped
    simulated cycle counts are bit-identical to the pre-trace goldens.

    Decision events are emitted by the policy engine below the execution
    engines, so the interp and compiled engines produce identical event
    streams for the same run (pinned by a golden test). *)

type kind =
  | Guard_allow  (** exact-walk allow *)
  | Guard_allow_fast  (** inline-cache hit allow *)
  | Guard_deny
  | Policy_add
  | Policy_remove
  | Policy_clear
  | Policy_default
  | Mode_change
  | Module_load
  | Module_quarantine
  | Panic
  | Policy_publish  (** RCU generation swap ([info] = new generation) *)
  | Ipi_flush  (** IPI shootdown handled on this CPU ([info] = sender) *)
  | Tier_degraded
      (** integrity watchdog quarantined a corrupt fast tier ([info] =
          tier code: 0 = inline cache, 1 = shadow, 2 = instance) *)
  | Tier_rebuilt
      (** a quarantined tier was rebuilt from the authoritative table and
          re-promoted ([info] = tier code, as above) *)
  | Rx_irq
      (** RX interrupt taken: the handler masked its queue and scheduled
          the poll loop ([info] = queue) *)
  | Rx_poll
      (** one NAPI poll pass completed ([info] = queue, [size] = frames
          consumed, [flags] = 1 if the budget was exhausted) *)

let kind_to_int = function
  | Guard_allow -> 0
  | Guard_allow_fast -> 1
  | Guard_deny -> 2
  | Policy_add -> 3
  | Policy_remove -> 4
  | Policy_clear -> 5
  | Policy_default -> 6
  | Mode_change -> 7
  | Module_load -> 8
  | Module_quarantine -> 9
  | Panic -> 10
  | Policy_publish -> 11
  | Ipi_flush -> 12
  | Tier_degraded -> 13
  | Tier_rebuilt -> 14
  | Rx_irq -> 15
  | Rx_poll -> 16

let kind_of_int = function
  | 0 -> Guard_allow
  | 1 -> Guard_allow_fast
  | 2 -> Guard_deny
  | 3 -> Policy_add
  | 4 -> Policy_remove
  | 5 -> Policy_clear
  | 6 -> Policy_default
  | 7 -> Mode_change
  | 8 -> Module_load
  | 9 -> Module_quarantine
  | 11 -> Policy_publish
  | 12 -> Ipi_flush
  | 13 -> Tier_degraded
  | 14 -> Tier_rebuilt
  | 15 -> Rx_irq
  | 16 -> Rx_poll
  | _ -> Panic

let kind_to_string = function
  | Guard_allow -> "allow"
  | Guard_allow_fast -> "allow-fast"
  | Guard_deny -> "DENY"
  | Policy_add -> "policy-add"
  | Policy_remove -> "policy-remove"
  | Policy_clear -> "policy-clear"
  | Policy_default -> "policy-default"
  | Mode_change -> "mode-change"
  | Module_load -> "module-load"
  | Module_quarantine -> "module-quarantine"
  | Panic -> "panic"
  | Policy_publish -> "policy-publish"
  | Ipi_flush -> "ipi-flush"
  | Tier_degraded -> "tier-degraded"
  | Tier_rebuilt -> "tier-rebuilt"
  | Rx_irq -> "rx-irq"
  | Rx_poll -> "rx-poll"

(** A decoded event (read-path only; the ring itself stores raw ints).
    [info] is the matched region's base for guard events (-1 when no
    region matched), and a small event-specific payload otherwise (mode
    code, region base, ...). *)
type event = {
  seq : int;  (** monotonic, 0-based, never wraps *)
  cycles : int;  (** simulated cycle stamp at record time *)
  kind : kind;
  site : int;  (** static guard-site id; -1 = not a guard site *)
  addr : int;
  size : int;
  flags : int;
  info : int;
}

(** Per-word field count of one ring slot; slots are padded to 64 bytes
    in the simulated backing store. *)
let event_words = 8

let slot_bytes = 64

(* per-site counter slab: site [s] lives at index [s + 1], slot 0 holds
   the unknown site (-1). Grown on demand, capped — sites are the
   compiler's sequential ids, so the cap is never hit in practice. *)
let max_site_slots = 1 lsl 16

type site_counters = {
  mutable s_cap : int;
  mutable s_checks : int array;
  mutable s_allows : int array;
  mutable s_denies : int array;
  mutable s_scanned : int array;
  mutable s_fast_hits : int array;
  mutable s_fast_misses : int array;
}

type t = {
  kernel : Kernel.t;
  capacity : int;  (** ring slots; power of two *)
  vaddr : int;  (** simulated backing store, for cost accounting *)
  e_cycles : int array;
  e_kind : int array;
  e_site : int array;
  e_addr : int array;
  e_size : int array;
  e_flags : int array;
  e_info : int array;
  mutable total : int;  (** events ever recorded; next event's seq *)
  mutable cursor : int;  (** reader position (seq) for {!read_next} *)
  mutable dropped : int;  (** events overwritten before being read *)
  mutable recording : bool;
  sites : site_counters;
  region_allows : (int, int ref) Hashtbl.t;  (** keyed by region base *)
  region_denies : (int, int ref) Hashtbl.t;
}

let default_capacity = 512

let create ?(capacity = default_capacity) kernel =
  let capacity = max 8 capacity in
  (* round up to a power of two, like the site cache *)
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let capacity = pow2 8 in
  {
    kernel;
    capacity;
    vaddr = Kernel.kmalloc kernel ~size:(capacity * slot_bytes);
    e_cycles = Array.make capacity 0;
    e_kind = Array.make capacity 0;
    e_site = Array.make capacity (-1);
    e_addr = Array.make capacity 0;
    e_size = Array.make capacity 0;
    e_flags = Array.make capacity 0;
    e_info = Array.make capacity (-1);
    total = 0;
    cursor = 0;
    dropped = 0;
    recording = false;
    sites =
      {
        s_cap = 0;
        s_checks = [||];
        s_allows = [||];
        s_denies = [||];
        s_scanned = [||];
        s_fast_hits = [||];
        s_fast_misses = [||];
      };
    region_allows = Hashtbl.create 16;
    region_denies = Hashtbl.create 16;
  }

let capacity t = t.capacity
let recording t = t.recording
let recorded t = t.total
(* Events the reader has lost (ftrace's "overrun"): the ring keeps only
    the newest [capacity] events, so anything older than
    [total - capacity] that the cursor never consumed is gone —
    [t.dropped] accumulates what {!read_next} had to skip, and the second
    term counts losses the reader has not yet observed. *)
let dropped t = t.dropped + max 0 (t.total - t.capacity - t.cursor)

let start t = t.recording <- true
let stop t = t.recording <- false

(* --- counters ------------------------------------------------------ *)

let grow_sites sc want =
  let cap = max 64 (min max_site_slots want) in
  let rec pow2 n = if n >= cap then n else pow2 (n * 2) in
  let cap = pow2 64 in
  let g a = Array.append a (Array.make (cap - Array.length a) 0) in
  sc.s_checks <- g sc.s_checks;
  sc.s_allows <- g sc.s_allows;
  sc.s_denies <- g sc.s_denies;
  sc.s_scanned <- g sc.s_scanned;
  sc.s_fast_hits <- g sc.s_fast_hits;
  sc.s_fast_misses <- g sc.s_fast_misses;
  sc.s_cap <- cap

(* slot for a site id: 0 = unknown/-1; very large ids alias into slot 0
   rather than growing without bound *)
let site_slot t site =
  let i = if site < 0 || site + 1 >= max_site_slots then 0 else site + 1 in
  if i >= t.sites.s_cap then grow_sites t.sites (i + 1);
  i

let bump tbl key =
  match Hashtbl.find tbl key with
  | r -> incr r
  | exception Not_found -> Hashtbl.add tbl key (ref 1)

(* --- the record path ----------------------------------------------- *)

(* Raw ring append. Only called while [recording]; charges one slot tag
   store + bookkeeping retires, the visible cost of tracing. *)
let append t ~kind ~site ~addr ~size ~flags ~info =
  let machine = Kernel.machine t.kernel in
  let i = t.total land (t.capacity - 1) in
  t.e_cycles.(i) <- Machine.Model.cycles machine;
  t.e_kind.(i) <- kind_to_int kind;
  t.e_site.(i) <- site;
  t.e_addr.(i) <- addr;
  t.e_size.(i) <- size;
  t.e_flags.(i) <- flags;
  t.e_info.(i) <- info;
  t.total <- t.total + 1;
  (* slot store + head-index update, ftrace's reserve/commit pair *)
  Machine.Model.retire machine 2;
  Machine.Model.store machine (t.vaddr + (i * slot_bytes)) 8

(** Decision event from the policy engine. Tier-invariant by
    construction: the engine passes the same [scanned]/[region_base] on
    an inline-cache hit as the exact walk would have produced, so the
    per-site and per-region counters do not depend on which tier
    answered. [fast] only selects the event kind (a tier diagnostic). *)
let on_guard t ~site ~addr ~size ~flags ~allowed ~fast ~scanned ~region_base =
  let i = site_slot t site in
  let sc = t.sites in
  sc.s_checks.(i) <- sc.s_checks.(i) + 1;
  sc.s_scanned.(i) <- sc.s_scanned.(i) + scanned;
  if allowed then sc.s_allows.(i) <- sc.s_allows.(i) + 1
  else sc.s_denies.(i) <- sc.s_denies.(i) + 1;
  if region_base >= 0 then
    bump (if allowed then t.region_allows else t.region_denies) region_base;
  if t.recording then
    append t
      ~kind:
        (if not allowed then Guard_deny
         else if fast then Guard_allow_fast
         else Guard_allow)
      ~site ~addr ~size ~flags ~info:region_base

(** Fast-tier (inline-cache) hit/miss accounting — tier stats, kept
    apart from the decision counters above. *)
let on_fast_hit t ~site =
  let i = site_slot t site in
  t.sites.s_fast_hits.(i) <- t.sites.s_fast_hits.(i) + 1

let on_fast_miss t ~site =
  let i = site_slot t site in
  t.sites.s_fast_misses.(i) <- t.sites.s_fast_misses.(i) + 1

(** Lifecycle event (policy mutation, mode change, module load/
    quarantine, panic, RX irq/poll). [size]/[flags] carry small
    event-specific payloads (e.g. frames consumed by an RX poll pass). *)
let on_lifecycle ?(size = 0) ?(flags = 0) t kind ~info =
  if t.recording then append t ~kind ~site:(-1) ~addr:0 ~size ~flags ~info

(* --- the read path -------------------------------------------------- *)

let event_at t seq =
  let i = seq land (t.capacity - 1) in
  {
    seq;
    cycles = t.e_cycles.(i);
    kind = kind_of_int t.e_kind.(i);
    site = t.e_site.(i);
    addr = t.e_addr.(i);
    size = t.e_size.(i);
    flags = t.e_flags.(i);
    info = t.e_info.(i);
  }

(** Consume the oldest unread event (ftrace-style reader): skips over
    anything already overwritten, charging the skipped count to the drop
    counter. *)
let read_next t =
  let oldest = max 0 (t.total - t.capacity) in
  if t.cursor < oldest then begin
    t.dropped <- t.dropped + (oldest - t.cursor);
    t.cursor <- oldest
  end;
  if t.cursor >= t.total then None
  else begin
    let e = event_at t t.cursor in
    t.cursor <- t.cursor + 1;
    Some e
  end

(** The newest [n] events, oldest first, without consuming them. *)
let recent t n =
  let lo = max (max 0 (t.total - t.capacity)) (t.total - n) in
  List.init (t.total - lo) (fun k -> event_at t (lo + k))

(** All buffered events, oldest first, without consuming them. *)
let events t = recent t t.capacity

let reset t =
  t.total <- 0;
  t.cursor <- 0;
  t.dropped <- 0;
  let sc = t.sites in
  Array.fill sc.s_checks 0 sc.s_cap 0;
  Array.fill sc.s_allows 0 sc.s_cap 0;
  Array.fill sc.s_denies 0 sc.s_cap 0;
  Array.fill sc.s_scanned 0 sc.s_cap 0;
  Array.fill sc.s_fast_hits 0 sc.s_cap 0;
  Array.fill sc.s_fast_misses 0 sc.s_cap 0;
  Hashtbl.reset t.region_allows;
  Hashtbl.reset t.region_denies

(* --- rendering ------------------------------------------------------ *)

let format_event e =
  match e.kind with
  | Guard_allow | Guard_allow_fast | Guard_deny ->
    Printf.sprintf "[%d @%d] %-10s site=%d addr=0x%x size=%d flags=%d%s"
      e.seq e.cycles (kind_to_string e.kind) e.site e.addr e.size e.flags
      (if e.info >= 0 then Printf.sprintf " region=0x%x" e.info else " region=-")
  | _ ->
    Printf.sprintf "[%d @%d] %-10s info=%d" e.seq e.cycles
      (kind_to_string e.kind) e.info

(** Compact one-line tail of the newest [n] events, for deny snapshots
    in panic reasons and quarantine/campaign reports. *)
let tail_string t n =
  let es = recent t n in
  if es = [] then "<no events>"
  else
    String.concat " | "
      (List.map
         (fun e ->
           match e.kind with
           | Guard_allow | Guard_allow_fast | Guard_deny ->
             Printf.sprintf "#%d %s site=%d 0x%x+%d" e.seq
               (kind_to_string e.kind) e.site e.addr e.size
           | k -> Printf.sprintf "#%d %s" e.seq (kind_to_string k))
         es)

type site_row = {
  row_site : int;
  row_checks : int;
  row_allows : int;
  row_denies : int;
  row_scanned : int;
  row_fast_hits : int;
  row_fast_misses : int;
}

(** Non-zero per-site rows, site order ((-1) first if present). *)
let site_rows t =
  let sc = t.sites in
  let acc = ref [] in
  for i = sc.s_cap - 1 downto 0 do
    if
      sc.s_checks.(i) <> 0 || sc.s_fast_hits.(i) <> 0
      || sc.s_fast_misses.(i) <> 0
    then
      acc :=
        {
          row_site = i - 1;
          row_checks = sc.s_checks.(i);
          row_allows = sc.s_allows.(i);
          row_denies = sc.s_denies.(i);
          row_scanned = sc.s_scanned.(i);
          row_fast_hits = sc.s_fast_hits.(i);
          row_fast_misses = sc.s_fast_misses.(i);
        }
        :: !acc
  done;
  !acc

(** Per-region (base, allows, denies), sorted by base. *)
let region_rows t =
  let bases = Hashtbl.create 16 in
  Hashtbl.iter (fun b _ -> Hashtbl.replace bases b ()) t.region_allows;
  Hashtbl.iter (fun b _ -> Hashtbl.replace bases b ()) t.region_denies;
  let get tbl b = match Hashtbl.find_opt tbl b with Some r -> !r | None -> 0 in
  Hashtbl.fold (fun b () acc -> (b, get t.region_allows b, get t.region_denies b) :: acc) bases []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let totals t =
  let sc = t.sites in
  let sum a = Array.fold_left ( + ) 0 a in
  ( sum sc.s_checks,
    sum sc.s_allows,
    sum sc.s_denies,
    sum sc.s_scanned,
    sum sc.s_fast_hits,
    sum sc.s_fast_misses )

(** The /proc/carat/stats rendering. [region_tag] maps a region base to
    a display tag (the policy knows; the trace stores only bases). *)
let render_stats ?(region_tag = fun _ -> None) t =
  let b = Buffer.create 1024 in
  let checks, allows, denies, scanned, hits, misses = totals t in
  Buffer.add_string b "carat_trace: guard statistics\n";
  Printf.bprintf b "checks %d allows %d denies %d entries_scanned %d\n" checks
    allows denies scanned;
  Printf.bprintf b "fast_hits %d fast_misses %d\n" hits misses;
  Printf.bprintf b "trace recording=%b recorded=%d dropped=%d capacity=%d\n"
    t.recording t.total (dropped t) t.capacity;
  let rows = site_rows t in
  if rows <> [] then begin
    Buffer.add_string b "per-site:\n";
    Printf.bprintf b "  %6s %8s %8s %8s %10s %8s %8s\n" "site" "checks"
      "allows" "denies" "scanned" "fhits" "fmiss";
    List.iter
      (fun r ->
        Printf.bprintf b "  %6d %8d %8d %8d %10d %8d %8d\n" r.row_site
          r.row_checks r.row_allows r.row_denies r.row_scanned r.row_fast_hits
          r.row_fast_misses)
      rows
  end;
  let rrows = region_rows t in
  if rrows <> [] then begin
    Buffer.add_string b "per-region:\n";
    Printf.bprintf b "  %18s %8s %8s  %s\n" "base" "allows" "denies" "tag";
    List.iter
      (fun (base, a, d) ->
        Printf.bprintf b "  0x%016x %8d %8d  %s\n" base a d
          (match region_tag base with Some tag -> tag | None -> "-"))
      rrows
  end;
  Buffer.contents b

(* --- merged per-CPU rings (SMP) ------------------------------------- *)

(** Merged-on-read views over per-CPU rings, ftrace-style: each CPU
    records into its own ring with no cross-CPU coordination, and the
    reader aggregates. Drop accounting must *sum* — each ring's own
    overrun counter is authoritative for its CPU, so the merge can never
    lose (or double-count) an overwrite the way a shared mutable counter
    updated from several contexts could. *)

let merged_recorded ts = List.fold_left (fun a t -> a + t.total) 0 ts

let merged_dropped ts = List.fold_left (fun a t -> a + dropped t) 0 ts

let merged_totals ts =
  List.fold_left
    (fun (c, a, d, s, h, m) t ->
      let c', a', d', s', h', m' = totals t in
      (c + c', a + a', d + d', s + s', h + h', m + m'))
    (0, 0, 0, 0, 0, 0) ts

(** All buffered events across the rings as [(cpu, event)], ordered by
    simulated cycle stamp (ties broken by cpu then seq) — the merged
    timeline a multi-ring ftrace reader presents. *)
let merged_events ts =
  let all =
    List.concat (List.mapi (fun cpu t -> List.map (fun e -> (cpu, e)) (events t)) ts)
  in
  List.stable_sort
    (fun (c1, e1) (c2, e2) ->
      let by = compare e1.cycles e2.cycles in
      if by <> 0 then by
      else
        let bc = compare c1 c2 in
        if bc <> 0 then bc else compare e1.seq e2.seq)
    all

(** The /proc/carat/trace rendering: the buffered events, oldest
    first. *)
let render_events t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "carat_trace: %d recorded, %d dropped, capacity %d\n"
    t.total (dropped t) t.capacity;
  List.iter (fun e -> Buffer.add_string b (format_event e); Buffer.add_char b '\n')
    (events t);
  Buffer.contents b
