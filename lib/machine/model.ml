(** Cycle cost model for a simulated x86 server.

    The model is deliberately simple but mechanism-faithful: what made
    CARAT KOP cheap on real hardware (paper §4.2) is that guard code is
    (a) cache-hot — the 64-entry region table fits in L1 — and (b)
    perfectly predictable — the region-check branches "generally go the
    same way". We reproduce exactly those two mechanisms with a real cache
    hierarchy and a real gshare predictor, plus an issue-width divisor
    that models superscalar overlap (the R350 hides more of the guard's
    ALU work than the R415).

    Cycle accounting is done in ticks of 1/12 cycle so that fractional
    per-instruction costs (e.g. 1/4 cycle per ALU op on a 4-wide machine)
    stay exact in integer arithmetic. *)

let ticks_per_cycle = 12

type params = {
  name : string;
  description : string;
  freq_ghz : float;
  issue_width : int;  (** simple ALU ops retired per cycle *)
  line_size : int;
  l1_size : int;
  l1_assoc : int;
  l1_latency : int;  (** extra cycles charged on an L1 hit *)
  l2_size : int;
  l2_assoc : int;
  l2_latency : int;
  l3_size : int;
  l3_assoc : int;
  l3_latency : int;
  mem_latency : int;
  predictor_entries_log2 : int;
  predictor_history_bits : int;
  mispredict_penalty : int;
  call_overhead : int;  (** cycles per call/return pair *)
  syscall_overhead : int;  (** user->kernel->user crossing, cycles *)
  mmio_latency : int;  (** uncached device register read, cycles *)
  mmio_write_latency : int;
      (** posted device register write — absorbed by the write buffer,
          far cheaper than a read *)
  speculative_overlap : float;
      (** fraction of off-critical-path work (guard bodies) that remains
          visible after out-of-order overlap; the paper credits
          "improved caching, branch prediction, and speculation" for the
          R350's near-zero guard cost — this is the speculation part *)
}

type t = {
  p : params;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  bp : Predictor.t;
  mutable ticks : int;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable mmio_accesses : int;
}

let create (p : params) : t =
  {
    p;
    l1 =
      Cache.create ~name:"L1d" ~size_bytes:p.l1_size ~assoc:p.l1_assoc
        ~line_size:p.line_size;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:p.l2_size ~assoc:p.l2_assoc
        ~line_size:p.line_size;
    l3 =
      Cache.create ~name:"L3" ~size_bytes:p.l3_size ~assoc:p.l3_assoc
        ~line_size:p.line_size;
    bp =
      Predictor.create ~entries_log2:p.predictor_entries_log2
        ~history_bits:p.predictor_history_bits;
    ticks = 0;
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    mmio_accesses = 0;
  }

let cycles t = t.ticks / ticks_per_cycle

(** Elapsed simulated wall-clock time in seconds. *)
let seconds t = float_of_int (cycles t) /. (t.p.freq_ghz *. 1e9)

let add_cycles t c = t.ticks <- t.ticks + (c * ticks_per_cycle)
let add_ticks t k = t.ticks <- t.ticks + k

(** Retire [n] simple ALU/move ops: n/issue_width cycles. *)
let retire t n =
  t.instructions <- t.instructions + n;
  add_ticks t (n * ticks_per_cycle / t.p.issue_width)

(** Cost of touching one line, in ticks. L1 hits are pipelined: an
    out-of-order core issues [issue_width] loads per cycle against a hot
    line, so a hit costs latency/width; misses expose their full
    latency. *)
let hierarchy_cost_ticks t addr =
  if Cache.access t.l1 addr then
    t.p.l1_latency * ticks_per_cycle / t.p.issue_width
  else if Cache.access t.l2 addr then t.p.l2_latency * ticks_per_cycle
  else if Cache.access t.l3 addr then t.p.l3_latency * ticks_per_cycle
  else t.p.mem_latency * ticks_per_cycle

(* Sum of line costs for [addr, lines), accumulated without a ref cell:
   loads sit on the guard fast path, which must not allocate. Lines are
   visited in ascending order, exactly like the loop it replaces. *)
let rec lines_cost_ticks t addr lines l acc =
  if l >= lines then acc
  else
    lines_cost_ticks t addr lines (l + 1)
      (acc + hierarchy_cost_ticks t (addr + (l * t.p.line_size)))

(** A data load of [size] bytes at [addr]; cost depends on which level
    hits, charged per line touched. *)
let load t addr size =
  t.loads <- t.loads + 1;
  t.instructions <- t.instructions + 1;
  let lines = max 1 (Cache.lines_touched t.l1 addr size) in
  add_ticks t (lines_cost_ticks t addr lines 0 0)

(** A data store. With a store buffer, stores retire quickly; cache fill
    still happens (write-allocate) but half the miss latency is hidden. *)
let store t addr size =
  t.stores <- t.stores + 1;
  t.instructions <- t.instructions + 1;
  let lines = max 1 (Cache.lines_touched t.l1 addr size) in
  add_ticks t (lines_cost_ticks t addr lines 0 0 / 2)

(** Conditional branch at site [pc] with outcome [taken]. *)
let branch t ~pc ~taken =
  t.branches <- t.branches + 1;
  t.instructions <- t.instructions + 1;
  if Predictor.branch t.bp ~pc ~taken then
    add_ticks t (ticks_per_cycle / t.p.issue_width)
  else add_cycles t t.p.mispredict_penalty

let call t =
  t.instructions <- t.instructions + 2;
  add_cycles t t.p.call_overhead

let syscall t = add_cycles t t.p.syscall_overhead

let mmio t =
  t.mmio_accesses <- t.mmio_accesses + 1;
  t.instructions <- t.instructions + 1;
  add_cycles t t.p.mmio_latency

let mmio_write t =
  t.mmio_accesses <- t.mmio_accesses + 1;
  t.instructions <- t.instructions + 1;
  add_cycles t t.p.mmio_write_latency

(** Bulk data movement by the core (e.g. the kernel copying a payload
    from user space into an skb): pipelined word copies through the
    cache. Charged at [size/word] loads+stores with streaming behaviour
    approximated by touching each line once. *)
let memcpy t ~dst ~src size =
  let lines_src = max 1 (Cache.lines_touched t.l1 src size) in
  let lines_dst = max 1 (Cache.lines_touched t.l1 dst size) in
  let cost = ref 0 in
  for l = 0 to lines_src - 1 do
    cost := !cost + hierarchy_cost_ticks t (src + (l * t.p.line_size))
  done;
  for l = 0 to lines_dst - 1 do
    cost := !cost + (hierarchy_cost_ticks t (dst + (l * t.p.line_size)) / 2)
  done;
  (* plus the word-by-word retire cost *)
  let words = (size + 7) / 8 in
  retire t (2 * words / 3);
  add_ticks t !cost

(** Run [f], discounting the cycles it accrues to the machine's
    speculative-overlap fraction. Used for guard bodies, whose results
    gate correctness but not the dataflow of the surrounding code — an
    out-of-order core hides most of their cost. *)
let with_overlap t f =
  let t0 = t.ticks in
  let r = f () in
  let spent = t.ticks - t0 in
  let visible =
    int_of_float (float_of_int spent *. t.p.speculative_overlap)
  in
  t.ticks <- t0 + visible;
  r

(** Closure-free variant of {!with_overlap} for hot callers (the guard
    native): bracket the overlapped section with [overlap_start]/
    [overlap_end]. Skipping [overlap_end] on an exception matches
    {!with_overlap}, which also leaves the full cost in place when [f]
    raises. *)
let overlap_start t = t.ticks

let overlap_end t t0 =
  let spent = t.ticks - t0 in
  t.ticks <- t0 + int_of_float (float_of_int spent *. t.p.speculative_overlap)

(** Inter-trial noise: partially pollute caches, as other processes and
    interrupt handlers would. *)
let perturb t rng ~fraction =
  Cache.perturb t.l1 rng ~fraction;
  Cache.perturb t.l2 rng ~fraction:(fraction /. 2.0);
  Cache.perturb t.l3 rng ~fraction:(fraction /. 4.0)

type snapshot = {
  s_cycles : int;
  s_instructions : int;
  s_loads : int;
  s_stores : int;
  s_branches : int;
  s_mmio : int;
}

let snapshot t =
  {
    s_cycles = cycles t;
    s_instructions = t.instructions;
    s_loads = t.loads;
    s_stores = t.stores;
    s_branches = t.branches;
    s_mmio = t.mmio_accesses;
  }

let delta a b =
  {
    s_cycles = b.s_cycles - a.s_cycles;
    s_instructions = b.s_instructions - a.s_instructions;
    s_loads = b.s_loads - a.s_loads;
    s_stores = b.s_stores - a.s_stores;
    s_branches = b.s_branches - a.s_branches;
    s_mmio = b.s_mmio - a.s_mmio;
  }
