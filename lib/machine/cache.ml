(** Set-associative cache with LRU replacement.

    One instance per level; {!Hierarchy} in {!Model} composes L1/L2/L3.
    Tracks hits/misses for diagnostics. Addresses are simulated kernel
    virtual addresses; we index physically-tagged behaviour by the address
    itself, which is faithful enough for a direct-mapped kernel. *)

type t = {
  name : string;
  line_bits : int;
  sets : int;
  assoc : int;
  tags : int array;        (** sets * assoc, -1 = invalid *)
  lru : int array;         (** per-way recency; higher = more recent *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache.create: line size must be a power of two"
  else go 0 n

(* largest power of two <= n; real caches with odd capacities (6 MB L3)
   index by a power-of-two set count *)
let floor_pow2 n =
  let rec go p = if p * 2 > n then p else go (p * 2) in
  if n < 1 then invalid_arg "Cache.create: bad geometry" else go 1

let create ~name ~size_bytes ~assoc ~line_size =
  let lines = size_bytes / line_size in
  let sets = floor_pow2 (max 1 (lines / assoc)) in
  ignore (log2_exact line_size);
  {
    name;
    line_bits = log2_exact line_size;
    sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    lru = Array.make (sets * assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let set_index t addr = (addr lsr t.line_bits) land (t.sets - 1)
let tag_of t addr = addr lsr t.line_bits

(* Way scans as top-level functions with explicit arguments: a local
   [let rec] would capture its environment and allocate a closure per
   probe, and the probe sits on the guard fast path, which must not
   allocate. Integer-returning (-1 = miss), no option/ref intermediates. *)
let rec find_way tags base assoc tag w =
  if w = assoc then -1
  else if tags.(base + w) = tag then w
  else find_way tags base assoc tag (w + 1)

let rec worst_way lru base assoc w best =
  if w = assoc then best
  else
    worst_way lru base assoc (w + 1)
      (if lru.(base + w) < lru.(base + best) then w else best)

(** Probe and update; true = hit. On miss the line is filled (inclusive
    hierarchy: the caller fills lower levels too). *)
let access t addr =
  t.clock <- t.clock + 1;
  let set = set_index t addr in
  let tag = tag_of t addr in
  let base = set * t.assoc in
  let w = find_way t.tags base t.assoc tag 0 in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.lru.(base + w) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = worst_way t.lru base t.assoc 1 0 in
    t.tags.(base + victim) <- tag;
    t.lru.(base + victim) <- t.clock;
    false
  end

(** Number of cache lines an access [addr, addr+size) touches. *)
let lines_touched t addr size =
  if size <= 0 then 0
  else begin
    let first = addr lsr t.line_bits in
    let last = (addr + size - 1) lsr t.line_bits in
    last - first + 1
  end

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0

(** Invalidate a random fraction of lines — models cache pollution from
    interrupts and other cores between trials. *)
let perturb t rng ~fraction =
  let n = Array.length t.tags in
  let k = int_of_float (float_of_int n *. fraction) in
  for _ = 1 to k do
    let i = Rng.int rng n in
    t.tags.(i) <- -1
  done

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
