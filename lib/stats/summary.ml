(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p5 : float;
  p25 : float;
  p75 : float;
  p95 : float;
  p99 : float;
}

let empty =
  {
    n = 0;
    mean = nan;
    stddev = nan;
    min = nan;
    max = nan;
    median = nan;
    p5 = nan;
    p25 = nan;
    p75 = nan;
    p95 = nan;
    p99 = nan;
  }

(** Interpolated percentile (q in [0,1]) of a *sorted* array. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array (xs : float array) : t =
  (* NaN-tolerant: NaNs carry no information about the distribution and
     poison both the polymorphic-compare sort order and every moment, so
     summarize the finite-or-infinite samples only *)
  let xs =
    if Array.exists Float.is_nan xs then
      Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq xs))
    else xs
  in
  let n = Array.length xs in
  if n = 0 then empty
  else begin
    let sorted = Array.copy xs in
    (* Float.compare: unboxed float comparisons with a total NaN order,
       instead of polymorphic compare's boxed calls per element *)
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      /. float_of_int (max 1 (n - 1))
    in
    {
      n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      median = percentile_sorted sorted 0.5;
      p5 = percentile_sorted sorted 0.05;
      p25 = percentile_sorted sorted 0.25;
      p75 = percentile_sorted sorted 0.75;
      p95 = percentile_sorted sorted 0.95;
      p99 = percentile_sorted sorted 0.99;
    }
  end

let of_ints (xs : int array) = of_array (Array.map float_of_int xs)

let percentile (xs : float array) q =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let median xs = percentile xs 0.5

let to_string ?(unit_label = "") s =
  Printf.sprintf
    "n=%d mean=%.1f%s sd=%.1f median=%.1f%s p5=%.1f p95=%.1f min=%.1f max=%.1f"
    s.n s.mean unit_label s.stddev s.median unit_label s.p5 s.p95 s.min s.max
