(** Empirical CDFs, including ASCII rendering for the figure harness (the
    paper's Figures 3-5 are throughput CDFs). *)

type t = { points : (float * float) array }
(** (value, cumulative fraction), sorted ascending by value *)

let of_samples (xs : float array) : t =
  let n = Array.length xs in
  if n = 0 then { points = [||] }
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    {
      points =
        Array.mapi
          (fun i x -> (x, float_of_int (i + 1) /. float_of_int n))
          sorted;
    }
  end

(** Fraction of samples <= v. *)
let at (t : t) v =
  let n = Array.length t.points in
  if n = 0 then nan
  else begin
    (* binary search for the rightmost point with value <= v *)
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) <= v then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then 0.0 else snd t.points.(!best)
  end

(** Value at cumulative fraction q (inverse CDF): the first point whose
    cumulative fraction reaches [q], or the last point when none does
    (q > 1). O(log n), mirroring {!at}'s search — [render] calls this
    once per percentage tick per series, which made the old O(n) scan
    the figure harness's inner loop. *)
let quantile (t : t) q =
  let n = Array.length t.points in
  if n = 0 then nan
  else begin
    (* binary search for the leftmost point with fraction >= q; the
       fractions are (i+1)/n, strictly increasing *)
    let lo = ref 0 and hi = ref (n - 1) and best = ref n in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if snd t.points.(mid) >= q then begin
        best := mid;
        hi := mid - 1
      end
      else lo := mid + 1
    done;
    if !best >= n then fst t.points.(n - 1) else fst t.points.(!best)
  end

(** Render one or more CDFs as an ASCII plot: rows are cumulative
    percentage ticks, each series gets a distinct mark at the value where
    it crosses that percentage. *)
let render ~title ~unit_label (series : (string * t) list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  let values =
    List.concat_map
      (fun (_, t) -> Array.to_list (Array.map fst t.points))
      series
  in
  match values with
  | [] -> Buffer.contents buf
  | _ ->
    let vmin = List.fold_left min infinity values in
    let vmax = List.fold_left max neg_infinity values in
    let width = 64 in
    let col v =
      if vmax <= vmin then 0
      else
        int_of_float
          (float_of_int (width - 1) *. (v -. vmin) /. (vmax -. vmin))
    in
    let marks = [| '*'; 'o'; '+'; 'x'; '#' |] in
    List.iter
      (fun pct ->
        let q = float_of_int pct /. 100.0 in
        let line = Bytes.make width ' ' in
        List.iteri
          (fun si (_, t) ->
            let v = quantile t q in
            if Float.is_finite v then
              Bytes.set line (col v) marks.(si mod Array.length marks))
          series;
        Buffer.add_string buf
          (Printf.sprintf "%3d%% |%s|\n" pct (Bytes.to_string line)))
      [ 95; 90; 75; 50; 25; 10; 5 ];
    Buffer.add_string buf
      (Printf.sprintf "      %-18.4g%38.4g %s\n" vmin vmax unit_label);
    List.iteri
      (fun si (name, t) ->
        Buffer.add_string buf
          (Printf.sprintf "      %c %s (median %.4g)\n"
             marks.(si mod Array.length marks)
             name (quantile t 0.5)))
      series;
    Buffer.contents buf
