(** Happens-before race detection over the deterministic SMP simulation.

    Each CPU carries a {!Vclock} component; one extra *detached*
    component stands in for injected writers (fault fixtures corrupting
    state behind everyone's back) that participate in no synchronization
    protocol. Sync edges mirror the kernel's real ordering machinery:

    - scheduler context switch: the outgoing CPU releases and the
      incoming CPU acquires a global scheduler token — slices on the
      deterministic round-robin are totally ordered, which is exactly
      why the *kernel-side* paths are race-free by construction;
    - RCU publish: the writer releases the publication token and records
      the revoked write coverage (old grant minus new grant) as a
      revocation window;
    - IPI shootdown service: the remote CPU acquires the publication
      token at its next scheduling point (the inline-cache flush);
    - quiescent points: each CPU releases its grace token; retirement
      acquires them all before the old generation's table is reclaimed,
      so the retire-time interval write is ordered after every reader.

    Two conflict classes surface as reports:

    - [Stale_window]: a module-context access lands inside a window
      another CPU revoked. The module synchronizes with nobody, so no
      happens-before path orders its store against the revocation — the
      seeded cross-CPU race class. Clean workloads never touch revoked
      ranges (their guards would deny), so they stay silent.
    - [Unsynced]: an access overlaps an interval write whose clock is
      not ordered before the accessing CPU's — e.g. a fixture corrupting
      a published policy table (detached component) racing the guard
      path's table reads. Properly retired generations carry the
      retiring CPU's clock, which grace-period acquisition orders after
      every reader: no report. *)

type kind = Stale_window | Unsynced

let kind_to_string = function
  | Stale_window -> "stale-window"
  | Unsynced -> "unsynced"

type report = {
  r_kind : kind;
  r_addr : int;
  r_size : int;
  r_cpu : int;  (** CPU of the flagged access *)
  r_site : string;  (** flagged access's context (module / guard path) *)
  r_other_cpu : int;  (** conflicting writer's CPU (ncpus = detached) *)
  r_other_site : string;
  r_write : bool;  (** the flagged access was a write *)
}

type iwrite = {
  w_lo : int;
  w_hi : int;  (** [w_lo, w_hi) *)
  w_cpu : int;
  w_site : string;
  w_clock : Vclock.t;
}

type revocation = {
  rv_lo : int;
  rv_hi : int;
  rv_cpu : int;
  rv_site : string;
}

type rread = {
  rd_lo : int;
  rd_hi : int;
  rd_cpu : int;
  rd_site : string;
  rd_clock : Vclock.t;
}

type t = {
  ncpus : int;
  clocks : Vclock.t array;  (** ncpus + 1; index ncpus = detached *)
  mutable cur : int;
  sync : (string, Vclock.t) Hashtbl.t;
  mutable iwrites : iwrite list;
  mutable revoked : revocation list;
  reads : (int * int * int, rread) Hashtbl.t;
      (** latest range read per (cpu, lo, hi). Same-CPU clocks are
          monotone, so if the latest read of a range is ordered before a
          writer, every earlier one is too — keeping only the latest is
          sound and keeps the hot guard path O(1). *)
  mutable reports : report list;  (** newest first, capped *)
  mutable n_reports : int;
  mutable n_accesses : int;
  max_reports : int;
}

let create ~cpus =
  let t =
    {
      ncpus = cpus;
      clocks = Array.init (cpus + 1) (fun _ -> Vclock.create (cpus + 1));
      cur = 0;
      sync = Hashtbl.create 16;
      iwrites = [];
      revoked = [];
      reads = Hashtbl.create 64;
      reports = [];
      n_reports = 0;
      n_accesses = 0;
      max_reports = 64;
    }
  in
  (* the detached component starts ahead so its snapshots are never <=
     any real CPU's clock *)
  Vclock.tick t.clocks.(cpus) cpus;
  t

let detached t = t.ncpus
let current t = t.cur
let report_count t = t.n_reports
let reports t = List.rev t.reports
let accesses t = t.n_accesses

let push_report t r =
  t.n_reports <- t.n_reports + 1;
  if List.length t.reports < t.max_reports then t.reports <- r :: t.reports

(* --------------------------------------------------------------- *)
(* sync edges *)

let release t key =
  let c = t.clocks.(t.cur) in
  (match Hashtbl.find_opt t.sync key with
  | Some v -> Vclock.join v c
  | None -> Hashtbl.replace t.sync key (Vclock.copy c));
  Vclock.tick c t.cur

let acquire t key =
  match Hashtbl.find_opt t.sync key with
  | Some v -> Vclock.join t.clocks.(t.cur) v
  | None -> ()

(** Scheduler context switch to [cpu]: chain edge through the run queue
    token. The deterministic scheduler serializes slices, so this edge
    totally orders everything the scheduler dispatches. *)
let switch_to t cpu =
  if cpu <> t.cur then begin
    release t "sched";
    t.cur <- cpu;
    acquire t "sched"
  end

(* --------------------------------------------------------------- *)
(* interval writes (publication, retirement, injected corruption) *)

let overlaps lo hi lo' hi' = lo < hi' && lo' < hi

(** An interval write carrying the *current CPU's* clock (e.g. the
    retire-time reclaim of an old policy table). Races against any
    recorded range read not ordered before it. *)
let sync_write t ~lo ~hi ~site =
  let clock = Vclock.copy t.clocks.(t.cur) in
  Hashtbl.iter
    (fun _ rd ->
      if
        overlaps lo hi rd.rd_lo rd.rd_hi
        && rd.rd_cpu <> t.cur
        && not (Vclock.leq rd.rd_clock clock)
      then
        push_report t
          {
            r_kind = Unsynced;
            r_addr = max lo rd.rd_lo;
            r_size = min hi rd.rd_hi - max lo rd.rd_lo;
            r_cpu = rd.rd_cpu;
            r_site = rd.rd_site;
            r_other_cpu = t.cur;
            r_other_site = site;
            r_write = false;
          })
    t.reads;
  t.iwrites <- { w_lo = lo; w_hi = hi; w_cpu = t.cur; w_site = site; w_clock = clock } :: t.iwrites

(** An *unsynchronized* interval write: attributed to the detached
    component, concurrent with everything past and future. This is how
    fault fixtures inject "someone scribbled on the table behind the
    protocol's back". *)
let async_write t ~lo ~hi ~site =
  let d = detached t in
  Vclock.tick t.clocks.(d) d;
  let clock = Vclock.copy t.clocks.(d) in
  t.iwrites <- { w_lo = lo; w_hi = hi; w_cpu = d; w_site = site; w_clock = clock } :: t.iwrites

let check_iwrites t ~lo ~hi ~site ~write =
  let my = t.clocks.(t.cur) in
  List.iter
    (fun w ->
      if
        overlaps lo hi w.w_lo w.w_hi
        && w.w_cpu <> t.cur
        && not (Vclock.leq w.w_clock my)
      then
        push_report t
          {
            r_kind = Unsynced;
            r_addr = max lo w.w_lo;
            r_size = min hi w.w_hi - max lo w.w_lo;
            r_cpu = t.cur;
            r_site = site;
            r_other_cpu = w.w_cpu;
            r_other_site = w.w_site;
            r_write = write;
          })
    t.iwrites

(** A ranged read with the current CPU's clock — the guard path's table
    scan. Checked against interval writes, then recorded so a later
    unordered reclaim would be caught. *)
let range_read t ~lo ~hi ~site =
  t.n_accesses <- t.n_accesses + 1;
  if t.iwrites <> [] then check_iwrites t ~lo ~hi ~site ~write:false;
  Hashtbl.replace t.reads (t.cur, lo, hi)
    {
      rd_lo = lo;
      rd_hi = hi;
      rd_cpu = t.cur;
      rd_site = site;
      rd_clock = Vclock.copy t.clocks.(t.cur);
    }

(* --------------------------------------------------------------- *)
(* revocation windows *)

(** Publication revoked write grant over [lo, hi): module accesses from
    other CPUs landing here race with the revocation (the module has no
    ordering against the policy writer). *)
let revoke t ~lo ~hi ~site =
  if hi > lo then
    t.revoked <- { rv_lo = lo; rv_hi = hi; rv_cpu = t.cur; rv_site = site } :: t.revoked

(** A later publication re-granting coverage clears overlapping
    revocation windows (the range is legitimately writable again). *)
let grant t ~lo ~hi =
  t.revoked <-
    List.concat_map
      (fun rv ->
        if not (overlaps lo hi rv.rv_lo rv.rv_hi) then [ rv ]
        else
          (if rv.rv_lo < lo then [ { rv with rv_hi = lo } ] else [])
          @ if rv.rv_hi > hi then [ { rv with rv_lo = hi } ] else [])
      t.revoked

(** A module-context data access. Checked against revocation windows and
    pending interval writes. *)
let module_access t ~addr ~size ~write ~site =
  t.n_accesses <- t.n_accesses + 1;
  let hi = addr + size in
  List.iter
    (fun rv ->
      if overlaps addr hi rv.rv_lo rv.rv_hi && rv.rv_cpu <> t.cur then
        push_report t
          {
            r_kind = Stale_window;
            r_addr = addr;
            r_size = size;
            r_cpu = t.cur;
            r_site = site;
            r_other_cpu = rv.rv_cpu;
            r_other_site = rv.rv_site;
            r_write = write;
          })
    t.revoked;
  if t.iwrites <> [] then check_iwrites t ~lo:addr ~hi ~site ~write

(* --------------------------------------------------------------- *)

let format_report r =
  Printf.sprintf
    "race[%s] cpu%d %s %s of %d bytes at 0x%x vs cpu%s %s"
    (kind_to_string r.r_kind) r.r_cpu r.r_site
    (if r.r_write then "write" else "read")
    r.r_size r.r_addr
    (if r.r_other_cpu >= 0 then string_of_int r.r_other_cpu else "?")
    r.r_other_site

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "races: %d (accesses checked: %d)\n" t.n_reports
       t.n_accesses);
  List.iter
    (fun r ->
      Buffer.add_string b (format_report r);
      Buffer.add_char b '\n')
    (reports t);
  Buffer.contents b
