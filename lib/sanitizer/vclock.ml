(** Plain vector clocks over a fixed component count. Component [i] is
    logical time on actor [i]; [leq a b] is the happens-before test
    "everything [a] knew, [b] knows". Used by {!Race} with one component
    per CPU plus one detached component for injected (unsynchronized)
    writers. *)

type t = int array

let create n : t = Array.make n 0
let copy (t : t) : t = Array.copy t
let tick (t : t) i = t.(i) <- t.(i) + 1
let get (t : t) i = t.(i)

(** [join a b] folds [b] into [a] in place (a := a ⊔ b). *)
let join (a : t) (b : t) =
  for i = 0 to Array.length a - 1 do
    if b.(i) > a.(i) then a.(i) <- b.(i)
  done

(** [leq a b]: did the state snapshot [a] happen before (or equal) [b]?
    True iff every component of [a] is <= the matching one in [b]. *)
let leq (a : t) (b : t) =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let to_string (t : t) =
  "<"
  ^ String.concat "," (Array.to_list (Array.map string_of_int t))
  ^ ">"
