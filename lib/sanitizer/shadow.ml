(** KASAN-style shadow state for the simulated kernel heap.

    One shadow cell per 8-byte granule of heap virtual address space,
    kept sparse (a hash table — the simulated heap is tiny and mostly
    untouched). Every kmalloc is tracked in an allocation table whether
    or not shadow *marking* is enabled, so violation reports can always
    attribute an address to "allocation [tag] of [size] bytes from
    [site]". Marking (redzones, freed-state poisoning, the delayed-reuse
    quarantine) only switches on with the sanitizer, keeping the default
    configuration's allocator behaviour — and therefore every published
    figure — bit-identical.

    The state machine per granule:

    - absent        — never part of a tracked allocation (not heap)
    - [Valid (id,k)] — bytes 0..k-1 of the granule belong to live
      allocation [id]; an access past byte [k] is out-of-bounds into
      the allocation's tail padding
    - [Red id]      — redzone guarding allocation [id]
    - [Freed_g id]  — memory of allocation [id] after kfree, held in
      the quarantine so reuse is delayed and use-after-free hits poison

    Frees are typed: double-free and never-allocated (or interior
    pointer) frees return structured errors carrying the original
    allocation when one exists, mirroring the ioctl layer's
    -EINVAL/-ERANGE discipline. *)

let granule = 8
let redzone = 64 (* bytes each side; keeps kmalloc's 64-byte alignment *)

type alloc = {
  id : int;
  base : int;  (** usable (payload) virtual base *)
  size : int;  (** requested size in bytes *)
  tag : string;  (** caller-provided object name; "" when untagged *)
  site : string;  (** allocating context (module name or "kernel") *)
  mutable live : bool;
  mutable free_site : string option;
  lo_rz : int;
  hi_rz : int;
}

(** Raw block extent (start, len) covering payload plus both redzones —
    the unit the allocator's free list recycles. *)
let block_of a = (a.base - a.lo_rz, a.lo_rz + ((a.size + 63) land lnot 63) + a.hi_rz)

type gstate = Valid of int * int | Red of int | Freed_g of int

type violation =
  | Out_of_bounds of alloc  (** redzone / tail-padding hit *)
  | Use_after_free of alloc  (** quarantined (freed) memory touched *)

type free_error =
  | Double_free of alloc  (** already freed; carries the original *)
  | Invalid_free of alloc option
      (** never a live allocation base; [Some a] when the pointer lands
          inside allocation [a] (an interior-pointer free) *)

type t = {
  gran : (int, gstate) Hashtbl.t;  (** granule index -> state *)
  allocs : (int, alloc) Hashtbl.t;  (** id -> allocation record *)
  by_base : (int, int) Hashtbl.t;  (** payload base -> most recent id *)
  mutable next_id : int;
  mutable marking : bool;
  quarantine : int Queue.t;  (** freed allocation ids, FIFO *)
  mutable q_bytes : int;
  q_cap : int;  (** quarantine byte budget before reuse resumes *)
  mutable n_allocs : int;
  mutable n_frees : int;
  mutable live_bytes : int;
}

let create ?(quarantine_bytes = 256 * 1024) () =
  {
    gran = Hashtbl.create 4096;
    allocs = Hashtbl.create 256;
    by_base = Hashtbl.create 256;
    next_id = 1;
    marking = false;
    quarantine = Queue.create ();
    q_bytes = 0;
    q_cap = quarantine_bytes;
    n_allocs = 0;
    n_frees = 0;
    live_bytes = 0;
  }

let marking t = t.marking
let set_marking t b = t.marking <- b
let allocations t = t.n_allocs
let frees t = t.n_frees
let live_bytes t = t.live_bytes
let quarantine_bytes t = t.q_bytes
let quarantine_depth t = Queue.length t.quarantine

let iter_granules ~lo ~hi f =
  if hi > lo then
    for g = lo / granule to (hi - 1) / granule do
      f g
    done

let mark_alloc t (a : alloc) =
  (* left redzone *)
  iter_granules ~lo:(a.base - a.lo_rz) ~hi:a.base (fun g ->
      Hashtbl.replace t.gran g (Red a.id));
  (* payload: full granules, then the partial tail *)
  let full_end = a.base + (a.size / granule * granule) in
  iter_granules ~lo:a.base ~hi:full_end (fun g ->
      Hashtbl.replace t.gran g (Valid (a.id, granule)));
  let rem = a.size mod granule in
  if rem > 0 then
    Hashtbl.replace t.gran (full_end / granule) (Valid (a.id, rem));
  (* right redzone, from the granule after the payload's last through
     the end of the raw block (covers the alignment slack too) *)
  let rz_lo = a.base + ((a.size + granule - 1) / granule * granule) in
  let blk_lo, blk_len = block_of a in
  iter_granules ~lo:rz_lo ~hi:(blk_lo + blk_len) (fun g ->
      if g * granule >= rz_lo then Hashtbl.replace t.gran g (Red a.id))

let mark_freed t (a : alloc) =
  iter_granules ~lo:a.base ~hi:(a.base + max granule a.size) (fun g ->
      Hashtbl.replace t.gran g (Freed_g a.id))

let clear_marks t (a : alloc) =
  let lo, len = block_of a in
  iter_granules ~lo ~hi:(lo + len) (fun g -> Hashtbl.remove t.gran g)

(** Record a fresh allocation. [base] is the usable pointer; when the
    caller reserved redzones, pass their widths so shadow poison covers
    them. Granule marking happens only while {!marking} is on. *)
let track_alloc t ~base ~size ~lo_rz ~hi_rz ~tag ~site : alloc =
  let a =
    {
      id = t.next_id;
      base;
      size;
      tag;
      site;
      live = true;
      free_site = None;
      lo_rz;
      hi_rz;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.allocs a.id a;
  Hashtbl.replace t.by_base base a.id;
  t.n_allocs <- t.n_allocs + 1;
  t.live_bytes <- t.live_bytes + size;
  if t.marking then mark_alloc t a;
  a

(** Free the allocation whose payload base is [addr]. On success returns
    the freed record plus raw block extents now safe for the allocator
    to recycle (empty while the block sits in quarantine). Double and
    invalid frees are typed errors; the allocator state is untouched. *)
let free t ~addr ~site : (alloc * (int * int) list, free_error) result =
  match Hashtbl.find_opt t.by_base addr with
  | Some id -> (
    let a = Hashtbl.find t.allocs id in
    if not a.live then Error (Double_free a)
    else begin
      a.live <- false;
      a.free_site <- Some site;
      t.n_frees <- t.n_frees + 1;
      t.live_bytes <- t.live_bytes - a.size;
      if not t.marking then Ok (a, [ block_of a ])
      else begin
        (* poison and quarantine: reuse is delayed until the FIFO
           overflows its byte budget, so use-after-free lands on poison
           instead of a recycled object *)
        mark_freed t a;
        Queue.push a.id t.quarantine;
        t.q_bytes <- t.q_bytes + a.size;
        let reclaimed = ref [] in
        while t.q_bytes > t.q_cap && not (Queue.is_empty t.quarantine) do
          let old = Hashtbl.find t.allocs (Queue.pop t.quarantine) in
          t.q_bytes <- t.q_bytes - old.size;
          clear_marks t old;
          reclaimed := block_of old :: !reclaimed
        done;
        Ok (a, List.rev !reclaimed)
      end
    end)
  | None -> (
    (* not an allocation base; is it an interior pointer? *)
    let interior = ref None in
    Hashtbl.iter
      (fun _ (a : alloc) ->
        if a.live && addr > a.base && addr < a.base + a.size then
          interior := Some a)
      t.allocs;
    Error (Invalid_free !interior))

let find_alloc t id = Hashtbl.find_opt t.allocs id

(** Shadow check for an access [addr, addr+size). Only marked granules
    answer; addresses outside tracked heap return [None] (not ours to
    police — the policy guard owns those). *)
let check t ~addr ~size : violation option =
  if not t.marking || size <= 0 then None
  else begin
    let viol = ref None in
    let g0 = addr / granule and g1 = (addr + size - 1) / granule in
    let g = ref g0 in
    while !viol = None && !g <= g1 do
      (match Hashtbl.find_opt t.gran !g with
      | Some (Red id) -> viol := Some (Out_of_bounds (Hashtbl.find t.allocs id))
      | Some (Freed_g id) ->
        viol := Some (Use_after_free (Hashtbl.find t.allocs id))
      | Some (Valid (id, k)) ->
        (* partial granule: bytes k..7 are tail padding past the
           requested size — out of bounds even without reaching the
           redzone granule *)
        let last_needed =
          if !g = g1 then (addr + size - 1) mod granule else granule - 1
        in
        if last_needed >= k then
          viol := Some (Out_of_bounds (Hashtbl.find t.allocs id))
      | None -> ());
      incr g
    done;
    !viol
  end

(** Attribute an arbitrary address to the allocation that owns (or most
    plausibly owned) it: containing payload or redzone wins, else the
    nearest allocation ending within a page below. Returns the record
    and the byte offset from its payload base (negative = before). *)
let attribute t addr : (alloc * int) option =
  (* a live containing allocation wins; then any containing one (newest
     first — a recycled base should name its current tenant); then the
     closest allocation ending within a page below the address *)
  let containing = ref None and near = ref None in
  Hashtbl.iter
    (fun _ (a : alloc) ->
      let lo = a.base - a.lo_rz and hi = a.base + a.size + a.hi_rz in
      if addr >= lo && addr < hi then begin
        match !containing with
        | Some (b : alloc) when b.live && not a.live -> ()
        | Some b when b.live = a.live && b.id > a.id -> ()
        | _ -> containing := Some a
      end
      else if addr >= hi && addr - hi < 4096 then
        match !near with
        | Some (b : alloc) when b.base >= a.base -> ()
        | _ -> near := Some a)
    t.allocs;
  match (!containing, !near) with
  | Some a, _ | None, Some a -> Some (a, addr - a.base)
  | None, None -> None

let live_allocs t =
  Hashtbl.fold (fun _ a acc -> if a.live then a :: acc else acc) t.allocs []
  |> List.sort (fun a b -> compare a.base b.base)

(** True iff no two live allocations' payloads overlap — the invariant
    the QCheck allocator property leans on. *)
let no_live_overlap t =
  let rec ok = function
    | (a : alloc) :: (b : alloc) :: rest ->
      a.base + a.size <= b.base && ok (b :: rest)
    | _ -> true
  in
  ok (live_allocs t)

let describe (a : alloc) =
  Printf.sprintf "%s%d-byte allocation%s at 0x%x (by %s%s)"
    (if a.live then "live " else "freed ")
    a.size
    (if a.tag = "" then "" else Printf.sprintf " '%s'" a.tag)
    a.base a.site
    (match a.free_site with
    | Some s when not a.live -> ", freed by " ^ s
    | _ -> "")
