(** Symbolic guard-coverage abstract domain.

    A dataflow fact is a pair of
    - an {b environment} mapping each virtual register to a symbolic
      value ({!sv}) — a tiny flow-sensitive value numbering that sees
      through [Mov]/[Gep] chains exactly like {!Passes.Guard_elim}'s
      block-local numbering, extended across blocks; and
    - a {b coverage map} from a normalized symbolic base address to the
      byte intervals (and access flags) proven checked by an earlier
      [carat_guard] call on every path.

    Soundness discipline:
    - a register redefinition kills coverage keyed on the *previous*
      value of the defining instruction ([S_def] of its id), so stale
      facts cannot survive a loop back edge;
    - joins intersect coverage pairwise and collapse conflicting
      register values to a per-join [S_merge] symbol; when a join
      genuinely conflicts, coverage mentioning that symbol (from an
      earlier iteration) is killed;
    - any call that could mutate the policy or memory map — anything
      but the guard family itself — kills {e all} coverage, exactly the
      conservative envelope {!Passes.Guard_elim} assumes when it
      decides a guard is removable. [Intrinsic]s are treated as
      policy-neutral for the same reason: the eliminator does not reset
      coverage at them, so neither do we. *)

open Kir.Types

(** Symbolic values. [S_def i] is the (opaque) result of the
    instruction with function-wide id [i]; [S_merge (b, r)] is the
    value of register [r] at the head of block [b] when its incoming
    definitions conflict; [S_undef r] is a register read before any
    definition on this path (frozen, so still a stable value). *)
type sv =
  | S_imm of int
  | S_sym of string
  | S_param of reg
  | S_undef of reg
  | S_def of int
  | S_merge of int * reg
  | S_gep of sv * sv * int  (** base + idx * scale *)

let rec sv_to_string = function
  | S_imm n -> string_of_int n
  | S_sym s -> "@" ^ s
  | S_param r -> r
  | S_undef r -> r ^ "?"
  | S_def i -> Printf.sprintf "v%d" i
  | S_merge (b, r) -> Printf.sprintf "%s.phi%d" r b
  | S_gep (b, i, s) ->
    Printf.sprintf "(%s + %s*%d)" (sv_to_string b) (sv_to_string i) s

(** Does any sub-term of [sv] satisfy [p]? *)
let rec sv_exists p sv =
  p sv
  || match sv with S_gep (a, b, _) -> sv_exists p a || sv_exists p b | _ -> false

(** Normalize to (core, byte offset) by peeling constant-index geps off
    the top; matches the structural keys {!Passes.Guard_elim} uses. *)
let rec base_off = function
  | S_gep (b, S_imm n, scale) ->
    let core, off = base_off b in
    (core, off + (n * scale))
  | sv -> (sv, 0)

module Env = Map.Make (String)

module SvMap = Map.Make (struct
  type t = sv

  let compare = compare
end)

(** One proven check: bytes [\[lo, hi)] relative to the core address,
    for accesses whose flags are a subset of [flags]. [origins] are the
    function-wide instruction ids of the guard calls that justify it
    (several after a join merges equal coverage). *)
type fact = { lo : int; hi : int; flags : int; origins : int list }

type t = { env : sv Env.t; facts : fact list SvMap.t }

let coverage_subsumes a b =
  a.lo <= b.lo && b.hi <= a.hi && b.flags land a.flags = b.flags

(** Canonical fact list: equal-coverage facts merged (origins unioned),
    strictly-subsumed facts dropped, sorted. *)
let prune (l : fact list) : fact list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let k = (f.lo, f.hi, f.flags) in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (f.origins @ prev))
    l;
  let merged =
    Hashtbl.fold
      (fun (lo, hi, flags) origins acc ->
        { lo; hi; flags; origins = List.sort_uniq compare origins } :: acc)
      tbl []
  in
  let strictly_below f g = coverage_subsumes g f && not (coverage_subsumes f g) in
  merged
  |> List.filter (fun f -> not (List.exists (strictly_below f) merged))
  |> List.sort_uniq compare

let equal a b = Env.equal ( = ) a.env b.env && SvMap.equal ( = ) a.facts b.facts

let entry_of_params params =
  {
    env =
      List.fold_left (fun e (r, _) -> Env.add r (S_param r) e) Env.empty params;
    facts = SvMap.empty;
  }

let sv_of env = function
  | Imm n -> S_imm n
  | Sym s -> S_sym s
  | Reg r -> ( match Env.find_opt r env with Some v -> v | None -> S_undef r)

let kill_mentioning p facts =
  SvMap.filter (fun core _ -> not (sv_exists p core)) facts

(* -- transfer ------------------------------------------------------ *)

(** What a direct call to a known function does to coverage.

    [ce_kills]: the callee may mutate the policy or the memory map, so
    all caller facts die (the conservative envelope). [ce_adds]: facts
    the callee establishes on {e every} path to {e every} return —
    guard checks it performed under the policy in force when it
    returns. Each added fact is a symbolic core (over [S_sym], [S_imm],
    [S_param] and [S_gep] only) with the callee's formal parameters
    standing in for the arguments; the transfer function substitutes
    the caller's argument values for them. The fully opaque call is
    [{ ce_kills = true; ce_adds = [] }]. *)
type call_effect = {
  ce_kills : bool;
  ce_adds : (sv * int * int * int) list;  (** core, lo, hi, flags *)
  ce_params : reg list;  (** callee formals, for argument substitution *)
}

let opaque_effect = { ce_kills = true; ce_adds = []; ce_params = [] }

type ctx = {
  guard_symbol : string;
  neutral : string -> bool;
      (** direct callees that provably cannot change the policy or the
          memory map (the guard family): coverage survives them *)
  call_effect : string -> call_effect;
      (** effect of every other direct callee; [opaque_effect] when
          nothing is known (externs, unanalyzed modules) *)
}

(** Rewrite a summary core into the caller's value space: the callee's
    formal parameters become the caller's argument values. [None] when
    the core mentions a formal with no matching argument, or a symbol
    class that does not translate. *)
let rec subst_params ~params ~args sv =
  match sv with
  | S_imm _ | S_sym _ -> Some sv
  | S_param r -> (
    let rec pick ps vs =
      match (ps, vs) with
      | p :: _, v :: _ when p = r -> Some v
      | _ :: ps, _ :: vs -> pick ps vs
      | _ -> None
    in
    pick params args)
  | S_gep (b, i, scale) -> (
    match (subst_params ~params ~args b, subst_params ~params ~args i) with
    | Some b, Some i -> Some (S_gep (b, i, scale))
    | _ -> None)
  | S_undef _ | S_def _ | S_merge _ -> None

(** [addr, size, flags] with an optional trailing site id — both the
    paper's 3-argument form and this repo's 4-argument form. *)
let parse_guard_args = function
  | [ addr; Imm size; Imm flags ] when size > 0 -> Some (addr, size, flags, -1)
  | [ addr; Imm size; Imm flags; Imm site ] when size > 0 ->
    Some (addr, size, flags, site)
  | _ -> None

let add_fact core (f : fact) t =
  let existing = try SvMap.find core t.facts with Not_found -> [] in
  if List.exists (fun e -> coverage_subsumes e f) existing then t
  else { t with facts = SvMap.add core (prune (f :: existing)) t.facts }

(** The instruction with id [iid] (re)defines [dst]: bind it to an
    opaque value and kill coverage keyed on this instruction's previous
    execution — the back-edge staleness rule. *)
let def_opaque ~iid dst t =
  match dst with
  | None -> t
  | Some r ->
    {
      env = Env.add r (S_def iid) t.env;
      facts = kill_mentioning (fun s -> s = S_def iid) t.facts;
    }

let transfer_instr ctx ~iid (t : t) (i : instr) : t =
  match i with
  | Call { callee; args; dst } when callee = ctx.guard_symbol -> (
    let t = def_opaque ~iid dst t in
    match parse_guard_args args with
    | Some (addr, size, flags, _site) ->
      let core, off = base_off (sv_of t.env addr) in
      add_fact core { lo = off; hi = off + size; flags; origins = [ iid ] } t
    | None -> t)
  | Call { callee; dst; _ } when ctx.neutral callee -> def_opaque ~iid dst t
  | Call { callee; args; dst } -> (
    match ctx.call_effect callee with
    | { ce_kills = true; ce_adds = []; _ } ->
      def_opaque ~iid dst { t with facts = SvMap.empty }
    | { ce_kills; ce_adds; ce_params } ->
      (* a summarized intra-module callee: optionally kill, then add
         the facts it (re)establishes on every return path *)
      let argvs = List.map (sv_of t.env) args in
      let t = if ce_kills then { t with facts = SvMap.empty } else t in
      let t = def_opaque ~iid dst t in
      List.fold_left
        (fun t (core, lo, hi, flags) ->
          match subst_params ~params:ce_params ~args:argvs core with
          | Some core ->
            let core, shift = base_off core in
            add_fact core
              { lo = lo + shift; hi = hi + shift; flags; origins = [ iid ] }
              t
          | None -> t)
        t ce_adds)
  | Callind { dst; _ } -> def_opaque ~iid dst { t with facts = SvMap.empty }
  | Inline_asm _ -> { t with facts = SvMap.empty }
  | Mov { dst; src; _ } ->
    (* a copy: the destination takes the source's symbolic value, so
       coverage established for that value keeps applying *)
    { t with env = Env.add dst (sv_of t.env src) t.env }
  | Gep { dst; base; idx; scale } ->
    {
      t with
      env = Env.add dst (S_gep (sv_of t.env base, sv_of t.env idx, scale)) t.env;
    }
  | Binop { dst; _ } | Icmp { dst; _ } | Load { dst; _ } | Alloca { dst; _ }
  | Select { dst; _ } ->
    def_opaque ~iid (Some dst) t
  | Intrinsic { dst; _ } -> def_opaque ~iid dst t
  | Store _ -> t

(* -- join ---------------------------------------------------------- *)

let inter_facts a b =
  SvMap.merge
    (fun _core la lb ->
      match (la, lb) with
      | Some la, Some lb ->
        let combined =
          List.concat_map
            (fun f1 ->
              List.filter_map
                (fun f2 ->
                  let lo = max f1.lo f2.lo and hi = min f1.hi f2.hi in
                  let flags = f1.flags land f2.flags in
                  if lo < hi && flags <> 0 then
                    Some
                      {
                        lo;
                        hi;
                        flags;
                        origins = List.sort_uniq compare (f1.origins @ f2.origins);
                      }
                  else None)
                lb)
            la
        in
        (match prune combined with [] -> None | l -> Some l)
      | _ -> None)
    a b

(** Join register environments at the head of [block]. Conflicting (or
    partially-undefined) registers collapse to [S_merge (block, r)];
    incoming values already equal to that symbol are transparent, so a
    loop-invariant register keeps its pre-loop value. Returns the new
    environment plus the merge symbols that genuinely conflicted this
    time (coverage mentioning them is stale). *)
let join_envs ~block (envs : sv Env.t list) : sv Env.t * (int * reg) list =
  let keys = Hashtbl.create 32 in
  List.iter (fun e -> Env.iter (fun r _ -> Hashtbl.replace keys r ()) e) envs;
  let killed = ref [] in
  let env =
    Hashtbl.fold
      (fun r () acc ->
        let self = S_merge (block, r) in
        let vals = List.map (fun e -> Env.find_opt r e) envs in
        let distinct = List.sort_uniq compare vals in
        let foreign = List.filter (fun v -> v <> Some self) distinct in
        match foreign with
        | [ Some v ] -> Env.add r v acc
        | [] -> Env.add r self acc
        | _ ->
          killed := (block, r) :: !killed;
          Env.add r self acc)
      keys Env.empty
  in
  (env, !killed)

let join ~block = function
  | [] -> invalid_arg "Guard_cover.join: empty predecessor list"
  | [ x ] -> x
  | x :: rest as all ->
    let env, killed = join_envs ~block (List.map (fun t -> t.env) all) in
    let facts =
      List.fold_left (fun acc t -> inter_facts acc t.facts) x.facts rest
    in
    let facts =
      if killed = [] then facts
      else
        kill_mentioning
          (function S_merge (b, r) -> List.mem (b, r) killed | _ -> false)
          facts
    in
    { env; facts }

(* -- queries ------------------------------------------------------- *)

(** Is the access [sv]/[size]/[flags] covered? Returns the proving fact
    so callers can credit its origin guards as used.

    [bounds] (default: no answer) gives inclusive integer bounds for a
    symbolic index value — {!Range.bounds_at} partially applied to the
    access's block. With it, a variable-index access
    [base + idx*scale] whose index is provably in [\[lo, hi\]] is
    covered by a fact on [base] spanning the whole footprint
    [\[lo*scale, hi*scale + size)] — how one widened pre-header guard
    proves every iteration of a counted loop. *)
let covering_fact ?(bounds = fun (_ : sv) -> None) t sv ~size ~flags :
    fact option =
  let core, off = base_off sv in
  let direct =
    match SvMap.find_opt core t.facts with
    | None -> None
    | Some l ->
      List.find_opt
        (fun f -> f.lo <= off && off + size <= f.hi && flags land f.flags = flags)
        l
  in
  match direct with
  | Some _ -> direct
  | None -> (
    match core with
    | S_gep (b, idx, scale) when scale > 0 -> (
      match bounds idx with
      | Some (ilo, ihi) when ilo <= ihi -> (
        let bcore, boff = base_off b in
        let need_lo = boff + (ilo * scale) + off in
        let need_hi = boff + (ihi * scale) + off + size in
        match SvMap.find_opt bcore t.facts with
        | None -> None
        | Some l ->
          List.find_opt
            (fun f ->
              f.lo <= need_lo && need_hi <= f.hi
              && flags land f.flags = flags)
            l)
      | _ -> None)
    | _ -> None)
