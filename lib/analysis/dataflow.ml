(** Generic forward-dataflow framework over the KIR CFG.

    A client supplies an abstract {!domain}: an entry value, equality,
    a join over predecessor out-facts, and a per-block transfer
    function. {!solve} runs a round-robin worklist in reverse postorder
    until the per-block in/out facts stabilize.

    The solver is *optimistic about reachability*: a block's in-fact
    joins only the predecessors that have produced an out-fact so far,
    and blocks never reached from the entry keep [None]. This is the
    standard iterative scheme — edges not yet executed contribute
    bottom — and converges to a sound fixpoint for monotone transfer
    functions over finite-height lattices. *)

type 'a domain = {
  entry : 'a;  (** in-fact of the entry block (before joining back edges) *)
  equal : 'a -> 'a -> bool;
  join : block:int -> 'a list -> 'a;
      (** combine predecessor out-facts at the head of [block]; the list
          is non-empty *)
  transfer : block:int -> 'a -> 'a;  (** flow a fact through [block] *)
}

type 'a solution = {
  block_in : 'a option array;  (** [None] = unreachable from entry *)
  block_out : 'a option array;
  sweeps : int;  (** RPO sweeps until fixpoint, for diagnostics *)
}

exception Diverged of string
(** Raised when the fixpoint fails to stabilize within the sweep cap —
    only possible for a non-monotone or infinite-height client domain.
    Callers treat it as "analysis refused", never as "module safe". *)

let solve (d : 'a domain) (cfg : Kir.Cfg.t) : 'a solution =
  let n = Kir.Cfg.n_blocks cfg in
  let rpo = Kir.Cfg.reverse_postorder cfg in
  let block_in = Array.make (max n 1) None in
  let block_out = Array.make (max n 1) None in
  (* every sweep over a fixed CFG either changes some out-fact or is the
     last; finite-height domains stabilize in O(height * loop depth)
     sweeps, so the cap only trips on a broken domain *)
  let max_sweeps = 16 + (4 * n) in
  let sweeps = ref 0 in
  let changed = ref (n > 0) in
  while !changed do
    incr sweeps;
    if !sweeps > max_sweeps then
      raise
        (Diverged
           (Printf.sprintf "no fixpoint after %d sweeps over %d blocks"
              max_sweeps n));
    changed := false;
    List.iter
      (fun b ->
        let pred_outs =
          List.filter_map (fun p -> block_out.(p)) cfg.Kir.Cfg.pred.(b)
        in
        let new_in =
          if b = 0 then Some (d.join ~block:b (d.entry :: pred_outs))
          else
            match pred_outs with
            | [] -> None
            | ps -> Some (d.join ~block:b ps)
        in
        match new_in with
        | None -> ()
        | Some niv ->
          let dirty =
            match block_in.(b) with
            | None -> true
            | Some old -> not (d.equal old niv)
          in
          if dirty then begin
            block_in.(b) <- Some niv;
            let out = d.transfer ~block:b niv in
            match block_out.(b) with
            | Some old when d.equal old out -> ()
            | _ ->
              block_out.(b) <- Some out;
              changed := true
          end)
      rpo
  done;
  { block_in; block_out; sweeps = !sweeps }
