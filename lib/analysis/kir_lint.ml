(** KIR lints, built on the certifier's dataflow analysis plus the
    attestation scan:

    - [L-unguarded] (error): a reachable load/store not covered by any
      dominating guard — the certifier's refusal, itemized;
    - [L-unreachable] (warning): a block never reached from entry (dce
      would remove it; accesses inside escape certification);
    - [L-shadowed-guard] (warning): a guard whose coverage is already
      established at its program point — {!Passes.Guard_elim} or
      {!Passes.Guard_hoist} left a redundant check behind;
    - [L-unused-guard] (warning): a guard that justifies no reachable
      access;
    - [L-callind-nocfi] (warning): an indirect call not covered by
      {!Passes.Cfi_guard} instrumentation — strict attestation would
      reject the module;
    - [W-coalescable-guard] (warning): several guards in one block
      check adjacent/overlapping bytes of the same base and would
      merge into a single wider guard ({!Passes.Guard_coalesce}, run
      at [--opt aggressive]);
    - [L-diverged] (error): the dataflow solver failed to stabilize. *)

open Kir.Types

type severity = Err | Warn

let severity_to_string = function Err -> "error" | Warn -> "warning"

type finding = {
  severity : severity;
  code : string;
  in_func : string;
  in_block : string;  (** empty when not block-specific *)
  message : string;
}

let finding_to_string f =
  let where =
    match (f.in_func, f.in_block) with
    | "", _ -> ""
    | fn, "" -> Printf.sprintf " @%s:" fn
    | fn, b -> Printf.sprintf " @%s.%s:" fn b
  in
  Printf.sprintf "%s[%s]%s %s" (severity_to_string f.severity) f.code where
    f.message

let site_str s = if s < 0 then "site ?" else Printf.sprintf "site %d" s

let lint ?guard_symbol (m : modul) : finding list =
  let out = ref [] in
  let push severity code in_func in_block fmt =
    Printf.ksprintf
      (fun message -> out := { severity; code; in_func; in_block; message } :: !out)
      fmt
  in
  (match Certify.analyze ?guard_symbol m with
  | exception Dataflow.Diverged why ->
    push Err "L-diverged" "" "" "dataflow analysis diverged: %s" why
  | s ->
    List.iter
      (fun (fs : Certify.func_summary) ->
        List.iter
          (fun lbl ->
            push Warn "L-unreachable" fs.fs_name lbl
              "block is unreachable from entry; dce would remove it")
          fs.fs_unreachable;
        List.iter
          (fun (u : Certify.uncovered) ->
            push Err "L-unguarded" u.u_func u.u_block
              "%s of %d bytes at %s is not covered by any dominating %s"
              (Certify.access_kind_to_string u.u_kind)
              u.u_size u.u_addr s.s_guard_symbol)
          fs.fs_uncovered;
        (* dominator tree of this function, for describing *where* a
           shadowed guard's coverage comes from *)
        let doms = lazy
          (let f = List.find (fun f -> f.f_name = fs.fs_name) m.funcs in
           let cfg = Kir.Cfg.of_func f in
           (cfg, Passes.Dominators.compute cfg))
        in
        let block_of_iid iid =
          List.find_opt (fun (g : Certify.guard_site) -> g.gs_iid = iid)
            fs.fs_guards
          |> Option.map (fun (g : Certify.guard_site) -> g.gs_block)
        in
        List.iter
          (fun (g : Certify.guard_site) ->
            if g.gs_redundant then begin
              let how =
                match List.filter_map block_of_iid g.gs_shadowed_by with
                | [] -> "coverage established at a join"
                | lbl :: _ ->
                  let cfg, dom = Lazy.force doms in
                  let a = Kir.Cfg.index_of cfg lbl
                  and b = Kir.Cfg.index_of cfg g.gs_block in
                  if Passes.Dominators.dominates dom a b then
                    Printf.sprintf "shadowed by dominating guard in block %s"
                      lbl
                  else
                    Printf.sprintf "covered on every path (e.g. via block %s)"
                      lbl
              in
              push Warn "L-shadowed-guard" g.gs_func g.gs_block
                "guard (%s) re-checks already-proven coverage; %s"
                (site_str g.gs_site) how
            end
            else if not g.gs_used then
              push Warn "L-unused-guard" g.gs_func g.gs_block
                "guard (%s) justifies no reachable access" (site_str g.gs_site))
          fs.fs_guards)
      s.s_funcs);
  let flags_str f =
    match
      ( f land Passes.Guard_injection.flag_read <> 0,
        f land Passes.Guard_injection.flag_write <> 0 )
    with
    | true, true -> "rw"
    | true, false -> "r"
    | false, true -> "w"
    | false, false -> "-"
  in
  List.iter
    (fun (c : Passes.Guard_coalesce.candidate) ->
      push Warn "W-coalescable-guard" c.c_func c.c_block
        "%d guards (%s) on %s merge into one %s check of bytes [%d,%d)"
        c.c_count
        (String.concat ", " (List.map site_str c.c_sites))
        c.c_addr (flags_str c.c_flags) c.c_lo c.c_hi)
    (Passes.Guard_coalesce.candidates ?guard_symbol m);
  let r = Passes.Attest.scan m in
  List.iter
    (fun (fi : Passes.Attest.finding) ->
      push Warn "L-callind-nocfi" fi.in_func ""
        "indirect call not covered by cfi_guard; strict attestation would \
         reject this module")
    r.uncovered_indirect;
  List.rev !out

let errors fs = List.filter (fun f -> f.severity = Err) fs
let warnings fs = List.filter (fun f -> f.severity = Warn) fs
