(** Guard-completeness certifier.

    Runs the {!Guard_cover} domain through the {!Dataflow} solver and
    proves that every reachable [Load]/[Store] in the module is
    dominated (on every path) by a [carat_guard] call whose coverage —
    base value, byte interval and access flags — subsumes the access.
    This is the static soundness argument the paper's attestation only
    gestures at: not just "the transform pass ran", but "after
    [guard_elim]/[guard_hoist]/[dce] rewrote guard placement, no access
    escaped".

    The proof is summarized in a machine-checkable {b certificate}: a
    one-line per-function guard census plus a digest of the canonical
    module body, stored under the {!Passes.Attest.meta_cert} key and
    covered by the code signature. {!validate} re-derives the
    certificate at load time, so the kernel can refuse modules whose
    certificate is missing, stale (body changed since certification) or
    fails re-analysis.

    The certifier honours the recorded injection configuration:
    accesses exempted by [exempt_stack] are accepted when they are
    provably derived from the function's own allocas, and access kinds
    the configuration never promised to guard are not required. *)

open Kir.Types
module GC = Guard_cover

type access_kind = A_load | A_store

let access_kind_to_string = function A_load -> "load" | A_store -> "store"

type uncovered = {
  u_func : string;
  u_block : label;
  u_iid : int;  (** function-wide instruction id *)
  u_kind : access_kind;
  u_addr : string;  (** printed symbolic address *)
  u_size : int;
}

type guard_site = {
  gs_func : string;
  gs_block : label;
  gs_iid : int;
  gs_site : int;  (** compiler-assigned site id; -1 for the 3-arg form *)
  gs_used : bool;  (** justifies at least one reachable access *)
  gs_redundant : bool;  (** its coverage was already established *)
  gs_shadowed_by : int list;  (** iids of the guards that subsume it *)
}

type func_summary = {
  fs_name : string;
  fs_accesses : int;  (** reachable loads + stores *)
  fs_covered : int;  (** proven covered by a guard fact *)
  fs_exempt : int;  (** alloca-derived under [exempt_stack] *)
  fs_skipped : int;  (** kinds the injection config never guards *)
  fs_guards : guard_site list;
  fs_uncovered : uncovered list;
  fs_unreachable : label list;
  fs_sweeps : int;  (** dataflow sweeps to fixpoint *)
}

type summary = {
  s_guard_symbol : string;
  s_exempt_stack : bool;
  s_guard_reads : bool;
  s_guard_writes : bool;
  s_funcs : func_summary list;
}

let bool_meta m key ~default =
  match meta_find m key with Some v -> v = "true" | None -> default

let analyze_func ?(call_effect = fun _ -> GC.opaque_effect) ~guard_symbol
    ~exempt_stack ~guard_reads ~guard_writes (f : func) : func_summary =
  let cfg = Kir.Cfg.of_func f in
  let n = Kir.Cfg.n_blocks cfg in
  let bodies = Array.map (fun b -> Array.of_list b.body) cfg.Kir.Cfg.blocks in
  (* induction-variable ranges: lets one widened pre-header guard prove
     every iteration of a counted loop (see {!Range}) *)
  let ranges = Range.analyze_func cfg (Passes.Loops.compute cfg) in
  (* function-wide instruction ids, in block-array order *)
  let iid_base = Array.make (max n 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i body ->
      iid_base.(i) <- !total;
      total := !total + Array.length body)
    bodies;
  let instr_at = Array.make (max !total 1) (Inline_asm "") in
  Array.iteri
    (fun i body ->
      Array.iteri (fun k ins -> instr_at.(iid_base.(i) + k) <- ins) body)
    bodies;
  let ctx =
    {
      GC.guard_symbol;
      neutral =
        (fun s ->
          s = Passes.Cfi_guard.guard_symbol
          || s = Passes.Intrinsic_guard.guard_symbol);
      call_effect;
    }
  in
  let block_transfer ~block t =
    snd
      (Array.fold_left
         (fun (iid, t) ins -> (iid + 1, GC.transfer_instr ctx ~iid t ins))
         (iid_base.(block), t)
         bodies.(block))
  in
  let domain =
    {
      Dataflow.entry = GC.entry_of_params f.params;
      equal = GC.equal;
      join = GC.join;
      transfer = block_transfer;
    }
  in
  let sol = Dataflow.solve domain cfg in
  let is_alloca_core = function
    | GC.S_def k when k >= 0 && k < Array.length instr_at -> (
      match instr_at.(k) with Alloca _ -> true | _ -> false)
    | _ -> false
  in
  let used : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let guards = ref [] in
  let uncov = ref [] in
  let unreachable = ref [] in
  let accesses = ref 0
  and covered = ref 0
  and exempt = ref 0
  and skipped = ref 0 in
  Array.iteri
    (fun b body ->
      match sol.Dataflow.block_in.(b) with
      | None -> unreachable := (Kir.Cfg.block cfg b).b_label :: !unreachable
      | Some t0 ->
        let lbl = (Kir.Cfg.block cfg b).b_label in
        let bounds = Range.bounds_at ranges ~block:b in
        let t = ref t0 in
        Array.iteri
          (fun k ins ->
            let iid = iid_base.(b) + k in
            (match ins with
            | Load { ty; addr; _ } | Store { ty; addr; _ } ->
              let kind = match ins with Load _ -> A_load | _ -> A_store in
              let size = size_of_ty ty in
              let flags =
                match kind with
                | A_load -> Passes.Guard_injection.flag_read
                | A_store -> Passes.Guard_injection.flag_write
              in
              incr accesses;
              let sv = GC.sv_of !t.GC.env addr in
              (match GC.covering_fact ~bounds !t sv ~size ~flags with
              | Some cf ->
                incr covered;
                List.iter (fun o -> Hashtbl.replace used o ()) cf.GC.origins
              | None ->
                let core, _ = GC.base_off sv in
                if exempt_stack && is_alloca_core core then incr exempt
                else if
                  (kind = A_load && not guard_reads)
                  || (kind = A_store && not guard_writes)
                then incr skipped
                else
                  uncov :=
                    {
                      u_func = f.f_name;
                      u_block = lbl;
                      u_iid = iid;
                      u_kind = kind;
                      u_addr = GC.sv_to_string sv;
                      u_size = size;
                    }
                    :: !uncov)
            | Call { callee; args; _ } when callee = guard_symbol -> (
              match GC.parse_guard_args args with
              | Some (addr, size, flags, site) ->
                let sv = GC.sv_of !t.GC.env addr in
                let shadow = GC.covering_fact ~bounds !t sv ~size ~flags in
                guards :=
                  {
                    gs_func = f.f_name;
                    gs_block = lbl;
                    gs_iid = iid;
                    gs_site = site;
                    gs_used = false;
                    gs_redundant = shadow <> None;
                    gs_shadowed_by =
                      (match shadow with
                      | Some cf -> cf.GC.origins
                      | None -> []);
                  }
                  :: !guards
              | None -> ())
            | _ -> ());
            t := GC.transfer_instr ctx ~iid !t ins)
          body)
    bodies;
  let guards =
    List.rev_map (fun g -> { g with gs_used = Hashtbl.mem used g.gs_iid }) !guards
  in
  {
    fs_name = f.f_name;
    fs_accesses = !accesses;
    fs_covered = !covered;
    fs_exempt = !exempt;
    fs_skipped = !skipped;
    fs_guards = guards;
    fs_uncovered = List.rev !uncov;
    fs_unreachable = List.rev !unreachable;
    fs_sweeps = sol.Dataflow.sweeps;
  }

(** Does the module's signed metadata declare aggressive optimization?
    Only then does the certifier widen its proof search with
    interprocedural summaries — unoptimized modules keep the paper's
    strictly intraprocedural obligations, so e.g. the mutation sweep on
    a default-pipeline module behaves exactly as before. *)
let interprocedural m =
  meta_find m Passes.Guard_injection.meta_opt_level = Some "aggressive"

(** Analyze every function of [m] under its recorded injection
    configuration. Raises {!Dataflow.Diverged} only for a broken domain
    — callers treat that as a refusal, never as success. *)
let analyze ?guard_symbol (m : modul) : summary =
  let guard_symbol =
    match guard_symbol with
    | Some s -> s
    | None -> (
      match meta_find m Passes.Guard_injection.meta_guard_symbol with
      | Some s -> s
      | None -> Passes.Guard_injection.guard_symbol_default)
  in
  let exempt_stack =
    bool_meta m Passes.Guard_injection.meta_exempt_stack ~default:false
  in
  let guard_reads =
    bool_meta m Passes.Guard_injection.meta_guard_reads ~default:true
  in
  let guard_writes =
    bool_meta m Passes.Guard_injection.meta_guard_writes ~default:true
  in
  let call_effect =
    if interprocedural m then
      let s = Summaries.compute ~guard_symbol m in
      Summaries.effect_of s
    else fun _ -> Guard_cover.opaque_effect
  in
  {
    s_guard_symbol = guard_symbol;
    s_exempt_stack = exempt_stack;
    s_guard_reads = guard_reads;
    s_guard_writes = guard_writes;
    s_funcs =
      List.map
        (analyze_func ~call_effect ~guard_symbol ~exempt_stack ~guard_reads
           ~guard_writes)
        m.funcs;
  }

(* -- certificate --------------------------------------------------- *)

(** Digest of the canonical (meta-free) module body; ties the
    certificate to the exact code it was derived from. *)
let body_digest m =
  Printf.sprintf "%016x"
    (Passes.Signing.fnv1a64 (Kir.Printer.to_string ~with_meta:false m))

(** Module-metadata key naming the policy domain this module is meant to
    run under. When present, {!certify} stamps the domain into the
    certificate, so the proof names the policy it was derived against —
    a certificate for one tenant's domain cannot be replayed as another
    tenant's. Meta keys are outside {!body_digest}, so stamping the
    domain does not invalidate the body digest. *)
let meta_domain = "certify.domain"

let set_domain m name = meta_set m meta_domain name

let render ?domain ~digest (s : summary) =
  let per_func =
    List.map
      (fun fs ->
        Printf.sprintf "%s=%d,%d,%d,%d" fs.fs_name fs.fs_accesses fs.fs_covered
          fs.fs_exempt
          (List.length fs.fs_guards))
      s.s_funcs
  in
  String.concat ";"
    ([
       "v1";
       "digest=" ^ digest;
       "guard=" ^ s.s_guard_symbol;
       Printf.sprintf "exempt=%b" s.s_exempt_stack;
     ]
    @ (match domain with Some d -> [ "domain=" ^ d ] | None -> [])
    @ per_func
    @ [ "verdict=certified" ])

(** Prove guard completeness with [domain] taken verbatim ([None] = an
    undomained, pre-multi-tenant certificate — the wire format is
    unchanged when no domain is named). *)
let certify_as ~domain (m : modul) : (string * summary, string) result =
  match analyze m with
  | exception Dataflow.Diverged why -> Error ("analysis diverged: " ^ why)
  | s -> (
    let uncov = List.concat_map (fun fs -> fs.fs_uncovered) s.s_funcs in
    match uncov with
    | [] -> Ok (render ?domain ~digest:(body_digest m) s, s)
    | u :: _ ->
      Error
        (Printf.sprintf
           "%d unguarded access(es); first: %s of %d bytes at %s in @%s \
            block %s"
           (List.length uncov)
           (access_kind_to_string u.u_kind)
           u.u_size u.u_addr u.u_func u.u_block))

(** Prove guard completeness; [Ok (certificate, summary)] or a human-
    readable refusal naming the first unguarded access. The certificate
    names [domain] when given (or the module's {!meta_domain} stamp). *)
let certify ?domain (m : modul) : (string * summary, string) result =
  let domain =
    match domain with Some _ -> domain | None -> meta_find m meta_domain
  in
  certify_as ~domain m

let certificate ?domain m = Result.map fst (certify ?domain m)

let stored_field prefix cert =
  let lp = String.length prefix in
  String.split_on_char ';' cert
  |> List.find_map (fun field ->
         if String.length field > lp && String.sub field 0 lp = prefix then
           Some (String.sub field lp (String.length field - lp))
         else None)

let stored_digest cert = stored_field "digest=" cert

(** The policy domain a certificate was proven against; [None] for
    undomained certificates. *)
let stored_domain cert = stored_field "domain=" cert

type validate_error =
  | Cert_missing
  | Cert_stale of { expected : string; found : string }
      (** module body changed after certification *)
  | Cert_invalid of string  (** re-analysis refuses the module *)
  | Cert_mismatch  (** census differs from re-analysis *)
  | Cert_wrong_domain of { expected : string; found : string option }
      (** the certificate was proven against a different policy domain
          than the one the module is being loaded into *)

let validate_error_to_string = function
  | Cert_missing -> "module carries no guard-completeness certificate"
  | Cert_stale { expected; found } ->
    Printf.sprintf
      "certificate is stale: module body digest %s, certificate claims %s"
      expected found
  | Cert_invalid reason -> "certificate re-validation failed: " ^ reason
  | Cert_mismatch -> "certificate census does not match re-analysis"
  | Cert_wrong_domain { expected; found } ->
    Printf.sprintf
      "certificate proven against domain %s, but load targets domain %s"
      (match found with Some d -> d | None -> "<none>")
      expected

(** Load-time re-validation: the stored certificate must exist, match
    the current body digest, and equal the freshly re-derived
    certificate bit for bit. Re-derivation uses the domain the stored
    certificate names (so pre-domain certificates keep validating);
    [expect_domain] additionally pins WHICH domain the certificate must
    have been proven against. *)
let validate ?expect_domain (m : modul) : (unit, validate_error) result =
  match meta_find m Passes.Attest.meta_cert with
  | None -> Error Cert_missing
  | Some stored -> (
    let expected = body_digest m in
    match stored_digest stored with
    | None -> Error (Cert_invalid "certificate carries no digest field")
    | Some found when found <> expected -> Error (Cert_stale { expected; found })
    | Some _ -> (
      let domain = stored_domain stored in
      match expect_domain with
      | Some e when domain <> Some e ->
        Error (Cert_wrong_domain { expected = e; found = domain })
      | _ -> (
        match Result.map fst (certify_as ~domain m) with
        | Error reason -> Error (Cert_invalid reason)
        | Ok fresh ->
          if String.equal fresh stored then Ok () else Error Cert_mismatch)))

(* -- pass ---------------------------------------------------------- *)

let run (m : modul) : Passes.Pass.result =
  match certify m with
  | Error reason -> Passes.Pass.fail "certify" "%s" reason
  | Ok (cert, s) ->
    meta_set m Passes.Attest.meta_cert cert;
    let sum f = List.fold_left (fun n fs -> n + f fs) 0 s.s_funcs in
    {
      Passes.Pass.changed = true;
      remarks =
        [
          ("accesses", string_of_int (sum (fun fs -> fs.fs_accesses)));
          ("guards", string_of_int (sum (fun fs -> List.length fs.fs_guards)));
          ("verdict", "certified");
        ];
    }

let pass () = Passes.Pass.make "certify" run

(* registering here lets the pipelines (one library below us) insert
   the certifier without a dependency cycle; any program that touches
   this library gets certified pipelines *)
let () = Passes.Pipeline.set_certifier pass
