(** Interprocedural region summaries.

    For every function of a module, two facts usable at its call sites:

    - {b policy-purity}: the function provably performs no
      policy-mutating operation, transitively — no indirect calls, no
      inline asm, no calls to externs or to impure module functions;
      only the guard family and pure module functions. A call to a
      policy-pure function preserves the caller's coverage facts (it
      cannot reach the policy module, so the table the caller's guards
      checked against is still in force when it returns). Purity is a
      greatest fixpoint: mutually recursive functions that only call
      each other stay pure.

    - {b guarantees}: coverage facts the function establishes on every
      path to every return, expressed over its formal parameters (and
      module symbols). These hold in the caller immediately after the
      call returns — even for an impure callee, because facts that
      survive to its returns postdate its last policy-mutating
      operation by construction (the callee's own analysis kills facts
      at such calls). Guarantees are a least fixpoint from the empty
      summary, so they are always an under-approximation — sound to
      assume, never complete.

    This is what lets the certified optimizer (and the certifier that
    re-checks its output) delete a caller's re-check of a range the
    callee just guarded: e.g. [e1000e_xmit_frame]'s loads of the
    adapter fields that [e1000e_tx_avail] already checked. *)

open Kir.Types
module GC = Guard_cover

type fsum = {
  sm_pure : bool;
  sm_guarantees : (GC.sv * int * int * int) list;
      (** core (over formals/symbols), lo, hi, flags *)
  sm_params : reg list;
}

type t = {
  guard_symbol : string;
  tbl : (string, fsum) Hashtbl.t;
}

let default_neutral s =
  s = Passes.Cfi_guard.guard_symbol || s = Passes.Intrinsic_guard.guard_symbol

(* -- policy purity: greatest fixpoint ------------------------------ *)

let compute_purity ~guard_symbol ~neutral (m : modul) :
    (string, bool) Hashtbl.t =
  let pure = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace pure f.f_name true) m.funcs;
  let is_pure name = try Hashtbl.find pure name with Not_found -> false in
  let func_ok f =
    List.for_all
      (fun b ->
        List.for_all
          (fun i ->
            match i with
            | Callind _ | Inline_asm _ -> false
            | Call { callee; _ } ->
              callee = guard_symbol || neutral callee || is_pure callee
            | _ -> true)
          b.body)
      f.blocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if is_pure f.f_name && not (func_ok f) then begin
          Hashtbl.replace pure f.f_name false;
          changed := true
        end)
      m.funcs
  done;
  pure

(* -- guarantees: least fixpoint ------------------------------------ *)

(* a core exportable across the call boundary: built only from module
   symbols, immediates and the function's own formals *)
let rec exportable = function
  | GC.S_imm _ | GC.S_sym _ | GC.S_param _ -> true
  | GC.S_gep (b, i, _) -> exportable b && exportable i
  | GC.S_undef _ | GC.S_def _ | GC.S_merge _ -> false

(* facts holding at the end of every reachable Ret block, exported *)
let ret_facts ~ctx (f : func) : (GC.sv * int * int * int) list =
  let cfg = Kir.Cfg.of_func f in
  let bodies = Array.map (fun b -> Array.of_list b.body) cfg.Kir.Cfg.blocks in
  let n = Kir.Cfg.n_blocks cfg in
  let iid_base = Array.make (max n 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i body ->
      iid_base.(i) <- !total;
      total := !total + Array.length body)
    bodies;
  let block_transfer ~block t =
    snd
      (Array.fold_left
         (fun (iid, t) ins -> (iid + 1, GC.transfer_instr ctx ~iid t ins))
         (iid_base.(block), t)
         bodies.(block))
  in
  let domain =
    {
      Dataflow.entry = GC.entry_of_params f.params;
      equal = GC.equal;
      join = GC.join;
      transfer = block_transfer;
    }
  in
  match Dataflow.solve domain cfg with
  | exception Dataflow.Diverged _ -> []
  | sol ->
    let rets = ref [] in
    Array.iteri
      (fun i out ->
        match ((Kir.Cfg.block cfg i).term, out) with
        | Ret _, Some t -> rets := t :: !rets
        | _ -> ())
      sol.Dataflow.block_out;
    (match !rets with
    | [] -> []
    | t0 :: rest ->
      let facts =
        List.fold_left
          (fun acc (t : GC.t) -> GC.inter_facts acc t.GC.facts)
          t0.GC.facts rest
      in
      GC.SvMap.fold
        (fun core fs acc ->
          if exportable core then
            List.fold_left
              (fun acc (f : GC.fact) ->
                (core, f.GC.lo, f.GC.hi, f.GC.flags) :: acc)
              acc fs
          else acc)
        facts []
      |> List.sort compare)

(** Compute the module's summaries to fixpoint. *)
let compute ?(guard_symbol = Passes.Guard_injection.guard_symbol_default)
    ?(neutral = default_neutral) (m : modul) : t =
  let pure = compute_purity ~guard_symbol ~neutral m in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.f_name
        {
          sm_pure = (try Hashtbl.find pure f.f_name with Not_found -> false);
          sm_guarantees = [];
          sm_params = List.map fst f.params;
        })
    m.funcs;
  let t = { guard_symbol; tbl } in
  let effect_of callee =
    match Hashtbl.find_opt tbl callee with
    | None -> GC.opaque_effect
    | Some s ->
      {
        GC.ce_kills = not s.sm_pure;
        ce_adds = s.sm_guarantees;
        ce_params = s.sm_params;
      }
  in
  let ctx = { GC.guard_symbol; neutral; call_effect = effect_of } in
  let rounds = ref (List.length m.funcs + 2) in
  let changed = ref true in
  while !changed && !rounds > 0 do
    changed := false;
    decr rounds;
    List.iter
      (fun f ->
        let s = Hashtbl.find tbl f.f_name in
        let g = ret_facts ~ctx f in
        if g <> s.sm_guarantees then begin
          Hashtbl.replace tbl f.f_name { s with sm_guarantees = g };
          changed := true
        end)
      m.funcs
  done;
  t

(** The {!Guard_cover.ctx} call-effect function for this module:
    summarized effects for module functions, fully opaque for
    everything else. *)
let effect_of (t : t) (callee : string) : GC.call_effect =
  match Hashtbl.find_opt t.tbl callee with
  | None -> GC.opaque_effect
  | Some s ->
    {
      GC.ce_kills = not s.sm_pure;
      ce_adds = s.sm_guarantees;
      ce_params = s.sm_params;
    }

let is_pure (t : t) name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s.sm_pure
  | None -> false

let guarantees (t : t) name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s.sm_guarantees
  | None -> []
