(** Loop induction-variable range analysis.

    Detects the counted-loop shape {!Kir.Builder.for_loop} emits —

    {v
      pre:   mov  i, init            ; last def of i in the preheader
             br   head
      head:  c = icmp slt i, N       ; N an immediate
             cond_br c, body, exit
      body:  ...                     ; exactly one redefinition of i:
             t = add i, step         ;   step an immediate >= 1
             mov  i, t
             br   head
    v}

    — and proves that, inside the loop body (excluding the header,
    where [i] can already equal the exit bound), the symbolic value
    [S_merge (header, i)] lies in [\[init, last\]] with
    [last = N - 1] for [Slt] and [N] for [Sle].

    The claim is keyed on the merge symbol deliberately: after the
    in-loop increment, [i]'s symbolic value becomes the [S_def] of the
    add, so reads past the increment (where [i] may equal the bound)
    never match, and neither do reads of [i] in the exit blocks — their
    environment also sees the merge symbol, which is why validity is
    restricted to loop-body blocks.

    This is what lets the certifier accept a single widened pre-header
    guard covering a whole loop footprint ({!Optimize}'s
    hoist-widening): the per-iteration access [base + i*scale] of
    [size] bytes stays within [\[init*scale, last*scale + size)]. *)

open Kir.Types
module GC = Guard_cover

type loop_bound = {
  lb_header : int;  (** header block index *)
  lb_preheader : int;  (** unique outside predecessor block index *)
  lb_split : bool;
      (** the predecessor has successors besides the header, so a
          widening transform must split the entry edge
          ({!Kir.Cfg.insert_preheader}) before placing guards *)
  lb_reg : reg;  (** induction register *)
  lb_lo : int;
  lb_hi : int;  (** inclusive value range inside the body *)
  lb_step : int;
  lb_body : int list;  (** blocks where the bound holds (body minus header) *)
}

type t = {
  bounds : loop_bound list;
  in_body : (int * reg, loop_bound) Hashtbl.t;  (** (block, reg) index *)
}

(* last definition of [r] in [body]; None when undefined *)
let last_def_of body r =
  List.fold_left
    (fun acc i -> if def_of_instr i = Some r then Some i else acc)
    None body

let analyze_func (cfg : Kir.Cfg.t) (linfo : Passes.Loops.t) : t =
  let bounds = ref [] in
  List.iter
    (fun (l : Passes.Loops.loop) ->
      match Passes.Loops.outside_preds linfo l with
      | [ p ] -> (
        let header_b = Kir.Cfg.block cfg l.Passes.Loops.header in
        (* exit test: cond_br on an icmp slt/sle against an immediate,
           computed in the header as the last def of the condition *)
        match header_b.term with
        | Cond_br { cond = Reg c; if_true; if_false } -> (
          let tt = Kir.Cfg.index_of cfg if_true in
          let ft = Kir.Cfg.index_of cfg if_false in
          let in_l b = Passes.Loops.in_loop l b in
          match last_def_of header_b.body c with
          | Some (Icmp { cond; a = Reg i; b = Imm n; _ })
            when (cond = Slt || cond = Sle) && in_l tt && not (in_l ft) -> (
            (* init: last def of i on the loop-entry path must be a
               mov-imm; walk up through blocks that leave [i] untouched
               along a unique-predecessor chain, so a previously split
               entry edge (an inserted pre-header carrying only guards)
               stays transparent to re-analysis *)
            let rec find_init bi fuel =
              match last_def_of (Kir.Cfg.block cfg bi).body i with
              | Some d -> Some d
              | None ->
                if fuel = 0 then None
                else (
                  match cfg.Kir.Cfg.pred.(bi) with
                  | [ q ] -> find_init q (fuel - 1)
                  | _ -> None)
            in
            match find_init p 4 with
            | Some (Mov { src = Imm init; _ }) -> (
              (* exactly one redefinition of i inside the loop: the
                 canonical [t = add i, step; mov i, t] bottom *)
              let body_blocks =
                List.filter (fun bi -> bi <> l.Passes.Loops.header)
                  l.Passes.Loops.body
              in
              let defs_in_loop =
                List.concat_map
                  (fun bi ->
                    let b = Kir.Cfg.block cfg bi in
                    List.filter (fun ins -> def_of_instr ins = Some i) b.body)
                  l.Passes.Loops.body
              in
              let header_defines_i =
                List.exists (fun ins -> def_of_instr ins = Some i) header_b.body
              in
              match defs_in_loop with
              | [ Mov { src = Reg t; _ } ] when not header_defines_i -> (
                (* find t's definition in the loop; it must be the add *)
                let t_defs =
                  List.concat_map
                    (fun bi ->
                      let b = Kir.Cfg.block cfg bi in
                      List.filter (fun ins -> def_of_instr ins = Some t) b.body)
                    l.Passes.Loops.body
                in
                match t_defs with
                | [ Binop { op = Add; a = Reg i'; b = Imm step; _ } ]
                  when i' = i && step >= 1 ->
                  let last = if cond = Slt then n - 1 else n in
                  if init <= last then
                    bounds :=
                      {
                        lb_header = l.Passes.Loops.header;
                        lb_preheader = p;
                        lb_split =
                          cfg.Kir.Cfg.succ.(p) <> [ l.Passes.Loops.header ];
                        lb_reg = i;
                        lb_lo = init;
                        lb_hi = last;
                        lb_step = step;
                        lb_body = body_blocks;
                      }
                      :: !bounds
                | _ -> ())
              | _ -> ())
            | _ -> ())
          | _ -> ())
        | _ -> ())
      | _ -> ())
    linfo.Passes.Loops.loops;
  let in_body = Hashtbl.create 16 in
  List.iter
    (fun lb ->
      List.iter (fun bi -> Hashtbl.replace in_body (bi, lb.lb_reg) lb) lb.lb_body)
    !bounds;
  { bounds = List.rev !bounds; in_body }

let loop_bounds t = t.bounds

(** Inclusive bounds of symbolic value [sv] when read in [block], or
    [None]. Only the loop-merge symbol of a proven counted loop gets an
    answer, and only inside that loop's body. *)
let bounds_at t ~block (sv : GC.sv) : (int * int) option =
  match sv with
  | GC.S_merge (h, r) -> (
    match Hashtbl.find_opt t.in_body (block, r) with
    | Some lb when lb.lb_header = h -> Some (lb.lb_lo, lb.lb_hi)
    | _ -> None)
  | _ -> None

(** Convenience: full per-function analysis. *)
let compute (f : func) : t =
  let cfg = Kir.Cfg.of_func f in
  analyze_func cfg (Passes.Loops.compute cfg)
