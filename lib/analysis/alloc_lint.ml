(** Static allocation-lifetime lints over KIR, as a forward dataflow on
    {!Dataflow}. The abstract state tracks which allocation sites each
    virtual register may carry (propagated through [Mov]/[Gep]/pointer
    arithmetic) and a per-site lifetime status with the must-info join
    [Allocated ⊔ Freed = Top] — a site whose status merges to [Top] is
    never reported, so path-insensitive uncertainty cannot produce a
    false double-free or use-after-free.

    Findings (as {!Kir_lint.finding}s, so the CLI plumbing is shared):

    - [L-double-free] (error): kfree of a pointer that is freed on every
      path reaching the call;
    - [L-use-after-free] (error): load/store through a pointer freed on
      every path reaching the access;
    - [L-leak-on-exit] (warning): a function returns while an allocation
      it made is still live and never escaped (stored to memory, passed
      to a call, or returned);
    - [W-unchecked-alloc] (warning): a kmalloc result dereferenced
      without any null check ([icmp] against 0) anywhere in the
      function. *)

open Kir.Types

module SMap = Map.Make (String)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type status = Allocated | Freed | Top

type fact = {
  regs : ISet.t SMap.t;  (** register -> allocation sites it may carry *)
  sites : status IMap.t;  (** site -> lifetime status; absent = bottom *)
}

let empty_fact = { regs = SMap.empty; sites = IMap.empty }

let join_status a b = if a = b then a else Top

let join_fact a b =
  {
    regs =
      SMap.union (fun _ s1 s2 -> Some (ISet.union s1 s2)) a.regs b.regs;
    sites = IMap.union (fun _ s1 s2 -> Some (join_status s1 s2)) a.sites b.sites;
  }

let equal_fact a b =
  SMap.equal ISet.equal a.regs b.regs && IMap.equal ( = ) a.sites b.sites

type site_info = {
  si_id : int;
  si_block : string;
  si_ord : int;  (** ordinal among the function's allocation calls *)
}

let describe si =
  if si.si_ord = 0 then Printf.sprintf "allocation in block %s" si.si_block
  else Printf.sprintf "allocation #%d in block %s" (si.si_ord + 1) si.si_block

(* Observation callbacks fired during the post-fixpoint replay pass; the
   solver itself runs with [None] so repeated sweeps report nothing. *)
type 'a observer = {
  ob_double_free : site_info -> block:string -> unit;
  ob_uaf : site_info -> block:string -> write:bool -> unit;
  ob_escape : int -> unit;
  ob_check : int -> unit;
  ob_deref : int -> block:string -> unit;
  ob_ret : block:string -> status IMap.t -> unit;
}

let analyze_func ~alloc_symbol ~free_symbol push (f : func) =
  let cfg = Kir.Cfg.of_func f in
  (* enumerate allocation sites: one per [alloc_symbol] call *)
  let site_at : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let infos = ref [] in
  let nsites = ref 0 in
  Array.iteri
    (fun bi (b : block) ->
      List.iteri
        (fun ii i ->
          match i with
          | Call { callee; _ } when callee = alloc_symbol ->
            let id = !nsites in
            incr nsites;
            Hashtbl.replace site_at (bi, ii) id;
            infos := { si_id = id; si_block = b.b_label; si_ord = id } :: !infos
          | _ -> ())
        b.body)
    cfg.Kir.Cfg.blocks;
  let info id = List.find (fun s -> s.si_id = id) !infos in
  let sites_of regs v =
    match v with
    | Reg r -> ( match SMap.find_opt r regs with Some s -> s | None -> ISet.empty)
    | Imm _ | Sym _ -> ISet.empty
  in
  let transfer ?observe ~block fact =
    let b = cfg.Kir.Cfg.blocks.(block) in
    let fact = ref fact in
    let set_reg dst s =
      { !fact with regs = (if ISet.is_empty s then SMap.remove dst !fact.regs
                           else SMap.add dst s !fact.regs) }
    in
    let status id = IMap.find_opt id !fact.sites in
    let on_deref v ~write =
      ISet.iter
        (fun id ->
          (match observe with
          | Some ob ->
            ob.ob_deref id ~block:b.b_label;
            if status id = Some Freed then
              ob.ob_uaf (info id) ~block:b.b_label ~write
          | None -> ()))
        (sites_of !fact.regs v)
    in
    let on_escape v =
      match observe with
      | Some ob -> ISet.iter ob.ob_escape (sites_of !fact.regs v)
      | None -> ()
    in
    List.iteri
      (fun ii i ->
        match i with
        | Call { dst; callee; args = _ } when callee = alloc_symbol ->
          let id = Hashtbl.find site_at (block, ii) in
          fact := { !fact with sites = IMap.add id Allocated !fact.sites };
          (match dst with
          | Some d -> fact := set_reg d (ISet.singleton id)
          | None -> ())
        | Call { dst; callee; args } when callee = free_symbol ->
          let freed =
            List.fold_left
              (fun acc v -> ISet.union acc (sites_of !fact.regs v))
              ISet.empty args
          in
          ISet.iter
            (fun id ->
              (match observe with
              | Some ob when status id = Some Freed ->
                ob.ob_double_free (info id) ~block:b.b_label
              | _ -> ());
              (* strong update only when the pointer is unambiguous *)
              let st =
                if ISet.cardinal freed = 1 then Freed
                else
                  match status id with
                  | Some s -> join_status s Freed
                  | None -> Freed
              in
              fact := { !fact with sites = IMap.add id st !fact.sites })
            freed;
          (match dst with Some d -> fact := set_reg d ISet.empty | None -> ())
        | Call { dst; args; _ } | Callind { dst; args; _ }
        | Intrinsic { dst; args; _ } ->
          List.iter on_escape args;
          (match dst with Some d -> fact := set_reg d ISet.empty | None -> ())
        | Load { dst; addr; _ } ->
          on_deref addr ~write:false;
          fact := set_reg dst ISet.empty
        | Store { v; addr; _ } ->
          on_deref addr ~write:true;
          on_escape v
        | Mov { dst; src; _ } -> fact := set_reg dst (sites_of !fact.regs src)
        | Gep { dst; base; _ } -> fact := set_reg dst (sites_of !fact.regs base)
        | Binop { dst; a; b = b'; _ } ->
          (* pointer arithmetic: the result may still point into the
             allocation either operand carries *)
          fact :=
            set_reg dst
              (ISet.union (sites_of !fact.regs a) (sites_of !fact.regs b'))
        | Select { dst; if_true; if_false; _ } ->
          fact :=
            set_reg dst
              (ISet.union
                 (sites_of !fact.regs if_true)
                 (sites_of !fact.regs if_false))
        | Icmp { dst; a; b = b'; _ } ->
          let checked =
            match (a, b') with
            | v, Imm 0 | Imm 0, v -> sites_of !fact.regs v
            | _ -> ISet.empty
          in
          (match observe with
          | Some ob -> ISet.iter ob.ob_check checked
          | None -> ());
          fact := set_reg dst ISet.empty
        | Alloca { dst; _ } -> fact := set_reg dst ISet.empty
        | Inline_asm _ -> ())
      b.body;
    (match (b.term, observe) with
    | Ret v, Some ob ->
      (match v with Some v -> on_escape v | None -> ());
      ob.ob_ret ~block:b.b_label !fact.sites
    | _ -> ());
    !fact
  in
  let domain =
    {
      Dataflow.entry = empty_fact;
      equal = equal_fact;
      join =
        (fun ~block:_ -> function
          | [] -> empty_fact
          | f :: fs -> List.fold_left join_fact f fs);
      transfer = (fun ~block fact -> transfer ~block fact);
    }
  in
  match Dataflow.solve domain cfg with
  | exception Dataflow.Diverged why ->
    push Kir_lint.Err "L-diverged" f.f_name ""
      (Printf.sprintf "allocation dataflow diverged: %s" why)
  | sol ->
    let escaped = ref ISet.empty in
    let checked = ref ISet.empty in
    let derefs = ref IMap.empty in
    let rets = ref [] in
    let ob =
      {
        ob_double_free =
          (fun si ~block ->
            push Kir_lint.Err "L-double-free" f.f_name block
              (Printf.sprintf "%s of %s is freed on every path reaching it"
                 free_symbol (describe si)));
        ob_uaf =
          (fun si ~block ~write ->
            push Kir_lint.Err "L-use-after-free" f.f_name block
              (Printf.sprintf "%s through %s, freed on every path reaching it"
                 (if write then "store" else "load")
                 (describe si)));
        ob_escape = (fun id -> escaped := ISet.add id !escaped);
        ob_check = (fun id -> checked := ISet.add id !checked);
        ob_deref =
          (fun id ~block ->
            if not (IMap.mem id !derefs) then
              derefs := IMap.add id block !derefs);
        ob_ret = (fun ~block sites -> rets := (block, sites) :: !rets);
      }
    in
    Array.iteri
      (fun bi in_fact ->
        match in_fact with
        | Some fact -> ignore (transfer ~observe:ob ~block:bi fact)
        | None -> ())
      sol.Dataflow.block_in;
    (* leaks: still must-allocated at some return, never escaped *)
    let leaked = ref ISet.empty in
    List.iter
      (fun (blk, sites) ->
        IMap.iter
          (fun id st ->
            if
              st = Allocated
              && (not (ISet.mem id !escaped))
              && not (ISet.mem id !leaked)
            then begin
              leaked := ISet.add id !leaked;
              push Kir_lint.Warn "L-leak-on-exit" f.f_name blk
                (Printf.sprintf
                   "%s is still live at return and never escapes"
                   (describe (info id)))
            end)
          sites)
      (List.rev !rets);
    (* dereferenced but never null-checked anywhere in the function *)
    IMap.iter
      (fun id blk ->
        if not (ISet.mem id !checked) then
          push Kir_lint.Warn "W-unchecked-alloc" f.f_name blk
            (Printf.sprintf
               "%s result (%s) dereferenced without a null check"
               alloc_symbol
               (describe (info id))))
      !derefs

let lint ?(alloc_symbol = "kmalloc") ?(free_symbol = "kfree") (m : modul) :
    Kir_lint.finding list =
  let out = ref [] in
  let push severity code in_func in_block message =
    out := { Kir_lint.severity; code; in_func; in_block; message } :: !out
  in
  List.iter (analyze_func ~alloc_symbol ~free_symbol push) m.funcs;
  List.rev !out
