(** The certificate-gated guard optimizer — the [O_aggressive] tier.

    Three transforms beyond the local {!Passes.Guard_elim} /
    {!Passes.Guard_hoist} pair:

    - {b interprocedural elimination}: guards whose coverage a callee
      already established ({!Summaries}) or an earlier guard already
      proved ({!Guard_cover}, including the loop-range widening below)
      are deleted. Only guards the certifier marks [gs_redundant] go: a
      redundant guard re-checks bytes an equally-or-more-demanding
      check already passed with no intervening policy mutation, so its
      deletion preserves the allow/deny decision stream exactly, under
      any policy.

    - {b loop hoist-widening}: a per-iteration guard on
      [base + i*scale] inside a counted loop ({!Range}) is subsumed by
      one pre-header guard over the whole footprint
      [base + lo*scale .. base + hi*scale + size). Emitted only when
      [scale <= size] (the footprint is contiguous — no gap-filling)
      and no call in the loop can mutate the policy. The per-iteration
      guard itself is then removed by the elimination step, whose
      analysis re-proves the widened guard covers every iteration.

    - {b guard coalescing} ({!Passes.Guard_coalesce}): adjacent or
      overlapping byte guards on one base merge into one wider guard.

    Widening and coalescing check a contiguous superset of the original
    bytes; under an object-granular policy (one allocation never spans
    regions of differing protection) their decisions are identical to
    the originals', and denials can only move earlier (fail-stop). See
    DESIGN.md, "certified optimization contract".

    The whole pass is {b certificate-gated}: it stamps the module
    "aggressive" (signed metadata — this is what licenses the
    certifier's interprocedural reasoning), transforms, and then runs
    {!Certify.certify}. If certification fails, the module is restored
    to its pre-pass state instruction for instruction and the pass
    reports the refusal — an optimizer bug can produce a slow module,
    never an unguarded one. *)

open Kir.Types
module GC = Guard_cover

(* -- snapshot / restore -------------------------------------------- *)

type snapshot = {
  sn_funcs : (func * block list * (block * instr list * terminator) list) list;
  sn_meta : (string * string) list;
}

let snapshot (m : modul) : snapshot =
  {
    sn_funcs =
      List.map
        (fun f ->
          (f, f.blocks, List.map (fun b -> (b, b.body, b.term)) f.blocks))
        m.funcs;
    sn_meta = m.meta;
  }

let restore (snap : snapshot) (m : modul) : unit =
  List.iter
    (fun (f, blocks, saved) ->
      List.iter
        (fun (b, body, term) ->
          b.body <- body;
          b.term <- term)
        saved;
      f.blocks <- blocks)
    snap.sn_funcs;
  m.meta <- snap.sn_meta

(* -- interprocedural elimination ----------------------------------- *)

(** Delete every guard the certifier proves redundant. Sound to do in
    one sweep: a guard whose coverage an existing fact subsumes
    contributes no fact of its own ({!Guard_cover.add_fact} drops
    subsumed facts), so surviving facts only ever originate from
    surviving guards (or calls); and accesses the deleted guards
    covered remain covered by the subsuming facts the certifier's
    re-analysis rediscovers. *)
let eliminate (m : modul) : int =
  let s = Certify.analyze m in
  let deleted = ref 0 in
  List.iter2
    (fun (f : func) (fs : Certify.func_summary) ->
      let redundant = Hashtbl.create 16 in
      List.iter
        (fun (g : Certify.guard_site) ->
          if g.Certify.gs_redundant then
            Hashtbl.replace redundant g.Certify.gs_iid ())
        fs.Certify.fs_guards;
      if Hashtbl.length redundant > 0 then begin
        (* function-wide instruction ids count off in block order,
           exactly as the certifier assigned them *)
        let iid = ref 0 in
        List.iter
          (fun b ->
            b.body <-
              List.filter
                (fun _ ->
                  let k = !iid in
                  incr iid;
                  if Hashtbl.mem redundant k then begin
                    incr deleted;
                    false
                  end
                  else true)
                b.body)
          f.blocks
      end)
    m.funcs s.Certify.s_funcs;
  !deleted

(* -- loop hoist-widening ------------------------------------------- *)

(** Replace per-iteration guards on [base + i*scale] with one widened
    pre-header guard per distinct footprint. Does not delete the
    per-iteration guards — the following elimination step removes them
    once the certifier's range analysis proves them redundant, so a
    widening the certifier cannot re-prove costs one extra static
    guard but never loses coverage. *)
let widen ~guard_symbol ~(summaries : Summaries.t) (m : modul) : int =
  let neutral = Summaries.default_neutral in
  let widened = ref 0 in
  let process_func (f : func) =
    let cfg = Kir.Cfg.of_func f in
    let linfo = Passes.Loops.compute cfg in
    let ranges = Range.analyze_func cfg linfo in
    match Range.loop_bounds ranges with
    | [] -> ()
    | lbs ->
      let taken = Passes.Guard_coalesce.all_regs f in
      let fresh_ctr = ref 0 in
      let fresh_reg () =
        let rec go () =
          incr fresh_ctr;
          let r = Printf.sprintf "%%__gw%d" !fresh_ctr in
          if Hashtbl.mem taken r then go ()
          else begin
            Hashtbl.replace taken r ();
            r
          end
        in
        go ()
      in
      let labels = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace labels b.b_label ()) f.blocks;
      let fresh_label base =
        let rec go k =
          let l = Printf.sprintf "%s.widen%d" base k in
          if Hashtbl.mem labels l then go (k + 1)
          else begin
            Hashtbl.replace labels l ();
            l
          end
        in
        go 0
      in
      List.iter
        (fun (lb : Range.loop_bound) ->
          match
            List.find_opt
              (fun (l : Passes.Loops.loop) ->
                l.Passes.Loops.header = lb.Range.lb_header)
              linfo.Passes.Loops.loops
          with
          | None -> ()
          | Some l ->
            let loop_blocks =
              List.map (Kir.Cfg.block cfg) l.Passes.Loops.body
            in
            (* no call in the loop may reach the policy module: only the
               guard family and provably policy-pure functions *)
            let calls_ok =
              List.for_all
                (fun b ->
                  List.for_all
                    (function
                      | Call { callee; _ } ->
                        callee = guard_symbol || neutral callee
                        || Summaries.is_pure summaries callee
                      | Callind _ | Inline_asm _ -> false
                      | _ -> true)
                    b.body)
                loop_blocks
            in
            if calls_ok then begin
              let defined =
                Passes.Guard_hoist.regs_defined_in_blocks loop_blocks
              in
              let invariant = function
                | Imm _ | Sym _ -> true
                | Reg r -> not (Hashtbl.mem defined r)
              in
              (* candidate footprints: guard on a register whose latest
                 in-block def is [gep base, i, scale] with the induction
                 register untouched in between, base loop-invariant and
                 the stride within the access width (contiguous union) *)
              let cands = ref [] in
              List.iter
                (fun bi ->
                  let arr = Array.of_list (Kir.Cfg.block cfg bi).body in
                  Array.iteri
                    (fun j ins ->
                      match
                        Passes.Guard_coalesce.parse_guard ~guard_symbol ins
                      with
                      | Some (Reg a, size, flags, site) -> (
                        let dj = ref (-1) in
                        for k = 0 to j - 1 do
                          if def_of_instr arr.(k) = Some a then dj := k
                        done;
                        if !dj >= 0 then
                          match arr.(!dj) with
                          | Gep { base; idx = Reg ir; scale; _ }
                            when ir = lb.Range.lb_reg
                                 && scale > 0 && scale <= size
                                 && invariant base ->
                            let clean = ref true in
                            for k = !dj + 1 to j - 1 do
                              if def_of_instr arr.(k) = Some ir then
                                clean := false
                            done;
                            if !clean then
                              cands := (base, scale, size, flags, site) :: !cands
                          | _ -> ())
                      | _ -> ())
                    arr)
                lb.Range.lb_body;
              let seen = Hashtbl.create 8 in
              let cands =
                List.filter
                  (fun (base, scale, size, flags, _) ->
                    let k = (base, scale, size, flags) in
                    if Hashtbl.mem seen k then false
                    else begin
                      Hashtbl.replace seen k ();
                      true
                    end)
                  (List.rev !cands)
              in
              if cands <> [] then begin
                let pre =
                  if lb.Range.lb_split then
                    (* the unique outside predecessor also branches
                       elsewhere: split the entry edge so the widened
                       guard runs only when the loop actually runs *)
                    let target =
                      (Kir.Cfg.block cfg lb.Range.lb_header).b_label
                    in
                    let pred_l =
                      (Kir.Cfg.block cfg lb.Range.lb_preheader).b_label
                    in
                    Kir.Cfg.insert_preheader f ~target ~preds:[ pred_l ]
                      ~fresh:(fresh_label target)
                  else Kir.Cfg.block cfg lb.Range.lb_preheader
                in
                List.iter
                  (fun (base, scale, size, flags, site) ->
                    let r = fresh_reg () in
                    let span =
                      ((lb.Range.lb_hi - lb.Range.lb_lo) * scale) + size
                    in
                    let args =
                      if site < 0 then [ Reg r; Imm span; Imm flags ]
                      else [ Reg r; Imm span; Imm flags; Imm site ]
                    in
                    pre.body <-
                      pre.body
                      @ [
                          Gep
                            {
                              dst = r;
                              base;
                              idx = Imm lb.Range.lb_lo;
                              scale;
                            };
                          Call { dst = None; callee = guard_symbol; args };
                        ];
                    incr widened)
                  cands
              end
            end)
        lbs
  in
  List.iter process_func m.funcs;
  !widened

(* -- the pass ------------------------------------------------------ *)

let coalesce ~guard_symbol m =
  let r = Passes.Guard_coalesce.run ~guard_symbol m in
  match List.assoc_opt "guards_merged" r.Passes.Pass.remarks with
  | Some n -> int_of_string n
  | None -> 0

let run (m : modul) : Passes.Pass.result =
  if meta_find m Passes.Guard_injection.meta_guarded <> Some "true" then
    Passes.Pass.fail "guard-optimize" "module %s is not guarded" m.m_name;
  let guard_symbol =
    match meta_find m Passes.Guard_injection.meta_guard_symbol with
    | Some s -> s
    | None -> Passes.Guard_injection.guard_symbol_default
  in
  let snap = snapshot m in
  (* the signed level stamp is what licenses the certifier's
     interprocedural reasoning — both for the elimination below and for
     every later re-validation of this module *)
  meta_set m Passes.Guard_injection.meta_opt_level
    (Passes.Pipeline.opt_level_to_string Passes.Pipeline.O_aggressive);
  match
    let interproc = eliminate m in
    let merged = coalesce ~guard_symbol m in
    let summaries = Summaries.compute ~guard_symbol m in
    let widened = widen ~guard_symbol ~summaries m in
    let narrowed = if widened > 0 then eliminate m else 0 in
    let merged' = if widened + narrowed > 0 then coalesce ~guard_symbol m else 0 in
    (interproc + narrowed, merged + merged', widened)
  with
  | exception Dataflow.Diverged why ->
    restore snap m;
    {
      Passes.Pass.changed = false;
      remarks = [ ("restored", "analysis diverged: " ^ why) ];
    }
  | eliminated, merged, widened -> (
    match Certify.certify m with
    | Error reason ->
      (* refuse the transform, not the module *)
      restore snap m;
      { Passes.Pass.changed = false; remarks = [ ("restored", reason) ] }
    | Ok _ ->
      {
        Passes.Pass.changed = eliminated + merged + widened > 0;
        remarks =
          [
            ("guards_eliminated", string_of_int eliminated);
            ("guards_merged", string_of_int merged);
            ("guards_widened", string_of_int widened);
          ];
      })

let pass () = Passes.Pass.make "guard-optimize" run

(* registered like the certifier: linking this library arms the
   aggressive tier of every pipeline *)
let () = Passes.Pipeline.set_optimizer pass
