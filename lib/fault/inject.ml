(** Fault classes and their seeded instantiation.

    Each fault is a concrete corruption of one stage of the module
    pipeline (compile → sign → load → run). The first three classes
    attack the *pipeline* (tampering with IR or signature after signing)
    and are what load-time signature verification is supposed to catch;
    the rest are *runtime* memory attacks — the wild stores the paper's
    guards exist to stop, including a cross-CPU race against an RCU
    policy shrink.

    Builders are deterministic in the supplied PRNG, so a campaign with a
    fixed seed reproduces byte-for-byte. *)

type cls =
  | Ir_tamper
      (** post-signing IR mutation: a benign store's destination is
          redirected at a protected kernel object *)
  | Sig_truncation  (** the signature metadata is truncated in transit *)
  | Guard_deletion
      (** the guard call protecting the malicious store is deleted after
          signing — the attack §3.2's signing scheme exists to prevent *)
  | Wild_store  (** a wild-pointer store into a core-kernel object *)
  | Oob_ring_index
      (** a TX-descriptor write with an out-of-bounds ring index,
          clobbering whatever sits after the ring *)
  | Policy_corruption
      (** a store aimed at the policy module's own region table *)
  | Cross_cpu_race
      (** a guarded store on CPU A racing a policy shrink published from
          CPU B: the region the store targets is revoked mid-run, and the
          store keeps firing from a warm guard site afterwards. Guards
          must enforce the *published* policy — a stale inline-cache
          allow after the grace period is an escape. *)
  | Shadow_corrupt
      (** a wild write smashing a shadow-table slot into a bogus
          writable-page fact for the victim's target — the very next
          guarded store would be stale-allowed straight from the corrupt
          slot. The integrity watchdog must detect (checksum or semantic
          cross-check), degrade to the linear fallback, deny, and
          rebuild. *)
  | Icache_corrupt
      (** a wild write spraying a per-site inline-cache slot with a
          forged (epoch, page, prot) triple for the victim's payload
          guard site. The watchdog must detect (canary or semantic
          cross-check), switch the caches off, deny from the tier below,
          and re-promote after the flush. *)
  | Rcu_instance_corrupt
      (** the SMP variant: the freshly RCU-published policy instance is
          corrupted (a protected region's permission bits flipped in the
          live table) right after CPU B publishes it, racing readers on
          CPU A. The watchdog must catch the digest divergence and
          republish a clean generation through the RCU route. *)
  | Rx_ring_corrupt
      (** the interrupt-path attack: a module store aimed at an RX
          descriptor ring — the memory the NAPI poll loop walks in
          softirq context. Redirecting a descriptor's buffer pointer
          turns the device's next unguarded DMA write into an arbitrary
          kernel write; the guard on the module's store is the only
          thing in the way. *)

(* [Rx_ring_corrupt] is appended last: campaign per-class PRNG streams
   are split by class name, but the class rotation is positional, so
   appending preserves every existing class's fault sequence. *)
let all_classes =
  [
    Ir_tamper;
    Sig_truncation;
    Guard_deletion;
    Wild_store;
    Oob_ring_index;
    Policy_corruption;
    Cross_cpu_race;
    Shadow_corrupt;
    Icache_corrupt;
    Rcu_instance_corrupt;
    Rx_ring_corrupt;
  ]

let cls_to_string = function
  | Ir_tamper -> "ir-tamper"
  | Sig_truncation -> "sig-truncation"
  | Guard_deletion -> "guard-deletion"
  | Wild_store -> "wild-store"
  | Oob_ring_index -> "oob-ring-index"
  | Policy_corruption -> "policy-corruption"
  | Cross_cpu_race -> "cross-cpu-race"
  | Shadow_corrupt -> "shadow-corrupt"
  | Icache_corrupt -> "icache-corrupt"
  | Rcu_instance_corrupt -> "rcu-instance-corrupt"
  | Rx_ring_corrupt -> "rx-ring-corrupt"

(** Does this class corrupt the pipeline after signing (so a verifying
    loader should reject the module), as opposed to attacking at run
    time? *)
let is_pipeline_fault = function
  | Ir_tamper | Sig_truncation | Guard_deletion -> true
  | Wild_store | Oob_ring_index | Policy_corruption | Cross_cpu_race
  | Shadow_corrupt | Icache_corrupt | Rcu_instance_corrupt | Rx_ring_corrupt
    ->
    false

(** Does this class corrupt the enforcement machinery itself (so the
    self-healing watchdog, not the guard check, is the detector)? *)
let is_tier_corruption = function
  | Shadow_corrupt | Icache_corrupt | Rcu_instance_corrupt -> true
  | Ir_tamper | Sig_truncation | Guard_deletion | Wild_store | Oob_ring_index
  | Policy_corruption | Cross_cpu_race | Rx_ring_corrupt ->
    false

(* ------------------------------------------------------------------ *)
(* victim construction *)

let victim_name = "victim"
let entry = "victim_run"
let counter_global = "victim_calls"

(** Build the victim module: it bumps its call counter, performs a few
    benign stores into [work] (values salted by [rng] so every seed signs
    differently), and — when [payload] is given — fires the malicious
    store at that address. [Ir_tamper] victims are built benign; the
    post-signing mutation is what turns them hostile. *)
let build_victim ?payload ~rng ~work () =
  let b = Kir.Builder.create victim_name in
  ignore (Kir.Builder.declare_global b counter_global ~size:8);
  ignore (Kir.Builder.start_func b entry ~params:[] ~ret:(Some Kir.Types.I64));
  let open Kir.Types in
  let c = Kir.Builder.load b I64 (Sym counter_global) in
  let c1 = Kir.Builder.add b I64 c (Imm 1) in
  Kir.Builder.store b I64 c1 (Sym counter_global);
  for i = 0 to 3 do
    let salt = Machine.Rng.int rng 0x10000 in
    Kir.Builder.store b I64 (Imm salt) (Imm (work + (8 * i)))
  done;
  (match payload with
  | Some addr -> Kir.Builder.store b I64 (Imm 0xDEAD_BEEF) (Imm addr)
  | None -> ());
  Kir.Builder.ret b (Some c1);
  Kir.Builder.modul b

(** The repaired replacement inserted during recovery: same name and
    entry point, benign stores only. *)
let build_repaired ~rng ~work () = build_victim ~rng ~work ()

(* the cross-CPU race victim's entry points *)
let race_early = "victim_early"
let race_late = "victim_late"

(** The cross-CPU race victim: [victim_early] stores into the window
    that stays writable, [victim_late] into the window the concurrent
    policy shrink revokes. Both bump the call counter. The late stores
    are legitimate when first exercised (warming the guard's site inline
    cache for that page) and become violations once CPU B's shrink is
    published — the interesting store is the same instruction at the
    same site before and after. *)
let build_race_victim ~rng ~lo ~hi () =
  let b = Kir.Builder.create victim_name in
  ignore (Kir.Builder.declare_global b counter_global ~size:8);
  let open Kir.Types in
  let entry_fn name window =
    ignore (Kir.Builder.start_func b name ~params:[] ~ret:(Some I64));
    let c = Kir.Builder.load b I64 (Sym counter_global) in
    let c1 = Kir.Builder.add b I64 c (Imm 1) in
    Kir.Builder.store b I64 c1 (Sym counter_global);
    for i = 0 to 2 do
      (* value depends on the live counter so every call writes fresh
         bytes — a post-shrink store always shows up in the memory diff *)
      let salt = Machine.Rng.int rng 0x10000 in
      let x = Kir.Builder.add b I64 c1 (Imm salt) in
      Kir.Builder.store b I64 x (Imm (window + (8 * i)))
    done;
    Kir.Builder.ret b (Some c1)
  in
  entry_fn race_early lo;
  entry_fn race_late hi;
  Kir.Builder.modul b

(* ------------------------------------------------------------------ *)
(* post-signing mutations *)

let iter_bodies (m : Kir.Types.modul) f =
  List.iter
    (fun (fn : Kir.Types.func) ->
      List.iter (fun (blk : Kir.Types.block) -> f blk) fn.Kir.Types.blocks)
    m.Kir.Types.funcs

(** Redirect the first benign store (an [Imm] destination that is not the
    payload) at [payload_addr] — flipping address bits after the module
    was signed. *)
let mutate_ir_tamper (m : Kir.Types.modul) ~payload_addr =
  let done_ = ref false in
  iter_bodies m (fun blk ->
      if not !done_ then
        blk.Kir.Types.body <-
          List.map
            (fun i ->
              match i with
              | Kir.Types.Store { ty; v; addr = Imm _ } when not !done_ ->
                done_ := true;
                Kir.Types.Store { ty; v; addr = Imm payload_addr }
              | i -> i)
            blk.Kir.Types.body)

(** Delete the guard call immediately preceding the store that targets
    [payload_addr]. A no-op on unguarded (baseline) modules. *)
let mutate_guard_deletion (m : Kir.Types.modul) ~payload_addr ~guard_symbol =
  iter_bodies m (fun blk ->
      let rec strip = function
        | Kir.Types.Call { callee; _ }
          :: (Kir.Types.Store { addr = Imm a; _ } as store) :: rest
          when callee = guard_symbol && a = payload_addr ->
          store :: strip rest
        | i :: rest -> i :: strip rest
        | [] -> []
      in
      blk.Kir.Types.body <- strip blk.Kir.Types.body)

(** The compiler-assigned site id of the guard protecting the store at
    [payload_addr] in a compiled (guard-injected) module — the slot the
    inline-cache corruption class sprays. [None] on unguarded modules. *)
let payload_guard_site (m : Kir.Types.modul) ~payload_addr ~guard_symbol =
  let found = ref None in
  iter_bodies m (fun blk ->
      List.iter
        (fun i ->
          match i with
          | Kir.Types.Call
              { callee; args = [ Kir.Types.Imm a; _; _; Kir.Types.Imm site ]; _ }
            when !found = None && callee = guard_symbol && a = payload_addr ->
            found := Some site
          | _ -> ())
        blk.Kir.Types.body);
  !found

(** Truncate the signature tag, as a corrupted or spliced module image
    would present it. *)
let mutate_sig_truncation (m : Kir.Types.modul) =
  match Kir.Types.meta_find m Passes.Signing.meta_sig with
  | Some tag when String.length tag > 4 ->
    Kir.Types.meta_set m Passes.Signing.meta_sig
      (String.sub tag 0 (String.length tag / 2))
  | _ -> ()
