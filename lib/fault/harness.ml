(** One containment cell per (fault, configuration): a fresh small kernel
    with the VM and policy module installed, a protected victim target
    set (a secret kernel object, a TX descriptor ring with a canary after
    it, the policy table itself), and a seeded victim module from
    {!Inject}. After the run the cell checks the containment invariants:

    - no byte outside the policy's writable regions changed (verified by
      diffing physical memory against a pre-run snapshot);
    - the kernel is either alive or panicked with the first fault
      recorded;
    - a quarantined module is not re-enterable (calls return -EIO with no
      side effects) and the kernel recovers by unloading it and loading a
      repaired replacement. *)

type mode = Baseline | Carat of Policy.Policy_module.on_deny

let all_modes =
  [
    Baseline;
    Carat Policy.Policy_module.Panic;
    Carat Policy.Policy_module.Quarantine;
    Carat Policy.Policy_module.Audit;
  ]

let mode_to_string = function
  | Baseline -> "baseline"
  | Carat m -> "carat/" ^ Policy.Policy_module.on_deny_to_string m

type outcome = {
  cls : Inject.cls;
  mode : mode;
  seed : int;
  loaded : bool;
  load_error : string option;
  rc : int option;  (** victim entry return value, when it was invoked *)
  panicked : bool;
  first_fault_recorded : bool;
      (** panic (if any) names the guard violation, not a secondary crash *)
  quarantined : bool;
  denied : int;  (** guard denials recorded by the policy module *)
  escaped_bytes : int;
      (** bytes outside the policy's writable regions that changed *)
  reenter_blocked : bool option;
      (** quarantine only: second call bounced with -EIO, counter intact *)
  recovered : bool option;
      (** quarantine only: rmmod + repaired insmod + clean run worked *)
  trace_tail : string list;
      (** last guard/lifecycle events from the cell's trace ring when the
          run ended in a deny/panic/quarantine — the operator's forensic
          view of what the module touched right before containment *)
  sh_detected : bool option;
      (** tier-corruption classes under carat: the integrity watchdog
          detected the corruption before the victim's store could be
          served from the corrupt tier *)
  sh_rebuilt : bool option;
      (** tier-corruption classes, kernel alive: the quarantined tier was
          rebuilt from the authoritative copy and re-promoted to the full
          fast path (tier level restored) *)
  sh_stale : int option;
      (** verified fast-path stale allows during the run (paranoid
          cross-check; must be 0 — a corrupt tier must never answer) *)
  san_reports : int;
      (** sanitizer reports recorded (always 0 with the sanitizer off) *)
  san_at_access : bool option;
      (** sanitize only: some sanitizer report names the faulting access
          address and carries an allocation attribution — the corruption
          was caught *at the access*, not by the end-of-run snapshot
          diff *)
  san_attribution : string option;
      (** the at-access report's allocation attribution, when present *)
  race_reports : int option;
      (** SMP cells under sanitize: happens-before detector reports *)
}

(** The headline invariant: the fault did not touch a single byte outside
    the policy's writable regions. *)
let contained o = o.escaped_bytes = 0

(* ------------------------------------------------------------------ *)

let phys_size = 8 * 1024 * 1024
let desc_size = 16
let ring_entries = 16
let work_size = 4096
let secret_size = 512

(* physical ranges behind a list of direct-map/stack virtual windows plus
   every module-area mapping — the writable set the diff is checked
   against *)
let allowed_phys kernel windows =
  let dm v = v - Kernel.Layout.direct_map_base in
  List.map (fun (v, l) -> (dm v, l)) windows
  @ List.filter_map
      (fun (m : Kernel.mapping) ->
        if Kernel.Layout.is_module_addr m.Kernel.map_virt then
          Some (m.Kernel.map_phys, m.Kernel.map_size)
        else None)
      kernel.Kernel.mappings

let covered allowed p =
  List.exists (fun (base, len) -> p >= base && p < base + len) allowed

(** Bytes in [diff ranges] that fall outside the allowed physical
    ranges. *)
let escaped kernel ~snap ~allowed =
  let diffs = Kernel.Memory.diff_ranges (Kernel.memory kernel) snap in
  List.fold_left
    (fun acc (base, len) ->
      let n = ref 0 in
      for p = base to base + len - 1 do
        if not (covered allowed p) then incr n
      done;
      acc + !n)
    0 diffs

(* ------------------------------------------------------------------ *)

type cell = {
  kernel : Kernel.t;
  vm : Vm.Interp.state;
  pm : Policy.Policy_module.t;
  work : int;
  secret : int;
  ring : int;
  canary : int;
  rx_ring : int;
      (** an RX descriptor ring the NAPI softirq path walks; deny for
          modules (no policy region covers it) — the [Rx_ring_corrupt]
          target *)
  table : (int * int) option;
  writable : (int * int) list;  (** direct-map/stack windows, virtual *)
}

let make_cell ?(engine = Vm.Engine.Interp) ?(kind = Policy.Engine.Linear)
    ?(site_cache = false) ?(sanitize = false) ~mode () : cell =
  let require_signature = mode <> Baseline in
  let kernel =
    Kernel.create ~phys_size ~require_signature Machine.Presets.r350
  in
  (* before any allocation, so redzones and shadow marks cover the whole
     heap the cell builds below *)
  if sanitize then Kernel.enable_sanitizer kernel;
  let vm = Vm.Engine.install ~kind:engine kernel in
  let on_deny =
    match mode with Baseline -> Policy.Policy_module.Audit | Carat m -> m
  in
  (* the policy module is installed in baseline cells too: its region
     table is a real in-kernel object the policy-corruption class
     targets; unguarded baselines simply never call the guard *)
  let pm = Policy.Policy_module.install ~kind ~on_deny ~site_cache kernel in
  (* carat cells record a small guard-event ring so denials come with a
     forensic tail; the ring never writes simulated bytes, so the
     containment diff below is unaffected *)
  if mode <> Baseline then
    Trace.start (Policy.Policy_module.enable_trace ~capacity:64 pm);
  let secret = Kernel.kmalloc ~tag:"secret" kernel ~size:secret_size in
  let ring =
    Kernel.kmalloc ~tag:"tx-ring" kernel ~size:(ring_entries * desc_size)
  in
  let canary = Kernel.kmalloc ~tag:"canary" kernel ~size:512 in
  let work = Kernel.kmalloc ~tag:"victim-work" kernel ~size:work_size in
  (* allocated after the originals so every pre-existing class keeps its
     exact addresses (and fault streams) *)
  let rx_ring =
    Kernel.kmalloc ~tag:"rx-ring" kernel ~size:(ring_entries * desc_size)
  in
  (* give the protected objects recognizable contents *)
  for i = 0 to (secret_size / 8) - 1 do
    Kernel.write kernel ~addr:(secret + (8 * i)) ~size:8 0x5EC2E7
  done;
  for i = 0 to 63 do
    Kernel.write kernel ~addr:(canary + (8 * i)) ~size:8 0xCA9A27
  done;
  (* RX descriptors carry plausible buffer pointers (into the canary):
     redirecting one is exactly the arbitrary-DMA-write setup *)
  for i = 0 to ring_entries - 1 do
    Kernel.write kernel ~addr:(rx_ring + (i * desc_size)) ~size:8
      (canary + (i * 16))
  done;
  let stack = Vm.Interp.stack_region vm in
  let writable = [ (work, work_size); (ring, ring_entries * desc_size); stack ] in
  let open Policy.Region in
  Policy.Policy_module.set_policy pm
    [
      v ~tag:"victim-work" ~base:work ~len:work_size ~prot:prot_rw ();
      v ~tag:"tx-ring" ~base:ring ~len:(ring_entries * desc_size)
        ~prot:prot_rw ();
      v ~tag:"vm-stack" ~base:(fst stack) ~len:(snd stack) ~prot:prot_rw ();
      v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:prot_rw ();
      v ~tag:"kernel-read-only" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:prot_read ();
      v ~tag:"user-deny" ~base:0x1000 ~len:Kernel.Layout.kernel_base ~prot:0 ();
    ];
  let table = Policy.Engine.table_region (Policy.Policy_module.engine pm) in
  { kernel; vm; pm; work; secret; ring; canary; rx_ring; table; writable }

(* the malicious store's destination for a given class, seeded *)
let payload_addr cell ~cls ~rng =
  match (cls : Inject.cls) with
  | Inject.Wild_store | Inject.Ir_tamper | Inject.Sig_truncation
  | Inject.Guard_deletion ->
    cell.secret + (8 * Machine.Rng.int rng (secret_size / 8))
  | Inject.Oob_ring_index ->
    (* descriptor index past the ring's end: lands after the ring *)
    let idx = ring_entries + Machine.Rng.int rng 8 in
    cell.ring + (idx * desc_size)
  | Inject.Policy_corruption -> (
    match cell.table with
    | Some (base, len) -> base + (8 * Machine.Rng.int rng (len / 8))
    | None -> cell.secret)
  | Inject.Cross_cpu_race ->
    (* handled by its own two-CPU runner; never instantiated here *)
    cell.secret
  | Inject.Shadow_corrupt | Inject.Icache_corrupt | Inject.Rcu_instance_corrupt
    ->
    (* tier-corruption classes aim the victim at the secret too; the
       corruption rigs a derived tier to stale-allow that store *)
    cell.secret + (8 * Machine.Rng.int rng (secret_size / 8))
  | Inject.Rx_ring_corrupt ->
    (* a descriptor's buffer-pointer field: the softirq path's ring
       memory, which no policy region grants to modules *)
    cell.rx_ring + (Machine.Rng.int rng ring_entries * desc_size)

let compile_victim ?(opt = Passes.Pipeline.O_none) ~mode m =
  let pipeline =
    match mode with
    | Baseline -> Passes.Pipeline.baseline_sign ()
    | Carat _ -> Passes.Pipeline.kop ~opt ()
  in
  ignore (Passes.Pass.run_pipeline_checked pipeline m)

(* At-access evidence from the sanitizer: a recorded report whose address
   falls inside [lo, hi) and carries an allocation attribution. Returns
   (report count, at-access hit, attribution). *)
let san_fields kernel ~lo ~hi =
  if not (Kernel.sanitizer_enabled kernel) then (0, None, None)
  else
    let hit =
      List.find_opt
        (fun (r : Kernel.san_report) ->
          r.Kernel.sr_addr >= lo && r.Kernel.sr_addr < hi
          && r.Kernel.sr_attribution <> None)
        (Kernel.san_reports kernel)
    in
    ( Kernel.san_report_count kernel,
      Some (hit <> None),
      match hit with Some r -> r.Kernel.sr_attribution | None -> None )

(* ------------------------------------------------------------------ *)

(** The cross-CPU race: CPU 0 runs the victim whose [victim_late] entry
    stores into the upper half of the work window; CPU 1 publishes a
    policy shrink (revoking that half) through the RCU route mid-run.
    The memory snapshot is taken *after* the shrink's grace period, so
    the pre-shrink (legitimate) late stores don't count — only bytes the
    victim lands in the revoked window afterwards are escapes. Baseline
    always escapes; a guarded victim must be stopped by the exact walk
    even though its site inline cache was warm for that page. *)
let run_race ?engine ?opt ?(sanitize = false) ~(mode : mode) ~seed () : outcome =
  let cell = make_cell ?engine ~sanitize ~mode () in
  let rng = Machine.Rng.create seed in
  let half = work_size / 2 in
  let lo = cell.work and hi = cell.work + half in
  let open Policy.Region in
  let tail_policy =
    [
      v ~tag:"tx-ring" ~base:cell.ring ~len:(ring_entries * desc_size)
        ~prot:prot_rw ();
      v ~tag:"vm-stack"
        ~base:(fst (Vm.Interp.stack_region cell.vm))
        ~len:(snd (Vm.Interp.stack_region cell.vm))
        ~prot:prot_rw ();
      v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:prot_rw ();
      v ~tag:"kernel-read-only" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:prot_read ();
      v ~tag:"user-deny" ~base:0x1000 ~len:Kernel.Layout.kernel_base ~prot:0 ();
    ]
  in
  Policy.Policy_module.set_policy cell.pm
    ([
       v ~tag:"victim-work-lo" ~base:lo ~len:half ~prot:prot_rw ();
       v ~tag:"victim-work-hi" ~base:hi ~len:half ~prot:prot_rw ();
     ]
    @ tail_policy);
  let m = Inject.build_race_victim ~rng ~lo ~hi () in
  compile_victim ?opt ~mode m;
  let loaded, load_error, lm =
    match Kernel.insmod cell.kernel m with
    | Ok lm -> (true, None, Some lm)
    | Error e -> (false, Some (Kernel.load_error_to_string e), None)
  in
  (* a 2-CPU system over the cell's kernel; mutations now go through the
     RCU publish path *)
  let smp =
    Smp.System.create ~seed ~params:Machine.Presets.r350 ~cpus:2 cell.kernel
      cell.pm
  in
  let det =
    if sanitize then Some (Smp.System.enable_race_detector smp) else None
  in
  let panicked = ref false in
  let last_rc = ref None in
  let call sym =
    if not !panicked then
      match Kernel.call_symbol cell.kernel sym [||] with
      | rc -> last_rc := Some rc
      | exception Kernel.Panic _ -> panicked := true
  in
  if loaded then begin
    (* phase 1 — warm: both entries legitimate, the late site's inline
       cache fills for the doomed page *)
    let a = ref 0 and b = ref 0 in
    ignore
      (Smp.System.run smp
         [|
           (fun () ->
             incr a;
             call Inject.race_early;
             call Inject.race_late;
             !a < 3);
           (fun () ->
             incr b;
             !b < 2);
         |]);
    (* phase 2 — CPU 1 publishes the shrink under load; the run's drain
       completes the grace period *)
    let a = ref 0 and b = ref 0 in
    ignore
      (Smp.System.run smp
         [|
           (fun () ->
             incr a;
             call Inject.race_early;
             !a < 2);
           (fun () ->
             incr b;
             if !b = 1 then
               ignore
                 (Policy.Policy_module.apply cell.pm
                    (Policy.Policy_module.M_remove hi));
             !b < 2);
         |])
  end;
  let snap =
    Kernel.Memory.snapshot ~len:(Kernel.phys_used cell.kernel)
      (Kernel.memory cell.kernel)
  in
  if loaded then begin
    (* phase 3 — the race's tail: the same late store keeps firing *)
    let a = ref 0 and b = ref 0 in
    ignore
      (Smp.System.run smp
         [|
           (fun () ->
             incr a;
             call Inject.race_late;
             (not !panicked) && !a < 3);
           (fun () ->
             incr b;
             !b < 2);
         |])
  end;
  let first_fault_recorded =
    match Kernel.panic_state cell.kernel with
    | Some info ->
      let is_prefix ~prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      is_prefix ~prefix:"CARAT KOP" info.Kernel.reason
    | None -> true
  in
  let quarantined = Kernel.quarantine_records cell.kernel <> [] in
  let denied = List.length (Policy.Policy_module.violations cell.pm) in
  let trace_tail =
    match Policy.Policy_module.trace cell.pm with
    | Some tr
      when (!panicked || quarantined || denied > 0) && Trace.recorded tr > 0 ->
      List.map Trace.format_event (Trace.recent tr 4)
    | _ -> []
  in
  let reenter_blocked =
    match (lm, quarantined) with
    | Some lm, true ->
      let counter_addr = List.assoc Inject.counter_global lm.Kernel.lm_globals in
      let before = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      let rc2 = Kernel.call_symbol cell.kernel Inject.race_late [||] in
      let after = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      Some (rc2 = Kernel.eio && before = after)
    | _ -> None
  in
  let recovered =
    match (lm, quarantined) with
    | Some lm, true -> (
      match Kernel.rmmod cell.kernel lm with
      | Error _ -> Some false
      | Ok () -> (
        let m' = Inject.build_repaired ~rng ~work:cell.work () in
        compile_victim ?opt ~mode m';
        match Kernel.insmod cell.kernel m' with
        | Error _ -> Some false
        | Ok _ ->
          let rc3 = Kernel.call_symbol cell.kernel Inject.entry [||] in
          Some (rc3 >= 0 && Kernel.panic_state cell.kernel = None)))
    | _ -> None
  in
  (* post-shrink writable set: the revoked upper half is out *)
  let escaped_bytes =
    escaped cell.kernel ~snap
      ~allowed:
        (allowed_phys cell.kernel
           [
             (lo, half);
             (cell.ring, ring_entries * desc_size);
             Vm.Interp.stack_region cell.vm;
           ])
  in
  (* the faulting window is the revoked upper half: a sanitizer deny
     report or a detector stale-window hit there is at-access evidence *)
  let san_reports, san_at_access, san_attribution =
    san_fields cell.kernel ~lo:hi ~hi:(hi + half)
  in
  {
    cls = Inject.Cross_cpu_race;
    mode;
    seed;
    loaded;
    load_error;
    rc = !last_rc;
    panicked = !panicked;
    first_fault_recorded;
    quarantined;
    denied;
    escaped_bytes;
    reenter_blocked;
    recovered;
    trace_tail;
    sh_detected = None;
    sh_rebuilt = None;
    sh_stale = None;
    san_reports;
    san_at_access;
    san_attribution;
    race_reports = Option.map Sanitizer.Race.report_count det;
  }

(* ------------------------------------------------------------------ *)
(* tier-corruption runners: the self-healing enforcement campaign *)

(* short audit period so a corruption-to-detection window fits in a cell
   run; production would use the watchdog default *)
let selfheal_period = 5_000

(* Shared post-enforcement bookkeeping for the corruption runners. *)
let corruption_epilogue ?opt cell ~lm ~rng ~mode ~panicked ~entry_sym =
  let first_fault_recorded =
    match Kernel.panic_state cell.kernel with
    | Some info ->
      let is_prefix ~prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      is_prefix ~prefix:"CARAT KOP" info.Kernel.reason
    | None -> true
  in
  let quarantined = Kernel.quarantine_records cell.kernel <> [] in
  let denied = List.length (Policy.Policy_module.violations cell.pm) in
  let trace_tail =
    match Policy.Policy_module.trace cell.pm with
    | Some tr
      when (panicked || quarantined || denied > 0) && Trace.recorded tr > 0 ->
      List.map Trace.format_event (Trace.recent tr 4)
    | _ -> []
  in
  let reenter_blocked =
    match (lm, quarantined) with
    | Some lm, true ->
      let counter_addr = List.assoc Inject.counter_global lm.Kernel.lm_globals in
      let before = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      let rc2 = Kernel.call_symbol cell.kernel entry_sym [||] in
      let after = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      Some (rc2 = Kernel.eio && before = after)
    | _ -> None
  in
  let recovered =
    match (lm, quarantined) with
    | Some lm, true -> (
      match Kernel.rmmod cell.kernel lm with
      | Error _ -> Some false
      | Ok () -> (
        let m' = Inject.build_repaired ~rng ~work:cell.work () in
        compile_victim ?opt ~mode m';
        match Kernel.insmod cell.kernel m' with
        | Error _ -> Some false
        | Ok _ ->
          let rc3 = Kernel.call_symbol cell.kernel Inject.entry [||] in
          Some (rc3 >= 0 && Kernel.panic_state cell.kernel = None)))
    | _ -> None
  in
  (first_fault_recorded, quarantined, denied, trace_tail, reenter_blocked,
   recovered)

(* Tick the watchdog through enough periods for a quarantined tier to
   finish its cooldown, rebuild, and re-promote; report whether the full
   fast path came back. *)
let heal_and_check ~wd ~ig ~panicked =
  match (wd, ig) with
  | Some wd, Some ig when not panicked ->
    for _ = 1 to 8 do
      ignore (Kernel.Watchdog.advance wd ~cycles:(Kernel.Watchdog.period wd + 1))
    done;
    Some (Policy.Integrity.healthy ig && Policy.Integrity.tier_level ig = 2)
  | _ -> None

(** The single-node tier-corruption classes ([Shadow_corrupt],
    [Icache_corrupt]): a wild write plants a stale-allow fact for the
    victim's payload page in a derived guard tier, bypassing the
    epoch/commit choke point, and one watchdog period of idle time
    elapses before the victim fires the store. Containment means the
    corrupt tier never serves that allow: the audit quarantines it, the
    check drops to the next-lower tier, the store is denied, and the
    tier is rebuilt from the authoritative copy afterwards. *)
(* The live shadow table's simulated tag array: enforcement metadata the
   guard path legitimately refills mid-run via kernel writes. Corruption
   cells run over the shadow tier (published before the containment
   snapshot), so those refills must not count as module escapes — the
   invariant judges the *module's* reach, not the kernel's own
   bookkeeping. *)
let shadow_metadata_window pm =
  match Policy.Engine.live_shadow (Policy.Policy_module.engine pm) with
  | Some s ->
    [ (s.Policy.Shadow_table.base_vaddr, Policy.Shadow_table.shadow_entries * 8) ]
  | None -> []

let run_corruption ?engine ?opt ?(sanitize = false) ~(cls : Inject.cls)
    ~(mode : mode) ~seed () : outcome =
  let site_cache = cls = Inject.Icache_corrupt in
  let cell =
    make_cell ?engine ~kind:Policy.Engine.Shadow ~site_cache ~sanitize ~mode ()
  in
  (* captured now: the instance live at snapshot time owns the tag array
     whose refills land inside the diff window (heal republishes get
     fresh, post-snapshot arrays) *)
  let metadata_windows = shadow_metadata_window cell.pm in
  let rng = Machine.Rng.create seed in
  let target = payload_addr cell ~cls ~rng in
  let m = Inject.build_victim ~payload:target ~rng ~work:cell.work () in
  compile_victim ?opt ~mode m;
  let snap =
    Kernel.Memory.snapshot ~len:(Kernel.phys_used cell.kernel)
      (Kernel.memory cell.kernel)
  in
  let loaded, load_error, lm =
    match Kernel.insmod cell.kernel m with
    | Ok lm -> (true, None, Some lm)
    | Error e -> (false, Some (Kernel.load_error_to_string e), None)
  in
  let eng = Policy.Policy_module.engine cell.pm in
  (* arm self-healing before the corruption lands: the authoritative
     snapshot must predate the attack. Baseline cells stay unprotected —
     no guards, no watchdog. *)
  let wd =
    if mode <> Baseline then begin
      Policy.Engine.set_verify eng true;
      Some (Policy.Policy_module.enable_watchdog ~period:selfheal_period cell.pm)
    end
    else None
  in
  (* the wild write proper, rigged so the victim's very next store at
     [target] would be answered allow straight from the corrupt slot *)
  let page = target lsr Policy.Shadow_table.page_bits in
  (match cls with
  | Inject.Shadow_corrupt ->
    ignore
      (Policy.Engine.corrupt_shadow eng ~page ~prot:Policy.Region.prot_rw
         ~fix_checksum:(Machine.Rng.flip rng 0.5))
  | Inject.Icache_corrupt -> (
    match
      Inject.payload_guard_site m ~payload_addr:target
        ~guard_symbol:Passes.Guard_injection.guard_symbol_default
    with
    | Some site ->
      ignore
        (Policy.Engine.corrupt_site_cache eng
           (Policy.Engine.default_view eng)
           ~site ~page ~prot:Policy.Region.prot_rw
           ~smash_canary:(Machine.Rng.flip rng 0.5))
    | None -> () (* unguarded baseline module: no sites to spray *))
  | _ -> ());
  (* one watchdog period of idle time: the periodic audit is the
     detector, firing between the corruption and the victim's store *)
  (match wd with
  | Some wd ->
    ignore (Kernel.Watchdog.advance wd ~cycles:(Kernel.Watchdog.period wd + 1))
  | None -> ());
  let ig = Policy.Policy_module.integrity cell.pm in
  let sh_detected =
    match ig with
    | Some ig -> Some (Policy.Integrity.detections ig > 0)
    | None -> None
  in
  let rc, panicked =
    if loaded then
      match Kernel.call_symbol cell.kernel Inject.entry [||] with
      | rc -> (Some rc, false)
      | exception Kernel.Panic _ -> (None, true)
    else (None, false)
  in
  let ( first_fault_recorded,
        quarantined,
        denied,
        trace_tail,
        reenter_blocked,
        recovered ) =
    corruption_epilogue ?opt cell ~lm ~rng ~mode ~panicked ~entry_sym:Inject.entry
  in
  let sh_rebuilt = heal_and_check ~wd ~ig ~panicked in
  let sh_stale =
    if mode <> Baseline then Some (Policy.Engine.stale_allows eng) else None
  in
  let escaped_bytes =
    escaped cell.kernel ~snap
      ~allowed:(allowed_phys cell.kernel (cell.writable @ metadata_windows))
  in
  let san_reports, san_at_access, san_attribution =
    san_fields cell.kernel ~lo:target ~hi:(target + 8)
  in
  {
    cls;
    mode;
    seed;
    loaded;
    load_error;
    rc;
    panicked;
    first_fault_recorded;
    quarantined;
    denied;
    escaped_bytes;
    reenter_blocked;
    recovered;
    trace_tail;
    sh_detected;
    sh_rebuilt;
    sh_stale;
    san_reports;
    san_at_access;
    san_attribution;
    race_reports = None;
  }

(** The SMP tier-corruption class ([Rcu_instance_corrupt]): CPU 1
    republishes the policy through the RCU route, and the corruption
    races the publication — the freshly published instance's
    kernel-read-only region has its permission bits flipped writable in
    the live table before the grace period completes. The watchdog's
    digest audit must catch the divergence and republish a clean
    generation (again through RCU, with shootdown), so CPU 0's guarded
    victim never lands its store at the secret. *)
let run_rcu_corrupt ?engine ?opt ?(sanitize = false) ~(mode : mode) ~seed () :
    outcome =
  let cell = make_cell ?engine ~sanitize ~mode () in
  let rng = Machine.Rng.create seed in
  let target = cell.secret + (8 * Machine.Rng.int rng (secret_size / 8)) in
  let m = Inject.build_victim ~payload:target ~rng ~work:cell.work () in
  compile_victim ?opt ~mode m;
  let snap =
    Kernel.Memory.snapshot ~len:(Kernel.phys_used cell.kernel)
      (Kernel.memory cell.kernel)
  in
  let loaded, load_error, lm =
    match Kernel.insmod cell.kernel m with
    | Ok lm -> (true, None, Some lm)
    | Error e -> (false, Some (Kernel.load_error_to_string e), None)
  in
  let smp =
    Smp.System.create ~seed ~params:Machine.Presets.r350 ~cpus:2 cell.kernel
      cell.pm
  in
  let det =
    if sanitize then Some (Smp.System.enable_race_detector smp) else None
  in
  let eng = Policy.Policy_module.engine cell.pm in
  let wd =
    if mode <> Baseline then begin
      Policy.Engine.set_verify eng true;
      Some (Policy.Policy_module.enable_watchdog ~period:selfheal_period cell.pm)
    end
    else None
  in
  let panicked = ref false in
  let last_rc = ref None in
  let call sym =
    if not !panicked then
      match Kernel.call_symbol cell.kernel sym [||] with
      | rc -> last_rc := Some rc
      | exception Kernel.Panic _ -> panicked := true
  in
  if loaded then begin
    (* phase 1 — CPU 1's routine policy push through the RCU route, with
       the corruption landing on the freshly published instance while
       CPU 0 is still between bursts *)
    let a = ref 0 and b = ref 0 in
    ignore
      (Smp.System.run smp
         [|
           (fun () ->
             incr a;
             !a < 3);
           (fun () ->
             incr b;
             if !b = 1 then begin
               ignore
                 (Policy.Policy_module.replace_policy cell.pm
                    ~default_allow:(Policy.Engine.default_allow eng)
                    (Policy.Engine.regions eng));
               ignore
                 (Policy.Engine.corrupt_instance eng
                    ~base:Kernel.Layout.kernel_base ~prot:Policy.Region.prot_rw);
               (* the corruption is an unsynchronized (detached) interval
                  write over the freshly published table: any guard scan
                  of it before the heal republishes is a flagged race *)
               match (det, Policy.Engine.table_region eng) with
               | Some d, Some (base, len) ->
                 Sanitizer.Race.async_write d ~lo:base ~hi:(base + len)
                   ~site:"instance-corruption"
               | _ -> ()
             end;
             !b < 2);
         |])
  end;
  (* phase 2 — the watchdog period expires before the victim's burst *)
  (match wd with
  | Some wd ->
    ignore (Kernel.Watchdog.advance wd ~cycles:(Kernel.Watchdog.period wd + 1))
  | None -> ());
  let ig = Policy.Policy_module.integrity cell.pm in
  let sh_detected =
    match ig with
    | Some ig -> Some (Policy.Integrity.detections ig > 0)
    | None -> None
  in
  if loaded then begin
    (* phase 3 — CPU 0 runs the victim; its payload store targets the
       secret the corrupt generation would have allowed *)
    let a = ref 0 and b = ref 0 in
    ignore
      (Smp.System.run smp
         [|
           (fun () ->
             incr a;
             call Inject.entry;
             (not !panicked) && !a < 2);
           (fun () ->
             incr b;
             !b < 2);
         |])
  end;
  let ( first_fault_recorded,
        quarantined,
        denied,
        trace_tail,
        reenter_blocked,
        recovered ) =
    corruption_epilogue ?opt cell ~lm ~rng ~mode ~panicked:!panicked
      ~entry_sym:Inject.entry
  in
  let sh_rebuilt = heal_and_check ~wd ~ig ~panicked:!panicked in
  let sh_stale =
    if mode <> Baseline then Some (Policy.Engine.stale_allows eng) else None
  in
  let escaped_bytes =
    escaped cell.kernel ~snap ~allowed:(allowed_phys cell.kernel cell.writable)
  in
  let san_reports, san_at_access, san_attribution =
    san_fields cell.kernel ~lo:target ~hi:(target + 8)
  in
  {
    cls = Inject.Rcu_instance_corrupt;
    mode;
    seed;
    loaded;
    load_error;
    rc = !last_rc;
    panicked = !panicked;
    first_fault_recorded;
    quarantined;
    denied;
    escaped_bytes;
    reenter_blocked;
    recovered;
    trace_tail;
    sh_detected;
    sh_rebuilt;
    sh_stale;
    san_reports;
    san_at_access;
    san_attribution;
    race_reports = Option.map Sanitizer.Race.report_count det;
  }

(** Run one fault under one configuration and check every invariant.
    [engine] selects the KIR runner (default interpreter); the outcome
    must not depend on it — the compiled engine is semantics- and
    cycle-identical. [opt] selects the victim pipeline's guard-
    optimization tier (default [O_none]); the containment matrix must
    not depend on it either — optimized guards check supersets of the
    original bytes, so every malicious access is still caught. *)
let run_one ?engine ?opt ?(sanitize = false) ~(cls : Inject.cls) ~(mode : mode)
    ~seed () : outcome =
  if cls = Inject.Cross_cpu_race then
    run_race ?engine ?opt ~sanitize ~mode ~seed ()
  else if cls = Inject.Rcu_instance_corrupt then
    run_rcu_corrupt ?engine ?opt ~sanitize ~mode ~seed ()
  else if cls = Inject.Shadow_corrupt || cls = Inject.Icache_corrupt then
    run_corruption ?engine ?opt ~sanitize ~cls ~mode ~seed ()
  else
  let cell = make_cell ?engine ~sanitize ~mode () in
  let rng = Machine.Rng.create seed in
  let target = payload_addr cell ~cls ~rng in
  let payload = if cls = Inject.Ir_tamper then None else Some target in
  let m = Inject.build_victim ?payload ~rng ~work:cell.work () in
  compile_victim ?opt ~mode m;
  (* the fault proper: corrupt the pipeline after signing *)
  (match cls with
  | Inject.Ir_tamper -> Inject.mutate_ir_tamper m ~payload_addr:target
  | Inject.Guard_deletion ->
    Inject.mutate_guard_deletion m ~payload_addr:target
      ~guard_symbol:Passes.Guard_injection.guard_symbol_default
  | Inject.Sig_truncation -> Inject.mutate_sig_truncation m
  | Inject.Wild_store | Inject.Oob_ring_index | Inject.Policy_corruption
  | Inject.Cross_cpu_race | Inject.Shadow_corrupt | Inject.Icache_corrupt
  | Inject.Rcu_instance_corrupt | Inject.Rx_ring_corrupt -> ());
  let snap =
    Kernel.Memory.snapshot ~len:(Kernel.phys_used cell.kernel)
      (Kernel.memory cell.kernel)
  in
  let loaded, load_error, lm =
    match Kernel.insmod cell.kernel m with
    | Ok lm -> (true, None, Some lm)
    | Error e -> (false, Some (Kernel.load_error_to_string e), None)
  in
  let rc, panicked =
    if loaded then
      match Kernel.call_symbol cell.kernel Inject.entry [||] with
      | rc -> (Some rc, false)
      | exception Kernel.Panic _ -> (None, true)
    else (None, false)
  in
  let first_fault_recorded =
    match Kernel.panic_state cell.kernel with
    | Some info ->
      (* the recorded reason must be the guard's diagnosis of this fault,
         not some secondary crash *)
      let is_prefix ~prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      is_prefix ~prefix:"CARAT KOP" info.Kernel.reason
    | None -> true
  in
  let quarantined = Kernel.quarantine_records cell.kernel <> [] in
  let denied = List.length (Policy.Policy_module.violations cell.pm) in
  (* snapshot the forensic tail now, before the re-entry and recovery
     probes below flood the ring with their own (benign) guard events *)
  let trace_tail =
    match Policy.Policy_module.trace cell.pm with
    | Some tr when (panicked || quarantined || denied > 0) && Trace.recorded tr > 0
      ->
      List.map Trace.format_event (Trace.recent tr 4)
    | _ -> []
  in
  (* quarantine-specific invariants: no re-entry, then recovery *)
  let reenter_blocked =
    match (lm, quarantined) with
    | Some lm, true ->
      let counter_addr = List.assoc Inject.counter_global lm.Kernel.lm_globals in
      let before = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      let rc2 = Kernel.call_symbol cell.kernel Inject.entry [||] in
      let after = Kernel.read cell.kernel ~addr:counter_addr ~size:8 in
      Some (rc2 = Kernel.eio && before = after)
    | _ -> None
  in
  let recovered =
    match (lm, quarantined) with
    | Some lm, true -> (
      match Kernel.rmmod cell.kernel lm with
      | Error _ -> Some false
      | Ok () -> (
        let m' = Inject.build_repaired ~rng ~work:cell.work () in
        compile_victim ?opt ~mode m';
        match Kernel.insmod cell.kernel m' with
        | Error _ -> Some false
        | Ok _ ->
          let rc3 = Kernel.call_symbol cell.kernel Inject.entry [||] in
          Some (rc3 >= 0 && Kernel.panic_state cell.kernel = None)))
    | _ -> None
  in
  let escaped_bytes =
    escaped cell.kernel ~snap
      ~allowed:(allowed_phys cell.kernel cell.writable)
  in
  let san_reports, san_at_access, san_attribution =
    san_fields cell.kernel ~lo:target ~hi:(target + 8)
  in
  {
    cls;
    mode;
    seed;
    loaded;
    load_error;
    rc;
    panicked;
    first_fault_recorded;
    quarantined;
    denied;
    escaped_bytes;
    reenter_blocked;
    recovered;
    trace_tail;
    sh_detected = None;
    sh_rebuilt = None;
    sh_stale = None;
    san_reports;
    san_at_access;
    san_attribution;
    race_reports = None;
  }

(* ------------------------------------------------------------------ *)

(** Property harness for the QCheck satellite: a randomly generated
    guarded module run under a randomly writable policy. Returns the
    escaped byte count — the containment property says it is always 0
    for a carat-protected module. *)
let run_random ?(engine = Vm.Engine.Interp) ~seed () =
  let kernel = Kernel.create ~phys_size ~require_signature:true Machine.Presets.r350 in
  let vm = Vm.Engine.install ~kind:engine kernel in
  let pm =
    Policy.Policy_module.install ~kind:Policy.Engine.Linear
      ~on_deny:Policy.Policy_module.Quarantine kernel
  in
  let rng = Machine.Rng.create seed in
  let windows = Array.init 4 (fun _ -> Kernel.kmalloc kernel ~size:1024) in
  (* at least one window writable, the rest random *)
  let writable =
    Array.mapi (fun i _ -> i = 0 || Machine.Rng.flip rng 0.5) windows
  in
  let stack = Vm.Interp.stack_region vm in
  let open Policy.Region in
  Policy.Policy_module.set_policy pm
    (Array.to_list
       (Array.mapi
          (fun i w ->
            v
              ~tag:(Printf.sprintf "win-%d" i)
              ~base:w ~len:1024
              ~prot:(if writable.(i) then prot_rw else prot_read)
              ())
          windows)
    @ [
        v ~tag:"vm-stack" ~base:(fst stack) ~len:(snd stack) ~prot:prot_rw ();
        v ~tag:"module-area" ~base:Kernel.Layout.module_base
          ~len:Kernel.Layout.module_area_size ~prot:prot_rw ();
        v ~tag:"kernel-read-only" ~base:Kernel.Layout.kernel_base
          ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:prot_read ();
      ]);
  (* random module: a run of stores/loads over random windows, some via
     an alloca'd local *)
  let b = Kir.Builder.create "randmod" in
  ignore (Kir.Builder.start_func b "rand_run" ~params:[] ~ret:(Some Kir.Types.I64));
  let open Kir.Types in
  let local = Kir.Builder.alloca b 64 in
  Kir.Builder.store b I64 (Imm 7) local;
  let n_ops = 4 + Machine.Rng.int rng 12 in
  for _ = 1 to n_ops do
    let w = windows.(Machine.Rng.int rng 4) in
    let addr = w + (8 * Machine.Rng.int rng 128) in
    if Machine.Rng.flip rng 0.3 then ignore (Kir.Builder.load b I64 (Imm addr))
    else Kir.Builder.store b I64 (Imm (Machine.Rng.int rng 0xFFFF)) (Imm addr)
  done;
  let r = Kir.Builder.load b I64 local in
  Kir.Builder.ret b (Some r);
  let m = Kir.Builder.modul b in
  ignore (Passes.Pass.run_pipeline_checked (Passes.Pipeline.kop_default ()) m);
  let snap =
    Kernel.Memory.snapshot ~len:(Kernel.phys_used kernel) (Kernel.memory kernel)
  in
  (match Kernel.insmod kernel m with
  | Ok _ -> (
    match Kernel.call_symbol kernel "rand_run" [||] with
    | (_ : int) -> ()
    | exception Kernel.Panic _ -> ())
  | Error e -> failwith (Kernel.load_error_to_string e));
  let allowed_windows =
    List.filteri (fun i _ -> writable.(i)) (Array.to_list windows)
  in
  escaped kernel ~snap
    ~allowed:
      (allowed_phys kernel
         (List.map (fun w -> (w, 1024)) allowed_windows @ [ stack ]))
