(** The deterministic fault-injection campaign: [faults] seeded faults,
    spread round-robin over the fault classes, each run under the four
    configurations (baseline, carat × panic/quarantine/audit). Every run
    is a fresh {!Harness} cell, so faults are independent; everything is
    derived from [config.seed], so the rendered report is byte-for-byte
    reproducible.

    Per-fault seeds come from *per-class* PRNG streams split off the
    master: the k-th fault of a given class draws the k-th value of that
    class's stream, regardless of how many other classes exist or where
    they sit in the round-robin. Appending a new fault class therefore
    leaves every existing class's seed sequence untouched — campaign
    results for the old classes are stable across class additions. *)

type config = { faults : int; seed : int }

let default_config = { faults = 504; seed = 42 }

type cell_stats = {
  mutable injected : int;
  mutable contained : int;
  mutable alive : int;  (** kernel not panicked after the run *)
  mutable rejected_at_load : int;
  mutable quarantines : int;
  mutable first_fault_ok : int;
  mutable denials : int;
  mutable reenter_ok : int;
  mutable reenter_total : int;
  mutable recovered : int;
  mutable recover_total : int;
  mutable sh_detected : int;  (** watchdog detected the tier corruption *)
  mutable sh_detect_total : int;
  mutable sh_rebuilt : int;  (** corrupt tier healed back to full fast path *)
  mutable sh_rebuild_total : int;
  mutable sh_stale : int;  (** verified stale allows (must stay 0) *)
  mutable san_hits : int;
      (** sanitize runs where a report named the faulting access *)
  mutable san_total : int;
  mutable race_hits : int;  (** sanitize SMP runs the detector flagged *)
  mutable race_total : int;
}

let empty_stats () =
  {
    injected = 0;
    contained = 0;
    alive = 0;
    rejected_at_load = 0;
    quarantines = 0;
    first_fault_ok = 0;
    denials = 0;
    reenter_ok = 0;
    reenter_total = 0;
    recovered = 0;
    recover_total = 0;
    sh_detected = 0;
    sh_detect_total = 0;
    sh_rebuilt = 0;
    sh_rebuild_total = 0;
    sh_stale = 0;
    san_hits = 0;
    san_total = 0;
    race_hits = 0;
    race_total = 0;
  }

type report = {
  config : config;
  sanitized : bool;  (** cells ran with the sanitizer + race detector on *)
  classes : Inject.cls list;
  modes : Harness.mode list;
  cells : cell_stats array array;  (** indexed class × mode *)
  mutable diagnostics : (Inject.cls * Harness.mode * int * string list) list;
      (** sampled guard-trace tails from contained faults (class, mode,
          seed, events) — capped at {!max_diagnostics}, oldest first *)
}

let max_diagnostics = 5

let cell r ~cls ~mode =
  let ci =
    match List.mapi (fun i c -> (c, i)) r.classes |> List.assoc_opt cls with
    | Some i -> i
    | None -> invalid_arg "Campaign.cell: unknown class"
  in
  let mi =
    match List.mapi (fun i m -> (m, i)) r.modes |> List.assoc_opt mode with
    | Some i -> i
    | None -> invalid_arg "Campaign.cell: unknown mode"
  in
  r.cells.(ci).(mi)

let record st (o : Harness.outcome) =
  st.injected <- st.injected + 1;
  if Harness.contained o then st.contained <- st.contained + 1;
  if not o.Harness.panicked then st.alive <- st.alive + 1;
  if not o.Harness.loaded then st.rejected_at_load <- st.rejected_at_load + 1;
  if o.Harness.quarantined then st.quarantines <- st.quarantines + 1;
  if o.Harness.first_fault_recorded then
    st.first_fault_ok <- st.first_fault_ok + 1;
  st.denials <- st.denials + o.Harness.denied;
  (match o.Harness.reenter_blocked with
  | Some ok ->
    st.reenter_total <- st.reenter_total + 1;
    if ok then st.reenter_ok <- st.reenter_ok + 1
  | None -> ());
  (match o.Harness.recovered with
  | Some ok ->
    st.recover_total <- st.recover_total + 1;
    if ok then st.recovered <- st.recovered + 1
  | None -> ());
  (match o.Harness.sh_detected with
  | Some ok ->
    st.sh_detect_total <- st.sh_detect_total + 1;
    if ok then st.sh_detected <- st.sh_detected + 1
  | None -> ());
  (match o.Harness.sh_rebuilt with
  | Some ok ->
    st.sh_rebuild_total <- st.sh_rebuild_total + 1;
    if ok then st.sh_rebuilt <- st.sh_rebuilt + 1
  | None -> ());
  (match o.Harness.sh_stale with
  | Some n -> st.sh_stale <- st.sh_stale + n
  | None -> ());
  (match o.Harness.san_at_access with
  | Some ok ->
    st.san_total <- st.san_total + 1;
    if ok then st.san_hits <- st.san_hits + 1
  | None -> ());
  match o.Harness.race_reports with
  | Some n ->
    st.race_total <- st.race_total + 1;
    if n > 0 then st.race_hits <- st.race_hits + 1
  | None -> ()

(** Run the campaign. [on_outcome] (optional) observes every outcome,
    e.g. for progress reporting; [engine] selects the KIR runner for
    every cell (the containment matrix must not depend on it); [opt]
    the victim pipeline's guard-optimization tier (the matrix must not
    depend on that either — see {!Harness.run_one}). *)
let run ?on_outcome ?engine ?opt ?(sanitize = false) (config : config) : report =
  let classes = Inject.all_classes in
  let modes = Harness.all_modes in
  let r =
    {
      config;
      sanitized = sanitize;
      classes;
      modes;
      cells =
        Array.init (List.length classes) (fun _ ->
            Array.init (List.length modes) (fun _ -> empty_stats ()));
      diagnostics = [];
    }
  in
  let n_diags = ref 0 in
  let master = Machine.Rng.create config.seed in
  (* one independent stream per class, split off the master in class
     order: class k's seeds depend only on (config.seed, k), never on how
     many classes follow it in the list *)
  let streams =
    List.map
      (fun c ->
        (c, Machine.Rng.split master ~tag:(Hashtbl.hash (Inject.cls_to_string c))))
      classes
  in
  for i = 0 to config.faults - 1 do
    let cls = List.nth classes (i mod List.length classes) in
    let fault_seed = Machine.Rng.int (List.assoc cls streams) 0x3FFF_FFFF in
    List.iter
      (fun mode ->
        let o = Harness.run_one ?engine ?opt ~sanitize ~cls ~mode ~seed:fault_seed () in
        record (cell r ~cls ~mode) o;
        if o.Harness.trace_tail <> [] && !n_diags < max_diagnostics then begin
          incr n_diags;
          r.diagnostics <-
            r.diagnostics @ [ (cls, mode, fault_seed, o.Harness.trace_tail) ]
        end;
        match on_outcome with Some f -> f o | None -> ())
      modes
  done;
  r

(* ------------------------------------------------------------------ *)
(* aggregation and rendering *)

let totals r ~mode =
  let acc = empty_stats () in
  List.iter
    (fun cls ->
      let st = cell r ~cls ~mode in
      acc.injected <- acc.injected + st.injected;
      acc.contained <- acc.contained + st.contained;
      acc.alive <- acc.alive + st.alive;
      acc.rejected_at_load <- acc.rejected_at_load + st.rejected_at_load;
      acc.quarantines <- acc.quarantines + st.quarantines;
      acc.first_fault_ok <- acc.first_fault_ok + st.first_fault_ok;
      acc.denials <- acc.denials + st.denials;
      acc.reenter_ok <- acc.reenter_ok + st.reenter_ok;
      acc.reenter_total <- acc.reenter_total + st.reenter_total;
      acc.recovered <- acc.recovered + st.recovered;
      acc.recover_total <- acc.recover_total + st.recover_total;
      acc.sh_detected <- acc.sh_detected + st.sh_detected;
      acc.sh_detect_total <- acc.sh_detect_total + st.sh_detect_total;
      acc.sh_rebuilt <- acc.sh_rebuilt + st.sh_rebuilt;
      acc.sh_rebuild_total <- acc.sh_rebuild_total + st.sh_rebuild_total;
      acc.sh_stale <- acc.sh_stale + st.sh_stale;
      acc.san_hits <- acc.san_hits + st.san_hits;
      acc.san_total <- acc.san_total + st.san_total;
      acc.race_hits <- acc.race_hits + st.race_hits;
      acc.race_total <- acc.race_total + st.race_total)
    r.classes;
  acc

let rate num den = if den = 0 then 100.0 else 100.0 *. float num /. float den

(** The acceptance invariants of the containment matrix. Returns the
    failures (empty = campaign passes). *)
let check (r : report) : string list =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  let panic_t = totals r ~mode:(Harness.Carat Policy.Policy_module.Panic) in
  let quar_t = totals r ~mode:(Harness.Carat Policy.Policy_module.Quarantine) in
  let base_t = totals r ~mode:Harness.Baseline in
  if panic_t.contained <> panic_t.injected then
    fail "carat/panic containment %d/%d (expected 100%%)" panic_t.contained
      panic_t.injected;
  if quar_t.contained <> quar_t.injected then
    fail "carat/quarantine containment %d/%d (expected 100%%)" quar_t.contained
      quar_t.injected;
  if quar_t.alive <> quar_t.injected then
    fail "kernel died under quarantine in %d/%d runs"
      (quar_t.injected - quar_t.alive) quar_t.injected;
  if panic_t.first_fault_ok <> panic_t.injected then
    fail "panic without first-fault record in %d runs"
      (panic_t.injected - panic_t.first_fault_ok);
  if quar_t.reenter_ok <> quar_t.reenter_total then
    fail "quarantined module re-entered in %d/%d cases"
      (quar_t.reenter_total - quar_t.reenter_ok) quar_t.reenter_total;
  if quar_t.recovered <> quar_t.recover_total then
    fail "recovery failed in %d/%d cases"
      (quar_t.recover_total - quar_t.recovered) quar_t.recover_total;
  (* self-healing invariants: every tier corruption under a carat mode
     is detected by the watchdog, heals back to the full fast path where
     the kernel stays alive, and never serves a verified stale allow *)
  List.iter
    (fun (name, t) ->
      if t.sh_detected <> t.sh_detect_total then
        fail "%s: tier corruption undetected in %d/%d runs" name
          (t.sh_detect_total - t.sh_detected)
          t.sh_detect_total;
      if t.sh_rebuilt <> t.sh_rebuild_total then
        fail "%s: corrupt tier not re-promoted in %d/%d runs" name
          (t.sh_rebuild_total - t.sh_rebuilt)
          t.sh_rebuild_total;
      if t.sh_stale <> 0 then
        fail "%s: %d stale allows served from corrupt tiers" name t.sh_stale)
    [
      ("carat/panic", panic_t);
      ("carat/quarantine", quar_t);
      ("carat/audit", totals r ~mode:(Harness.Carat Policy.Policy_module.Audit));
    ];
  if base_t.injected > 0 && base_t.contained >= quar_t.contained then
    fail "baseline containment (%d) not strictly below carat (%d)"
      base_t.contained quar_t.contained;
  (* sanitizer invariants: with the sanitizer on, every memory-corruption
     fault class is caught *at the faulting access* — a report naming the
     target address with allocation attribution — under carat/panic, and
     the happens-before detector flags every seeded cross-CPU race *)
  if r.sanitized then begin
    let panic = Harness.Carat Policy.Policy_module.Panic in
    List.iter
      (fun cls ->
        let st = cell r ~cls ~mode:panic in
        if st.injected > 0 && st.san_hits <> st.injected then
          fail "%s: only %d/%d runs attributed at the faulting access"
            (Inject.cls_to_string cls) st.san_hits st.injected)
      [
        Inject.Wild_store;
        Inject.Oob_ring_index;
        Inject.Policy_corruption;
        Inject.Shadow_corrupt;
        Inject.Icache_corrupt;
        Inject.Rcu_instance_corrupt;
        Inject.Rx_ring_corrupt;
      ];
    let race = cell r ~cls:Inject.Cross_cpu_race ~mode:panic in
    if race.injected > 0 && race.race_hits <> race.race_total then
      fail "cross_cpu_race: detector flagged only %d/%d runs" race.race_hits
        race.race_total
  end;
  List.rev !fails

let passes r = check r = []

let render (r : report) : string =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "Fault-injection campaign: %d faults x %d configurations (seed %d)\n\n"
    r.config.faults (List.length r.modes) r.config.seed;
  pf "containment (contained/injected; bytes outside writable policy regions)\n";
  pf "  %-18s" "class";
  List.iter (fun m -> pf " %16s" (Harness.mode_to_string m)) r.modes;
  pf "\n";
  List.iter
    (fun cls ->
      pf "  %-18s" (Inject.cls_to_string cls);
      List.iter
        (fun mode ->
          let st = cell r ~cls ~mode in
          pf " %16s" (Printf.sprintf "%d/%d" st.contained st.injected))
        r.modes;
      pf "\n")
    r.classes;
  pf "\n";
  pf "  %-18s" "total";
  List.iter
    (fun mode ->
      let t = totals r ~mode in
      pf " %16s"
        (Printf.sprintf "%d/%d (%.0f%%)" t.contained t.injected
           (rate t.contained t.injected)))
    r.modes;
  pf "\n\n";
  let quar_t = totals r ~mode:(Harness.Carat Policy.Policy_module.Quarantine) in
  let panic_t = totals r ~mode:(Harness.Carat Policy.Policy_module.Panic) in
  let audit_t = totals r ~mode:(Harness.Carat Policy.Policy_module.Audit) in
  let base_t = totals r ~mode:Harness.Baseline in
  pf "invariants\n";
  pf "  kernel alive after quarantine containment : %d/%d\n" quar_t.alive
    quar_t.injected;
  pf "  quarantined module re-entry rejected      : %d/%d\n" quar_t.reenter_ok
    quar_t.reenter_total;
  pf "  recovery (rmmod + repaired insmod + run)  : %d/%d\n" quar_t.recovered
    quar_t.recover_total;
  pf "  panic runs with first fault recorded      : %d/%d\n"
    panic_t.first_fault_ok panic_t.injected;
  pf "  tampered/unsigned loads rejected (carat)  : %d\n"
    (panic_t.rejected_at_load + quar_t.rejected_at_load
   + audit_t.rejected_at_load);
  pf "  guard denials recorded (audit)            : %d\n" audit_t.denials;
  let sh_t = empty_stats () in
  List.iter
    (fun t ->
      sh_t.sh_detected <- sh_t.sh_detected + t.sh_detected;
      sh_t.sh_detect_total <- sh_t.sh_detect_total + t.sh_detect_total;
      sh_t.sh_rebuilt <- sh_t.sh_rebuilt + t.sh_rebuilt;
      sh_t.sh_rebuild_total <- sh_t.sh_rebuild_total + t.sh_rebuild_total;
      sh_t.sh_stale <- sh_t.sh_stale + t.sh_stale)
    [ panic_t; quar_t; audit_t ];
  if sh_t.sh_detect_total > 0 then begin
    pf "  tier corruption detected by watchdog      : %d/%d\n" sh_t.sh_detected
      sh_t.sh_detect_total;
    pf "  corrupt tier rebuilt + re-promoted        : %d/%d\n" sh_t.sh_rebuilt
      sh_t.sh_rebuild_total;
    pf "  stale allows served from corrupt tiers    : %d\n" sh_t.sh_stale
  end;
  if r.sanitized then begin
    let san_t = empty_stats () in
    List.iter
      (fun t ->
        san_t.san_hits <- san_t.san_hits + t.san_hits;
        san_t.san_total <- san_t.san_total + t.san_total;
        san_t.race_hits <- san_t.race_hits + t.race_hits;
        san_t.race_total <- san_t.race_total + t.race_total)
      [ panic_t; quar_t; audit_t ];
    pf "  sanitizer reports at the faulting access  : %d/%d\n" san_t.san_hits
      san_t.san_total;
    pf "  cross-CPU races flagged by the detector   : %d/%d\n" san_t.race_hits
      san_t.race_total
  end;
  pf "  baseline containment                      : %d/%d (%.0f%%)\n"
    base_t.contained base_t.injected
    (rate base_t.contained base_t.injected);
  pf "\n";
  if r.diagnostics <> [] then begin
    pf "sample guard-trace tails (what the module touched before containment)\n";
    List.iter
      (fun (cls, mode, seed, tail) ->
        pf "  %s under %s (seed %d):\n" (Inject.cls_to_string cls)
          (Harness.mode_to_string mode) seed;
        List.iter (fun line -> pf "    %s\n" line) tail)
      r.diagnostics;
    pf "\n"
  end;
  (match check r with
  | [] -> pf "verdict: PASS (all containment invariants hold)\n"
  | fails ->
    pf "verdict: FAIL\n";
    List.iter (fun f -> pf "  - %s\n" f) fails);
  Buffer.contents buf
