(** NAPI-style receive processing over the driver's multi-queue RX entry
    points: the kernel half of the full-duplex path.

    Per queue, mirroring Linux's net_rx_action:
    - the RX interrupt fires ({!Nic.Device.rxq_irq_pending}): charge
      interrupt entry/exit, run the handler, which *masks* the queue
      ([e1000e_rx_disable]) and schedules the poll loop — no frame is
      touched in hard-irq context;
    - softirq passes ({!poll}) call [e1000e_napi_poll] with a fixed
      budget: every frame consumed there pays the *guarded* loads of the
      driver's descriptor walk and EtherType sniff, so guard cost lands
      in softirq context, amortized across the coalesced batch;
    - a pass that exhausts its budget stays scheduled (more work is
      waiting); a pass that comes up short re-enables the queue's
      interrupt ([e1000e_rx_enable]) and goes idle;
    - interrupt coalescing ([e1000e_rx_coalesce]) delays the cause latch
      until [coalesce] frames have accumulated; a software delay-timer
      kick ({!Nic.Device.rx_fire_timer}) rescues quiet tails so the last
      sub-threshold batch is never stranded.

    Per-frame latency is measured device-side: the device stamps each
    frame's DMA-delivery cycle, and the poll loop pops one stamp per
    consumed frame ({!Nic.Device.rx_take_stamps}), yielding
    arrival-to-delivery latencies that include coalescing delay, softirq
    batching, and guard overhead. *)

type qstate = {
  q : int;
  mutable scheduled : bool;  (** poll loop owns the queue (irq masked) *)
  mutable irqs : int;
  mutable polls : int;  (** non-empty poll passes *)
  mutable frames : int;
  mutable budget_exhausted : int;
  mutable rearms : int;
  mutable timer_kicks : int;
  mutable idle_since_kick : int;
      (** idle polls since the last delivery; drives the timer model *)
  mutable lats : int list;  (** per-frame latency (cycles), newest first *)
}

type t = {
  kernel : Kernel.t;
  device : Nic.Device.t;
  budget : int;
  coalesce : int;
  timer_passes : int;
      (** idle passes after which the coalescing delay timer fires *)
  trace : Trace.t option;
  qs : qstate array;
  mutable irq_cycles : int;  (** interrupt entry/exit cost per RX irq *)
}

let create ?(budget = 32) ?(coalesce = 1) ?(timer_passes = 4) ?trace kernel
    device ~queues =
  assert (queues >= 1 && queues <= Nic.Regs.max_rx_queues);
  {
    kernel;
    device;
    budget = max 1 budget;
    coalesce = max 1 coalesce;
    timer_passes = max 1 timer_passes;
    trace;
    qs =
      Array.init queues (fun q ->
          {
            q;
            scheduled = false;
            irqs = 0;
            polls = 0;
            frames = 0;
            budget_exhausted = 0;
            rearms = 0;
            timer_kicks = 0;
            idle_since_kick = 0;
            lats = [];
          });
    irq_cycles = 120;
  }

let queues t = Array.length t.qs

(** Bring up every RX queue: per-queue ring + buffers, the coalescing
    threshold, and the RSS fan-out across all queues. The driver's probe
    ([Netstack.bring_up]) must have run first. *)
let bring_up t ~ring_entries ~bufsz =
  assert (ring_entries land (ring_entries - 1) = 0);
  Array.iter
    (fun qs ->
      let rc =
        Kernel.call_symbol t.kernel "e1000e_setup_rx_queue"
          [| qs.q; ring_entries; bufsz |]
      in
      if rc <> 0 then failwith "Rx.bring_up: setup_rx_queue failed";
      ignore
        (Kernel.call_symbol t.kernel "e1000e_rx_coalesce"
           [| qs.q; t.coalesce |]))
    t.qs;
  ignore
    (Kernel.call_symbol t.kernel "e1000e_setup_rss" [| Array.length t.qs |])

let on_trace ?size ?flags t kind ~info =
  match t.trace with
  | Some tr -> Trace.on_lifecycle ?size ?flags tr kind ~info
  | None -> ()

(* Claim latency stamps for [n] just-consumed frames of queue [q]. *)
let claim_stamps t qs n =
  if n > 0 then begin
    let now = Machine.Model.cycles (Kernel.machine t.kernel) in
    let stamps = Nic.Device.rx_take_stamps t.device ~q:qs.q n in
    Array.iter (fun s -> qs.lats <- (now - s) :: qs.lats) stamps
  end

(** Service queue [q]'s pending RX interrupt, if any: hard-irq half.
    Masks the queue and schedules the poll loop. Returns true if an
    interrupt was taken. *)
let irq t ~q =
  let qs = t.qs.(q) in
  if Nic.Device.rxq_irq_pending t.device ~q then begin
    Nic.Device.ack_rxq_irq t.device ~q;
    Machine.Model.add_cycles (Kernel.machine t.kernel) t.irq_cycles;
    ignore (Kernel.call_symbol t.kernel "e1000e_rx_disable" [| q |]);
    qs.irqs <- qs.irqs + 1;
    qs.scheduled <- true;
    on_trace t Trace.Rx_irq ~info:q;
    true
  end
  else false

(** One softirq poll pass for queue [q], if it is scheduled: consume up
    to [budget] frames through the driver, then either stay scheduled
    (budget exhausted — more frames are waiting) or re-enable the
    interrupt and go idle. Returns the number of frames consumed. *)
let poll_once t ~q =
  let qs = t.qs.(q) in
  if not qs.scheduled then 0
  else begin
    (* a quarantined driver's calls return a negative errno; treat that
       as an empty poll so the loop re-arms and counters stay sane *)
    let n =
      max 0 (Kernel.call_symbol t.kernel "e1000e_napi_poll" [| q; t.budget |])
    in
    claim_stamps t qs n;
    qs.frames <- qs.frames + n;
    if n > 0 then qs.polls <- qs.polls + 1;
    if n >= t.budget then begin
      qs.budget_exhausted <- qs.budget_exhausted + 1;
      on_trace t Trace.Rx_poll ~size:n ~flags:1 ~info:q
    end
    else begin
      ignore (Kernel.call_symbol t.kernel "e1000e_rx_enable" [| q |]);
      qs.scheduled <- false;
      qs.rearms <- qs.rearms + 1;
      if n > 0 then on_trace t Trace.Rx_poll ~size:n ~flags:0 ~info:q
    end;
    n
  end

(** Drive queue [q] once from the outside: take a pending interrupt,
    run one poll pass if scheduled, and model the coalescing delay
    timer — after [timer_passes] idle calls with frames waiting below
    the threshold, kick the cause so the tail batch is delivered.
    Returns frames consumed this call. *)
let service t ~q =
  ignore (irq t ~q : bool);
  let n = poll_once t ~q in
  let qs = t.qs.(q) in
  if n = 0 && not qs.scheduled then begin
    qs.idle_since_kick <- qs.idle_since_kick + 1;
    if qs.idle_since_kick >= t.timer_passes then begin
      qs.idle_since_kick <- 0;
      if Nic.Device.rx_fire_timer t.device ~q then
        qs.timer_kicks <- qs.timer_kicks + 1
    end
  end
  else qs.idle_since_kick <- 0;
  n

(** Drain queue [q] completely: repeated service passes until the ring
    is empty and the queue is idle. Used at end of run so coalesced
    tails are counted. Returns frames consumed. *)
let flush t ~q =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    ignore (Nic.Device.rx_fire_timer t.device ~q : bool);
    let n = service t ~q in
    total := !total + n;
    if n = 0 && not t.qs.(q).scheduled then continue := false
  done;
  !total

let flush_all t =
  Array.fold_left (fun acc qs -> acc + flush t ~q:qs.q) 0 t.qs

(* --- statistics ----------------------------------------------------- *)

let frames t ~q = t.qs.(q).frames
let irqs t ~q = t.qs.(q).irqs
let polls t ~q = t.qs.(q).polls
let budget_exhausted t ~q = t.qs.(q).budget_exhausted
let rearms t ~q = t.qs.(q).rearms
let timer_kicks t ~q = t.qs.(q).timer_kicks
let total_frames t = Array.fold_left (fun a q -> a + q.frames) 0 t.qs

(** Per-frame arrival-to-delivery latencies (cycles) of queue [q],
    oldest first. *)
let latencies t ~q = List.rev t.qs.(q).lats

(** All queues' latencies as one float array (for {!Stats.Cdf}). *)
let all_latencies t =
  let n = Array.fold_left (fun a q -> a + List.length q.lats) 0 t.qs in
  let out = Array.make (max 1 n) 0.0 in
  let i = ref 0 in
  Array.iter
    (fun q ->
      List.iter
        (fun l ->
          out.(!i) <- float_of_int l;
          incr i)
        q.lats)
    t.qs;
  if n = 0 then [||] else out

(** The /proc/carat/net rendering: one row per RX queue — driver-side
    delivery counters, device-side drop counters, and the NAPI loop's
    own accounting. *)
let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b "carat net: RX queues (NAPI)\n";
  Printf.bprintf b "  %3s %8s %10s %8s %6s %6s %8s %7s %6s\n" "q" "frames"
    "bytes" "dropped" "irqs" "polls" "exhaust" "rearms" "kicks";
  Array.iter
    (fun qs ->
      Printf.bprintf b "  %3d %8d %10d %8d %6d %6d %8d %7d %6d\n" qs.q
        (Nic.Device.rxq_frames t.device ~q:qs.q)
        (Nic.Device.rxq_bytes t.device ~q:qs.q)
        (Nic.Device.rxq_dropped t.device ~q:qs.q)
        qs.irqs qs.polls qs.budget_exhausted qs.rearms qs.timer_kicks)
    t.qs;
  Printf.bprintf b "rss_queues %d rdt_rejects %d\n"
    (Nic.Device.rss_queues t.device)
    (Nic.Device.rdt_rejects t.device);
  Buffer.contents b
