(** Seeded heavy-tailed traffic generator: the "millions of users"
    workload shape, scaled down to thousands of concurrent flows.

    Three distributions, all driven by one {!Machine.Rng} stream so a
    run is reproducible from its seed:
    - **flow popularity** is Zipf-ish: drawing [u^3 * flows] concentrates
      arrivals on a small hot set while the long tail of flows still
      appears (a few heavy users, many light ones);
    - **frame sizes** are bounded Pareto: mostly small frames with a
      heavy tail out to the 1500-byte MTU, the classic internet-mix
      shape;
    - **arrivals** are bursty: with probability [burst_prob] an arrival
      opens a back-to-back burst of up to [burst_max] frames from the
      same flow (a user's request fanning into a packet train).

    Each flow carries a stable hash assigned at creation; RSS steering
    ([Device.rx_inject ~hash]) uses it, so a flow's frames always land
    on the same RX queue — the ordering contract real RSS provides. *)

type arrival = {
  flow : int;
  hash : int;  (** the flow's stable RSS hash *)
  size : int;  (** frame size, [Frame.min_size] .. [Frame.max_size] *)
}

type t = {
  rng : Machine.Rng.t;
  hashes : int array;  (** per-flow stable hash *)
  alpha : float;  (** Pareto shape; smaller = heavier tail *)
  burst_prob : float;
  burst_max : int;
  mutable burst_flow : int;  (** flow of the in-progress burst, or -1 *)
  mutable burst_left : int;
  mutable generated : int;
}

let create ?(flows = 4096) ?(alpha = 1.3) ?(burst_prob = 0.08)
    ?(burst_max = 12) ~seed () =
  assert (flows > 0);
  let rng = Machine.Rng.create seed in
  {
    rng;
    (* hash derived from a split stream so adding arrival-draw changes
       never reshuffles flow->queue placement *)
    hashes =
      (let hrng = Machine.Rng.split rng ~tag:0x5511 in
       Array.init flows (fun _ -> Machine.Rng.int hrng (1 lsl 30)));
    alpha;
    burst_prob;
    burst_max = max 1 burst_max;
    burst_flow = -1;
    burst_left = 0;
    generated = 0;
  }

let flows t = Array.length t.hashes

(* bounded-Pareto frame size *)
let draw_size t =
  let u = Machine.Rng.float t.rng in
  let u = if u >= 0.999999 then 0.999999 else u in
  let x =
    float_of_int Frame.min_size *. ((1.0 -. u) ** (-1.0 /. t.alpha))
  in
  max Frame.min_size (min Frame.max_size (int_of_float x))

(* Zipf-ish flow pick: cube of a uniform concentrates on low indices *)
let draw_flow t =
  let u = Machine.Rng.float t.rng in
  let i = int_of_float (u *. u *. u *. float_of_int (flows t)) in
  min (flows t - 1) i

(** The next arrival in the schedule. *)
let next t =
  let flow =
    if t.burst_left > 0 then begin
      t.burst_left <- t.burst_left - 1;
      t.burst_flow
    end
    else begin
      let f = draw_flow t in
      if Machine.Rng.flip t.rng t.burst_prob then begin
        t.burst_flow <- f;
        t.burst_left <- 1 + Machine.Rng.int t.rng t.burst_max
      end;
      f
    end
  in
  t.generated <- t.generated + 1;
  { flow; hash = t.hashes.(flow); size = draw_size t }

let generated t = t.generated

(** Build the wire payload for an arrival ([seq] tags the frame for
    end-to-end identity checks). *)
let payload arrival ~seq = Frame.build ~seq ~size:arrival.size ()
