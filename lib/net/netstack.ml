(** A thin kernel network-core layer between the user-level tool and the
    driver: the [sendmsg] path.

    Per packet, mirroring what a raw-socket send does in Linux:
    - syscall crossing (charged by {!Kernel.ioctl}-style syscall cost)
    - socket-layer bookkeeping (touches the sock structure in kernel
      memory — real loads/stores through the cache model)
    - skb allocation from a pool and the *unguarded core-kernel copy* of
      the user payload into it (this is the packet-size-dependent part of
      the baseline path)
    - the driver's [e1000e_xmit_frame], interpreted KIR — the only part
      whose memory accesses are guarded in a protected build
    - on ring-full: block, let the device drain, pay a descheduling
      penalty — the source of the paper's >10M-cycle latency outliers.

    Device completion interrupts are modelled by a [Device.sync] before
    each transmit attempt. *)

type t = {
  kernel : Kernel.t;
  device : Nic.Device.t;
  xmit_symbol : string;
  queue : int;
      (** TX queue this stack sends on: -1 = the classic single-queue
          driver path (default); >= 0 = the multi-queue driver entry
          points against the numbered device ring (one per CPU under
          SMP), with a per-queue MSI-X style completion latch *)
  sock_vaddr : int;  (** simulated struct sock / socket bookkeeping *)
  skb_pool : int array;
  skb_size : int;
  mutable next_skb : int;
  noise : Machine.Rng.t;
  mutable interrupt_prob : float;
  mutable interrupt_mean_cycles : int;
  mutable deschedule_mean_cycles : int;
      (** typical wakeup latency after blocking on a full ring *)
  mutable major_deschedule_prob : float;
      (** chance the scheduler runs something else for milliseconds —
          the paper's >10M-cycle outliers *)
  mutable max_retries : int;
      (** ring-full retries before a send gives up with a typed error
          instead of wedging the trial *)
  mutable busy_retries : int;
  mutable deschedules : int;
  mutable sent : int;
  mutable send_errors : int;
}

let sock_size = 512
let default_pool = 64

let create ?xmit_symbol ?(queue = -1) ?(skb_size = 2048)
    ?(pool = default_pool) ?(noise_seed = 1234) kernel device =
  let xmit_symbol =
    match xmit_symbol with
    | Some s -> s
    | None -> if queue >= 0 then "e1000e_xmit_frame_mq" else "e1000e_xmit_frame"
  in
  {
    kernel;
    device;
    xmit_symbol;
    queue;
    sock_vaddr = Kernel.kmalloc kernel ~size:sock_size;
    skb_pool =
      Array.init pool (fun _ -> Kernel.kmalloc kernel ~size:skb_size);
    skb_size;
    next_skb = 0;
    noise = Machine.Rng.create noise_seed;
    interrupt_prob = 0.004;
    interrupt_mean_cycles = 12_000;
    deschedule_mean_cycles = 8_000;
    major_deschedule_prob = 0.004;
    max_retries = 64;
    busy_retries = 0;
    deschedules = 0;
    sent = 0;
    send_errors = 0;
  }

(** Bring the interface up: run the driver's probe with a TX ring of
    [ring_entries] (must be a power of two). *)
let bring_up t ~ring_entries =
  assert (ring_entries land (ring_entries - 1) = 0);
  let rc =
    Kernel.call_symbol t.kernel "e1000e_probe"
      [| Nic.Device.mmio_base t.device; ring_entries |]
  in
  if rc <> 0 then failwith "bring_up: probe failed"

(** Bring up this stack's own TX queue (multi-queue stacks only): run
    the driver's per-queue setup against the device ring this stack
    sends on. [bring_up] (the probe, which also enables the transmitter
    globally) must have run once on some stack first. *)
let bring_up_queue t ~ring_entries =
  assert (t.queue >= 0);
  assert (ring_entries land (ring_entries - 1) = 0);
  let rc =
    Kernel.call_symbol t.kernel "e1000e_setup_tx_queue"
      [| t.queue; ring_entries |]
  in
  if rc <> 0 then failwith "bring_up_queue: setup failed"

let set_noise t ~interrupt_prob ~interrupt_mean ~deschedule_mean =
  t.interrupt_prob <- interrupt_prob;
  t.interrupt_mean_cycles <- interrupt_mean;
  t.deschedule_mean_cycles <- deschedule_mean

(** Interrupt servicing: when the device has a cause latched, run the
    driver's handler (which cleans the TX ring). This happens on its own
    — between syscalls, from the tool's perspective — so the measured
    sendmsg window does not include completion processing, exactly as on
    real hardware with MSI interrupts. *)
let poll_interrupts t =
  Nic.Device.sync t.device;
  if t.queue >= 0 then begin
    (* multi-queue: this stack's MSI-X style per-queue latch only — a
       shared read-to-clear ICR would let concurrent CPUs swallow each
       other's completion causes *)
    if Nic.Device.txq_irq_pending t.device ~q:t.queue then begin
      Nic.Device.ack_txq_irq t.device ~q:t.queue;
      (* interrupt entry/exit cost on the CPU *)
      Machine.Model.add_cycles (Kernel.machine t.kernel) 120;
      ignore
        (Kernel.call_symbol t.kernel "e1000e_irq_handler_mq" [| t.queue |])
    end
  end
  else if Nic.Device.pending_interrupt t.device then begin
    (* interrupt entry/exit cost on the CPU *)
    Machine.Model.add_cycles (Kernel.machine t.kernel) 120;
    ignore (Kernel.call_symbol t.kernel "e1000e_irq_handler" [||])
  end

(* socket-layer bookkeeping: a handful of hot sock fields *)
let touch_sock t =
  let k = t.kernel in
  let wmem = Kernel.read k ~addr:(t.sock_vaddr + 16) ~size:8 in
  Kernel.write k ~addr:(t.sock_vaddr + 16) ~size:8 (wmem + 1);
  ignore (Kernel.read k ~addr:(t.sock_vaddr + 64) ~size:8);
  ignore (Kernel.read k ~addr:(t.sock_vaddr + 128) ~size:8);
  Kernel.write k ~addr:(t.sock_vaddr + 192) ~size:8 t.sent;
  Machine.Model.retire (Kernel.machine k) 120

type send_error =
  | Ring_full_timeout of int
      (** the ring never drained within the retry budget; carries the
          number of retries attempted *)
  | Driver_quarantined
      (** the driver was quarantined (possibly mid-send by this very
          call's guard trap) *)
  | Driver_unloaded  (** the xmit symbol does not resolve *)

let send_error_to_string = function
  | Ring_full_timeout n -> Printf.sprintf "ring never drained (%d retries)" n
  | Driver_quarantined -> "driver quarantined"
  | Driver_unloaded -> "driver not loaded"

exception Send_failed of send_error

(** The sendmsg syscall: copy [len] bytes from the user buffer at
    [user_buf] and hand them to the driver. Returns [Ok len], or a typed
    error instead of wedging the caller: bounded retry with linear
    backoff while the ring is full, and [Driver_quarantined] when a guard
    trap isolated the driver mid-send. *)
let try_sendmsg t ~user_buf ~len : (int, send_error) result =
  let k = t.kernel in
  let machine = Kernel.machine k in
  Machine.Model.syscall machine;
  touch_sock t;
  (* skb alloc + core-kernel copy of the payload (unguarded) *)
  let skb = t.skb_pool.(t.next_skb) in
  t.next_skb <- (t.next_skb + 1) mod Array.length t.skb_pool;
  Machine.Model.retire machine 40;
  ignore (Kernel.call_symbol k "memcpy" [| skb; user_buf; len |]);
  (* the device keeps draining in the background *)
  Nic.Device.sync t.device;
  (* per-call syscall-path noise: TLB pressure, pipeline replay, minor
     contention — the spread of the paper's Figure 7 histogram *)
  Machine.Model.add_cycles machine
    (Machine.Rng.jitter t.noise ~mean:70 ~max:900);
  (* occasional unrelated interrupt during the syscall *)
  if Machine.Rng.flip t.noise t.interrupt_prob then
    Machine.Model.add_cycles machine
      (Machine.Rng.jitter t.noise ~mean:t.interrupt_mean_cycles
         ~max:(20 * t.interrupt_mean_cycles));
  let fail err =
    t.send_errors <- t.send_errors + 1;
    (* syscall error-return path *)
    Machine.Model.retire machine 60;
    Error err
  in
  let rec attempt tries =
    match Kernel.lookup_symbol k t.xmit_symbol with
    | None ->
      if Kernel.quarantined_symbol k t.xmit_symbol <> None then
        fail Driver_quarantined
      else fail Driver_unloaded
    | Some _ ->
      let rc =
        if t.queue >= 0 then
          Kernel.call_symbol k t.xmit_symbol [| skb; len; t.queue |]
        else Kernel.call_symbol k t.xmit_symbol [| skb; len |]
      in
      if rc = 0 then Ok ()
      else if rc = Kernel.eio then
        (* the guard trap quarantined the driver under this very call *)
        fail Driver_quarantined
      else if tries >= t.max_retries then fail (Ring_full_timeout tries)
      else begin
        (* ring full: block until the device frees a slot; the task is
           descheduled, which is where the huge latency outliers come
           from. Linear backoff keeps a wedged device from trapping the
           sender forever. *)
        t.busy_retries <- t.busy_retries + 1;
        t.deschedules <- t.deschedules + 1;
        let wake =
          Nic.Device.next_completion_cycle ~q:(max t.queue 0) t.device
        in
        let now = Machine.Model.cycles machine in
        let sleep = max 0 (wake - now) in
        let penalty =
          Machine.Rng.jitter t.noise ~mean:t.deschedule_mean_cycles
            ~max:(6 * t.deschedule_mean_cycles)
          + (t.deschedule_mean_cycles * min tries 16)
          +
          if Machine.Rng.flip t.noise t.major_deschedule_prob then
            Machine.Rng.jitter t.noise ~mean:4_000_000 ~max:16_000_000
          else 0
        in
        Machine.Model.add_cycles machine (sleep + penalty);
        (* the TX-completion interrupt is what woke us: service it so the
           driver's next_to_clean advances *)
        poll_interrupts t;
        attempt (tries + 1)
      end
  in
  match attempt 0 with
  | Ok () ->
    t.sent <- t.sent + 1;
    (* syscall return path *)
    Machine.Model.retire machine 60;
    Ok len
  | Error e -> Error e

(** Raising variant of {!try_sendmsg} for callers that treat any send
    failure as fatal. *)
let sendmsg t ~user_buf ~len =
  match try_sendmsg t ~user_buf ~len with
  | Ok n -> n
  | Error e -> raise (Send_failed e)

let sent t = t.sent
let busy_retries t = t.busy_retries
let deschedules t = t.deschedules
let send_errors t = t.send_errors
let set_max_retries t n = t.max_retries <- max 0 n
