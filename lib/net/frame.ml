(** Raw Ethernet frame construction, as the paper's user-level tool does:
    "a user-level tool that sends raw Ethernet packets to a fake
    destination". *)

type mac = int * int * int * int * int * int

let broadcast : mac = (0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
let fake_destination : mac = (0x02, 0x00, 0x00, 0xde, 0xad, 0x01)
let source : mac = (0x02, 0x00, 0x00, 0xbe, 0xef, 0x02)

let ethertype_experimental = 0x88B5 (* IEEE 802 local experimental *)

let header_size = 14
let min_size = 64
let max_size = 1500

let mac_to_string (a, b, c, d, e, f) =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" a b c d e f

(** Build a [size]-byte frame: 14-byte header + payload stamped with a
    sequence number and filled with a deterministic pattern. *)
let build ?(dst = fake_destination) ?(src = source)
    ?(ethertype = ethertype_experimental) ~seq ~size () =
  if size < header_size then invalid_arg "Frame.build: size below header";
  let buf = Bytes.make size '\000' in
  let set_mac off (a, b, c, d, e, f) =
    List.iteri
      (fun i v -> Bytes.set buf (off + i) (Char.chr v))
      [ a; b; c; d; e; f ]
  in
  set_mac 0 dst;
  set_mac 6 src;
  Bytes.set buf 12 (Char.chr ((ethertype lsr 8) land 0xff));
  Bytes.set buf 13 (Char.chr (ethertype land 0xff));
  (* 4-byte sequence number, then pattern fill. The fill runs once per
     generated packet; unsafe_set is justified by the loop bounds
     ([size] = [Bytes.length buf]) and the land 0xff on every value. *)
  if size >= header_size + 4 then
    for i = 0 to 3 do
      Bytes.set buf (header_size + i) (Char.chr ((seq lsr (8 * i)) land 0xff))
    done;
  for i = header_size + 4 to size - 1 do
    Bytes.unsafe_set buf i (Char.unsafe_chr ((i * 13 + seq) land 0xff))
  done;
  Bytes.unsafe_to_string buf

let seq_of frame =
  if String.length frame < header_size + 4 then None
  else begin
    let b i = Char.code frame.[header_size + i] in
    Some (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
  end

let ethertype_of frame =
  if String.length frame < header_size then None
  else Some ((Char.code frame.[12] lsl 8) lor Char.code frame.[13])
