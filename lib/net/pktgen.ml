(** The user-level measurement tool (§4.2 "Methodology and factors"):
    brings the NIC up on a private address, sends raw Ethernet packets to
    a fake destination, varying packet count and size, and measures
    {b throughput} of the transmissions and {b latency} of individual
    packet launches ("in cycles using the cycle counter, as the time spent
    in the sendmsg() call from the user-space test application's point of
    view").

    Per-packet tool-side work (building the frame, raw-socket
    bookkeeping, rate bookkeeping) happens *outside* the timed sendmsg
    window, exactly as in the paper — which is why sendmsg latency is
    ~700 cycles while the end-to-end rate is ~10⁵ packets/s. The tool-side
    time has a large core-speed-independent component (DRAM and device
    time), so both testbed machines land in the same pps band, as the
    paper's figures show. *)

type config = {
  count : int;  (** packets per trial *)
  size : int;  (** frame size in bytes *)
  seed : int;
  tool_ns : float;
      (** fixed per-packet tool+stack time outside sendmsg, in ns *)
  tool_instructions : int;
      (** per-packet tool work that does scale with the core *)
}

let default_config =
  { count = 1000; size = 128; seed = 1; tool_ns = 6800.0; tool_instructions = 2600 }

type result = {
  sent : int;
  cycles : int;  (** total cycles across the trial *)
  seconds : float;
  pps : float;  (** achieved packet launch throughput *)
  latencies : int array;  (** per-sendmsg cycle counts *)
  busy_retries : int;
  error : Netstack.send_error option;
      (** why the trial stopped early, if it did — a quarantined or
          wedged driver degrades the trial instead of crashing it *)
}

(** Run one trial: [count] packets of [size] bytes through [stack]. A
    send error ends the trial gracefully: the result covers the packets
    that did go out and records the error. *)
let run (stack : Netstack.t) (cfg : config) : result =
  let k = stack.Netstack.kernel in
  let machine = Kernel.machine k in
  let rng = Machine.Rng.create cfg.seed in
  (* the tool's user-space frame buffer *)
  let user_buf = Kernel.map_user k ~size:2048 in
  let latencies = Array.make cfg.count 0 in
  let busy0 = Netstack.busy_retries stack in
  let t_start = Machine.Model.cycles machine in
  let sent_n = ref 0 in
  let error = ref None in
  (try
     for i = 0 to cfg.count - 1 do
       (* interrupts are serviced between sends — completion processing
          happens outside the timed sendmsg window, as with real MSI *)
       Netstack.poll_interrupts stack;
       (* build the frame in user space: the write into the user buffer is
          real (so the DMA'd bytes check out), the bulk of the tool's
          per-packet cost is charged explicitly *)
       let frame = Frame.build ~seq:i ~size:cfg.size () in
       Kernel.write_string k ~addr:user_buf frame;
       Machine.Model.memcpy machine ~dst:user_buf ~src:(user_buf + 4096)
         cfg.size;
       Machine.Model.retire machine cfg.tool_instructions;
       (* core-speed-independent slice (timers, device time, DRAM): same
          nanoseconds on both machines, different cycle counts *)
       let jitter = 0.97 +. (0.06 *. Machine.Rng.float rng) in
       Machine.Model.add_cycles machine
         (int_of_float
            (cfg.tool_ns *. jitter *. machine.Machine.Model.p.freq_ghz));
       (* the timed window: the sendmsg call itself *)
       let t0 = Machine.Model.cycles machine in
       match Netstack.try_sendmsg stack ~user_buf ~len:cfg.size with
       | Ok sent ->
         let t1 = Machine.Model.cycles machine in
         assert (sent = cfg.size);
         latencies.(i) <- t1 - t0;
         incr sent_n
       | Error e ->
         error := Some e;
         raise Exit
     done
   with Exit -> ());
  let t_end = Machine.Model.cycles machine in
  let cycles = max 1 (t_end - t_start) in
  let seconds =
    float_of_int cycles /. (machine.Machine.Model.p.freq_ghz *. 1e9)
  in
  {
    sent = !sent_n;
    cycles;
    seconds;
    pps = float_of_int !sent_n /. seconds;
    latencies = Array.sub latencies 0 !sent_n;
    busy_retries = Netstack.busy_retries stack - busy0;
    error = !error;
  }
