(** Register map of the simulated Intel 1 Gbit/s NIC ("e1000e"-class,
    82574L-flavoured). Offsets follow the real device where it matters to
    the driver code; only the subset the driver touches is implemented. *)

let ctrl = 0x0000
let status = 0x0008
let icr = 0x00C0 (* interrupt cause read (read-to-clear) *)
let ims = 0x00D0 (* interrupt mask set *)
let imc = 0x00D8 (* interrupt mask clear *)
let tctl = 0x0400 (* transmit control *)
let tdbal = 0x3800 (* TX descriptor base address low *)
let tdbah = 0x3804
let tdlen = 0x3808 (* TX descriptor ring length, bytes *)
let tdh = 0x3810 (* TX descriptor head (device-owned) *)
let tdt = 0x3818 (* TX descriptor tail (driver doorbell) *)

(* Multi-queue TX: queue [q]'s register block sits at [tdbal + q *
   txq_stride] (82574/igb convention); queue 0's block is exactly the
   classic single-queue registers above, so a single-queue driver is a
   multi-queue driver that only programs queue 0. *)
let txq_stride = 0x100
let max_tx_queues = 8
let tdbal_q q = tdbal + (q * txq_stride)
let tdlen_q q = tdlen + (q * txq_stride)
let tdh_q q = tdh + (q * txq_stride)
let tdt_q q = tdt + (q * txq_stride)
let rctl = 0x0100
let rdbal = 0x2800
let rdbah = 0x2804
let rdlen = 0x2808
let rdh = 0x2810
let rdt = 0x2818

(* Multi-queue RX: queue [q]'s register block sits at [rdbal + q *
   rxq_stride], mirroring the TX convention; queue 0's block is exactly
   the classic single-queue registers above. The RX blocks end at 0x3000,
   well below the TX blocks at [tdbal]. Sub-offsets within a block beyond
   the classic five are per-queue extras: the RDTR-position interrupt
   coalescing threshold (frames per RXT0 assertion), an RX interrupt mask
   latch (the per-queue analogue of IMS/IMC for NAPI's
   mask-poll-re-enable cycle), and read-only delivery/drop counters the
   driver surfaces through its stats entry points. *)
let rxq_stride = 0x100
let max_rx_queues = 8
let rdbal_q q = rdbal + (q * rxq_stride)
let rdlen_q q = rdlen + (q * rxq_stride)
let rdh_q q = rdh + (q * rxq_stride)
let rdt_q q = rdt + (q * rxq_stride)

(* block-relative sub-offsets of the per-queue extras *)
let rxq_rdtr_off = 0x20 (* coalescing: frames per interrupt (RDTR slot) *)
let rxq_mask_off = 0x28 (* 1 = RX interrupt masked (NAPI polling) *)
let rxq_frames_off = 0x30 (* device: frames delivered into this ring *)
let rxq_bytes_off = 0x38 (* device: bytes delivered into this ring *)
let rxq_dropped_off = 0x40 (* device: frames dropped (no buffer/RXO) *)
let rdtr_q q = rdbal + (q * rxq_stride) + rxq_rdtr_off
let rxmask_q q = rdbal + (q * rxq_stride) + rxq_mask_off
let rxq_frames_reg q = rdbal + (q * rxq_stride) + rxq_frames_off
let rxq_bytes_reg q = rdbal + (q * rxq_stride) + rxq_bytes_off
let rxq_dropped_reg q = rdbal + (q * rxq_stride) + rxq_dropped_off

(* RSS: the MRQC-position register; the written value is the number of
   RX queues incoming flows are hashed across (0/1 = steering off,
   everything lands on queue 0). *)
let mrqc = 0x5818

let scratch = 0x5B00 (* diagnostic scratch register (self-test) *)

(* CTRL bits *)
let ctrl_rst = 1 lsl 26

(* STATUS bits *)
let status_lu = 1 lsl 1 (* link up *)

(* TCTL bits *)
let tctl_en = 1 lsl 1

(* ICR bits *)
let icr_txdw = 1 lsl 0 (* transmit descriptor written back *)
let icr_lsc = 1 lsl 2 (* link status change *)
let icr_rxo = 1 lsl 6 (* receiver overrun: frame dropped, ring full *)
let icr_rxt0 = 1 lsl 7 (* receiver timer: frames delivered *)

(* RCTL bits *)
let rctl_en = 1 lsl 1

(* legacy TX descriptor layout (16 bytes) *)
let desc_size = 16
let desc_addr_off = 0 (* u64 buffer address *)
let desc_len_off = 8 (* u16 length *)
let desc_cso_off = 10
let desc_cmd_off = 11 (* u8 command *)
let desc_sta_off = 12 (* u8 status *)
let desc_css_off = 13
let desc_special_off = 14

(* descriptor command bits *)
let cmd_eop = 0x01
let cmd_ifcs = 0x02
let cmd_rs = 0x08

(* descriptor status bits *)
let sta_dd = 0x01 (* descriptor done *)
let sta_eop = 0x02 (* end of packet (RX) *)

(* legacy RX descriptor layout (16 bytes) *)
let rxd_addr_off = 0 (* u64 buffer address *)
let rxd_len_off = 8 (* u16 length *)
let rxd_csum_off = 10
let rxd_sta_off = 12 (* u8 status *)
let rxd_err_off = 13
let rxd_special_off = 14

let bar_size = 0x6000
