(** Behavioural model of the NIC.

    The device owns a register BAR (mapped into the kernel's MMIO window)
    and a DMA engine. On a TDT doorbell it walks the TX descriptor ring,
    DMA-reads each descriptor and its buffer from simulated physical
    memory — through {!Kernel.dma_read}, i.e. *without* CPU cost and
    *without* guards, reproducing the paper's point that the overwhelming
    amount of data transfer is unchecked DMA — and delivers the frame to a
    packet sink.

    Draining is modelled in simulated time: each frame occupies the 1 Gb/s
    wire for (bytes + preamble/IFG overhead) * 8 ns, converted to CPU
    cycles. [sync] lazily advances the device up to the current CPU clock,
    writing back DD status bits and TDH exactly as the hardware's
    writeback would; it stands in for the interrupt path. An optional
    stall process (flow-control pauses) produces the ring-full episodes
    behind the paper's latency outliers.

    TX is multi-queue (up to {!Regs.max_tx_queues} rings, 82574-style
    register blocks at a fixed stride) over the single shared wire:
    per-CPU senders each own a ring, and the drain engine interleaves
    completed frames in doorbell order. Queue 0's registers are the
    classic single-queue ones, so the pre-SMP driver — and its simulated
    behaviour — is unchanged. Queues 1+ complete to a per-queue MSI-X
    style interrupt latch instead of the shared ICR cause. *)

type frame = { data : string; at_cycle : int }

(** One TX descriptor ring (queue). *)
type txq = {
  mutable q_base : int;  (** virtual (direct-map) ring address *)
  mutable q_entries : int;
  mutable q_tdh : int;
  mutable q_tdt : int;
  mutable q_post : int array;
      (** cycle at which each ring slot was posted (doorbell time): a
          frame cannot occupy the wire before it exists *)
  mutable q_irq : bool;  (** per-queue completion latch (MSI-X vector) *)
  mutable q_frames : int;
  mutable q_bytes : int;
}

(** One RX descriptor ring (queue). Queue 0 is the classic single-queue
    receiver (its registers are the classic RDBAL/RDLEN/RDH/RDT and its
    delivery cause is the shared ICR RXT0 bit); queues 1+ complete to a
    per-queue latch like the TX side. *)
type rxq = {
  mutable r_base : int;  (** virtual (direct-map) ring address *)
  mutable r_entries : int;
  mutable r_rdh : int;  (** next slot the device fills *)
  mutable r_rdt : int;  (** first slot NOT available to the device *)
  mutable r_coalesce : int;
      (** interrupt coalescing: frames delivered per latched RX cause
          (RDTR-slot register); <= 1 latches on every frame *)
  mutable r_unack : int;  (** frames delivered since the last cause *)
  mutable r_masked : bool;
      (** NAPI mask latch: while set, the delivery cause still
          accumulates but {!rxq_irq_pending} reports nothing *)
  mutable r_irq : bool;  (** per-queue RX cause latch *)
  mutable r_frames : int;
  mutable r_bytes : int;
  mutable r_dropped : int;
  r_stamps : int Queue.t;
      (** arrival cycle of each delivered-but-unclaimed frame, for
          per-packet latency measurement by the harness *)
}

(** A write to an RX tail register with a value outside the ring. The
    real hardware's behaviour here is undefined; the old model silently
    wrapped the value with [mod], which hid driver bugs. The device now
    rejects the write (the tail is unchanged) and latches the fault so
    the harness can assert on it. *)
type rdt_error = { rdt_queue : int; rdt_value : int; rdt_entries : int }

let rdt_error_to_string e =
  Printf.sprintf "RDT write %d out of range on queue %d (ring has %d slots)"
    e.rdt_value e.rdt_queue e.rdt_entries

type t = {
  kernel : Kernel.t;
  name : string;
  regs : (int, int) Hashtbl.t;
  mutable mmio_base : int;
  (* DMA/drain state *)
  txqs : txq array;  (** [Regs.max_tx_queues] rings; index 0 = classic *)
  mutable busy_until : int;  (** device cycle at which the wire frees up *)
  mutable link_up : bool;
  (* RX state *)
  rxqs : rxq array;  (** [Regs.max_rx_queues] rings; index 0 = classic *)
  mutable rss_queues : int;
      (** RSS fan-out (MRQC): number of rings flows hash across;
          <= 1 means steering off, everything lands on queue 0 *)
  mutable last_rdt_error : rdt_error option;
  mutable rdt_rejects : int;
  (* stall (flow-control pause) process *)
  mutable stall_prob : float;  (** per-frame probability of a pause *)
  mutable stall_cycles : int;
  rng : Machine.Rng.t;
  (* sink *)
  mutable tx_frames : int;
  mutable tx_bytes : int;
  recent : frame array;  (** circular, [recent_next] is the next slot *)
  mutable recent_next : int;
  mutable recent_count : int;
}

let gbit_per_s = 1.0 (* line rate *)

(** Wire time of a frame in CPU cycles: (preamble 8 + frame + IFG 12 +
    FCS 4) bytes at line rate. *)
let wire_cycles t bytes =
  let ns = float_of_int (bytes + 24) *. 8.0 /. gbit_per_s in
  int_of_float (ns *. (Kernel.machine t.kernel).Machine.Model.p.freq_ghz)

let reg_read t off = try Hashtbl.find t.regs off with Not_found -> 0
let reg_write t off v = Hashtbl.replace t.regs off v

let now t = Machine.Model.cycles (Kernel.machine t.kernel)

let queue t q = t.txqs.(q)

let q_configured q = q.q_base <> 0 && q.q_entries > 0

let ring_configured ?(q = 0) t = q_configured t.txqs.(q)

let q_posted q =
  if Array.length q.q_post > q.q_tdh then q.q_post.(q.q_tdh) else 0

(* The queue whose head frame hit the doorbell earliest goes on the wire
   next (tie: lowest queue index) — round-robin arbitration in post
   order. With only queue 0 active this always selects queue 0, making
   the drain sequence identical to the single-queue device. *)
let pick_pending t =
  let best = ref (-1) and best_posted = ref max_int in
  Array.iteri
    (fun i q ->
      if q_configured q && q.q_tdh <> q.q_tdt then begin
        let p = q_posted q in
        if p < !best_posted then begin
          best := i;
          best_posted := p
        end
      end)
    t.txqs;
  !best

(** Advance the device: complete every descriptor whose wire time has
    passed by [upto], writing DD back into the ring via DMA. *)
let sync ?upto t =
  let upto = match upto with Some c -> c | None -> now t in
  let continue = ref (reg_read t Regs.tctl land Regs.tctl_en <> 0) in
  while !continue do
    let qi = pick_pending t in
    if qi < 0 then continue := false
    else begin
      let q = t.txqs.(qi) in
      let desc = q.q_base + (q.q_tdh * Regs.desc_size) in
      let buf =
        Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_addr_off) ~size:8
      in
      let len =
        Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_len_off) ~size:2
      in
      let posted = q_posted q in
      let start = max t.busy_until posted in
      (* random flow-control pause before this frame *)
      let pause =
        if t.stall_prob > 0.0 && Machine.Rng.flip t.rng t.stall_prob then
          t.stall_cycles
        else 0
      in
      let finish = start + pause + wire_cycles t len in
      if finish > upto then continue := false
      else begin
        (* DMA the payload out and deliver to the sink *)
        let data =
          if len > 0 && buf <> 0 then Kernel.read_string t.kernel ~addr:buf ~len
          else ""
        in
        t.tx_frames <- t.tx_frames + 1;
        t.tx_bytes <- t.tx_bytes + len;
        q.q_frames <- q.q_frames + 1;
        q.q_bytes <- q.q_bytes + len;
        (* bounded sink: overwrite the oldest slot; completion runs once
           per frame, so this must not churn a list *)
        t.recent.(t.recent_next) <- { data; at_cycle = finish };
        t.recent_next <- (t.recent_next + 1) mod Array.length t.recent;
        if t.recent_count < Array.length t.recent then
          t.recent_count <- t.recent_count + 1;
        t.busy_until <- finish;
        (* status writeback: set DD *)
        let sta =
          Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_sta_off) ~size:1
        in
        Kernel.dma_write t.kernel ~addr:(desc + Regs.desc_sta_off) ~size:1
          (sta lor Regs.sta_dd);
        q.q_tdh <- (q.q_tdh + 1) mod q.q_entries;
        q.q_irq <- true;
        if qi = 0 then
          reg_write t Regs.icr (reg_read t Regs.icr lor Regs.icr_txdw)
      end
    end
  done

(** Earliest cycle by which at least one more descriptor of queue [q]
    will complete — where a blocked sender should wake up. *)
let next_completion_cycle ?(q = 0) t =
  let q = t.txqs.(q) in
  if q.q_tdh = q.q_tdt then now t
  else begin
    let desc = q.q_base + (q.q_tdh * Regs.desc_size) in
    let len =
      Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_len_off) ~size:2
    in
    let posted = q_posted q in
    max (max t.busy_until posted) (now t) + wire_cycles t len
  end

(* TX queue register blocks: [Regs.tdbal + q * Regs.txq_stride]. *)
let txq_of_off off =
  if off >= Regs.tdbal && off < Regs.tdbal + (Regs.max_tx_queues * Regs.txq_stride)
  then begin
    let q = (off - Regs.tdbal) / Regs.txq_stride in
    Some (q, off - (q * Regs.txq_stride))
  end
  else None

(* RX queue register blocks: [Regs.rdbal + q * Regs.rxq_stride]. The
   returned sub-offset is rdbal-relative so it compares against the
   classic register names directly (queue 0's block IS the classic
   registers). *)
let rxq_of_off off =
  if off >= Regs.rdbal && off < Regs.rdbal + (Regs.max_rx_queues * Regs.rxq_stride)
  then begin
    let q = (off - Regs.rdbal) / Regs.rxq_stride in
    Some (q, off - Regs.rdbal - (q * Regs.rxq_stride))
  end
  else None

let handle_read t off size =
  ignore size;
  match txq_of_off off with
  | Some (qi, sub) ->
    let q = t.txqs.(qi) in
    if sub = Regs.tdh then begin
      sync t;
      q.q_tdh
    end
    else if sub = Regs.tdt then q.q_tdt
    else reg_read t off
  | None ->
    (match rxq_of_off off with
    | Some (qi, sub) ->
      let r = t.rxqs.(qi) in
      if sub = Regs.rdh - Regs.rdbal then r.r_rdh
      else if sub = Regs.rdt - Regs.rdbal then r.r_rdt
      else if sub = Regs.rxq_rdtr_off then r.r_coalesce
      else if sub = Regs.rxq_mask_off then if r.r_masked then 1 else 0
      else if sub = Regs.rxq_frames_off then r.r_frames
      else if sub = Regs.rxq_bytes_off then r.r_bytes
      else if sub = Regs.rxq_dropped_off then r.r_dropped
      else reg_read t off
    | None ->
      if off = Regs.status then
        reg_read t Regs.status lor (if t.link_up then Regs.status_lu else 0)
      else if off = Regs.icr then begin
        (* read-to-clear *)
        let v = reg_read t Regs.icr in
        reg_write t Regs.icr 0;
        v
      end
      else reg_read t off)

let reset_txq q =
  q.q_base <- 0;
  q.q_entries <- 0;
  q.q_tdh <- 0;
  q.q_tdt <- 0;
  q.q_post <- [||];
  q.q_irq <- false

let reset_rxq r =
  r.r_base <- 0;
  r.r_entries <- 0;
  r.r_rdh <- 0;
  r.r_rdt <- 0;
  r.r_coalesce <- 1;
  r.r_unack <- 0;
  r.r_masked <- false;
  r.r_irq <- false;
  Queue.clear r.r_stamps

let handle_write t off size v =
  ignore size;
  match txq_of_off off with
  | Some (qi, sub) ->
    let q = t.txqs.(qi) in
    if sub = Regs.tdt then begin
      if q_configured q then begin
        let now_c = now t in
        let v = v mod q.q_entries in
        (* stamp the post time of every newly published slot *)
        let i = ref q.q_tdt in
        while !i <> v do
          q.q_post.(!i) <- now_c;
          i := (!i + 1) mod q.q_entries
        done;
        q.q_tdt <- v;
        reg_write t off q.q_tdt;
        sync t
      end
    end
    else if sub = Regs.tdbal then begin
      reg_write t off v;
      q.q_base <- v
    end
    else if sub = Regs.tdlen then begin
      reg_write t off v;
      q.q_entries <- v / Regs.desc_size;
      q.q_post <- Array.make (max 1 q.q_entries) 0
    end
    else if sub = Regs.tdh then begin
      q.q_tdh <- v;
      reg_write t off v
    end
    else reg_write t off v
  | None ->
    (match rxq_of_off off with
    | Some (qi, sub) ->
      let r = t.rxqs.(qi) in
      if sub = 0 (* rdbal *) then begin
        reg_write t off v;
        r.r_base <- v
      end
      else if sub = Regs.rdlen - Regs.rdbal then begin
        reg_write t off v;
        r.r_entries <- v / Regs.desc_size
      end
      else if sub = Regs.rdh - Regs.rdbal then begin
        r.r_rdh <- v;
        reg_write t off v
      end
      else if sub = Regs.rdt - Regs.rdbal then begin
        (* typed out-of-range rejection: the tail must name a ring slot
           (or 0 on an unconfigured ring); anything else is a driver bug
           the device refuses rather than wrapping into silent corruption *)
        if v >= 0 && (if r.r_entries > 0 then v < r.r_entries else v = 0)
        then begin
          r.r_rdt <- v;
          reg_write t off v
        end
        else begin
          t.last_rdt_error <-
            Some { rdt_queue = qi; rdt_value = v; rdt_entries = r.r_entries };
          t.rdt_rejects <- t.rdt_rejects + 1
        end
      end
      else if sub = Regs.rxq_rdtr_off then begin
        r.r_coalesce <- max 1 v;
        reg_write t off r.r_coalesce
      end
      else if sub = Regs.rxq_mask_off then begin
        r.r_masked <- v <> 0;
        reg_write t off v
      end
      else reg_write t off v
    | None ->
      if off = Regs.mrqc then begin
        reg_write t off v;
        t.rss_queues <- max 0 (min v Regs.max_rx_queues)
      end
      else if off = Regs.ctrl && v land Regs.ctrl_rst <> 0 then begin
        (* device reset *)
        Hashtbl.reset t.regs;
        Array.iter reset_txq t.txqs;
        Array.iter reset_rxq t.rxqs;
        t.rss_queues <- 0;
        t.busy_until <- 0
      end
      else reg_write t off v)

(** Create the device and map its BAR; returns the device. The driver
    learns the BAR's virtual base from [mmio_base]. *)
let create ?(name = "e1000e-sim") ?(stall_prob = 0.0)
    ?(stall_cycles = 2_000_000) ?(seed = 7) kernel =
  let t =
    {
      kernel;
      name;
      regs = Hashtbl.create 64;
      mmio_base = 0;
      txqs =
        Array.init Regs.max_tx_queues (fun _ ->
            {
              q_base = 0;
              q_entries = 0;
              q_tdh = 0;
              q_tdt = 0;
              q_post = [||];
              q_irq = false;
              q_frames = 0;
              q_bytes = 0;
            });
      busy_until = 0;
      link_up = true;
      rxqs =
        Array.init Regs.max_rx_queues (fun _ ->
            {
              r_base = 0;
              r_entries = 0;
              r_rdh = 0;
              r_rdt = 0;
              r_coalesce = 1;
              r_unack = 0;
              r_masked = false;
              r_irq = false;
              r_frames = 0;
              r_bytes = 0;
              r_dropped = 0;
              r_stamps = Queue.create ();
            });
      rss_queues = 0;
      last_rdt_error = None;
      rdt_rejects = 0;
      stall_prob;
      stall_cycles;
      rng = Machine.Rng.create seed;
      tx_frames = 0;
      tx_bytes = 0;
      recent = Array.make 32 { data = ""; at_cycle = 0 };
      recent_next = 0;
      recent_count = 0;
    }
  in
  let region =
    Kernel.ioremap kernel ~name ~size:Regs.bar_size
      ~read:(fun off size -> handle_read t off size)
      ~write:(fun off size v -> handle_write t off size v)
  in
  t.mmio_base <- region.Kernel.mmio_virt;
  t

let mmio_base t = t.mmio_base

(** True when the device has an interrupt cause latched (e.g. TX
    writeback). The kernel checks this cheaply (MSI delivery) before
    running the driver's handler, which is what clears ICR. *)
let pending_interrupt t =
  sync t;
  reg_read t Regs.icr <> 0

(** Per-queue completion latch (the MSI-X vector a multi-queue sender
    polls); separate from the shared legacy ICR cause so per-CPU queues
    never swallow each other's interrupts through read-to-clear. *)
let txq_irq_pending t ~q =
  sync t;
  t.txqs.(q).q_irq

let ack_txq_irq t ~q = t.txqs.(q).q_irq <- false

let tx_frames t = t.tx_frames
let tx_bytes t = t.tx_bytes
let txq_frames t ~q = t.txqs.(q).q_frames
let txq_bytes t ~q = t.txqs.(q).q_bytes
(* newest-first list of the last frames delivered to the sink *)
let recent_frames t =
  let cap = Array.length t.recent in
  List.init t.recent_count (fun i ->
      t.recent.((t.recent_next - 1 - i + (2 * cap)) mod cap))
let set_stall t ~prob ~cycles =
  t.stall_prob <- prob;
  t.stall_cycles <- cycles
let set_link t up = t.link_up <- up

(* ------------------------------------------------------------------ *)
(* receive side *)

let rxq_configured ?(q = 0) t =
  let r = t.rxqs.(q) in
  r.r_base <> 0 && r.r_entries > 0
  && reg_read t Regs.rctl land Regs.rctl_en <> 0

let rx_configured t = rxq_configured ~q:0 t

(* Latch queue [qi]'s RX cause: the per-queue latch always, plus the
   shared ICR bit for queue 0 so the classic (non-NAPI) interrupt path
   keeps working unchanged. *)
let latch_rx_cause t qi bit =
  let r = t.rxqs.(qi) in
  r.r_irq <- true;
  if qi = 0 then reg_write t Regs.icr (reg_read t Regs.icr lor bit)

(** Deliver an incoming frame from the (simulated) wire into queue [qi]:
    DMA the payload into the next posted receive buffer, write back
    length and DD|EOP status, advance RDH and — once the coalescing
    threshold is met — latch an RX interrupt cause. Frames arriving with
    no buffer available are dropped and latch RXO (receiver overrun),
    like hardware without flow control. Returns true if delivered.

    [stamp] overrides the arrival timestamp recorded for the frame's
    latency accounting. Under SMP every CPU's clock is a private domain;
    latency is only meaningful measured on one clock, so the caller
    should stamp with the cycle counter of the CPU that owns the target
    queue's NAPI loop (the same clock {!Rx.poll_once} claims against).
    Defaults to the current machine's clock — correct single-CPU and for
    a CPU injecting into its own queue. *)
let rx_inject_q ?stamp t qi (data : string) : bool =
  let r = t.rxqs.(qi) in
  if (not (rxq_configured ~q:qi t)) || not t.link_up then begin
    r.r_dropped <- r.r_dropped + 1;
    false
  end
  else if r.r_rdh = r.r_rdt then begin
    (* no buffers posted: receiver overrun *)
    r.r_dropped <- r.r_dropped + 1;
    latch_rx_cause t qi Regs.icr_rxo;
    false
  end
  else begin
    let desc = r.r_base + (r.r_rdh * Regs.desc_size) in
    let buf =
      Kernel.dma_read t.kernel ~addr:(desc + Regs.rxd_addr_off) ~size:8
    in
    let len = String.length data in
    Kernel.write_string t.kernel ~addr:buf data;
    Kernel.dma_write t.kernel ~addr:(desc + Regs.rxd_len_off) ~size:2 len;
    Kernel.dma_write t.kernel ~addr:(desc + Regs.rxd_sta_off) ~size:1
      (Regs.sta_dd lor Regs.sta_eop);
    r.r_rdh <- (r.r_rdh + 1) mod r.r_entries;
    r.r_frames <- r.r_frames + 1;
    r.r_bytes <- r.r_bytes + len;
    Queue.push (match stamp with Some s -> s | None -> now t) r.r_stamps;
    r.r_unack <- r.r_unack + 1;
    if r.r_unack >= max 1 r.r_coalesce then begin
      r.r_unack <- 0;
      latch_rx_cause t qi Regs.icr_rxt0
    end;
    true
  end

(** The RX queue RSS would steer a frame with this flow hash onto: with
    RSS programmed (MRQC > 1), [hash mod rss_queues]; otherwise the
    classic queue 0. Exposed so SMP callers can stamp arrivals with the
    owning CPU's clock before injecting. *)
let rx_queue_for t ~hash =
  if t.rss_queues > 1 then abs hash mod t.rss_queues else 0

(** Steer a frame by its flow hash (see {!rx_queue_for}); [stamp] as in
    {!rx_inject_q}. *)
let rx_inject ?(hash = 0) ?stamp t (data : string) : bool =
  rx_inject_q ?stamp t (rx_queue_for t ~hash) data

(** Per-queue RX cause latch, respecting the queue's NAPI mask: a masked
    queue keeps accumulating causes but reports none (the poll loop owns
    it). Queue 0's cause is ALSO visible through the legacy ICR for the
    classic driver. *)
let rxq_irq_pending t ~q =
  let r = t.rxqs.(q) in
  r.r_irq && not r.r_masked

let ack_rxq_irq t ~q = t.rxqs.(q).r_irq <- false

(** Fire the coalescing delay timer for queue [q]: if frames are waiting
    below the packet-count threshold, latch the cause anyway so a quiet
    tail is never stranded. Returns true if a cause was latched. *)
let rx_fire_timer t ~q =
  let r = t.rxqs.(q) in
  if r.r_unack > 0 then begin
    r.r_unack <- 0;
    latch_rx_cause t q Regs.icr_rxt0;
    true
  end
  else false

(** Pop up to [n] arrival stamps (cycle of DMA delivery) from queue
    [q] — one per frame the driver just consumed, oldest first. *)
let rx_take_stamps t ~q n =
  let r = t.rxqs.(q) in
  let k = min n (Queue.length r.r_stamps) in
  Array.init k (fun _ -> Queue.pop r.r_stamps)

let rxq_frames t ~q = t.rxqs.(q).r_frames
let rxq_bytes t ~q = t.rxqs.(q).r_bytes
let rxq_dropped t ~q = t.rxqs.(q).r_dropped
let rx_frames t = Array.fold_left (fun a r -> a + r.r_frames) 0 t.rxqs
let rx_bytes t = Array.fold_left (fun a r -> a + r.r_bytes) 0 t.rxqs
let rx_dropped t = Array.fold_left (fun a r -> a + r.r_dropped) 0 t.rxqs
let rss_queues t = t.rss_queues
let last_rdt_error t = t.last_rdt_error
let rdt_rejects t = t.rdt_rejects

(** Free descriptor slots of queue [q] as the device sees them right
    now. *)
let free_slots ?(q = 0) t =
  sync t;
  let q = t.txqs.(q) in
  if not (q_configured q) then 0
  else (q.q_tdh - q.q_tdt - 1 + q.q_entries) mod q.q_entries
