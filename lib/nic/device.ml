(** Behavioural model of the NIC.

    The device owns a register BAR (mapped into the kernel's MMIO window)
    and a DMA engine. On a TDT doorbell it walks the TX descriptor ring,
    DMA-reads each descriptor and its buffer from simulated physical
    memory — through {!Kernel.dma_read}, i.e. *without* CPU cost and
    *without* guards, reproducing the paper's point that the overwhelming
    amount of data transfer is unchecked DMA — and delivers the frame to a
    packet sink.

    Draining is modelled in simulated time: each frame occupies the 1 Gb/s
    wire for (bytes + preamble/IFG overhead) * 8 ns, converted to CPU
    cycles. [sync] lazily advances the device up to the current CPU clock,
    writing back DD status bits and TDH exactly as the hardware's
    writeback would; it stands in for the interrupt path. An optional
    stall process (flow-control pauses) produces the ring-full episodes
    behind the paper's latency outliers.

    TX is multi-queue (up to {!Regs.max_tx_queues} rings, 82574-style
    register blocks at a fixed stride) over the single shared wire:
    per-CPU senders each own a ring, and the drain engine interleaves
    completed frames in doorbell order. Queue 0's registers are the
    classic single-queue ones, so the pre-SMP driver — and its simulated
    behaviour — is unchanged. Queues 1+ complete to a per-queue MSI-X
    style interrupt latch instead of the shared ICR cause. *)

type frame = { data : string; at_cycle : int }

(** One TX descriptor ring (queue). *)
type txq = {
  mutable q_base : int;  (** virtual (direct-map) ring address *)
  mutable q_entries : int;
  mutable q_tdh : int;
  mutable q_tdt : int;
  mutable q_post : int array;
      (** cycle at which each ring slot was posted (doorbell time): a
          frame cannot occupy the wire before it exists *)
  mutable q_irq : bool;  (** per-queue completion latch (MSI-X vector) *)
  mutable q_frames : int;
  mutable q_bytes : int;
}

type t = {
  kernel : Kernel.t;
  name : string;
  regs : (int, int) Hashtbl.t;
  mutable mmio_base : int;
  (* DMA/drain state *)
  txqs : txq array;  (** [Regs.max_tx_queues] rings; index 0 = classic *)
  mutable busy_until : int;  (** device cycle at which the wire frees up *)
  mutable link_up : bool;
  (* RX state *)
  mutable rx_ring_base : int;
  mutable rx_ring_entries : int;
  mutable rdh : int;  (** next slot the device fills *)
  mutable rdt : int;  (** first slot NOT available to the device *)
  mutable rx_frames : int;
  mutable rx_bytes : int;
  mutable rx_dropped : int;
  (* stall (flow-control pause) process *)
  mutable stall_prob : float;  (** per-frame probability of a pause *)
  mutable stall_cycles : int;
  rng : Machine.Rng.t;
  (* sink *)
  mutable tx_frames : int;
  mutable tx_bytes : int;
  recent : frame array;  (** circular, [recent_next] is the next slot *)
  mutable recent_next : int;
  mutable recent_count : int;
}

let gbit_per_s = 1.0 (* line rate *)

(** Wire time of a frame in CPU cycles: (preamble 8 + frame + IFG 12 +
    FCS 4) bytes at line rate. *)
let wire_cycles t bytes =
  let ns = float_of_int (bytes + 24) *. 8.0 /. gbit_per_s in
  int_of_float (ns *. (Kernel.machine t.kernel).Machine.Model.p.freq_ghz)

let reg_read t off = try Hashtbl.find t.regs off with Not_found -> 0
let reg_write t off v = Hashtbl.replace t.regs off v

let now t = Machine.Model.cycles (Kernel.machine t.kernel)

let queue t q = t.txqs.(q)

let q_configured q = q.q_base <> 0 && q.q_entries > 0

let ring_configured ?(q = 0) t = q_configured t.txqs.(q)

let q_posted q =
  if Array.length q.q_post > q.q_tdh then q.q_post.(q.q_tdh) else 0

(* The queue whose head frame hit the doorbell earliest goes on the wire
   next (tie: lowest queue index) — round-robin arbitration in post
   order. With only queue 0 active this always selects queue 0, making
   the drain sequence identical to the single-queue device. *)
let pick_pending t =
  let best = ref (-1) and best_posted = ref max_int in
  Array.iteri
    (fun i q ->
      if q_configured q && q.q_tdh <> q.q_tdt then begin
        let p = q_posted q in
        if p < !best_posted then begin
          best := i;
          best_posted := p
        end
      end)
    t.txqs;
  !best

(** Advance the device: complete every descriptor whose wire time has
    passed by [upto], writing DD back into the ring via DMA. *)
let sync ?upto t =
  let upto = match upto with Some c -> c | None -> now t in
  let continue = ref (reg_read t Regs.tctl land Regs.tctl_en <> 0) in
  while !continue do
    let qi = pick_pending t in
    if qi < 0 then continue := false
    else begin
      let q = t.txqs.(qi) in
      let desc = q.q_base + (q.q_tdh * Regs.desc_size) in
      let buf =
        Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_addr_off) ~size:8
      in
      let len =
        Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_len_off) ~size:2
      in
      let posted = q_posted q in
      let start = max t.busy_until posted in
      (* random flow-control pause before this frame *)
      let pause =
        if t.stall_prob > 0.0 && Machine.Rng.flip t.rng t.stall_prob then
          t.stall_cycles
        else 0
      in
      let finish = start + pause + wire_cycles t len in
      if finish > upto then continue := false
      else begin
        (* DMA the payload out and deliver to the sink *)
        let data =
          if len > 0 && buf <> 0 then Kernel.read_string t.kernel ~addr:buf ~len
          else ""
        in
        t.tx_frames <- t.tx_frames + 1;
        t.tx_bytes <- t.tx_bytes + len;
        q.q_frames <- q.q_frames + 1;
        q.q_bytes <- q.q_bytes + len;
        (* bounded sink: overwrite the oldest slot; completion runs once
           per frame, so this must not churn a list *)
        t.recent.(t.recent_next) <- { data; at_cycle = finish };
        t.recent_next <- (t.recent_next + 1) mod Array.length t.recent;
        if t.recent_count < Array.length t.recent then
          t.recent_count <- t.recent_count + 1;
        t.busy_until <- finish;
        (* status writeback: set DD *)
        let sta =
          Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_sta_off) ~size:1
        in
        Kernel.dma_write t.kernel ~addr:(desc + Regs.desc_sta_off) ~size:1
          (sta lor Regs.sta_dd);
        q.q_tdh <- (q.q_tdh + 1) mod q.q_entries;
        q.q_irq <- true;
        if qi = 0 then
          reg_write t Regs.icr (reg_read t Regs.icr lor Regs.icr_txdw)
      end
    end
  done

(** Earliest cycle by which at least one more descriptor of queue [q]
    will complete — where a blocked sender should wake up. *)
let next_completion_cycle ?(q = 0) t =
  let q = t.txqs.(q) in
  if q.q_tdh = q.q_tdt then now t
  else begin
    let desc = q.q_base + (q.q_tdh * Regs.desc_size) in
    let len =
      Kernel.dma_read t.kernel ~addr:(desc + Regs.desc_len_off) ~size:2
    in
    let posted = q_posted q in
    max (max t.busy_until posted) (now t) + wire_cycles t len
  end

(* TX queue register blocks: [Regs.tdbal + q * Regs.txq_stride]. *)
let txq_of_off off =
  if off >= Regs.tdbal && off < Regs.tdbal + (Regs.max_tx_queues * Regs.txq_stride)
  then begin
    let q = (off - Regs.tdbal) / Regs.txq_stride in
    Some (q, off - (q * Regs.txq_stride))
  end
  else None

let handle_read t off size =
  ignore size;
  match txq_of_off off with
  | Some (qi, sub) ->
    let q = t.txqs.(qi) in
    if sub = Regs.tdh then begin
      sync t;
      q.q_tdh
    end
    else if sub = Regs.tdt then q.q_tdt
    else reg_read t off
  | None ->
    if off = Regs.rdh then t.rdh
    else if off = Regs.rdt then t.rdt
    else if off = Regs.status then
      reg_read t Regs.status lor (if t.link_up then Regs.status_lu else 0)
    else if off = Regs.icr then begin
      (* read-to-clear *)
      let v = reg_read t Regs.icr in
      reg_write t Regs.icr 0;
      v
    end
    else reg_read t off

let reset_txq q =
  q.q_base <- 0;
  q.q_entries <- 0;
  q.q_tdh <- 0;
  q.q_tdt <- 0;
  q.q_post <- [||];
  q.q_irq <- false

let handle_write t off size v =
  ignore size;
  match txq_of_off off with
  | Some (qi, sub) ->
    let q = t.txqs.(qi) in
    if sub = Regs.tdt then begin
      if q_configured q then begin
        let now_c = now t in
        let v = v mod q.q_entries in
        (* stamp the post time of every newly published slot *)
        let i = ref q.q_tdt in
        while !i <> v do
          q.q_post.(!i) <- now_c;
          i := (!i + 1) mod q.q_entries
        done;
        q.q_tdt <- v;
        reg_write t off q.q_tdt;
        sync t
      end
    end
    else if sub = Regs.tdbal then begin
      reg_write t off v;
      q.q_base <- v
    end
    else if sub = Regs.tdlen then begin
      reg_write t off v;
      q.q_entries <- v / Regs.desc_size;
      q.q_post <- Array.make (max 1 q.q_entries) 0
    end
    else if sub = Regs.tdh then begin
      q.q_tdh <- v;
      reg_write t off v
    end
    else reg_write t off v
  | None ->
    if off = Regs.rdbal then begin
      reg_write t off v;
      t.rx_ring_base <- v
    end
    else if off = Regs.rdlen then begin
      reg_write t off v;
      t.rx_ring_entries <- v / Regs.desc_size
    end
    else if off = Regs.rdh then begin
      t.rdh <- v;
      reg_write t off v
    end
    else if off = Regs.rdt then begin
      if t.rx_ring_entries > 0 then t.rdt <- v mod t.rx_ring_entries
      else t.rdt <- v;
      reg_write t off t.rdt
    end
    else if off = Regs.ctrl && v land Regs.ctrl_rst <> 0 then begin
      (* device reset *)
      Hashtbl.reset t.regs;
      Array.iter reset_txq t.txqs;
      t.busy_until <- 0
    end
    else reg_write t off v

(** Create the device and map its BAR; returns the device. The driver
    learns the BAR's virtual base from [mmio_base]. *)
let create ?(name = "e1000e-sim") ?(stall_prob = 0.0)
    ?(stall_cycles = 2_000_000) ?(seed = 7) kernel =
  let t =
    {
      kernel;
      name;
      regs = Hashtbl.create 64;
      mmio_base = 0;
      txqs =
        Array.init Regs.max_tx_queues (fun _ ->
            {
              q_base = 0;
              q_entries = 0;
              q_tdh = 0;
              q_tdt = 0;
              q_post = [||];
              q_irq = false;
              q_frames = 0;
              q_bytes = 0;
            });
      busy_until = 0;
      link_up = true;
      rx_ring_base = 0;
      rx_ring_entries = 0;
      rdh = 0;
      rdt = 0;
      rx_frames = 0;
      rx_bytes = 0;
      rx_dropped = 0;
      stall_prob;
      stall_cycles;
      rng = Machine.Rng.create seed;
      tx_frames = 0;
      tx_bytes = 0;
      recent = Array.make 32 { data = ""; at_cycle = 0 };
      recent_next = 0;
      recent_count = 0;
    }
  in
  let region =
    Kernel.ioremap kernel ~name ~size:Regs.bar_size
      ~read:(fun off size -> handle_read t off size)
      ~write:(fun off size v -> handle_write t off size v)
  in
  t.mmio_base <- region.Kernel.mmio_virt;
  t

let mmio_base t = t.mmio_base

(** True when the device has an interrupt cause latched (e.g. TX
    writeback). The kernel checks this cheaply (MSI delivery) before
    running the driver's handler, which is what clears ICR. *)
let pending_interrupt t =
  sync t;
  reg_read t Regs.icr <> 0

(** Per-queue completion latch (the MSI-X vector a multi-queue sender
    polls); separate from the shared legacy ICR cause so per-CPU queues
    never swallow each other's interrupts through read-to-clear. *)
let txq_irq_pending t ~q =
  sync t;
  t.txqs.(q).q_irq

let ack_txq_irq t ~q = t.txqs.(q).q_irq <- false

let tx_frames t = t.tx_frames
let tx_bytes t = t.tx_bytes
let txq_frames t ~q = t.txqs.(q).q_frames
let txq_bytes t ~q = t.txqs.(q).q_bytes
(* newest-first list of the last frames delivered to the sink *)
let recent_frames t =
  let cap = Array.length t.recent in
  List.init t.recent_count (fun i ->
      t.recent.((t.recent_next - 1 - i + (2 * cap)) mod cap))
let set_stall t ~prob ~cycles =
  t.stall_prob <- prob;
  t.stall_cycles <- cycles
let set_link t up = t.link_up <- up

(* ------------------------------------------------------------------ *)
(* receive side *)

let rx_configured t =
  t.rx_ring_base <> 0 && t.rx_ring_entries > 0
  && reg_read t Regs.rctl land Regs.rctl_en <> 0

(** Deliver an incoming frame from the (simulated) wire: DMA the payload
    into the next posted receive buffer, write back length and
    DD|EOP status, advance RDH and latch an RX interrupt cause. Frames
    arriving with no buffer available are dropped, like hardware without
    flow control. Returns true if delivered. *)
let rx_inject t (data : string) : bool =
  if (not (rx_configured t)) || not t.link_up then begin
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else if t.rdh = t.rdt then begin
    (* no buffers posted *)
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else begin
    let desc = t.rx_ring_base + (t.rdh * Regs.desc_size) in
    let buf =
      Kernel.dma_read t.kernel ~addr:(desc + Regs.rxd_addr_off) ~size:8
    in
    let len = String.length data in
    Kernel.write_string t.kernel ~addr:buf data;
    Kernel.dma_write t.kernel ~addr:(desc + Regs.rxd_len_off) ~size:2 len;
    Kernel.dma_write t.kernel ~addr:(desc + Regs.rxd_sta_off) ~size:1
      (Regs.sta_dd lor Regs.sta_eop);
    t.rdh <- (t.rdh + 1) mod t.rx_ring_entries;
    t.rx_frames <- t.rx_frames + 1;
    t.rx_bytes <- t.rx_bytes + len;
    reg_write t Regs.icr (reg_read t Regs.icr lor Regs.icr_rxt0);
    true
  end

let rx_frames t = t.rx_frames
let rx_dropped t = t.rx_dropped

(** Free descriptor slots of queue [q] as the device sees them right
    now. *)
let free_slots ?(q = 0) t =
  sync t;
  let q = t.txqs.(q) in
  if not (q_configured q) then 0
  else (q.q_tdh - q.q_tdt - 1 + q.q_entries) mod q.q_entries
