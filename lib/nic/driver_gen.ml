(** Generator for the simulated e1000e network driver, written in KIR.

    This stands in for the ~19k-line in-tree e1000e driver the paper
    builds with and without the CARAT KOP compiler (§4). What matters for
    the evaluation is the *memory-reference pattern of the transmit path*:
    reads of adapter state, writes of transfer descriptors into the ring,
    ring-index updates, statistics, a header sniff, and the MMIO doorbell
    — each of which receives a guard after transformation. The DMA of the
    payload itself is done by the device and is never guarded.

    The module is generated un-transformed; callers run the CARAT KOP
    pipeline (or not, for the baseline) on the result. Generate two
    separate instances for an A/B pair — the transform mutates in place.

    [module_scale] pads the module with additional realistic cold
    functions (EEPROM/PHY/diagnostic style code) so that static transform
    accounting (the [tab-guards] experiment) operates on a driver of
    non-trivial size; the hot path is unaffected. *)

open Kir.Types
module Builder = Kir.Builder

(* adapter field offsets *)
let off_mmio = 0
let off_ring = 8
let off_entries = 16
let off_next_use = 24
let off_next_clean = 32
let off_tx_packets = 40
let off_tx_bytes = 48
let off_tx_errors = 56
let off_tx_busy = 64
let off_lock = 72
let off_mac = 80
(* RX side *)
let off_rx_ring = 96
let off_rx_entries = 104
let off_rx_next = 112
let off_rx_packets = 120
let off_rx_bytes = 128
let off_rx_bufsz = 136
let adapter_size = 160

let banner = "e1000e-sim: Intel(R) PRO/1000 network driver (KIR build)\n"
let unload_msg = "e1000e-sim: driver unloaded\n"

(* fixed register names used across blocks inside generated functions *)
let r_clean = "%rclean"
let r_use = "%ruse"
let r_count = "%rcount"
let r_sum = "%rsum"

let adapter = Sym "adapter"

let fld b off = Builder.gep b adapter (Imm off) ~scale:1

let load_fld b off = Builder.load b I64 (fld b off)
let store_fld b off v = Builder.store b I64 v (fld b off)

let declare_kernel_api b =
  List.iter
    (fun (name, arity) -> Builder.declare_extern b name ~arity)
    [
      ("printk", 2);
      ("memcpy", 3);
      ("memset", 3);
      ("kmalloc", 1);
      ("spin_lock", 1);
      ("spin_unlock", 1);
      ("get_cycles", 0);
      ("ndelay", 1);
    ]

let gen_io_helpers b =
  (* e1000e_io_write(off, val): MMIO store through the BAR mapping *)
  ignore
    (Builder.start_func b "e1000e_io_write"
       ~params:[ ("%off", I64); ("%val", I64) ]
       ~ret:None);
  let base = load_fld b off_mmio in
  let addr = Builder.gep b base (Reg "%off") ~scale:1 in
  Builder.store b I32 (Reg "%val") addr;
  Builder.ret b None;
  (* e1000e_io_read(off) *)
  ignore
    (Builder.start_func b "e1000e_io_read" ~params:[ ("%off", I64) ]
       ~ret:(Some I64));
  let base = load_fld b off_mmio in
  let addr = Builder.gep b base (Reg "%off") ~scale:1 in
  let v = Builder.load b I32 addr in
  Builder.ret b (Some v)

let gen_probe b =
  (* e1000e_probe(mmio_base, ring_entries): ring_entries must be a power
     of two (the index mask arithmetic relies on it, as in the real
     driver) *)
  ignore
    (Builder.start_func b "e1000e_probe"
       ~params:[ ("%mmio", I64); ("%entries", I64) ]
       ~ret:(Some I64));
  store_fld b off_mmio (Reg "%mmio");
  let ring_bytes = Builder.mul b I64 (Reg "%entries") (Imm Regs.desc_size) in
  let ring =
    match Builder.call b "kmalloc" [ ring_bytes ] with
    | Some v -> v
    | None -> assert false
  in
  store_fld b off_ring ring;
  store_fld b off_entries (Reg "%entries");
  store_fld b off_next_use (Imm 0);
  store_fld b off_next_clean (Imm 0);
  store_fld b off_tx_packets (Imm 0);
  store_fld b off_tx_bytes (Imm 0);
  store_fld b off_tx_errors (Imm 0);
  store_fld b off_tx_busy (Imm 0);
  (* zero the descriptor ring *)
  Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%entries") ~step:(Imm 1)
    (fun i ->
      let d = Builder.gep b ring i ~scale:Regs.desc_size in
      Builder.store b I64 (Imm 0) d;
      let d8 = Builder.gep b d (Imm 8) ~scale:1 in
      Builder.store b I64 (Imm 0) d8);
  (* program the device *)
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdbal; ring ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdbah; Imm 0 ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdlen; ring_bytes ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdh; Imm 0 ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdt; Imm 0 ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tctl; Imm Regs.tctl_en ];
  Builder.ret b (Some (Imm 0))

let gen_clean_tx b =
  ignore (Builder.start_func b "e1000e_clean_tx" ~params:[] ~ret:(Some I64));
  let ring = load_fld b off_ring in
  let entries = load_fld b off_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = load_fld b off_next_use in
  let clean0 = load_fld b off_next_clean in
  Builder.mov_to b r_clean I64 clean0;
  Builder.mov_to b r_count I64 (Imm 0);
  let head = Builder.new_block b ~hint:"clean_head" () in
  let chk = Builder.new_block b ~hint:"clean_chk" () in
  let advance = Builder.new_block b ~hint:"clean_adv" () in
  let done_ = Builder.new_block b ~hint:"clean_done" () in
  Builder.br b head;
  Builder.position_at b head;
  let pending = Builder.icmp b Ne I64 (Reg r_clean) use in
  Builder.cond_br b pending ~if_true:chk ~if_false:done_;
  Builder.position_at b chk;
  let desc = Builder.gep b ring (Reg r_clean) ~scale:Regs.desc_size in
  let sta_addr = Builder.gep b desc (Imm Regs.desc_sta_off) ~scale:1 in
  let sta = Builder.load b I8 sta_addr in
  let dd = Builder.and_ b I64 sta (Imm Regs.sta_dd) in
  let is_done = Builder.icmp b Ne I64 dd (Imm 0) in
  Builder.cond_br b is_done ~if_true:advance ~if_false:done_;
  Builder.position_at b advance;
  Builder.store b I8 (Imm 0) sta_addr;
  let c1 = Builder.add b I64 (Reg r_clean) (Imm 1) in
  let c1m = Builder.and_ b I64 c1 mask in
  Builder.mov_to b r_clean I64 c1m;
  let n1 = Builder.add b I64 (Reg r_count) (Imm 1) in
  Builder.mov_to b r_count I64 n1;
  Builder.br b head;
  Builder.position_at b done_;
  store_fld b off_next_clean (Reg r_clean);
  Builder.ret b (Some (Reg r_count))

let gen_tx_avail b =
  ignore (Builder.start_func b "e1000e_tx_avail" ~params:[] ~ret:(Some I64));
  let entries = load_fld b off_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = load_fld b off_next_use in
  let clean = load_fld b off_next_clean in
  let diff = Builder.sub b I64 clean use in
  let diff1 = Builder.sub b I64 diff (Imm 1) in
  let wrapped = Builder.add b I64 diff1 entries in
  let avail = Builder.and_ b I64 wrapped mask in
  Builder.ret b (Some avail)

let gen_xmit b =
  (* e1000e_xmit_frame(buf, len) -> 0 ok | -1 ring full.

     The hot path does NOT clean the ring: completion processing is
     interrupt work (e1000e_irq_handler -> e1000e_clean_tx). Only when
     the ring looks full does xmit try an inline clean before reporting
     BUSY — the same shape as the real driver's maybe_stop_tx path. *)
  ignore
    (Builder.start_func b "e1000e_xmit_frame"
       ~params:[ ("%buf", I64); ("%len", I64) ]
       ~ret:(Some I64));
  let avail =
    match Builder.call b "e1000e_tx_avail" [] with
    | Some v -> v
    | None -> assert false
  in
  let full = Builder.icmp b Eq I64 avail (Imm 0) in
  let slow = Builder.new_block b ~hint:"tx_slow" () in
  let busy = Builder.new_block b ~hint:"tx_busy" () in
  let go = Builder.new_block b ~hint:"tx_go" () in
  Builder.cond_br b full ~if_true:slow ~if_false:go;
  (* slow path: clean, re-check *)
  Builder.position_at b slow;
  ignore (Builder.call b ~want_result:false "e1000e_clean_tx" []);
  let avail2 =
    match Builder.call b "e1000e_tx_avail" [] with
    | Some v -> v
    | None -> assert false
  in
  let still_full = Builder.icmp b Eq I64 avail2 (Imm 0) in
  Builder.cond_br b still_full ~if_true:busy ~if_false:go;
  Builder.position_at b busy;
  let nbusy = load_fld b off_tx_busy in
  let nbusy1 = Builder.add b I64 nbusy (Imm 1) in
  store_fld b off_tx_busy nbusy1;
  Builder.ret b (Some (Imm (-1)));
  Builder.position_at b go;
  let ring = load_fld b off_ring in
  let entries = load_fld b off_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = load_fld b off_next_use in
  (* fill the legacy descriptor *)
  let desc = Builder.gep b ring use ~scale:Regs.desc_size in
  Builder.store b I64 (Reg "%buf") desc;
  let len_addr = Builder.gep b desc (Imm Regs.desc_len_off) ~scale:1 in
  Builder.store b I16 (Reg "%len") len_addr;
  let cso_addr = Builder.gep b desc (Imm Regs.desc_cso_off) ~scale:1 in
  Builder.store b I8 (Imm 0) cso_addr;
  let cmd_addr = Builder.gep b desc (Imm Regs.desc_cmd_off) ~scale:1 in
  Builder.store b I8
    (Imm (Regs.cmd_eop lor Regs.cmd_ifcs lor Regs.cmd_rs))
    cmd_addr;
  let sta_addr = Builder.gep b desc (Imm Regs.desc_sta_off) ~scale:1 in
  Builder.store b I8 (Imm 0) sta_addr;
  (* sniff the EtherType for stats, as the real xmit path reads headers *)
  let et_addr = Builder.gep b (Reg "%buf") (Imm 12) ~scale:1 in
  let _ethertype = Builder.load b I16 et_addr in
  (* advance the producer index *)
  let use1 = Builder.add b I64 use (Imm 1) in
  let use1m = Builder.and_ b I64 use1 mask in
  store_fld b off_next_use use1m;
  (* statistics *)
  let pk = load_fld b off_tx_packets in
  let pk1 = Builder.add b I64 pk (Imm 1) in
  store_fld b off_tx_packets pk1;
  let by = load_fld b off_tx_bytes in
  let by1 = Builder.add b I64 by (Reg "%len") in
  store_fld b off_tx_bytes by1;
  (* doorbell *)
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.tdt; use1m ];
  Builder.ret b (Some (Imm 0))

let gen_irq_handler b =
  ignore
    (Builder.start_func b "e1000e_irq_handler" ~params:[] ~ret:(Some I64));
  let icr =
    match Builder.call b "e1000e_io_read" [ Imm Regs.icr ] with
    | Some v -> v
    | None -> assert false
  in
  let txdw = Builder.and_ b I64 icr (Imm Regs.icr_txdw) in
  let c = Builder.icmp b Ne I64 txdw (Imm 0) in
  Builder.if_then b c ~then_:(fun () ->
      ignore (Builder.call b ~want_result:false "e1000e_clean_tx" []));
  let rxt = Builder.and_ b I64 icr (Imm Regs.icr_rxt0) in
  let cr = Builder.icmp b Ne I64 rxt (Imm 0) in
  Builder.if_then b cr ~then_:(fun () ->
      ignore (Builder.call b ~want_result:false "e1000e_poll_rx" [ Imm 32 ]));
  Builder.ret b (Some icr)

let gen_self_test b =
  ignore (Builder.start_func b "e1000e_self_test" ~params:[] ~ret:(Some I64));
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.scratch; Imm 0xA55A ];
  let v =
    match Builder.call b "e1000e_io_read" [ Imm Regs.scratch ] with
    | Some v -> v
    | None -> assert false
  in
  let ok = Builder.icmp b Eq I64 v (Imm 0xA55A) in
  let r = Builder.select b ok (Imm 0) (Imm (-1)) in
  Builder.ret b (Some r)

let gen_set_mac b =
  (* e1000e_set_mac(hi, lo): hi = first 2 bytes, lo = last 4 *)
  ignore
    (Builder.start_func b "e1000e_set_mac"
       ~params:[ ("%hi", I64); ("%lo", I64) ]
       ~ret:None);
  let mac0 = fld b off_mac in
  Builder.store b I16 (Reg "%hi") mac0;
  let mac2 = fld b (off_mac + 2) in
  Builder.store b I32 (Reg "%lo") mac2;
  Builder.ret b None

let gen_get_stats b =
  ignore
    (Builder.start_func b "e1000e_get_stats" ~params:[ ("%which", I64) ]
       ~ret:(Some I64));
  let pkts = Builder.new_block b ~hint:"st_pkts" () in
  let bytes = Builder.new_block b ~hint:"st_bytes" () in
  let errors = Builder.new_block b ~hint:"st_errors" () in
  let busy = Builder.new_block b ~hint:"st_busy" () in
  let other = Builder.new_block b ~hint:"st_other" () in
  let rxp = Builder.new_block b ~hint:"st_rxp" () in
  let rxb = Builder.new_block b ~hint:"st_rxb" () in
  Builder.switch b (Reg "%which")
    [ (0, pkts); (1, bytes); (2, errors); (3, busy); (4, rxp); (5, rxb) ]
    ~default:other;
  Builder.position_at b rxp;
  let v = load_fld b off_rx_packets in
  Builder.ret b (Some v);
  Builder.position_at b rxb;
  let v = load_fld b off_rx_bytes in
  Builder.ret b (Some v);
  Builder.position_at b pkts;
  let v = load_fld b off_tx_packets in
  Builder.ret b (Some v);
  Builder.position_at b bytes;
  let v = load_fld b off_tx_bytes in
  Builder.ret b (Some v);
  Builder.position_at b errors;
  let v = load_fld b off_tx_errors in
  Builder.ret b (Some v);
  Builder.position_at b busy;
  let v = load_fld b off_tx_busy in
  Builder.ret b (Some v);
  Builder.position_at b other;
  Builder.ret b (Some (Imm (-1)))

let gen_checksum b =
  (* e1000e_checksum(buf, len): byte-wise sum — a guarded-load loop whose
     address is *not* loop-invariant (contrast for the hoist ablation) *)
  ignore
    (Builder.start_func b "e1000e_checksum"
       ~params:[ ("%buf", I64); ("%len", I64) ]
       ~ret:(Some I64));
  Builder.mov_to b r_sum I64 (Imm 0);
  Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%len") ~step:(Imm 1)
    (fun i ->
      let a = Builder.gep b (Reg "%buf") i ~scale:1 in
      let byte = Builder.load b I8 a in
      let s = Builder.add b I64 (Reg r_sum) byte in
      Builder.mov_to b r_sum I64 s);
  Builder.ret b (Some (Reg r_sum))

let gen_eeprom b =
  (* e1000e_eeprom_read(word): checksum a fixed EEPROM window — the guard
     on @eeprom's base is loop-invariant, so the hoist ablation can lift
     it *)
  ignore
    (Builder.start_func b "e1000e_eeprom_read" ~params:[ ("%word", I64) ]
       ~ret:(Some I64));
  let base = Builder.gep b (Sym "eeprom") (Reg "%word") ~scale:2 in
  Builder.mov_to b r_sum I64 (Imm 0);
  Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 8) ~step:(Imm 1) (fun _i ->
      let v = Builder.load b I16 base in
      let s = Builder.add b I64 (Reg r_sum) v in
      Builder.mov_to b r_sum I64 s);
  Builder.ret b (Some (Reg r_sum))

let gen_setup_rx b =
  (* e1000e_setup_rx(entries, bufsz): allocate the RX ring and one
     receive buffer per slot, program the device, enable the receiver.
     entries must be a power of two. *)
  ignore
    (Builder.start_func b "e1000e_setup_rx"
       ~params:[ ("%entries", I64); ("%bufsz", I64) ]
       ~ret:(Some I64));
  let ring_bytes = Builder.mul b I64 (Reg "%entries") (Imm Regs.desc_size) in
  let ring =
    match Builder.call b "kmalloc" [ ring_bytes ] with
    | Some v -> v
    | None -> assert false
  in
  store_fld b off_rx_ring ring;
  store_fld b off_rx_entries (Reg "%entries");
  store_fld b off_rx_next (Imm 0);
  store_fld b off_rx_packets (Imm 0);
  store_fld b off_rx_bytes (Imm 0);
  store_fld b off_rx_bufsz (Reg "%bufsz");
  (* one buffer per descriptor *)
  Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%entries") ~step:(Imm 1)
    (fun i ->
      let buf =
        match Builder.call b "kmalloc" [ Reg "%bufsz" ] with
        | Some v -> v
        | None -> assert false
      in
      let d = Builder.gep b ring i ~scale:Regs.desc_size in
      Builder.store b I64 buf d;
      let sta = Builder.gep b d (Imm Regs.rxd_sta_off) ~scale:1 in
      Builder.store b I8 (Imm 0) sta);
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rdbal; ring ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rdlen; ring_bytes ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rdh; Imm 0 ];
  (* hand the device all but one buffer, as the real driver does *)
  let last = Builder.sub b I64 (Reg "%entries") (Imm 1) in
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rdt; last ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rctl; Imm Regs.rctl_en ];
  Builder.ret b (Some (Imm 0))

let gen_poll_rx b =
  (* e1000e_poll_rx(budget) -> frames processed. NAPI-style polling:
     consume DD descriptors, sniff the EtherType (a guarded read of the
     payload the device DMA'd in), account, recycle the buffer. *)
  ignore
    (Builder.start_func b "e1000e_poll_rx" ~params:[ ("%budget", I64) ]
       ~ret:(Some I64));
  let ring = load_fld b off_rx_ring in
  let entries = load_fld b off_rx_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let next0 = load_fld b off_rx_next in
  Builder.mov_to b "%rxnext" I64 next0;
  Builder.mov_to b r_count I64 (Imm 0);
  let head = Builder.new_block b ~hint:"rx_head" () in
  let chk = Builder.new_block b ~hint:"rx_chk" () in
  let work = Builder.new_block b ~hint:"rx_work" () in
  let done_ = Builder.new_block b ~hint:"rx_done" () in
  Builder.br b head;
  Builder.position_at b head;
  let more = Builder.icmp b Slt I64 (Reg r_count) (Reg "%budget") in
  Builder.cond_br b more ~if_true:chk ~if_false:done_;
  Builder.position_at b chk;
  let desc = Builder.gep b ring (Reg "%rxnext") ~scale:Regs.desc_size in
  let sta_addr = Builder.gep b desc (Imm Regs.rxd_sta_off) ~scale:1 in
  let sta = Builder.load b I8 sta_addr in
  let dd = Builder.and_ b I64 sta (Imm Regs.sta_dd) in
  let ready = Builder.icmp b Ne I64 dd (Imm 0) in
  Builder.cond_br b ready ~if_true:work ~if_false:done_;
  Builder.position_at b work;
  let len_addr = Builder.gep b desc (Imm Regs.rxd_len_off) ~scale:1 in
  let len = Builder.load b I16 len_addr in
  let buf = Builder.load b I64 desc in
  (* touch the received headers, as eth_type_trans does *)
  let et_addr = Builder.gep b buf (Imm 12) ~scale:1 in
  let _ethertype = Builder.load b I16 et_addr in
  (* account *)
  let pk = load_fld b off_rx_packets in
  let pk1 = Builder.add b I64 pk (Imm 1) in
  store_fld b off_rx_packets pk1;
  let by = load_fld b off_rx_bytes in
  let by1 = Builder.add b I64 by len in
  store_fld b off_rx_bytes by1;
  (* recycle: clear status, hand the slot back *)
  Builder.store b I8 (Imm 0) sta_addr;
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rdt; Reg "%rxnext" ];
  let nx = Builder.add b I64 (Reg "%rxnext") (Imm 1) in
  let nxm = Builder.and_ b I64 nx mask in
  Builder.mov_to b "%rxnext" I64 nxm;
  let c1 = Builder.add b I64 (Reg r_count) (Imm 1) in
  Builder.mov_to b r_count I64 c1;
  Builder.br b head;
  Builder.position_at b done_;
  store_fld b off_rx_next (Reg "%rxnext");
  Builder.ret b (Some (Reg r_count))

let gen_diag b =
  (* e1000e_diag_latency(): time one posted register write with the
     cycle counter — a realistic diagnostic that needs the privileged
     rdtsc builtin (the §5 intrinsic-guarding extension governs it) *)
  ignore
    (Builder.start_func b "e1000e_diag_latency" ~params:[] ~ret:(Some I64));
  let t0 =
    match Builder.intrinsic b ~want_result:true "rdtsc" [] with
    | Some v -> v
    | None -> assert false
  in
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.scratch; Imm 0x1234 ];
  let t1 =
    match Builder.intrinsic b ~want_result:true "rdtsc" [] with
    | Some v -> v
    | None -> assert false
  in
  let dt = Builder.sub b I64 t1 t0 in
  Builder.ret b (Some dt)

let gen_lifecycle b =
  ignore (Builder.start_func b "init_module" ~params:[] ~ret:(Some I64));
  Builder.call_unit b "printk"
    [ Sym "drv_banner"; Imm (String.length banner) ];
  Builder.ret b (Some (Imm 0));
  ignore (Builder.start_func b "cleanup_module" ~params:[] ~ret:(Some I64));
  Builder.call_unit b "printk"
    [ Sym "drv_unload"; Imm (String.length unload_msg) ];
  Builder.ret b (Some (Imm 0))

(** A deliberately rogue entry point: reads an arbitrary address and
    returns the value — the "debug backdoor" a malicious or buggy module
    might carry. Under CARAT KOP, calling it on a forbidden address trips
    the guard. *)
let gen_rogue_peek b =
  ignore
    (Builder.start_func b "e1000e_debug_peek" ~params:[ ("%addr", I64) ]
       ~ret:(Some I64));
  let v = Builder.load b I64 (Reg "%addr") in
  Builder.ret b (Some v);
  ignore
    (Builder.start_func b "e1000e_debug_poke"
       ~params:[ ("%addr", I64); ("%val", I64) ]
       ~ret:(Some I64));
  Builder.store b I64 (Reg "%val") (Reg "%addr");
  Builder.ret b (Some (Imm 0))

(** Cold padding functions that emulate the bulk of a real driver
    (PHY management, diagnostics, register dump tables). Never called on
    the hot path; they exist so the static transform statistics operate
    on a driver of realistic size. *)
let gen_cold_padding b ~scale =
  for k = 0 to scale - 1 do
    let name = Printf.sprintf "e1000e_phy_op_%d" k in
    ignore
      (Builder.start_func b name ~params:[ ("%arg", I64) ] ~ret:(Some I64));
    let scratch = Builder.alloca b 64 in
    Builder.mov_to b r_sum I64 (Reg "%arg");
    Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 8) ~step:(Imm 1) (fun i ->
        let slot = Builder.gep b scratch i ~scale:8 in
        let x = Builder.mul b I64 (Reg r_sum) (Imm (2 * k + 3)) in
        let x2 = Builder.xor b I64 x (Imm (0x9e37 + k)) in
        Builder.store b I64 x2 slot;
        let back = Builder.load b I64 slot in
        let folded = Builder.add b I64 back i in
        Builder.mov_to b r_sum I64 folded);
    let wrapped = Builder.and_ b I64 (Reg r_sum) (Imm 0xFFFF) in
    Builder.ret b (Some wrapped)
  done

(* ------------------------------------------------------------------ *)
(* multi-queue TX (per-CPU queues over the one device)

   Per-queue adapter state lives in the [adapter_mq] global, one
   64-byte block per queue, accessed relative to a computed queue base —
   the same memory-reference pattern as the classic path, so the
   transform guards it identically. Queue [q]'s device registers sit at
   the classic offsets plus [q * Regs.txq_stride]. These functions are
   only generated for multi-queue builds ([tx_queues > 1]); the default
   module is byte-identical to the single-queue driver. *)

let mq_stride = 64
let mqf_ring = 0
let mqf_entries = 8
let mqf_next_use = 16
let mqf_next_clean = 24
let mqf_tx_packets = 32
let mqf_tx_bytes = 40
let mqf_tx_busy = 48

(* base of queue %q's adapter block *)
let mq_base b = Builder.gep b (Sym "adapter_mq") (Reg "%q") ~scale:mq_stride

let mq_fld b qb off = Builder.gep b qb (Imm off) ~scale:1
let mq_load b qb off = Builder.load b I64 (mq_fld b qb off)
let mq_store b qb off v = Builder.store b I64 v (mq_fld b qb off)

(* queue %q's register offset for classic register [reg] *)
let mq_reg b reg =
  let skew = Builder.mul b I64 (Reg "%q") (Imm Regs.txq_stride) in
  Builder.add b I64 skew (Imm reg)

let gen_setup_tx_queue b =
  (* e1000e_setup_tx_queue(q, entries): allocate and program queue q's
     ring (entries must be a power of two). TCTL enable is global and
     stays with e1000e_probe. *)
  ignore
    (Builder.start_func b "e1000e_setup_tx_queue"
       ~params:[ ("%q", I64); ("%entries", I64) ]
       ~ret:(Some I64));
  let qb = mq_base b in
  let ring_bytes = Builder.mul b I64 (Reg "%entries") (Imm Regs.desc_size) in
  let ring =
    match Builder.call b "kmalloc" [ ring_bytes ] with
    | Some v -> v
    | None -> assert false
  in
  mq_store b qb mqf_ring ring;
  mq_store b qb mqf_entries (Reg "%entries");
  mq_store b qb mqf_next_use (Imm 0);
  mq_store b qb mqf_next_clean (Imm 0);
  mq_store b qb mqf_tx_packets (Imm 0);
  mq_store b qb mqf_tx_bytes (Imm 0);
  mq_store b qb mqf_tx_busy (Imm 0);
  Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%entries") ~step:(Imm 1)
    (fun i ->
      let d = Builder.gep b ring i ~scale:Regs.desc_size in
      Builder.store b I64 (Imm 0) d;
      let d8 = Builder.gep b d (Imm 8) ~scale:1 in
      Builder.store b I64 (Imm 0) d8);
  Builder.call_unit b "e1000e_io_write" [ mq_reg b Regs.tdbal; ring ];
  Builder.call_unit b "e1000e_io_write" [ mq_reg b Regs.tdlen; ring_bytes ];
  Builder.call_unit b "e1000e_io_write" [ mq_reg b Regs.tdh; Imm 0 ];
  Builder.call_unit b "e1000e_io_write" [ mq_reg b Regs.tdt; Imm 0 ];
  Builder.ret b (Some (Imm 0))

let gen_clean_tx_mq b =
  ignore
    (Builder.start_func b "e1000e_clean_tx_mq" ~params:[ ("%q", I64) ]
       ~ret:(Some I64));
  let qb = mq_base b in
  let ring = mq_load b qb mqf_ring in
  let entries = mq_load b qb mqf_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = mq_load b qb mqf_next_use in
  let clean0 = mq_load b qb mqf_next_clean in
  Builder.mov_to b r_clean I64 clean0;
  Builder.mov_to b r_count I64 (Imm 0);
  let head = Builder.new_block b ~hint:"mqclean_head" () in
  let chk = Builder.new_block b ~hint:"mqclean_chk" () in
  let advance = Builder.new_block b ~hint:"mqclean_adv" () in
  let done_ = Builder.new_block b ~hint:"mqclean_done" () in
  Builder.br b head;
  Builder.position_at b head;
  let pending = Builder.icmp b Ne I64 (Reg r_clean) use in
  Builder.cond_br b pending ~if_true:chk ~if_false:done_;
  Builder.position_at b chk;
  let desc = Builder.gep b ring (Reg r_clean) ~scale:Regs.desc_size in
  let sta_addr = Builder.gep b desc (Imm Regs.desc_sta_off) ~scale:1 in
  let sta = Builder.load b I8 sta_addr in
  let dd = Builder.and_ b I64 sta (Imm Regs.sta_dd) in
  let is_done = Builder.icmp b Ne I64 dd (Imm 0) in
  Builder.cond_br b is_done ~if_true:advance ~if_false:done_;
  Builder.position_at b advance;
  Builder.store b I8 (Imm 0) sta_addr;
  let c1 = Builder.add b I64 (Reg r_clean) (Imm 1) in
  let c1m = Builder.and_ b I64 c1 mask in
  Builder.mov_to b r_clean I64 c1m;
  let n1 = Builder.add b I64 (Reg r_count) (Imm 1) in
  Builder.mov_to b r_count I64 n1;
  Builder.br b head;
  Builder.position_at b done_;
  mq_store b qb mqf_next_clean (Reg r_clean);
  Builder.ret b (Some (Reg r_count))

let gen_tx_avail_mq b =
  ignore
    (Builder.start_func b "e1000e_tx_avail_mq" ~params:[ ("%q", I64) ]
       ~ret:(Some I64));
  let qb = mq_base b in
  let entries = mq_load b qb mqf_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = mq_load b qb mqf_next_use in
  let clean = mq_load b qb mqf_next_clean in
  let diff = Builder.sub b I64 clean use in
  let diff1 = Builder.sub b I64 diff (Imm 1) in
  let wrapped = Builder.add b I64 diff1 entries in
  let avail = Builder.and_ b I64 wrapped mask in
  Builder.ret b (Some avail)

let gen_xmit_mq b =
  (* e1000e_xmit_frame_mq(buf, len, q) -> 0 ok | -1 ring full; same
     shape as the classic xmit, against queue q's ring and doorbell. *)
  ignore
    (Builder.start_func b "e1000e_xmit_frame_mq"
       ~params:[ ("%buf", I64); ("%len", I64); ("%q", I64) ]
       ~ret:(Some I64));
  let qb = mq_base b in
  let avail =
    match Builder.call b "e1000e_tx_avail_mq" [ Reg "%q" ] with
    | Some v -> v
    | None -> assert false
  in
  let full = Builder.icmp b Eq I64 avail (Imm 0) in
  let slow = Builder.new_block b ~hint:"mqtx_slow" () in
  let busy = Builder.new_block b ~hint:"mqtx_busy" () in
  let go = Builder.new_block b ~hint:"mqtx_go" () in
  Builder.cond_br b full ~if_true:slow ~if_false:go;
  Builder.position_at b slow;
  ignore (Builder.call b ~want_result:false "e1000e_clean_tx_mq" [ Reg "%q" ]);
  let avail2 =
    match Builder.call b "e1000e_tx_avail_mq" [ Reg "%q" ] with
    | Some v -> v
    | None -> assert false
  in
  let still_full = Builder.icmp b Eq I64 avail2 (Imm 0) in
  Builder.cond_br b still_full ~if_true:busy ~if_false:go;
  Builder.position_at b busy;
  let nbusy = mq_load b qb mqf_tx_busy in
  let nbusy1 = Builder.add b I64 nbusy (Imm 1) in
  mq_store b qb mqf_tx_busy nbusy1;
  Builder.ret b (Some (Imm (-1)));
  Builder.position_at b go;
  let ring = mq_load b qb mqf_ring in
  let entries = mq_load b qb mqf_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let use = mq_load b qb mqf_next_use in
  let desc = Builder.gep b ring use ~scale:Regs.desc_size in
  Builder.store b I64 (Reg "%buf") desc;
  let len_addr = Builder.gep b desc (Imm Regs.desc_len_off) ~scale:1 in
  Builder.store b I16 (Reg "%len") len_addr;
  let cso_addr = Builder.gep b desc (Imm Regs.desc_cso_off) ~scale:1 in
  Builder.store b I8 (Imm 0) cso_addr;
  let cmd_addr = Builder.gep b desc (Imm Regs.desc_cmd_off) ~scale:1 in
  Builder.store b I8
    (Imm (Regs.cmd_eop lor Regs.cmd_ifcs lor Regs.cmd_rs))
    cmd_addr;
  let sta_addr = Builder.gep b desc (Imm Regs.desc_sta_off) ~scale:1 in
  Builder.store b I8 (Imm 0) sta_addr;
  let et_addr = Builder.gep b (Reg "%buf") (Imm 12) ~scale:1 in
  let _ethertype = Builder.load b I16 et_addr in
  let use1 = Builder.add b I64 use (Imm 1) in
  let use1m = Builder.and_ b I64 use1 mask in
  mq_store b qb mqf_next_use use1m;
  let pk = mq_load b qb mqf_tx_packets in
  let pk1 = Builder.add b I64 pk (Imm 1) in
  mq_store b qb mqf_tx_packets pk1;
  let by = mq_load b qb mqf_tx_bytes in
  let by1 = Builder.add b I64 by (Reg "%len") in
  mq_store b qb mqf_tx_bytes by1;
  Builder.call_unit b "e1000e_io_write" [ mq_reg b Regs.tdt; use1m ];
  Builder.ret b (Some (Imm 0))

let gen_irq_handler_mq b =
  (* Per-queue (MSI-X vector) handler: the kernel dispatches it only for
     its queue's latch, so there is no shared cause register to read —
     read-to-clear on ICR from concurrent CPUs would swallow each
     other's causes. *)
  ignore
    (Builder.start_func b "e1000e_irq_handler_mq" ~params:[ ("%q", I64) ]
       ~ret:(Some I64));
  let cleaned =
    match Builder.call b "e1000e_clean_tx_mq" [ Reg "%q" ] with
    | Some v -> v
    | None -> assert false
  in
  Builder.ret b (Some cleaned)

let gen_get_stats_mq b =
  ignore
    (Builder.start_func b "e1000e_get_stats_mq"
       ~params:[ ("%q", I64); ("%which", I64) ]
       ~ret:(Some I64));
  let qb = mq_base b in
  let pkts = Builder.new_block b ~hint:"mqst_pkts" () in
  let bytes = Builder.new_block b ~hint:"mqst_bytes" () in
  let busy = Builder.new_block b ~hint:"mqst_busy" () in
  let other = Builder.new_block b ~hint:"mqst_other" () in
  Builder.switch b (Reg "%which")
    [ (0, pkts); (1, bytes); (3, busy) ]
    ~default:other;
  Builder.position_at b pkts;
  let v = mq_load b qb mqf_tx_packets in
  Builder.ret b (Some v);
  Builder.position_at b bytes;
  let v = mq_load b qb mqf_tx_bytes in
  Builder.ret b (Some v);
  Builder.position_at b busy;
  let v = mq_load b qb mqf_tx_busy in
  Builder.ret b (Some v);
  Builder.position_at b other;
  Builder.ret b (Some (Imm (-1)))

(* ------------------------------------------------------------------ *)
(* multi-queue RX (RSS-steered rings, NAPI polling)

   Per-queue RX adapter state lives in the [adapter_rxq] global, one
   64-byte block per queue, mirroring [adapter_mq]; queue [q]'s device
   registers sit at the classic RX offsets plus [q * Regs.rxq_stride].
   Emitted only for [rx_queues > 0] builds so the default module stays
   byte-identical. *)

let rxmq_stride = 64
let rxmqf_ring = 0
let rxmqf_entries = 8
let rxmqf_next = 16
let rxmqf_packets = 24
let rxmqf_bytes = 32
let rxmqf_bufsz = 40

(* base of queue %q's RX adapter block *)
let rxmq_base b =
  Builder.gep b (Sym "adapter_rxq") (Reg "%q") ~scale:rxmq_stride

(* queue %q's register offset for classic RX register [reg] *)
let rxmq_reg b reg =
  let skew = Builder.mul b I64 (Reg "%q") (Imm Regs.rxq_stride) in
  Builder.add b I64 skew (Imm reg)

let gen_setup_rx_queue b =
  (* e1000e_setup_rx_queue(q, entries, bufsz): per-queue analogue of
     e1000e_setup_rx — allocate ring + buffers, program queue q's block,
     hand the device all but one slot, enable the (global) receiver. *)
  ignore
    (Builder.start_func b "e1000e_setup_rx_queue"
       ~params:[ ("%q", I64); ("%entries", I64); ("%bufsz", I64) ]
       ~ret:(Some I64));
  let qb = rxmq_base b in
  let ring_bytes = Builder.mul b I64 (Reg "%entries") (Imm Regs.desc_size) in
  let ring =
    match Builder.call b "kmalloc" [ ring_bytes ] with
    | Some v -> v
    | None -> assert false
  in
  mq_store b qb rxmqf_ring ring;
  mq_store b qb rxmqf_entries (Reg "%entries");
  mq_store b qb rxmqf_next (Imm 0);
  mq_store b qb rxmqf_packets (Imm 0);
  mq_store b qb rxmqf_bytes (Imm 0);
  mq_store b qb rxmqf_bufsz (Reg "%bufsz");
  Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%entries") ~step:(Imm 1)
    (fun i ->
      let buf =
        match Builder.call b "kmalloc" [ Reg "%bufsz" ] with
        | Some v -> v
        | None -> assert false
      in
      let d = Builder.gep b ring i ~scale:Regs.desc_size in
      Builder.store b I64 buf d;
      let sta = Builder.gep b d (Imm Regs.rxd_sta_off) ~scale:1 in
      Builder.store b I8 (Imm 0) sta);
  Builder.call_unit b "e1000e_io_write" [ rxmq_reg b Regs.rdbal; ring ];
  Builder.call_unit b "e1000e_io_write" [ rxmq_reg b Regs.rdlen; ring_bytes ];
  Builder.call_unit b "e1000e_io_write" [ rxmq_reg b Regs.rdh; Imm 0 ];
  let last = Builder.sub b I64 (Reg "%entries") (Imm 1) in
  Builder.call_unit b "e1000e_io_write" [ rxmq_reg b Regs.rdt; last ];
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.rctl; Imm Regs.rctl_en ];
  Builder.ret b (Some (Imm 0))

let gen_rx_coalesce b =
  (* e1000e_rx_coalesce(q, frames): program queue q's interrupt
     coalescing threshold (frames per asserted cause; 1 = per-frame). *)
  ignore
    (Builder.start_func b "e1000e_rx_coalesce"
       ~params:[ ("%q", I64); ("%frames", I64) ]
       ~ret:None);
  Builder.call_unit b "e1000e_io_write"
    [ rxmq_reg b (Regs.rdbal + Regs.rxq_rdtr_off); Reg "%frames" ];
  Builder.ret b None

let gen_rx_mask b =
  (* e1000e_rx_disable/enable(q): the NAPI mask dance — the handler
     masks its queue before scheduling the poll loop, the poll loop
     re-enables when it goes idle. *)
  ignore
    (Builder.start_func b "e1000e_rx_disable" ~params:[ ("%q", I64) ]
       ~ret:None);
  Builder.call_unit b "e1000e_io_write"
    [ rxmq_reg b (Regs.rdbal + Regs.rxq_mask_off); Imm 1 ];
  Builder.ret b None;
  ignore
    (Builder.start_func b "e1000e_rx_enable" ~params:[ ("%q", I64) ]
       ~ret:None);
  Builder.call_unit b "e1000e_io_write"
    [ rxmq_reg b (Regs.rdbal + Regs.rxq_mask_off); Imm 0 ];
  Builder.ret b None

let gen_setup_rss b =
  (* e1000e_setup_rss(queues): program the RSS fan-out. *)
  ignore
    (Builder.start_func b "e1000e_setup_rss" ~params:[ ("%queues", I64) ]
       ~ret:None);
  Builder.call_unit b "e1000e_io_write" [ Imm Regs.mrqc; Reg "%queues" ];
  Builder.ret b None

let gen_napi_poll b =
  (* e1000e_napi_poll(q, budget) -> frames processed. The softirq half
     of the RX path: consume DD|EOP descriptors from queue q's ring,
     sniff the EtherType (a guarded read of DMA'd payload), account,
     recycle the slot and publish it back through the RDT doorbell. *)
  ignore
    (Builder.start_func b "e1000e_napi_poll"
       ~params:[ ("%q", I64); ("%budget", I64) ]
       ~ret:(Some I64));
  let qb = rxmq_base b in
  let ring = mq_load b qb rxmqf_ring in
  let entries = mq_load b qb rxmqf_entries in
  let mask = Builder.sub b I64 entries (Imm 1) in
  let next0 = mq_load b qb rxmqf_next in
  Builder.mov_to b "%rxnext" I64 next0;
  Builder.mov_to b r_count I64 (Imm 0);
  let head = Builder.new_block b ~hint:"napi_head" () in
  let chk = Builder.new_block b ~hint:"napi_chk" () in
  let work = Builder.new_block b ~hint:"napi_work" () in
  let done_ = Builder.new_block b ~hint:"napi_done" () in
  Builder.br b head;
  Builder.position_at b head;
  let more = Builder.icmp b Slt I64 (Reg r_count) (Reg "%budget") in
  Builder.cond_br b more ~if_true:chk ~if_false:done_;
  Builder.position_at b chk;
  let desc = Builder.gep b ring (Reg "%rxnext") ~scale:Regs.desc_size in
  let sta_addr = Builder.gep b desc (Imm Regs.rxd_sta_off) ~scale:1 in
  let sta = Builder.load b I8 sta_addr in
  let dd = Builder.and_ b I64 sta (Imm (Regs.sta_dd lor Regs.sta_eop)) in
  let ready =
    Builder.icmp b Eq I64 dd (Imm (Regs.sta_dd lor Regs.sta_eop))
  in
  Builder.cond_br b ready ~if_true:work ~if_false:done_;
  Builder.position_at b work;
  let len_addr = Builder.gep b desc (Imm Regs.rxd_len_off) ~scale:1 in
  let len = Builder.load b I16 len_addr in
  let buf = Builder.load b I64 desc in
  let et_addr = Builder.gep b buf (Imm 12) ~scale:1 in
  let _ethertype = Builder.load b I16 et_addr in
  let pk = mq_load b qb rxmqf_packets in
  let pk1 = Builder.add b I64 pk (Imm 1) in
  mq_store b qb rxmqf_packets pk1;
  let by = mq_load b qb rxmqf_bytes in
  let by1 = Builder.add b I64 by len in
  mq_store b qb rxmqf_bytes by1;
  (* recycle: clear status, publish the slot back to the device *)
  Builder.store b I8 (Imm 0) sta_addr;
  Builder.call_unit b "e1000e_io_write"
    [ rxmq_reg b Regs.rdt; Reg "%rxnext" ];
  let nx = Builder.add b I64 (Reg "%rxnext") (Imm 1) in
  let nxm = Builder.and_ b I64 nx mask in
  Builder.mov_to b "%rxnext" I64 nxm;
  let c1 = Builder.add b I64 (Reg r_count) (Imm 1) in
  Builder.mov_to b r_count I64 c1;
  Builder.br b head;
  Builder.position_at b done_;
  mq_store b qb rxmqf_next (Reg "%rxnext");
  Builder.ret b (Some (Reg r_count))

let gen_rx_stats_mq b =
  (* e1000e_rx_stats_mq(q, which): 0 = driver frames, 1 = driver bytes,
     2 = device frames, 3 = device bytes, 4 = device dropped (the RXO
     overflow count the old driver silently swallowed). *)
  ignore
    (Builder.start_func b "e1000e_rx_stats_mq"
       ~params:[ ("%q", I64); ("%which", I64) ]
       ~ret:(Some I64));
  let qb = rxmq_base b in
  let pkts = Builder.new_block b ~hint:"rxst_pkts" () in
  let bytes = Builder.new_block b ~hint:"rxst_bytes" () in
  let dframes = Builder.new_block b ~hint:"rxst_dframes" () in
  let dbytes = Builder.new_block b ~hint:"rxst_dbytes" () in
  let ddrop = Builder.new_block b ~hint:"rxst_ddrop" () in
  let other = Builder.new_block b ~hint:"rxst_other" () in
  Builder.switch b (Reg "%which")
    [ (0, pkts); (1, bytes); (2, dframes); (3, dbytes); (4, ddrop) ]
    ~default:other;
  Builder.position_at b pkts;
  let v = mq_load b qb rxmqf_packets in
  Builder.ret b (Some v);
  Builder.position_at b bytes;
  let v = mq_load b qb rxmqf_bytes in
  Builder.ret b (Some v);
  Builder.position_at b dframes;
  let v =
    match
      Builder.call b "e1000e_io_read"
        [ rxmq_reg b (Regs.rdbal + Regs.rxq_frames_off) ]
    with
    | Some v -> v
    | None -> assert false
  in
  Builder.ret b (Some v);
  Builder.position_at b dbytes;
  let v =
    match
      Builder.call b "e1000e_io_read"
        [ rxmq_reg b (Regs.rdbal + Regs.rxq_bytes_off) ]
    with
    | Some v -> v
    | None -> assert false
  in
  Builder.ret b (Some v);
  Builder.position_at b ddrop;
  let v =
    match
      Builder.call b "e1000e_io_read"
        [ rxmq_reg b (Regs.rdbal + Regs.rxq_dropped_off) ]
    with
    | Some v -> v
    | None -> assert false
  in
  Builder.ret b (Some v);
  Builder.position_at b other;
  Builder.ret b (Some (Imm (-1)))

(** Generate a fresh, un-transformed driver module. [tx_queues > 1]
    additionally emits the multi-queue TX entry points (setup/xmit/
    clean/irq per queue) and their [adapter_mq] state; [rx_queues > 0]
    emits the RSS/NAPI RX entry points (per-queue setup/poll/coalesce/
    mask, RSS programming, RX stats) and their [adapter_rxq] state. The
    default is byte-identical to the classic single-queue driver. *)
let generate ?(module_scale = 12) ?(with_rogue = false) ?(tx_queues = 1)
    ?(rx_queues = 0) () : modul =
  let b = Builder.create "e1000e" in
  declare_kernel_api b;
  ignore (Builder.declare_global b "adapter" ~size:adapter_size);
  ignore
    (Builder.declare_global b "drv_banner" ~writable:false
       ~init:banner ~size:(String.length banner));
  ignore
    (Builder.declare_global b "drv_unload" ~writable:false
       ~init:unload_msg ~size:(String.length unload_msg));
  ignore
    (Builder.declare_global b "eeprom" ~writable:false ~size:256
       ~init:(String.init 64 (fun i -> Char.chr ((i * 37 + 11) land 0xff))));
  gen_io_helpers b;
  gen_probe b;
  gen_clean_tx b;
  gen_tx_avail b;
  gen_xmit b;
  gen_irq_handler b;
  gen_self_test b;
  gen_set_mac b;
  gen_get_stats b;
  gen_checksum b;
  gen_eeprom b;
  gen_setup_rx b;
  gen_poll_rx b;
  gen_diag b;
  gen_lifecycle b;
  if tx_queues > 1 then begin
    ignore
      (Builder.declare_global b "adapter_mq"
         ~size:(Regs.max_tx_queues * mq_stride));
    gen_setup_tx_queue b;
    gen_clean_tx_mq b;
    gen_tx_avail_mq b;
    gen_xmit_mq b;
    gen_irq_handler_mq b;
    gen_get_stats_mq b
  end;
  if rx_queues > 0 then begin
    ignore
      (Builder.declare_global b "adapter_rxq"
         ~size:(Regs.max_rx_queues * rxmq_stride));
    gen_setup_rx_queue b;
    gen_rx_coalesce b;
    gen_rx_mask b;
    gen_setup_rss b;
    gen_napi_poll b;
    gen_rx_stats_mq b
  end;
  if with_rogue then gen_rogue_peek b;
  gen_cold_padding b ~scale:module_scale;
  let m = Builder.modul b in
  Kir.Verify.check_exn m;
  m
