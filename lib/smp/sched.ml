(** Deterministic round-robin SMP scheduler.

    The simulation has no real concurrency: each CPU's workload is a
    step function that runs one *operation* (one sendmsg, one ioctl, one
    guard probe — whatever the workload's unit is) to completion, and
    the scheduler interleaves those operations. A seeded PRNG draws each
    timeslice quantum (1..[quantum_max] operations), so the interleaving
    is irregular enough to exercise cross-CPU races yet exactly
    reproducible: same seed + same workload = same interleaving, same
    per-CPU cycle counts, same trace streams.

    The boundary between two operations on a CPU is that CPU's
    *quiescent point* — it has returned from its simulated kernel entry
    and holds no references into policy structures. {!Rcu} hangs
    grace-period detection off the [on_quiescent] hook. *)

type hooks = {
  on_switch : int -> unit;
      (** [on_switch cpu] fires when [cpu] is placed on the (simulated)
          hardware, before its first operation of the slice: swap the
          kernel's machine and engine view, service pending IPIs *)
  on_quiescent : int -> unit;
      (** [on_quiescent cpu] fires after each completed operation *)
}

let null_hooks = { on_switch = ignore; on_quiescent = ignore }

type stats = {
  mutable slices : int;  (** context switches (timeslices started) *)
  mutable ops : int;  (** total operations across all CPUs *)
}

(** Run the per-CPU step functions to completion. [steps.(c) ()] runs
    one operation on CPU [c] and returns [false] when that CPU's
    workload is exhausted. Returns the interleave log: the CPU id of
    every operation, in execution order (a workload fingerprint for the
    determinism tests). *)
let run ?(quantum_max = 3) ?(hooks = null_hooks) ~seed
    (steps : (unit -> bool) array) : int list * stats =
  let n = Array.length steps in
  if n = 0 then invalid_arg "Sched.run: no cpus";
  let rng = Machine.Rng.create (seed lxor 0x5EED) in
  let live = Array.make n true in
  let remaining = ref n in
  let log = ref [] in
  let stats = { slices = 0; ops = 0 } in
  let cur = ref 0 in
  while !remaining > 0 do
    while not live.(!cur) do
      cur := (!cur + 1) mod n
    done;
    let c = !cur in
    stats.slices <- stats.slices + 1;
    hooks.on_switch c;
    let quantum = 1 + Machine.Rng.int rng quantum_max in
    let k = ref 0 in
    while !k < quantum && live.(c) do
      incr k;
      log := c :: !log;
      stats.ops <- stats.ops + 1;
      let more = steps.(c) () in
      hooks.on_quiescent c;
      if not more then begin
        live.(c) <- false;
        decr remaining
      end
    done;
    cur := (c + 1) mod n
  done;
  (List.rev !log, stats)
