(** A simulated CPU: private machine model (clock, caches, branch
    predictor), a per-CPU policy-engine view (stats, tier counters,
    inline cache, trace ring, denial diagnostic), and the RCU/IPI
    bookkeeping the SMP layer maintains for it.

    The kernel image itself — memory, symbols, modules, devices — is
    shared; {!Sched} swaps the kernel's machine and the engine's current
    view on every context switch, so whatever runs next charges its
    cycles to the right core and hits the right inline cache.

    CPU 0 is the boot CPU: it *adopts* the kernel's existing machine and
    the engine's default view, so a 1-CPU SMP system is the classic
    single-CPU simulation, bit for bit. *)

type t = {
  id : int;
  machine : Machine.Model.t;
  view : Policy.Engine.view;
  rng : Machine.Rng.t;  (** per-CPU workload noise stream *)
  (* RCU *)
  mutable q_gen : int;
      (** newest RCU generation this CPU has observed at a quiescent
          point (end of a scheduler operation); grace periods complete
          when the minimum over all CPUs passes the published gen *)
  (* IPI shootdown *)
  mutable ipi_pending : bool;
  mutable ipi_from : int;  (** sender CPU of the pending IPI *)
  mutable ipis_taken : int;
  mutable ipi_cycles : int;  (** cycles this CPU spent in IPI handlers *)
  (* bookkeeping *)
  mutable ops : int;  (** scheduler operations completed *)
}

(** The boot CPU: adopts the kernel's machine and the engine's default
    view (single-CPU behaviour unchanged). *)
let boot ?(seed = 0) kernel engine =
  {
    id = 0;
    machine = Kernel.machine kernel;
    view = Policy.Engine.default_view engine;
    rng = Machine.Rng.create (seed lxor 0xC0DE);
    q_gen = 0;
    ipi_pending = false;
    ipi_from = -1;
    ipis_taken = 0;
    ipi_cycles = 0;
    ops = 0;
  }

(** An application CPU: fresh machine model (same preset — homogeneous
    SMP), fresh engine view with its own inline cache when the engine
    runs one. *)
let secondary ?(seed = 0) ~params ~site_cache engine ~id =
  {
    id;
    machine = Machine.Model.create params;
    view = Policy.Engine.new_view ~site_cache engine;
    rng = Machine.Rng.create (seed lxor (0xC0DE + (id * 0x9e37)));
    q_gen = 0;
    ipi_pending = false;
    ipi_from = -1;
    ipis_taken = 0;
    ipi_cycles = 0;
    ops = 0;
  }

let cycles t = Machine.Model.cycles t.machine

(** Make [t] the running CPU: the kernel charges cycles to its machine
    and the policy engine uses its view. *)
let make_current t kernel engine =
  Kernel.set_machine kernel t.machine;
  Policy.Engine.set_current_view engine t.view
