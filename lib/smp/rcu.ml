(** RCU-style policy publication with grace periods and IPI shootdown.

    Under SMP, a policy mutation no longer edits the live table that
    other CPUs may be mid-scan over. Instead the writer:

    + builds a complete successor table off to the side
      ({!Policy.Engine.build_instance} — construction cost charged to
      the writing CPU),
    + publishes it with a single pointer store
      ({!Policy.Engine.publish} — readers switch atomically; no CPU can
      ever observe a half-written entry),
    + sends an IPI shootdown to every other CPU, which flushes its site
      inline cache at its next scheduling point (entry/exit + flush
      cycles charged to the *remote* CPU — the real cross-CPU cost of a
      policy update), and
    + retires the old generation only after a grace period: every CPU
      has passed a quiescent point (completed a scheduler operation)
      since the publish. The simulation has no allocator-level free, so
      retirement drops the last reference and records the grace latency.

    Wired into {!Policy.Policy_module} via {!attach}: every region/mode
    ioctl then routes through this path, so `policy_manager` mutations
    made on one CPU while another is mid-guard are safe by construction.

    Mode changes ([M_set_mode]) are a single scalar store, not a table;
    they apply in place (atomic by nature) but still trigger the IPI
    shootdown so remote fast tiers re-observe the engine promptly. *)

(* IPI cost model (cycles): one APIC write per target on the sender;
   interrupt entry/exit plus the inline-cache flush on each receiver.
   Same order as remote TLB-shootdown costs on the paper's testbeds. *)
let ipi_send_cycles = 180
let ipi_entry_cycles = 420
let ipi_flush_cycles = 260

type stats = {
  mutable publications : int;  (** table generations published *)
  mutable retired : int;  (** generations reclaimed after grace *)
  mutable ipis_sent : int;
  mutable ipis_taken : int;
  mutable ipi_cycles : int;  (** total cycles remote CPUs spent in IPIs *)
  mutable grace_quiescents : int;
      (** summed grace-period lengths, in quiescent events between
          publish and retire (deterministic across runs, unlike
          wall-clock deltas between per-CPU clocks) *)
  mutable max_pending : int;  (** high-water mark of unretired gens *)
}

type pending = {
  p_gen : int;
  p_birth : int;  (** global quiescent count at publish *)
  p_inst : Policy.Structure.instance;  (** the retired table, kept live *)
}

type t = {
  engine : Policy.Engine.t;
  pm : Policy.Policy_module.t;
  cpus : Cpu.t array;
  mutable current : int;  (** CPU executing right now (set by the system) *)
  mutable pending : pending list;  (** newest first *)
  mutable qcount : int;  (** global quiescent-event counter *)
  stats : stats;
  mutable race : Sanitizer.Race.t option;
      (** happens-before detector; publish/IPI/quiesce/retire emit their
          sync edges and interval events here when attached *)
}

let create ~pm cpus =
  {
    engine = Policy.Policy_module.engine pm;
    pm;
    cpus;
    current = 0;
    pending = [];
    qcount = 0;
    stats =
      {
        publications = 0;
        retired = 0;
        ipis_sent = 0;
        ipis_taken = 0;
        ipi_cycles = 0;
        grace_quiescents = 0;
        max_pending = 0;
      };
    race = None;
  }

let stats t = t.stats
let pending_generations t = List.length t.pending
let set_current t cpu = t.current <- cpu
let set_race t det = t.race <- det

(* --------------------------------------------------------------- *)
(* race-detector sync edges and revocation bookkeeping.

   The publication token orders writer and flushers: publish releases
   it, every IPI service acquires it. Each quiescent point releases a
   per-CPU grace token; retirement acquires them all, so the reclaim of
   an old generation's table is ordered after every reader's last scan
   of it. Write-grant coverage *lost* across a publish becomes a
   revocation window: module stores landing there from another CPU have
   no happens-before path to the revocation and are flagged. *)

let pub_token = "rcu:pub"
let grace_token cpu = "rcu:q" ^ string_of_int cpu

(* [base, limit) ranges a region list grants write access to *)
let write_ranges rs =
  List.filter_map
    (fun (r : Policy.Region.t) ->
      if r.prot land Policy.Region.prot_write <> 0 then
        Some (r.base, r.base + r.len)
      else None)
    rs

(* portions of [lo, hi) not covered by any range in [covers] *)
let rec subtract (lo, hi) covers =
  if lo >= hi then []
  else
    match
      List.filter (fun (clo, chi) -> clo < hi && lo < chi) covers
    with
    | [] -> [ (lo, hi) ]
    | (clo, chi) :: _ ->
      subtract (lo, min hi clo) covers @ subtract (max lo chi, hi) covers

let note_publish t ~old_regions ~new_regions =
  match t.race with
  | None -> ()
  | Some det ->
    let old_w = write_ranges old_regions and new_w = write_ranges new_regions in
    (* coverage lost: revocation windows *)
    List.iter
      (fun r ->
        List.iter
          (fun (lo, hi) -> Sanitizer.Race.revoke det ~lo ~hi ~site:"rcu-publish")
          (subtract r new_w))
      old_w;
    (* coverage (re)granted: clears any stale windows over it *)
    List.iter (fun (lo, hi) -> Sanitizer.Race.grant det ~lo ~hi) new_w;
    Sanitizer.Race.release det pub_token

(** Flag an IPI on every CPU but the sender. Back-to-back publishes
    coalesce on a still-pending flag, as real shootdowns do. *)
let shootdown t =
  let sender = t.cpus.(t.current) in
  Array.iter
    (fun (c : Cpu.t) ->
      if c.id <> sender.Cpu.id then begin
        t.stats.ipis_sent <- t.stats.ipis_sent + 1;
        Machine.Model.add_cycles sender.machine ipi_send_cycles;
        c.ipi_pending <- true;
        c.ipi_from <- sender.id
      end)
    t.cpus;
  (* the writer's own inline cache: flushed synchronously *)
  Policy.Engine.flush_view_site_cache sender.view

(** Service a pending shootdown on [cpu]: interrupt entry, flush the
    local site inline cache, record the cost against that CPU. Called by
    the system's [on_switch] hook, after [cpu]'s view became current (so
    the [Ipi_flush] trace event lands in [cpu]'s ring). *)
let service_ipi t cpu =
  let c = t.cpus.(cpu) in
  if c.Cpu.ipi_pending then begin
    c.ipi_pending <- false;
    let before = Machine.Model.cycles c.machine in
    Machine.Model.add_cycles c.machine ipi_entry_cycles;
    Policy.Engine.flush_view_site_cache c.view;
    Machine.Model.add_cycles c.machine ipi_flush_cycles;
    let spent = Machine.Model.cycles c.machine - before in
    c.ipis_taken <- c.ipis_taken + 1;
    c.ipi_cycles <- c.ipi_cycles + spent;
    t.stats.ipis_taken <- t.stats.ipis_taken + 1;
    t.stats.ipi_cycles <- t.stats.ipi_cycles + spent;
    (* the flush is the acquire side of the publication edge *)
    (match t.race with
    | Some det -> Sanitizer.Race.acquire det pub_token
    | None -> ());
    Policy.Engine.lifecycle t.engine Trace.Ipi_flush ~info:c.ipi_from
  end

(** Record a quiescent point on [cpu] (it completed an operation and
    holds no policy references) and retire every pending generation the
    whole system has now quiesced past. *)
let quiesce t cpu =
  t.qcount <- t.qcount + 1;
  let c = t.cpus.(cpu) in
  c.Cpu.q_gen <- Policy.Engine.generation t.engine;
  (match t.race with
  | Some det -> Sanitizer.Race.release det (grace_token cpu)
  | None -> ());
  match t.pending with
  | [] -> ()
  | _ ->
    let min_gen =
      Array.fold_left (fun a (c : Cpu.t) -> min a c.q_gen) max_int t.cpus
    in
    let keep, retire =
      List.partition (fun p -> p.p_gen > min_gen) t.pending
    in
    t.pending <- keep;
    (* grace complete: the reclaimer is ordered after every CPU's last
       quiescent point, so the retire-time interval write over the old
       table must come out race-free — the detector proves it *)
    (match (t.race, retire) with
    | Some det, _ :: _ ->
      Array.iteri (fun i _ -> Sanitizer.Race.acquire det (grace_token i)) t.cpus
    | _ -> ());
    List.iter
      (fun p ->
        (match t.race with
        | Some det -> (
          match Policy.Structure.table_region p.p_inst with
          | Some (base, len) ->
            Sanitizer.Race.sync_write det ~lo:base ~hi:(base + len)
              ~site:"rcu-retire"
          | None -> ())
        | None -> ());
        t.stats.retired <- t.stats.retired + 1;
        t.stats.grace_quiescents <-
          t.stats.grace_quiescents + (t.qcount - p.p_birth))
      retire

let publish_regions t rs ~default_allow =
  let old_regions = Policy.Engine.regions t.engine in
  match Policy.Engine.build_instance t.engine rs with
  | exception Invalid_argument msg ->
    (* the successor never became reachable, so the live generation is
       untouched — a failed publish (capacity or otherwise) rolls back
       the whole mutation by construction; surface capacity exhaustion
       as the typed -ENOSPC the ioctl contract promises *)
    if Policy.Structure.is_capacity_error msg then Kernel.enospc else -1
  | inst ->
    let old = Policy.Engine.publish t.engine inst ~default_allow in
    note_publish t ~old_regions ~new_regions:rs;
    t.pending <-
      {
        p_gen = Policy.Engine.generation t.engine;
        p_birth = t.qcount;
        p_inst = old;
      }
      :: t.pending;
    t.stats.publications <- t.stats.publications + 1;
    t.stats.max_pending <- max t.stats.max_pending (List.length t.pending);
    shootdown t;
    0

(** The {!Policy.Policy_module.mutation} router: every mutation becomes
    a full-generation publish (except mode, a scalar applied in place —
    see the module doc). This is the function {!attach} installs. *)
let apply t (m : Policy.Policy_module.mutation) : int =
  let e = t.engine in
  let regions () = Policy.Engine.regions e in
  let default () = Policy.Engine.default_allow e in
  match m with
  | M_set_mode _ ->
    let rc = Policy.Policy_module.apply_in_place t.pm m in
    if rc = 0 then begin
      (match t.race with
      | Some det -> Sanitizer.Race.release det pub_token
      | None -> ());
      shootdown t
    end;
    rc
  | M_add r -> publish_regions t (regions () @ [ r ]) ~default_allow:(default ())
  | M_remove base ->
    let rs = regions () in
    if List.exists (fun (r : Policy.Region.t) -> r.base = base) rs then
      (* first occurrence only — the canonical duplicate-base semantics
         every structure's in-place [remove] implements *)
      let rec drop_first = function
        | [] -> []
        | (r : Policy.Region.t) :: rest ->
          if r.base = base then rest else r :: drop_first rest
      in
      publish_regions t (drop_first rs) ~default_allow:(default ())
    else -1
  | M_install rs ->
    (* the batched install: one generation swap covers the whole batch,
       so concurrent readers observe the old policy or all N new regions
       — never a prefix. A capacity failure inside build_instance leaves
       the live generation untouched (whole-batch rollback). *)
    publish_regions t (regions () @ rs) ~default_allow:(default ())
  | M_clear -> publish_regions t [] ~default_allow:(default ())
  | M_set_default b -> publish_regions t (regions ()) ~default_allow:b
  | M_replace (rs, d) -> publish_regions t rs ~default_allow:d
  | M_rebuild (rs, d) ->
    (* an integrity repair is a policy publish like any other: the
       corrupt generation stays live for readers mid-scan until the
       grace period retires it, and every remote CPU's inline cache is
       shot down before it can serve a stale allow *)
    publish_regions t rs ~default_allow:d

(** Route all of [pm]'s ioctl mutations through this RCU instance. *)
let attach t = Policy.Policy_module.set_mutator t.pm (Some (apply t))
