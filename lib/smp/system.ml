(** Assembly of the SMP pieces over one shared kernel: N {!Cpu}s (boot
    CPU adopts the kernel's machine and the engine's default view), an
    {!Rcu} domain routing the policy module's mutations, and the
    {!Sched} hooks that context-switch machine + engine view and drive
    IPI service / quiescent-point reporting.

    With [cpus:1] nothing changes hands — no secondary views, no RCU
    routing (the policy module keeps its in-place mutation path) — so a
    1-CPU system is cycle- and layout-identical to the classic
    single-CPU simulation. *)

type t = {
  kernel : Kernel.t;
  engine : Policy.Engine.t;
  pm : Policy.Policy_module.t;
  cpus : Cpu.t array;
  rcu : Rcu.t;
  seed : int;
  mutable race : Sanitizer.Race.t option;
}

let create ~seed ~params ~cpus:n kernel pm =
  if n < 1 then invalid_arg "System.create: cpus < 1";
  let engine = Policy.Policy_module.engine pm in
  let site_cache = Policy.Engine.site_cache_enabled engine in
  let cpus =
    Array.init n (fun i ->
        if i = 0 then Cpu.boot ~seed kernel engine
        else Cpu.secondary ~seed ~params ~site_cache engine ~id:i)
  in
  let rcu = Rcu.create ~pm cpus in
  (* Only a real multiprocessor needs RCU publication; leaving a 1-CPU
     system on the in-place mutation path keeps it bit-identical to the
     classic simulation. *)
  if n > 1 then Rcu.attach rcu;
  { kernel; engine; pm; cpus; rcu; seed; race = None }

let cpus t = t.cpus
let ncpus t = Array.length t.cpus
let rcu t = t.rcu
let engine t = t.engine
let race t = t.race

(** Attach the happens-before race detector: per-CPU vector clocks with
    sync edges from the scheduler's context switches and the RCU
    publish/IPI/grace machinery, a module-access probe on the kernel's
    read/write path, and a guard-path probe recording each policy-table
    scan. Observation only — no simulated cycles are charged, so an
    instrumented run's decisions and figures are unchanged. Idempotent;
    returns the detector. *)
let enable_race_detector t =
  match t.race with
  | Some det -> det
  | None ->
    let det = Sanitizer.Race.create ~cpus:(ncpus t) in
    t.race <- Some det;
    Rcu.set_race t.rcu (Some det);
    Kernel.set_access_probe t.kernel
      (Some
         (fun ~addr ~size ~write ->
           let site =
             match Kernel.current_module t.kernel with
             | Some lm -> lm.Kernel.lm_name
             | None -> "kernel"
           in
           Sanitizer.Race.module_access det ~addr ~size ~write ~site));
    Policy.Policy_module.set_guard_probe t.pm
      (Some
         (fun ~site:_ ~addr ~size ~flags ->
           (* the guard's table scan is a ranged read of the live policy
              structure *)
           (match Policy.Engine.table_region t.engine with
           | Some (base, len) ->
             Sanitizer.Race.range_read det ~lo:base ~hi:(base + len)
               ~site:"guard-table-scan"
           | None -> ());
           (* and the guarded access itself is a module access — checked
              here, at the guard, so even a store the policy *denies* is
              visible to the detector (detection at the faulting access,
              not only for accesses that execute) *)
           let site =
             match Kernel.current_module t.kernel with
             | Some lm -> lm.Kernel.lm_name
             | None -> "kernel"
           in
           Sanitizer.Race.module_access det ~addr ~size
             ~write:(flags land Policy.Region.prot_write <> 0)
             ~site));
    det

(** Give every CPU its own trace ring (ftrace-style per-CPU buffers).
    Returns the rings in CPU order; merge with {!Trace.merged_events}
    and friends. *)
let enable_tracing ?capacity t =
  Array.map
    (fun (c : Cpu.t) ->
      let tr = Trace.create ?capacity t.kernel in
      Trace.start tr;
      Policy.Engine.view_set_trace c.view (Some tr);
      tr)
    t.cpus

let traces t =
  Array.to_list t.cpus
  |> List.filter_map (fun (c : Cpu.t) -> Policy.Engine.view_trace c.view)

let hooks t =
  {
    Sched.on_switch =
      (fun i ->
        Cpu.make_current t.cpus.(i) t.kernel t.engine;
        Rcu.set_current t.rcu i;
        (* the detector's context-switch edge must precede the IPI
           service so the publication acquire lands on the new CPU *)
        (match t.race with
        | Some det -> Sanitizer.Race.switch_to det i
        | None -> ());
        Rcu.service_ipi t.rcu i);
    on_quiescent = (fun i -> Rcu.quiesce t.rcu i);
  }

(** Interleave the per-CPU step functions (see {!Sched.run}) under this
    system's context-switch/RCU hooks. Restores CPU 0 as current when
    the run drains, so follow-on single-threaded code (stats reads,
    ioctls) charges the boot CPU. *)
let run ?quantum_max t steps =
  let out = Sched.run ?quantum_max ~hooks:(hooks t) ~seed:t.seed steps in
  (* drained CPUs are idle, and idle is quiescent: report a final
     quiescent point for everyone so trailing grace periods complete *)
  Array.iteri (fun i _ -> Rcu.quiesce t.rcu i) t.cpus;
  Cpu.make_current t.cpus.(0) t.kernel t.engine;
  Rcu.set_current t.rcu 0;
  out

(** Per-CPU op counts folded over the interleave log. *)
let ops_by_cpu t (log : int list) =
  let a = Array.make (ncpus t) 0 in
  List.iter (fun c -> a.(c) <- a.(c) + 1) log;
  a
