(** Structural verifier for KIR modules.

    The loader refuses modules that do not verify. Checks:
    - block labels are unique within a function; branch targets exist
    - direct call targets resolve to a module function or declared extern,
      with matching arity
    - [Sym] operands resolve to a global or function
    - registers are defined before use along straight-line block order
      (parameters and any register defined in a preceding block count as
      defined — a conservative, flow-insensitive rule)
    - functions have at least one block; alloca sizes are positive *)

open Types

type error = { in_func : string; message : string }

let errf in_func fmt = Printf.ksprintf (fun message -> { in_func; message }) fmt

(** Module-wide symbol tables, built once per verification so that
    per-operand symbol resolution is O(1) instead of a list scan per
    [Sym] (quadratic on symbol-heavy modules). *)
type symtab = {
  globals : (string, unit) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;  (** name -> arity *)
  externs : (string, int) Hashtbl.t;
}

let symtab_of_module (m : modul) : symtab =
  let globals = Hashtbl.create (2 * List.length m.globals) in
  List.iter (fun g -> Hashtbl.replace globals g.g_name ()) m.globals;
  let funcs = Hashtbl.create (2 * List.length m.funcs) in
  List.iter
    (fun fn -> Hashtbl.replace funcs fn.f_name (List.length fn.params))
    m.funcs;
  let externs = Hashtbl.create (2 * List.length m.externs) in
  List.iter (fun (name, arity) -> Hashtbl.replace externs name arity) m.externs;
  { globals; funcs; externs }

let check_func_in (tab : symtab) (f : func) : error list =
  let errs = ref [] in
  let push e = errs := e :: !errs in
  if f.blocks = [] then push (errf f.f_name "function has no blocks");
  (* label table *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.b_label then
        push (errf f.f_name "duplicate label %s" b.b_label)
      else Hashtbl.add labels b.b_label ())
    f.blocks;
  let check_target l =
    if not (Hashtbl.mem labels l) then
      push (errf f.f_name "branch to unknown label %s" l)
  in
  let check_sym s =
    if (not (Hashtbl.mem tab.globals s)) && not (Hashtbl.mem tab.funcs s) then
      push (errf f.f_name "unresolved symbol @%s" s)
  in
  let callee_arity name =
    match Hashtbl.find_opt tab.funcs name with
    | Some arity -> Some arity
    | None -> Hashtbl.find_opt tab.externs name
  in
  (* defined registers, accumulated across blocks in order *)
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r ()) f.params;
  let check_value = function
    | Imm _ -> ()
    | Sym s -> check_sym s
    | Reg r ->
      if not (Hashtbl.mem defined r) then
        push (errf f.f_name "use of undefined register %s" r)
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter check_value (uses_of_instr i);
          (match i with
          | Alloca { size; _ } when size <= 0 ->
            push (errf f.f_name "alloca with non-positive size %d" size)
          | Call { callee; args; _ } -> (
            match callee_arity callee with
            | None -> push (errf f.f_name "call to unknown function @%s" callee)
            | Some n when n <> List.length args ->
              push
                (errf f.f_name "call to @%s with %d args, expected %d" callee
                   (List.length args) n)
            | Some _ -> ())
          | _ -> ());
          match def_of_instr i with
          | Some r -> Hashtbl.replace defined r ()
          | None -> ())
        b.body;
      List.iter check_value (uses_of_term b.term);
      List.iter check_target (successors b.term))
    f.blocks;
  List.rev !errs

(** Check a single function against [m]'s symbols; builds the symbol
    tables on each call — prefer {!check_module} for whole modules. *)
let check_func (m : modul) (f : func) : error list =
  check_func_in (symtab_of_module m) f

let check_module (m : modul) : error list =
  let errs = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.f_name then
        errs := [ errf f.f_name "duplicate function definition" ] @ !errs
      else Hashtbl.add seen f.f_name ())
    m.funcs;
  let gseen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem gseen g.g_name then
        errs := [ errf "" "duplicate global @%s" g.g_name ] @ !errs
      else Hashtbl.add gseen g.g_name ();
      if g.g_size <= 0 then
        errs := [ errf "" "global @%s has non-positive size" g.g_name ] @ !errs;
      match g.g_init with
      | Some init when String.length init > g.g_size ->
        errs :=
          [ errf "" "global @%s initializer larger than size" g.g_name ]
          @ !errs
      | _ -> ())
    m.globals;
  let tab = symtab_of_module m in
  List.concat (List.rev !errs :: List.map (check_func_in tab) m.funcs)

let is_valid m = check_module m = []

let error_to_string e =
  if e.in_func = "" then e.message
  else Printf.sprintf "in @%s: %s" e.in_func e.message

exception Invalid of string

(** Raise {!Invalid} with a readable report if the module fails checks. *)
let check_exn m =
  match check_module m with
  | [] -> ()
  | errs ->
    raise (Invalid (String.concat "; " (List.map error_to_string errs)))
