(** Canonical textual form of KIR modules.

    The printed form is stable and deterministic: the signing pass hashes
    it, and [Parser] reads it back (round-trip is property-tested). *)

open Types

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let string_of_cond = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle"
  | Sgt -> "sgt" | Sge -> "sge" | Ult -> "ult" | Ule -> "ule"
  | Ugt -> "ugt" | Uge -> "uge"

let string_of_value = function
  | Reg r -> r
  | Imm n -> string_of_int n
  | Sym s -> "@" ^ s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\22"
      | '\\' -> Buffer.add_string buf "\\5c"
      | c when Char.code c >= 32 && Char.code c < 127 -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c)))
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let rec go i =
    if i < n then
      (* a backslash must be followed by exactly two hex digits; anything
         else (malformed or truncated input) is kept literally — the
         function is total so the parser can reject bad input with a
         proper error instead of crashing *)
      if i + 2 < n && s.[i] = '\\' && is_hex s.[i + 1] && is_hex s.[i + 2]
      then begin
        let code = int_of_string ("0x" ^ String.sub s (i + 1) 2) in
        Buffer.add_char buf (Char.chr code);
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let args_to_string args = String.concat ", " (List.map string_of_value args)

let string_of_instr = function
  | Binop { dst; op; ty; a; b } ->
    Printf.sprintf "%s = %s %s %s, %s" dst (string_of_binop op)
      (string_of_ty ty) (string_of_value a) (string_of_value b)
  | Icmp { dst; cond; ty; a; b } ->
    Printf.sprintf "%s = icmp %s %s %s, %s" dst (string_of_cond cond)
      (string_of_ty ty) (string_of_value a) (string_of_value b)
  | Load { dst; ty; addr } ->
    Printf.sprintf "%s = load %s, %s" dst (string_of_ty ty)
      (string_of_value addr)
  | Store { ty; v; addr } ->
    Printf.sprintf "store %s %s, %s" (string_of_ty ty) (string_of_value v)
      (string_of_value addr)
  | Alloca { dst; size } -> Printf.sprintf "%s = alloca %d" dst size
  | Gep { dst; base; idx; scale } ->
    Printf.sprintf "%s = gep %s, %s, %d" dst (string_of_value base)
      (string_of_value idx) scale
  | Mov { dst; ty; src } ->
    Printf.sprintf "%s = mov %s %s" dst (string_of_ty ty)
      (string_of_value src)
  | Call { dst = Some d; callee; args } ->
    Printf.sprintf "%s = call @%s(%s)" d callee (args_to_string args)
  | Call { dst = None; callee; args } ->
    Printf.sprintf "call @%s(%s)" callee (args_to_string args)
  | Callind { dst = Some d; fn; args } ->
    Printf.sprintf "%s = callind %s(%s)" d (string_of_value fn)
      (args_to_string args)
  | Callind { dst = None; fn; args } ->
    Printf.sprintf "callind %s(%s)" (string_of_value fn) (args_to_string args)
  | Select { dst; cond; if_true; if_false } ->
    Printf.sprintf "%s = select %s, %s, %s" dst (string_of_value cond)
      (string_of_value if_true) (string_of_value if_false)
  | Inline_asm s -> Printf.sprintf "asm \"%s\"" (escape s)
  | Intrinsic { dst = Some d; iname; args } ->
    Printf.sprintf "%s = intrinsic %s(%s)" d iname (args_to_string args)
  | Intrinsic { dst = None; iname; args } ->
    Printf.sprintf "intrinsic %s(%s)" iname (args_to_string args)

let string_of_term = function
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (string_of_value v)
  | Br l -> Printf.sprintf "br %s" l
  | Cond_br { cond; if_true; if_false } ->
    Printf.sprintf "brc %s, %s, %s" (string_of_value cond) if_true if_false
  | Switch { v; cases; default } ->
    let cs =
      String.concat ", "
        (List.map (fun (k, l) -> Printf.sprintf "%d: %s" k l) cases)
    in
    Printf.sprintf "switch %s [%s] default %s" (string_of_value v) cs default
  | Unreachable -> "unreachable"

let pp_block buf blk =
  Buffer.add_string buf (blk.b_label ^ ":\n");
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ string_of_instr i ^ "\n"))
    blk.body;
  Buffer.add_string buf ("  " ^ string_of_term blk.term ^ "\n")

let pp_func buf f =
  let params =
    String.concat ", "
      (List.map (fun (r, ty) -> r ^ ": " ^ string_of_ty ty) f.params)
  in
  let ret =
    match f.ret_ty with None -> "void" | Some ty -> string_of_ty ty
  in
  Buffer.add_string buf
    (Printf.sprintf "func @%s(%s) : %s {\n" f.f_name params ret);
  List.iter (pp_block buf) f.blocks;
  Buffer.add_string buf "}\n"

let pp_global buf g =
  let mode = if g.g_writable then "rw" else "ro" in
  (match g.g_init with
  | None ->
    Buffer.add_string buf
      (Printf.sprintf "global @%s %s %d\n" g.g_name mode g.g_size)
  | Some init ->
    Buffer.add_string buf
      (Printf.sprintf "global @%s %s %d \"%s\"\n" g.g_name mode g.g_size
         (escape init)))

(** Print the whole module. [with_meta:false] yields the signable body:
    everything except the metadata section (the signature cannot cover
    itself). *)
let to_string ?(with_meta = true) m =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "module \"%s\"\n" (escape m.m_name));
  if with_meta then
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "meta \"%s\" = \"%s\"\n" (escape k) (escape v)))
      (List.sort compare m.meta);
  List.iter
    (fun (name, arity) ->
      Buffer.add_string buf (Printf.sprintf "extern @%s/%d\n" name arity))
    m.externs;
  List.iter (pp_global buf) m.globals;
  List.iter (pp_func buf) m.funcs;
  Buffer.contents buf

let func_to_string f =
  let buf = Buffer.create 512 in
  pp_func buf f;
  Buffer.contents buf
