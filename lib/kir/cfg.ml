(** Control-flow graph view over a KIR function: successor/predecessor
    maps, reverse postorder, and reachability. Used by the analysis passes
    (dominators, natural loops) that power the optional guard
    optimizations. *)

open Types

type t = {
  func : func;
  blocks : block array;
  index : (label, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

let of_func (f : func) : t =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i b -> Hashtbl.replace index b.b_label i) blocks;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.filter_map
          (fun l -> Hashtbl.find_opt index l)
          (successors b.term)
      in
      (* dedupe while keeping order: a switch may target a label twice *)
      let ss =
        List.fold_left (fun acc s -> if List.mem s acc then acc else acc @ [ s ]) [] ss
      in
      succ.(i) <- ss;
      List.iter (fun s -> pred.(s) <- pred.(s) @ [ i ]) ss)
    blocks;
  { func = f; blocks; index; succ; pred }

let n_blocks g = Array.length g.blocks
let block g i = g.blocks.(i)
let entry _g = 0

let index_of g lbl =
  match Hashtbl.find_opt g.index lbl with
  | Some i -> i
  | None -> invalid_arg ("Cfg.index_of: unknown label " ^ lbl)

(** Depth-first postorder from the entry block; unreachable blocks are
    excluded. *)
let postorder g =
  let n = n_blocks g in
  if n = 0 then []
  else begin
    let seen = Array.make n false in
    let order = ref [] in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter dfs g.succ.(i);
        order := i :: !order
      end
    in
    dfs 0;
    List.rev !order
  end

let reverse_postorder g = List.rev (postorder g)

let reachable g =
  let n = n_blocks g in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs g.succ.(i)
    end
  in
  if n > 0 then dfs 0;
  seen

(** Blocks never reached from entry; candidates for dead-code removal. *)
let unreachable_blocks g =
  let seen = reachable g in
  let out = ref [] in
  Array.iteri (fun i b -> if not seen.(i) then out := b :: !out) g.blocks;
  List.rev !out

(* -- pre-header construction --------------------------------------- *)

let retarget_term ~from_l ~to_l = function
  | Br l when l = from_l -> Br to_l
  | Cond_br { cond; if_true; if_false } ->
    let r l = if l = from_l then to_l else l in
    Cond_br { cond; if_true = r if_true; if_false = r if_false }
  | Switch { v; cases; default } ->
    let r l = if l = from_l then to_l else l in
    Switch { v; cases = List.map (fun (k, l) -> (k, r l)) cases; default = r default }
  | t -> t

(** Split the edges from [preds] into [target] through a fresh empty
    block that only branches to [target] — the edge-splitting primitive
    behind pre-header creation: called with a loop's outside
    predecessors it yields a block that executes exactly once per loop
    entry, where hoisted (or widened) guards can live. The new block is
    appended to [f.blocks], so the entry block stays first; any {!t}
    built from [f] before the call is stale afterwards. *)
let insert_preheader (f : func) ~(target : label) ~(preds : label list)
    ~(fresh : label) : block =
  if List.exists (fun b -> b.b_label = fresh) f.blocks then
    invalid_arg ("Cfg.insert_preheader: label already exists: " ^ fresh);
  List.iter
    (fun b ->
      if List.mem b.b_label preds then
        b.term <- retarget_term ~from_l:target ~to_l:fresh b.term)
    f.blocks;
  let pre = { b_label = fresh; body = []; term = Br target } in
  f.blocks <- f.blocks @ [ pre ];
  pre
