(** Simulated physical memory: a flat byte array with little-endian
    integer accessors, as DRAM behind the direct map. *)

type t = { bytes : Bytes.t; size : int }

exception Bad_phys_access of { addr : int; size : int }

let create ~size = { bytes = Bytes.make size '\000'; size }

let check t addr size =
  if addr < 0 || size < 0 || addr + size > t.size then
    raise (Bad_phys_access { addr; size })

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.bytes addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.set t.bytes addr (Char.chr (v land 0xff))

(** Little-endian load of [size] ∈ {1,2,4,8} bytes. 8-byte loads are
    truncated to OCaml's 63-bit int range (top bit lost — documented
    simulator restriction). *)
let read t addr ~size =
  check t addr size;
  let rec go acc i =
    if i = size then acc
    else
      go (acc lor (Char.code (Bytes.get t.bytes (addr + i)) lsl (8 * i))) (i + 1)
  in
  go 0 0 land max_int

let write t addr ~size v =
  check t addr size;
  for i = 0 to size - 1 do
    Bytes.set t.bytes (addr + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let blit_string t ~dst s =
  check t dst (String.length s);
  Bytes.blit_string s 0 t.bytes dst (String.length s)

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.bytes src t.bytes dst len

let read_string t ~src ~len =
  check t src len;
  Bytes.sub_string t.bytes src len

let fill t ~dst ~len c =
  check t dst len;
  Bytes.fill t.bytes dst len c

(** Copy of the first [len] bytes (default: all) of physical memory, for
    before/after diffing by the fault-containment harness. *)
let snapshot ?len t =
  let len = match len with Some l -> min l t.size | None -> t.size in
  Bytes.sub t.bytes 0 len

(** Contiguous [(offset, length)] ranges over [0, length snap) where the
    current contents differ from [snap]. Equal stretches are skipped
    eight bytes at a time so diffing megabytes of unchanged DRAM between
    fault injections stays cheap. *)
let diff_ranges t snap =
  let n = min (Bytes.length snap) t.size in
  let ranges = ref [] in
  let run_start = ref (-1) in
  let flush upto =
    if !run_start >= 0 then begin
      ranges := (!run_start, upto - !run_start) :: !ranges;
      run_start := -1
    end
  in
  let i = ref 0 in
  while !i < n do
    if
      !run_start < 0 && !i + 8 <= n
      && Bytes.get_int64_ne t.bytes !i = Bytes.get_int64_ne snap !i
    then i := !i + 8
    else begin
      if Bytes.get t.bytes !i <> Bytes.get snap !i then begin
        if !run_start < 0 then run_start := !i
      end
      else flush !i;
      incr i
    end
  done;
  flush n;
  List.rev !ranges
