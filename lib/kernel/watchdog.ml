(** A periodic in-kernel watchdog: named health checks fired off the
    simulated clock, the substrate the policy layer's integrity audit
    runs on ([lib/policy/integrity.ml] registers its tier audit here).

    The kernel library cannot depend on the policy layer, so the
    watchdog is generic: checks are [unit -> int] callbacks returning
    the number of problems found, registered by name. It is clocked
    directly off a {!Machine.Model} (the kernel's machine; aliasing it
    from [Kernel] would be a dependency cycle). Like
    {!Kernsvc.Ktimer}, firing is cooperative — workloads call
    {!run_pending} (or {!advance}) at their convenient points, and the
    watchdog fires when the machine clock has passed its deadline,
    charging interrupt entry/exit plus whatever the checks themselves
    charge. Checks can also be forced immediately with {!run_now} (the
    audit ioctl's path). *)

type check = {
  ck_name : string;
  ck_run : unit -> int;  (** returns problems found *)
  mutable ck_runs : int;
  mutable ck_problems : int;
}

type t = {
  machine : Machine.Model.t;
  period : int;  (** cycles between firings *)
  mutable checks : check list;  (** registration order *)
  mutable deadline : int;
  mutable enabled : bool;
  mutable fires : int;  (** periodic expiries taken *)
  mutable problems : int;  (** total problems across all checks *)
}

let default_period = 50_000

(* interrupt entry/exit around a firing, same order as Ktimer's *)
let fire_overhead_cycles = 110

let create ?(period = default_period) machine =
  if period <= 0 then invalid_arg "Watchdog.create: period <= 0";
  {
    machine;
    period;
    checks = [];
    deadline = Machine.Model.cycles machine + period;
    enabled = true;
    fires = 0;
    problems = 0;
  }

let add_check t ~name f =
  t.checks <- t.checks @ [ { ck_name = name; ck_run = f; ck_runs = 0; ck_problems = 0 } ]

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let period t = t.period
let fires t = t.fires
let problems t = t.problems
let checks t = t.checks

(** Run every registered check now (no deadline test, no interrupt
    overhead — the caller is already in a suitable context, e.g. an
    ioctl). Returns the total problems found. *)
let run_now t =
  List.fold_left
    (fun acc ck ->
      let n = ck.ck_run () in
      ck.ck_runs <- ck.ck_runs + 1;
      ck.ck_problems <- ck.ck_problems + n;
      t.problems <- t.problems + n;
      acc + n)
    0 t.checks

(** Fire if the machine clock has passed the deadline: charge interrupt
    entry/exit, run the checks, re-arm. Returns the problems found (0
    when nothing fired). Catches up at most one period per call —
    back-to-back missed periods coalesce, as a real per-CPU timer
    softirq does. *)
let run_pending t =
  let machine = t.machine in
  let now = Machine.Model.cycles machine in
  if (not t.enabled) || t.checks = [] || now < t.deadline then 0
  else begin
    t.fires <- t.fires + 1;
    Machine.Model.add_cycles machine fire_overhead_cycles;
    let n = run_now t in
    t.deadline <- Machine.Model.cycles machine + t.period;
    n
  end

(** Advance the simulated clock by [cycles] (idle time between workload
    bursts), then service any expiry. *)
let advance t ~cycles =
  Machine.Model.add_cycles t.machine cycles;
  run_pending t
