(** The simulated core kernel: address space, symbol table, module loader
    with load-time signature validation, character devices (ioctl), and
    panic semantics.

    The kernel is "core" in the paper's sense: it is trusted, its own code
    is never guarded, and it is what CARAT KOP protects. Kernel modules
    written in KIR execute through a pluggable [runner] (installed by the
    VM layer, keeping the library dependency graph acyclic) and access
    memory through {!read} and {!write}, which translate virtual
    addresses, dispatch MMIO, and charge the machine cost model. *)

(* Re-exported submodules: [kernel.ml] is the library's entry module, so
   these aliases are how users reach the layout constants, the physical
   memory, and the log. *)
module Layout = Layout
module Memory = Memory
module Klog = Klog
module Watchdog = Watchdog

type panic_info = {
  reason : string;
  log_tail : string list;
  diag : string list;
      (** subsystem-supplied diagnostic attachments captured at panic
          time (e.g. the policy module's guard-trace tail), printed with
          the crash report but kept out of the one-line reason *)
}

exception Panic of panic_info

type mmio_region = {
  mmio_name : string;
  mmio_virt : int;
  mmio_size : int;
  mmio_read : int -> int -> int;  (** offset, size -> value *)
  mmio_write : int -> int -> int -> unit;  (** offset, size, value *)
}

type mapping = { map_virt : int; map_size : int; map_phys : int }

(** Record of a containment event. One is created per quarantined module
    and stays behind (indexed by the module's former symbols) so later
    callers get a diagnosable -EIO instead of a missing-symbol panic. *)
type quarantine_record = {
  q_module : string;
  q_reason : string;
  mutable q_rejected_calls : int;
      (** calls bounced off the quarantined module after containment *)
}

type loaded_module = {
  lm_name : string;
  lm_kir : Kir.Types.modul;
  lm_globals : (string * int) list;  (** global name -> virtual address *)
  mutable lm_state : [ `Live | `Dead | `Quarantined ];
  mutable lm_locks_held : int;
  mutable lm_quarantine : quarantine_record option;
}

type symbol =
  | Native of (t -> int array -> int)
  | Kir_func of loaded_module * Kir.Types.func
  | Data of int

and t = {
  mem : Memory.t;
  phys_size : int;
  mutable machine : Machine.Model.t;
      (** the machine model cycles are charged to. Single-CPU runs never
          reassign it; the SMP scheduler swaps in the running CPU's
          model on every context switch (each simulated CPU owns private
          caches, predictor and clock). *)
  rng : Machine.Rng.t;
  log : Klog.t;
  symbols : (string, symbol) Hashtbl.t;
  mutable modules : loaded_module list;
  devices : (string, t -> cmd:int -> arg:int -> int) Hashtbl.t;
  mutable mmio : mmio_region list;
  mutable mappings : mapping list;
  mutable kmalloc_next : int;  (** physical bump pointer *)
  mutable module_virt_next : int;
  mutable user_virt_next : int;
  mutable current_module : loaded_module option;
  mutable panicked : panic_info option;
  mutable quarantined : quarantine_record list;  (** newest first *)
  quarantined_symbols : (string, quarantine_record) Hashtbl.t;
      (** former exports of quarantined modules: calls return {!eio} *)
  mutable quarantine_hooks : (t -> loaded_module -> unit) list;
      (** run at containment time; kernel services register these to
          cancel the module's pending callbacks (timers, queues, ...) *)
  mutable load_hooks : (t -> loaded_module -> unit) list;
      (** run after a module is published but before its [init_module]:
          the VM's compiled engine registers one to closure-compile the
          module's functions at load time *)
  mutable require_signature : bool;
  mutable require_certificate : bool;
      (** also demand a valid guard-completeness certificate
          ({!Analysis.Certify}) at insmod; off by default so baseline
          (uncertified) modules still load in permissive setups *)
  signing_key : string;
  runner : (t -> loaded_module -> Kir.Types.func -> int array -> int) option ref;
  addr_to_symbol : (int, string) Hashtbl.t;
      (** reverse map for synthetic function addresses (indirect calls) *)
  overlapped_natives : (string, unit) Hashtbl.t;
      (** natives whose whole invocation (call overhead included) is
          off the critical path and discounted by speculative overlap —
          the guard function is the canonical case *)
  mutable symbol_gen : int;
      (** bumped on every symbol-table mutation (register, insmod, rmmod,
          quarantine): callers holding a {!resolved} target revalidate
          against this generation instead of re-hashing the name *)
  mutable last_mapping : mapping;
      (** one-entry translation cache in front of the [mappings] scan;
          mappings are append-only, so a cached entry can never go stale *)
  (* privileged machine state reachable only through intrinsics *)
  msrs : (int, int) Hashtbl.t;
  mutable irqs_enabled : bool;
  (* heap sanitizer state. Allocation *tracking* is always on (cheap
     host-side bookkeeping, no simulated cost) so any report can name
     the allocation an address belongs to; redzones, freed-state poison,
     quarantined reuse and per-access shadow checks only engage once
     {!enable_sanitizer} flips [sanitize] *)
  shadow : Sanitizer.Shadow.t;
  mutable sanitize : bool;
  mutable kfree_list : (int * int) list;
      (** reclaimable raw heap blocks (virt base, len), newest first *)
  mutable san_reports : san_report list;  (** newest first, capped *)
  mutable san_count : int;
  mutable access_probe : (addr:int -> size:int -> write:bool -> unit) option;
      (** observation-only hook on module-context reads/writes; charges
          no simulated cycles (the SMP race detector taps it) *)
}

and san_report = {
  sr_kind : string;  (** "oob" | "uaf" | "double-free" | "invalid-free" | "deny" *)
  sr_addr : int;
  sr_size : int;
  sr_write : bool;
  sr_module : string option;  (** faulting module, when one was current *)
  sr_attribution : string option;
      (** the owning/nearest allocation, human-readable, with offset *)
  sr_site : string;  (** the faulting context's description *)
}

type load_error =
  | Verification_failed of string
  | Signature_rejected of Passes.Signing.verify_error
  | Certificate_rejected of Analysis.Certify.validate_error
  | Symbol_collision of string
  | Unresolved_import of string
  | Kernel_is_panicked

let load_error_to_string = function
  | Verification_failed s -> "IR verification failed: " ^ s
  | Signature_rejected e ->
    "signature rejected: " ^ Passes.Signing.verify_error_to_string e
  | Certificate_rejected e ->
    "certificate rejected: " ^ Analysis.Certify.validate_error_to_string e
  | Symbol_collision s -> "symbol collision on " ^ s
  | Unresolved_import s -> "unresolved import " ^ s
  | Kernel_is_panicked -> "kernel has panicked"

exception Fault of { addr : int; size : int; what : string }

(** What calls into a quarantined module return: -EIO in spirit. *)
let eio = -5

(* typed ioctl/device error codes, -E* in spirit, so device handlers can
   reject malformed arguments distinguishably instead of a blanket -1 *)
let einval = -22 (* malformed argument (bad flags, negative size, ...) *)
let enotty = -25 (* unknown ioctl command for this device *)
let enospc = -28 (* no space: policy table / domain capacity exhausted *)
let erange = -34 (* argument out of the representable/supported range *)

exception Quarantine_trap of loaded_module
(** Raised by the policy module (Quarantine enforcement mode) from guard
    context inside the offending module; {!call_symbol} catches it at the
    kernel→module boundary and converts the in-flight call to {!eio}, so
    the kernel itself keeps running. *)

(* ------------------------------------------------------------------ *)

let panic ?(diag = []) t reason =
  match t.panicked with
  | Some original ->
    (* Idempotent: a second panic (raised while handling the first, or by
       later activity on a dead kernel) must not clobber the first-fault
       record — that record is the diagnosis. *)
    Klog.log t.log Klog.Crit
      "Kernel panic - not syncing: %s (during panic: %s)" original.reason
      reason;
    raise (Panic original)
  | None ->
    let info = { reason; log_tail = Klog.tail t.log 16; diag } in
    Klog.log t.log Klog.Crit "Kernel panic - not syncing: %s" reason;
    t.panicked <- Some info;
    raise (Panic info)

let check_alive t = if t.panicked <> None then panic t "action on dead kernel"

(* ------------------------------------------------------------------ *)
(* address translation *)

let kernel_image_phys_size = Layout.kernel_text_size + Layout.kernel_data_size

let translate t addr size :
    [ `Phys of int | `Mmio of mmio_region * int | `Fault ] =
  if addr >= Layout.direct_map_base && addr + size <= Layout.direct_map_base + t.phys_size
  then `Phys (addr - Layout.direct_map_base)
  else if
    addr >= Layout.kernel_text_base
    && addr + size <= Layout.kernel_data_base + Layout.kernel_data_size
  then `Phys (addr - Layout.kernel_text_base)
  else begin
    let lm = t.last_mapping in
    if addr >= lm.map_virt && addr + size <= lm.map_virt + lm.map_size then
      `Phys (lm.map_phys + (addr - lm.map_virt))
    else
    match
      List.find_opt
        (fun m -> addr >= m.map_virt && addr + size <= m.map_virt + m.map_size)
        t.mappings
    with
    | Some m ->
      t.last_mapping <- m;
      `Phys (m.map_phys + (addr - m.map_virt))
    | None -> (
      match
        List.find_opt
          (fun r ->
            addr >= r.mmio_virt && addr + size <= r.mmio_virt + r.mmio_size)
          t.mmio
      with
      | Some r -> `Mmio (r, addr - r.mmio_virt)
      | None -> `Fault)
  end

(* --------------------------------------------------------------- *)
(* heap sanitizer: report plumbing and the per-access shadow check *)

(** Simulated cost of one shadow lookup on a checked access — the
    KASAN-style pay-for-what-you-use overhead, charged only while the
    sanitizer is enabled. *)
let san_check_cycles = 7

let san_site t =
  match t.current_module with Some lm -> lm.lm_name | None -> "kernel"

let format_san_report r =
  Printf.sprintf "kasan[%s]: %s of %d bytes at 0x%x by %s%s" r.sr_kind
    (if r.sr_write then "write" else "read")
    r.sr_size r.sr_addr
    (match r.sr_module with Some m -> "module " ^ m | None -> r.sr_site)
    (match r.sr_attribution with Some a -> " -> " ^ a | None -> "")

let record_san ?alloc t ~kind ~addr ~size ~write =
  let attribution =
    match alloc with
    | Some (a, off) ->
      Some
        (Printf.sprintf "%s, offset %d" (Sanitizer.Shadow.describe a) off)
    | None -> (
      match Sanitizer.Shadow.attribute t.shadow addr with
      | Some (a, off) ->
        Some
          (Printf.sprintf "%s, offset %d" (Sanitizer.Shadow.describe a) off)
      | None -> None)
  in
  let r =
    {
      sr_kind = kind;
      sr_addr = addr;
      sr_size = size;
      sr_write = write;
      sr_module = Option.map (fun lm -> lm.lm_name) t.current_module;
      sr_attribution = attribution;
      sr_site = san_site t;
    }
  in
  t.san_count <- t.san_count + 1;
  if List.length t.san_reports < 128 then begin
    t.san_reports <- r :: t.san_reports;
    Klog.log t.log Klog.Err "KASAN-KOP: %s" (format_san_report r)
  end

(** The at-access hook shared by {!read} and {!write}: feed the
    observation probe (race detection; free) and, with the sanitizer on,
    charge the shadow-lookup cost and report any redzone / freed-memory
    hit *at the faulting access*, with allocation attribution. Reports
    never alter the access's outcome — detection is KASAN-style
    report-and-continue; enforcement stays the guard's job. *)
let san_access t ~addr ~size ~write =
  (match t.access_probe with
  | Some f when t.current_module <> None -> f ~addr ~size ~write
  | _ -> ());
  if t.sanitize then begin
    Machine.Model.add_cycles t.machine san_check_cycles;
    match Sanitizer.Shadow.check t.shadow ~addr ~size with
    | Some (Sanitizer.Shadow.Out_of_bounds a) ->
      record_san t ~kind:"oob" ~addr ~size ~write
        ~alloc:(a, addr - a.Sanitizer.Shadow.base)
    | Some (Sanitizer.Shadow.Use_after_free a) ->
      record_san t ~kind:"uaf" ~addr ~size ~write
        ~alloc:(a, addr - a.Sanitizer.Shadow.base)
    | None -> ()
  end

(** Read simulated memory at a virtual address, charging machine cost.
    This is the path taken by all CPU-side accesses, guarded or not. *)
let read t ~addr ~size =
  san_access t ~addr ~size ~write:false;
  match translate t addr size with
  | `Phys p ->
    Machine.Model.load t.machine addr size;
    Memory.read t.mem p ~size
  | `Mmio (r, off) ->
    Machine.Model.mmio t.machine;
    r.mmio_read off size
  | `Fault -> raise (Fault { addr; size; what = "read" })

let write t ~addr ~size v =
  san_access t ~addr ~size ~write:true;
  match translate t addr size with
  | `Phys p ->
    Machine.Model.store t.machine addr size;
    Memory.write t.mem p ~size v
  | `Mmio (r, off) ->
    Machine.Model.mmio_write t.machine;
    r.mmio_write off size v
  | `Fault -> raise (Fault { addr; size; what = "write" })

(** Cost-free, translation-only access used by DMA engines: devices reach
    physical memory behind the CPU's back (and behind the guards — the
    paper's point about DMA not being checked). *)
let dma_read t ~addr ~size =
  match translate t addr size with
  | `Phys p -> Memory.read t.mem p ~size
  | `Mmio (r, off) -> r.mmio_read off size
  | `Fault -> raise (Fault { addr; size; what = "dma_read" })

let dma_write t ~addr ~size v =
  match translate t addr size with
  | `Phys p -> Memory.write t.mem p ~size v
  | `Mmio (r, off) -> r.mmio_write off size v
  | `Fault -> raise (Fault { addr; size; what = "dma_write" })

let read_string t ~addr ~len =
  match translate t addr len with
  | `Phys p -> Memory.read_string t.mem ~src:p ~len
  | _ -> raise (Fault { addr; size = len; what = "read_string" })

let write_string t ~addr s =
  match translate t addr (String.length s) with
  | `Phys p -> Memory.blit_string t.mem ~dst:p s
  | _ ->
    raise (Fault { addr; size = String.length s; what = "write_string" })

(* ------------------------------------------------------------------ *)
(* allocation *)

let align_up v a = (v + a - 1) land lnot (a - 1)

(** Allocate [size] bytes of physical memory; returns the physical
    address. There is no free: module lifetimes in the simulation are
    short and leak-free accounting is not the point. *)
let kmalloc_phys t ~size =
  let p = align_up t.kmalloc_next 64 in
  if p + size > t.phys_size then panic t "out of physical memory (kmalloc)";
  t.kmalloc_next <- p + size;
  p

(** Allocate kernel heap memory; returns the direct-map virtual address
    (as Linux's kmalloc does). Every allocation is tracked in the shadow
    allocation table (attribution for sanitizer reports); [tag] names
    the object in those reports. Blocks reclaimed by {!kfree} are reused
    first-fit — the historical bump-only workloads never call kfree, so
    their layout is untouched. With the sanitizer enabled the block
    grows a redzone on each side and the returned pointer stays 64-byte
    aligned. *)
let kmalloc ?(tag = "") t ~size =
  let rz = if t.sanitize then Sanitizer.Shadow.redzone else 0 in
  (* the raw extent a reused block must cover; when bumping fresh memory
     without redzones we advance by [size] exactly, preserving the
     classic allocator's pointer sequence bit-for-bit *)
  let extent = (2 * rz) + align_up size 64 in
  let raw =
    let rec take acc = function
      | (b, l) :: rest when l >= extent ->
        t.kfree_list <- List.rev_append acc rest;
        if l - extent >= 64 then
          t.kfree_list <- (b + extent, l - extent) :: t.kfree_list;
        Some b
      | x :: rest -> take (x :: acc) rest
      | [] -> None
    in
    match take [] t.kfree_list with
    | Some b -> b
    | None ->
      let bump = if rz = 0 then size else extent in
      Layout.direct_map_of_phys (kmalloc_phys t ~size:bump)
  in
  let base = raw + rz in
  ignore
    (Sanitizer.Shadow.track_alloc t.shadow ~base ~size ~lo_rz:rz ~hi_rz:rz
       ~tag ~site:(san_site t)
      : Sanitizer.Shadow.alloc);
  base

type free_error =
  | Free_double of string  (** the block was already freed; describes it *)
  | Free_invalid  (** never an allocation base (or an interior pointer) *)

let free_error_to_string = function
  | Free_double d -> "double free of " ^ d
  | Free_invalid -> "invalid free (never a live allocation)"

(** Free a {!kmalloc} block. Double frees and never-allocated (or
    interior-pointer) frees are *typed* errors, mirroring the ioctl
    layer's -EINVAL/-ERANGE discipline, instead of silent corruption:
    the heap state is untouched and the caller learns which. With the
    sanitizer on the block is poisoned and parked in the reuse
    quarantine; otherwise it returns to the free list immediately. *)
let kfree t ~addr : (unit, free_error) result =
  match Sanitizer.Shadow.free t.shadow ~addr ~site:(san_site t) with
  | Ok (_freed, reclaimed) ->
    t.kfree_list <- reclaimed @ t.kfree_list;
    Ok ()
  | Error (Sanitizer.Shadow.Double_free a) ->
    if t.sanitize then
      record_san t ~kind:"double-free" ~addr ~size:a.Sanitizer.Shadow.size
        ~write:true ~alloc:(a, 0);
    Klog.log t.log Klog.Warn "kfree: double free of 0x%x (%s)" addr
      (Sanitizer.Shadow.describe a);
    Error (Free_double (Sanitizer.Shadow.describe a))
  | Error (Sanitizer.Shadow.Invalid_free interior) ->
    if t.sanitize then
      record_san t ~kind:"invalid-free" ~addr ~size:0 ~write:true
        ?alloc:(Option.map (fun a -> (a, addr - a.Sanitizer.Shadow.base)) interior);
    Klog.log t.log Klog.Warn "kfree: invalid free of 0x%x%s" addr
      (match interior with
      | Some a ->
        Printf.sprintf " (interior pointer into %s)" (Sanitizer.Shadow.describe a)
      | None -> "");
    Error Free_invalid

(** Map [size] bytes into the module area, backed by fresh physical
    memory; returns the module-area virtual address. *)
let module_alloc t ~size =
  let phys = kmalloc_phys t ~size in
  let virt = align_up t.module_virt_next 64 in
  if virt + size > Layout.module_base + Layout.module_area_size then
    panic t "module area exhausted";
  t.module_virt_next <- virt + size;
  t.mappings <- { map_virt = virt; map_size = size; map_phys = phys } :: t.mappings;
  virt

(** Map a user-space buffer (for the user-level test tool). *)
let map_user t ~size =
  let phys = kmalloc_phys t ~size in
  let virt = align_up t.user_virt_next 4096 in
  t.user_virt_next <- virt + size;
  t.mappings <- { map_virt = virt; map_size = size; map_phys = phys } :: t.mappings;
  virt

(** Map a device's register BAR into the MMIO window; returns its virtual
    base (what ioremap would return). *)
let ioremap t ~name ~size ~read:mmio_read ~write:mmio_write =
  let used =
    List.fold_left (fun acc r -> max acc (r.mmio_virt + r.mmio_size)) Layout.mmio_base t.mmio
  in
  let virt = align_up used 4096 in
  if virt + size > Layout.mmio_base + Layout.mmio_area_size then
    panic t "MMIO window exhausted";
  let r = { mmio_name = name; mmio_virt = virt; mmio_size = size; mmio_read; mmio_write } in
  t.mmio <- r :: t.mmio;
  r

(* ------------------------------------------------------------------ *)
(* symbols *)

(* Any mutation of the symbol table invalidates every cached [resolved]
   target in one step; resolving is cheap enough that a global generation
   beats per-name bookkeeping. *)
let bump_symbol_gen t = t.symbol_gen <- t.symbol_gen + 1

let symbol_generation t = t.symbol_gen

let register_symbol t name sym =
  if Hashtbl.mem t.symbols name then Error (Symbol_collision name)
  else begin
    Hashtbl.replace t.symbols name sym;
    bump_symbol_gen t;
    Ok ()
  end

let register_native ?(overlapped = false) t name fn =
  Hashtbl.replace t.symbols name (Native fn);
  if overlapped then Hashtbl.replace t.overlapped_natives name ()
  else Hashtbl.remove t.overlapped_natives name;
  bump_symbol_gen t

let lookup_symbol t name = Hashtbl.find_opt t.symbols name

(** Address of a data symbol or function "address" for [Sym] operands.
    Functions get synthetic addresses in the text range so that taking a
    function's address and comparing it works. *)
let symbol_address t name =
  match lookup_symbol t name with
  | Some (Data addr) -> Some addr
  | Some (Kir_func _) | Some (Native _) ->
    (* synthetic, stable text address derived from the name *)
    let h = Hashtbl.hash name land 0xFFFFF in
    let addr = Layout.kernel_text_base + (h * 16) in
    Hashtbl.replace t.addr_to_symbol addr name;
    Some addr
  | None -> None

(** Inverse of {!symbol_address} for function symbols whose address has
    been taken; used to resolve indirect calls. *)
let symbol_of_address t addr = Hashtbl.find_opt t.addr_to_symbol addr

(* ------------------------------------------------------------------ *)
(* quarantine: graceful containment instead of the paper's panic *)

(** Register a containment hook; kernel services (timers, message queues)
    use these to cancel a quarantined module's pending callbacks. *)
let add_quarantine_hook t hook = t.quarantine_hooks <- hook :: t.quarantine_hooks

(** Register a module-load hook, run for each subsequently loaded module
    after its symbols are published and before [init_module] executes. *)
let add_load_hook t hook = t.load_hooks <- hook :: t.load_hooks

(** Isolate [lm] without taking the kernel down: mark it quarantined,
    unlink its exported symbols (later calls fail with {!eio} instead of
    resolving), force-release any kernel locks it holds (its code will
    never run again to release them), and run every registered quarantine
    hook. Idempotent; does nothing for a module that is already dead or
    quarantined. *)
let quarantine_module t (lm : loaded_module) ~reason =
  if lm.lm_state = `Live then begin
    let qr = { q_module = lm.lm_name; q_reason = reason; q_rejected_calls = 0 } in
    lm.lm_state <- `Quarantined;
    lm.lm_quarantine <- Some qr;
    t.quarantined <- qr :: t.quarantined;
    List.iter
      (fun (f : Kir.Types.func) ->
        match Hashtbl.find_opt t.symbols f.Kir.Types.f_name with
        | Some (Kir_func (owner, _)) when owner == lm ->
          Hashtbl.remove t.symbols f.Kir.Types.f_name;
          Hashtbl.replace t.quarantined_symbols f.Kir.Types.f_name qr
        | _ -> ())
      lm.lm_kir.Kir.Types.funcs;
    List.iter
      (fun (name, _) ->
        Hashtbl.remove t.symbols name;
        Hashtbl.replace t.quarantined_symbols name qr)
      lm.lm_globals;
    bump_symbol_gen t;
    if lm.lm_locks_held > 0 then begin
      Klog.log t.log Klog.Warn
        "quarantine %s: force-releasing %d orphaned kernel lock(s)" lm.lm_name
        lm.lm_locks_held;
      lm.lm_locks_held <- 0
    end;
    List.iter (fun hook -> hook t lm) t.quarantine_hooks;
    Klog.log t.log Klog.Err "module %s quarantined: %s" lm.lm_name reason
  end

let quarantine_records t = t.quarantined
let quarantined_symbol t name = Hashtbl.find_opt t.quarantined_symbols name

(** A symbol resolved to a callable target, for call sites that cache
    the resolution. A holder revalidates with {!symbol_generation}
    before each use: any symbol-table mutation (register, insmod, rmmod,
    quarantine) bumps the generation and forces a fresh {!resolve} —
    the same epoch scheme the policy engine's fast tiers use. Data
    symbols, quarantine tombstones and missing names are not cacheable;
    those calls take {!call_symbol} every time. *)
type resolved =
  | R_native of (t -> int array -> int)
  | R_native_overlapped of (t -> int array -> int)
  | R_kir of loaded_module * Kir.Types.func

let resolve t name : resolved option =
  match Hashtbl.find_opt t.symbols name with
  | Some (Native fn) ->
    if Hashtbl.mem t.overlapped_natives name then
      Some (R_native_overlapped fn)
    else Some (R_native fn)
  | Some (Kir_func (lm, f)) -> Some (R_kir (lm, f))
  | Some (Data _) | None -> None

let call_native t fn (args : int array) : int =
  Machine.Model.call t.machine;
  fn t args

(* closure-free overlap bracket: this is the per-guard dispatch path
   and must not allocate. Semantics match [with_overlap], including
   leaving the full cost in place if [fn] raises. *)
let call_native_overlapped t fn (args : int array) : int =
  let t0 = Machine.Model.overlap_start t.machine in
  Machine.Model.call t.machine;
  let r = fn t args in
  Machine.Model.overlap_end t.machine t0;
  r

let call_kir t lm (f : Kir.Types.func) (args : int array) : int =
  Machine.Model.call t.machine;
  match lm.lm_state with
    | `Dead -> panic t (Printf.sprintf "call into unloaded module %s" lm.lm_name)
    | `Quarantined ->
      (* quarantining unlinks the exports, but a stale direct reference
         can still land here *)
      (match lm.lm_quarantine with
      | Some qr -> qr.q_rejected_calls <- qr.q_rejected_calls + 1
      | None -> ());
      Klog.log t.log Klog.Warn "call into quarantined module %s rejected"
        lm.lm_name;
      eio
    | `Live -> (
      match !(t.runner) with
      | Some run -> (
        let saved = t.current_module in
        (* the boundary frame is the outermost frame of [lm]: the caller
           is the kernel or a different module *)
        let boundary =
          match saved with Some prev -> prev != lm | None -> true
        in
        t.current_module <- Some lm;
        match run t lm f args with
        | r ->
          t.current_module <- saved;
          r
        | exception Quarantine_trap qlm when boundary && qlm == lm ->
          (* unwound the whole quarantined module; the call that was in
             flight fails with -EIO and the kernel carries on *)
          t.current_module <- saved;
          Machine.Model.add_cycles t.machine 40 (* error return path *);
          eio
        | exception e ->
          t.current_module <- saved;
          raise e)
      | None -> panic t "no KIR runner installed")

(** Invoke a previously {!resolve}d target. The caller is responsible
    for having revalidated its cache against {!symbol_generation};
    module liveness is still checked on every call, exactly as in
    {!call_symbol}. *)
let call_resolved t (r : resolved) (args : int array) : int =
  check_alive t;
  match r with
  | R_native fn -> call_native t fn args
  | R_native_overlapped fn -> call_native_overlapped t fn args
  | R_kir (lm, f) -> call_kir t lm f args

(** Invoke a symbol as a function with machine call-overhead accounting.
    KIR functions go through the installed runner. Calls that resolve to
    a quarantined module return {!eio} rather than executing. *)
let call_symbol t name (args : int array) : int =
  check_alive t;
  match lookup_symbol t name with
  | Some (Native fn) ->
    if Hashtbl.mem t.overlapped_natives name then
      call_native_overlapped t fn args
    else call_native t fn args
  | Some (Kir_func (lm, f)) -> call_kir t lm f args
  | Some (Data _) ->
    panic t (Printf.sprintf "call to data symbol %s" name)
  | None -> (
    match Hashtbl.find_opt t.quarantined_symbols name with
    | Some qr ->
      (* the symbol existed until its module was quarantined: fail the
         call like an I/O error on a dead device, not a kernel bug *)
      qr.q_rejected_calls <- qr.q_rejected_calls + 1;
      Machine.Model.call t.machine;
      Klog.log t.log Klog.Debug
        "call to %s rejected: module %s is quarantined (%s)" name qr.q_module
        qr.q_reason;
      eio
    | None -> panic t (Printf.sprintf "call to missing symbol %s" name))

(* ------------------------------------------------------------------ *)
(* module loading (insmod / rmmod) *)

let insmod t (km : Kir.Types.modul) : (loaded_module, load_error) result =
  if t.panicked <> None then Error Kernel_is_panicked
  else begin
    let verdict =
      if t.require_signature then
        match Passes.Signing.verify ~key:t.signing_key km with
        | Ok () -> Ok ()
        | Error e -> Error (Signature_rejected e)
      else Ok ()
    in
    match verdict with
    | Error e ->
      Klog.log t.log Klog.Err "insmod %s: %s" km.Kir.Types.m_name
        (load_error_to_string e);
      Error e
    | Ok () -> (
      match Kir.Verify.check_module km with
      | _ :: _ as errs ->
        let msg = Kir.Verify.error_to_string (List.hd errs) in
        Klog.log t.log Klog.Err "insmod %s: %s" km.Kir.Types.m_name msg;
        Error (Verification_failed msg)
      | [] ->
        let cert_verdict =
          if t.require_certificate then
            match Analysis.Certify.validate km with
            | Ok () -> Ok ()
            | Error e -> Error (Certificate_rejected e)
          else Ok ()
        in
        (match cert_verdict with
        | Error e ->
          Klog.log t.log Klog.Err "insmod %s: %s" km.Kir.Types.m_name
            (load_error_to_string e);
          Error e
        | Ok () ->
        (* imports must resolve before anything is published *)
        let missing =
          List.find_opt
            (fun (name, _) -> not (Hashtbl.mem t.symbols name))
            km.Kir.Types.externs
        in
        (match missing with
        | Some (name, _) ->
          Klog.log t.log Klog.Err "insmod %s: unresolved import %s"
            km.Kir.Types.m_name name;
          Error (Unresolved_import name)
        | None ->
          let collision =
            List.find_opt
              (fun (f : Kir.Types.func) -> Hashtbl.mem t.symbols f.f_name)
              km.Kir.Types.funcs
          in
          (match collision with
          | Some f -> Error (Symbol_collision f.Kir.Types.f_name)
          | None ->
            (* allocate and initialize globals *)
            let globals =
              List.map
                (fun (g : Kir.Types.global) ->
                  let virt = module_alloc t ~size:g.g_size in
                  (match g.g_init with
                  | Some init -> write_string t ~addr:virt init
                  | None -> ());
                  (g.g_name, virt))
                km.Kir.Types.globals
            in
            let lm =
              {
                lm_name = km.Kir.Types.m_name;
                lm_kir = km;
                lm_globals = globals;
                lm_state = `Live;
                lm_locks_held = 0;
                lm_quarantine = None;
              }
            in
            List.iter
              (fun (name, addr) ->
                Hashtbl.replace t.symbols name (Data addr))
              globals;
            List.iter
              (fun (f : Kir.Types.func) ->
                Hashtbl.replace t.symbols f.f_name (Kir_func (lm, f)))
              km.Kir.Types.funcs;
            bump_symbol_gen t;
            t.modules <- lm :: t.modules;
            Klog.printk t.log "module %s loaded (%d functions, %d globals)%s"
              lm.lm_name
              (List.length km.Kir.Types.funcs)
              (List.length globals)
              (if Kir.Types.meta_find km Passes.Guard_injection.meta_guarded
                  = Some "true"
               then " [CARAT KOP protected]"
               else "");
            List.iter (fun hook -> hook t lm) (List.rev t.load_hooks);
            (* run the module init if present *)
            (match Kir.Types.find_func km "init_module" with
            | Some _ -> ignore (call_symbol t "init_module" [||])
            | None -> ());
            Ok lm))))
  end

(** [insmod] under its paper name; the syscall the compile→sign→insert
    chain terminates in. *)
let insert_module = insmod

type unload_error = Locks_held of int | Already_dead

(* purge the tombstone symbols a quarantined module left behind, but only
   the ones that still point at *this* module's containment record (a
   replacement loaded and quarantined under the same name owns its own) *)
let purge_quarantined_symbols t (lm : loaded_module) =
  match lm.lm_quarantine with
  | None -> ()
  | Some qr ->
    let doomed =
      Hashtbl.fold
        (fun name qr' acc -> if qr' == qr then name :: acc else acc)
        t.quarantined_symbols []
    in
    List.iter (Hashtbl.remove t.quarantined_symbols) doomed

(** Remove a module. Refuses when the module still holds kernel locks —
    the paper's §3.1 discussion of why forcefully ejecting a running
    module can deadlock the system. Quarantined modules unload without
    running [cleanup_module] (their code is no longer trusted to
    execute); this is the recovery path that frees the name space for a
    repaired replacement. *)
let rmmod t (lm : loaded_module) : (unit, unload_error) result =
  if lm.lm_state = `Dead then Error Already_dead
  else if lm.lm_state = `Quarantined then begin
    purge_quarantined_symbols t lm;
    lm.lm_state <- `Dead;
    t.modules <- List.filter (fun m -> m != lm) t.modules;
    Klog.printk t.log "module %s unloaded (was quarantined; cleanup skipped)"
      lm.lm_name;
    Ok ()
  end
  else if lm.lm_locks_held > 0 then begin
    Klog.log t.log Klog.Warn
      "rmmod %s refused: module holds %d lock(s); forced unload would deadlock"
      lm.lm_name lm.lm_locks_held;
    Error (Locks_held lm.lm_locks_held)
  end
  else begin
    (match Kir.Types.find_func lm.lm_kir "cleanup_module" with
    | Some _ -> ignore (call_symbol t "cleanup_module" [||])
    | None -> ());
    List.iter
      (fun (f : Kir.Types.func) -> Hashtbl.remove t.symbols f.f_name)
      lm.lm_kir.Kir.Types.funcs;
    List.iter (fun (name, _) -> Hashtbl.remove t.symbols name) lm.lm_globals;
    bump_symbol_gen t;
    lm.lm_state <- `Dead;
    t.modules <- List.filter (fun m -> m != lm) t.modules;
    Klog.printk t.log "module %s unloaded" lm.lm_name;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* privileged intrinsics *)

(** The privileged builtins a module can reach without inline assembly
    (paper §5: "any privileged intrinsic or builtin is useable from
    inside of a CARAT KOP protected module"). Executing one is always
    possible — the question the [Intrinsic_guard] extension answers is
    whether the policy lets a given module do so. *)
let known_intrinsics =
  [ "rdtsc"; "rdmsr"; "wrmsr"; "cli"; "sti"; "invlpg"; "pause"; "hlt" ]

let intrinsic_id name =
  let rec go i = function
    | [] -> None
    | n :: _ when n = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 known_intrinsics

let intrinsic_name id = List.nth_opt known_intrinsics id

let read_msr t msr = try Hashtbl.find t.msrs msr with Not_found -> 0
let irqs_enabled t = t.irqs_enabled

(** Execute a privileged intrinsic with kernel-level effect. *)
let exec_intrinsic t ~iname ~(args : int array) : int =
  Machine.Model.add_cycles t.machine 24 (* serializing-ish cost *);
  match (iname, args) with
  | "rdtsc", _ -> Machine.Model.cycles t.machine
  | "rdmsr", [| msr |] -> read_msr t msr
  | "wrmsr", [| msr; v |] ->
    Hashtbl.replace t.msrs msr v;
    Klog.log t.log Klog.Debug "wrmsr 0x%x <- 0x%x" msr v;
    0
  | "cli", _ ->
    t.irqs_enabled <- false;
    0
  | "sti", _ ->
    t.irqs_enabled <- true;
    0
  | "invlpg", [| _addr |] -> 0 (* TLB not modelled; cost already charged *)
  | "pause", _ -> 0
  | "hlt", _ ->
    if t.irqs_enabled then 0
    else panic t "hlt with interrupts disabled: core parked forever"
  | _ ->
    panic t
      (Printf.sprintf "unknown or malformed intrinsic %s/%d" iname
         (Array.length args))

(* ------------------------------------------------------------------ *)
(* character devices & ioctl *)

let register_device t name handler = Hashtbl.replace t.devices name handler

(** User-space ioctl entry point; charges a syscall crossing. *)
let ioctl t ~dev ~cmd ~arg =
  check_alive t;
  Machine.Model.syscall t.machine;
  match Hashtbl.find_opt t.devices dev with
  | Some handler -> handler t ~cmd ~arg
  | None ->
    Klog.log t.log Klog.Warn "ioctl on missing device %s" dev;
    -1 (* -ENODEV in spirit *)

(* ------------------------------------------------------------------ *)
(* native kernel API exposed to modules *)

let install_core_natives t =
  register_native t "printk" (fun t args ->
      match args with
      | [| addr; len |] ->
        Klog.printk t.log "%s" (read_string t ~addr ~len);
        0
      | _ -> panic t "printk: bad arguments");
  register_native t "memcpy" (fun t args ->
      match args with
      | [| dst; src; len |] ->
        Machine.Model.memcpy t.machine ~dst ~src len;
        (match (translate t src len, translate t dst len) with
        | `Phys ps, `Phys pd -> Memory.blit t.mem ~src:ps ~dst:pd ~len
        | _ -> raise (Fault { addr = src; size = len; what = "memcpy" }));
        dst
      | _ -> panic t "memcpy: bad arguments");
  register_native t "memset" (fun t args ->
      match args with
      | [| dst; byte; len |] ->
        Machine.Model.memcpy t.machine ~dst ~src:dst len;
        (match translate t dst len with
        | `Phys pd -> Memory.fill t.mem ~dst:pd ~len (Char.chr (byte land 0xff))
        | _ -> raise (Fault { addr = dst; size = len; what = "memset" }));
        dst
      | _ -> panic t "memset: bad arguments");
  register_native t "kmalloc" (fun t args ->
      match args with
      | [| size |] -> kmalloc t ~size
      | _ -> panic t "kmalloc: bad arguments");
  register_native t "kfree" (fun t args ->
      match args with
      | [| addr |] -> (
        match kfree t ~addr with
        | Ok () -> 0
        | Error (Free_double _) -> eio
        | Error Free_invalid -> einval)
      | _ -> panic t "kfree: bad arguments");
  register_native t "spin_lock" (fun t _args ->
      (match t.current_module with
      | Some lm -> lm.lm_locks_held <- lm.lm_locks_held + 1
      | None -> ());
      Machine.Model.add_cycles t.machine 18;
      0);
  register_native t "spin_unlock" (fun t _args ->
      (match t.current_module with
      | Some lm when lm.lm_locks_held > 0 ->
        lm.lm_locks_held <- lm.lm_locks_held - 1
      | _ -> ());
      Machine.Model.add_cycles t.machine 14;
      0);
  register_native t "ndelay" (fun t args ->
      match args with
      | [| n |] ->
        Machine.Model.add_cycles t.machine
          (int_of_float (float_of_int n *. t.machine.Machine.Model.p.freq_ghz));
        0
      | _ -> panic t "ndelay: bad arguments");
  register_native t "get_cycles" (fun t _ -> Machine.Model.cycles t.machine)

(* ------------------------------------------------------------------ *)

let create ?(phys_size = 64 * 1024 * 1024) ?(require_signature = true)
    ?(require_certificate = false)
    ?(signing_key = Passes.Pipeline.default_key) ?(seed = 42)
    (mparams : Machine.Model.params) : t =
  let t =
    {
      mem = Memory.create ~size:phys_size;
      phys_size;
      machine = Machine.Model.create mparams;
      rng = Machine.Rng.create seed;
      log = Klog.create ();
      symbols = Hashtbl.create 256;
      modules = [];
      devices = Hashtbl.create 8;
      mmio = [];
      mappings = [];
      kmalloc_next = kernel_image_phys_size;
      module_virt_next = Layout.module_base;
      user_virt_next = Layout.user_base;
      current_module = None;
      panicked = None;
      quarantined = [];
      quarantined_symbols = Hashtbl.create 16;
      quarantine_hooks = [];
      load_hooks = [];
      require_signature;
      require_certificate;
      signing_key;
      runner = ref None;
      addr_to_symbol = Hashtbl.create 64;
      overlapped_natives = Hashtbl.create 4;
      symbol_gen = 0;
      last_mapping = { map_virt = -1; map_size = 0; map_phys = 0 };
      msrs = Hashtbl.create 16;
      irqs_enabled = true;
      shadow = Sanitizer.Shadow.create ();
      sanitize = false;
      kfree_list = [];
      san_reports = [];
      san_count = 0;
      access_probe = None;
    }
  in
  install_core_natives t;
  Klog.printk t.log "kernel boot: %s, %d MiB RAM, signature enforcement %s"
    mparams.Machine.Model.name (phys_size / 1024 / 1024)
    (if require_signature then "on" else "off");
  t

let set_runner t run = t.runner := Some run
let machine t = t.machine

(** Swap the machine model cycles are charged to — the SMP scheduler's
    context switch. Memory, symbols, modules and devices stay shared
    (one kernel image); only caches/predictor/clock are per-CPU. *)
let set_machine t m = t.machine <- m
let log t = t.log
let signing_key t = t.signing_key
let set_require_signature t b = t.require_signature <- b
let set_require_certificate t b = t.require_certificate <- b
let memory t = t.mem
let phys_used t = t.kmalloc_next
let current_module t = t.current_module
let panic_state t = t.panicked
let loaded_modules t = t.modules

(* --------------------------------------------------------------- *)
(* sanitizer surface *)

(** Switch on the KASAN-style heap sanitizer: shadow marking for every
    subsequent kmalloc/kfree, redzones, delayed-reuse quarantine, and
    per-access shadow checks (each costing {!san_check_cycles}).
    Idempotent; allocations made before the switch stay unmarked (they
    are still attributable — tracking is always on). *)
let enable_sanitizer t =
  if not t.sanitize then begin
    t.sanitize <- true;
    Sanitizer.Shadow.set_marking t.shadow true;
    Klog.printk t.log "KASAN-KOP: kernel heap sanitizer enabled"
  end

let sanitizer_enabled t = t.sanitize
let shadow t = t.shadow

(** Observation-only hook on module-context memory accesses; the SMP
    layer installs the race detector's probe here. Charges nothing. *)
let set_access_probe t f = t.access_probe <- f

let san_reports t = List.rev t.san_reports
let san_report_count t = t.san_count

(** Attribute a guard denial to the heap object it targeted — called by
    the policy module so every denied access carries "which allocation,
    what offset" in the sanitizer report stream. No-op when the
    sanitizer is off (the deny is still enforced as always). *)
let san_note_deny t ~addr ~size ~write =
  if t.sanitize then record_san t ~kind:"deny" ~addr ~size ~write

(** /proc/carat/san body: sanitizer state, heap counters, and the recent
    report tail. *)
let san_render t =
  let b = Buffer.create 256 in
  let sh = t.shadow in
  Printf.bprintf b "sanitizer: %s\n" (if t.sanitize then "on" else "off");
  Printf.bprintf b
    "heap: %d allocs, %d frees, %d live bytes, quarantine %d blocks (%d bytes)\n"
    (Sanitizer.Shadow.allocations sh)
    (Sanitizer.Shadow.frees sh)
    (Sanitizer.Shadow.live_bytes sh)
    (Sanitizer.Shadow.quarantine_depth sh)
    (Sanitizer.Shadow.quarantine_bytes sh);
  Printf.bprintf b "reports: %d\n" t.san_count;
  List.iter
    (fun r -> Printf.bprintf b "%s\n" (format_san_report r))
    (san_reports t);
  Buffer.contents b
