(** Red-black interval tree keyed by region base — the structure the
    paper's §3.1 measures its choice against: "a table was chosen in
    order to minimize pointer chasing, lending speedup over other
    implementations like the Linux kernel's red-black tree (even though
    the tree would have O(log n) time complexity)".

    Nodes live in kernel memory (48 bytes: region triple + left/right/
    color), so lookups pay genuine pointer chasing and data-dependent
    branches against the cache and predictor models — which is precisely
    the effect the paper's sentence claims. Overlapping regions cannot be
    represented (same trade-off as the sorted table). *)

type color = Red | Black

type node = {
  mutable region : Region.t;
  mutable left : node option;
  mutable right : node option;
  mutable color : color;
  vaddr : int;
}

type t = {
  kernel : Kernel.t;
  mutable root : node option;
  mutable n : int;
  capacity : int;
}

let name = "rbtree"
let node_size = 48

let create kernel ~capacity = { kernel; root = None; n = 0; capacity }

let touch_node t (n : node) =
  ignore (Kernel.read t.kernel ~addr:n.vaddr ~size:8);
  Machine.Model.retire (Kernel.machine t.kernel) 2

let write_node t (n : node) =
  Kernel.write t.kernel ~addr:(n.vaddr + 24) ~size:8
    (match n.left with Some l -> l.vaddr | None -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 32) ~size:8
    (match n.right with Some r -> r.vaddr | None -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 40) ~size:8
    (match n.color with Red -> 1 | Black -> 0)

let is_red = function Some { color = Red; _ } -> true | _ -> false

(* left-leaning red-black insertion (Sedgewick) *)
let rotate_left t h =
  match h.right with
  | None -> h
  | Some x ->
    h.right <- x.left;
    x.left <- Some h;
    x.color <- h.color;
    h.color <- Red;
    write_node t h;
    write_node t x;
    x

let rotate_right t h =
  match h.left with
  | None -> h
  | Some x ->
    h.left <- x.right;
    x.right <- Some h;
    x.color <- h.color;
    h.color <- Red;
    write_node t h;
    write_node t x;
    x

let flip_colors t h =
  h.color <- Red;
  (match h.left with Some l -> l.color <- Black | None -> ());
  (match h.right with Some r -> r.color <- Black | None -> ());
  write_node t h

let fixup t h =
  let h = if is_red h.right && not (is_red h.left) then rotate_left t h else h in
  let h =
    if is_red h.left && (match h.left with Some l -> is_red l.left | None -> false)
    then rotate_right t h
    else h
  in
  if is_red h.left && is_red h.right then flip_colors t h;
  h

exception Overlap of Region.t

let rec insert_node t (cur : node option) (nw : node) : node =
  match cur with
  | None -> nw
  | Some c ->
    if Region.overlaps c.region nw.region then raise (Overlap c.region);
    if nw.region.Region.base < c.region.Region.base then
      c.left <- Some (insert_node t c.left nw)
    else c.right <- Some (insert_node t c.right nw);
    write_node t c;
    fixup t c

let add t r =
  if t.n >= t.capacity then Error (Structure.capacity_error t.capacity)
  else begin
    let vaddr = Kernel.kmalloc t.kernel ~size:node_size in
    Kernel.write t.kernel ~addr:vaddr ~size:8 r.Region.base;
    Kernel.write t.kernel ~addr:(vaddr + 8) ~size:8 r.Region.len;
    Kernel.write t.kernel ~addr:(vaddr + 16) ~size:8 r.Region.prot;
    let nw = { region = r; left = None; right = None; color = Red; vaddr } in
    match insert_node t t.root nw with
    | root ->
      root.color <- Black;
      t.root <- Some root;
      t.n <- t.n + 1;
      Ok ()
    | exception Overlap other ->
      Error
        (Printf.sprintf "rbtree cannot hold overlapping regions (%s vs %s)"
           (Region.to_string r) (Region.to_string other))
  end

let rec regions_of = function
  | None -> []
  | Some n -> regions_of n.left @ [ n.region ] @ regions_of n.right

let regions t = regions_of t.root
let count t = t.n

let clear t =
  t.root <- None;
  t.n <- 0

let remove t ~base =
  (* rebuild without the FIRST matching node (canonical duplicate-base
     semantics); removals happen on the slow ioctl path *)
  let rs = regions t in
  if List.exists (fun r -> r.Region.base = base) rs then begin
    clear t;
    let removed = ref false in
    List.iter
      (fun r ->
        if (not !removed) && r.Region.base = base then removed := true
        else
          match add t r with
          | Ok () -> ()
          | Error e -> invalid_arg ("Rb_tree.remove rebuild: " ^ e))
      rs;
    true
  end
  else false

let lookup t ~addr ~size : Structure.outcome =
  let scanned = ref 0 in
  let machine = Kernel.machine t.kernel in
  let rec descend (cur : node option) =
    match cur with
    | None -> None
    | Some c ->
      incr scanned;
      touch_node t c;
      if Region.contains c.region ~addr ~size then Some c.region
      else begin
        let go_left = addr < c.region.Region.base in
        (* data-dependent descent direction *)
        Machine.Model.branch machine
          ~pc:(Hashtbl.hash ("rb", c.vaddr land 0xff))
          ~taken:go_left;
        if go_left then descend c.left else descend c.right
      end
  in
  match descend t.root with
  | Some r -> { Structure.matched = Some r; scanned = !scanned }
  | None -> { Structure.matched = None; scanned = !scanned }

(* black-height validation for tests: every root-to-leaf path has the
   same number of black nodes and no red node has a red child *)
let validate t : (unit, string) result =
  let rec go (cur : node option) : (int, string) result =
    match cur with
    | None -> Ok 1
    | Some c -> (
      if c.color = Red && (is_red c.left || is_red c.right) then
        Error "red node with red child"
      else
        match (go c.left, go c.right) with
        | Ok a, Ok b when a = b ->
          Ok (a + if c.color = Black then 1 else 0)
        | Ok _, Ok _ -> Error "black-height mismatch"
        | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  match t.root with
  | Some r when r.color = Red -> Error "red root"
  | _ -> (
    match go t.root with Ok _ -> Ok () | Error e -> Error e)

(* nodes are individual kmalloc'd allocations; no contiguous table *)
let table_region _t = None

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
