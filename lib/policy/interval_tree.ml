(** Augmented interval tree — the large-domain fallback tier (§4.2's
    "other implementations like the Linux kernel's red-black tree",
    upgraded the way the kernel's own vma tree is: each node carries the
    maximum region limit of its subtree, so a stabbing query prunes every
    subtree that provably ends before the probed address).

    Unlike the sorted/splay/rbtree structures, this one represents
    overlapping and duplicate-base regions: nodes carry their insertion
    sequence number and [lookup] answers the containing region with the
    smallest sequence — exactly the linear table's first-match-wins
    semantics, at O(log n) probes. That makes it the only O(log n)
    structure that is a drop-in semantic replacement for the evaluated
    linear table, which is why {!Domain} promotes a domain to it once the
    64-entry fast path overflows.

    Nodes live in kernel memory (64 bytes: region triple, left, right,
    color, max-limit, seq), so lookups pay genuine pointer chasing and
    data-dependent branches against the cache and predictor models. *)

type color = Red | Black

type node = {
  mutable region : Region.t;
  mutable left : node option;
  mutable right : node option;
  mutable color : color;
  mutable maxlim : int;  (** max [Region.limit] over this subtree *)
  seq : int;  (** insertion order; first-match = smallest containing seq *)
  vaddr : int;
}

type t = {
  kernel : Kernel.t;
  mutable root : node option;
  mutable n : int;
  mutable next_seq : int;
  capacity : int;
}

let name = "interval"
let node_size = 64

let create kernel ~capacity =
  { kernel; root = None; n = 0; next_seq = 0; capacity }

let touch_node t (n : node) =
  ignore (Kernel.read t.kernel ~addr:n.vaddr ~size:8);
  Machine.Model.retire (Kernel.machine t.kernel) 2

let maxlim_of = function None -> min_int | Some (n : node) -> n.maxlim

let update_maxlim (n : node) =
  n.maxlim <-
    max (Region.limit n.region) (max (maxlim_of n.left) (maxlim_of n.right))

let write_node t (n : node) =
  Kernel.write t.kernel ~addr:(n.vaddr + 24) ~size:8
    (match n.left with Some l -> l.vaddr | None -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 32) ~size:8
    (match n.right with Some r -> r.vaddr | None -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 40) ~size:8
    (match n.color with Red -> 1 | Black -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 48) ~size:8 n.maxlim

let is_red = function Some { color = Red; _ } -> true | _ -> false

(* left-leaning red-black insertion (Sedgewick), with the max-limit
   augmentation re-derived bottom-up through every rotation *)
let rotate_left t h =
  match h.right with
  | None -> h
  | Some x ->
    h.right <- x.left;
    x.left <- Some h;
    x.color <- h.color;
    h.color <- Red;
    update_maxlim h;
    update_maxlim x;
    write_node t h;
    write_node t x;
    x

let rotate_right t h =
  match h.left with
  | None -> h
  | Some x ->
    h.left <- x.right;
    x.right <- Some h;
    x.color <- h.color;
    h.color <- Red;
    update_maxlim h;
    update_maxlim x;
    write_node t h;
    write_node t x;
    x

let flip_colors t h =
  h.color <- Red;
  (match h.left with Some l -> l.color <- Black | None -> ());
  (match h.right with Some r -> r.color <- Black | None -> ());
  write_node t h

let fixup t h =
  let h = if is_red h.right && not (is_red h.left) then rotate_left t h else h in
  let h =
    if is_red h.left && (match h.left with Some l -> is_red l.left | None -> false)
    then rotate_right t h
    else h
  in
  if is_red h.left && is_red h.right then flip_colors t h;
  h

let rec insert_node t (cur : node option) (nw : node) : node =
  match cur with
  | None -> nw
  | Some c ->
    (* duplicates and overlaps are representable: equal bases go right,
       so no insert can fail once capacity admits it *)
    if nw.region.Region.base < c.region.Region.base then
      c.left <- Some (insert_node t c.left nw)
    else c.right <- Some (insert_node t c.right nw);
    update_maxlim c;
    write_node t c;
    fixup t c

let add t (r : Region.t) =
  if t.n >= t.capacity then Error (Structure.capacity_error t.capacity)
  else begin
    let vaddr = Kernel.kmalloc t.kernel ~size:node_size in
    Kernel.write t.kernel ~addr:vaddr ~size:8 r.Region.base;
    Kernel.write t.kernel ~addr:(vaddr + 8) ~size:8 r.Region.len;
    Kernel.write t.kernel ~addr:(vaddr + 16) ~size:8 r.Region.prot;
    let nw =
      {
        region = r;
        left = None;
        right = None;
        color = Red;
        maxlim = Region.limit r;
        seq = t.next_seq;
        vaddr;
      }
    in
    t.next_seq <- t.next_seq + 1;
    let root = insert_node t t.root nw in
    root.color <- Black;
    t.root <- Some root;
    t.n <- t.n + 1;
    Ok ()
  end

let rec fold f acc = function
  | None -> acc
  | Some n -> fold f (f (fold f acc n.left) n) n.right

(* insertion order, so Engine.reference_allows / page_uniform_prot see
   the same first-match order the lookup enforces *)
let regions t =
  fold (fun acc n -> n :: acc) [] t.root
  |> List.sort (fun (a : node) (b : node) -> compare a.seq b.seq)
  |> List.map (fun n -> n.region)

let count t = t.n

let clear t =
  t.root <- None;
  t.n <- 0;
  t.next_seq <- 0

let remove t ~base =
  (* rebuild without the FIRST matching node (canonical duplicate-base
     semantics); removals happen on the slow ioctl path *)
  let rs = regions t in
  if List.exists (fun r -> r.Region.base = base) rs then begin
    clear t;
    let removed = ref false in
    List.iter
      (fun (r : Region.t) ->
        if (not !removed) && r.Region.base = base then removed := true
        else
          match add t r with
          | Ok () -> ()
          | Error e -> invalid_arg ("Interval_tree.remove rebuild: " ^ e))
      rs;
    true
  end
  else false

let lookup t ~addr ~size : Structure.outcome =
  let machine = Kernel.machine t.kernel in
  let scanned = ref 0 in
  let best = ref None in
  let consider (c : node) =
    if Region.contains c.region ~addr ~size then
      match !best with
      | Some (b : node) when b.seq <= c.seq -> ()
      | _ -> best := Some c
  in
  (* stabbing descent: a subtree whose max limit is <= addr cannot hold a
     container; a right subtree is reachable only when this node's base
     admits addr (right bases are >= it) *)
  let rec go = function
    | None -> ()
    | Some (c : node) ->
      incr scanned;
      touch_node t c;
      let left = maxlim_of c.left > addr in
      Machine.Model.branch machine
        ~pc:(Hashtbl.hash ("itree-l", c.vaddr land 0xff))
        ~taken:left;
      if left then go c.left;
      consider c;
      let right = c.region.Region.base <= addr && maxlim_of c.right > addr in
      Machine.Model.branch machine
        ~pc:(Hashtbl.hash ("itree-r", c.vaddr land 0xff))
        ~taken:right;
      if right then go c.right
  in
  go t.root;
  match !best with
  | Some b -> { Structure.matched = Some b.region; scanned = !scanned }
  | None -> { Structure.matched = None; scanned = !scanned }

(* invariant checker for tests: red-black shape plus the max-limit
   augmentation at every node *)
let validate t : (unit, string) result =
  let rec go (cur : node option) : (int, string) result =
    match cur with
    | None -> Ok 1
    | Some c ->
      if c.color = Red && (is_red c.left || is_red c.right) then
        Error "red node with red child"
      else if
        c.maxlim
        <> max (Region.limit c.region)
             (max (maxlim_of c.left) (maxlim_of c.right))
      then Error "max-limit augmentation stale"
      else (
        match (go c.left, go c.right) with
        | Ok a, Ok b when a = b -> Ok (a + if c.color = Black then 1 else 0)
        | Ok _, Ok _ -> Error "black-height mismatch"
        | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  match t.root with
  | Some r when r.color = Red -> Error "red root"
  | _ -> ( match go t.root with Ok _ -> Ok () | Error e -> Error e)

(* nodes are individual kmalloc'd allocations; no contiguous table *)
let table_region _t = None

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
