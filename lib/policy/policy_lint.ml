(** Static lints over operator policy files — the [policy_manager lint]
    and [kop_lint policy] backend.

    First-match-wins region tables fail in quiet ways: a later rule can
    be fully shadowed by earlier ones, a table can outgrow the linear
    table the kernel module actually allocates, and page-straddling
    regions silently disable the shadow-table fast tier. These lints
    surface each case before the policy is pushed.

    Codes ([E-] prefixed findings are errors, [W-] warnings):
    - [E-capacity]: more regions than the target table can hold (the
      linear table for the root policy, the interval tier's ceiling for
      a named domain); the push/install ioctl would refuse the table;
    - [W-fastpath]: a named domain's policy exceeds the linear fast path
      and will be promoted to the interval tier;
    - [E-shadowed]: a region fully covered by earlier regions — it can
      never match, so its protection is dead;
    - [W-dup-base]: two regions share a base address (the later is at
      least partially dead);
    - [W-overlap]: a partial overlap where the overlapping bytes get
      different protections from the two rules — order-sensitive, a
      classic operator mistake;
    - [W-write-only]: write-without-read protection; almost always a
      typo for [rw] (hardware-style write-only windows are rare);
    - [W-straddle]: a region boundary not aligned to the shadow-table
      page size — every page it partially covers classifies as
      [Straddle] and falls back to the slow exact walk;
    - [W-shadow-invisible]: a region so small (and so placed) that it
      fully contains no page, so the shadow table can never serve it
      from the fast tier. *)

type severity = Err | Warn

let severity_to_string = function Err -> "error" | Warn -> "warning"

type finding = {
  severity : severity;
  code : string;
  region : int;  (** index in the policy file, -1 for table-wide *)
  message : string;
}

let finding_to_string f =
  let where = if f.region < 0 then "" else Printf.sprintf " region %d:" f.region in
  Printf.sprintf "%s[%s]%s %s" (severity_to_string f.severity) f.code where
    f.message

(** Subtract [cover] from the interval list [ivals] (byte ranges as
    [(lo, hi)] pairs). *)
let subtract_interval ivals (clo, chi) =
  List.concat_map
    (fun (lo, hi) ->
      if chi <= lo || hi <= clo then [ (lo, hi) ]
      else
        (if lo < clo then [ (lo, clo) ] else [])
        @ if chi < hi then [ (chi, hi) ] else [])
    ivals

let page_size = Shadow_table.page_size

let lint (t : Policy_file.t) : finding list =
  let out = ref [] in
  let push severity code region fmt =
    Printf.ksprintf
      (fun message -> out := { severity; code; region; message } :: !out)
      fmt
  in
  let regions = Array.of_list t.Policy_file.regions in
  let n = Array.length regions in
  let domained = t.Policy_file.domain <> "" in
  (* capacity is per-domain: a root policy lives in the fixed linear
     table, while a named domain auto-promotes to the interval tier past
     the fast path — so the hard limit differs, and crossing the fast
     path is worth a warning rather than an error *)
  if domained then begin
    if n > Domain.default_big_capacity then
      push Err "E-capacity" (-1)
        "%d regions exceed domain '%s' capacity (%d); the install ioctl \
         would refuse this policy with -ENOSPC"
        n t.Policy_file.domain Domain.default_big_capacity
    else if n > Linear_table.default_capacity then
      push Warn "W-fastpath" (-1)
        "%d regions push domain '%s' past the %d-entry linear fast path; \
         the domain will be promoted to the interval tier"
        n t.Policy_file.domain Linear_table.default_capacity
  end
  else if n > Linear_table.default_capacity then
    push Err "E-capacity" (-1)
      "%d regions exceed the kernel module's table capacity (%d); the push \
       ioctl would refuse this policy"
      n Linear_table.default_capacity;
  Array.iteri
    (fun i (r : Region.t) ->
      let rlim = Region.limit r in
      (* dead-rule analysis: does anything of [r] survive the earlier,
         higher-priority regions? *)
      let residue = ref [ (r.Region.base, rlim) ] in
      for j = 0 to i - 1 do
        let e = regions.(j) in
        residue := subtract_interval !residue (e.Region.base, Region.limit e)
      done;
      if !residue = [] && i > 0 then
        push Err "E-shadowed" i
          "region %s is fully shadowed by earlier regions; it can never match"
          (Region.to_string r)
      else begin
        for j = 0 to i - 1 do
          let e = regions.(j) in
          if e.Region.base = r.Region.base then
            push Warn "W-dup-base" i
              "region %s shares its base with higher-priority region %d"
              (Region.to_string r) j
          else if Region.overlaps e r && e.Region.prot <> r.Region.prot then
            push Warn "W-overlap" i
              "region %s partially overlaps region %d (%s) with different \
               protection; first match wins on the overlap"
              (Region.to_string r) j (Region.to_string e)
        done
      end;
      if r.Region.prot = Region.prot_write then
        push Warn "W-write-only" i
          "region %s is write-only; guards for reads in this range will be \
           denied (did you mean rw?)"
          (Region.to_string r);
      (* shadow-table visibility: a page must be fully inside the region
         to classify Uniform *)
      let first_page = (r.Region.base + page_size - 1) / page_size in
      let last_page = rlim / page_size in
      if first_page >= last_page then
        push Warn "W-shadow-invisible" i
          "region %s fully contains no %d-byte page; the shadow-table fast \
           tier can never serve it"
          (Region.to_string r) page_size
      else if r.Region.base mod page_size <> 0 || rlim mod page_size <> 0 then
        push Warn "W-straddle" i
          "region %s is not page-aligned; pages straddling its boundary fall \
           back to the exact walk"
          (Region.to_string r))
    regions;
  List.rev !out

let errors fs = List.filter (fun f -> f.severity = Err) fs
let warnings fs = List.filter (fun f -> f.severity = Warn) fs
