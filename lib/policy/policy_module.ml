(** The CARAT KOP policy module (§3.1): a kernel module that exports the
    single symbol [carat_guard] and owns the region table, configured by
    root through an ioctl on [/dev/carat].

    Protected modules transformed by the compiler call [carat_guard(addr,
    size, access_flags)] before every load/store; this module compares
    the access against the policy and, on a violation, logs it and causes
    a kernel panic — the paper's argued-for hard stop for HPC (§3.1):
    wrong policy, buggy module, or attack all warrant halting the node. *)

type on_deny =
  | Panic  (** the paper's behaviour: halt the node *)
  | Quarantine
      (** isolate the offending module (unlink its symbols, cancel its
          pending kernel-service callbacks, reject further calls into it
          with -EIO) and keep the kernel alive *)
  | Audit  (** record and continue — detection without enforcement *)

let on_deny_to_string = function
  | Panic -> "panic"
  | Quarantine -> "quarantine"
  | Audit -> "audit"

let on_deny_of_string = function
  | "panic" -> Some Panic
  | "quarantine" -> Some Quarantine
  | "audit" | "log" | "log-only" -> Some Audit
  | _ -> None

(* stable wire encoding for the set/get-mode ioctls *)
let on_deny_to_int = function Panic -> 0 | Quarantine -> 1 | Audit -> 2
let on_deny_of_int = function
  | 0 -> Some Panic
  | 1 -> Some Quarantine
  | 2 -> Some Audit
  | _ -> None

(** A policy mutation, reified so its application can be routed. The
    default route applies it in place (exactly the pre-SMP behaviour);
    an SMP run installs a {!set_mutator} callback that routes every
    control-plane mutation through the RCU publish path instead, so a
    CPU mid-guard never observes a half-written region entry. *)
type mutation =
  | M_add of Region.t
  | M_remove of int  (** region base *)
  | M_clear
  | M_set_default of bool
  | M_set_mode of on_deny
  | M_install of Region.t list
      (** batched install: all N regions land as ONE mutation. Under the
          RCU route this is a single generation swap (readers see
          old-or-new, never a prefix); the in-place route rolls the whole
          batch back on any mid-batch failure. *)
  | M_replace of Region.t list * bool  (** whole policy + default action *)
  | M_rebuild of Region.t list * bool
      (** self-healing rebuild: publish a fresh instance of the engine's
          active kind built from the authoritative copy. Semantically a
          [M_replace], but reified separately so the RCU route (and the
          trace) can tell an operator policy push from an integrity
          repair. *)

type t = {
  kernel : Kernel.t;
  engine : Engine.t;
  mutable on_deny : on_deny;
  mutable mutator : (mutation -> int) option;
      (** control-plane mutation router; [None] (the default) applies
          mutations in place, keeping single-CPU runs bit-identical *)
  mutable violations : (int * int * int) list;
      (** (addr, size, flags) of denied accesses, newest first *)
  mutable integrity : Integrity.t option;
      (** self-healing layer; [None] (the default) keeps the engine
          bit-identical to a pre-integrity build *)
  mutable watchdog : Kernel.Watchdog.t option;
      (** periodic driver for the integrity audit, created lazily *)
  mutable domains : Domain.t option;
      (** multi-tenant policy domains; [None] (the default) keeps the
          classic single-table engine path bit-identical *)
  module_domains : (string, int) Hashtbl.t;
      (** loaded-module name -> policy domain id; guards from a bound
          module are checked against its domain instead of the engine *)
  (* §5 extensions *)
  mutable intrinsic_allowed : int;
      (** bitmap over the kernel's intrinsic registry; bit i set = the
          intrinsic with id i is permitted *)
  mutable intrinsic_violations : int list;  (** denied intrinsic ids *)
  mutable cfi_targets : (int, unit) Hashtbl.t;
      (** allow-list of indirect-call target addresses *)
  mutable cfi_default_allow : bool;
  mutable cfi_violations : int list;  (** denied target addresses *)
  mutable guard_probe :
    (site:int -> addr:int -> size:int -> flags:int -> unit) option;
      (** observation hook fired on every guard invocation (race
          detector's table-scan read); [None] by default *)
}

let device_name = "carat"

(* ioctl command numbers, shared with the policy-manager tool *)
let ioctl_add = 1
let ioctl_remove = 2
let ioctl_clear = 3
let ioctl_count = 4
let ioctl_set_default = 5
let ioctl_stats_checks = 6
let ioctl_stats_denied = 7
(* §5 extensions *)
let ioctl_set_intrinsics = 8 (* arg = permission bitmap *)
let ioctl_get_intrinsics = 9
let ioctl_cfi_allow = 10 (* arg = target address to allow *)
let ioctl_cfi_default = 11 (* arg <> 0 = default allow *)
(* enforcement mode *)
let ioctl_set_mode = 12 (* arg = on_deny_to_int encoding *)
let ioctl_get_mode = 13
(* observability: engine statistics and the carat_trace ring *)
let ioctl_get_stats = 14
(* arg = user block of 8 x 8 bytes, filled with checks, allowed, denied,
   entries_scanned, ic_hits, ic_misses, trace recorded, trace dropped *)
let ioctl_trace_start = 15 (* arg = ring capacity hint; 0 = default *)
let ioctl_trace_stop = 16
let ioctl_trace_read = 17
(* arg = user block of 8 x 8 bytes; consumes the oldest unread event and
   fills seq, cycles, kind, site, addr, size, flags, info; returns 1 when
   an event was delivered, 0 when the ring is drained *)
(* self-healing *)
let ioctl_audit = 18
(* run one integrity audit cycle immediately; returns the number of
   corrupt tiers detected, or -EINVAL when integrity is not enabled *)
let ioctl_selfheal = 19
(* arg = user block of 8 x 8 bytes, filled with audits, detections,
   degradations, rebuilds, abandoned, tier_level, ic_enabled, healthy *)
(* multi-tenant policy domains *)
let ioctl_domain_create = 20
(* arg <> 0 = default-allow domain; returns the new domain id (> 0) *)
let ioctl_domain_destroy = 21 (* arg = domain id *)
let ioctl_install = 22
(* batched atomic install. arg = user block: domain(8), count(8), then
   count x 24-byte region records (base, len, prot). domain 0 targets
   the engine's root policy through the mutation router (one RCU
   generation swap under SMP); ids > 0 target that policy domain.
   Returns 0, or a typed errno with NOTHING installed: the whole batch
   rolls back on any mid-batch failure (-ENOSPC on capacity). *)
let ioctl_domain_stats = 23
(* arg = user block with the domain id at offset 0; filled with 8 x 8
   bytes: regions, epoch, checks, allowed, denied, structure (0 =
   linear, 1 = interval), shadow hits, shadow misses *)
let ioctl_domain_count = 24 (* returns the number of live domains *)

let install_batch_max = 4096

(* the trace ring is simulated kernel memory; cap operator-requested
   capacities at 1 Mi events so a typo'd ioctl cannot kmalloc the moon *)
let trace_capacity_max = 1 lsl 20

let guard_symbol = Passes.Guard_injection.guard_symbol_default
let intrinsic_guard_symbol = Passes.Intrinsic_guard.guard_symbol
let cfi_guard_symbol = Passes.Cfi_guard.guard_symbol

(* The single enforcement decision point shared by the memory, intrinsic
   and CFI guards: the violation is already logged and recorded when this
   runs, [what] names it for the panic/quarantine diagnosis. When a trace
   is attached, the last recorded events are snapshotted into the reason
   (and, verbatim, into the panic diagnostics), so a fault-campaign
   failure or a quarantine record carries the events leading up to the
   deny. *)
let enforce t ~what =
  let what, diag =
    match Engine.trace t.engine with
    | Some tr when Trace.recorded tr > 0 ->
      ( what ^ " [trace: " ^ Trace.tail_string tr 4 ^ "]",
        List.map Trace.format_event (Trace.recent tr 8) )
    | _ -> (what, [])
  in
  match t.on_deny with
  | Panic ->
    (match Engine.trace t.engine with
    | Some tr -> Trace.on_lifecycle tr Trace.Panic ~info:0
    | None -> ());
    Kernel.panic ~diag t.kernel what
  | Audit -> ()
  | Quarantine -> (
    match Kernel.current_module t.kernel with
    | Some lm ->
      Kernel.quarantine_module t.kernel lm ~reason:what;
      raise (Kernel.Quarantine_trap lm)
    | None ->
      (* a violation attributed to no module is core-kernel misbehaviour:
         there is nothing to isolate, so fall back to the hard stop *)
      Kernel.panic ~diag t.kernel what)

let handle_deny t ~addr ~size ~flags (matched : Region.t option) =
  t.violations <- (addr, size, flags) :: t.violations;
  (* let the sanitizer attribute the denied address to a heap allocation
     before enforcement (which may panic) unwinds *)
  Kernel.san_note_deny t.kernel ~addr ~size
    ~write:(flags land Region.prot_write <> 0);
  let what =
    if flags land Region.prot_write <> 0 then "write" else "read"
  in
  Kernel.Klog.log (Kernel.log t.kernel) Kernel.Klog.Err
    "CARAT KOP: forbidden %s of %d bytes at 0x%x%s" what size addr
    (match matched with
    | Some r -> Printf.sprintf " (region %s lacks permission)" (Region.to_string r)
    | None -> " (no matching region)");
  enforce t ~what:(Printf.sprintf "CARAT KOP guard violation at 0x%x" addr)

(* The guard body: the engine's fast path (inline-cache hit when the site
   cache is enabled, exact walk otherwise) decides; denial diagnostics
   come from the engine's last-deny slot, so the allow path allocates
   nothing. [site] is the compiler-assigned static guard-site id; -1 for
   legacy 3-argument callers. *)
let guard t ~site ~addr ~size ~flags =
  (match t.guard_probe with
  | Some f -> f ~site ~addr ~size ~flags
  | None -> ());
  let bound_domain =
    (* a module bound to a policy domain is checked against that domain;
       everything else (and every run with domains off) takes the classic
       engine path unchanged *)
    match t.domains with
    | None -> None
    | Some dm -> (
      match Kernel.current_module t.kernel with
      | None -> None
      | Some lm -> (
        match Hashtbl.find_opt t.module_domains lm.Kernel.lm_name with
        | Some id -> Some (dm, id)
        | None -> None))
  in
  match bound_domain with
  | Some (dm, domain) ->
    if not (Domain.check dm ~domain ~addr ~size ~flags) then
      handle_deny t ~addr ~size ~flags None
  | None ->
    if not (Engine.check_fast t.engine ~site ~addr ~size ~flags) then
      handle_deny t ~addr ~size ~flags (Engine.last_deny t.engine)

(** The §5 intrinsic guard: consult "a different policy table" — here a
    permission bitmap over the intrinsic registry. *)
let intrinsic_guard t ~id =
  Machine.Model.retire (Kernel.machine t.kernel) 3;
  if t.intrinsic_allowed land (1 lsl id) = 0 then begin
    t.intrinsic_violations <- id :: t.intrinsic_violations;
    let name =
      match Kernel.intrinsic_name id with Some n -> n | None -> "?"
    in
    Kernel.Klog.log (Kernel.log t.kernel) Kernel.Klog.Err
      "CARAT KOP: forbidden privileged intrinsic %s (id %d)" name id;
    enforce t ~what:(Printf.sprintf "CARAT KOP intrinsic violation (%s)" name)
  end

(** The §5 CFI guard: the indirect-call target must be on the operator's
    allow-list. *)
let cfi_guard t ~target =
  Machine.Model.retire (Kernel.machine t.kernel) 3;
  let ok = t.cfi_default_allow || Hashtbl.mem t.cfi_targets target in
  if not ok then begin
    t.cfi_violations <- target :: t.cfi_violations;
    let where =
      match Kernel.symbol_of_address t.kernel target with
      | Some n -> Printf.sprintf "@%s (0x%x)" n target
      | None -> Printf.sprintf "0x%x" target
    in
    Kernel.Klog.log (Kernel.log t.kernel) Kernel.Klog.Err
      "CARAT KOP: forbidden indirect call to %s" where;
    enforce t ~what:(Printf.sprintf "CARAT KOP CFI violation (target %s)" where)
  end

(** Attach the observability layer (idempotent). The carat_trace ring is
    created lazily — an untraced run never allocates it, so simulated
    memory layout and cycle counts stay bit-identical to a trace-free
    build (the bench tracegate pins this). *)
let enable_trace ?capacity t =
  match Engine.trace t.engine with
  | Some tr -> tr
  | None ->
    let tr = Trace.create ?capacity t.kernel in
    Engine.set_trace t.engine (Some tr);
    tr

let trace t = Engine.trace t.engine

(** Display tag for a region base, for trace renderings (the ring stores
    only bases; the policy knows the names). *)
let region_tag t base =
  List.find_map
    (fun (r : Region.t) ->
      if r.Region.base = base && r.Region.tag <> "" then Some r.Region.tag
      else None)
    (Engine.regions t.engine)

(* ioctl argument block: base(8) len(8) prot(8) at a user address *)
let read_region_arg t ~arg =
  let base = Kernel.read t.kernel ~addr:arg ~size:8 in
  let len = Kernel.read t.kernel ~addr:(arg + 8) ~size:8 in
  let prot = Kernel.read t.kernel ~addr:(arg + 16) ~size:8 in
  (base, len, prot)

(** Apply a mutation directly to the live structure — the classic
    single-CPU path (in-place table writes, epoch bump). Also the
    fallback every mutator ends in for non-table mutations. *)
let apply_in_place t (m : mutation) : int =
  match m with
  | M_add r -> (
    match Engine.add_region t.engine r with
    | Ok () -> 0
    | Error e ->
      Kernel.Klog.log (Kernel.log t.kernel) Kernel.Klog.Warn
        "carat ioctl add: %s" e;
      if Structure.is_capacity_error e then Kernel.enospc else -1)
  | M_remove base -> if Engine.remove_region t.engine ~base then 0 else -1
  | M_clear ->
    Engine.clear t.engine;
    0
  | M_set_default b ->
    (* epoch-bumping setter: flips the default action and invalidates
       every fast tier (shadow, inline caches) in O(1) *)
    Engine.set_default_allow t.engine b;
    0
  | M_set_mode mode ->
    t.on_deny <- mode;
    (* mode flips change what a (stale) allow would have bypassed, so
       they invalidate the fast tiers like any policy push *)
    Engine.bump_epoch t.engine;
    Engine.lifecycle t.engine Trace.Mode_change ~info:(on_deny_to_int mode);
    Kernel.Klog.printk (Kernel.log t.kernel)
      "CARAT KOP enforcement mode -> %s" (on_deny_to_string mode);
    0
  | M_install rs ->
    let snapshot = Engine.regions t.engine in
    if List.length snapshot + List.length rs > Engine.capacity t.engine then
      (* the whole batch provably cannot fit: reject before mutating *)
      Kernel.enospc
    else begin
      let rec go = function
        | [] -> 0
        | r :: rest -> (
          match Engine.add_region t.engine r with
          | Ok () -> go rest
          | Error e ->
            (* mid-batch failure: restore the pre-batch policy so the
               caller observes all-or-nothing, matching the RCU route *)
            Engine.set_policy t.engine snapshot;
            Kernel.Klog.log (Kernel.log t.kernel) Kernel.Klog.Warn
              "carat ioctl install: %s (batch of %d rolled back)" e
              (List.length rs);
            if Structure.is_capacity_error e then Kernel.enospc
            else Kernel.einval)
      in
      go rs
    end
  | M_replace (rs, default_allow) ->
    Engine.set_policy t.engine rs;
    Engine.set_default_allow t.engine default_allow;
    0
  | M_rebuild (rs, default_allow) ->
    let inst = Engine.build_instance t.engine rs in
    ignore (Engine.publish t.engine inst ~default_allow);
    0

(** Route a control-plane mutation: through the registered mutator (the
    SMP RCU publish path) when one is installed, in place otherwise. *)
let apply t m = match t.mutator with Some f -> f m | None -> apply_in_place t m

(** Install/remove the mutation router. The SMP layer registers the RCU
    publish path here; [None] restores the in-place default. *)
let set_mutator t f = t.mutator <- f

(** Install/remove the guard observation probe (pure observation: the
    guard's decision and cycle charging are unchanged). *)
let set_guard_probe t f = t.guard_probe <- f

(** Replace the whole policy (regions + default action) as one mutation.
    Under the RCU route this is a single generation swap — readers see
    the old table or the new one, never a mixture. *)
let replace_policy t ?(default_allow = false) rs =
  apply t (M_replace (rs, default_allow))

(** Attach the self-healing layer (idempotent, lazy like the trace ring:
    a run that never enables it allocates nothing and stays
    bit-identical). Rebuild publishes are routed through the mutation
    router, so SMP runs repair via the RCU publish path. *)
let enable_integrity ?config t =
  match t.integrity with
  | Some ig -> ig
  | None ->
    let ig = Integrity.create ?config t.engine in
    Integrity.set_route ig (fun rs d -> ignore (apply t (M_rebuild (rs, d))));
    t.integrity <- Some ig;
    ig

let integrity t = t.integrity

(** Attach the periodic watchdog driving the integrity audit (idempotent;
    enables integrity if it is not on yet). Workloads tick it with
    {!Kernel.Watchdog.run_pending}/[advance]. *)
let enable_watchdog ?config ?period t =
  match t.watchdog with
  | Some wd -> wd
  | None ->
    let ig = enable_integrity ?config t in
    let wd = Kernel.Watchdog.create ?period (Kernel.machine t.kernel) in
    Kernel.Watchdog.add_check wd ~name:"carat-integrity" (fun () ->
        Integrity.audit ig);
    t.watchdog <- Some wd;
    wd

let watchdog t = t.watchdog

(** Attach the multi-tenant domain layer (idempotent, lazy like trace and
    integrity: a run that never enables it allocates nothing and the
    classic engine path stays bit-identical). *)
let enable_domains ?fast_capacity ?big_capacity t =
  match t.domains with
  | Some dm -> dm
  | None ->
    let dm = Domain.create ?fast_capacity ?big_capacity t.kernel in
    t.domains <- Some dm;
    Kernel.Klog.printk (Kernel.log t.kernel)
      "CARAT KOP policy domains enabled";
    dm

let domains t = t.domains

(** Bind a loaded module (by name) to a policy domain: its guards are
    from now on checked against that domain's policy instead of the
    engine's root table. *)
let bind_module_domain t ~module_name ~domain =
  ignore (enable_domains t);
  Hashtbl.replace t.module_domains module_name domain

let unbind_module_domain t ~module_name =
  Hashtbl.remove t.module_domains module_name

let module_domain t ~module_name =
  Hashtbl.find_opt t.module_domains module_name

(* Argument validation: malformed ioctl arguments are rejected with the
   typed kernel error codes (-EINVAL / -ERANGE / -ENOTTY) rather than
   silently clamped or folded into the generic -1 — a policy tool that
   mis-encodes a region must hear about it, not install a narrower
   region than it asked for. *)
let handle_ioctl t _kernel ~cmd ~arg =
  if cmd = ioctl_add then begin
    if arg < 0 then Kernel.einval
    else begin
      let base, len, prot = read_region_arg t ~arg in
      if base < 0 || len <= 0 then Kernel.einval
      else if len > max_int - base then
        (* [base, base+len) must stay representable: a two's-complement
           negative length read back from user memory shows up here as an
           absurdly large positive one *)
        Kernel.erange
      else if prot land lnot Region.prot_rw <> 0 then Kernel.einval
      else apply t (M_add (Region.v ~tag:"ioctl" ~base ~len ~prot ()))
    end
  end
  else if cmd = ioctl_remove then begin
    if arg < 0 then Kernel.einval
    else begin
      let base = Kernel.read t.kernel ~addr:arg ~size:8 in
      if base < 0 then Kernel.einval else apply t (M_remove base)
    end
  end
  else if cmd = ioctl_clear then apply t M_clear
  else if cmd = ioctl_count then Engine.count t.engine
  else if cmd = ioctl_set_default then apply t (M_set_default (arg <> 0))
  else if cmd = ioctl_stats_checks then (Engine.merged_stats t.engine).Engine.checks
  else if cmd = ioctl_stats_denied then (Engine.merged_stats t.engine).Engine.denied
  else if cmd = ioctl_set_intrinsics then begin
    if arg < 0 then Kernel.einval
    else begin
      t.intrinsic_allowed <- arg;
      0
    end
  end
  else if cmd = ioctl_get_intrinsics then t.intrinsic_allowed
  else if cmd = ioctl_cfi_allow then begin
    if arg < 0 then Kernel.einval
    else begin
      Hashtbl.replace t.cfi_targets arg ();
      0
    end
  end
  else if cmd = ioctl_cfi_default then begin
    t.cfi_default_allow <- arg <> 0;
    0
  end
  else if cmd = ioctl_set_mode then begin
    match on_deny_of_int arg with
    | Some mode -> apply t (M_set_mode mode)
    | None -> Kernel.einval
  end
  else if cmd = ioctl_get_mode then on_deny_to_int t.on_deny
  else if cmd = ioctl_get_stats then begin
    if arg < 0 then Kernel.einval
    else begin
    let st = Engine.merged_stats t.engine in
    let tier = Engine.merged_tier t.engine in
    let recorded, dropped =
      match Engine.trace t.engine with
      | Some tr -> (Trace.recorded tr, Trace.dropped tr)
      | None -> (0, 0)
    in
    let w i v = Kernel.write t.kernel ~addr:(arg + (i * 8)) ~size:8 v in
    w 0 st.Engine.checks;
    w 1 st.Engine.allowed;
    w 2 st.Engine.denied;
    w 3 st.Engine.entries_scanned;
    w 4 tier.Engine.ic_hits;
    w 5 tier.Engine.ic_misses;
    w 6 recorded;
    w 7 dropped;
    0
    end
  end
  else if cmd = ioctl_trace_start then begin
    if arg < 0 then Kernel.einval
    else if arg > trace_capacity_max then Kernel.erange
    else begin
      let tr = enable_trace ?capacity:(if arg > 0 then Some arg else None) t in
      Trace.start tr;
      0
    end
  end
  else if cmd = ioctl_trace_stop then begin
    (match Engine.trace t.engine with
    | Some tr -> Trace.stop tr
    | None -> ());
    0
  end
  else if cmd = ioctl_trace_read then begin
    if arg < 0 then Kernel.einval
    else
      match Engine.trace t.engine with
      | None -> 0
      | Some tr -> (
        match Trace.read_next tr with
        | None -> 0
        | Some e ->
          let w i v = Kernel.write t.kernel ~addr:(arg + (i * 8)) ~size:8 v in
          w 0 e.Trace.seq;
          w 1 e.Trace.cycles;
          w 2 (Trace.kind_to_int e.Trace.kind);
          w 3 e.Trace.site;
          w 4 e.Trace.addr;
          w 5 e.Trace.size;
          w 6 e.Trace.flags;
          w 7 e.Trace.info;
          1)
  end
  else if cmd = ioctl_domain_create then
    (Domain.create_domain ~default_allow:(arg <> 0) (enable_domains t)).Domain.d_id
  else if cmd = ioctl_domain_destroy then begin
    if arg <= 0 then Kernel.einval
    else
      match t.domains with
      | None -> Kernel.einval
      | Some dm -> if Domain.destroy_domain dm arg then 0 else Kernel.einval
  end
  else if cmd = ioctl_install then begin
    if arg < 0 then Kernel.einval
    else begin
      let domain = Kernel.read t.kernel ~addr:arg ~size:8 in
      let n = Kernel.read t.kernel ~addr:(arg + 8) ~size:8 in
      if domain < 0 || n <= 0 then Kernel.einval
      else if n > install_batch_max then Kernel.erange
      else begin
        (* decode and validate the WHOLE batch before mutating anything:
           a malformed record rejects the batch with nothing installed *)
        let rec decode i acc =
          if i >= n then Ok (List.rev acc)
          else begin
            let base, len, prot = read_region_arg t ~arg:(arg + 16 + (i * 24)) in
            if base < 0 || len <= 0 then Error Kernel.einval
            else if len > max_int - base then Error Kernel.erange
            else if prot land lnot Region.prot_rw <> 0 then Error Kernel.einval
            else decode (i + 1) (Region.v ~tag:"ioctl" ~base ~len ~prot () :: acc)
          end
        in
        match decode 0 [] with
        | Error e -> e
        | Ok rs ->
          if domain = 0 then apply t (M_install rs)
          else (
            match t.domains with
            | None -> Kernel.einval
            | Some dm -> Domain.install_regions dm ~domain rs)
      end
    end
  end
  else if cmd = ioctl_domain_stats then begin
    if arg < 0 then Kernel.einval
    else
      match t.domains with
      | None -> Kernel.einval
      | Some dm -> (
        let id = Kernel.read t.kernel ~addr:arg ~size:8 in
        match Domain.find dm id with
        | None -> Kernel.einval
        | Some d ->
          let st = Domain.dom_stats d in
          let w i v = Kernel.write t.kernel ~addr:(arg + (i * 8)) ~size:8 v in
          w 0 (List.length (Domain.dom_regions d));
          w 1 (Domain.dom_epoch d);
          w 2 st.Engine.checks;
          w 3 st.Engine.allowed;
          w 4 st.Engine.denied;
          w 5 (if Domain.dom_structure d = "interval" then 1 else 0);
          w 6 (Domain.dom_shadow_hits d);
          w 7 (Domain.dom_shadow_misses d);
          0)
  end
  else if cmd = ioctl_domain_count then
    (match t.domains with None -> 0 | Some dm -> Domain.count dm)
  else if cmd = ioctl_audit then begin
    match t.integrity with
    | None -> Kernel.einval
    | Some ig -> Integrity.audit ig
  end
  else if cmd = ioctl_selfheal then begin
    if arg < 0 then Kernel.einval
    else
      match t.integrity with
      | None -> Kernel.einval
      | Some ig ->
        let w i v = Kernel.write t.kernel ~addr:(arg + (i * 8)) ~size:8 v in
        w 0 (Integrity.audits ig);
        w 1 (Integrity.detections ig);
        w 2 (Integrity.degradations ig);
        w 3 (Integrity.rebuilds ig);
        w 4 (Integrity.abandoned ig);
        w 5 (Integrity.tier_level ig);
        w 6 (if Engine.ic_enabled t.engine then 1 else 0);
        w 7 (if Integrity.healthy ig then 1 else 0);
        0
  end
  else Kernel.enotty

(** Insert the policy module into [kernel]: registers [carat_guard] and
    [/dev/carat]. Must happen before any protected module is inserted
    (their import of [carat_guard] will not resolve otherwise). *)
let install ?(kind = Engine.Linear) ?(capacity = Linear_table.default_capacity)
    ?(default_allow = false) ?(on_deny = Panic) ?(site_cache = false) kernel :
    t =
  let engine = Engine.create ~kind ~capacity ~default_allow kernel in
  if site_cache then Engine.enable_site_cache engine;
  let t =
    {
      kernel;
      engine;
      on_deny;
      mutator = None;
      violations = [];
      integrity = None;
      watchdog = None;
      domains = None;
      module_domains = Hashtbl.create 16;
      intrinsic_allowed = 0;
      intrinsic_violations = [];
      cfi_targets = Hashtbl.create 16;
      (* CFI allow-lists are opt-in: an operator who does not configure
         one keeps today's behaviour for indirect calls *)
      cfi_default_allow = true;
      cfi_violations = [];
      guard_probe = None;
    }
  in
  (* the guard's whole invocation — call included — is off the critical
     path of the surrounding module code, so an OoO core overlaps most
     of it (§4.2's explanation of the R350's near-zero cost); the kernel
     applies the machine's speculative-overlap discount to natives
     registered as overlapped *)
  Kernel.register_native ~overlapped:true kernel guard_symbol (fun _k args ->
      (match args with
      | [| addr; size; flags; site |] -> guard t ~site ~addr ~size ~flags
      | [| addr; size; flags |] -> guard t ~site:(-1) ~addr ~size ~flags
      | _ -> Kernel.panic kernel "carat_guard: bad arguments");
      0);
  Kernel.register_native ~overlapped:true kernel intrinsic_guard_symbol
    (fun _k args ->
      (match args with
      | [| id |] -> intrinsic_guard t ~id
      | _ -> Kernel.panic kernel "carat_intrinsic_guard: bad arguments");
      0);
  Kernel.register_native ~overlapped:true kernel cfi_guard_symbol
    (fun _k args ->
      (match args with
      | [| target |] -> cfi_guard t ~target
      | _ -> Kernel.panic kernel "carat_cfi_guard: bad arguments");
      0);
  Kernel.register_device kernel device_name (handle_ioctl t);
  (* module lifecycle events for the trace ring; the hooks read the
     engine's current sink, so a trace attached later still sees them *)
  Kernel.add_load_hook kernel (fun _k lm ->
      Engine.lifecycle engine Trace.Module_load
        ~info:(Hashtbl.hash lm.Kernel.lm_name land 0xffffff));
  Kernel.add_quarantine_hook kernel (fun _k lm ->
      Engine.lifecycle engine Trace.Module_quarantine
        ~info:(Hashtbl.hash lm.Kernel.lm_name land 0xffffff));
  Kernel.Klog.printk (Kernel.log kernel)
    "CARAT KOP policy module loaded (structure=%s, capacity=%d, default=%s)"
    (Engine.kind_to_string kind) capacity
    (if default_allow then "allow" else "deny");
  t

let engine t = t.engine
let mode t = t.on_deny

let set_on_deny t a =
  t.on_deny <- a;
  (* same invalidation contract as the set-mode ioctl *)
  Engine.bump_epoch t.engine;
  Engine.lifecycle t.engine Trace.Mode_change ~info:(on_deny_to_int a)
let violations t = t.violations
let intrinsic_violations t = t.intrinsic_violations
let cfi_violations t = t.cfi_violations

(** Permit the named intrinsics (kernel-side convenience; the user-space
    path is [ioctl_set_intrinsics]). Unknown names are ignored. *)
let allow_intrinsics t names =
  List.iter
    (fun n ->
      match Kernel.intrinsic_id n with
      | Some id -> t.intrinsic_allowed <- t.intrinsic_allowed lor (1 lsl id)
      | None -> ())
    names

let forbid_all_intrinsics t = t.intrinsic_allowed <- 0

(** Switch CFI to allow-list mode with the given permitted symbols. *)
let set_cfi_allowlist t symbols =
  Hashtbl.reset t.cfi_targets;
  t.cfi_default_allow <- false;
  List.iter
    (fun name ->
      match Kernel.symbol_address t.kernel name with
      | Some addr -> Hashtbl.replace t.cfi_targets addr ()
      | None -> ())
    symbols

(** Convenience: load a whole policy from the kernel side (tests and
    experiment harnesses; the user-space path is the ioctl). *)
let set_policy t rs = Engine.set_policy t.engine rs
