(** Textual policy files for the command-line tools — the operator-facing
    "firewall rules" format that [policy-manager] reads and writes.

    Format, one rule per line, first match wins:
    {v
    # comment
    domain e1000e
    default deny
    region 0x1000000000000000 0x2fffffffffffffff rw kernel-high-half
    region 0x0 0x1000000000000000 -- user-low-half
    v}
    The third field is the permission set: [rw], [r-], [-w] or [--]. The
    trailing tag is optional. The optional [domain] directive names the
    policy domain this file belongs to (multi-tenant installs); an empty
    domain is the root policy. *)

exception Parse_error of int * string

type t = {
  default_allow : bool;
  mode : Policy_module.on_deny;
  domain : string;  (** "" = the root (single-tenant) policy *)
  regions : Region.t list;
}

let prot_of_string lineno = function
  | "rw" -> Region.prot_rw
  | "r-" | "r" -> Region.prot_read
  | "-w" | "w" -> Region.prot_write
  | "--" | "-" -> 0
  | s -> raise (Parse_error (lineno, "bad permission " ^ s))

let prot_to_string prot =
  (if prot land Region.prot_read <> 0 then "r" else "-")
  ^ if prot land Region.prot_write <> 0 then "w" else "-"

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Parse_error (lineno, "bad number " ^ s))

let parse (text : string) : t =
  let default_allow = ref false in
  let mode = ref Policy_module.Panic in
  let domain = ref "" in
  let regions = ref [] in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let words =
        List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
      in
      match words with
      | [] -> ()
      | [ "default"; "allow" ] -> default_allow := true
      | [ "default"; "deny" ] -> default_allow := false
      | [ "mode"; m ] -> (
        match Policy_module.on_deny_of_string m with
        | Some v -> mode := v
        | None -> raise (Parse_error (lineno, "bad enforcement mode " ^ m)))
      | [ "domain"; d ] -> domain := d
      | "region" :: base :: len :: prot :: rest ->
        let base = parse_int lineno base in
        let len = parse_int lineno len in
        let prot = prot_of_string lineno prot in
        let tag = String.concat " " rest in
        if len <= 0 then raise (Parse_error (lineno, "non-positive length"));
        regions := Region.v ~tag ~base ~len ~prot () :: !regions
      | w :: _ -> raise (Parse_error (lineno, "unknown directive " ^ w)))
    (String.split_on_char '\n' text);
  {
    default_allow = !default_allow;
    mode = !mode;
    domain = !domain;
    regions = List.rev !regions;
  }

let to_string (t : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# CARAT KOP policy (first match wins)\n";
  if t.domain <> "" then
    Buffer.add_string buf (Printf.sprintf "domain %s\n" t.domain);
  Buffer.add_string buf
    (if t.default_allow then "default allow\n" else "default deny\n");
  Buffer.add_string buf
    (Printf.sprintf "mode %s\n" (Policy_module.on_deny_to_string t.mode));
  List.iter
    (fun (r : Region.t) ->
      Buffer.add_string buf
        (Printf.sprintf "region 0x%x 0x%x %s%s\n" r.Region.base r.Region.len
           (prot_to_string r.Region.prot)
           (if r.Region.tag = "" then "" else " " ^ r.Region.tag)))
    t.regions;
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse text

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

(** The canonical two-region policy as a file. *)
let kernel_only : t =
  {
    default_allow = false;
    mode = Policy_module.Panic;
    domain = "";
    regions = Region.kernel_only;
  }

(** Apply a policy file to a live engine (regions and default only; the
    enforcement mode lives on the policy module — see {!apply_module}). *)
let apply (t : t) (engine : Engine.t) =
  engine.Engine.default_allow <- t.default_allow;
  Engine.set_policy engine t.regions

(** Apply a policy file to a live policy module: regions, default action
    and enforcement mode. *)
let apply_module (t : t) (pm : Policy_module.t) =
  apply t (Policy_module.engine pm);
  Policy_module.set_on_deny pm t.mode
